package engine

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/transport"
)

// These tests pin the tentpole acceptance bar of the distributed
// runtime: real-mode training over TCP on localhost is BIT-IDENTICAL
// to the in-process engine for all four strategies, at 2 and 4 ranks.
// Each rank is modeled as a separate process would be — its own
// fixture (graph, features, partition), its own store, its own engine
// instance, sharing nothing with its peers except real sockets — and
// only runs its LocalRank worker. Bit-identity then follows from the
// engine's determinism plus the wire moving exact f32/i32 values.

// trainDistributed runs world rank-engines over loopback TCP for the
// given strategy and returns them (engines[r] ran rank r).
func trainDistributed(t *testing.T, world int, k strategy.Kind, fanouts []int, epochs int, pipelined bool) []*Engine {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("bind coordinator: %v", err)
	}
	engines := make([]*Engine, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Each rank rebuilds the whole task from the same seeds — the
			// distributed contract: identical Config in every process.
			f := newFixture(t, world, 160)
			plan := sample.SplitEven(f.seeds, world, graph.NewRNG(3))
			opts := transport.TCPOptions{Rank: r, World: world, Coord: ln.Addr().String()}
			if r == 0 {
				opts.CoordListener = ln
			}
			tr, err := transport.NewTCP(opts)
			if err != nil {
				errs[r] = fmt.Errorf("bootstrap: %w", err)
				return
			}
			cfg := f.config(k, func() *nn.Model {
				return nn.NewGraphSAGE(f.dim, 8, f.classes, 2)
			}, plan, fanouts)
			cfg.Transport = tr
			cfg.LocalRank = r
			cfg.Pipeline = pipelined
			e, err := New(cfg)
			if err != nil {
				errs[r] = fmt.Errorf("engine: %w", err)
				tr.Close()
				return
			}
			for ep := 0; ep < epochs; ep++ {
				e.RunEpoch()
			}
			if err := tr.Close(); err != nil {
				errs[r] = fmt.Errorf("close: %w", err)
				return
			}
			engines[r] = e
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return engines
}

func TestDistributedTCPBitIdentical(t *testing.T) {
	const epochs = 2
	fanouts := []int{4, 4} // sampled fanout: exercises the per-rank RNG streams too
	for _, world := range []int{2, 4} {
		for _, k := range []strategy.Kind{strategy.GDP, strategy.NFP, strategy.SNP, strategy.DNP} {
			// The prefetch-overlapped epoch loop uses the same collectives
			// in the same order, so the pipelined TCP engines must match
			// the synchronous in-process baseline bit for bit too.
			for _, pipelined := range []bool{false, true} {
				name := fmt.Sprintf("world%d/%v", world, k)
				if pipelined {
					name += "/pipelined"
				}
				t.Run(name, func(t *testing.T) {
					// In-process baseline: same task, all workers as goroutines
					// over channel transport, always synchronous.
					f := newFixture(t, world, 160)
					plan := sample.SplitEven(f.seeds, world, graph.NewRNG(3))
					base, err := New(f.config(k, func() *nn.Model {
						return nn.NewGraphSAGE(f.dim, 8, f.classes, 2)
					}, plan, fanouts))
					if err != nil {
						t.Fatalf("baseline engine: %v", err)
					}
					var baseLoss float64
					for ep := 0; ep < epochs; ep++ {
						baseLoss = base.RunEpoch().Totals.LossSum
					}

					engines := trainDistributed(t, world, k, fanouts, epochs, pipelined)
					for r := 0; r < world; r++ {
						requireParamsExact(t, fmt.Sprintf("rank %d vs in-process", r),
							engines[r].Model(r).Params(), base.Model(0).Params())
					}
					// Replicas across rank processes must agree with each other
					// too (rank r only ever touched its own worker's replica).
					for r := 1; r < world; r++ {
						requireParamsExact(t, fmt.Sprintf("rank %d vs rank 0", r),
							engines[r].Model(r).Params(), engines[0].Model(0).Params())
					}
					if baseLoss == 0 {
						t.Fatal("baseline epoch loss is zero; test is vacuous")
					}
				})
			}
		}
	}
}

func TestDistributedConfigValidation(t *testing.T) {
	f := newFixture(t, 2, 160)
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))
	mk := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }

	cfg := f.config(strategy.GDP, mk, plan, []int{4, 4})
	cfg.Transport = comm.NewChanTransport(3)
	if _, err := New(cfg); err == nil {
		t.Error("transport world 3 accepted for 2 devices")
	}
	cfg = f.config(strategy.GDP, mk, plan, []int{4, 4})
	cfg.Transport = comm.NewChanTransport(2)
	cfg.LocalRank = 2
	if _, err := New(cfg); err == nil {
		t.Error("local rank 2 accepted for world 2")
	}
}
