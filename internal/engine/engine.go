// Package engine implements APT's unified execution engine (paper
// §4.2): a single worker harness that can be configured to run any of
// the four parallelization strategies. Each simulated GPU is driven by
// one goroutine; every mini-batch step decomposes into the paper's
// Permute / Shuffle / Execute / Reshuffle stages, realized by the
// per-strategy layer-1 runners in gdp.go, nfp.go, snp.go, and dnp.go.
// Layers above the first always run data-parallel (paper §3.1: "All
// strategies target the first layer").
//
// The engine has two modes sharing one code path:
//
//   - Real: floats move and models train; used for correctness tests,
//     the semantic-equivalence sanity check (paper Fig. 6), and the
//     examples.
//   - Accounting: the same sampling, partitioning, caching, and
//     dispatch logic runs and every payload is charged to the simulated
//     clocks, but numeric kernels are skipped; used by the benchmark
//     harness to reproduce the paper's epoch-time figures quickly.
package engine

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Mode selects real execution or volume accounting.
type Mode int

// Execution modes.
const (
	// Real moves floats and trains the model.
	Real Mode = iota
	// Accounting runs the full dispatch logic but skips numeric work.
	Accounting
)

// Config assembles everything one engine run needs. The Store must
// already be configured (caches + host placement) by the caller — APT's
// Adapt step does that in package core.
type Config struct {
	Platform *hardware.Platform
	Graph    *graph.Graph
	// Store is the unified feature store (nil features => accounting).
	Store *cache.Store
	// NewModel constructs one model replica; the engine creates one
	// per device and initializes all replicas identically from Seed.
	NewModel func() *nn.Model
	// NewOptimizer constructs one optimizer per device (real mode).
	NewOptimizer func() nn.Optimizer
	// Labels are node class labels (real mode).
	Labels []int32
	// Seeds are the training seed nodes.
	Seeds []graph.NodeID
	// Sampling configures neighbor sampling. IncludeDstInSrc is forced
	// on when the model needs it.
	Sampling sample.Config
	// BatchSize is the per-device mini-batch size (paper: 1024).
	BatchSize int
	// Assign maps node -> owning device for SNP/DNP.
	Assign []int32
	// Kind selects the parallelization strategy.
	Kind strategy.Kind
	Mode Mode
	Seed uint64
	// ForceSeedPlan overrides per-strategy seed assignment with a fixed
	// plan; the strategy-equivalence tests use it so every strategy
	// trains on identical mini-batches.
	ForceSeedPlan *sample.SeedPlan
	// PreSampled supplies ready-made mini-batches indexed
	// [device][step], bypassing the sampler (requires ForceSeedPlan
	// describing the same batches). The planner's dry-run uses it to
	// dispatch ONE epoch of samples under all four strategies, the
	// paper's "the same graph samples are reused during dry-run"
	// optimization. Sampling time is still charged once per batch.
	PreSampled [][]*sample.MiniBatch
	// RecordTimeline captures per-step stage times into
	// EpochStats.Timeline (small overhead; off by default).
	RecordTimeline bool
	// Pipeline overlaps each worker's sampling with its compute: a
	// per-worker prefetch goroutine samples mini-batch t+1 while batch t
	// computes, bounded by a channel of depth PipelineDepth. Real mode
	// trains bit-identically to the synchronous path (the prefetcher
	// preserves the sampler's RNG stream order); both modes additionally
	// track the overlapped schedule on the simulated clocks and report
	// it as EpochStats.MeasuredPipelinedSec.
	Pipeline bool
	// PipelineDepth bounds how many sampled batches may wait ahead of
	// compute (<=0 selects the default of 2).
	PipelineDepth int
	// Spans, when non-nil, collects per-step spans (stage, device,
	// step, bytes, simulated clock) onto one track per device — plus a
	// sampler track and a comm track each — for the Chrome trace and
	// text timeline exporters. Nil keeps the hot path allocation-free:
	// every emission point is a nil *obs.Track no-op.
	Spans *obs.Collector
	// Transport, when non-nil, runs the engine distributed: the
	// collectives cross this fabric (e.g. transport.TCP, one OS process
	// per rank) instead of in-process channels, and only the worker for
	// LocalRank runs here. Every rank process must build the engine
	// from an IDENTICAL Config (same graph, seed, plan, store layout) —
	// the engine's determinism then guarantees the replicas stay
	// bit-identical without any parameter broadcast. Aggregated
	// EpochStats cover only the local worker in this mode.
	Transport comm.Transport
	// LocalRank is this process's rank/device ID; consulted only when
	// Transport is non-nil.
	LocalRank int
	// GradCompress selects the gradient-allreduce wire codec: "" or
	// "fp32" for exact float32, "fp16" for half precision, "int8" for
	// 8-bit quantization with an error-feedback residual (DESIGN
	// decision 18). Compression changes only what crosses the wire;
	// every rank still decodes identical bytes, so the replicas stay
	// bit-identical to each other (not to an uncompressed run).
	GradCompress string
}

// Engine executes GNN training under one strategy.
type Engine struct {
	cfg      Config
	Group    *device.Group
	Comm     *comm.Comm
	models   []*nn.Model
	opts     []nn.Optimizer
	samplers []*sample.Sampler
	runner   layer1Runner
	epochRNG *graph.RNG
	workers  []*worker
	// gradCodec compresses the gradient allreduce wire (nil = fp32).
	gradCodec comm.ChunkCodec
	// spanBase offsets span start times by the simulated time of all
	// previous epochs, so a multi-epoch trace reads as one timeline
	// (device clocks reset every epoch).
	spanBase float64
	// epochsRun counts epochs completed in full (cancelled epochs are
	// excluded); see EpochsRun.
	epochsRun int
}

// layer1Runner executes the strategy-specific first layer.
type layer1Runner interface {
	// forward returns the layer-1 output for the worker's own block
	// (nil in accounting mode) plus a context for backward.
	forward(w *worker, mb *sample.MiniBatch) (*tensor.Matrix, any)
	// backward consumes the gradient w.r.t. the worker's layer-1
	// output (nil in accounting mode).
	backward(w *worker, mb *sample.MiniBatch, ctx any, dH *tensor.Matrix)
	// backwardIsLocal reports whether backward issues no collectives,
	// letting the bucketed gradient sync keep its ring transfers in
	// flight across the call (see gradSync's concurrency contract).
	backwardIsLocal() bool
}

// worker is the per-device execution state.
type worker struct {
	eng      *Engine
	dev      *device.Device
	model    *nn.Model
	opt      nn.Optimizer
	stats    *WorkerStats
	timeline []StepTrace
	// pipelinedSec is the worker's simulated finish time under the
	// overlapped schedule (pipelined mode only); kept off WorkerStats so
	// aggregation maxes it instead of summing.
	pipelinedSec float64
	// spanDev/spanSmp are the worker's span tracks (nil when
	// observability is off); spanCursor is the device track's position
	// on the simulated clock within the current epoch.
	spanDev    *obs.Track
	spanSmp    *obs.Track
	spanCursor float64
	// stopPrefetch tells the worker's prefetch goroutine to quit early
	// after the compute loop agreed on cancellation.
	stopPrefetch atomic.Bool
	// unionStamp/unionGen/unionBuf are the reusable stamp-scratch
	// behind unionNodes (see load.go): per-node generation stamps plus
	// the union output buffer, both reused across steps.
	unionStamp []int32
	unionGen   int32
	unionBuf   []graph.NodeID
	// labelBuf is the per-step label gather scratch, reused across steps.
	labelBuf []int32
	// gsync is the bucketed backward-overlapped gradient sync (real
	// mode, more than one device; nil otherwise — see gradsync.go).
	gsync *gradSync
}

func (w *worker) real() bool { return w.eng.cfg.Mode == Real }

// New validates the configuration and assembles an engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("engine: nil feature store")
	}
	if cfg.NewModel == nil {
		return nil, fmt.Errorf("engine: nil model factory")
	}
	if cfg.Kind.NeedsPartition() {
		if cfg.Assign == nil {
			return nil, fmt.Errorf("engine: %v requires a graph partition", cfg.Kind)
		}
		if len(cfg.Assign) != cfg.Graph.NumNodes() {
			return nil, fmt.Errorf("engine: partition covers %d nodes, graph has %d",
				len(cfg.Assign), cfg.Graph.NumNodes())
		}
		n := int32(cfg.Platform.NumDevices())
		for v, a := range cfg.Assign {
			if a < 0 || a >= n {
				return nil, fmt.Errorf("engine: node %d assigned to device %d of %d", v, a, n)
			}
		}
	}
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("engine: batch size %d", cfg.BatchSize)
	}
	e := &Engine{cfg: cfg}
	e.Group = device.NewGroup(cfg.Platform)
	n := cfg.Platform.NumDevices()
	if cfg.Transport != nil {
		if w := cfg.Transport.World(); w != n {
			return nil, fmt.Errorf("engine: transport world %d != %d devices", w, n)
		}
		if cfg.LocalRank < 0 || cfg.LocalRank >= n {
			return nil, fmt.Errorf("engine: local rank %d outside [0, %d)", cfg.LocalRank, n)
		}
		e.Comm = comm.NewWithTransport(e.Group, cfg.Transport)
	} else {
		e.Comm = comm.New(e.Group)
	}

	probe := cfg.NewModel()
	if probe.NeedsDstInSrc() {
		e.cfg.Sampling.IncludeDstInSrc = true
	}
	if cfg.Mode == Real && cfg.Labels == nil {
		return nil, fmt.Errorf("engine: real mode requires labels")
	}

	for d := 0; d < n; d++ {
		m := cfg.NewModel()
		m.Init(graph.NewRNG(cfg.Seed)) // identical replicas
		e.models = append(e.models, m)
		if cfg.NewOptimizer != nil {
			e.opts = append(e.opts, cfg.NewOptimizer())
		} else {
			e.opts = append(e.opts, nn.NewSGD(0.1, 0))
		}
		e.samplers = append(e.samplers, sample.NewSampler(
			cfg.Graph, e.cfg.Sampling, graph.NewRNG(cfg.Seed^uint64(0x9e37+d*7919))))
	}
	e.epochRNG = graph.NewRNG(cfg.Seed ^ 0xabcdef)

	switch cfg.Kind {
	case strategy.GDP:
		e.runner = &gdpRunner{}
	case strategy.NFP:
		e.runner = newNFPRunner(e)
	case strategy.SNP:
		e.runner = &snpRunner{}
	case strategy.DNP:
		e.runner = &dnpRunner{}
	case strategy.Hybrid:
		e.runner = newHybridRunner(e)
	default:
		return nil, fmt.Errorf("engine: unsupported strategy %v", cfg.Kind)
	}
	// Device memory: the configured feature cache occupies arena space
	// for the whole run (after the runner may have narrowed LoadDim).
	for d := 0; d < n; d++ {
		cacheBytes := int64(len(cfg.Store.CachedList(d))) * int64(4*cfg.Store.LoadDim)
		cacheBytes += int64(len(cfg.Store.QCachedList(d))) * tensor.QuantRowBytes(cfg.Store.LoadDim)
		e.Group.Devices[d].Alloc(cacheBytes)
	}
	for d := 0; d < n; d++ {
		e.workers = append(e.workers, &worker{
			eng:   e,
			dev:   e.Group.Devices[d],
			model: e.models[d],
			opt:   e.opts[d],
			stats: &WorkerStats{},
		})
	}
	codec, err := transport.ChunkCodecByName(cfg.GradCompress)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e.gradCodec = codec
	if cfg.Mode == Real && n > 1 {
		ef := codec != nil && codec.Name() == "int8"
		for _, w := range e.workers {
			w.gsync = newGradSync(w, codec, ef)
		}
	}
	if cfg.Spans != nil {
		for d := 0; d < n; d++ {
			e.workers[d].spanDev = cfg.Spans.AddTrack("device", fmt.Sprintf("dev%d", d))
		}
		for d := 0; d < n; d++ {
			e.workers[d].spanSmp = cfg.Spans.AddTrack("sampler", fmt.Sprintf("dev%d/sampler", d))
		}
		links := make([]*obs.Track, n)
		for d := 0; d < n; d++ {
			links[d] = cfg.Spans.AddTrack("comm", fmt.Sprintf("dev%d/comm", d))
		}
		e.Comm.Spans = links
		e.Comm.SpanBase = &e.spanBase
	}
	return e, nil
}

// Model returns device dev's model replica (replicas stay identical
// across devices after every step).
func (e *Engine) Model(dev int) *nn.Model { return e.models[dev] }

// layer0 returns a worker's first-layer instance.
func (w *worker) layer0() nn.Layer { return w.model.Layers[0] }

// gatherFallback is the layer-0 context for layers without gather-fused
// kernels: it parks the materialized input copy so backward can recycle
// it.
type gatherFallback struct {
	x   *tensor.Matrix
	lct nn.LayerCtx
}

// forwardLayer0Gathered runs layer 0 reading the feature store through
// idx directly (no materialized gather) when the layer supports it,
// falling back to an explicit gather otherwise. Real mode only.
func (w *worker) forwardLayer0Gathered(blk *sample.Block, idx []graph.NodeID) (*tensor.Matrix, any) {
	feats := w.eng.cfg.Store.FeatView(w.dev.ID)
	if gl, ok := w.layer0().(nn.GatherLayer); ok {
		out, lct := gl.ForwardGathered(blk, feats, idx)
		return out, lct
	}
	x := tensor.Get(len(idx), feats.F.Cols)
	tensor.GatherIntoSrc(x, feats, idx)
	out, lct := w.layer0().Forward(blk, x)
	return out, &gatherFallback{x: x, lct: lct}
}

// backwardLayer0Params consumes a forwardLayer0Gathered context:
// parameter gradients only — the layer-0 input gradient is w.r.t. raw
// features and was always discarded, so the fused path never computes
// it.
func (w *worker) backwardLayer0Params(blk *sample.Block, lct any, dOut *tensor.Matrix) {
	if fb, ok := lct.(*gatherFallback); ok {
		tensor.Put(w.layer0().Backward(blk, fb.lct, dOut))
		tensor.Put(fb.x)
		return
	}
	w.layer0().(nn.GatherLayer).BackwardParams(blk, lct, dOut)
}

// seedPlan builds the epoch's per-device seed assignment: partition
// owners for SNP/DNP (paper §3.2), an even shuffle otherwise.
func (e *Engine) seedPlan() *sample.SeedPlan {
	if e.cfg.ForceSeedPlan != nil {
		return e.cfg.ForceSeedPlan
	}
	n := e.cfg.Platform.NumDevices()
	if e.cfg.Kind.NeedsPartition() {
		return sample.SplitByOwner(e.cfg.Seeds, e.cfg.Assign, n, e.epochRNG)
	}
	return sample.SplitEven(e.cfg.Seeds, n, e.epochRNG)
}

// EnablePipeline switches the engine to prefetch-overlapped execution
// (see Config.Pipeline); depth <= 0 selects the default channel depth.
func (e *Engine) EnablePipeline(depth int) {
	e.cfg.Pipeline = true
	e.cfg.PipelineDepth = depth
}

// RunEpoch executes one training epoch and returns its statistics.
func (e *Engine) RunEpoch() EpochStats {
	st, _ := e.RunEpochContext(context.Background())
	return st
}

// RunEpochContext executes one training epoch under ctx. Cancellation
// stops the epoch cleanly at the next synchronized step boundary: the
// decision is taken collectively (every worker exchanges its view of
// ctx before each step), so the lockstep collectives never deadlock on
// a worker that stopped early. The returned statistics cover the steps
// that actually ran; the error is ctx.Err() when the epoch was cut
// short, nil otherwise. A background (non-cancellable) context adds no
// per-step synchronization.
func (e *Engine) RunEpochContext(ctx context.Context) (EpochStats, error) {
	e.Group.ResetClocks()
	for _, w := range e.workers {
		*w.stats = WorkerStats{}
		w.pipelinedSec = 0
		w.spanCursor = 0
		w.stopPrefetch.Store(false)
	}
	plan := e.seedPlan()
	nb := plan.NumBatches(e.cfg.BatchSize)
	runWorker := func(dev int) {
		if e.cfg.Pipeline {
			e.workerEpochPipelined(ctx, e.workers[dev], plan, nb)
		} else {
			e.workerEpoch(ctx, e.workers[dev], plan, nb)
		}
	}
	if e.cfg.Transport != nil {
		// Distributed: the other ranks run in their own processes; this
		// engine instance holds their (identical) replicas but drives only
		// its own worker. The collectives synchronize across the fabric
		// exactly as RunParallel's goroutines do in-process.
		runWorker(e.cfg.LocalRank)
	} else {
		comm.RunParallel(len(e.workers), runWorker)
	}
	st := e.collectStats(nb)
	if ctx.Err() == nil {
		e.epochsRun++
	}
	if e.cfg.Spans != nil {
		// Advance the trace time base by the serialized epoch time: every
		// device's per-epoch clock is bounded by it, so epochs never
		// overlap on the exported timeline.
		e.spanBase += st.EpochTime()
	}
	return st, ctx.Err()
}

// stopAgreed decides cancellation collectively: all workers exchange
// their view of ctx and stop if any of them saw it cancelled. Workers
// must call it at the same step boundaries.
func (e *Engine) stopAgreed(ctx context.Context, w *worker) bool {
	return e.Comm.AnyTrue(w.dev.ID, ctx.Err() != nil)
}

// workerEpoch drives one device through all synchronized steps.
func (e *Engine) workerEpoch(ctx context.Context, w *worker, plan *sample.SeedPlan, numBatches int) {
	B := e.cfg.BatchSize
	cancellable := ctx.Done() != nil
	record := e.cfg.RecordTimeline
	var snap stageSnapshot
	if record || w.spanDev != nil {
		w.timeline = w.timeline[:0]
		snap = snapshotOf(w.dev)
	}
	for step := 0; step < numBatches; step++ {
		if cancellable && e.stopAgreed(ctx, w) {
			break
		}
		seeds := plan.Batch(w.dev.ID, step, B)
		var mb *sample.MiniBatch
		if e.cfg.PreSampled != nil {
			mb = e.cfg.PreSampled[w.dev.ID][step]
			seeds = mb.Seeds
		} else {
			mb = e.samplers[w.dev.ID].Sample(seeds)
		}
		var edges int64
		for _, b := range mb.Blocks {
			edges += b.NumEdges()
		}
		w.dev.Charge(device.StageSample, e.cfg.Platform.SampleTime(edges))
		w.stats.SampledEdges += edges

		e.computeStep(w, plan, step, seeds, mb)
		if w.real() && e.cfg.PreSampled == nil {
			// The engine sampled this batch itself, and completing the
			// step's gradient sync means every worker is past its backward
			// pass (see gradSync.finish's causal argument) — no peer still
			// reads this batch's blocks through a shipped reference.
			// Recycling the block storage keeps the steady-state loop off
			// the allocator. Accounting mode has no such guarantee
			// (nothing real is exchanged), and pre-sampled batches belong
			// to the caller, so both skip it.
			mb.Recycle()
		}
		if record || w.spanDev != nil {
			cur := snapshotOf(w.dev)
			st := stepDelta(step, snap, cur)
			snap = cur
			if record {
				w.timeline = append(w.timeline, st)
			}
			w.emitSyncSpans(st)
		}
	}
}

// emitSyncSpans lays one synchronous step's stages end to end on the
// worker's device track: under synchronous execution the stages really
// do serialize on the device, so the span timeline is the truth, not a
// rendering choice.
func (w *worker) emitSyncSpans(st StepTrace) {
	if w.spanDev == nil {
		return
	}
	cur := w.eng.spanBase + w.spanCursor
	for _, sp := range [5]struct {
		stage string
		dur   float64
	}{
		{device.StageSample, st.SampleSec},
		{device.StageBuild, st.BuildSec},
		{device.StageLoad, st.LoadSec},
		{device.StageTrain, st.TrainSec},
		{device.StageShuffle, st.ShuffSec},
	} {
		w.spanDev.Emit(sp.stage, st.Step, cur, sp.dur, 0)
		cur += sp.dur
	}
	w.spanCursor = cur - w.eng.spanBase
}

// computeStep runs everything past sampling for one mini-batch: the
// strategy's layer 1, the data-parallel upper layers, loss/backward in
// real mode, and gradient synchronization. Shared by the synchronous
// and pipelined epoch loops.
func (e *Engine) computeStep(w *worker, plan *sample.SeedPlan, step int, seeds []graph.NodeID, mb *sample.MiniBatch) {
	global := 0
	for d := range plan.PerWorker {
		global += len(plan.Batch(d, step, e.cfg.BatchSize))
	}
	w.stats.Layer1Dst += int64(mb.Layer1().NumDst())
	w.stats.SeedsProcessed += int64(len(seeds))

	h, ctx := e.runner.forward(w, mb)

	var st *nn.ForwardState
	var dLogits, dH *tensor.Matrix
	if w.real() {
		st = w.model.ForwardPartial(mb, 1, h)
		e.chargeUpperLayers(w, mb, false)
		if cap(w.labelBuf) < len(seeds) {
			w.labelBuf = make([]int32, len(seeds))
		}
		labels := w.labelBuf[:len(seeds)]
		for i, s := range seeds {
			labels[i] = e.cfg.Labels[s]
		}
		var loss float64
		loss, dLogits = nn.SoftmaxCrossEntropy(st.Logits, labels, maxInt(global, 1))
		w.stats.LossSum += loss
		if w.gsync != nil {
			// Bucketed DDP-style sync: as each upper layer's backward
			// completes, charge its compute and launch its gradient
			// bucket's ring allreduce — the transfers overlap the
			// remaining backward work on the sync goroutine.
			w.gsync.beginStep()
			dH = w.model.BackwardPartialHooked(mb, st, 0, dLogits, func(l int) {
				blk := mb.Blocks[l]
				w.chargeLayerCompute(w.model.Layers[l], int64(blk.NumSrc()), blk.NumEdges(), true)
				w.gsync.launchLayer(l)
			})
			if !e.runner.backwardIsLocal() {
				// The layer-1 backward issues collectives of its own; the
				// in-flight buckets must complete first so only one
				// goroutine per rank touches the transport at a time.
				w.gsync.drainInFlight()
			}
			e.runner.backward(w, mb, ctx, dH)
			w.gsync.launchLayer(0)
			w.gsync.finish()
		} else {
			dH = w.model.BackwardPartial(mb, st, 0, dLogits)
			e.chargeUpperLayers(w, mb, true)
			e.runner.backward(w, mb, ctx, dH)
			e.syncGradients(w)
		}
		w.opt.Step(w.model.Params())
		w.model.ZeroGrad()
		// Completing the step's gradient sync guarantees every worker is
		// past this step's backward (each peer's final ring hop happens
		// after it launched its last bucket, which follows its backward;
		// at world 1 there are no peers), so no peer still reads any of
		// the step's tensors through a shipped reference — the whole
		// forward/backward working set can go back to the pool. Without
		// this the activations are the loop's steadiest garbage, and the
		// GC they force keeps flushing the very pools the kernels rely
		// on for allocation-free steady state.
		w.model.ReleaseActivations(st, 1)
		tensor.Put(h)
		if dH != dLogits {
			tensor.Put(dH)
		}
		tensor.Put(dLogits)
	} else {
		e.chargeUpperLayers(w, mb, false)
		e.chargeUpperLayers(w, mb, true)
		e.runner.backward(w, mb, ctx, nil)
		e.syncGradients(w)
	}
}

// syncGradients is the unbucketed gradient synchronization: one flat
// allreduce per step, charged to the train stage. Real mode reaches it
// only at world 1 (multi-device real runs use the bucketed overlapped
// gradSync); accounting mode always charges this single collective.
func (e *Engine) syncGradients(w *worker) {
	total := w.model.NumParamElements()
	// Record the gradient-sync cost explicitly even on this path: the
	// whole collective is exposed (nothing hides it), so the cost models
	// see GradExposedSec == GradCommSec here, against which a bucketed
	// real run's measured overlap can be compared.
	sec, _, _ := e.Comm.AllReduceModel(total, e.gradCodec)
	w.stats.GradCommSec += sec
	w.stats.GradExposedSec += sec
	if w.real() {
		flat := tensor.Get(1, total)
		off := 0
		for _, p := range w.model.Params() {
			copy(flat.Data[off:], p.G.Data)
			off += len(p.G.Data)
		}
		sum := e.Comm.AllReduceCodec(w.dev.ID, device.StageTrain, flat, 0, e.gradCodec)
		off = 0
		for _, p := range w.model.Params() {
			copy(p.G.Data, sum.Data[off:off+len(p.G.Data)])
			off += len(p.G.Data)
		}
		tensor.Put(sum)
		// The ring ships views of its own scratch, never flat itself, so
		// flat can return to the pool immediately — no barrier needed.
		tensor.Put(flat)
	} else {
		e.Comm.AllReduceCodec(w.dev.ID, device.StageTrain, nil, int64(total)*4, e.gradCodec)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
