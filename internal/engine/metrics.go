package engine

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/obs"
)

// WorkerStats accumulates per-device counters over one epoch. The
// planner's cost models consume the volume counters; the figures
// consume the stage times.
type WorkerStats struct {
	// Load aggregates feature-read statistics by location.
	Load cache.LoadStats
	// GraphA2ABytes / GraphBcastBytes count sampled-subgraph shipping
	// (T_build's communication part) by collective operator: SNP/DNP
	// use all-to-all, NFP broadcasts.
	GraphA2ABytes   int64
	GraphBcastBytes int64
	// HiddenA2ABytes / HiddenBcastBytes count hidden-embedding and
	// gradient shipping (T_shuffle) by operator.
	HiddenA2ABytes   int64
	HiddenBcastBytes int64
	// Collective call counts per stage; the cost model charges each
	// call's fixed latency (significant at scaled-down payload sizes).
	BuildA2ACalls   int64
	BuildBcastCalls int64
	ShufA2ACalls    int64
	ShufBcastCalls  int64
	// VirtualNodes counts remote virtual nodes created by this worker
	// (SNP: N_vs contributions; DNP: N_vd contributions).
	VirtualNodes int64
	// Layer1Dst counts layer-1 destination nodes processed (N_d).
	Layer1Dst int64
	// SampledEdges counts edges drawn by graph sampling.
	SampledEdges int64
	// SeedsProcessed counts seeds this worker trained on.
	SeedsProcessed int64
	// LossSum accumulates the worker's (globally scaled) loss
	// contributions; summing across workers gives mean batch loss.
	LossSum float64
	// GradCommSec is the modeled gradient-allreduce time of the
	// bucketed sync (sum over buckets); GradExposedSec is how much of
	// it the backward pass failed to hide — the part actually charged
	// to the train stage. Their ratio is the measured overlap the cost
	// models can learn from. Both zero outside bucketed real mode.
	GradCommSec    float64
	GradExposedSec float64
}

// GraphShuffleBytes is the total subgraph-shipping volume.
func (s WorkerStats) GraphShuffleBytes() int64 { return s.GraphA2ABytes + s.GraphBcastBytes }

// HiddenShuffleBytes is the total hidden-embedding volume.
func (s WorkerStats) HiddenShuffleBytes() int64 { return s.HiddenA2ABytes + s.HiddenBcastBytes }

func (s *WorkerStats) add(o *WorkerStats) {
	s.Load.Add(o.Load)
	s.GraphA2ABytes += o.GraphA2ABytes
	s.GraphBcastBytes += o.GraphBcastBytes
	s.HiddenA2ABytes += o.HiddenA2ABytes
	s.HiddenBcastBytes += o.HiddenBcastBytes
	s.BuildA2ACalls += o.BuildA2ACalls
	s.BuildBcastCalls += o.BuildBcastCalls
	s.ShufA2ACalls += o.ShufA2ACalls
	s.ShufBcastCalls += o.ShufBcastCalls
	s.VirtualNodes += o.VirtualNodes
	s.Layer1Dst += o.Layer1Dst
	s.SampledEdges += o.SampledEdges
	s.SeedsProcessed += o.SeedsProcessed
	s.LossSum += o.LossSum
	s.GradCommSec += o.GradCommSec
	s.GradExposedSec += o.GradExposedSec
}

// EpochStats is one epoch's outcome: the paper's time decomposition
// (stage time = max across devices, synchronous steps) plus the volume
// totals the cost models need.
type EpochStats struct {
	// SampleSec is graph-sampling time.
	SampleSec float64
	// BuildSec is computation-graph shuffle time (with SampleSec it
	// forms the figures' "sampling" bar and the cost model's T_build).
	BuildSec float64
	// LoadSec is feature-loading time (T_load).
	LoadSec float64
	// TrainSec is model-computation time (T_train).
	TrainSec float64
	// ShuffleSec is hidden-embedding shuffle time (T_shuffle; the
	// figures fold it into the training bar).
	ShuffleSec float64

	// Totals aggregates the per-worker counters; PerDevice keeps each
	// device's own counters (the cost model uses per-device maxima to
	// capture load imbalance under synchronous stages).
	Totals    WorkerStats
	PerDevice []WorkerStats
	// NumBatches is the synchronized step count.
	NumBatches int
	// MeasuredPipelinedSec is the epoch time actually tracked by the
	// pipelined engine (Config.Pipeline): the max across workers of the
	// overlapped sample/compute schedule on the simulated clocks. Zero
	// when the engine ran synchronously. Always <= EpochTime() and >=
	// the idealized PipelinedTime() lower bound is NOT guaranteed —
	// PipelinedTime assumes three-way overlap of sampling, loading, and
	// training, while the engine overlaps sampling against everything
	// else, so the measured value sits between the two in practice.
	MeasuredPipelinedSec float64
	// MeanLoss is the average global mini-batch loss (real mode).
	MeanLoss float64
	// OOM reports whether any device overflowed its memory.
	OOM bool
	// Timeline holds per-step stage maxima when Config.RecordTimeline
	// is set.
	Timeline []StepTrace
}

// EpochTime is the total epoch time under synchronous stages.
func (s EpochStats) EpochTime() float64 {
	return s.SampleSec + s.BuildSec + s.LoadSec + s.TrainSec + s.ShuffleSec
}

// SamplingBar and TrainBar group stages the way the paper's stacked
// figures do: subgraph shuffling counts as sampling, hidden shuffling
// as training.
func (s EpochStats) SamplingBar() float64 { return s.SampleSec + s.BuildSec }

// TrainBar groups training compute with hidden-embedding shuffling.
func (s EpochStats) TrainBar() float64 { return s.TrainSec + s.ShuffleSec }

// PipelinedTime estimates the epoch under pipelined execution
// (GNNLab/DSP-style): sampling, feature loading, and training of
// consecutive mini-batches overlap, so the epoch is gated by the
// slowest of the three pipelines rather than their sum. The engine
// itself executes synchronously (like the paper's); this estimate
// bounds what overlap could recover.
func (s EpochStats) PipelinedTime() float64 {
	stages := [3]float64{s.SamplingBar(), s.LoadSec, s.TrainBar()}
	mx := stages[0]
	for _, v := range stages[1:] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// String renders a one-line summary.
func (s EpochStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %.3fs (sample %.3f build %.3f load %.3f train %.3f shuffle %.3f)",
		s.EpochTime(), s.SampleSec, s.BuildSec, s.LoadSec, s.TrainSec, s.ShuffleSec)
	if s.MeasuredPipelinedSec > 0 {
		fmt.Fprintf(&b, " [pipelined %.3fs]", s.MeasuredPipelinedSec)
	}
	if s.OOM {
		b.WriteString(" [OOM]")
	}
	return b.String()
}

// RecordEpochMetrics folds one epoch's volumes and stage times into
// the metrics registry under the apt_engine_* namespace — the unified
// home of the epoch volume accounting the cost models consume.
// Counters accumulate across epochs; gauges hold the last epoch.
func RecordEpochMetrics(r *obs.Registry, st EpochStats) {
	if r == nil {
		return
	}
	r.Counter("apt_engine_epochs_total", "Training epochs completed.").Inc()
	r.Counter("apt_engine_steps_total", "Synchronized mini-batch steps executed.").Add(int64(st.NumBatches))
	r.Counter("apt_engine_seeds_total", "Training seeds processed.").Add(st.Totals.SeedsProcessed)
	r.Counter("apt_engine_sampled_edges_total", "Edges drawn by graph sampling.").Add(st.Totals.SampledEdges)
	r.Counter("apt_engine_layer1_dst_total", "Layer-1 destination nodes processed (N_d).").Add(st.Totals.Layer1Dst)
	r.Counter("apt_engine_virtual_nodes_total", "Remote virtual nodes created (SNP/DNP).").Add(st.Totals.VirtualNodes)
	r.Counter("apt_engine_graph_shuffle_bytes_total", "Sampled-subgraph shipping volume (T_build).").Add(st.Totals.GraphShuffleBytes())
	r.Counter("apt_engine_hidden_shuffle_bytes_total", "Hidden-embedding shipping volume (T_shuffle).").Add(st.Totals.HiddenShuffleBytes())
	r.Counter("apt_engine_collective_calls_total", "Collective operations issued.").Add(
		st.Totals.BuildA2ACalls + st.Totals.BuildBcastCalls + st.Totals.ShufA2ACalls + st.Totals.ShufBcastCalls)
	var reads, gpuReads, gpuQReads int64
	for loc, n := range st.Totals.Load.Nodes {
		reads += n
		switch cache.Location(loc) {
		case cache.LocGPU:
			gpuReads = n
		case cache.LocGPUQ:
			gpuQReads = n
		}
	}
	r.Counter("apt_engine_feature_reads_total", "Feature rows read.").Add(reads)
	r.Counter("apt_engine_feature_cache_hits_total", "Feature rows served by the local GPU cache (either tier).").Add(gpuReads + gpuQReads)
	r.Counter("apt_engine_feature_cache_hits_int8_total", "Feature rows served by the int8 warm tier.").Add(gpuQReads)

	r.Gauge("apt_engine_epoch_seconds", "Last epoch's simulated time (synchronous stages).").Set(st.EpochTime())
	r.Gauge("apt_engine_sample_seconds", "Last epoch's graph-sampling time.").Set(st.SampleSec)
	r.Gauge("apt_engine_build_seconds", "Last epoch's computation-graph shuffle time (T_build).").Set(st.BuildSec)
	r.Gauge("apt_engine_load_seconds", "Last epoch's feature-loading time (T_load).").Set(st.LoadSec)
	r.Gauge("apt_engine_train_seconds", "Last epoch's model-computation time (T_train).").Set(st.TrainSec)
	r.Gauge("apt_engine_shuffle_seconds", "Last epoch's hidden-embedding shuffle time (T_shuffle).").Set(st.ShuffleSec)
	r.Gauge("apt_engine_pipelined_seconds", "Last epoch's measured overlapped time (0 when synchronous).").Set(st.MeasuredPipelinedSec)
	r.Gauge("apt_engine_grad_comm_seconds", "Last epoch's modeled gradient-allreduce time (sum over buckets and workers).").Set(st.Totals.GradCommSec)
	r.Gauge("apt_engine_grad_exposed_seconds", "Last epoch's unhidden gradient-allreduce time (the share backward compute failed to cover).").Set(st.Totals.GradExposedSec)
	r.Gauge("apt_engine_mean_loss", "Last epoch's mean global mini-batch loss (real mode).").Set(st.MeanLoss)
	oom := 0.0
	if st.OOM {
		oom = 1
	}
	r.Gauge("apt_engine_oom", "1 when any device overflowed its memory last epoch.").Set(oom)
}

// collectStats folds worker counters and device clocks into EpochStats.
func (e *Engine) collectStats(numBatches int) EpochStats {
	var st EpochStats
	st.NumBatches = numBatches
	for _, w := range e.workers {
		st.Totals.add(w.stats)
		st.PerDevice = append(st.PerDevice, *w.stats)
		if w.pipelinedSec > st.MeasuredPipelinedSec {
			st.MeasuredPipelinedSec = w.pipelinedSec
		}
	}
	mx := e.Group.StageMax(device.StageSample, device.StageBuild,
		device.StageLoad, device.StageTrain, device.StageShuffle)
	st.SampleSec = mx[device.StageSample]
	st.BuildSec = mx[device.StageBuild]
	st.LoadSec = mx[device.StageLoad]
	st.TrainSec = mx[device.StageTrain]
	st.ShuffleSec = mx[device.StageShuffle]
	if numBatches > 0 {
		st.MeanLoss = st.Totals.LossSum / float64(numBatches)
	}
	st.OOM = e.Group.AnyOOM()
	if e.cfg.RecordTimeline {
		st.Timeline = e.mergeTimelines(numBatches)
	}
	return st
}
