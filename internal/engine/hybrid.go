package engine

import "repro/internal/graph"

// newHybridRunner builds the paper's §5.2 conjecture as an extension:
// GDP is used across machines (no hidden embeddings cross the slow
// network) while SNP runs among the GPUs of each machine (to exploit
// their feature caches). Mechanically this is SNP with a modified
// owner rule: a source whose partition owner sits on another machine
// is treated as locally owned, so its feature is loaded by the
// requester exactly as under GDP.
func newHybridRunner(e *Engine) layer1Runner {
	p := e.cfg.Platform
	return &snpRunner{
		ownerOf: func(w *worker, u graph.NodeID) int32 {
			o := e.cfg.Assign[u]
			if p.SameMachine(int(o), w.dev.ID) {
				return o
			}
			return int32(w.dev.ID)
		},
	}
}
