package engine

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// nfpRunner is node feature parallel (paper §3.1, the P3 strategy):
// input features and the layer-1 model are partitioned by dimension —
// device c holds columns [lo_c, hi_c) of every node's feature and the
// matching rows of W¹. Every device broadcasts its layer-1 computation
// graph (AllBroadcast), computes partial projections and partial
// aggregates for ALL destinations from its feature shard, then a
// sparse allreduce (realized as an all-to-all to each destination's
// owner) assembles the full embeddings. The backward pass broadcasts
// the destination-embedding gradients so every device can produce its
// shard of the weight gradient.
type nfpRunner struct {
	lo, hi []int // per-device feature shard bounds
}

func newNFPRunner(e *Engine) *nfpRunner {
	n := e.cfg.Platform.NumDevices()
	d := e.models[0].Layers[0].InDim()
	r := &nfpRunner{lo: make([]int, n), hi: make([]int, n)}
	maxW := 0
	for c := 0; c < n; c++ {
		r.lo[c] = c * d / n
		r.hi[c] = (c + 1) * d / n
		if w := r.hi[c] - r.lo[c]; w > maxW {
			maxW = w
		}
	}
	// Per-node read volume under NFP is one shard, not the full row.
	e.cfg.Store.LoadDim = maxW
	return r
}

// shardOf returns the row-slice view [lo, hi) of a parameter matrix
// (rows are input dimensions, stored contiguously).
func shardOf(m *tensor.Matrix, lo, hi int) *tensor.Matrix {
	return tensor.FromData(hi-lo, m.Cols, m.Data[lo*m.Cols:hi*m.Cols])
}

type nfpSageCtx struct {
	blocks []*sample.Block
	out    *tensor.Matrix
	alloc  int64
}

type nfpGatCtx struct {
	blocks []*sample.Block
	attn   *nn.GATAttnCtx
	alloc  int64
}

func (r *nfpRunner) forward(w *worker, mb *sample.MiniBatch) (*tensor.Matrix, any) {
	switch l := w.layer0().(type) {
	case *nn.SAGELayer:
		return r.forwardSage(w, mb, l)
	case *nn.GATLayer:
		return r.forwardGat(w, mb, l)
	default:
		panic(fmt.Sprintf("engine: NFP does not support layer %T", l))
	}
}

// backwardIsLocal: NFP's backward broadcasts destination gradients, so
// the bucketed gradient sync must drain before it runs.
func (r *nfpRunner) backwardIsLocal() bool { return false }

func (r *nfpRunner) backward(w *worker, mb *sample.MiniBatch, ctx any, dH *tensor.Matrix) {
	switch l := w.layer0().(type) {
	case *nn.SAGELayer:
		r.backwardSage(w, mb, ctx.(*nfpSageCtx), l, dH)
	case *nn.GATLayer:
		r.backwardGat(w, mb, ctx.(*nfpGatCtx), l, dH)
	}
}

// gatherBlocks broadcasts every worker's layer-1 block (the NFP
// Shuffle stage) and returns them indexed by owner.
func (r *nfpRunner) gatherBlocks(w *worker, blk *sample.Block) []*sample.Block {
	n := w.eng.Comm.NumDevices()
	wire := blockWireBytes(blk)
	w.stats.GraphBcastBytes += wire * int64(n-1)
	in := w.allGather(device.StageBuild, payload{Data: blk, Bytes: wire})
	blocks := make([]*sample.Block, n)
	for j := range in {
		blocks[j] = in[j].Data.(*sample.Block)
	}
	return blocks
}

func (r *nfpRunner) forwardSage(w *worker, mb *sample.MiniBatch, layer *nn.SAGELayer) (*tensor.Matrix, any) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	dPrime := layer.OutDim()
	lo, hi := r.lo[me], r.hi[me]

	blocks := r.gatherBlocks(w, blk)
	ctx := &nfpSageCtx{blocks: blocks}

	// Execute: partial projection + partial aggregation for every
	// device's destinations from the local feature shard, with one
	// deduplicated shard charge across all broadcast blocks; the
	// projection reads the store's column shard through each block's
	// source list directly.
	srcLists := make([][]graph.NodeID, n)
	for j := 0; j < n; j++ {
		srcLists[j] = blocks[j].Src
	}
	w.chargeUnionLoad(srcLists)
	feats := e.cfg.Store.FeatView(w.dev.ID)
	partials := make([]payload, n)
	for j := 0; j < n; j++ {
		bj := blocks[j]
		w.chargeDense(2 * float64(bj.NumSrc()) * float64(hi-lo) * float64(dPrime))
		w.chargeSparse(2 * float64(bj.NumEdges()) * float64(dPrime))
		// The per-destination partials for every device's graph are the
		// intermediate whose footprint makes NFP overflow GPU memory at
		// large hidden dimensions (paper Fig. 10).
		ctx.alloc += wireFloats(bj.NumDst(), dPrime)
		if w.real() {
			z := tensor.GatherMatMulSliceSrc(feats, bj.Src, lo, hi, shardOf(layer.W.W, lo, hi))
			partials[j] = payload{Mat: tensor.SegmentSum(bj.EdgePtr, bj.SrcIdx, z)}
			tensor.Put(z)
		} else {
			partials[j] = payload{Bytes: wireFloats(bj.NumDst(), dPrime)}
		}
		if j != me {
			w.stats.HiddenA2ABytes += wireFloats(bj.NumDst(), dPrime)
		}
	}
	w.dev.Alloc(ctx.alloc)

	// Reshuffle (sparse allreduce): every destination's partials land
	// on its owner and are summed there.
	back := w.allToAll(device.StageShuffle, partials)
	if !w.real() {
		return nil, ctx
	}
	s := tensor.New(blk.NumDst(), dPrime)
	for j := 0; j < n; j++ {
		s.AddInPlace(back[j].Mat)
	}
	layer.NormalizeAggregate(blk, s)
	out := layer.ApplyActivationOnly(s)
	ctx.out = out
	return out, ctx
}

func (r *nfpRunner) backwardSage(w *worker, mb *sample.MiniBatch, ctx *nfpSageCtx, layer *nn.SAGELayer, dH *tensor.Matrix) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	dPrime := layer.OutDim()
	lo, hi := r.lo[me], r.hi[me]
	defer w.dev.Free(ctx.alloc)

	var dS *tensor.Matrix
	if w.real() {
		dS = layer.ActivationBackwardOnly(ctx.out, dH)
		layer.NormalizeAggregate(blk, dS)
	}
	// Broadcast destination gradients; every device derives its weight
	// shard's gradient from them.
	wire := wireFloats(blk.NumDst(), dPrime)
	w.stats.HiddenBcastBytes += wire * int64(n-1)
	in := w.allGather(device.StageShuffle, payload{Mat: dS, Bytes: boolToBytes(dS == nil, wire)})

	gShard := shardOf(layer.W.G, lo, hi)
	feats := e.cfg.Store.FeatView(w.dev.ID)
	for j := 0; j < n; j++ {
		bj := ctx.blocks[j]
		w.chargeDense(2 * float64(bj.NumSrc()) * float64(hi-lo) * float64(dPrime))
		w.chargeSparse(2 * float64(bj.NumEdges()) * float64(dPrime))
		if w.real() {
			dZ := tensor.SegmentSumBackward(bj.EdgePtr, bj.SrcIdx, in[j].Mat, bj.NumSrc())
			tensor.GatherTMatMulAccSliceSrc(gShard, feats, bj.Src, lo, hi, dZ)
			tensor.Put(dZ)
		}
	}
}

func (r *nfpRunner) forwardGat(w *worker, mb *sample.MiniBatch, layer *nn.GATLayer) (*tensor.Matrix, any) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	heads, dh := layer.Heads, layer.OutPerHead()
	width := heads * dh
	lo, hi := r.lo[me], r.hi[me]

	blocks := r.gatherBlocks(w, blk)
	ctx := &nfpGatCtx{blocks: blocks}

	// Execute: partial per-head projections for every device's sources;
	// attention itself cannot be computed from a feature shard (paper
	// §3.3), so full projections must be assembled at the owner first —
	// NFP's extra attention communication, paid per source node.
	srcLists := make([][]graph.NodeID, n)
	for j := 0; j < n; j++ {
		srcLists[j] = blocks[j].Src
	}
	w.chargeUnionLoad(srcLists)
	feats := e.cfg.Store.FeatView(w.dev.ID)
	partials := make([]payload, n)
	for j := 0; j < n; j++ {
		bj := blocks[j]
		w.chargeDense(2 * float64(bj.NumSrc()) * float64(hi-lo) * float64(width))
		ctx.alloc += wireFloats(bj.NumSrc(), width)
		if w.real() {
			z := tensor.New(bj.NumSrc(), width)
			for k := 0; k < heads; k++ {
				zk := tensor.GatherMatMulSliceSrc(feats, bj.Src, lo, hi, shardOf(layer.Ws[k].W, lo, hi))
				for i := 0; i < zk.Rows; i++ {
					copy(z.Row(i)[k*dh:(k+1)*dh], zk.Row(i))
				}
				tensor.Put(zk)
			}
			partials[j] = payload{Mat: z}
		} else {
			partials[j] = payload{Bytes: wireFloats(bj.NumSrc(), width)}
		}
		if j != me {
			w.stats.HiddenA2ABytes += wireFloats(bj.NumSrc(), width)
		}
	}
	w.dev.Alloc(ctx.alloc)

	back := w.allToAll(device.StageShuffle, partials)
	w.chargeSparse(6 * float64(blk.NumEdges()) * float64(dh) * float64(heads))
	if !w.real() {
		return nil, ctx
	}
	zfull := tensor.New(blk.NumSrc(), width)
	for j := 0; j < n; j++ {
		zfull.AddInPlace(back[j].Mat)
	}
	zs := make([]*tensor.Matrix, heads)
	for k := 0; k < heads; k++ {
		zs[k] = tensor.New(blk.NumSrc(), dh)
		for i := 0; i < blk.NumSrc(); i++ {
			copy(zs[k].Row(i), zfull.Row(i)[k*dh:(k+1)*dh])
		}
	}
	out, attn := layer.AttentionForward(blk, zs)
	ctx.attn = attn
	return out, ctx
}

func (r *nfpRunner) backwardGat(w *worker, mb *sample.MiniBatch, ctx *nfpGatCtx, layer *nn.GATLayer, dH *tensor.Matrix) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	heads, dh := layer.Heads, layer.OutPerHead()
	width := heads * dh
	lo, hi := r.lo[me], r.hi[me]
	defer w.dev.Free(ctx.alloc)

	w.chargeSparse(12 * float64(blk.NumEdges()) * float64(dh) * float64(heads))
	var dZ *tensor.Matrix
	if w.real() {
		dZs := layer.AttentionBackward(blk, ctx.attn, dH)
		dZ = tensor.New(blk.NumSrc(), width)
		for k := 0; k < heads; k++ {
			for i := 0; i < blk.NumSrc(); i++ {
				copy(dZ.Row(i)[k*dh:(k+1)*dh], dZs[k].Row(i))
			}
		}
	}
	wire := wireFloats(blk.NumSrc(), width)
	w.stats.HiddenBcastBytes += wire * int64(n-1)
	in := w.allGather(device.StageShuffle, payload{Mat: dZ, Bytes: boolToBytes(dZ == nil, wire)})

	feats := e.cfg.Store.FeatView(w.dev.ID)
	for j := 0; j < n; j++ {
		bj := ctx.blocks[j]
		w.chargeDense(4 * float64(bj.NumSrc()) * float64(hi-lo) * float64(width))
		if w.real() {
			mat := in[j].Mat
			dZk := tensor.Get(mat.Rows, dh)
			for k := 0; k < heads; k++ {
				for i := 0; i < mat.Rows; i++ {
					copy(dZk.Row(i), mat.Row(i)[k*dh:(k+1)*dh])
				}
				gk := shardOf(layer.Ws[k].G, lo, hi)
				tensor.GatherTMatMulAccSliceSrc(gk, feats, bj.Src, lo, hi, dZk)
			}
			tensor.Put(dZk)
		}
	}
}

// boolToBytes returns wire when accounting (mat missing), 0 otherwise —
// matrices self-account through Payload.SizeBytes.
func boolToBytes(missing bool, wire int64) int64 {
	if missing {
		return wire
	}
	return 0
}
