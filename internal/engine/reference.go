package engine

import (
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Reference is the single-process sequential trainer that stands in
// for DGL/DistDGL in the paper's sanity checks (Fig. 6/7): a plain GDP
// loop with no engine machinery, used to cross-validate the unified
// engine's correctness and efficiency.
type Reference struct {
	Model   *nn.Model
	Opt     nn.Optimizer
	Feats   *tensor.Matrix
	Labels  []int32
	sampler *sample.Sampler
	rng     *graph.RNG
}

// NewReference builds a reference trainer. The model is initialized
// from seed exactly as the engine initializes its replicas.
func NewReference(g *graph.Graph, feats *tensor.Matrix, labels []int32,
	newModel func() *nn.Model, opt nn.Optimizer, smp sample.Config, seed uint64) *Reference {
	m := newModel()
	m.Init(graph.NewRNG(seed))
	if m.NeedsDstInSrc() {
		smp.IncludeDstInSrc = true
	}
	return &Reference{
		Model:   m,
		Opt:     opt,
		Feats:   feats,
		Labels:  labels,
		sampler: sample.NewSampler(g, smp, graph.NewRNG(seed^0x517cc1b7)),
		rng:     graph.NewRNG(seed ^ 0x2545f491),
	}
}

// TrainEpoch runs one epoch over seeds with the given batch size and
// returns the mean mini-batch loss.
func (r *Reference) TrainEpoch(seeds []graph.NodeID, batchSize int) float64 {
	shuffled := append([]graph.NodeID(nil), seeds...)
	r.rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var lossSum float64
	batches := 0
	for lo := 0; lo < len(shuffled); lo += batchSize {
		hi := lo + batchSize
		if hi > len(shuffled) {
			hi = len(shuffled)
		}
		batch := shuffled[lo:hi]
		lossSum += r.TrainStep(batch)
		batches++
	}
	if batches == 0 {
		return 0
	}
	return lossSum / float64(batches)
}

// TrainStep performs one optimization step on the given seeds and
// returns the batch loss.
func (r *Reference) TrainStep(batch []graph.NodeID) float64 {
	mb := r.sampler.Sample(batch)
	st := r.Model.ForwardGathered(mb, tensor.FS(r.Feats), mb.Layer1().Src)
	labels := make([]int32, len(batch))
	for i, s := range batch {
		labels[i] = r.Labels[s]
	}
	loss, dLogits := nn.SoftmaxCrossEntropy(st.Logits, labels, len(batch))
	r.Model.ZeroGrad()
	r.Model.Backward(mb, st, dLogits)
	r.Opt.Step(r.Model.Params())
	return loss
}

// Evaluate computes classification accuracy of model m on the given
// seeds, sampling with the provided configuration.
func Evaluate(g *graph.Graph, m *nn.Model, feats *tensor.Matrix, labels []int32,
	seeds []graph.NodeID, smp sample.Config, batchSize int, seed uint64) float64 {
	if m.NeedsDstInSrc() {
		smp.IncludeDstInSrc = true
	}
	sampler := sample.NewSampler(g, smp, graph.NewRNG(seed))
	correct, total := 0.0, 0
	for lo := 0; lo < len(seeds); lo += batchSize {
		hi := lo + batchSize
		if hi > len(seeds) {
			hi = len(seeds)
		}
		batch := seeds[lo:hi]
		mb := sampler.Sample(batch)
		st := m.ForwardGathered(mb, tensor.FS(feats), mb.Layer1().Src)
		lb := make([]int32, len(batch))
		for i, s := range batch {
			lb[i] = labels[s]
		}
		correct += nn.Accuracy(st.Logits, lb) * float64(len(batch))
		total += len(batch)
	}
	if total == 0 {
		return 0
	}
	return correct / float64(total)
}
