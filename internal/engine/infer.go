package engine

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Online inference over the unified engine's real-mode dataflow: the
// same sampler produces bipartite blocks, the same unified feature
// store serves the input features (hitting the hotness caches and
// charging simulated load time per the paper's position rules), and
// the model runs its inference-only forward on a simulated device.
// Each InferWorker owns one device and one sampler; the serving layer
// drives one goroutine per worker.

// InferConfig assembles everything an inference pool needs. The Store
// must be configured (host placement + caches) by the caller and must
// hold real features.
type InferConfig struct {
	Platform *hardware.Platform
	Graph    *graph.Graph
	// Store is the unified feature store; Feats must be non-nil.
	Store *cache.Store
	// Model is the trained model shared by all workers. Inference only
	// reads its parameters, so sharing one replica is safe.
	Model *nn.Model
	// Sampling configures neighbor sampling; IncludeDstInSrc is forced
	// on when the model needs it. Serving typically uses the training
	// fanouts (or sample.Full for deterministic answers).
	Sampling sample.Config
	// Workers bounds the pool size; 0 or negative selects one worker
	// per platform device, larger values are clamped.
	Workers int
	Seed    uint64
}

// Inferencer is a pool of inference workers over the simulated devices.
type Inferencer struct {
	cfg     InferConfig
	group   *device.Group
	workers []*InferWorker
}

// InferWorker executes inference mini-batches on one simulated device.
// A worker's methods must be driven by a single goroutine at a time;
// distinct workers run concurrently.
type InferWorker struct {
	inf     *Inferencer
	dev     *device.Device
	sampler *sample.Sampler
	// span, when non-nil, receives one sample/load/train span per batch
	// on the worker's serialized device clock; batchSeq numbers them.
	span     *obs.Track
	batchSeq int
}

// NewInferencer validates the configuration and builds the worker pool.
func NewInferencer(cfg InferConfig) (*Inferencer, error) {
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if cfg.Store == nil || cfg.Store.Feats == nil {
		return nil, fmt.Errorf("engine: inference requires a feature store with real features")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("engine: nil model")
	}
	if cfg.Graph == nil {
		return nil, fmt.Errorf("engine: nil graph")
	}
	if len(cfg.Sampling.Fanouts) != len(cfg.Model.Layers) {
		return nil, fmt.Errorf("engine: %d fanouts for %d model layers",
			len(cfg.Sampling.Fanouts), len(cfg.Model.Layers))
	}
	if cfg.Model.NeedsDstInSrc() {
		cfg.Sampling.IncludeDstInSrc = true
	}
	n := cfg.Platform.NumDevices()
	if cfg.Workers > 0 && cfg.Workers < n {
		n = cfg.Workers
	}
	inf := &Inferencer{cfg: cfg, group: device.NewGroup(cfg.Platform)}
	for w := 0; w < n; w++ {
		inf.workers = append(inf.workers, &InferWorker{
			inf: inf,
			dev: inf.group.Devices[w],
			sampler: sample.NewSampler(cfg.Graph, cfg.Sampling,
				graph.NewRNG(cfg.Seed^uint64(0x51e+w*7919))),
		})
	}
	return inf, nil
}

// AttachSpans gives every worker a span track in c; each inference
// batch then emits sample/load/train spans positioned on the worker's
// serialized device clock. Call before any Infer runs.
func (inf *Inferencer) AttachSpans(c *obs.Collector) {
	for i, w := range inf.workers {
		w.span = c.AddTrack("infer", fmt.Sprintf("worker%d", i))
	}
}

// NumWorkers returns the pool size.
func (inf *Inferencer) NumWorkers() int { return len(inf.workers) }

// Worker returns worker w.
func (inf *Inferencer) Worker(w int) *InferWorker { return inf.workers[w] }

// SimSeconds returns the total simulated seconds accumulated across
// all workers' device clocks since construction.
func (inf *Inferencer) SimSeconds() float64 {
	var s float64
	for _, w := range inf.workers {
		s += w.dev.TotalElapsed()
	}
	return s
}

// Device returns the worker's simulated device.
func (w *InferWorker) Device() *device.Device { return w.dev }

// Infer samples the mini-batch for seeds, loads input features through
// the unified store (charging simulated sample/load/train time to the
// worker's device), and runs the model's inference-only forward.
// It returns the logits (row i answers seeds[i]; pool-backed — the
// caller should tensor.Put them when done) and the batch's feature-load
// statistics, whose location counts give the cache hit rate.
func (w *InferWorker) Infer(seeds []graph.NodeID) (*tensor.Matrix, cache.LoadStats) {
	step := -1
	mark := 0.0
	if w.span != nil {
		step = w.batchSeq
		w.batchSeq++
		mark = w.dev.TotalElapsed()
	}
	emit := func(stage string, bytes int64) {
		if w.span == nil {
			return
		}
		now := w.dev.TotalElapsed()
		w.span.Emit(stage, step, mark, now-mark, bytes)
		mark = now
	}

	mb := w.sampler.Sample(seeds)
	var edges int64
	for _, b := range mb.Blocks {
		edges += b.NumEdges()
	}
	w.dev.Charge(device.StageSample, w.inf.cfg.Platform.SampleTime(edges))
	emit(device.StageSample, 0)

	st := w.inf.cfg.Store.Charge(w.dev, mb.Layer1().Src)
	emit(device.StageLoad, int64(mb.Layer1().NumSrc())*int64(w.inf.cfg.Store.Dim)*4)
	for l, layer := range w.inf.cfg.Model.Layers {
		blk := mb.Blocks[l]
		dense, sparse := layerFLOPs(layer, int64(blk.NumSrc()), blk.NumEdges())
		w.dev.Charge(device.StageTrain, w.inf.cfg.Platform.DenseTime(dense))
		w.dev.Charge(device.StageTrain, w.inf.cfg.Platform.SparseTime(sparse))
	}
	logits := w.inf.cfg.Model.PredictGathered(mb, w.inf.cfg.Store.FeatView(w.dev.ID), mb.Layer1().Src)
	emit(device.StageTrain, 0)
	return logits, st
}
