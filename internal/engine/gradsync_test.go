package engine

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// trainCompressed runs a world-2 in-process engine with the given
// gradient codec for `epochs` epochs and returns the engine plus the
// per-epoch mean losses.
func trainCompressed(t *testing.T, k strategy.Kind, codec string, epochs int) (*Engine, []float64) {
	t.Helper()
	f := newFixture(t, 2, 160)
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))
	cfg := f.config(k, func() *nn.Model {
		return nn.NewGraphSAGE(f.dim, 8, f.classes, 2)
	}, plan, []int{4, 4})
	cfg.GradCompress = codec
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("engine (%s/%s): %v", k, codec, err)
	}
	losses := make([]float64, epochs)
	for ep := 0; ep < epochs; ep++ {
		losses[ep] = e.RunEpoch().MeanLoss
	}
	return e, losses
}

// TestGradSyncDirectRace drives the per-worker gradient-sync protocol
// directly — beginStep / launchLayer / drainInFlight / finish — with
// one goroutine per rank, in both call shapes computeStep uses (GDP's
// straight-through and SNP/DNP's mid-step drain). Under -race (make
// verify) this pins the handshake between each step goroutine and the
// sync goroutine beginStep spawns: the req/ack/done channels are the
// only synchronization between them, so any racy access to bucket
// state surfaces here without needing a full training epoch.
func TestGradSyncDirectRace(t *testing.T) {
	e, _ := trainCompressed(t, strategy.GDP, "fp16", 1)
	layers := len(e.workers[0].model.Layers)
	for step := 0; step < 4; step++ {
		drain := step%2 == 0
		comm.RunParallel(len(e.workers), func(d int) {
			gs := e.workers[d].gsync
			gs.beginStep()
			for l := layers - 1; l >= 1; l-- {
				gs.launchLayer(l)
			}
			if drain {
				// The SNP/DNP shape: layer-1 backward issues collectives
				// of its own, so the in-flight buckets drain first.
				gs.drainInFlight()
			}
			gs.launchLayer(0)
			gs.finish()
		})
	}
}

// TestGradCompressionTolerance is the tolerance gate for lossy gradient
// codecs: training still converges, the final loss stays within a
// codec-specific band of the exact-fp32 run, and — the compressed ring's
// determinism guarantee — the device replicas remain bit-identical to
// EACH OTHER even though they are no longer bit-identical to the
// uncompressed run.
func TestGradCompressionTolerance(t *testing.T) {
	const epochs = 3
	for _, k := range []strategy.Kind{strategy.GDP, strategy.SNP} {
		base, baseLoss := trainCompressed(t, k, "", epochs)
		if !(baseLoss[epochs-1] < baseLoss[0]) {
			t.Fatalf("%v fp32: loss did not decrease: %v", k, baseLoss)
		}
		for _, tc := range []struct {
			codec string
			tol   float64 // relative band around the fp32 final loss
		}{
			{"fp16", 0.05},
			{"int8", 0.30},
		} {
			t.Run(fmt.Sprintf("%v/%s", k, tc.codec), func(t *testing.T) {
				e, losses := trainCompressed(t, k, tc.codec, epochs)
				if !(losses[epochs-1] < losses[0]) {
					t.Errorf("loss did not decrease under %s: %v", tc.codec, losses)
				}
				rel := math.Abs(losses[epochs-1]-baseLoss[epochs-1]) / baseLoss[epochs-1]
				if rel > tc.tol {
					t.Errorf("final loss %v vs fp32 %v: relative drift %.4f > %.2f",
						losses[epochs-1], baseLoss[epochs-1], rel, tc.tol)
				}
				// Replicas must stay in lockstep under compression: every
				// rank decodes the chunk owner's single final encoding.
				replicasInSync(t, e)
				// And the codec must actually have engaged: a lossy wire
				// cannot reproduce the exact-fp32 parameters bit for bit.
				if paramsDiff(e, base) == 0 {
					t.Errorf("%s run is bit-identical to fp32 — compression never engaged", tc.codec)
				}
			})
		}
	}
}

// TestGradCompressUnknownRejected pins config validation.
func TestGradCompressUnknownRejected(t *testing.T) {
	f := newFixture(t, 2, 160)
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))
	cfg := f.config(strategy.GDP, func() *nn.Model {
		return nn.NewGraphSAGE(f.dim, 8, f.classes, 2)
	}, plan, []int{4, 4})
	cfg.GradCompress = "zfp"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown GradCompress accepted")
	}
}

// TestGradSyncOverlapTrace runs one epoch with span collection on and
// proves the backward overlap two ways:
//
//  1. Numerically: the exposed (train-charged) part of the gradient
//     allreduce is strictly smaller than its total modeled time — the
//     backward pass hid the rest.
//  2. On the trace: per step, the layer-1 bucket's allreduce span starts
//     strictly inside that step's train span on the compute-side axis
//     (the axis comm spans live on: the device track minus its sample
//     spans), i.e. the Chrome trace shows the transfer running while
//     backward compute is still in progress.
func TestGradSyncOverlapTrace(t *testing.T) {
	f := newFixture(t, 2, 160)
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))
	cfg := f.config(strategy.GDP, func() *nn.Model {
		return nn.NewGraphSAGE(f.dim, 8, f.classes, 2)
	}, plan, []int{4, 4})
	col := obs.NewCollector()
	cfg.Spans = col
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunEpoch()

	if st.Totals.GradCommSec <= 0 {
		t.Fatal("GradCommSec not accumulated")
	}
	if st.Totals.GradExposedSec < 0 {
		t.Fatalf("negative GradExposedSec %v", st.Totals.GradExposedSec)
	}
	if st.Totals.GradExposedSec >= st.Totals.GradCommSec {
		t.Errorf("no overlap: exposed %v >= total %v",
			st.Totals.GradExposedSec, st.Totals.GradCommSec)
	}

	for dev := 0; dev < 2; dev++ {
		var devTrack, commTrack *obs.Track
		for _, tr := range col.Tracks() {
			switch tr.Name {
			case fmt.Sprintf("dev%d", dev):
				devTrack = tr
			case fmt.Sprintf("dev%d/comm", dev):
				commTrack = tr
			}
		}
		if devTrack == nil || commTrack == nil {
			t.Fatalf("dev %d: missing device or comm track", dev)
		}

		// Rebuild the compute-side axis: device spans minus sample time.
		type iv struct{ start, end float64 }
		var trains []iv
		clock := 0.0
		for _, s := range devTrack.Spans() {
			if s.Stage == "sample" {
				continue
			}
			if s.Stage == "train" {
				trains = append(trains, iv{clock, clock + s.Dur})
			}
			clock += s.Dur
		}

		var ars []obs.Span
		for _, s := range commTrack.Spans() {
			if s.Stage != "allreduce" {
				t.Fatalf("dev %d: unexpected comm span %q under GDP", dev, s.Stage)
			}
			if s.Bytes <= 0 {
				t.Errorf("dev %d: allreduce span carries no bytes", dev)
			}
			ars = append(ars, s)
		}
		// Two buckets (one per GraphSAGE layer) per step, reverse layer
		// order: the layer-1 bucket launches first.
		if len(ars) != 2*st.NumBatches {
			t.Fatalf("dev %d: %d allreduce spans, want %d (2 buckets x %d steps)",
				dev, len(ars), 2*st.NumBatches, st.NumBatches)
		}
		if len(trains) != st.NumBatches {
			t.Fatalf("dev %d: %d train spans, want %d", dev, len(trains), st.NumBatches)
		}
		for step := 0; step < st.NumBatches; step++ {
			first, second := ars[2*step], ars[2*step+1]
			if first.Step != 1 || second.Step != 0 {
				t.Fatalf("dev %d step %d: bucket layer order (%d, %d), want (1, 0)",
					dev, step, first.Step, second.Step)
			}
			tr := trains[step]
			if !(first.Start > tr.start && first.Start < tr.end-1e-12) {
				t.Errorf("dev %d step %d: layer-1 allreduce starts at %.9f, outside train span (%.9f, %.9f) — no visible overlap",
					dev, step, first.Start, tr.start, tr.end)
			}
		}
	}
}
