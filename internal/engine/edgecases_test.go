package engine

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// TestOddFeatureDimNFP checks NFP's dimension sharding when the input
// dimension does not divide the device count (shards differ by one).
func TestOddFeatureDimNFP(t *testing.T) {
	f := newFixture(t, 3, 200)
	f.dim = 8 // 8 dims over 3 devices -> shards 2/3/3
	newModel := func() *nn.Model { return nn.NewGraphSAGE(8, 6, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 3, graph.NewRNG(2))
	gdp, err := New(f.config(strategy.GDP, newModel, plan, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	nfp, err := New(f.config(strategy.NFP, newModel, plan, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	gdp.RunEpoch()
	nfp.RunEpoch()
	if d := paramsDiff(gdp, nfp); d > 1e-3 {
		t.Errorf("NFP with uneven shards diverges from GDP by %g", d)
	}
}

// TestSingleDeviceDegenerate runs every strategy on one device, where
// all of them must collapse to plain local training.
func TestSingleDeviceDegenerate(t *testing.T) {
	f := newFixture(t, 1, 150)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 1, graph.NewRNG(3))
	var ref *Engine
	for _, k := range strategy.Core {
		e, err := New(f.config(k, newModel, plan, []int{4, 4}))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		st := e.RunEpoch()
		if st.Totals.HiddenShuffleBytes() != 0 || st.Totals.GraphShuffleBytes() != 0 {
			t.Errorf("%v on one device produced cross-device traffic", k)
		}
		if ref == nil {
			ref = e
		} else if d := paramsDiff(ref, e); d > 1e-4 {
			t.Errorf("%v single-device model differs by %g", k, d)
		}
	}
}

// TestMoreDevicesThanSeeds exercises workers with empty batches, which
// must still participate in every collective.
func TestMoreDevicesThanSeeds(t *testing.T) {
	f := newFixture(t, 4, 200)
	f.seeds = f.seeds[:6] // 6 seeds across 4 devices, batch 16
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	for _, k := range strategy.Core {
		e, err := New(f.config(k, newModel, nil, []int{4, 4}))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		st := e.RunEpoch()
		if st.Totals.SeedsProcessed != 6 {
			t.Errorf("%v processed %d seeds, want 6", k, st.Totals.SeedsProcessed)
		}
		replicasInSync(t, e)
	}
}

// TestGATDistributedDNP runs GAT under DNP on a multi-machine platform
// (attention + cross-machine shipping together).
func TestGATDistributedDNP(t *testing.T) {
	f := newFixture(t, 4, 240)
	f.platform = newFixture(t, 4, 240).platform
	newModel := func() *nn.Model { return nn.NewGAT(f.dim, 3, 2, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 4, graph.NewRNG(5))
	gdp, err := New(f.config(strategy.GDP, newModel, plan, []int{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	dnp, err := New(f.config(strategy.DNP, newModel, plan, []int{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	gdp.RunEpoch()
	st := dnp.RunEpoch()
	if st.Totals.HiddenShuffleBytes() == 0 {
		t.Error("distributed GAT DNP shipped nothing")
	}
	if d := paramsDiff(gdp, dnp); d > 2e-3 {
		t.Errorf("GAT DNP diverges from GDP by %g", d)
	}
}

// TestMultiEpochStability runs several epochs under each strategy and
// checks replicas never desynchronize and loss stays finite.
func TestMultiEpochStability(t *testing.T) {
	f := newFixture(t, 4, 300)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 12, f.classes, 2) }
	for _, k := range strategy.Core {
		cfg := f.config(k, newModel, nil, []int{5, 5})
		cfg.NewOptimizer = func() nn.Optimizer { return nn.NewAdam(0.01) }
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		for ep := 0; ep < 4; ep++ {
			st := e.RunEpoch()
			last = st.MeanLoss
			if last != last || last < 0 { // NaN or negative
				t.Fatalf("%v epoch %d loss %v", k, ep, last)
			}
		}
		replicasInSync(t, e)
	}
}
