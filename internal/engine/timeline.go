package engine

import (
	"fmt"
	"strings"

	"repro/internal/device"
)

// StepTrace records one synchronized mini-batch step's stage times
// (max across devices) — the per-step view of the epoch decomposition,
// useful for spotting stragglers and tail batches.
type StepTrace struct {
	Step      int
	SampleSec float64
	BuildSec  float64
	LoadSec   float64
	TrainSec  float64
	ShuffSec  float64
}

// Total sums the step's stages.
func (s StepTrace) Total() float64 {
	return s.SampleSec + s.BuildSec + s.LoadSec + s.TrainSec + s.ShuffSec
}

// stageSnapshot captures a device's cumulative stage clocks.
type stageSnapshot [5]float64

var timelineStages = [5]string{
	device.StageSample, device.StageBuild, device.StageLoad,
	device.StageTrain, device.StageShuffle,
}

func snapshotOf(d *device.Device) stageSnapshot {
	var s stageSnapshot
	for i, name := range timelineStages {
		s[i] = d.Elapsed(name)
	}
	return s
}

// stepDelta turns two stage-clock snapshots into one step's trace.
func stepDelta(step int, prev, cur stageSnapshot) StepTrace {
	return StepTrace{
		Step:      step,
		SampleSec: cur[0] - prev[0],
		BuildSec:  cur[1] - prev[1],
		LoadSec:   cur[2] - prev[2],
		TrainSec:  cur[3] - prev[3],
		ShuffSec:  cur[4] - prev[4],
	}
}

// mergeTimelines folds per-worker step traces into per-step maxima
// (synchronous steps wait for the slowest device).
func (e *Engine) mergeTimelines(numBatches int) []StepTrace {
	out := make([]StepTrace, numBatches)
	for i := range out {
		out[i].Step = i
	}
	for _, w := range e.workers {
		for _, st := range w.timeline {
			if st.Step >= numBatches {
				continue
			}
			o := &out[st.Step]
			o.SampleSec = maxf64(o.SampleSec, st.SampleSec)
			o.BuildSec = maxf64(o.BuildSec, st.BuildSec)
			o.LoadSec = maxf64(o.LoadSec, st.LoadSec)
			o.TrainSec = maxf64(o.TrainSec, st.TrainSec)
			o.ShuffSec = maxf64(o.ShuffSec, st.ShuffSec)
		}
	}
	return out
}

func maxf64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// FormatTimeline renders step traces as an aligned table.
func FormatTimeline(steps []StepTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-5s %9s %9s %9s %9s %9s %9s\n",
		"step", "sample", "build", "load", "train", "shuffle", "total")
	for _, s := range steps {
		fmt.Fprintf(&b, "  %-5d %9.5f %9.5f %9.5f %9.5f %9.5f %9.5f\n",
			s.Step, s.SampleSec, s.BuildSec, s.LoadSec, s.TrainSec, s.ShuffSec, s.Total())
	}
	return b.String()
}
