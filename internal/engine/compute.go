package engine

import (
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/sample"
)

// FLOP accounting. Both execution modes charge the same simulated
// compute times, derived from block shapes and layer dimensions; real
// mode additionally performs the arithmetic.

// chargeDense charges f dense-matmul FLOPs to the train stage.
//
//apt:hotpath
func (w *worker) chargeDense(f float64) {
	w.dev.Charge(device.StageTrain, w.eng.cfg.Platform.DenseTime(f))
}

// chargeSparse charges f memory-bound aggregation FLOPs.
//
//apt:hotpath
func (w *worker) chargeSparse(f float64) {
	w.dev.Charge(device.StageTrain, w.eng.cfg.Platform.SparseTime(f))
}

// layerFLOPs returns the (dense, sparse) forward FLOPs of running layer
// l on a block with the given source/edge counts.
//
//apt:hotpath
func layerFLOPs(l nn.Layer, nSrc, nEdges int64) (dense, sparse float64) {
	in, out := float64(l.InDim()), float64(l.OutDim())
	switch lt := l.(type) {
	case *nn.GATLayer:
		// Per head: projection + attention scores + weighted sum.
		dh := float64(lt.OutPerHead())
		heads := float64(lt.Heads)
		dense = 2 * float64(nSrc) * in * dh * heads
		sparse = (4*dh + 2*dh) * float64(nEdges) * heads
	default:
		dense = 2 * float64(nSrc) * in * out
		sparse = 2 * float64(nEdges) * out
	}
	return dense, sparse
}

// chargeLayerCompute charges one layer's compute on a block; backward
// passes cost roughly twice the forward.
//
//apt:hotpath
func (w *worker) chargeLayerCompute(l nn.Layer, nSrc, nEdges int64, backward bool) {
	dense, sparse := layerFLOPs(l, nSrc, nEdges)
	if backward {
		dense *= 2
		sparse *= 2
	}
	w.chargeDense(dense)
	w.chargeSparse(sparse)
}

// chargeUpperLayers charges the data-parallel layers above layer 1.
//
//apt:hotpath
func (e *Engine) chargeUpperLayers(w *worker, mb *sample.MiniBatch, backward bool) {
	for l := 1; l < len(w.model.Layers); l++ {
		blk := mb.Blocks[l]
		w.chargeLayerCompute(w.model.Layers[l], int64(blk.NumSrc()), blk.NumEdges(), backward)
	}
}

// wireInts returns the accounted bytes of shipping n int32 values.
func wireInts(n int) int64 { return 4 * int64(n) }

// wireFloats returns the accounted bytes of shipping rows x cols float32s.
func wireFloats(rows, cols int) int64 { return 4 * int64(rows) * int64(cols) }

// blockWireBytes is the accounted size of one bipartite block: dst IDs,
// src IDs, edge pointers, and edge source indices.
func blockWireBytes(b *sample.Block) int64 {
	return wireInts(len(b.Dst)) + wireInts(len(b.Src)) +
		8*int64(len(b.EdgePtr)) + wireInts(len(b.SrcIdx))
}
