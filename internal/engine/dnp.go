package engine

import (
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// dnpRunner is destination node parallel (paper §3.1, the paper's
// proposed strategy): every layer-1 destination node is shipped — with
// its sampled adjacency — to the device managing its graph partition.
// The manager loads the source features (its cache covers its partition
// plus the 1-hop neighborhood), computes the full layer-1 embedding,
// and ships only that embedding back: at most one hidden vector per
// destination crosses the wire.
type dnpRunner struct{}

// dnpRequest is the Permute-stage encoding of the destinations one
// device ships to one manager.
type dnpRequest struct {
	// DstIdx are requester-local destination positions (reply routing).
	DstIdx []int32
	// DstIDs are the global IDs of those destinations.
	DstIDs []graph.NodeID
	// EdgePtr/SrcIDs carry each destination's sampled in-neighbors.
	EdgePtr []int64
	SrcIDs  []graph.NodeID
}

func (q *dnpRequest) wireBytes() int64 {
	return wireInts(len(q.DstIdx)) + wireInts(len(q.DstIDs)) +
		8*int64(len(q.EdgePtr)) + wireInts(len(q.SrcIDs))
}

// dnpServed is the manager-side state for one requester's batch.
type dnpServed struct {
	blk *sample.Block
	lct any
}

type dnpCtx struct {
	myReqs []*dnpRequest
	served []*dnpServed
}

// buildDNPRequests groups a block's destinations by managing device.
func buildDNPRequests(blk *sample.Block, assign []int32, n int) []*dnpRequest {
	reqs := make([]*dnpRequest, n)
	for i, v := range blk.Dst {
		o := assign[v]
		q := reqs[o]
		if q == nil {
			q = &dnpRequest{EdgePtr: []int64{0}}
			reqs[o] = q
		}
		q.DstIdx = append(q.DstIdx, int32(i))
		q.DstIDs = append(q.DstIDs, v)
		for _, si := range blk.DstSources(i) {
			q.SrcIDs = append(q.SrcIDs, blk.Src[si])
		}
		q.EdgePtr = append(q.EdgePtr, int64(len(q.SrcIDs)))
	}
	return reqs
}

// buildMiniBlock converts a shipped adjacency into a bipartite block
// with deduplicated sources. When includeDst is set the destinations
// occupy the leading source positions (attention layers need their own
// projections).
func buildMiniBlock(dstIDs []graph.NodeID, edgePtr []int64, srcIDs []graph.NodeID, includeDst bool) *sample.Block {
	b := &sample.Block{Dst: dstIDs, EdgePtr: edgePtr}
	pos := make(map[graph.NodeID]int32, len(srcIDs))
	add := func(u graph.NodeID) int32 {
		if p, ok := pos[u]; ok {
			return p
		}
		p := int32(len(b.Src))
		b.Src = append(b.Src, u)
		pos[u] = p
		return p
	}
	if includeDst {
		for _, v := range dstIDs {
			add(v)
		}
	}
	b.SrcIdx = make([]int32, len(srcIDs))
	for i, u := range srcIDs {
		b.SrcIdx[i] = add(u)
	}
	return b
}

func (r *dnpRunner) forward(w *worker, mb *sample.MiniBatch) (*tensor.Matrix, any) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	dPrime := w.layer0().OutDim()
	includeDst := w.layer0().NeedsDstInSrc()

	// Permute + Shuffle: ship destinations to their managers.
	reqs := buildDNPRequests(blk, e.cfg.Assign, n)
	payloads := make([]payload, n)
	for o, q := range reqs {
		if q == nil || o == me {
			payloads[o] = payload{Data: q}
			continue
		}
		b := q.wireBytes()
		payloads[o] = payload{Data: q, Bytes: b}
		w.stats.GraphA2ABytes += b
		w.stats.VirtualNodes += int64(len(q.DstIdx))
	}
	in := w.allToAll(device.StageBuild, payloads)

	// Execute: manage received destinations. Feature reads for all
	// requesters are batched into one deduplicated charge; the layer
	// kernels read the store through each mini-block's source list.
	ctx := &dnpCtx{myReqs: reqs, served: make([]*dnpServed, n)}
	srcLists := make([][]graph.NodeID, n)
	for rq := 0; rq < n; rq++ {
		q, _ := in[rq].Data.(*dnpRequest)
		if q == nil || len(q.DstIdx) == 0 {
			continue
		}
		mblk := buildMiniBlock(q.DstIDs, q.EdgePtr, q.SrcIDs, includeDst)
		ctx.served[rq] = &dnpServed{blk: mblk}
		srcLists[rq] = mblk.Src
	}
	w.chargeUnionLoad(srcLists)
	replies := make([]payload, n)
	for rq := 0; rq < n; rq++ {
		served := ctx.served[rq]
		if served == nil {
			continue
		}
		mblk := served.blk
		w.chargeLayerCompute(w.layer0(), int64(mblk.NumSrc()), mblk.NumEdges(), false)
		var reply payload
		if w.real() {
			out, lct := w.forwardLayer0Gathered(mblk, mblk.Src)
			served.lct = lct
			reply.Mat = out
		} else {
			reply.Bytes = wireFloats(mblk.NumDst(), dPrime)
		}
		if rq != me {
			w.stats.HiddenA2ABytes += wireFloats(mblk.NumDst(), dPrime)
		}
		replies[rq] = reply
	}

	// Reshuffle: embeddings travel back to the requesters.
	back := w.allToAll(device.StageShuffle, replies)
	if !w.real() {
		return nil, ctx
	}
	h := tensor.New(blk.NumDst(), dPrime)
	for o := 0; o < n; o++ {
		q := reqs[o]
		if q == nil {
			continue
		}
		mat := back[o].Mat
		for i, dst := range q.DstIdx {
			copy(h.Row(int(dst)), mat.Row(i))
		}
	}
	return h, ctx
}

// backwardIsLocal: DNP's backward ships destination gradients back to
// requesters, so the bucketed gradient sync must drain before it runs.
func (r *dnpRunner) backwardIsLocal() bool { return false }

func (r *dnpRunner) backward(w *worker, mb *sample.MiniBatch, ctxI any, dH *tensor.Matrix) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	ctx := ctxI.(*dnpCtx)
	dPrime := w.layer0().OutDim()

	// Ship each destination's output gradient to its manager.
	payloads := make([]payload, n)
	for o, q := range ctx.myReqs {
		if q == nil {
			continue
		}
		if w.real() {
			g := tensor.New(len(q.DstIdx), dPrime)
			for i, dst := range q.DstIdx {
				copy(g.Row(i), dH.Row(int(dst)))
			}
			payloads[o] = payload{Mat: g}
		} else {
			payloads[o] = payload{Bytes: wireFloats(len(q.DstIdx), dPrime)}
		}
		if o != me {
			w.stats.HiddenA2ABytes += wireFloats(len(q.DstIdx), dPrime)
		}
	}
	in := w.allToAll(device.StageShuffle, payloads)

	for rq := 0; rq < n; rq++ {
		served := ctx.served[rq]
		if served == nil {
			continue
		}
		w.chargeLayerCompute(w.layer0(), int64(served.blk.NumSrc()), served.blk.NumEdges(), true)
		if w.real() {
			w.backwardLayer0Params(served.blk, served.lct, in[rq].Mat)
		}
	}
}
