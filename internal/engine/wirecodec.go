package engine

import (
	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/transport"
)

// Wire codecs for the engine-internal structures the strategies ship
// through Payload.Data: NFP broadcasts layer-1 blocks, SNP/DNP
// exchange virtual-node requests. Registered in an init so every
// binary that links the engine — every aptworker rank — agrees on the
// (id, type, layout) triples; the ids below are part of the wire
// format and must never be reused.
//
// All four types are pointers and SNP/DNP legitimately ship typed
// nils for empty request slots, so each codec leads with a presence
// byte. graph.NodeID is an alias of int32, which is why node slices
// encode through the i32 primitives without conversion.

// Wire ids for Payload.Data types (see RegisterData).
const (
	wireDataBlock     = 1
	wireDataSNPReq    = 2
	wireDataSNPGatReq = 3
	wireDataDNPReq    = 4
)

func init() {
	transport.RegisterData(wireDataBlock, (*sample.Block)(nil), transport.DataCodec{
		Encode: func(e *transport.Encoder, v any) {
			b := v.(*sample.Block)
			if b == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.I32s(b.Dst)
			e.I32s(b.Src)
			e.I64s(b.EdgePtr)
			e.I32s(b.SrcIdx)
		},
		Decode: func(d *transport.Decoder) any {
			if !d.Presence() {
				return (*sample.Block)(nil)
			}
			return &sample.Block{
				Dst:     []graph.NodeID(d.I32s()),
				Src:     []graph.NodeID(d.I32s()),
				EdgePtr: d.I64s(),
				SrcIdx:  d.I32s(),
			}
		},
	})
	transport.RegisterData(wireDataSNPReq, (*snpRequest)(nil), transport.DataCodec{
		Encode: func(e *transport.Encoder, v any) {
			q := v.(*snpRequest)
			if q == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.I32s(q.DstIdx)
			e.I32s(q.DstIDs)
			e.I64s(q.EdgePtr)
			e.I32s(q.SrcIDs)
		},
		Decode: func(d *transport.Decoder) any {
			if !d.Presence() {
				return (*snpRequest)(nil)
			}
			return &snpRequest{
				DstIdx:  d.I32s(),
				DstIDs:  []graph.NodeID(d.I32s()),
				EdgePtr: d.I64s(),
				SrcIDs:  []graph.NodeID(d.I32s()),
			}
		},
	})
	transport.RegisterData(wireDataSNPGatReq, (*snpGatRequest)(nil), transport.DataCodec{
		Encode: func(e *transport.Encoder, v any) {
			q := v.(*snpGatRequest)
			if q == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.I32s(q.SrcIDs)
		},
		Decode: func(d *transport.Decoder) any {
			if !d.Presence() {
				return (*snpGatRequest)(nil)
			}
			return &snpGatRequest{SrcIDs: []graph.NodeID(d.I32s())}
		},
	})
	transport.RegisterData(wireDataDNPReq, (*dnpRequest)(nil), transport.DataCodec{
		Encode: func(e *transport.Encoder, v any) {
			q := v.(*dnpRequest)
			if q == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.I32s(q.DstIdx)
			e.I32s(q.DstIDs)
			e.I64s(q.EdgePtr)
			e.I32s(q.SrcIDs)
		},
		Decode: func(d *transport.Decoder) any {
			if !d.Presence() {
				return (*dnpRequest)(nil)
			}
			return &dnpRequest{
				DstIdx:  d.I32s(),
				DstIDs:  []graph.NodeID(d.I32s()),
				EdgePtr: d.I64s(),
				SrcIDs:  []graph.NodeID(d.I32s()),
			}
		},
	})
}
