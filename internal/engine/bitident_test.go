package engine

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/tensor"
)

// The fused, cache-blocked kernels guarantee bit-identical results to
// the kernels they replaced: per output element, float32 terms
// accumulate in the same strictly increasing k/edge order. These tests
// pin that guarantee end to end. On one device with a forced seed plan
// and full-neighbor fanout, every strategy degenerates to the same
// local computation as the sequential reference trainer, so the models
// must match EXACTLY — any reassociation introduced by tiling,
// packing, zero-skipping, or gather fusion would show up as a non-zero
// diff here.

func requireParamsExact(t *testing.T, tag string, got, want []*nn.Param) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params vs %d", tag, len(got), len(want))
	}
	for i := range got {
		if d := got[i].W.MaxAbsDiff(want[i].W); d != 0 {
			t.Errorf("%s: param %d differs by %g (want exact bit-identity)", tag, i, d)
		}
	}
}

func requireLogitsExact(t *testing.T, tag string, got, want *tensor.Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: logits shape %dx%d vs %dx%d", tag, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Errorf("%s: logits[%d] = %v, want %v (exact equality)", tag, i, got.Data[i], want.Data[i])
			return
		}
	}
}

// trainBitIdentReference trains the sequential reference on exactly the
// batches the engine's forced plan will produce.
func trainBitIdentReference(f *testFixture, newModel func() *nn.Model,
	plan *sample.SeedPlan, fanouts []int, epochs, batch int) *Reference {
	ref := NewReference(f.g, f.feats, f.labels, newModel, nn.NewSGD(0.3, 0),
		sample.Config{Fanouts: fanouts}, 99)
	nb := plan.NumBatches(batch)
	for ep := 0; ep < epochs; ep++ {
		for step := 0; step < nb; step++ {
			ref.TrainStep(plan.Batch(0, step, batch))
		}
	}
	return ref
}

func runBitIdentity(t *testing.T, f *testFixture, newModel func() *nn.Model) {
	const epochs = 2
	fullFanout := []int{1000, 1000}
	plan := sample.SplitEven(f.seeds, 1, graph.NewRNG(3))
	ref := trainBitIdentReference(f, newModel, plan, fullFanout, epochs, 16)

	// Guard against a vacuous pass: training must have moved the params
	// away from the shared initialization, or "exactly equal" proves
	// nothing about the training paths.
	init := newModel()
	init.Init(graph.NewRNG(99))
	var moved float64
	for i, p := range ref.Model.Params() {
		if d := p.W.MaxAbsDiff(init.Params()[i].W); d > moved {
			moved = d
		}
	}
	if moved == 0 {
		t.Fatal("reference training left params at their initial values")
	}

	// A held-out batch for the inference check (fixed sampler seed, full
	// fanout, so both models see the same blocks).
	probe := sample.NewSampler(f.g, func() sample.Config {
		c := sample.Config{Fanouts: fullFanout}
		if ref.Model.NeedsDstInSrc() {
			c.IncludeDstInSrc = true
		}
		return c
	}(), graph.NewRNG(12))
	mb := probe.Sample(f.seeds[:16])
	refSt := ref.Model.ForwardGathered(mb, tensor.FS(f.feats), mb.Layer1().Src)

	for _, k := range []strategy.Kind{strategy.GDP, strategy.NFP, strategy.SNP, strategy.DNP} {
		for _, pipelined := range []bool{false, true} {
			mode := "sync"
			if pipelined {
				mode = "pipelined"
			}
			tag := fmt.Sprintf("%v/%s", k, mode)
			cfg := f.config(k, newModel, plan, fullFanout)
			cfg.Pipeline = pipelined
			e, err := New(cfg)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			for ep := 0; ep < epochs; ep++ {
				e.RunEpoch()
			}
			requireParamsExact(t, tag, e.Model(0).Params(), ref.Model.Params())

			// The trained engine model's inference logits must equal the
			// reference model's training-forward logits bit for bit:
			// PredictGathered runs the same fused kernels in the same
			// order, just without retaining backward state.
			logits := e.Model(0).PredictGathered(mb, tensor.FS(f.feats), mb.Layer1().Src)
			requireLogitsExact(t, tag, logits, refSt.Logits)
			tensor.Put(logits)
		}
	}
}

// TestBitIdenticalToReferenceSAGE: GDP/NFP/SNP/DNP, synchronous and
// pipelined, train a GraphSAGE model bit-identically to the sequential
// reference on one device.
func TestBitIdenticalToReferenceSAGE(t *testing.T) {
	f := newFixture(t, 1, 160)
	runBitIdentity(t, f, func() *nn.Model {
		return nn.NewGraphSAGE(f.dim, 8, f.classes, 2)
	})
}

// TestBitIdenticalToReferenceGAT is the attention variant: the
// strategies ship per-head projections instead of partial aggregates,
// and the reassembled projections must still be bit-exact.
func TestBitIdenticalToReferenceGAT(t *testing.T) {
	f := newFixture(t, 1, 160)
	runBitIdentity(t, f, func() *nn.Model {
		return nn.NewGAT(f.dim, 4, 2, f.classes, 2)
	})
}
