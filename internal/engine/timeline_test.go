package engine

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
)

func TestTimelineRecording(t *testing.T) {
	f := newFixture(t, 3, 300)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 3, graph.NewRNG(2))
	cfg := f.config(strategy.SNP, newModel, plan, []int{4, 4})
	cfg.RecordTimeline = true
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunEpoch()
	if len(st.Timeline) != st.NumBatches {
		t.Fatalf("timeline has %d steps, want %d", len(st.Timeline), st.NumBatches)
	}
	var total float64
	for i, step := range st.Timeline {
		if step.Step != i {
			t.Errorf("step %d indexed as %d", i, step.Step)
		}
		if step.Total() < 0 {
			t.Errorf("negative step time %+v", step)
		}
		total += step.Total()
	}
	// Per-step maxima sum to at least the epoch total (max-of-sums <=
	// sum-of-maxes) and not absurdly more.
	if total < st.EpochTime() {
		t.Errorf("timeline total %v < epoch time %v", total, st.EpochTime())
	}
	if total > 3*st.EpochTime() {
		t.Errorf("timeline total %v suspiciously exceeds epoch time %v", total, st.EpochTime())
	}
	out := FormatTimeline(st.Timeline)
	if !strings.Contains(out, "step") || !strings.Contains(out, "shuffle") {
		t.Error("FormatTimeline output malformed")
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	f := newFixture(t, 2, 150)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	e, err := New(f.config(strategy.GDP, newModel, nil, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if st := e.RunEpoch(); st.Timeline != nil {
		t.Error("timeline recorded without opting in")
	}
}
