package engine

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// snpRunner is source node parallel (paper §3.1): the graph is
// edge-cut partitioned and each device manages the source nodes of its
// partition. A destination node whose sources live on a remote device
// creates a virtual node there; the remote device projects and
// partially aggregates its local sources' contributions and ships one
// partial embedding per virtual node back (mean aggregation decomposes
// into shipped partial sums plus a final division by the true degree).
//
// Attention models cannot aggregate partially (§3.3): for GAT the
// source owners ship the projected source embeddings themselves, one
// vector per unique remote source — SNP's "extra communication".
type snpRunner struct {
	// ownerOf overrides the source-owner rule; nil means the graph
	// partition assignment. The hybrid strategy substitutes a rule
	// that keeps cross-machine sources local (GDP across machines, SNP
	// within a machine).
	ownerOf func(w *worker, u graph.NodeID) int32
}

// owner resolves which device manages source node u from worker w's
// perspective.
func (r *snpRunner) owner(w *worker, u graph.NodeID) int32 {
	if r.ownerOf != nil {
		return r.ownerOf(w, u)
	}
	return w.eng.cfg.Assign[u]
}

// snpRequest carries one device's virtual nodes for one source owner.
type snpRequest struct {
	// DstIdx are requester-local destination positions (virtual nodes).
	DstIdx []int32
	// DstIDs are their global IDs.
	DstIDs []graph.NodeID
	// EdgePtr/SrcIDs list each virtual node's sources owned by the
	// target device.
	EdgePtr []int64
	SrcIDs  []graph.NodeID
}

func (q *snpRequest) wireBytes() int64 {
	return wireInts(len(q.DstIdx)) + wireInts(len(q.DstIDs)) +
		8*int64(len(q.EdgePtr)) + wireInts(len(q.SrcIDs))
}

// snpGatRequest carries the unique sources a requester needs projected
// by one owner (attention path).
type snpGatRequest struct {
	SrcIDs []graph.NodeID
}

type snpServedSage struct {
	blk *sample.Block
}

type snpSageCtx struct {
	myReqs []*snpRequest
	served []*snpServedSage
	out    *tensor.Matrix // post-activation layer output
}

type snpServedGat struct {
	srcIDs []graph.NodeID
}

type snpGatCtx struct {
	localPos [][]int32 // per owner: positions in blk.Src
	served   []*snpServedGat
	attn     *nn.GATAttnCtx
}

func (r *snpRunner) forward(w *worker, mb *sample.MiniBatch) (*tensor.Matrix, any) {
	switch l := w.layer0().(type) {
	case *nn.SAGELayer:
		return r.forwardSage(w, mb, l)
	case *nn.GATLayer:
		return r.forwardGat(w, mb, l)
	default:
		panic(fmt.Sprintf("engine: SNP does not support layer %T", l))
	}
}

// backwardIsLocal: SNP's backward (and Hybrid's, which reuses this
// runner) exchanges virtual-node gradients, so the bucketed gradient
// sync must drain before it runs.
func (r *snpRunner) backwardIsLocal() bool { return false }

func (r *snpRunner) backward(w *worker, mb *sample.MiniBatch, ctx any, dH *tensor.Matrix) {
	switch l := w.layer0().(type) {
	case *nn.SAGELayer:
		r.backwardSage(w, mb, ctx.(*snpSageCtx), l, dH)
	case *nn.GATLayer:
		r.backwardGat(w, mb, ctx.(*snpGatCtx), l, dH)
	}
}

// buildSNPRequests splits a block's edges by source owner.
func buildSNPRequests(blk *sample.Block, owner func(graph.NodeID) int32, n int) []*snpRequest {
	reqs := make([]*snpRequest, n)
	// Scratch: per-owner source list for the current destination.
	perOwner := make([][]graph.NodeID, n)
	for i, dstID := range blk.Dst {
		var touchedOwners []int32
		for _, si := range blk.DstSources(i) {
			u := blk.Src[si]
			o := owner(u)
			if len(perOwner[o]) == 0 {
				touchedOwners = append(touchedOwners, o)
			}
			perOwner[o] = append(perOwner[o], u)
		}
		for _, o := range touchedOwners {
			q := reqs[o]
			if q == nil {
				q = &snpRequest{EdgePtr: []int64{0}}
				reqs[o] = q
			}
			q.DstIdx = append(q.DstIdx, int32(i))
			q.DstIDs = append(q.DstIDs, dstID)
			q.SrcIDs = append(q.SrcIDs, perOwner[o]...)
			q.EdgePtr = append(q.EdgePtr, int64(len(q.SrcIDs)))
			perOwner[o] = perOwner[o][:0]
		}
	}
	return reqs
}

func (r *snpRunner) forwardSage(w *worker, mb *sample.MiniBatch, layer *nn.SAGELayer) (*tensor.Matrix, any) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	dPrime := layer.OutDim()

	reqs := buildSNPRequests(blk, func(u graph.NodeID) int32 { return r.owner(w, u) }, n)
	payloads := make([]payload, n)
	for o, q := range reqs {
		if q == nil {
			continue
		}
		payloads[o] = payload{Data: q}
		if o != me {
			b := q.wireBytes()
			payloads[o].Bytes = b
			w.stats.GraphA2ABytes += b
			w.stats.VirtualNodes += int64(len(q.DstIdx))
		}
	}
	in := w.allToAll(device.StageBuild, payloads)

	// Execute: project + partially aggregate local sources. Feature
	// reads for all requesters share one deduplicated charge; the
	// projection kernel reads the store through each request's source
	// list directly.
	ctx := &snpSageCtx{myReqs: reqs, served: make([]*snpServedSage, n)}
	srcLists := make([][]graph.NodeID, n)
	for rq := 0; rq < n; rq++ {
		q, _ := in[rq].Data.(*snpRequest)
		if q == nil || len(q.DstIdx) == 0 {
			continue
		}
		mblk := buildMiniBlock(q.DstIDs, q.EdgePtr, q.SrcIDs, false)
		ctx.served[rq] = &snpServedSage{blk: mblk}
		srcLists[rq] = mblk.Src
	}
	w.chargeUnionLoad(srcLists)
	feats := e.cfg.Store.FeatView(w.dev.ID)
	replies := make([]payload, n)
	for rq := 0; rq < n; rq++ {
		served := ctx.served[rq]
		if served == nil {
			continue
		}
		mblk := served.blk
		w.chargeLayerCompute(layer, int64(mblk.NumSrc()), mblk.NumEdges(), false)
		var reply payload
		if w.real() {
			z := layer.ProjectGathered(feats, mblk.Src)
			reply.Mat = tensor.SegmentSum(mblk.EdgePtr, mblk.SrcIdx, z)
			tensor.Put(z)
		} else {
			reply.Bytes = wireFloats(mblk.NumDst(), dPrime)
		}
		if rq != me {
			w.stats.HiddenA2ABytes += wireFloats(mblk.NumDst(), dPrime)
		}
		replies[rq] = reply
	}

	// Reshuffle (GroupReduce): sum the partials per destination, then
	// normalize by the full degree and activate.
	back := w.allToAll(device.StageShuffle, replies)
	if !w.real() {
		return nil, ctx
	}
	s := tensor.Get(blk.NumDst(), dPrime)
	for o := 0; o < n; o++ {
		q := reqs[o]
		if q == nil {
			continue
		}
		mat := back[o].Mat
		for i, dst := range q.DstIdx {
			row := s.Row(int(dst))
			part := mat.Row(i)
			for j := range row {
				row[j] += part[j]
			}
		}
	}
	layer.NormalizeAggregate(blk, s)
	out := layer.ApplyActivationOnly(s)
	ctx.out = out
	return out, ctx
}

func (r *snpRunner) backwardSage(w *worker, mb *sample.MiniBatch, ctx *snpSageCtx, layer *nn.SAGELayer, dH *tensor.Matrix) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	dPrime := layer.OutDim()

	var dS *tensor.Matrix
	if w.real() {
		dS = layer.ActivationBackwardOnly(ctx.out, dH)
		layer.NormalizeAggregate(blk, dS)
	}

	payloads := make([]payload, n)
	for o, q := range ctx.myReqs {
		if q == nil {
			continue
		}
		if w.real() {
			g := tensor.New(len(q.DstIdx), dPrime)
			for i, dst := range q.DstIdx {
				copy(g.Row(i), dS.Row(int(dst)))
			}
			payloads[o] = payload{Mat: g}
		} else {
			payloads[o] = payload{Bytes: wireFloats(len(q.DstIdx), dPrime)}
		}
		if o != me {
			w.stats.HiddenA2ABytes += wireFloats(len(q.DstIdx), dPrime)
		}
	}
	in := w.allToAll(device.StageShuffle, payloads)

	feats := e.cfg.Store.FeatView(w.dev.ID)
	for rq := 0; rq < n; rq++ {
		served := ctx.served[rq]
		if served == nil {
			continue
		}
		w.chargeLayerCompute(layer, int64(served.blk.NumSrc()), served.blk.NumEdges(), true)
		if w.real() {
			dZ := tensor.SegmentSumBackward(served.blk.EdgePtr, served.blk.SrcIdx, in[rq].Mat, served.blk.NumSrc())
			layer.AccumulateProjGrad(feats, served.blk.Src, dZ)
			tensor.Put(dZ)
		}
	}
}

// forwardGat implements SNP's attention path: owners project their
// sources and ship the projections (per unique remote source) to the
// requester, which runs attention with a complete source view.
func (r *snpRunner) forwardGat(w *worker, mb *sample.MiniBatch, layer *nn.GATLayer) (*tensor.Matrix, any) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	heads, dh := layer.Heads, layer.OutPerHead()
	width := heads * dh

	// Permute: unique sources per owner, in block order.
	localPos := make([][]int32, n)
	srcIDs := make([][]graph.NodeID, n)
	for pos, u := range blk.Src {
		o := r.owner(w, u)
		localPos[o] = append(localPos[o], int32(pos))
		srcIDs[o] = append(srcIDs[o], u)
	}
	payloads := make([]payload, n)
	for o := 0; o < n; o++ {
		if len(srcIDs[o]) == 0 {
			continue
		}
		payloads[o] = payload{Data: &snpGatRequest{SrcIDs: srcIDs[o]}}
		if o != me {
			b := wireInts(len(srcIDs[o]))
			payloads[o].Bytes = b
			w.stats.GraphA2ABytes += b
			w.stats.VirtualNodes += int64(len(srcIDs[o]))
		}
	}
	in := w.allToAll(device.StageBuild, payloads)

	// Execute: project requested sources per head, with one
	// deduplicated feature charge for all requesters; the per-head
	// projections read the store through each request's source list.
	ctx := &snpGatCtx{localPos: localPos, served: make([]*snpServedGat, n)}
	srcLists := make([][]graph.NodeID, n)
	for rq := 0; rq < n; rq++ {
		q, _ := in[rq].Data.(*snpGatRequest)
		if q == nil || len(q.SrcIDs) == 0 {
			continue
		}
		ctx.served[rq] = &snpServedGat{srcIDs: q.SrcIDs}
		srcLists[rq] = q.SrcIDs
	}
	w.chargeUnionLoad(srcLists)
	feats := e.cfg.Store.FeatView(w.dev.ID)
	replies := make([]payload, n)
	for rq := 0; rq < n; rq++ {
		served := ctx.served[rq]
		if served == nil {
			continue
		}
		q := &snpGatRequest{SrcIDs: served.srcIDs}
		w.chargeDense(2 * float64(len(q.SrcIDs)) * float64(layer.InDim()) * float64(width))
		var reply payload
		if w.real() {
			z := tensor.New(len(q.SrcIDs), width)
			for k := 0; k < heads; k++ {
				zk := layer.ProjectHeadGathered(k, feats, q.SrcIDs)
				for i := 0; i < zk.Rows; i++ {
					copy(z.Row(i)[k*dh:(k+1)*dh], zk.Row(i))
				}
				tensor.Put(zk)
			}
			reply.Mat = z
		} else {
			reply.Bytes = wireFloats(len(q.SrcIDs), width)
		}
		if rq != me {
			w.stats.HiddenA2ABytes += wireFloats(len(q.SrcIDs), width)
		}
		replies[rq] = reply
	}

	// Reshuffle: assemble the full per-head projections and attend.
	back := w.allToAll(device.StageShuffle, replies)
	w.chargeSparse(6 * float64(blk.NumEdges()) * float64(dh) * float64(heads))
	if !w.real() {
		return nil, ctx
	}
	zs := make([]*tensor.Matrix, heads)
	for k := range zs {
		zs[k] = tensor.New(blk.NumSrc(), dh)
	}
	for o := 0; o < n; o++ {
		if len(localPos[o]) == 0 {
			continue
		}
		mat := back[o].Mat
		for i, pos := range localPos[o] {
			row := mat.Row(i)
			for k := 0; k < heads; k++ {
				copy(zs[k].Row(int(pos)), row[k*dh:(k+1)*dh])
			}
		}
	}
	out, attn := layer.AttentionForward(blk, zs)
	ctx.attn = attn
	return out, ctx
}

func (r *snpRunner) backwardGat(w *worker, mb *sample.MiniBatch, ctx *snpGatCtx, layer *nn.GATLayer, dH *tensor.Matrix) {
	e := w.eng
	n := e.Comm.NumDevices()
	me := w.dev.ID
	blk := mb.Layer1()
	heads, dh := layer.Heads, layer.OutPerHead()
	width := heads * dh

	w.chargeSparse(12 * float64(blk.NumEdges()) * float64(dh) * float64(heads))
	var dZs []*tensor.Matrix
	if w.real() {
		dZs = layer.AttentionBackward(blk, ctx.attn, dH)
	}

	payloads := make([]payload, n)
	for o := 0; o < n; o++ {
		if len(ctx.localPos[o]) == 0 {
			continue
		}
		if w.real() {
			g := tensor.New(len(ctx.localPos[o]), width)
			for i, pos := range ctx.localPos[o] {
				row := g.Row(i)
				for k := 0; k < heads; k++ {
					copy(row[k*dh:(k+1)*dh], dZs[k].Row(int(pos)))
				}
			}
			payloads[o] = payload{Mat: g}
		} else {
			payloads[o] = payload{Bytes: wireFloats(len(ctx.localPos[o]), width)}
		}
		if o != me {
			w.stats.HiddenA2ABytes += wireFloats(len(ctx.localPos[o]), width)
		}
	}
	in := w.allToAll(device.StageShuffle, payloads)

	feats := e.cfg.Store.FeatView(w.dev.ID)
	for rq := 0; rq < n; rq++ {
		served := ctx.served[rq]
		if served == nil {
			continue
		}
		w.chargeDense(4 * float64(len(served.srcIDs)) * float64(layer.InDim()) * float64(width))
		if w.real() {
			mat := in[rq].Mat
			dZk := tensor.Get(mat.Rows, dh)
			for k := 0; k < heads; k++ {
				for i := 0; i < mat.Rows; i++ {
					copy(dZk.Row(i), mat.Row(i)[k*dh:(k+1)*dh])
				}
				layer.AccumulateHeadProjGrad(k, feats, served.srcIDs, dZk)
			}
			tensor.Put(dZk)
		}
	}
}
