package engine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// TestPipelinedMatchesSequential verifies the pipelined engine trains
// bit-identically to the synchronous path under every strategy: the
// prefetch goroutine draws the same sampler RNG stream in the same
// order, and nothing else about the numerics moves.
func TestPipelinedMatchesSequential(t *testing.T) {
	f := newFixture(t, 4, 400)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 12, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 4, graph.NewRNG(5))
	for _, k := range strategy.Core {
		seq, err := New(f.config(k, newModel, plan, []int{5, 5}))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		cfg := f.config(k, newModel, plan, []int{5, 5})
		cfg.Pipeline = true
		cfg.PipelineDepth = 2
		pip, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		for epoch := 0; epoch < 2; epoch++ {
			stSeq := seq.RunEpoch()
			stPip := pip.RunEpoch()
			if d := paramsDiff(seq, pip); d != 0 {
				t.Errorf("%v epoch %d: pipelined params diverged by %g", k, epoch, d)
			}
			if stSeq.MeasuredPipelinedSec != 0 {
				t.Errorf("%v: sequential run reported a measured pipelined time", k)
			}
			if stPip.MeasuredPipelinedSec <= 0 {
				t.Errorf("%v: pipelined run measured nothing", k)
			}
			if stPip.MeasuredPipelinedSec > stSeq.EpochTime()*(1+1e-9) {
				t.Errorf("%v: measured pipelined %.6fs exceeds sequential %.6fs",
					k, stPip.MeasuredPipelinedSec, stSeq.EpochTime())
			}
			if stPip.MeanLoss != stSeq.MeanLoss {
				t.Errorf("%v epoch %d: loss %v != %v", k, epoch, stPip.MeanLoss, stSeq.MeanLoss)
			}
		}
		replicasInSync(t, pip)
	}
}

// TestPipelinedMatchesSequentialGAT covers the attention layers (whose
// forward/backward lean hardest on the buffer pool) on the pipelined
// path.
func TestPipelinedMatchesSequentialGAT(t *testing.T) {
	f := newFixture(t, 3, 300)
	newModel := func() *nn.Model { return nn.NewGAT(f.dim, 6, 2, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 3, graph.NewRNG(9))
	seq, err := New(f.config(strategy.GDP, newModel, plan, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	cfg := f.config(strategy.GDP, newModel, plan, []int{4, 4})
	pipEng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipEng.EnablePipeline(0) // 0 -> default depth
	seq.RunEpoch()
	pipEng.RunEpoch()
	if d := paramsDiff(seq, pipEng); d != 0 {
		t.Errorf("GAT pipelined params diverged by %g", d)
	}
}

// TestPipelinedAccountingBounded checks the measured overlapped epoch
// on the simulated clocks: strictly positive, never better than
// perfect overlap could explain (>= the train-stage bar), and never
// worse than the synchronous schedule.
func TestPipelinedAccountingBounded(t *testing.T) {
	f := newFixture(t, 4, 400)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 12, f.classes, 2) }
	for _, k := range strategy.Core {
		cfg := f.config(k, newModel, nil, []int{5, 5})
		cfg.Mode = Accounting
		cfg.Store = cache.NewStore(f.platform, f.g.NumNodes(), f.dim, nil)
		cfg.Store.HostByRange()
		cfg.Labels = nil
		cfg.Pipeline = true
		cfg.RecordTimeline = true
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		st := e.RunEpoch()
		if st.MeasuredPipelinedSec <= 0 {
			t.Fatalf("%v: no measured pipelined time", k)
		}
		if st.MeasuredPipelinedSec > st.EpochTime()*(1+1e-9) {
			t.Errorf("%v: measured %.6fs > synchronous %.6fs",
				k, st.MeasuredPipelinedSec, st.EpochTime())
		}
		if st.MeasuredPipelinedSec < st.TrainSec {
			t.Errorf("%v: measured %.6fs beats the train bar %.6fs — overlap cannot hide compute",
				k, st.MeasuredPipelinedSec, st.TrainSec)
		}
		if len(st.Timeline) != st.NumBatches {
			t.Errorf("%v: timeline has %d steps, want %d", k, len(st.Timeline), st.NumBatches)
		}
		var sampleSum float64
		for _, tr := range st.Timeline {
			sampleSum += tr.SampleSec
		}
		// Per-step sampling in the timeline comes from the prefetcher;
		// its per-device sum must not exceed the epoch sample bar times
		// the device count (and must be nonzero).
		if sampleSum <= 0 {
			t.Errorf("%v: pipelined timeline lost sampling time", k)
		}
	}
}

// TestPipelinedPreSampled drives the pipelined engine through the
// planner's pre-sampled dry-run path.
func TestPipelinedPreSampled(t *testing.T) {
	f := newFixture(t, 2, 200)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))

	// Sample one epoch up front with the same per-device RNG streams
	// the engine would use.
	cfg := f.config(strategy.GDP, newModel, plan, []int{4, 4})
	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nb := plan.NumBatches(cfg.BatchSize)
	pre := make([][]*sample.MiniBatch, 2)
	for d := 0; d < 2; d++ {
		for s := 0; s < nb; s++ {
			pre[d] = append(pre[d], ref.samplers[d].Sample(plan.Batch(d, s, cfg.BatchSize)))
		}
	}

	cfg2 := f.config(strategy.GDP, newModel, plan, []int{4, 4})
	cfg2.PreSampled = pre
	cfg2.Pipeline = true
	e, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunEpoch()
	if st.NumBatches != nb || st.MeasuredPipelinedSec <= 0 {
		t.Fatalf("pre-sampled pipelined epoch: %+v", st)
	}
	replicasInSync(t, e)
}
