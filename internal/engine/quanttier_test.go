package engine

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/tensor"
)

// The int8 warm tier is lossy by design, so it gets the opposite
// contract of bitident_test.go: instead of exact equality, training
// with part of the feature cache quantized must keep the end-to-end
// model within a small tolerance of the fp32-only run. The tolerance
// split mirrors the kernels' own split — fp32 rows dispatch to the
// exact kernels (pinned bit-for-bit elsewhere), quantized rows carry
// a bounded per-row error that training must not amplify beyond the
// band asserted here.

// newTieredStore is newStore with a warm int8 band below the fp32 hot
// band, ranked by the same degree-proxy frequency.
func (f *testFixture) newTieredStore(hotNodes, warmNodes int, policy cache.Policy) *cache.Store {
	s := cache.NewStore(f.platform, f.g.NumNodes(), f.dim, f.feats)
	s.HostByRange()
	freq := make([]int64, f.g.NumNodes())
	for v := range freq {
		freq[v] = int64(f.g.Degree(graph.NodeID(v)))
	}
	hot, warm := cache.SelectTiered(cache.SelectConfig{
		Policy: policy, Freq: freq, Assign: f.assign, Graph: f.g,
		CapacityNodes: hotNodes, Devices: f.platform.NumDevices(),
	}, warmNodes)
	for d := range hot {
		s.ConfigureCacheTiered(d, hot[d], warm[d])
	}
	return s
}

// TestInt8TierLogitDrift trains every strategy twice — fp32-only
// cache vs a store whose warm band is int8 — on identical seed plans
// and asserts the quantized run stays a real training run (params
// move, the warm tier actually serves reads) whose final parameters
// and held-out logits drift from the fp32 run by no more than the
// tolerance band.
func TestInt8TierLogitDrift(t *testing.T) {
	const (
		epochs = 2
		// End-to-end bands, set ~10x above the drift observed on this
		// fixture (params ~8e-4, logits ~1e-4) so real regressions (a
		// broken dequant, a wrong scale) trip them while rounding-level
		// jitter does not.
		paramTol = 0.01
		logitTol = 0.005
	)
	f := newFixture(t, 1, 160)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	fullFanout := []int{1000, 1000}
	plan := sample.SplitEven(f.seeds, 1, graph.NewRNG(3))

	probe := sample.NewSampler(f.g, sample.Config{Fanouts: fullFanout}, graph.NewRNG(12))
	mb := probe.Sample(f.seeds[:16])

	for _, k := range []strategy.Kind{strategy.GDP, strategy.NFP, strategy.SNP, strategy.DNP} {
		tag := fmt.Sprintf("%v", k)

		cfgF := f.config(k, newModel, plan, fullFanout)
		ef, err := New(cfgF)
		if err != nil {
			t.Fatalf("%s fp32: %v", tag, err)
		}
		cfgQ := f.config(k, newModel, plan, fullFanout)
		cfgQ.Store = f.newTieredStore(40, 80, policyFor(k))
		eq, err := New(cfgQ)
		if err != nil {
			t.Fatalf("%s int8: %v", tag, err)
		}

		var qReads int64
		for ep := 0; ep < epochs; ep++ {
			ef.RunEpoch()
			st := eq.RunEpoch()
			qReads += st.Totals.Load.Nodes[cache.LocGPUQ]
		}
		if qReads == 0 {
			t.Fatalf("%s: warm tier served zero reads — the drift bound is vacuous", tag)
		}

		// Non-vacuous on the training side too: quantized-run params must
		// have moved off the shared initialization.
		init := newModel()
		init.Init(graph.NewRNG(99))
		var moved float64
		for i, p := range eq.Model(0).Params() {
			if d := p.W.MaxAbsDiff(init.Params()[i].W); d > moved {
				moved = d
			}
		}
		if moved == 0 {
			t.Fatalf("%s: int8-tier training left params at their initial values", tag)
		}

		if d := paramsDiff(ef, eq); d > paramTol {
			t.Errorf("%s: param drift %g exceeds tolerance %g", tag, d, paramTol)
		}

		// Held-out logits: both trained models predict through the same
		// fp32 probe features, so the diff isolates what quantized
		// training did to the weights.
		lf := ef.Model(0).PredictGathered(mb, tensor.FS(f.feats), mb.Layer1().Src)
		lq := eq.Model(0).PredictGathered(mb, tensor.FS(f.feats), mb.Layer1().Src)
		if d := lf.MaxAbsDiff(lq); d > logitTol {
			t.Errorf("%s: logit drift %g exceeds tolerance %g", tag, d, logitTol)
		}
		tensor.Put(lf)
		tensor.Put(lq)
	}
}
