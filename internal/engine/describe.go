package engine

import (
	"fmt"
	"strings"

	"repro/internal/nn"
	"repro/internal/strategy"
)

// DescribePlan renders the adapted execution plan for a strategy: the
// computation and communication operators the Adapt step inserts
// around the single-device kernels at each Permute / Shuffle / Execute
// / Reshuffle stage (paper §4.2). Purely informational — the runners
// in this package implement exactly these plans.
func DescribePlan(k strategy.Kind, m *nn.Model) string {
	attention := m.NeedsDstInSrc()
	var b strings.Builder
	fmt.Fprintf(&b, "execution plan for %v (%s, %d layers):\n", k, m.Name, len(m.Layers))
	line := func(stage, op string) {
		fmt.Fprintf(&b, "  %-9s %s\n", stage+":", op)
	}
	switch k {
	case strategy.GDP:
		line("Permute", "none (blocks stay with their sampling device)")
		line("Shuffle", "none")
		line("Execute", "load features (cache -> CPU), full layer-1 kernel locally")
		line("Reshuffle", "none")
	case strategy.NFP:
		line("Permute", "encode layer-1 block into a contiguous chunk")
		line("Shuffle", "AllBroadcast all layer-1 computation graphs")
		if attention {
			line("Execute", "load feature shard, partial per-head projections for every block (SegmentedSpMM)")
			line("Reshuffle", "AllToAll partial projections to block owners; owners sum and attend; backward AllBroadcast of projection gradients")
		} else {
			line("Execute", "load feature shard, partial projection + partial aggregation for every block (SegmentedSpMM)")
			line("Reshuffle", "SparseAllreduce partial embeddings to destination owners; backward AllBroadcast of destination gradients")
		}
	case strategy.SNP:
		line("Permute", "group layer-1 edges by source-owner device; create virtual nodes")
		line("Shuffle", "AllToAll virtual-node subgraphs to source owners")
		if attention {
			line("Execute", "owners load + project their sources per head (no partial aggregation: attention needs the full source view)")
			line("Reshuffle", "AllToAll projected sources back (per unique source); requester attends; backward AllToAll of projection gradients")
		} else {
			line("Execute", "owners load their sources, project, partially aggregate per virtual node")
			line("Reshuffle", "GroupReduce partial embeddings at requesters (divide by true degree); backward AllToAll of virtual-node gradients")
		}
	case strategy.DNP:
		line("Permute", "group layer-1 destinations (with sampled adjacency) by managing device")
		line("Shuffle", "AllToAll destinations to their managers")
		line("Execute", "managers load source features (partition + 1-hop cache), full layer-1 kernel per destination")
		line("Reshuffle", "AllToAll finished embeddings back to requesters; backward AllToAll of destination gradients")
	case strategy.Hybrid:
		line("Permute", "SNP grouping, but only sources owned by same-machine devices leave the requester")
		line("Shuffle", "intra-machine AllToAll of virtual-node subgraphs; nothing crosses the network")
		line("Execute", "same-machine owners aggregate partially; cross-machine sources handled GDP-style")
		line("Reshuffle", "intra-machine GroupReduce; model allreduce is the only cross-machine traffic")
	}
	line("upper", fmt.Sprintf("layers 2..%d data-parallel; gradient AllReduce; identical optimizer step per replica", len(m.Layers)))
	return b.String()
}
