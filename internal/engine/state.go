package engine

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
)

// Checkpointable engine state. The engine is deterministic given its
// RNG streams: params and optimizer moments are restored through the
// nn package, and the cursors exported here are the remaining mutable
// state a resumed run needs to draw the same mini-batches the
// uninterrupted run would have drawn. All accessors are safe only
// between epochs (no RunEpoch in flight).

// RNGCursors returns each device sampler's RNG stream position plus
// the epoch shuffler's, in device order.
func (e *Engine) RNGCursors() (samplers [][4]uint64, epoch [4]uint64) {
	samplers = make([][4]uint64, len(e.samplers))
	for i, s := range e.samplers {
		samplers[i] = s.RNGState()
	}
	return samplers, e.epochRNG.State()
}

// SetRNGCursors restores cursors captured by RNGCursors on an engine
// with the same device count.
func (e *Engine) SetRNGCursors(samplers [][4]uint64, epoch [4]uint64) error {
	if len(samplers) != len(e.samplers) {
		return fmt.Errorf("engine: %d rng cursors for %d samplers", len(samplers), len(e.samplers))
	}
	for i, st := range samplers {
		if !e.samplers[i].SetRNGState(st) {
			return fmt.Errorf("engine: sampler %d cursor is the degenerate all-zero state", i)
		}
	}
	if !e.epochRNG.SetState(epoch) {
		return fmt.Errorf("engine: epoch rng cursor is the degenerate all-zero state")
	}
	return nil
}

// SyncRNGCursors makes every sampler's cursor locally readable. In a
// multi-process run each rank advances only its own device's sampler,
// so the peers' replicas of that stream sit at stale positions; this
// exchanges the authoritative cursor of each rank with every other, a
// COLLECTIVE operation every rank must enter at the same epoch
// boundary. In-process engines advance all samplers locally and this
// is a no-op. Each cursor crosses the wire as eight u32 bit patterns
// in a Payload.Ints — integers survive the codec exactly.
func (e *Engine) SyncRNGCursors() error {
	if e.cfg.Transport == nil {
		return nil
	}
	r := e.cfg.LocalRank
	st := e.samplers[r].RNGState()
	ints := make([]int32, 8)
	for i, u := range st {
		ints[2*i] = int32(uint32(u))
		ints[2*i+1] = int32(uint32(u >> 32))
	}
	got := e.Comm.AllGatherNoCharge(r, comm.Payload{Ints: ints, Bytes: 0})
	for peer, p := range got {
		if peer == r {
			continue
		}
		if len(p.Ints) != 8 {
			return fmt.Errorf("engine: rank %d sent %d cursor words, want 8", peer, len(p.Ints))
		}
		var ps [4]uint64
		for i := range ps {
			ps[i] = uint64(uint32(p.Ints[2*i])) | uint64(uint32(p.Ints[2*i+1]))<<32
		}
		if !e.samplers[peer].SetRNGState(ps) {
			return fmt.Errorf("engine: rank %d sent the degenerate all-zero cursor", peer)
		}
	}
	return nil
}

// LocalRank returns the device this engine instance drives: the
// process rank in a distributed run, 0 in-process (where the replicas
// are all local and interchangeable after an epoch's collectives).
func (e *Engine) LocalRank() int { return e.cfg.LocalRank }

// Optimizer returns the device's optimizer (for checkpointing its
// state; whether it is stateful is the caller's type assertion).
func (e *Engine) Optimizer(dev int) nn.Optimizer { return e.opts[dev] }

// PipelineState reports whether the engine overlaps sampling with
// compute and under what prefetch bound — the live values, including
// any EnablePipeline resize applied after construction.
func (e *Engine) PipelineState() (pipelined bool, depth int) {
	return e.cfg.Pipeline, e.cfg.PipelineDepth
}

// EpochsRun counts epochs this engine instance completed in full;
// cancelled epochs do not count, so after a mid-epoch kill the counter
// still names the last epoch boundary — exactly the state a snapshot
// taken there captured.
func (e *Engine) EpochsRun() int { return e.epochsRun }
