package engine

import (
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/transport"
)

// roundTrip pushes a payload through the registered engine codecs and
// back, as the TCP transport does per frame.
func roundTrip(t *testing.T, p comm.Payload) comm.Payload {
	t.Helper()
	b, err := transport.AppendPayload(nil, p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := transport.DecodePayload(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestEngineDataCodecs(t *testing.T) {
	blk := &sample.Block{
		Dst:     []graph.NodeID{3, 7},
		Src:     []graph.NodeID{3, 7, 9, 11},
		EdgePtr: []int64{0, 2, 4},
		SrcIdx:  []int32{0, 2, 1, 3},
	}
	cases := map[string]any{
		"block":      blk,
		"snpReq":     &snpRequest{DstIdx: []int32{0, 1}, DstIDs: []graph.NodeID{5, 6}, EdgePtr: []int64{0, 1, 3}, SrcIDs: []graph.NodeID{9, 10, 11}},
		"snpReqNil":  (*snpRequest)(nil),
		"snpGatReq":  &snpGatRequest{SrcIDs: []graph.NodeID{1, 2, 3}},
		"dnpReq":     &dnpRequest{DstIdx: []int32{4}, DstIDs: []graph.NodeID{8}, EdgePtr: []int64{0, 2}, SrcIDs: []graph.NodeID{1, 2}},
		"dnpReqNil":  (*dnpRequest)(nil),
		"blockEmpty": &sample.Block{EdgePtr: []int64{0}},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			got := roundTrip(t, comm.Payload{Data: data, Bytes: 99})
			if got.Bytes != 99 {
				t.Fatalf("Bytes changed: %d", got.Bytes)
			}
			if !reflect.DeepEqual(got.Data, data) {
				t.Fatalf("data changed:\n sent %#v\n got  %#v", data, got.Data)
			}
			// The decoded value must keep the sender's concrete type: the
			// strategy runners type-assert on receive, and a typed nil must
			// stay a typed nil of the same type.
			if reflect.TypeOf(got.Data) != reflect.TypeOf(data) {
				t.Fatalf("type changed: %T -> %T", data, got.Data)
			}
		})
	}
}
