package engine

import (
	"encoding/hex"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/transport"
)

// roundTrip pushes a payload through the registered engine codecs and
// back, as the TCP transport does per frame.
func roundTrip(t *testing.T, p comm.Payload) comm.Payload {
	t.Helper()
	b, err := transport.AppendPayload(nil, p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := transport.DecodePayload(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestEngineWireGolden pins the exact Payload.Data byte layout of the
// four engine wire types (data ids 1-4). These bytes cross version
// skew during live model swap, so any diff here is a protocol break:
// bump the data id instead of changing a layout.
func TestEngineWireGolden(t *testing.T) {
	frame := "01" + "04" + "0700000000000000" // version, flags(data), bytes=7
	cases := []struct {
		name string
		data any
		want string
	}{
		{
			name: "block",
			data: &sample.Block{
				Dst:     []graph.NodeID{1, 2},
				Src:     []graph.NodeID{3},
				EdgePtr: []int64{0, 2},
				SrcIdx:  []int32{0},
			},
			want: frame + "01" + "31000000" + // id 1, body length 49
				"01" + // presence
				"02000000" + "01000000" + "02000000" + // Dst
				"01000000" + "03000000" + // Src
				"02000000" + "0000000000000000" + "0200000000000000" + // EdgePtr
				"01000000" + "00000000", // SrcIdx
		},
		{
			name: "snpRequest",
			data: &snpRequest{DstIdx: []int32{1}, DstIDs: []graph.NodeID{2}, EdgePtr: []int64{0, 1}, SrcIDs: []graph.NodeID{3}},
			want: frame + "02" + "2d000000" + // id 2, body length 45
				"01" +
				"01000000" + "01000000" + // DstIdx
				"01000000" + "02000000" + // DstIDs
				"02000000" + "0000000000000000" + "0100000000000000" + // EdgePtr
				"01000000" + "03000000", // SrcIDs
		},
		{
			name: "snpGatRequest",
			data: &snpGatRequest{SrcIDs: []graph.NodeID{4, 5}},
			want: frame + "03" + "0d000000" + // id 3, body length 13
				"01" + "02000000" + "04000000" + "05000000",
		},
		{
			name: "dnpRequest",
			data: &dnpRequest{DstIdx: []int32{4}, DstIDs: []graph.NodeID{8}, EdgePtr: []int64{0, 2}, SrcIDs: []graph.NodeID{1, 2}},
			want: frame + "04" + "31000000" + // id 4, body length 49
				"01" +
				"01000000" + "04000000" + // DstIdx
				"01000000" + "08000000" + // DstIDs
				"02000000" + "0000000000000000" + "0200000000000000" + // EdgePtr
				"02000000" + "01000000" + "02000000", // SrcIDs
		},
		{
			name: "dnpRequestNil",
			data: (*dnpRequest)(nil),
			want: frame + "04" + "01000000" + "00", // typed nil = absent presence byte
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := transport.AppendPayload(nil, comm.Payload{Data: tc.data, Bytes: 7})
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if got := hex.EncodeToString(b); got != tc.want {
				t.Fatalf("golden mismatch:\n got  %s\n want %s", got, tc.want)
			}
			back := roundTrip(t, comm.Payload{Data: tc.data, Bytes: 7})
			if !reflect.DeepEqual(back.Data, tc.data) {
				t.Fatalf("roundtrip changed data:\n sent %#v\n got  %#v", tc.data, back.Data)
			}
		})
	}
}

func TestEngineDataCodecs(t *testing.T) {
	blk := &sample.Block{
		Dst:     []graph.NodeID{3, 7},
		Src:     []graph.NodeID{3, 7, 9, 11},
		EdgePtr: []int64{0, 2, 4},
		SrcIdx:  []int32{0, 2, 1, 3},
	}
	cases := map[string]any{
		"block":      blk,
		"snpReq":     &snpRequest{DstIdx: []int32{0, 1}, DstIDs: []graph.NodeID{5, 6}, EdgePtr: []int64{0, 1, 3}, SrcIDs: []graph.NodeID{9, 10, 11}},
		"snpReqNil":  (*snpRequest)(nil),
		"snpGatReq":  &snpGatRequest{SrcIDs: []graph.NodeID{1, 2, 3}},
		"dnpReq":     &dnpRequest{DstIdx: []int32{4}, DstIDs: []graph.NodeID{8}, EdgePtr: []int64{0, 2}, SrcIDs: []graph.NodeID{1, 2}},
		"dnpReqNil":  (*dnpRequest)(nil),
		"blockEmpty": &sample.Block{EdgePtr: []int64{0}},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			got := roundTrip(t, comm.Payload{Data: data, Bytes: 99})
			if got.Bytes != 99 {
				t.Fatalf("Bytes changed: %d", got.Bytes)
			}
			if !reflect.DeepEqual(got.Data, data) {
				t.Fatalf("data changed:\n sent %#v\n got  %#v", data, got.Data)
			}
			// The decoded value must keep the sender's concrete type: the
			// strategy runners type-assert on receive, and a typed nil must
			// stay a typed nil of the same type.
			if reflect.TypeOf(got.Data) != reflect.TypeOf(data) {
				t.Fatalf("type changed: %T -> %T", data, got.Data)
			}
		})
	}
}
