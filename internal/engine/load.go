package engine

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// loadUnion loads the deduplicated union of several node lists in one
// store read (a GPU would batch the step's feature gathers the same
// way) and returns one row matrix per input list (nil in accounting
// mode). Without this, a device serving several requesters (SNP/DNP
// Execute) or several broadcast blocks (NFP) would pay for popular
// nodes once per requester.
func (w *worker) loadUnion(lists [][]graph.NodeID) []*tensor.Matrix {
	union, idx := unionIndex(lists)
	x, st := w.eng.cfg.Store.Load(w.dev, union)
	w.stats.Load.Add(st)
	return gatherPerList(x, idx)
}

// unionIndex deduplicates the concatenation of lists, returning the
// union and each list's positions into it. Nil lists index as empty.
func unionIndex(lists [][]graph.NodeID) ([]graph.NodeID, [][]int32) {
	union := make([]graph.NodeID, 0, 256)
	pos := make(map[graph.NodeID]int32, 256)
	idx := make([][]int32, len(lists))
	for li, list := range lists {
		ix := make([]int32, len(list))
		for i, u := range list {
			p, ok := pos[u]
			if !ok {
				p = int32(len(union))
				union = append(union, u)
				pos[u] = p
			}
			ix[i] = p
		}
		idx[li] = ix
	}
	return union, idx
}

// gatherPerList slices the union matrix back into per-list row
// matrices (all nil in accounting mode).
func gatherPerList(x *tensor.Matrix, idx [][]int32) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(idx))
	if x == nil {
		return out
	}
	for li, ix := range idx {
		out[li] = tensor.Gather(x, ix)
	}
	return out
}

// loadUnionDims is loadUnion for NFP's per-shard reads.
func (w *worker) loadUnionDims(lists [][]graph.NodeID, lo, hi int) []*tensor.Matrix {
	union, idx := unionIndex(lists)
	x, st := w.eng.cfg.Store.LoadDims(w.dev, union, lo, hi)
	w.stats.Load.Add(st)
	return gatherPerList(x, idx)
}
