package engine

import (
	"repro/internal/graph"
)

// chargeUnionLoad charges the deduplicated union of several node lists
// as one store read (a GPU would batch the step's feature gathers the
// same way). Without the dedup, a device serving several requesters
// (SNP/DNP Execute) or several broadcast blocks (NFP) would pay for
// popular nodes once per requester. Nothing is copied: the gather-fused
// kernels read the master feature matrix through each list directly,
// so the load reduces to accounting.
func (w *worker) chargeUnionLoad(lists [][]graph.NodeID) {
	union := w.unionNodes(lists)
	w.stats.Load.Add(w.eng.cfg.Store.Charge(w.dev, union))
}

// unionNodes deduplicates the concatenation of lists into the worker's
// reusable union buffer. Membership uses a generation-stamped array
// indexed by node ID instead of a per-call map: one int32 per graph
// node, allocated once per worker and "cleared" by bumping the
// generation (the sampler dedups block sources the same way), so
// steady-state steps allocate nothing here.
func (w *worker) unionNodes(lists [][]graph.NodeID) []graph.NodeID {
	if w.unionStamp == nil {
		w.unionStamp = make([]int32, w.eng.cfg.Graph.NumNodes())
	}
	w.unionGen++
	if w.unionGen == 0 { // generation wrapped: stale stamps could collide
		for i := range w.unionStamp {
			w.unionStamp[i] = 0
		}
		w.unionGen = 1
	}
	gen := w.unionGen
	union := w.unionBuf[:0]
	for _, list := range lists {
		for _, u := range list {
			if w.unionStamp[u] != gen {
				w.unionStamp[u] = gen
				union = append(union, u)
			}
		}
	}
	w.unionBuf = union
	return union
}
