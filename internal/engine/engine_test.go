package engine

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/tensor"
)

// testFixture bundles a small planted-community task every engine test
// shares: features carry a noisy community signal so models can learn.
type testFixture struct {
	g        *graph.Graph
	feats    *tensor.Matrix
	labels   []int32
	seeds    []graph.NodeID
	assign   []int32
	platform *hardware.Platform
	dim      int
	classes  int
}

func newFixture(t testing.TB, devices, nodes int) *testFixture {
	t.Helper()
	const communities = 4
	per := nodes / communities
	rng := graph.NewRNG(42)
	b := graph.NewBuilder(nodes)
	for c := 0; c < communities; c++ {
		base := c * per
		for i := 0; i < per*5; i++ {
			u, v := base+rng.Intn(per), base+rng.Intn(per)
			if u != v {
				b.AddUndirected(int32(u), int32(v))
			}
		}
	}
	for i := 0; i < nodes/10; i++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u != v {
			b.AddUndirected(int32(u), int32(v))
		}
	}
	g := b.Build(true)

	dim := 8
	feats := tensor.New(nodes, dim)
	labels := make([]int32, nodes)
	for v := 0; v < nodes; v++ {
		c := v / per
		if c >= communities {
			c = communities - 1
		}
		labels[v] = int32(c)
		for j := 0; j < dim; j++ {
			feats.Set(v, j, 0.3*rng.NormFloat32())
		}
		feats.Set(v, c, feats.At(v, c)+1)
	}
	seeds := make([]graph.NodeID, 0, nodes/2)
	for v := 0; v < nodes; v += 2 {
		seeds = append(seeds, graph.NodeID(v))
	}
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, devices)
	assign := partition.Multilevel(g, devices, partition.MultilevelConfig{Seed: 7}).Assign
	return &testFixture{
		g: g, feats: feats, labels: labels, seeds: seeds,
		assign: assign, platform: p, dim: dim, classes: communities,
	}
}

// newStore builds a real-mode store with a modest hot cache.
func (f *testFixture) newStore(cacheNodes int, policy cache.Policy) *cache.Store {
	s := cache.NewStore(f.platform, f.g.NumNodes(), f.dim, f.feats)
	s.HostByRange()
	freq := make([]int64, f.g.NumNodes())
	for v := range freq {
		freq[v] = int64(f.g.Degree(graph.NodeID(v))) // degree proxy is fine for tests
	}
	lists := cache.Select(cache.SelectConfig{
		Policy: policy, Freq: freq, Assign: f.assign, Graph: f.g,
		CapacityNodes: cacheNodes, Devices: f.platform.NumDevices(),
	})
	for d, l := range lists {
		s.ConfigureCache(d, l)
	}
	return s
}

func (f *testFixture) config(kind strategy.Kind, newModel func() *nn.Model, plan *sample.SeedPlan, fanouts []int) Config {
	return Config{
		Platform:      f.platform,
		Graph:         f.g,
		Store:         f.newStore(40, policyFor(kind)),
		NewModel:      newModel,
		NewOptimizer:  func() nn.Optimizer { return nn.NewSGD(0.3, 0) },
		Labels:        f.labels,
		Seeds:         f.seeds,
		Sampling:      sample.Config{Fanouts: fanouts},
		BatchSize:     16,
		Assign:        f.assign,
		Kind:          kind,
		Mode:          Real,
		Seed:          99,
		ForceSeedPlan: plan,
	}
}

func policyFor(k strategy.Kind) cache.Policy {
	switch k {
	case strategy.SNP, strategy.Hybrid:
		return cache.PolicyHotPartition
	case strategy.DNP:
		return cache.PolicyHotPartitionPlus1Hop
	default:
		return cache.PolicyHotGlobal
	}
}

// paramsDiff returns the max parameter difference between two engines'
// device-0 replicas.
func paramsDiff(a, b *Engine) float64 {
	pa, pb := a.Model(0).Params(), b.Model(0).Params()
	var mx float64
	for i := range pa {
		if d := pa[i].W.MaxAbsDiff(pb[i].W); d > mx {
			mx = d
		}
	}
	return mx
}

// replicasInSync verifies all devices hold identical models.
func replicasInSync(t *testing.T, e *Engine) {
	t.Helper()
	p0 := e.Model(0).Params()
	for d := 1; d < len(e.models); d++ {
		pd := e.Model(d).Params()
		for i := range p0 {
			if diff := p0[i].W.MaxAbsDiff(pd[i].W); diff > 1e-6 {
				t.Fatalf("device %d param %d diverged by %g", d, i, diff)
			}
		}
	}
}

// TestSemanticEquivalence is the paper's Fig. 6 claim in its strongest
// form: trained on identical mini-batches, all four strategies produce
// the same model up to float32 reassociation.
func TestSemanticEquivalenceSAGE(t *testing.T) {
	f := newFixture(t, 4, 400)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 12, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 4, graph.NewRNG(5))

	engines := map[strategy.Kind]*Engine{}
	for _, k := range strategy.Core {
		e, err := New(f.config(k, newModel, plan, []int{5, 5}))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		for epoch := 0; epoch < 2; epoch++ {
			e.RunEpoch()
		}
		replicasInSync(t, e)
		engines[k] = e
	}
	for _, k := range []strategy.Kind{strategy.NFP, strategy.SNP, strategy.DNP} {
		if d := paramsDiff(engines[strategy.GDP], engines[k]); d > 1e-3 {
			t.Errorf("GDP vs %v: max param diff %g (strategies not equivalent)", k, d)
		}
	}
}

func TestSemanticEquivalenceGAT(t *testing.T) {
	f := newFixture(t, 3, 300)
	newModel := func() *nn.Model { return nn.NewGAT(f.dim, 4, 2, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 3, graph.NewRNG(6))

	engines := map[strategy.Kind]*Engine{}
	for _, k := range strategy.Core {
		e, err := New(f.config(k, newModel, plan, []int{4, 4}))
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		e.RunEpoch()
		replicasInSync(t, e)
		engines[k] = e
	}
	for _, k := range []strategy.Kind{strategy.NFP, strategy.SNP, strategy.DNP} {
		if d := paramsDiff(engines[strategy.GDP], engines[k]); d > 2e-3 {
			t.Errorf("GDP vs %v (GAT): max param diff %g", k, d)
		}
	}
}

func TestHybridEquivalence(t *testing.T) {
	f := newFixture(t, 4, 300)
	// Two machines with two GPUs each.
	f.platform = hardware.WithDevices(hardware.FourMachines4GPU(), 2, 2)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 4, graph.NewRNG(8))
	gdp, err := New(f.config(strategy.GDP, newModel, plan, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := New(f.config(strategy.Hybrid, newModel, plan, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	gdp.RunEpoch()
	hyb.RunEpoch()
	if d := paramsDiff(gdp, hyb); d > 1e-3 {
		t.Errorf("GDP vs Hybrid: max param diff %g", d)
	}
}

// TestGDPMatchesReference removes sampling randomness (full-neighbor
// fanout) so the engine and the sequential reference trainer must
// produce the same model.
func TestGDPMatchesReference(t *testing.T) {
	f := newFixture(t, 2, 200)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	fullFanout := []int{1000, 1000}
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))

	e, err := New(f.config(strategy.GDP, newModel, plan, fullFanout))
	if err != nil {
		t.Fatal(err)
	}
	e.RunEpoch()

	ref := NewReference(f.g, f.feats, f.labels, newModel, nn.NewSGD(0.3, 0),
		sample.Config{Fanouts: fullFanout}, 99)
	// Feed the reference the engine's global batches in the same order.
	nb := plan.NumBatches(16)
	for step := 0; step < nb; step++ {
		var global []graph.NodeID
		for d := 0; d < 2; d++ {
			global = append(global, plan.Batch(d, step, 16)...)
		}
		ref.TrainStep(global)
	}
	pe, pr := e.Model(0).Params(), ref.Model.Params()
	for i := range pe {
		if d := pe[i].W.MaxAbsDiff(pr[i].W); d > 1e-3 {
			t.Errorf("param %d: engine vs reference diff %g", i, d)
		}
	}
}

func TestTrainingLearnsCommunities(t *testing.T) {
	f := newFixture(t, 4, 400)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 16, f.classes, 2) }
	cfg := f.config(strategy.DNP, newModel, nil, []int{5, 5})
	cfg.NewOptimizer = func() nn.Optimizer { return nn.NewAdam(0.01) }
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	test := make([]graph.NodeID, 0)
	for v := 1; v < f.g.NumNodes(); v += 2 {
		test = append(test, graph.NodeID(v))
	}
	before := Evaluate(f.g, e.Model(0), f.feats, f.labels, test, cfg.Sampling, 64, 1)
	var lastLoss float64
	for epoch := 0; epoch < 8; epoch++ {
		st := e.RunEpoch()
		lastLoss = st.MeanLoss
	}
	after := Evaluate(f.g, e.Model(0), f.feats, f.labels, test, cfg.Sampling, 64, 1)
	if after < before+0.2 || after < 0.7 {
		t.Errorf("accuracy %v -> %v; model failed to learn", before, after)
	}
	if lastLoss <= 0 || lastLoss > 1.0 {
		t.Errorf("final loss %v unreasonable", lastLoss)
	}
}

func TestAccountingModeVolumes(t *testing.T) {
	f := newFixture(t, 4, 400)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 12, f.classes, 2) }
	stats := map[strategy.Kind]EpochStats{}
	for _, k := range strategy.Core {
		cfg := f.config(k, newModel, nil, []int{5, 5})
		cfg.Mode = Accounting
		cfg.Store = cache.NewStore(f.platform, f.g.NumNodes(), f.dim, nil) // no features
		cfg.Store.HostByRange()
		cfg.Labels = nil
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		stats[k] = e.RunEpoch()
	}
	if stats[strategy.GDP].Totals.HiddenShuffleBytes() != 0 {
		t.Error("GDP must not shuffle hidden embeddings")
	}
	if stats[strategy.GDP].Totals.GraphShuffleBytes() != 0 {
		t.Error("GDP must not shuffle subgraphs")
	}
	for _, k := range []strategy.Kind{strategy.NFP, strategy.SNP, strategy.DNP} {
		if stats[k].Totals.HiddenShuffleBytes() == 0 {
			t.Errorf("%v produced no hidden shuffle volume", k)
		}
		if stats[k].Totals.GraphShuffleBytes() == 0 {
			t.Errorf("%v produced no graph shuffle volume", k)
		}
	}
	// NFP broadcasts every block and pays per destination per device —
	// the largest hidden volume (paper: 2d'CN_d vs 2d'N_v).
	if stats[strategy.NFP].Totals.HiddenShuffleBytes() <= stats[strategy.DNP].Totals.HiddenShuffleBytes() {
		t.Error("NFP hidden shuffle should exceed DNP's")
	}
	// DNP ships at most one embedding per destination; SNP may ship
	// one per (destination, owner) pair.
	if stats[strategy.DNP].Totals.HiddenShuffleBytes() > stats[strategy.SNP].Totals.HiddenShuffleBytes() {
		t.Error("DNP hidden shuffle should not exceed SNP's")
	}
	for _, k := range strategy.Core {
		st := stats[k]
		if st.SampleSec <= 0 || st.TrainSec <= 0 {
			t.Errorf("%v: missing stage times %+v", k, st)
		}
		if st.EpochTime() != st.SampleSec+st.BuildSec+st.LoadSec+st.TrainSec+st.ShuffleSec {
			t.Errorf("%v: EpochTime does not decompose", k)
		}
		if st.Totals.Layer1Dst == 0 || st.Totals.SampledEdges == 0 {
			t.Errorf("%v: missing counters", k)
		}
	}
}

func TestAccountingAndRealChargeSameVolumes(t *testing.T) {
	f := newFixture(t, 3, 300)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 3, graph.NewRNG(4))
	for _, k := range strategy.Core {
		cfgReal := f.config(k, newModel, plan, []int{4, 4})
		eReal, err := New(cfgReal)
		if err != nil {
			t.Fatal(err)
		}
		stReal := eReal.RunEpoch()

		cfgAcc := f.config(k, newModel, plan, []int{4, 4})
		cfgAcc.Mode = Accounting
		// Same store shape, no feature payload.
		cfgAcc.Store = f.newStore(40, policyFor(k))
		cfgAcc.Store.Feats = nil
		eAcc, err := New(cfgAcc)
		if err != nil {
			t.Fatal(err)
		}
		stAcc := eAcc.RunEpoch()

		if stReal.Totals.HiddenShuffleBytes() != stAcc.Totals.HiddenShuffleBytes() {
			t.Errorf("%v: hidden bytes real %d != accounting %d", k,
				stReal.Totals.HiddenShuffleBytes(), stAcc.Totals.HiddenShuffleBytes())
		}
		if stReal.Totals.GraphShuffleBytes() != stAcc.Totals.GraphShuffleBytes() {
			t.Errorf("%v: graph bytes real %d != accounting %d", k,
				stReal.Totals.GraphShuffleBytes(), stAcc.Totals.GraphShuffleBytes())
		}
		if stReal.Totals.Load.Bytes != stAcc.Totals.Load.Bytes {
			t.Errorf("%v: load bytes differ between modes", k)
		}
	}
}

func TestNFPOOMAtLargeHidden(t *testing.T) {
	f := newFixture(t, 4, 400)
	tiny := *f.platform
	tiny.GPUMemBytes = 64 * 1024 // 64KB "GPU"
	tiny.DefaultCacheBytes = 0
	f.platform = &tiny
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 256, f.classes, 2) }
	cfg := f.config(strategy.NFP, newModel, nil, []int{8, 8})
	cfg.Mode = Accounting
	cfg.Store = cache.NewStore(f.platform, f.g.NumNodes(), f.dim, nil)
	cfg.Store.HostByRange()
	cfg.Labels = nil
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunEpoch()
	if !st.OOM {
		t.Error("NFP with huge hidden dim on tiny GPU did not flag OOM (paper Fig. 10 behavior)")
	}
}

func TestEngineValidation(t *testing.T) {
	f := newFixture(t, 2, 100)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	cfg := f.config(strategy.SNP, newModel, nil, []int{4})
	cfg.Assign = nil
	if _, err := New(cfg); err == nil {
		t.Error("SNP without partition accepted")
	}
	cfg2 := f.config(strategy.GDP, newModel, nil, []int{4})
	cfg2.BatchSize = 0
	if _, err := New(cfg2); err == nil {
		t.Error("zero batch accepted")
	}
	cfg3 := f.config(strategy.GDP, newModel, nil, []int{4})
	cfg3.Store = nil
	if _, err := New(cfg3); err == nil {
		t.Error("nil store accepted")
	}
}

func TestStrategyTable1Shape(t *testing.T) {
	rows := strategy.Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	for i, k := range strategy.Core {
		if rows[i].Kind != k {
			t.Errorf("row %d kind %v", i, rows[i].Kind)
		}
	}
	if !rows[3].RequiresPartition || rows[0].RequiresPartition {
		t.Error("partition requirements wrong")
	}
	if k, err := strategy.Parse("dnp"); err != nil || k != strategy.DNP {
		t.Error("Parse failed")
	}
	if _, err := strategy.Parse("bogus"); err == nil {
		t.Error("Parse accepted bogus name")
	}
	if fmt.Sprint(strategy.GDP, strategy.NFP, strategy.SNP, strategy.DNP, strategy.Hybrid) != "GDP NFP SNP DNP Hybrid" {
		t.Error("String() names wrong")
	}
}
