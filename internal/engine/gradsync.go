package engine

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/obs"
)

// gradSync is the bucketed, backward-overlapped gradient
// synchronization (DDP-style). The model's parameters are grouped into
// per-layer buckets in reverse layer order (nn.Model.GradBuckets); as
// each layer's backward completes, the worker launches that bucket's
// ring allreduce on a per-rank sync goroutine, so the ring transfers
// run while the remaining (lower) layers are still computing.
//
// Concurrency contract: the sync goroutine issues ONLY ring data-plane
// transfers (comm.RingAllReduceData) — it never touches the simulated
// clocks, the ledger, or span tracks. The worker goroutine never
// issues collectives of its own while bucket transfers are in flight:
// when the strategy's layer-1 backward communicates
// (layer1Runner.backwardIsLocal() == false), the worker drains the
// in-flight buckets first. That keeps every rank's transport-operation
// order identical — the lockstep invariant all collectives rely on —
// and preserves comm's rule that a rank's ring scratch is never
// touched concurrently.
//
// Timing: the data plane is free; the worker charges the schedule at
// join time. Bucket i's transfer starts at max(launch[i], end[i-1])
// on the serialized compute clock (launch[i] is the clock when its
// layer's backward finished — transfers overlap compute but serialize
// against each other on the ring), and only the tail that outlives
// the backward pass — max(0, end[last] - clockAtJoin) — is charged to
// the train stage. Each bucket emits an "allreduce" span at its
// scheduled start, so the Chrome trace shows the buckets overlapping
// the device track's backward compute.
type gradSync struct {
	w     *worker
	codec comm.ChunkCodec

	buckets []*gradBucket
	// launchClk[i] is the serialized compute clock when bucket i was
	// launched this step.
	launchClk []float64

	// reqs/acks carry bucket indices to/from the per-step sync
	// goroutine; done signals its exit. All are buffered so neither
	// side ever blocks on the other mid-ring, and they are allocated
	// once — the steady-state step is channel-allocation-free.
	reqs chan int
	acks chan int
	done chan struct{}
	sent int
	ackd int
	// scheduled/prevEnd track the per-step charging schedule: buckets
	// [0, scheduled) have been placed on the timeline, and prevEnd is
	// the scheduled finish of the last one (transfers serialize against
	// each other on the ring).
	scheduled int
	prevEnd   float64
}

// gradBucket is one layer's worth of parameters flattened for the ring.
type gradBucket struct {
	layer  int // model layer index (bucket order is reverse of this)
	params []*nn.Param
	flat   []float32
	// commSec/wire/kind are the bucket's modeled allreduce cost
	// (comm.AllReduceModel), fixed for the run.
	commSec float64
	wire    int64
	kind    hardware.LinkKind
	// res holds the int8 error-feedback residual (DESIGN decision 18):
	// the quantization error of this rank's previous contribution,
	// added back before encoding the next one. enc/dq are the local
	// quantize/dequantize scratch that measures the error. Nil for
	// exact and fp16 codecs.
	res []float32
	enc []byte
	dq  []float32
}

// newGradSync builds the bucket layout for w's model replica. ef
// enables the per-bucket error-feedback residual (int8).
func newGradSync(w *worker, codec comm.ChunkCodec, ef bool) *gradSync {
	gs := &gradSync{w: w, codec: codec}
	for i, ps := range w.model.GradBuckets() {
		b := &gradBucket{layer: len(w.model.Layers) - 1 - i, params: ps}
		elems := 0
		for _, p := range ps {
			elems += len(p.G.Data)
		}
		b.flat = make([]float32, elems)
		b.commSec, b.wire, b.kind = w.eng.Comm.AllReduceModel(elems, codec)
		if ef {
			b.res = make([]float32, elems)
			b.enc = make([]byte, codec.EncodedLen(elems))
			b.dq = make([]float32, elems)
		}
		gs.buckets = append(gs.buckets, b)
	}
	gs.launchClk = make([]float64, len(gs.buckets))
	gs.reqs = make(chan int, len(gs.buckets))
	gs.acks = make(chan int, len(gs.buckets))
	gs.done = make(chan struct{}, 1)
	return gs
}

// commClock is the worker's serialized compute-side clock — the axis
// collective spans live on (see comm.chargeWithSpan): sampling is
// excluded so a concurrent prefetcher cannot perturb it.
func (w *worker) commClock() float64 {
	d := w.dev
	return d.Elapsed(device.StageBuild) + d.Elapsed(device.StageLoad) +
		d.Elapsed(device.StageTrain) + d.Elapsed(device.StageShuffle)
}

// beginStep starts this step's sync goroutine. Every step launches
// every bucket exactly once, so the goroutine's work count is fixed.
func (gs *gradSync) beginStep() {
	gs.sent, gs.ackd = 0, 0
	gs.scheduled, gs.prevEnd = 0, 0
	go gs.run()
}

func (gs *gradSync) run() {
	for k := 0; k < len(gs.buckets); k++ {
		i := <-gs.reqs
		b := gs.buckets[i]
		gs.w.eng.Comm.RingAllReduceData(gs.w.dev.ID, b.flat, gs.codec)
		gs.acks <- i
	}
	gs.done <- struct{}{}
}

// launchLayer flattens layer's gradients into its bucket, applies
// error feedback, snapshots the launch clock, and hands the bucket to
// the sync goroutine. Called right after that layer's backward has
// accumulated its parameter gradients.
func (gs *gradSync) launchLayer(layer int) {
	i := len(gs.buckets) - 1 - layer
	b := gs.buckets[i]
	off := 0
	for _, p := range b.params {
		copy(b.flat[off:], p.G.Data)
		off += len(p.G.Data)
	}
	if b.res != nil {
		// u = g + e, then e' = u - deQ(Q(u)): the error of quantizing
		// this rank's own contribution, measured against a whole-bucket
		// encoding (the wire additionally requantizes per ring chunk and
		// per hop; that error is not fed back — DESIGN decision 18).
		for j, r := range b.res {
			b.flat[j] += r
		}
		gs.codec.EncodeChunk(b.enc, b.flat)
		if err := gs.codec.DecodeChunk(b.dq, b.enc); err != nil {
			panic(fmt.Sprintf("engine: error-feedback decode (%s): %v", gs.codec.Name(), err))
		}
		for j := range b.res {
			b.res[j] = b.flat[j] - b.dq[j]
		}
	}
	gs.launchClk[i] = gs.w.commClock()
	gs.sent++
	gs.reqs <- i
}

// drainInFlight blocks until every launched bucket's ring has
// completed, quiescing the sync goroutine, and settles their charges —
// the worker's next collective is then correctly charged as starting
// after the drained transfers. Required before the worker issues
// collectives of its own (a communicating layer-1 backward): two
// goroutines of one rank must never have transport operations in
// flight at once.
func (gs *gradSync) drainInFlight() {
	for gs.ackd < gs.sent {
		<-gs.acks
		gs.ackd++
	}
	gs.settle()
}

// settle places the launched-but-unscheduled buckets on the timeline —
// each starts at max(its launch clock, the previous bucket's end) —
// emits their spans and ledger entries, and charges the exposed tail
// (scheduled end beyond the current compute clock) to the train stage.
// Called at every join point, so simulated time never runs backwards
// relative to collectives the worker issues afterwards.
func (gs *gradSync) settle() {
	w := gs.w
	c := w.eng.Comm
	var track *obs.Track // nil track: Emit is a no-op
	if c.Spans != nil {
		track = c.Spans[w.dev.ID]
	}
	base := 0.0
	if c.SpanBase != nil {
		base = *c.SpanBase
	}
	for ; gs.scheduled < gs.sent; gs.scheduled++ {
		b := gs.buckets[gs.scheduled]
		start := gs.launchClk[gs.scheduled]
		if start < gs.prevEnd {
			start = gs.prevEnd // transfers serialize on the ring
		}
		track.Emit("allreduce", b.layer, base+start, b.commSec, b.wire)
		c.Ledger.Add("allreduce", b.kind, b.wire)
		gs.prevEnd = start + b.commSec
		w.stats.GradCommSec += b.commSec
	}
	if exposed := gs.prevEnd - w.commClock(); exposed > 0 {
		w.dev.Charge(device.StageTrain, exposed)
		w.stats.GradExposedSec += exposed
	}
}

// finish waits for all buckets, settles the overlapped schedule, and
// writes the reduced gradients back. After it returns, every peer is
// provably past its backward pass: completing the final bucket's ring
// means every rank sent its last ring hop, which happens after that
// rank launched its final bucket, which follows its backward — the
// causal guarantee computeStep's buffer recycling relies on.
func (gs *gradSync) finish() {
	for gs.ackd < len(gs.buckets) {
		<-gs.acks
		gs.ackd++
	}
	<-gs.done
	gs.settle()

	for _, b := range gs.buckets {
		off := 0
		for _, p := range b.params {
			copy(p.G.Data, b.flat[off:off+len(p.G.Data)])
			off += len(p.G.Data)
		}
	}
}
