package engine

import (
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/strategy"
)

func TestDescribePlanCoversAllStrategies(t *testing.T) {
	sage := nn.NewGraphSAGE(8, 16, 4, 3)
	gat := nn.NewGAT(8, 4, 2, 4, 2)
	kinds := append(append([]strategy.Kind{}, strategy.Core...), strategy.Hybrid)
	for _, k := range kinds {
		out := DescribePlan(k, sage)
		for _, stage := range []string{"Permute:", "Shuffle:", "Execute:", "Reshuffle:"} {
			if !strings.Contains(out, stage) {
				t.Errorf("%v plan missing %s", k, stage)
			}
		}
		if !strings.Contains(out, "AllReduce") {
			t.Errorf("%v plan missing model sync", k)
		}
	}
	// Attention changes the SNP/NFP execute/reshuffle operators.
	snpSage := DescribePlan(strategy.SNP, sage)
	snpGat := DescribePlan(strategy.SNP, gat)
	if snpSage == snpGat {
		t.Error("SNP plan should differ between SAGE and GAT")
	}
	if !strings.Contains(snpGat, "attention") {
		t.Error("SNP GAT plan should mention attention")
	}
	if !strings.Contains(DescribePlan(strategy.GDP, sage), "none") {
		t.Error("GDP plan should have empty shuffle stages")
	}
}

func TestNewValidatesPartitionAssignment(t *testing.T) {
	f := newFixture(t, 2, 100)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	cfg := f.config(strategy.DNP, newModel, nil, []int{4})
	cfg.Assign = []int32{0, 1} // wrong length
	if _, err := New(cfg); err == nil {
		t.Error("accepted short partition assignment")
	}
	bad := make([]int32, f.g.NumNodes())
	bad[3] = 99 // device out of range
	cfg2 := f.config(strategy.DNP, newModel, nil, []int{4})
	cfg2.Assign = bad
	if _, err := New(cfg2); err == nil {
		t.Error("accepted out-of-range device in assignment")
	}
}
