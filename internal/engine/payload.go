package engine

import (
	"repro/internal/comm"
	"repro/internal/device"
)

// payload aliases comm.Payload; the runners build a lot of them.
type payload = comm.Payload

// allToAll is the worker-scoped collective shorthand; calls are
// counted per stage so the cost model can charge per-call latency.
func (w *worker) allToAll(stage string, outs []payload) []payload {
	if stage == device.StageBuild {
		w.stats.BuildA2ACalls++
	} else {
		w.stats.ShufA2ACalls++
	}
	return w.eng.Comm.AllToAll(w.dev.ID, stage, outs)
}

// allGather broadcasts p from every worker and returns all payloads.
func (w *worker) allGather(stage string, p payload) []payload {
	if stage == device.StageBuild {
		w.stats.BuildBcastCalls++
	} else {
		w.stats.ShufBcastCalls++
	}
	return w.eng.Comm.AllGather(w.dev.ID, stage, p)
}
