package engine

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/tensor"
)

func inferFixture(t *testing.T, cacheAll bool) (*Inferencer, *graph.Graph, *nn.Model, *tensor.Matrix) {
	t.Helper()
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 300, AvgDegree: 8, Seed: 2})
	dim := 12
	rng := graph.NewRNG(4)
	feats := tensor.New(g.NumNodes(), dim)
	for i := range feats.Data {
		feats.Data[i] = rng.NormFloat32()
	}
	m := nn.NewGraphSAGE(dim, 16, 4, 2)
	m.Init(graph.NewRNG(7))
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2)
	store := cache.NewStore(p, g.NumNodes(), dim, feats)
	store.HostByRange()
	if cacheAll {
		all := make([]graph.NodeID, g.NumNodes())
		for i := range all {
			all[i] = graph.NodeID(i)
		}
		for d := 0; d < p.NumDevices(); d++ {
			store.ConfigureCache(d, all)
		}
	}
	inf, err := NewInferencer(InferConfig{
		Platform: p,
		Graph:    g,
		Store:    store,
		Model:    m,
		Sampling: sample.Config{Fanouts: []int{0, 0}, Method: sample.Full},
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inf, g, m, feats
}

// TestInferMatchesDirectPredict checks worker inference equals a
// direct sampler+Predict run (deterministic under Full sampling).
func TestInferMatchesDirectPredict(t *testing.T) {
	inf, g, m, feats := inferFixture(t, false)
	seeds := []graph.NodeID{3, 50, 299}
	logits, st := inf.Worker(0).Infer(seeds)
	defer tensor.Put(logits)
	if logits.Rows != len(seeds) {
		t.Fatalf("logits rows = %d, want %d", logits.Rows, len(seeds))
	}
	var total int64
	for _, n := range st.Nodes {
		total += n
	}
	if total == 0 {
		t.Fatal("no feature loads recorded")
	}

	smp := sample.NewSampler(g, sample.Config{Fanouts: []int{0, 0}, Method: sample.Full}, graph.NewRNG(1))
	mb := smp.Sample(seeds)
	x := tensor.Gather(feats, mb.Layer1().Src)
	want := m.Predict(mb, x)
	defer tensor.Put(want)
	if d := want.MaxAbsDiff(logits); d != 0 {
		t.Fatalf("worker inference differs from direct predict by %g", d)
	}
}

// TestInferChargesSimTimeAndHitsCache checks device clocks advance and
// a fully-populated cache serves every read from GPU memory.
func TestInferChargesSimTimeAndHitsCache(t *testing.T) {
	inf, _, _, _ := inferFixture(t, true)
	logits, st := inf.Worker(1).Infer([]graph.NodeID{10, 20, 30})
	tensor.Put(logits)
	if st.Nodes[cache.LocGPU] == 0 {
		t.Fatal("expected GPU cache hits with a full cache")
	}
	var miss int64
	for loc, n := range st.Nodes {
		if cache.Location(loc) != cache.LocGPU {
			miss += n
		}
	}
	if miss != 0 {
		t.Fatalf("expected all hits, got %d misses", miss)
	}
	if inf.SimSeconds() <= 0 {
		t.Fatal("no simulated time charged")
	}
	if inf.NumWorkers() != 2 {
		t.Fatalf("NumWorkers = %d", inf.NumWorkers())
	}
}

// TestInferencerValidation exercises the constructor's error paths.
func TestInferencerValidation(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 50, AvgDegree: 4, Seed: 2})
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 1)
	m := nn.NewGraphSAGE(8, 8, 3, 2)
	accStore := cache.NewStore(p, g.NumNodes(), 8, nil)
	if _, err := NewInferencer(InferConfig{Platform: p, Graph: g, Store: accStore, Model: m,
		Sampling: sample.Config{Fanouts: []int{2, 2}}}); err == nil {
		t.Fatal("accounting store accepted")
	}
	feats := tensor.New(g.NumNodes(), 8)
	store := cache.NewStore(p, g.NumNodes(), 8, feats)
	if _, err := NewInferencer(InferConfig{Platform: p, Graph: g, Store: store, Model: m,
		Sampling: sample.Config{Fanouts: []int{2}}}); err == nil {
		t.Fatal("fanout/layer mismatch accepted")
	}
}
