package engine

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/strategy"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// orderedTrack asserts the track's spans are strictly time-ordered:
// each span starts no earlier than the previous one ends.
func orderedTrack(t *testing.T, tr *obs.Track) {
	t.Helper()
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End()-1e-9 {
			t.Errorf("track %s: span %d (%s) starts %.9f before span %d ends %.9f",
				tr.Name, i, spans[i].Stage, spans[i].Start, i-1, spans[i-1].End())
		}
	}
	for _, s := range spans {
		if s.Dur <= 0 {
			t.Errorf("track %s: non-positive span duration %g", tr.Name, s.Dur)
		}
	}
}

// TestSyncSpanEmission runs two synchronous epochs with span collection
// on and checks the device and comm tracks tell a consistent story:
// strictly ordered per track, all five stages present, comm spans from
// the gradient collective, and the second epoch extending (never
// rewinding) the trace timeline.
func TestSyncSpanEmission(t *testing.T) {
	f := newFixture(t, 2, 200)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))
	cfg := f.config(strategy.SNP, newModel, plan, []int{4, 4})
	col := obs.NewCollector()
	cfg.Spans = col
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st1 := e.RunEpoch()
	n1 := col.NumSpans()
	if n1 == 0 {
		t.Fatal("no spans collected")
	}
	st2 := e.RunEpoch()
	if col.NumSpans() <= n1 {
		t.Fatalf("second epoch added no spans (%d -> %d)", n1, col.NumSpans())
	}

	stages := map[string]bool{}
	commSpans := 0
	for _, tr := range col.Tracks() {
		orderedTrack(t, tr)
		for _, s := range tr.Spans() {
			if tr.Proc == "comm" {
				commSpans++
				if s.Bytes <= 0 {
					t.Errorf("comm span %q carries no bytes", s.Stage)
				}
			} else {
				stages[s.Stage] = true
			}
		}
	}
	for _, want := range []string{"sample", "build", "load", "train", "shuffle"} {
		if !stages[want] {
			t.Errorf("no %q span on any device track", want)
		}
	}
	if commSpans == 0 {
		t.Error("gradient allreduce left no comm spans")
	}
	if max := col.MaxEnd(); max > st1.EpochTime()+st2.EpochTime()+1e-9 {
		t.Errorf("trace extends to %.6f, beyond the two epochs' %.6f",
			max, st1.EpochTime()+st2.EpochTime())
	}
	if col.MaxEnd() <= st1.EpochTime() {
		t.Error("second epoch did not advance the trace timeline")
	}
}

// chromeEvent is the subset of a trace event the tests inspect.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Name string  `json:"name"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Name string `json:"name"`
		Step int    `json:"step"`
	} `json:"args"`
}

// TestChromeTraceGoldenPipelined runs a deterministic two-device
// pipelined accounting epoch, exports the Chrome trace, and checks it
// against the golden file (regenerate with -update). It then validates
// the trace structurally: well-formed JSON, strictly time-ordered
// events per (pid, tid) track, and — the point of the pipeline —
// sampler spans for later steps overlapping device compute spans of
// earlier steps.
func TestChromeTraceGoldenPipelined(t *testing.T) {
	f := newFixture(t, 2, 200)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	cfg := f.config(strategy.SNP, newModel, nil, []int{4, 4})
	cfg.Mode = Accounting
	cfg.Store = cache.NewStore(f.platform, f.g.NumNodes(), f.dim, nil)
	cfg.Store.HostByRange()
	cfg.Labels = nil
	cfg.Pipeline = true
	col := obs.NewCollector()
	cfg.Spans = col
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := e.RunEpoch()
	if st.MeasuredPipelinedSec <= 0 {
		t.Fatal("pipelined epoch measured nothing")
	}
	got, err := obs.ChromeTraceJSON(col)
	if err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "pipelined_trace.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to regenerate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace differs from golden %s (rerun with -update if the change is intended)", golden)
	}

	var file struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &file); err != nil {
		t.Fatalf("trace is not well-formed JSON: %v", err)
	}

	type key struct{ pid, tid int }
	trackName := map[key]string{}
	lastEnd := map[key]float64{}
	byTrack := map[string][]chromeEvent{}
	for _, ev := range file.TraceEvents {
		k := key{ev.Pid, ev.Tid}
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name":
			trackName[k] = ev.Args.Name
		case ev.Ph == "X":
			if ev.Dur <= 0 {
				t.Errorf("event %q step %d has non-positive dur %g", ev.Name, ev.Args.Step, ev.Dur)
			}
			if ev.Ts < lastEnd[k]-1e-3 { // 1e-3 us = 1ns of simulated slack
				t.Errorf("track %s: event %q step %d at ts=%.3f overlaps previous end %.3f",
					trackName[k], ev.Name, ev.Args.Step, ev.Ts, lastEnd[k])
			}
			lastEnd[k] = ev.Ts + ev.Dur
			byTrack[trackName[k]] = append(byTrack[trackName[k]], ev)
		}
	}
	if len(byTrack["dev0"]) == 0 || len(byTrack["dev0/sampler"]) == 0 {
		t.Fatalf("expected device and sampler tracks, got %v", trackName)
	}

	// Prefetch overlap: on each device, some sampler span for step s
	// must overlap a compute span of an earlier step.
	for dev := 0; dev < 2; dev++ {
		name := "dev0"
		if dev == 1 {
			name = "dev1"
		}
		overlap := false
		for _, smp := range byTrack[name+"/sampler"] {
			if smp.Args.Step == 0 {
				continue
			}
			for _, cmp := range byTrack[name] {
				if cmp.Args.Step < smp.Args.Step &&
					smp.Ts < cmp.Ts+cmp.Dur && smp.Ts+smp.Dur > cmp.Ts {
					overlap = true
				}
			}
		}
		if !overlap {
			t.Errorf("%s: no sampler span overlaps an earlier step's compute span — pipeline overlap invisible", name)
		}
	}
}

// TestRunEpochContextCancel checks cancellation on both execution
// paths: an already-cancelled context stops the epoch before any step
// (collectively, so the lockstep collectives never deadlock), and the
// engine stays usable afterwards.
func TestRunEpochContextCancel(t *testing.T) {
	for _, pipeline := range []bool{false, true} {
		f := newFixture(t, 2, 200)
		newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
		plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))
		cfg := f.config(strategy.GDP, newModel, plan, []int{4, 4})
		cfg.Pipeline = pipeline
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		st, err := e.RunEpochContext(ctx)
		if err != context.Canceled {
			t.Errorf("pipeline=%v: err = %v, want context.Canceled", pipeline, err)
		}
		if st.Totals.SeedsProcessed != 0 {
			t.Errorf("pipeline=%v: cancelled epoch still trained %d seeds",
				pipeline, st.Totals.SeedsProcessed)
		}
		// The engine must remain fully usable: a fresh epoch trains.
		st2, err := e.RunEpochContext(context.Background())
		if err != nil {
			t.Errorf("pipeline=%v: epoch after cancel failed: %v", pipeline, err)
		}
		if st2.Totals.SeedsProcessed == 0 {
			t.Errorf("pipeline=%v: epoch after cancel trained nothing", pipeline)
		}
	}
}

// TestRecordEpochMetrics folds an epoch into a registry and spot-checks
// the exposition.
func TestRecordEpochMetrics(t *testing.T) {
	f := newFixture(t, 2, 200)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 2, graph.NewRNG(3))
	e, err := New(f.config(strategy.SNP, newModel, plan, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	st := e.RunEpoch()
	RecordEpochMetrics(r, st)
	RecordEpochMetrics(r, e.RunEpoch())
	if got := r.Counter("apt_engine_epochs_total", "").Value(); got != 2 {
		t.Errorf("epochs_total = %d, want 2", got)
	}
	if r.Counter("apt_engine_seeds_total", "").Value() <= 0 {
		t.Error("seeds_total not accumulated")
	}
	if r.Gauge("apt_engine_epoch_seconds", "").Value() <= 0 {
		t.Error("epoch_seconds gauge empty")
	}
	_ = st
	exp := r.Exposition()
	for _, want := range []string{"apt_engine_epochs_total 2", "# TYPE apt_engine_epoch_seconds gauge"} {
		if !contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// nil registry is a no-op, not a panic.
	RecordEpochMetrics(nil, st)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
