package engine

import (
	"context"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/sample"
)

// Pipelined execution (GNNLab/DSP-style overlap): each worker runs a
// prefetch goroutine that samples mini-batch t+1 while batch t
// computes, bounded by a channel of depth Config.PipelineDepth. The
// collectives keep their lockstep contract — only sampling leaves the
// worker goroutine — and each worker's sampler still draws batches in
// sequential order on a single goroutine, so real-mode training is
// bit-identical to the synchronous path.
//
// On top of the real overlap, the simulated clocks are folded into an
// overlapped schedule per worker:
//
//	sampleDone[t]  = max(sampleDone[t-1], computeStart[t-depth]) + sampleSec[t]
//	computeStart[t] = max(computeDone[t-1], sampleDone[t])
//	computeDone[t]  = computeStart[t] + computeSec[t]
//
// where the computeStart[t-depth] term models the bounded prefetch
// queue: slot t frees only when compute picks up batch t-depth. The
// worker's measured epoch is computeDone[last]; EpochStats reports the
// max across workers as MeasuredPipelinedSec, next to the analytic
// PipelinedTime() upper-bound estimate. The schedule never beats
// perfect overlap (sampling and compute are the two pipeline legs) and
// never exceeds the synchronous EpochTime, since each worker's
// overlapped finish is at most its own stage-time sum.

// defaultPipelineDepth bounds prefetch when Config.PipelineDepth is 0.
const defaultPipelineDepth = 2

func (e *Engine) pipelineDepth() int {
	if d := e.cfg.PipelineDepth; d > 0 {
		return d
	}
	return defaultPipelineDepth
}

// prefetched is one sampled mini-batch handed from a worker's prefetch
// goroutine to its compute loop.
type prefetched struct {
	step      int
	seeds     []graph.NodeID
	mb        *sample.MiniBatch
	edges     int64
	sampleSec float64
}

// runPrefetcher samples the worker's whole epoch in step order,
// charging the sample clock as it goes, and feeds the bounded channel.
// It owns the worker's sampler for the duration of the epoch; stats
// counters stay with the compute loop so the two goroutines never
// share mutable state.
func (e *Engine) runPrefetcher(w *worker, plan *sample.SeedPlan, numBatches int, out chan<- prefetched) {
	defer close(out)
	B := e.cfg.BatchSize
	for step := 0; step < numBatches; step++ {
		if w.stopPrefetch.Load() {
			return // compute loop agreed on cancellation
		}
		seeds := plan.Batch(w.dev.ID, step, B)
		var mb *sample.MiniBatch
		if e.cfg.PreSampled != nil {
			mb = e.cfg.PreSampled[w.dev.ID][step]
			seeds = mb.Seeds
		} else {
			mb = e.samplers[w.dev.ID].Sample(seeds)
		}
		var edges int64
		for _, b := range mb.Blocks {
			edges += b.NumEdges()
		}
		sampleSec := e.cfg.Platform.SampleTime(edges)
		w.dev.Charge(device.StageSample, sampleSec)
		out <- prefetched{step: step, seeds: seeds, mb: mb, edges: edges, sampleSec: sampleSec}
	}
}

// nonSampleElapsed sums the device's compute-side stage clocks (all
// stages a worker's compute loop charges).
func nonSampleElapsed(d *device.Device) float64 {
	return d.Elapsed(device.StageBuild) + d.Elapsed(device.StageLoad) +
		d.Elapsed(device.StageTrain) + d.Elapsed(device.StageShuffle)
}

// workerEpochPipelined drives one device with sampling prefetched on a
// side goroutine, tracking the overlapped simulated schedule.
func (e *Engine) workerEpochPipelined(ctx context.Context, w *worker, plan *sample.SeedPlan, numBatches int) {
	depth := e.pipelineDepth()
	cancellable := ctx.Done() != nil
	ch := make(chan prefetched, depth)
	go e.runPrefetcher(w, plan, numBatches, ch)

	record := e.cfg.RecordTimeline
	var snap stageSnapshot
	if record || w.spanDev != nil {
		w.timeline = w.timeline[:0]
		snap = snapshotOf(w.dev)
	}
	sampleDone := make([]float64, numBatches)
	computeStart := make([]float64, numBatches)
	computeDone := make([]float64, numBatches)
	prevCompute := nonSampleElapsed(w.dev)
	lastStep := -1

	for f := range ch {
		if cancellable && e.stopAgreed(ctx, w) {
			// Tell the prefetcher to quit, then drain so its pending send
			// unblocks and the channel closes.
			w.stopPrefetch.Store(true)
			for range ch {
			}
			break
		}
		w.stats.SampledEdges += f.edges
		e.computeStep(w, plan, f.step, f.seeds, f.mb)
		if w.real() && e.cfg.PreSampled == nil {
			// Sampled by our own prefetcher and fully consumed; safe for
			// the same reason as workerEpoch (the gradient sync's causal
			// completion guarantee).
			// Batches dropped by the cancellation drain are simply not
			// recycled.
			f.mb.Recycle()
		}

		cur := nonSampleElapsed(w.dev)
		computeSec := cur - prevCompute
		prevCompute = cur

		t := f.step
		lastStep = t
		var prevSample, slotFree, prevDone float64
		if t > 0 {
			prevSample = sampleDone[t-1]
			prevDone = computeDone[t-1]
		}
		if t-depth >= 0 {
			slotFree = computeStart[t-depth]
		}
		sampleDone[t] = maxf64(prevSample, slotFree) + f.sampleSec
		computeStart[t] = maxf64(prevDone, sampleDone[t])
		computeDone[t] = computeStart[t] + computeSec

		if record || w.spanDev != nil {
			// The prefetcher charges the sample clock ahead of compute,
			// so per-step sampling comes from the batch itself; the
			// compute stages still come from clock deltas.
			curSnap := snapshotOf(w.dev)
			st := stepDelta(t, snap, curSnap)
			st.SampleSec = f.sampleSec
			snap = curSnap
			if record {
				w.timeline = append(w.timeline, st)
			}
			w.emitPipelinedSpans(st, sampleDone[t], computeStart[t])
		}
	}
	if lastStep >= 0 {
		w.pipelinedSec = computeDone[lastStep]
	}
}

// emitPipelinedSpans places one pipelined step on the worker's span
// tracks using the overlapped schedule: the sampling span goes on the
// sampler track ending at sampleDone, the compute stages lay end to
// end on the device track from computeStart. Sampling of step t+1
// therefore visibly overlaps compute of step t in the exported trace.
func (w *worker) emitPipelinedSpans(st StepTrace, sampleDone, computeStart float64) {
	if w.spanDev == nil {
		return
	}
	base := w.eng.spanBase
	w.spanSmp.Emit(device.StageSample, st.Step, base+sampleDone-st.SampleSec, st.SampleSec, 0)
	cur := base + computeStart
	for _, sp := range [4]struct {
		stage string
		dur   float64
	}{
		{device.StageBuild, st.BuildSec},
		{device.StageLoad, st.LoadSec},
		{device.StageTrain, st.TrainSec},
		{device.StageShuffle, st.ShuffSec},
	} {
		w.spanDev.Emit(sp.stage, st.Step, cur, sp.dur, 0)
		cur += sp.dur
	}
}
