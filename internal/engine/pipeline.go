package engine

import (
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/sample"
)

// Pipelined execution (GNNLab/DSP-style overlap): each worker runs a
// prefetch goroutine that samples mini-batch t+1 while batch t
// computes, bounded by a channel of depth Config.PipelineDepth. The
// collectives keep their lockstep contract — only sampling leaves the
// worker goroutine — and each worker's sampler still draws batches in
// sequential order on a single goroutine, so real-mode training is
// bit-identical to the synchronous path.
//
// On top of the real overlap, the simulated clocks are folded into an
// overlapped schedule per worker:
//
//	sampleDone[t]  = max(sampleDone[t-1], computeStart[t-depth]) + sampleSec[t]
//	computeStart[t] = max(computeDone[t-1], sampleDone[t])
//	computeDone[t]  = computeStart[t] + computeSec[t]
//
// where the computeStart[t-depth] term models the bounded prefetch
// queue: slot t frees only when compute picks up batch t-depth. The
// worker's measured epoch is computeDone[last]; EpochStats reports the
// max across workers as MeasuredPipelinedSec, next to the analytic
// PipelinedTime() upper-bound estimate. The schedule never beats
// perfect overlap (sampling and compute are the two pipeline legs) and
// never exceeds the synchronous EpochTime, since each worker's
// overlapped finish is at most its own stage-time sum.

// defaultPipelineDepth bounds prefetch when Config.PipelineDepth is 0.
const defaultPipelineDepth = 2

func (e *Engine) pipelineDepth() int {
	if d := e.cfg.PipelineDepth; d > 0 {
		return d
	}
	return defaultPipelineDepth
}

// prefetched is one sampled mini-batch handed from a worker's prefetch
// goroutine to its compute loop.
type prefetched struct {
	step      int
	seeds     []graph.NodeID
	mb        *sample.MiniBatch
	edges     int64
	sampleSec float64
}

// runPrefetcher samples the worker's whole epoch in step order,
// charging the sample clock as it goes, and feeds the bounded channel.
// It owns the worker's sampler for the duration of the epoch; stats
// counters stay with the compute loop so the two goroutines never
// share mutable state.
func (e *Engine) runPrefetcher(w *worker, plan *sample.SeedPlan, numBatches int, out chan<- prefetched) {
	defer close(out)
	B := e.cfg.BatchSize
	for step := 0; step < numBatches; step++ {
		seeds := plan.Batch(w.dev.ID, step, B)
		var mb *sample.MiniBatch
		if e.cfg.PreSampled != nil {
			mb = e.cfg.PreSampled[w.dev.ID][step]
			seeds = mb.Seeds
		} else {
			mb = e.samplers[w.dev.ID].Sample(seeds)
		}
		var edges int64
		for _, b := range mb.Blocks {
			edges += b.NumEdges()
		}
		sampleSec := e.cfg.Platform.SampleTime(edges)
		w.dev.Charge(device.StageSample, sampleSec)
		out <- prefetched{step: step, seeds: seeds, mb: mb, edges: edges, sampleSec: sampleSec}
	}
}

// nonSampleElapsed sums the device's compute-side stage clocks (all
// stages a worker's compute loop charges).
func nonSampleElapsed(d *device.Device) float64 {
	return d.Elapsed(device.StageBuild) + d.Elapsed(device.StageLoad) +
		d.Elapsed(device.StageTrain) + d.Elapsed(device.StageShuffle)
}

// workerEpochPipelined drives one device with sampling prefetched on a
// side goroutine, tracking the overlapped simulated schedule.
func (e *Engine) workerEpochPipelined(w *worker, plan *sample.SeedPlan, numBatches int) {
	depth := e.pipelineDepth()
	ch := make(chan prefetched, depth)
	go e.runPrefetcher(w, plan, numBatches, ch)

	var snap stageSnapshot
	if e.cfg.RecordTimeline {
		w.timeline = w.timeline[:0]
		snap = snapshotOf(w.dev)
	}
	sampleDone := make([]float64, numBatches)
	computeStart := make([]float64, numBatches)
	computeDone := make([]float64, numBatches)
	prevCompute := nonSampleElapsed(w.dev)

	for f := range ch {
		w.stats.SampledEdges += f.edges
		e.computeStep(w, plan, f.step, f.seeds, f.mb)

		cur := nonSampleElapsed(w.dev)
		computeSec := cur - prevCompute
		prevCompute = cur

		t := f.step
		var prevSample, slotFree, prevDone float64
		if t > 0 {
			prevSample = sampleDone[t-1]
			prevDone = computeDone[t-1]
		}
		if t-depth >= 0 {
			slotFree = computeStart[t-depth]
		}
		sampleDone[t] = maxf64(prevSample, slotFree) + f.sampleSec
		computeStart[t] = maxf64(prevDone, sampleDone[t])
		computeDone[t] = computeStart[t] + computeSec

		if e.cfg.RecordTimeline {
			// The prefetcher charges the sample clock ahead of compute,
			// so per-step sampling comes from the batch itself; the
			// compute stages still come from clock deltas.
			curSnap := snapshotOf(w.dev)
			w.timeline = append(w.timeline, StepTrace{
				Step:      t,
				SampleSec: f.sampleSec,
				BuildSec:  curSnap[1] - snap[1],
				LoadSec:   curSnap[2] - snap[2],
				TrainSec:  curSnap[3] - snap[3],
				ShuffSec:  curSnap[4] - snap[4],
			})
			snap = curSnap
		}
	}
	if numBatches > 0 {
		w.pipelinedSec = computeDone[numBatches-1]
	}
}
