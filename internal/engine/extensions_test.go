package engine

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// TestSemanticEquivalenceSumAggregator repeats the four-strategy
// equivalence check with sum aggregation (GIN-style): partial sums
// need no degree normalization, but every distributed path must agree.
func TestSemanticEquivalenceSumAggregator(t *testing.T) {
	f := newFixture(t, 4, 300)
	newModel := func() *nn.Model {
		return nn.NewGraphSAGEWithAgg(f.dim, 10, f.classes, 2, nn.AggSum)
	}
	plan := sample.SplitEven(f.seeds, 4, graph.NewRNG(5))
	engines := map[strategy.Kind]*Engine{}
	for _, k := range strategy.Core {
		cfg := f.config(k, newModel, plan, []int{5, 5})
		// Sum aggregation grows activations; keep the step small.
		cfg.NewOptimizer = func() nn.Optimizer { return nn.NewSGD(0.01, 0) }
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		e.RunEpoch()
		replicasInSync(t, e)
		engines[k] = e
	}
	for _, k := range []strategy.Kind{strategy.NFP, strategy.SNP, strategy.DNP} {
		if d := paramsDiff(engines[strategy.GDP], engines[k]); d > 1e-3 {
			t.Errorf("GDP vs %v (sum agg): max param diff %g", k, d)
		}
	}
}

// TestSemanticEquivalenceLayerWise checks that the strategies remain
// equivalent under the FastGCN-style layer-wise sampler — APT's
// "sampling is a black box" claim.
func TestSemanticEquivalenceLayerWise(t *testing.T) {
	f := newFixture(t, 3, 300)
	newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 10, f.classes, 2) }
	plan := sample.SplitEven(f.seeds, 3, graph.NewRNG(6))
	engines := map[strategy.Kind]*Engine{}
	for _, k := range strategy.Core {
		cfg := f.config(k, newModel, plan, []int{5, 5})
		cfg.Sampling.Method = sample.LayerWise
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		e.RunEpoch()
		replicasInSync(t, e)
		engines[k] = e
	}
	for _, k := range []strategy.Kind{strategy.NFP, strategy.SNP, strategy.DNP} {
		if d := paramsDiff(engines[strategy.GDP], engines[k]); d > 1e-3 {
			t.Errorf("GDP vs %v (layer-wise): max param diff %g", k, d)
		}
	}
}

// TestVolumeInvariantsProperty checks the structural communication
// invariants on random tasks: GDP never shuffles; DNP ships at most
// one hidden vector per remote destination while NFP pays per
// destination per device.
func TestVolumeInvariantsProperty(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		f := newFixture(t, 4, 200+40*trial)
		newModel := func() *nn.Model { return nn.NewGraphSAGE(f.dim, 8, f.classes, 2) }
		plan := sample.SplitEven(f.seeds, 4, graph.NewRNG(uint64(trial)))
		stats := map[strategy.Kind]EpochStats{}
		for _, k := range strategy.Core {
			cfg := f.config(k, newModel, plan, []int{4, 4})
			cfg.Mode = Accounting
			cfg.Store = f.newStore(40, policyFor(k))
			cfg.Store.Feats = nil
			cfg.Labels = nil
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			stats[k] = e.RunEpoch()
		}
		if stats[strategy.GDP].Totals.HiddenShuffleBytes() != 0 {
			t.Fatal("GDP shuffled hidden embeddings")
		}
		dPrime := int64(8 * 4)
		nd := stats[strategy.DNP]
		// DNP hidden volume = 2 x virtual nodes x d' bytes exactly.
		if got, want := nd.Totals.HiddenShuffleBytes(), 2*nd.Totals.VirtualNodes*dPrime; got != want {
			t.Errorf("trial %d: DNP hidden bytes %d != 2*Nvd*d' = %d", trial, got, want)
		}
		ns := stats[strategy.SNP]
		if got, want := ns.Totals.HiddenShuffleBytes(), 2*ns.Totals.VirtualNodes*dPrime; got != want {
			t.Errorf("trial %d: SNP hidden bytes %d != 2*Nvs*d' = %d", trial, got, want)
		}
		// NFP: every device ships a partial for every remote destination
		// forward and receives every gradient backward: 2*(C-1)*Nd*d'.
		nf := stats[strategy.NFP]
		if got, want := nf.Totals.HiddenShuffleBytes(), 2*3*nf.Totals.Layer1Dst*dPrime; got != want {
			t.Errorf("trial %d: NFP hidden bytes %d != 2(C-1)*Nd*d' = %d", trial, got, want)
		}
		// Paper Table 1 ordering: DNP <= SNP <= NFP.
		if nd.Totals.HiddenShuffleBytes() > ns.Totals.HiddenShuffleBytes() ||
			ns.Totals.HiddenShuffleBytes() > nf.Totals.HiddenShuffleBytes() {
			t.Errorf("trial %d: hidden volume ordering violated", trial)
		}
	}
}
