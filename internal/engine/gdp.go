package engine

import (
	"repro/internal/sample"
	"repro/internal/tensor"
)

// gdpRunner is graph data parallel (paper §3.1): each device processes
// its own seeds end to end. The first layer runs exactly like any
// other layer; the only cross-device traffic is the feature loads that
// miss the cache (charged by the store) and the model-gradient
// allreduce shared by every strategy.
type gdpRunner struct{}

type gdpCtx struct {
	x   *tensor.Matrix
	lct interface{}
}

func (r *gdpRunner) forward(w *worker, mb *sample.MiniBatch) (*tensor.Matrix, any) {
	blk := mb.Layer1()
	x, st := w.eng.cfg.Store.Load(w.dev, blk.Src)
	w.stats.Load.Add(st)
	w.chargeLayerCompute(w.layer0(), int64(blk.NumSrc()), blk.NumEdges(), false)
	if !w.real() {
		return nil, &gdpCtx{}
	}
	out, lct := w.layer0().Forward(blk, x)
	return out, &gdpCtx{x: x, lct: lct}
}

func (r *gdpRunner) backward(w *worker, mb *sample.MiniBatch, ctx any, dH *tensor.Matrix) {
	blk := mb.Layer1()
	w.chargeLayerCompute(w.layer0(), int64(blk.NumSrc()), blk.NumEdges(), true)
	if !w.real() {
		return
	}
	c := ctx.(*gdpCtx)
	w.layer0().Backward(blk, c.lct, dH)
}
