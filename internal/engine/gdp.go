package engine

import (
	"repro/internal/sample"
	"repro/internal/tensor"
)

// gdpRunner is graph data parallel (paper §3.1): each device processes
// its own seeds end to end. The first layer runs exactly like any
// other layer; the only cross-device traffic is the feature loads that
// miss the cache (charged by the store) and the model-gradient
// allreduce shared by every strategy.
type gdpRunner struct{}

type gdpCtx struct {
	lct any
}

func (r *gdpRunner) forward(w *worker, mb *sample.MiniBatch) (*tensor.Matrix, any) {
	blk := mb.Layer1()
	w.stats.Load.Add(w.eng.cfg.Store.Charge(w.dev, blk.Src))
	w.chargeLayerCompute(w.layer0(), int64(blk.NumSrc()), blk.NumEdges(), false)
	if !w.real() {
		return nil, &gdpCtx{}
	}
	out, lct := w.forwardLayer0Gathered(blk, blk.Src)
	return out, &gdpCtx{lct: lct}
}

// backwardIsLocal: GDP's backward is pure local compute (feature
// gradients are discarded, nothing is shipped), so bucket ring
// transfers may stay in flight across it.
func (r *gdpRunner) backwardIsLocal() bool { return true }

func (r *gdpRunner) backward(w *worker, mb *sample.MiniBatch, ctx any, dH *tensor.Matrix) {
	blk := mb.Layer1()
	w.chargeLayerCompute(w.layer0(), int64(blk.NumSrc()), blk.NumEdges(), true)
	if !w.real() {
		return
	}
	c := ctx.(*gdpCtx)
	w.backwardLayer0Params(blk, c.lct, dH)
}
