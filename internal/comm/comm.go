// Package comm implements the communication layer of the unified
// execution engine: the collectives the paper's strategies insert at
// DGL kernel barriers (AllToAll, AllBroadcast/AllGather, AllReduce) as
// message exchanges between device goroutines, with every payload's
// bytes charged to the simulated device clocks using the platform's
// link model and recorded in a volume ledger for the cost models.
//
// Collectives are synchronous: every device of the group must call the
// same sequence of collectives (the engine runs devices in lockstep per
// mini-batch step). The collectives run over a pluggable Transport
// (transport.go): on the default in-process backend payload matrices
// move by reference — the "wire" is a Go channel — while the TCP
// backend in package transport serializes them across real sockets
// between rank processes. Either way timing is charged as if the bytes
// crossed the platform's PCIe/NVLink/network links, so the planner's
// accounting is backend-independent.
package comm

import (
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Payload is one message between devices. In accounting mode Mat and
// Ints are nil and only Bytes counts; in real mode Bytes adds to the
// encoded size of Mat/Ints (e.g. header overheads are ignored).
type Payload struct {
	Mat  *tensor.Matrix
	Ints []int32
	// Data carries an arbitrary structure (e.g. an encoded subgraph);
	// its wire size is NOT derived automatically — senders account for
	// it via Bytes.
	Data  any
	Bytes int64
}

// SizeBytes returns the accounted wire size.
func (p Payload) SizeBytes() int64 {
	s := p.Bytes + 4*int64(len(p.Ints))
	if p.Mat != nil {
		s += p.Mat.Bytes()
	}
	return s
}

// Comm connects the devices of one group. The collectives run over a
// Transport (see transport.go for the contract and the concurrency
// ownership rule): in-process channels by default, or a wire backend
// where each rank is its own OS process.
type Comm struct {
	Group  *device.Group
	Ledger *Ledger
	n      int
	tr     Transport
	// Spans, when non-nil, holds one observability track per device on
	// which every collective emits a span (operator name, bytes moved,
	// charged seconds). Spans[dev] is only touched from dev's own
	// goroutine. SpanBase, when non-nil, offsets span start times (the
	// engine advances it between epochs); it is only written while no
	// device goroutines run.
	Spans    []*obs.Track
	SpanBase *float64
	// Algo selects the AllReduce data plane (ring by default; naive
	// full-mesh kept for benchmarking). Set before goroutines run.
	Algo AllReduceAlgo
	// ring holds per-rank ring-allreduce scratch; ring[dev] is only
	// touched from dev's own goroutines (see ringState).
	ring []*ringState
}

// New creates the communication fabric for a device group over the
// default in-process channel transport.
func New(g *device.Group) *Comm {
	return NewWithTransport(g, NewChanTransport(len(g.Devices)))
}

// NewWithTransport creates the communication fabric over an explicit
// transport whose ranks map to the group's device IDs. The timing
// model is unchanged — bytes are charged to the simulated clocks via
// the platform link model regardless of what physically carries them —
// so the planner's accounting stays comparable across backends; wire
// backends additionally expose their measured speeds for calibration
// (package transport).
func NewWithTransport(g *device.Group, tr Transport) *Comm {
	n := len(g.Devices)
	if tr.World() != n {
		panic(fmt.Sprintf("comm: transport world %d != group size %d", tr.World(), n))
	}
	return &Comm{Group: g, Ledger: NewLedger(), n: n, tr: tr, ring: make([]*ringState, n)}
}

// Transport returns the fabric the collectives run on.
func (c *Comm) Transport() Transport { return c.tr }

// NumDevices returns the group size.
func (c *Comm) NumDevices() int { return c.n }

// chargePairwise charges device dev for a pairwise exchange where
// sendTo[j]/recvFrom[j] bytes move between dev and each peer j. The
// device's link serializes its byte volume per link kind, but the
// per-message latencies of concurrent peer connections pipeline, so
// latency is charged once per link kind used; send and receive overlap
// (full duplex), so the charge is the max of the two directions.
func (c *Comm) chargePairwise(dev int, stage, op string, sendTo, recvFrom []int64) {
	p := c.Group.Platform
	var sendBytes, recvBytes [4]int64 // indexed by hardware.LinkKind
	for j := 0; j < c.n; j++ {
		if j == dev {
			continue
		}
		kind := p.InterconnectKind(dev, j)
		if sendTo[j] > 0 {
			sendBytes[kind] += sendTo[j]
			c.Ledger.Add(op, kind, sendTo[j])
		}
		recvBytes[kind] += recvFrom[j]
	}
	dirTime := func(bytes [4]int64) float64 {
		var t float64
		for kind := hardware.LinkKind(0); int(kind) < len(bytes); kind++ {
			if bytes[kind] == 0 {
				continue
			}
			conc := 1
			if kind == hardware.LinkNetwork {
				conc = p.GPUsPerMachine // machine NIC shared by its GPUs
			}
			t += p.TransferTime(kind, bytes[kind], conc)
		}
		return t
	}
	t := dirTime(sendBytes)
	if rt := dirTime(recvBytes); rt > t {
		t = rt
	}
	var wire int64
	for kind := range sendBytes {
		wire += sendBytes[kind] + recvBytes[kind]
	}
	c.chargeWithSpan(dev, stage, op, t, wire)
}

// chargeWithSpan charges secs to the device's stage clock and, when
// observability is on, records the collective as a span on the
// device's comm track. The span sits on the device's compute-side
// serialized clock — the cumulative build/load/train/shuffle time when
// the collective started. Collectives only charge those stages, and
// they are owned serially by the device's compute goroutine, so the
// axis is strictly monotone and independent of how a concurrent
// prefetcher interleaves sample-clock charges.
func (c *Comm) chargeWithSpan(dev int, stage, op string, secs float64, bytes int64) {
	d := c.Group.Devices[dev]
	if c.Spans == nil {
		d.Charge(stage, secs)
		return
	}
	start := d.Elapsed(device.StageBuild) + d.Elapsed(device.StageLoad) +
		d.Elapsed(device.StageTrain) + d.Elapsed(device.StageShuffle)
	d.Charge(stage, secs)
	if c.SpanBase != nil {
		start += *c.SpanBase
	}
	c.Spans[dev].Emit(op, -1, start, secs, bytes)
}

// AnyTrue exchanges one boolean among all devices and returns their
// disjunction — the collective the engine uses to agree on context
// cancellation at step boundaries. Every device must call it at the
// same point; no simulated time is charged.
func (c *Comm) AnyTrue(dev int, v bool) bool {
	var b int64
	if v {
		b = 1
	}
	any := false
	for _, p := range c.AllGatherNoCharge(dev, Payload{Bytes: b}) {
		if p.Bytes != 0 {
			any = true
		}
	}
	return any
}

// AllToAll exchanges outs[j] (destined to device j) among all devices
// and returns the payloads received by dev (indexed by sender). The
// paper's strategies use it to ship subgraphs (SNP/DNP Shuffle) and
// hidden embeddings (Reshuffle).
func (c *Comm) AllToAll(dev int, stage string, outs []Payload) []Payload {
	sendTo := make([]int64, c.n)
	recvFrom := make([]int64, c.n)
	for j := 0; j < c.n; j++ {
		if j == dev {
			continue
		}
		c.tr.Send(dev, j, outs[j])
		sendTo[j] = outs[j].SizeBytes()
	}
	in := make([]Payload, c.n)
	in[dev] = outs[dev] // local slot short-circuits
	for j := 0; j < c.n; j++ {
		if j == dev {
			continue
		}
		in[j] = c.tr.Recv(dev, j)
		recvFrom[j] = in[j].SizeBytes()
	}
	c.chargePairwise(dev, stage, "alltoall", sendTo, recvFrom)
	return in
}

// AllGather broadcasts each device's payload to every other device
// (the paper's AllBroadcast used by NFP to share layer-1 computation
// graphs). Returns all payloads indexed by source device. The single
// payload is broadcast directly — no per-peer copies are materialized —
// but the charge math and the ledger's "alltoall" op are byte-identical
// to the AllToAll formulation this replaced.
func (c *Comm) AllGather(dev int, stage string, p Payload) []Payload {
	c.broadcast(dev, p)
	sendTo := make([]int64, c.n)
	recvFrom := make([]int64, c.n)
	sz := p.SizeBytes()
	in := make([]Payload, c.n)
	in[dev] = p
	for j := 0; j < c.n; j++ {
		if j == dev {
			continue
		}
		sendTo[j] = sz
		in[j] = c.tr.Recv(dev, j)
		recvFrom[j] = in[j].SizeBytes()
	}
	c.chargePairwise(dev, stage, "alltoall", sendTo, recvFrom)
	return in
}

// broadcast ships one payload to every other rank, using the
// transport's single-serialization fast path when it has one.
func (c *Comm) broadcast(dev int, p Payload) {
	if b, ok := c.tr.(Broadcaster); ok {
		b.Broadcast(dev, p)
		return
	}
	for j := 0; j < c.n; j++ {
		if j != dev {
			c.tr.Send(dev, j, p)
		}
	}
}

// AllReduce sums mat element-wise across all devices and returns the
// sum (identical, including float ordering, on every device). In
// accounting mode mat may be nil; bytes is then the tensor wire size.
// Timing follows the ring-allreduce model: 2·(C-1)/C · V over the
// slowest link on the ring — and since PR 9 the data plane actually
// moves those bytes (chunked reduce-scatter + allgather) instead of a
// full-mesh gather-then-sum.
func (c *Comm) AllReduce(dev int, stage string, mat *tensor.Matrix, bytes int64) *tensor.Matrix {
	return c.AllReduceCodec(dev, stage, mat, bytes, nil)
}

// AllReduceCodec is AllReduce with an optional chunk codec compressing
// the wire (nil = exact fp32). The returned matrix is locally owned
// (safe to Put without a barrier); mat is never shipped by reference
// and stays untouched. At world 1 the reduction degenerates to 0+mat,
// matching the pre-ring bits exactly (including -0 normalization).
func (c *Comm) AllReduceCodec(dev int, stage string, mat *tensor.Matrix, bytes int64, codec ChunkCodec) *tensor.Matrix {
	elems := int(bytes / 4)
	if mat != nil {
		bytes = mat.Bytes()
		elems = len(mat.Data)
	}
	var result *tensor.Matrix
	if mat != nil {
		switch {
		case c.n == 1:
			result = tensor.Get(mat.Rows, mat.Cols)
			result.AddInPlace(mat)
		case c.Algo == AlgoNaive:
			result = c.allReduceNaive(dev, mat)
		default:
			rs := c.ringFor(dev, elems)
			acc := rs.acc[rs.cur][:elems]
			rs.cur = 1 - rs.cur
			copy(acc, mat.Data)
			bounds := chunkBounds(elems, c.n)
			if codec == nil {
				c.ringReduceF32(dev, rs, acc, bounds)
			} else {
				c.ringReduceCodec(dev, rs, acc, bounds, codec)
			}
			result = tensor.Get(mat.Rows, mat.Cols)
			copy(result.Data, acc)
		}
	}
	t, wire, kind := c.allReduceModel(elems, bytes, codec)
	c.chargeWithSpan(dev, stage, "allreduce", t, wire)
	c.Ledger.Add("allreduce", kind, wire)
	return result
}

// AllToAllNoCharge performs the data movement of AllToAll without
// charging simulated time; used by wire measurement (package
// transport), where the cost of interest is wall-clock, and by tests.
func (c *Comm) AllToAllNoCharge(dev int, outs []Payload) []Payload {
	for j := 0; j < c.n; j++ {
		if j == dev {
			continue
		}
		c.tr.Send(dev, j, outs[j])
	}
	in := make([]Payload, c.n)
	in[dev] = outs[dev]
	for j := 0; j < c.n; j++ {
		if j == dev {
			continue
		}
		in[j] = c.tr.Recv(dev, j)
	}
	return in
}

// AllGatherNoCharge performs the data movement of AllGather without
// charging simulated time; used internally by AllReduce (whose timing
// follows the ring model, not the naive gather) and by tests.
func (c *Comm) AllGatherNoCharge(dev int, p Payload) []Payload {
	c.broadcast(dev, p)
	in := make([]Payload, c.n)
	in[dev] = p
	for j := 0; j < c.n; j++ {
		if j == dev {
			continue
		}
		in[j] = c.tr.Recv(dev, j)
	}
	return in
}

// Barrier blocks until every device has reached it.
func (c *Comm) Barrier(dev int) {
	c.AllGatherNoCharge(dev, Payload{})
}

// RunParallel launches fn once per device on its own goroutine and
// waits for all to finish — the engine's worker harness (the simulated
// analogue of the paper launching one DDP process per GPU).
func RunParallel(n int, fn func(dev int)) {
	var wg sync.WaitGroup
	for d := 0; d < n; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			fn(d)
		}(d)
	}
	wg.Wait()
}
