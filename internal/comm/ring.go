package comm

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/tensor"
)

// ChunkCodec compresses one float32 chunk of a ring allreduce for the
// wire. Implementations live in package transport (fp16, int8) so the
// primitive encoders sit next to the rest of the wire format; comm only
// needs the contract. A codec must be deterministic: EncodedLen is
// exact (not an upper bound) so the timing model and the data plane
// agree on wire bytes, and EncodeChunk/DecodeChunk must produce the
// same bytes/values on every rank for the same input.
type ChunkCodec interface {
	// ChunkID identifies the codec on the wire (CompressedChunk.Codec).
	ChunkID() uint8
	// Name is the human-readable codec name ("fp16", "int8").
	Name() string
	// EncodedLen returns the exact encoded size of n float32 values.
	EncodedLen(n int) int
	// EncodeChunk writes src into dst; len(dst) == EncodedLen(len(src)).
	EncodeChunk(dst []byte, src []float32)
	// DecodeChunk recovers len(dst) values from src.
	DecodeChunk(dst []float32, src []byte) error
}

// CompressedChunk is a codec-encoded float32 vector riding a Payload's
// Data slot between ring neighbours. Package transport registers its
// wire codec (data id 5) so it crosses the TCP backend; on the channel
// backend it moves by reference like any payload.
type CompressedChunk struct {
	// Codec is the ChunkCodec.ChunkID that produced B.
	Codec uint8
	// N is the element count B decodes to.
	N int
	// B holds the encoded bytes.
	B []byte
}

// AllReduceAlgo selects the AllReduce data-plane algorithm.
type AllReduceAlgo int

const (
	// AlgoRing is the default: chunked reduce-scatter + allgather moving
	// 2·(C-1)/C·V per rank — the bytes the timing model charges.
	AlgoRing AllReduceAlgo = iota
	// AlgoNaive is the pre-ring full-mesh allgather-then-sum (~C×V per
	// rank over a wire backend). Kept only so benchmarks can measure the
	// ring's win; it ignores any chunk codec. Timing charges are
	// identical to AlgoRing — the model always assumes the ring.
	AlgoNaive
)

// ringState is per-rank ring scratch, touched only by goroutines of its
// own rank and never concurrently (the engine serializes its gradient
// sync goroutine against the worker's own collectives).
//
// acc is double-buffered: chunks of the working buffer are sent by
// reference on the channel backend, and a neighbour may still be
// reading this rank's final forwarded chunk when RingAllReduceData
// returns. Alternating buffers call-to-call makes reuse safe: before
// buffer A is written again (two calls later), this rank has completed
// a full intervening ring — whose receive chain reaches back through
// every peer's sends and therefore happens-after the successor finished
// reading A.
type ringState struct {
	acc    [2][]float32
	cur    int
	dec    []float32       // decode scratch for compressed chunks
	hdrs   []tensor.Matrix // rotating send headers (uncompressed chunks)
	hdrIdx int
}

// ringFor returns (lazily creating) dev's ring scratch with both
// accumulation buffers grown to at least elems. Lazy creation is safe:
// c.ring[dev] is only touched from dev's own goroutines.
func (c *Comm) ringFor(dev, elems int) *ringState {
	rs := c.ring[dev]
	if rs == nil {
		// n+1 headers: a sent header may be read by the successor until it
		// has processed the payload, which the ring's hop-by-hop
		// happens-before chain only guarantees n sends later.
		rs = &ringState{hdrs: make([]tensor.Matrix, c.n+1)}
		c.ring[dev] = rs
	}
	for i := range rs.acc {
		if len(rs.acc[i]) < elems {
			rs.acc[i] = make([]float32, elems)
		}
	}
	return rs
}

// chunkBounds splits elems into n ring chunks: bounds[i] is chunk i's
// start offset, bounds[n] == elems. The first elems%n chunks get one
// extra element. Every rank computes identical bounds, which fixes the
// summation grouping (and therefore the result bits) globally.
func chunkBounds(elems, n int) []int {
	bounds := make([]int, n+1)
	base, rem := elems/n, elems%n
	off := 0
	for i := 0; i < n; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[n] = off
	return bounds
}

// allReduceModel is the single source of truth for what one allreduce
// of elems float32 values costs: simulated seconds, modeled wire bytes
// per rank (ring: 2·(C-1)/C of the encoded volume), and the link kind
// charged. rawBytes is the uncompressed wire size (callers pass the
// exact byte count so accounting-mode charges with odd sizes stay
// bit-identical to the pre-ring formula); a codec replaces it with the
// summed encoded chunk sizes.
func (c *Comm) allReduceModel(elems int, rawBytes int64, codec ChunkCodec) (secs float64, wire int64, kind hardware.LinkKind) {
	p := c.Group.Platform
	ringBW := p.Bandwidth[hardware.LinkPCIe]
	if p.HasNVLink {
		ringBW = p.Bandwidth[hardware.LinkNVLink]
	}
	kind = hardware.LinkPCIe
	if p.Machines > 1 {
		if nb := p.Bandwidth[hardware.LinkNetwork]; nb < ringBW {
			ringBW = nb
			kind = hardware.LinkNetwork
		}
	}
	enc := float64(rawBytes)
	if codec != nil {
		bounds := chunkBounds(elems, c.n)
		var total int
		for i := 0; i < c.n; i++ {
			total += codec.EncodedLen(bounds[i+1] - bounds[i])
		}
		enc = float64(total)
	}
	wire = int64(2 * enc * float64(c.n-1) / float64(c.n))
	secs = p.Latency[kind]*float64(2*(c.n-1)) + float64(wire)/ringBW
	return secs, wire, kind
}

// AllReduceModel returns the simulated seconds, modeled wire bytes and
// link kind the ring model charges for one allreduce of elems float32
// values under codec (nil = fp32). The engine's bucketed gradient sync
// uses it to charge overlapped bucket allreduces itself — the data
// plane (RingAllReduceData) never touches the clocks.
func (c *Comm) AllReduceModel(elems int, codec ChunkCodec) (secs float64, wire int64, kind hardware.LinkKind) {
	return c.allReduceModel(elems, int64(elems)*4, codec)
}

// RingAllReduceData sums data element-wise across all ranks in place —
// the pure data plane, with no simulated time charged (callers account
// via AllReduceModel). The result is identical, bit for bit, on every
// rank: chunk boundaries and the ring summation order are fixed by rank
// position, every rank reduces each chunk in the same grouping, and
// under a codec every rank decodes the chunk owner's single final
// encoding. Ranks must call it in lockstep like any collective.
func (c *Comm) RingAllReduceData(dev int, data []float32, codec ChunkCodec) {
	if c.n == 1 {
		return
	}
	rs := c.ringFor(dev, len(data))
	acc := rs.acc[rs.cur][:len(data)]
	rs.cur = 1 - rs.cur
	copy(acc, data)
	bounds := chunkBounds(len(data), c.n)
	if codec == nil {
		c.ringReduceF32(dev, rs, acc, bounds)
	} else {
		c.ringReduceCodec(dev, rs, acc, bounds, codec)
	}
	copy(data, acc)
}

// ringReduceF32 runs the uncompressed ring on acc. Chunks are sent as
// zero-copy views into acc: the channel backend delivers them by
// reference, and the ring's lockstep hop order guarantees a receiver
// has consumed a chunk before this rank mutates it again (see
// ringState's reuse argument for the cross-call case).
func (c *Comm) ringReduceF32(dev int, rs *ringState, acc []float32, bounds []int) {
	n := c.n
	succ, pred := (dev+1)%n, (dev+n-1)%n
	// Reduce-scatter: after step s every rank has added its predecessor
	// chain's partial for chunk (dev-s-1); chunk (dev+1) ends fully
	// reduced here in the order x_{dev+1} + (x_dev + (... + x_{dev+2})).
	for s := 0; s < n-1; s++ {
		sc := ((dev-s)%n + n) % n
		rc := ((dev-s-1)%n + n) % n
		c.ringSendF32(rs, dev, succ, acc[bounds[sc]:bounds[sc+1]])
		in := c.tr.Recv(dev, pred)
		addInto(acc[bounds[rc]:bounds[rc+1]], in.Mat.Data)
	}
	// Allgather: circulate each owner's reduced chunk around the ring.
	for s := 0; s < n-1; s++ {
		sc := ((dev+1-s)%n + n) % n
		rc := ((dev-s)%n + n) % n
		c.ringSendF32(rs, dev, succ, acc[bounds[sc]:bounds[sc+1]])
		in := c.tr.Recv(dev, pred)
		copy(acc[bounds[rc]:bounds[rc+1]], in.Mat.Data)
	}
}

// ringReduceCodec runs the compressed ring: each hop decodes the
// received chunk, accumulates in fp32, and re-encodes for the next hop
// (partial sums are requantized per hop; see DESIGN decision 18 for
// the error story). The chunk owner encodes the final value once and
// immediately decodes it back into acc, so the bytes circulating in the
// allgather and the owner's own copy agree exactly — every rank ends
// with values decoded from the same encoding. Encode buffers are
// allocated per send: the channel backend forwards them by reference
// around the whole ring, so they are never reused.
func (c *Comm) ringReduceCodec(dev int, rs *ringState, acc []float32, bounds []int, codec ChunkCodec) {
	n := c.n
	succ, pred := (dev+1)%n, (dev+n-1)%n
	for s := 0; s < n-1; s++ {
		sc := ((dev-s)%n + n) % n
		lo, hi := bounds[sc], bounds[sc+1]
		enc := make([]byte, codec.EncodedLen(hi-lo))
		codec.EncodeChunk(enc, acc[lo:hi])
		c.tr.Send(dev, succ, Payload{
			Data:  &CompressedChunk{Codec: codec.ChunkID(), N: hi - lo, B: enc},
			Bytes: int64(len(enc)),
		})
		in := chunkOf(c.tr.Recv(dev, pred))
		rc := ((dev-s-1)%n + n) % n
		rlo, rhi := bounds[rc], bounds[rc+1]
		if len(rs.dec) < rhi-rlo {
			rs.dec = make([]float32, rhi-rlo)
		}
		if err := codec.DecodeChunk(rs.dec[:rhi-rlo], in.B); err != nil {
			panic(fmt.Sprintf("comm: ring chunk decode (codec %s): %v", codec.Name(), err))
		}
		addInto(acc[rlo:rhi], rs.dec[:rhi-rlo])
	}
	oc := (dev + 1) % n
	lo, hi := bounds[oc], bounds[oc+1]
	final := make([]byte, codec.EncodedLen(hi-lo))
	codec.EncodeChunk(final, acc[lo:hi])
	if err := codec.DecodeChunk(acc[lo:hi], final); err != nil {
		panic(fmt.Sprintf("comm: ring chunk decode (codec %s): %v", codec.Name(), err))
	}
	cur := &CompressedChunk{Codec: codec.ChunkID(), N: hi - lo, B: final}
	for s := 0; s < n-1; s++ {
		c.tr.Send(dev, succ, Payload{Data: cur, Bytes: int64(len(cur.B))})
		cur = chunkOf(c.tr.Recv(dev, pred))
		rc := ((dev-s)%n + n) % n
		rlo, rhi := bounds[rc], bounds[rc+1]
		if err := codec.DecodeChunk(acc[rlo:rhi], cur.B); err != nil {
			panic(fmt.Sprintf("comm: ring chunk decode (codec %s): %v", codec.Name(), err))
		}
	}
}

// ringSendF32 ships a float32 chunk to the successor as a matrix view.
// Headers rotate through a fixed pool sized n+1 (see ringFor).
func (c *Comm) ringSendF32(rs *ringState, src, dst int, chunk []float32) {
	h := &rs.hdrs[rs.hdrIdx%len(rs.hdrs)]
	rs.hdrIdx++
	h.Rows, h.Cols, h.Data = 1, len(chunk), chunk
	c.tr.Send(src, dst, Payload{Mat: h})
}

// chunkOf extracts the compressed chunk a ring neighbour sent.
func chunkOf(p Payload) *CompressedChunk {
	ch, ok := p.Data.(*CompressedChunk)
	if !ok {
		panic(fmt.Sprintf("comm: ring expected CompressedChunk payload, got %T", p.Data))
	}
	return ch
}

func addInto(dst, src []float32) {
	if len(src) == 0 {
		return // empty ring chunk (fewer elements than ranks)
	}
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] += v
	}
}

// allReduceNaive is the pre-ring data plane (AlgoNaive): full-mesh
// gather of the whole matrix plus a local sum, kept for the
// ring-vs-naive benchmark series.
func (c *Comm) allReduceNaive(dev int, mat *tensor.Matrix) *tensor.Matrix {
	parts := c.AllGatherNoCharge(dev, Payload{Mat: mat})
	result := tensor.Get(mat.Rows, mat.Cols)
	for j := 0; j < c.n; j++ {
		result.AddInPlace(parts[j].Mat)
	}
	return result
}
