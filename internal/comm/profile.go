package comm

import (
	"repro/internal/device"
	"repro/internal/hardware"
)

// Profile holds the measured effective speeds of the communication
// operators on a platform — the output of the paper's Prepare-step
// bandwidth trials, consumed by the cost models. All values are
// per-device effective bytes/second: the time for one device to push V
// bytes through the operator is V / speed.
type Profile struct {
	// AllToAllBps is the effective speed of the sparse all-to-all used
	// by SNP/DNP shuffles (uniform traffic pattern over the topology).
	AllToAllBps float64
	// AllGatherBps is the effective wire speed of the broadcast used by
	// NFP's AllBroadcast: the time for one device to broadcast V bytes
	// to C-1 peers is (C-1)·V / AllGatherBps, i.e. the divisor applies
	// to bytes-on-the-wire, matching the engine's volume counters.
	AllGatherBps float64
	// AllReduceBps is the effective speed of ring allreduce for a
	// V-byte tensor.
	AllReduceBps float64
	// UVAReadBps is GPU reads from local CPU memory over PCIe.
	UVAReadBps float64
	// RemoteReadBps is GPU reads from a remote machine's CPU memory.
	RemoteReadBps float64
	// PeerReadBps is GPU reads from a peer GPU cache (NVLink), zero if
	// the platform has no fast peer links.
	PeerReadBps float64
	// GPUReadBps is local cache-hit bandwidth.
	GPUReadBps float64
	// AllToAllCallSec / AllGatherCallSec are the fixed per-call
	// latencies of the collectives, measured with near-empty payloads.
	// At the reproduction's scaled-down payload sizes they are a
	// non-negligible share of shuffle time, so the cost models charge
	// them per collective call.
	AllToAllCallSec  float64
	AllGatherCallSec float64
	// ReadCallSec is the per-step feature-read issue latency (one
	// batched gather per device per step).
	ReadCallSec float64
}

// trialBytes is the per-device payload used by the bandwidth trials;
// large enough that per-message latency is amortized realistically.
const trialBytes = 16 << 20

// MeasureProfile runs one bandwidth trial per operator through the
// communication fabric (accounting mode: no real floats move) and
// derives effective speeds from the simulated clocks.
func MeasureProfile(p *hardware.Platform) *Profile {
	prof := &Profile{
		UVAReadBps:  p.Bandwidth[hardware.LinkPCIe],
		GPUReadBps:  p.Bandwidth[hardware.LinkGPUMem],
		ReadCallSec: p.Latency[hardware.LinkPCIe] + p.Latency[hardware.LinkGPUMem],
	}
	// Remote reads traverse the machine NIC shared by its GPUs.
	prof.RemoteReadBps = p.Bandwidth[hardware.LinkNetwork] / float64(p.GPUsPerMachine)
	if p.HasNVLink {
		prof.PeerReadBps = p.Bandwidth[hardware.LinkNVLink]
	}

	n := p.NumDevices()
	if n == 1 {
		// Degenerate single-device group: collectives are free.
		prof.AllToAllBps = p.Bandwidth[hardware.LinkGPUMem]
		prof.AllGatherBps = p.Bandwidth[hardware.LinkGPUMem]
		prof.AllReduceBps = p.Bandwidth[hardware.LinkGPUMem]
		return prof
	}

	// AllToAll trial: uniform traffic, trialBytes per device total.
	g := device.NewGroup(p)
	c := New(g)
	per := int64(trialBytes / (n - 1))
	RunParallel(n, func(dev int) {
		outs := make([]Payload, n)
		for j := range outs {
			if j != dev {
				outs[j] = Payload{Bytes: per}
			}
		}
		c.AllToAll(dev, "trial", outs)
	})
	prof.AllToAllBps = float64(per*int64(n-1)) / maxStage(g, "trial")

	// AllGather trial: each device broadcasts trialBytes, putting
	// (n-1)*trialBytes on the wire per device.
	g2 := device.NewGroup(p)
	c2 := New(g2)
	RunParallel(n, func(dev int) {
		c2.AllGather(dev, "trial", Payload{Bytes: trialBytes})
	})
	prof.AllGatherBps = float64(int64(n-1)*trialBytes) / maxStage(g2, "trial")

	// AllReduce trial on a trialBytes tensor.
	g3 := device.NewGroup(p)
	c3 := New(g3)
	RunParallel(n, func(dev int) {
		c3.AllReduce(dev, "trial", nil, trialBytes)
	})
	prof.AllReduceBps = float64(trialBytes) / maxStage(g3, "trial")

	// Near-empty-payload trials isolate the per-call latencies.
	g4 := device.NewGroup(p)
	c4 := New(g4)
	RunParallel(n, func(dev int) {
		outs := make([]Payload, n)
		for j := range outs {
			if j != dev {
				outs[j] = Payload{Bytes: 1}
			}
		}
		c4.AllToAll(dev, "lat-a2a", outs)
		c4.AllGather(dev, "lat-bcast", Payload{Bytes: 1})
	})
	prof.AllToAllCallSec = maxStage(g4, "lat-a2a")
	prof.AllGatherCallSec = maxStage(g4, "lat-bcast")
	return prof
}

func maxStage(g *device.Group, stage string) float64 {
	var mx float64
	for _, d := range g.Devices {
		if e := d.Elapsed(stage); e > mx {
			mx = e
		}
	}
	return mx
}
