package comm

import (
	"sort"
	"sync"

	"repro/internal/hardware"
)

// Ledger accumulates communication volumes by operator and link kind.
// The planner reads it after a dry-run epoch to feed the cost models
// ("we collect the communication volume of different operations ...
// without actually conducting the communication").
type Ledger struct {
	mu    sync.Mutex
	bytes map[ledgerKey]int64
}

type ledgerKey struct {
	Op   string
	Kind hardware.LinkKind
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{bytes: map[ledgerKey]int64{}}
}

// Add records n bytes moved by op over link kind. Called once per
// simulated collective on the training loop.
//
//apt:hotpath
func (l *Ledger) Add(op string, kind hardware.LinkKind, n int64) {
	l.mu.Lock()
	l.bytes[ledgerKey{op, kind}] += n
	l.mu.Unlock()
}

// Total returns the bytes recorded for (op, kind).
func (l *Ledger) Total(op string, kind hardware.LinkKind) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes[ledgerKey{op, kind}]
}

// TotalOp sums an operator's bytes across link kinds.
func (l *Ledger) TotalOp(op string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t int64
	for k, v := range l.bytes {
		if k.Op == op {
			t += v
		}
	}
	return t
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.mu.Lock()
	l.bytes = map[ledgerKey]int64{}
	l.mu.Unlock()
}

// Entry is one ledger row.
type Entry struct {
	Op    string
	Kind  hardware.LinkKind
	Bytes int64
}

// Snapshot returns all rows sorted by (op, kind) for deterministic
// reporting.
func (l *Ledger) Snapshot() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.bytes))
	for k, v := range l.bytes {
		//apt:allow detrange rows are re-sorted below by (op, kind) — the complete map key — so collection order cannot leak out
		out = append(out, Entry{Op: k.Op, Kind: k.Kind, Bytes: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Op != out[j].Op {
			return out[i].Op < out[j].Op
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
