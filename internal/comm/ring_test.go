package comm

import (
	"math"
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/tensor"
)

// ringWorld runs fn on every rank of an in-process world and returns
// each rank's result.
func ringWorld(t *testing.T, n int, fn func(c *Comm, dev int) []float32) [][]float32 {
	t.Helper()
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, n)
	c, _ := newTestComm(p)
	out := make([][]float32, n)
	var mu sync.Mutex
	RunParallel(n, func(dev int) {
		r := fn(c, dev)
		mu.Lock()
		out[dev] = r
		mu.Unlock()
	})
	return out
}

func TestChunkBounds(t *testing.T) {
	cases := []struct {
		elems, n int
		want     []int
	}{
		{8, 4, []int{0, 2, 4, 6, 8}},
		{10, 4, []int{0, 3, 6, 8, 10}},
		{3, 4, []int{0, 1, 2, 3, 3}}, // fewer elements than ranks: empty tail chunk
		{1, 2, []int{0, 1, 1}},
		{7, 1, []int{0, 7}},
	}
	for _, tc := range cases {
		got := chunkBounds(tc.elems, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("chunkBounds(%d,%d) = %v, want %v", tc.elems, tc.n, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("chunkBounds(%d,%d) = %v, want %v", tc.elems, tc.n, got, tc.want)
			}
		}
	}
}

// TestRingAllReduceDataExact runs the in-place ring on dyadic values
// whose float32 sums are exact in any order, so the result is checked
// against the true sum at several worlds and odd vector lengths.
func TestRingAllReduceDataExact(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, elems := range []int{1, 5, 8, 31} {
			results := ringWorld(t, n, func(c *Comm, dev int) []float32 {
				data := make([]float32, elems)
				for i := range data {
					data[i] = float32(dev+1) + float32(i)*0.25
				}
				c.RingAllReduceData(dev, data, nil)
				return data
			})
			for i := 0; i < elems; i++ {
				want := float32(n*(n+1))/2 + float32(n)*float32(i)*0.25
				for dev := 0; dev < n; dev++ {
					if results[dev][i] != want {
						t.Fatalf("world %d elems %d: dev %d[%d] = %v, want %v",
							n, elems, dev, i, results[dev][i], want)
					}
				}
			}
		}
	}
}

// TestRingMatchesNaive compares ring and naive allreduce on random-ish
// data: values agree within float tolerance (the summation orders
// differ), and within each algorithm every rank holds bit-identical
// results.
func TestRingMatchesNaive(t *testing.T) {
	const n, elems = 4, 103
	input := func(dev, i int) float32 {
		return float32(math.Sin(float64(dev*1000 + i))) // deterministic, non-dyadic
	}
	run := func(algo AllReduceAlgo) [][]float32 {
		p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, n)
		c, _ := newTestComm(p)
		c.Algo = algo
		out := make([][]float32, n)
		var mu sync.Mutex
		RunParallel(n, func(dev int) {
			m := tensor.New(1, elems)
			for i := range m.Data {
				m.Data[i] = input(dev, i)
			}
			r := c.AllReduce(dev, device.StageTrain, m, 0)
			mu.Lock()
			out[dev] = append([]float32{}, r.Data...)
			mu.Unlock()
		})
		return out
	}
	ring, naive := run(AlgoRing), run(AlgoNaive)
	for dev := 1; dev < n; dev++ {
		for i := 0; i < elems; i++ {
			if math.Float32bits(ring[dev][i]) != math.Float32bits(ring[0][i]) {
				t.Fatalf("ring results differ across ranks at [%d][%d]", dev, i)
			}
			if math.Float32bits(naive[dev][i]) != math.Float32bits(naive[0][i]) {
				t.Fatalf("naive results differ across ranks at [%d][%d]", dev, i)
			}
		}
	}
	for i := 0; i < elems; i++ {
		if d := math.Abs(float64(ring[0][i] - naive[0][i])); d > 1e-5 {
			t.Fatalf("ring vs naive at [%d]: %v vs %v", i, ring[0][i], naive[0][i])
		}
	}
}

// truncCodec is a test-local lossy codec (keeps the top 2 mantissa
// bytes of each float) exercising the compressed ring path without
// importing package transport.
type truncCodec struct{}

func (truncCodec) ChunkID() uint8       { return 200 }
func (truncCodec) Name() string         { return "trunc" }
func (truncCodec) EncodedLen(n int) int { return 2 * n }
func (truncCodec) EncodeChunk(dst []byte, src []float32) {
	for i, v := range src {
		b := math.Float32bits(v)
		dst[2*i] = byte(b >> 24)
		dst[2*i+1] = byte(b >> 16)
	}
}
func (truncCodec) DecodeChunk(dst []float32, src []byte) error {
	for i := range dst {
		dst[i] = math.Float32frombits(uint32(src[2*i])<<24 | uint32(src[2*i+1])<<16)
	}
	return nil
}

// TestRingCompressedDeterministic checks the compressed ring's core
// guarantee: every rank decodes the chunk owner's single final
// encoding, so all ranks end bit-identical even under a lossy codec,
// and the values stay within the codec's error of the exact sum.
func TestRingCompressedDeterministic(t *testing.T) {
	for _, n := range []int{2, 4} {
		const elems = 37
		results := ringWorld(t, n, func(c *Comm, dev int) []float32 {
			data := make([]float32, elems)
			for i := range data {
				data[i] = float32(math.Sin(float64(dev*31 + i)))
			}
			c.RingAllReduceData(dev, data, truncCodec{})
			return data
		})
		for dev := 1; dev < n; dev++ {
			for i := 0; i < elems; i++ {
				if math.Float32bits(results[dev][i]) != math.Float32bits(results[0][i]) {
					t.Fatalf("world %d: compressed ring differs across ranks at [%d][%d]: %x vs %x",
						n, dev, i, math.Float32bits(results[dev][i]), math.Float32bits(results[0][i]))
				}
			}
		}
		for i := 0; i < elems; i++ {
			var exact float64
			for dev := 0; dev < n; dev++ {
				exact += math.Sin(float64(dev*31 + i))
			}
			// truncCodec keeps ~7 mantissa bits => relative error ~2^-8
			// per hop, n hops worst case.
			if d := math.Abs(float64(results[0][i]) - exact); d > 0.02*float64(n) {
				t.Fatalf("world %d: compressed sum at [%d] = %v, exact %v", n, i, results[0][i], exact)
			}
		}
	}
}

// TestRingWorld1NoOp pins the degenerate single-rank behavior of both
// ring entry points.
func TestRingWorld1NoOp(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 1)
	c, _ := newTestComm(p)
	data := []float32{1, -2, 3.5}
	c.RingAllReduceData(0, data, nil)
	if data[0] != 1 || data[1] != -2 || data[2] != 3.5 {
		t.Fatalf("world-1 ring mutated data: %v", data)
	}
	m := tensor.FromData(1, 3, []float32{1, -2, 3.5})
	r := c.AllReduce(0, device.StageTrain, m, 0)
	for i := range m.Data {
		if math.Float32bits(r.Data[i]) != math.Float32bits(m.Data[i]) {
			t.Fatalf("world-1 allreduce[%d] = %v, want %v", i, r.Data[i], m.Data[i])
		}
	}
}

// TestAllReduceChargeModel pins the ring timing/volume model: wire
// bytes per rank are 2·(n-1)/n of the (encoded) volume, and a codec
// shrinks the charge by its encoding ratio.
func TestAllReduceChargeModel(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4)
	c, _ := newTestComm(p)
	const elems = 1000
	_, wire, _ := c.AllReduceModel(elems, nil)
	if want := int64(2 * elems * 4 * 3 / 4); wire != want {
		t.Errorf("fp32 ring wire = %d, want %d", wire, want)
	}
	secFP32, _, _ := c.AllReduceModel(elems, nil)
	secTrunc, wireTrunc, _ := c.AllReduceModel(elems, truncCodec{})
	if want := int64(2 * elems * 2 * 3 / 4); wireTrunc != want {
		t.Errorf("trunc ring wire = %d, want %d", wireTrunc, want)
	}
	if secTrunc >= secFP32 {
		t.Errorf("compressed allreduce modeled slower: %v >= %v", secTrunc, secFP32)
	}
	// The charged time and ledger volume follow the same model.
	RunParallel(4, func(dev int) {
		c.AllReduce(dev, device.StageTrain, tensor.New(1, elems), 0)
	})
	if got := c.Ledger.TotalOp("allreduce"); got != 4*wire {
		t.Errorf("ledger allreduce = %d, want %d", got, 4*wire)
	}
}

// TestNaiveIgnoresCodec pins that AlgoNaive is the uncompressed
// benchmark baseline even when a codec is requested.
func TestNaiveIgnoresCodec(t *testing.T) {
	const n = 2
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, n)
	c, _ := newTestComm(p)
	c.Algo = AlgoNaive
	results := make([][]float32, n)
	var mu sync.Mutex
	RunParallel(n, func(dev int) {
		m := tensor.FromData(1, 2, []float32{float32(dev + 1), 0.25})
		r := c.AllReduceCodec(dev, device.StageTrain, m, 0, truncCodec{})
		mu.Lock()
		results[dev] = append([]float32{}, r.Data...)
		mu.Unlock()
	})
	if results[0][0] != 3 || results[0][1] != 0.5 {
		t.Fatalf("naive allreduce = %v, want [3 0.5] (exact)", results[0])
	}
}
