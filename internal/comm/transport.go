package comm

// Transport is the point-to-point substrate the collectives run on: a
// lockstep message fabric between the ranks of one device group. The
// in-process channel backend (NewChanTransport, the default) keeps
// every rank a goroutine in one address space and moves payloads by
// reference; package transport provides a length-prefixed TCP backend
// where each rank is a separate OS process and payloads cross a real
// wire (DESIGN.md decision 16).
//
// Contract:
//
//   - Ranks map 1:1 to device IDs; World() equals the group size.
//   - Send delivers p from rank src to rank dst (src != dst). Delivery
//     is FIFO per directed (src, dst) pair — the collectives rely on
//     stream order, never on cross-pair ordering.
//   - Send must not block waiting for the receiver to call Recv: the
//     collectives send to every peer before receiving from any, so a
//     rendezvous (unbuffered) transport would deadlock two ranks
//     sending to each other. At least one in-flight payload per
//     directed pair must be absorbed; the lockstep collective pattern
//     bounds the backlog to a few frames.
//   - Recv returns the next payload sent from src to dst, blocking
//     until one arrives.
//   - After Send returns, the transport holds no reference to the
//     payload's backing arrays unless it delivers that exact reference
//     to the receiver (the channel backend does; wire backends must
//     copy/serialize during Send so senders can recycle buffers under
//     the engine's barrier-then-Put ownership rule).
//
// Ownership rule (the comm/transport concurrency contract): all
// collective calls for rank r — and therefore every Ledger.Add, device
// clock Charge, and Spans emission they perform — happen on rank r's
// worker goroutine. A Transport may move bytes on internal goroutines,
// but it must hand decoded payloads back through Recv on the caller's
// goroutine and must never touch the Ledger, the device clocks, or the
// span tracks itself. Ledger is the one piece of comm state that is
// additionally mutex-guarded (the planner reads it while workers run);
// Spans[r] and the clock charge path are single-goroutine by design.
type Transport interface {
	// World returns the number of ranks.
	World() int
	// Send delivers p from rank src to rank dst.
	Send(src, dst int, p Payload)
	// Recv returns the next payload sent from rank src to rank dst.
	Recv(dst, src int) Payload
	// Close releases transport resources. It must only be called after
	// every rank has finished its last collective (the engine's epoch
	// loop ends on a completed collective, so closing between epochs or
	// after training is safe).
	Close() error
}

// Broadcaster is an optional Transport fast path: deliver the same
// payload from src to every other rank, serializing it at most once.
// Semantically identical to calling Send(src, j, p) for every j != src
// in ascending rank order — the per-pair FIFO and ownership rules are
// unchanged — but a wire backend can encode the frame once and share
// the bytes across its per-peer outboxes. Comm's gather paths use it
// when present.
type Broadcaster interface {
	Broadcast(src int, p Payload)
}

// chanTransport is the in-process backend: one buffered channel per
// directed rank pair, payloads move by reference. It is the simulated
// cluster — one OS process, one goroutine per rank — and stays the
// default fast path.
type chanTransport struct {
	boxes [][]chan Payload // boxes[src][dst], buffered depth 1
}

// NewChanTransport builds the in-process channel fabric for n ranks.
// Depth-1 buffering is enough to keep the collectives' send-then-recv
// pattern deadlock-free: a send only blocks when the previous payload
// on the same directed pair is still undelivered, and the lockstep
// contract guarantees its receiver is already draining.
func NewChanTransport(n int) Transport {
	t := &chanTransport{boxes: make([][]chan Payload, n)}
	for i := range t.boxes {
		t.boxes[i] = make([]chan Payload, n)
		for j := range t.boxes[i] {
			t.boxes[i][j] = make(chan Payload, 1)
		}
	}
	return t
}

func (t *chanTransport) World() int                   { return len(t.boxes) }
func (t *chanTransport) Send(src, dst int, p Payload) { t.boxes[src][dst] <- p }
func (t *chanTransport) Recv(dst, src int) Payload    { return <-t.boxes[src][dst] }
func (t *chanTransport) Close() error                 { return nil }
