package comm

import (
	"sync"
	"testing"

	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/tensor"
)

func newTestComm(p *hardware.Platform) (*Comm, *device.Group) {
	g := device.NewGroup(p)
	return New(g), g
}

func TestAllToAllDelivery(t *testing.T) {
	p := hardware.SingleMachine8GPU()
	p = hardware.WithDevices(p, 1, 4)
	c, _ := newTestComm(p)
	n := 4
	var mu sync.Mutex
	got := make([][]Payload, n)
	RunParallel(n, func(dev int) {
		outs := make([]Payload, n)
		for j := 0; j < n; j++ {
			outs[j] = Payload{Ints: []int32{int32(dev*100 + j)}}
		}
		in := c.AllToAll(dev, device.StageShuffle, outs)
		mu.Lock()
		got[dev] = in
		mu.Unlock()
	})
	for dev := 0; dev < n; dev++ {
		for j := 0; j < n; j++ {
			want := int32(j*100 + dev)
			if got[dev][j].Ints[0] != want {
				t.Errorf("dev %d from %d: got %d, want %d", dev, j, got[dev][j].Ints[0], want)
			}
		}
	}
}

func TestAllToAllChargesTime(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4)
	c, g := newTestComm(p)
	RunParallel(4, func(dev int) {
		outs := make([]Payload, 4)
		for j := range outs {
			if j != dev {
				outs[j] = Payload{Bytes: 12_000_000} // 12MB to each peer
			}
		}
		c.AllToAll(dev, device.StageShuffle, outs)
	})
	// 36MB over 12GB/s PCIe = ~3ms.
	for _, d := range g.Devices {
		e := d.Elapsed(device.StageShuffle)
		if e < 0.002 || e > 0.01 {
			t.Errorf("dev %d shuffle time %v, want ~3ms", d.ID, e)
		}
	}
	if c.Ledger.TotalOp("alltoall") != 4*3*12_000_000 {
		t.Errorf("ledger alltoall = %d", c.Ledger.TotalOp("alltoall"))
	}
}

func TestCrossMachineCostsMore(t *testing.T) {
	intra := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4)
	inter := hardware.WithDevices(hardware.FourMachines4GPU(), 4, 1)
	run := func(p *hardware.Platform) float64 {
		c, g := newTestComm(p)
		RunParallel(4, func(dev int) {
			outs := make([]Payload, 4)
			for j := range outs {
				if j != dev {
					outs[j] = Payload{Bytes: 1 << 22}
				}
			}
			c.AllToAll(dev, device.StageShuffle, outs)
		})
		return g.StageMax(device.StageShuffle)[device.StageShuffle]
	}
	if ti, tx := run(intra), run(inter); tx <= ti {
		t.Errorf("cross-machine alltoall %v not slower than intra %v", tx, ti)
	}
}

func TestAllReduceSum(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4)
	c, _ := newTestComm(p)
	results := make([]*tensor.Matrix, 4)
	var mu sync.Mutex
	RunParallel(4, func(dev int) {
		m := tensor.New(2, 2)
		for i := range m.Data {
			m.Data[i] = float32(dev + 1)
		}
		r := c.AllReduce(dev, device.StageTrain, m, 0)
		mu.Lock()
		results[dev] = r
		mu.Unlock()
	})
	for dev, r := range results {
		for _, v := range r.Data {
			if v != 10 { // 1+2+3+4
				t.Errorf("dev %d allreduce = %v, want 10", dev, v)
			}
		}
	}
	// Bitwise identical across devices (same summation order).
	for dev := 1; dev < 4; dev++ {
		if results[dev].MaxAbsDiff(results[0]) != 0 {
			t.Error("allreduce results differ across devices")
		}
	}
}

func TestAllGather(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 3)
	c, _ := newTestComm(p)
	var mu sync.Mutex
	got := make([][]Payload, 3)
	RunParallel(3, func(dev int) {
		in := c.AllGather(dev, device.StageBuild, Payload{Ints: []int32{int32(dev)}})
		mu.Lock()
		got[dev] = in
		mu.Unlock()
	})
	for dev := 0; dev < 3; dev++ {
		for j := 0; j < 3; j++ {
			if got[dev][j].Ints[0] != int32(j) {
				t.Errorf("dev %d gathered %d from slot %d", dev, got[dev][j].Ints[0], j)
			}
		}
	}
}

func TestSequentialCollectivesNoDeadlock(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 8)
	c, _ := newTestComm(p)
	RunParallel(8, func(dev int) {
		for it := 0; it < 50; it++ {
			outs := make([]Payload, 8)
			for j := range outs {
				outs[j] = Payload{Bytes: 1}
			}
			c.AllToAll(dev, "s", outs)
			c.AllGather(dev, "s", Payload{Bytes: 1})
			c.AllReduce(dev, "s", nil, 64)
			c.Barrier(dev)
		}
	})
}

func TestPayloadSize(t *testing.T) {
	m := tensor.New(3, 4)
	pl := Payload{Mat: m, Ints: []int32{1, 2}, Bytes: 10}
	if got := pl.SizeBytes(); got != 48+8+10 {
		t.Errorf("SizeBytes = %d, want 66", got)
	}
}

func TestLedger(t *testing.T) {
	l := NewLedger()
	l.Add("x", hardware.LinkPCIe, 100)
	l.Add("x", hardware.LinkNetwork, 50)
	l.Add("y", hardware.LinkPCIe, 7)
	if l.Total("x", hardware.LinkPCIe) != 100 {
		t.Error("Total wrong")
	}
	if l.TotalOp("x") != 150 {
		t.Error("TotalOp wrong")
	}
	snap := l.Snapshot()
	if len(snap) != 3 || snap[0].Op != "x" || snap[2].Op != "y" {
		t.Errorf("Snapshot = %+v", snap)
	}
	l.Reset()
	if l.TotalOp("x") != 0 {
		t.Error("Reset failed")
	}
}

func TestMeasureProfile(t *testing.T) {
	p := hardware.SingleMachine8GPU()
	prof := MeasureProfile(p)
	if prof.UVAReadBps != p.Bandwidth[hardware.LinkPCIe] {
		t.Error("UVA speed wrong")
	}
	if prof.PeerReadBps != 0 {
		t.Error("no-NVLink platform should have zero peer speed")
	}
	// AllToAll on one PCIe machine: effective speed below raw PCIe.
	if prof.AllToAllBps <= 0 || prof.AllToAllBps > p.Bandwidth[hardware.LinkPCIe] {
		t.Errorf("AllToAllBps = %v out of range", prof.AllToAllBps)
	}
	if prof.AllReduceBps <= 0 {
		t.Error("AllReduceBps not measured")
	}

	dist := hardware.FourMachines4GPU()
	dprof := MeasureProfile(dist)
	if dprof.AllToAllBps >= prof.AllToAllBps {
		t.Errorf("distributed alltoall %v not slower than single machine %v",
			dprof.AllToAllBps, prof.AllToAllBps)
	}
	if dprof.RemoteReadBps >= dprof.UVAReadBps {
		t.Error("remote read should be slower than UVA")
	}

	nv := hardware.SingleMachine8GPUNVLink()
	if MeasureProfile(nv).PeerReadBps == 0 {
		t.Error("NVLink platform should report peer speed")
	}
}

func TestDeviceMemoryAccounting(t *testing.T) {
	g := device.NewGroup(hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2))
	d := g.Devices[0]
	d.Alloc(10 * hardware.GB)
	if d.OOM() {
		t.Error("10GB on 16GB device flagged OOM")
	}
	d.Alloc(10 * hardware.GB)
	if !d.OOM() {
		t.Error("20GB on 16GB device not flagged OOM")
	}
	if !g.AnyOOM() {
		t.Error("group OOM not propagated")
	}
	d.Free(20 * hardware.GB)
	if d.MemUsed() != 0 {
		t.Error("Free accounting wrong")
	}
}

func TestStageMaxAndReset(t *testing.T) {
	g := device.NewGroup(hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2))
	g.Devices[0].Charge("a", 1)
	g.Devices[1].Charge("a", 3)
	if g.StageMax("a")["a"] != 3 {
		t.Error("StageMax wrong")
	}
	if g.Devices[1].TotalElapsed() != 3 {
		t.Error("TotalElapsed wrong")
	}
	g.ResetClocks()
	if g.StageMax("a")["a"] != 0 {
		t.Error("ResetClocks failed")
	}
}
