package cache

import (
	"testing"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/tensor"
)

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddUndirected(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build(true)
}

func TestSelectHotGlobal(t *testing.T) {
	freq := []int64{5, 1, 9, 3, 7, 0}
	lists := Select(SelectConfig{
		Policy: PolicyHotGlobal, Freq: freq, CapacityNodes: 3, Devices: 2,
	})
	want := map[graph.NodeID]bool{2: true, 4: true, 0: true}
	for d := 0; d < 2; d++ {
		if len(lists[d]) != 3 {
			t.Fatalf("dev %d cached %d, want 3", d, len(lists[d]))
		}
		for _, v := range lists[d] {
			if !want[v] {
				t.Errorf("dev %d cached %d, not among hottest", d, v)
			}
		}
	}
}

func TestSelectHotPartition(t *testing.T) {
	freq := []int64{5, 1, 9, 3, 7, 2}
	assign := []int32{0, 0, 0, 1, 1, 1}
	lists := Select(SelectConfig{
		Policy: PolicyHotPartition, Freq: freq, Assign: assign,
		CapacityNodes: 2, Devices: 2,
	})
	// Device 0's hottest within {0,1,2}: 2 (9) and 0 (5).
	if len(lists[0]) != 2 || lists[0][0] != 0 || lists[0][1] != 2 {
		t.Errorf("dev0 = %v, want [0 2]", lists[0])
	}
	// Device 1's hottest within {3,4,5}: 4 (7) and 3 (3).
	if len(lists[1]) != 2 || lists[1][0] != 3 || lists[1][1] != 4 {
		t.Errorf("dev1 = %v, want [3 4]", lists[1])
	}
}

func TestSelectPartitionPlus1Hop(t *testing.T) {
	g := lineGraph(6) // 0-1-2-3-4-5
	freq := []int64{1, 1, 1, 100, 1, 1}
	assign := []int32{0, 0, 0, 1, 1, 1}
	lists := Select(SelectConfig{
		Policy: PolicyHotPartitionPlus1Hop, Freq: freq, Assign: assign,
		Graph: g, CapacityNodes: 1, Devices: 2,
	})
	// Node 3 is 1-hop from partition 0 (via 2) and the hottest overall,
	// so DNP's expansion lets device 0 cache it.
	if len(lists[0]) != 1 || lists[0][0] != 3 {
		t.Errorf("dev0 = %v, want [3]", lists[0])
	}
}

func TestSelectDegreePolicy(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddUndirected(0, 1)
	b.AddUndirected(0, 2)
	b.AddUndirected(0, 3)
	g := b.Build(true)
	lists := Select(SelectConfig{Policy: PolicyDegree, Graph: g, CapacityNodes: 1, Devices: 1})
	if len(lists[0]) != 1 || lists[0][0] != 0 {
		t.Errorf("degree policy cached %v, want [0]", lists[0])
	}
}

func TestSelectZeroCapacity(t *testing.T) {
	lists := Select(SelectConfig{Policy: PolicyHotGlobal, Freq: []int64{1, 2}, CapacityNodes: 0, Devices: 2})
	for _, l := range lists {
		if len(l) != 0 {
			t.Error("zero capacity cached nodes")
		}
	}
}

func newStore(p *hardware.Platform, n, dim int, withFeats bool) *Store {
	var feats *tensor.Matrix
	if withFeats {
		feats = tensor.New(n, dim)
		for i := range feats.Data {
			feats.Data[i] = float32(i)
		}
	}
	return NewStore(p, n, dim, feats)
}

func TestLocateRules(t *testing.T) {
	p := hardware.FourMachines4GPU()
	s := newStore(p, 100, 4, false)
	s.HostByRange() // nodes 0-24 on machine 0, 25-49 on machine 1, ...
	s.ConfigureCache(0, []graph.NodeID{7})

	if got := s.Locate(0, 7); got != LocGPU {
		t.Errorf("cached node: %v, want gpu", got)
	}
	// No NVLink: peer cache invisible; node 8 hosted on machine 0.
	s.ConfigureCache(1, []graph.NodeID{8})
	if got := s.Locate(0, 8); got != LocLocalCPU {
		t.Errorf("peer-cached without NVLink: %v, want local-cpu", got)
	}
	if got := s.Locate(0, 90); got != LocRemoteCPU {
		t.Errorf("remote-hosted node: %v, want remote-cpu", got)
	}
	// Device 4 is on machine 1; node 30 hosted there.
	if got := s.Locate(4, 30); got != LocLocalCPU {
		t.Errorf("machine-1 local: %v, want local-cpu", got)
	}
}

func TestLocatePeerGPUWithNVLink(t *testing.T) {
	p := hardware.SingleMachine8GPUNVLink()
	s := newStore(p, 50, 4, false)
	s.HostByRange()
	s.ConfigureCache(3, []graph.NodeID{10})
	if got := s.Locate(0, 10); got != LocPeerGPU {
		t.Errorf("NVLink peer cache: %v, want peer-gpu", got)
	}
	if got := s.Locate(3, 10); got != LocGPU {
		t.Errorf("own cache preferred: %v", got)
	}
}

func TestHostByPartition(t *testing.T) {
	p := hardware.FourMachines4GPU()
	s := newStore(p, 8, 4, false)
	assign := []int32{0, 4, 8, 12, 0, 4, 8, 12} // one device per machine
	s.HostByPartition(assign)
	for v, d := range assign {
		if int(s.HostMachine[v]) != p.MachineOf(int(d)) {
			t.Errorf("node %d hosted on machine %d, want %d", v, s.HostMachine[v], p.MachineOf(int(d)))
		}
	}
}

func TestLoadGathersAndCharges(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2)
	s := newStore(p, 10, 3, true)
	s.HostByRange()
	s.ConfigureCache(0, []graph.NodeID{1})
	grp := device.NewGroup(p)
	dev := grp.Devices[0]
	m, st := s.Load(dev, []graph.NodeID{1, 2, 3})
	if m.Rows != 3 || m.Cols != 3 {
		t.Fatalf("loaded shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 0) != 3 { // node 1 row starts at value 3
		t.Errorf("row 0 = %v, want feature of node 1", m.Row(0))
	}
	if st.Nodes[LocGPU] != 1 || st.Nodes[LocLocalCPU] != 2 {
		t.Errorf("stats = %+v", st.Nodes)
	}
	if st.Bytes[LocLocalCPU] != 2*3*4 {
		t.Errorf("cpu bytes = %d, want 24", st.Bytes[LocLocalCPU])
	}
	if dev.Elapsed(device.StageLoad) <= 0 {
		t.Error("no load time charged")
	}
}

func TestLoadDims(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2)
	s := newStore(p, 4, 4, true)
	s.HostByRange()
	s.LoadDim = 2 // NFP shard accounting
	grp := device.NewGroup(p)
	m, st := s.LoadDims(grp.Devices[0], []graph.NodeID{2}, 2, 4)
	if m.Cols != 2 {
		t.Fatalf("LoadDims cols = %d", m.Cols)
	}
	if m.At(0, 0) != float32(2*4+2) {
		t.Errorf("LoadDims value = %v", m.At(0, 0))
	}
	if st.Bytes[LocLocalCPU] != 8 {
		t.Errorf("shard bytes = %d, want 8", st.Bytes[LocLocalCPU])
	}
}

func TestVolumeOnlyMatchesLoad(t *testing.T) {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2)
	s := newStore(p, 20, 5, false)
	s.HostByRange()
	s.ConfigureCache(0, []graph.NodeID{0, 5, 10})
	nodes := []graph.NodeID{0, 1, 5, 11, 19}
	vol := s.VolumeOnly(0, nodes)
	grp := device.NewGroup(p)
	_, st := s.Load(grp.Devices[0], nodes)
	if vol.Nodes != st.Nodes || vol.Bytes != st.Bytes {
		t.Error("VolumeOnly diverges from Load accounting")
	}
}

func TestRemoteLoadSlowerThanLocal(t *testing.T) {
	p := hardware.FourMachines4GPU()
	s := newStore(p, 1000, 64, false)
	s.HostByRange()
	grp := device.NewGroup(p)
	local := make([]graph.NodeID, 200)
	remote := make([]graph.NodeID, 200)
	for i := range local {
		local[i] = graph.NodeID(i)            // machine 0
		remote[i] = graph.NodeID(750 + i%250) // machine 3
	}
	_, stLocal := s.Load(grp.Devices[0], local)
	_, stRemote := s.Load(grp.Devices[1], remote)
	if stRemote.Seconds <= stLocal.Seconds {
		t.Errorf("remote load %v not slower than local %v", stRemote.Seconds, stLocal.Seconds)
	}
}

func TestLoadStatsAdd(t *testing.T) {
	var a, b LoadStats
	a.Nodes[LocGPU] = 1
	a.Bytes[LocGPU] = 4
	a.Seconds = 1
	b.Nodes[LocGPU] = 2
	b.Bytes[LocGPU] = 8
	b.Seconds = 2
	a.Add(b)
	if a.Nodes[LocGPU] != 3 || a.Bytes[LocGPU] != 12 || a.Seconds != 3 {
		t.Errorf("Add result %+v", a)
	}
}
