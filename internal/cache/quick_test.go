package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/hardware"
)

// Property: Select never exceeds capacity, never caches nodes outside
// the policy's candidate set, and is deterministic.
func TestSelectPropertiesQuick(t *testing.T) {
	f := func(seed uint64, capRaw uint8, devRaw uint8) bool {
		devices := int(devRaw)%4 + 2
		capacity := int(capRaw) % 40
		g := graph.ErdosRenyi(graph.GenerateConfig{NumNodes: 120, AvgDegree: 6, Seed: seed})
		rng := graph.NewRNG(seed)
		freq := make([]int64, g.NumNodes())
		for i := range freq {
			freq[i] = int64(rng.Intn(100))
		}
		assign := make([]int32, g.NumNodes())
		for i := range assign {
			assign[i] = int32(rng.Intn(devices))
		}
		for _, policy := range []Policy{PolicyHotGlobal, PolicyHotPartition, PolicyHotPartitionPlus1Hop, PolicyDegree} {
			cfg := SelectConfig{
				Policy: policy, Freq: freq, Assign: assign, Graph: g,
				CapacityNodes: capacity, Devices: devices,
			}
			lists := Select(cfg)
			again := Select(cfg)
			if len(lists) != devices {
				return false
			}
			for d, l := range lists {
				if len(l) > capacity {
					return false
				}
				if len(l) != len(again[d]) {
					return false
				}
				for i, v := range l {
					if again[d][i] != v {
						return false // nondeterministic
					}
					switch policy {
					case PolicyHotPartition:
						if assign[v] != int32(d) {
							return false // cached outside own partition
						}
					case PolicyHotPartitionPlus1Hop:
						if assign[v] != int32(d) && !hasNeighborIn(g, v, assign, int32(d)) {
							return false // outside partition+1hop
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// hasNeighborIn reports whether any out-neighbor of v (under the
// reverse orientation used by the 1-hop expansion) is assigned to d.
func hasNeighborIn(g *graph.Graph, v graph.NodeID, assign []int32, d int32) bool {
	// The expansion adds in-neighbors of partition members, i.e. v is a
	// candidate of d if v appears in the adjacency of some node of d.
	for u := 0; u < g.NumNodes(); u++ {
		if assign[u] != d {
			continue
		}
		for _, w := range g.Neighbors(graph.NodeID(u)) {
			if w == v {
				return true
			}
		}
	}
	return false
}

// Property: Locate is consistent with IsCached and host placement.
func TestLocateConsistencyQuick(t *testing.T) {
	f := func(seed uint64) bool {
		p := hwFour()
		s := NewStore(p, 100, 4, nil)
		s.HostByRange()
		rng := graph.NewRNG(seed)
		for d := 0; d < p.NumDevices(); d++ {
			var l []graph.NodeID
			for i := 0; i < 10; i++ {
				l = append(l, graph.NodeID(rng.Intn(100)))
			}
			s.ConfigureCache(d, l)
		}
		for dev := 0; dev < p.NumDevices(); dev++ {
			for v := graph.NodeID(0); v < 100; v++ {
				loc := s.Locate(dev, v)
				if s.IsCached(dev, v) && loc != LocGPU {
					return false
				}
				if !s.IsCached(dev, v) && loc == LocGPU {
					return false
				}
				if loc == LocLocalCPU && int(s.HostMachine[v]) != p.MachineOf(dev) {
					return false
				}
				if loc == LocRemoteCPU && int(s.HostMachine[v]) == p.MachineOf(dev) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func hwFour() *hardware.Platform { return hardware.FourMachines4GPU() }
