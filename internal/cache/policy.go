// Package cache implements APT's unified feature store: hotness-based
// per-GPU feature caches configured per parallelization strategy
// (paper §3.2 "Cache configuration"), the machine-level placement of
// node features, and the global feature map that routes every read to
// GPU cache, peer GPU, local CPU, or remote CPU (paper §4.2).
package cache

import (
	"sort"

	"repro/internal/graph"
)

// Policy selects which nodes a device caches, given dry-run access
// frequencies.
type Policy int

// Cache policies. The first three are the paper's per-strategy rules;
// PolicyDegree is the PaGraph-style baseline used by the cache-policy
// ablation.
const (
	// PolicyHotGlobal caches the globally most-accessed nodes
	// (GDP and NFP; every device caches the same set).
	PolicyHotGlobal Policy = iota
	// PolicyHotPartition caches the most-accessed nodes within the
	// device's own graph partition (SNP).
	PolicyHotPartition
	// PolicyHotPartitionPlus1Hop caches the most-accessed nodes among
	// the device's partition and its 1-hop neighborhood (DNP).
	PolicyHotPartitionPlus1Hop
	// PolicyDegree caches the highest in-degree nodes regardless of
	// measured access (ablation baseline).
	PolicyDegree
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyHotGlobal:
		return "hot-global"
	case PolicyHotPartition:
		return "hot-partition"
	case PolicyHotPartitionPlus1Hop:
		return "hot-partition+1hop"
	case PolicyDegree:
		return "degree"
	default:
		return "unknown"
	}
}

// SelectConfig parameterizes cache selection.
type SelectConfig struct {
	Policy Policy
	// Freq are dry-run access counts per node (nil allowed for
	// PolicyDegree).
	Freq []int64
	// Assign maps node -> partition/device for the partition policies.
	Assign []int32
	// Graph supplies 1-hop expansion for DNP and degrees for
	// PolicyDegree.
	Graph *graph.Graph
	// CapacityNodes is the maximum nodes one device may cache.
	CapacityNodes int
	// Devices is the device count.
	Devices int
}

// rankedLists returns, per device, up to k candidate nodes ranked by
// the policy's score (hottest first, ties broken by node ID).
func rankedLists(cfg SelectConfig, k int) [][]graph.NodeID {
	out := make([][]graph.NodeID, cfg.Devices)
	if k <= 0 {
		return out
	}
	switch cfg.Policy {
	case PolicyHotGlobal:
		top := topByScore(allNodes(len(cfg.Freq)), func(v graph.NodeID) int64 { return cfg.Freq[v] }, k)
		for d := range out {
			out[d] = append([]graph.NodeID(nil), top...)
		}
	case PolicyDegree:
		n := cfg.Graph.NumNodes()
		top := topByScore(allNodes(n), func(v graph.NodeID) int64 { return int64(cfg.Graph.Degree(v)) }, k)
		for d := range out {
			out[d] = append([]graph.NodeID(nil), top...)
		}
	case PolicyHotPartition:
		cands := partitionCandidates(cfg.Assign, cfg.Devices, nil)
		for d := range out {
			out[d] = topByScore(cands[d], func(v graph.NodeID) int64 { return cfg.Freq[v] }, k)
		}
	case PolicyHotPartitionPlus1Hop:
		cands := partitionCandidates(cfg.Assign, cfg.Devices, cfg.Graph)
		for d := range out {
			out[d] = topByScore(cands[d], func(v graph.NodeID) int64 { return cfg.Freq[v] }, k)
		}
	}
	return out
}

// Select returns, per device, the sorted list of cached node IDs.
func Select(cfg SelectConfig) [][]graph.NodeID {
	out := rankedLists(cfg, cfg.CapacityNodes)
	for d := range out {
		sort.Slice(out[d], func(i, j int) bool { return out[d][i] < out[d][j] })
	}
	return out
}

// SelectTiered splits the policy's hotness ranking into two bands per
// device: the top CapacityNodes stay fp32 (hot), the next warmNodes
// are admitted to the int8 warm tier. The bands follow the same
// ranking a single-tier Select would use, so enabling the tier never
// evicts a row the fp32 cache would have held — it extends coverage
// downward into rows that would otherwise read from CPU memory.
func SelectTiered(cfg SelectConfig, warmNodes int) (hot, warm [][]graph.NodeID) {
	ranked := rankedLists(cfg, cfg.CapacityNodes+warmNodes)
	hot = make([][]graph.NodeID, cfg.Devices)
	warm = make([][]graph.NodeID, cfg.Devices)
	for d := range ranked {
		h := ranked[d]
		if len(h) > cfg.CapacityNodes {
			warm[d] = h[cfg.CapacityNodes:]
			h = h[:cfg.CapacityNodes]
		}
		hot[d] = h
		sort.Slice(hot[d], func(i, j int) bool { return hot[d][i] < hot[d][j] })
		sort.Slice(warm[d], func(i, j int) bool { return warm[d][i] < warm[d][j] })
	}
	return hot, warm
}

func allNodes(n int) []graph.NodeID {
	ns := make([]graph.NodeID, n)
	for i := range ns {
		ns[i] = graph.NodeID(i)
	}
	return ns
}

// partitionCandidates lists each device's cacheable node set: its
// partition, optionally expanded by the 1-hop in-neighborhood (the
// sources a DNP device must read to compute its destinations).
func partitionCandidates(assign []int32, devices int, g *graph.Graph) [][]graph.NodeID {
	cands := make([][]graph.NodeID, devices)
	for v, d := range assign {
		cands[d] = append(cands[d], graph.NodeID(v))
	}
	if g == nil {
		return cands
	}
	for d := range cands {
		seen := make(map[graph.NodeID]struct{}, len(cands[d])*2)
		for _, v := range cands[d] {
			seen[v] = struct{}{}
		}
		base := cands[d]
		for _, v := range base {
			for _, u := range g.Neighbors(v) {
				if _, ok := seen[u]; !ok {
					seen[u] = struct{}{}
					cands[d] = append(cands[d], u)
				}
			}
		}
	}
	return cands
}

// topByScore returns up to k candidates with the highest score,
// breaking ties by node ID for determinism.
func topByScore(cands []graph.NodeID, score func(graph.NodeID) int64, k int) []graph.NodeID {
	sorted := append([]graph.NodeID(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool {
		si, sj := score(sorted[i]), score(sorted[j])
		if si != sj {
			return si > sj
		}
		return sorted[i] < sorted[j]
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}
