package cache

import (
	"fmt"
	"sync/atomic"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/tensor"
)

// Location classifies where a feature read is served from, ordered by
// preference per the paper's feature-map rules.
type Location int

// Read locations.
const (
	// LocGPU is a local fp32 cache hit.
	LocGPU Location = iota
	// LocGPUQ is a local int8 warm-tier hit: the row is resident on
	// the device in quantized form and dequantized on gather.
	LocGPUQ
	// LocPeerGPU is a peer device's cache over NVLink.
	LocPeerGPU
	// LocLocalCPU is the machine's own CPU memory (UVA over PCIe).
	LocLocalCPU
	// LocRemoteCPU is another machine's CPU memory.
	LocRemoteCPU
	numLocations
)

// NumLocations is the number of read locations (for callers sizing
// per-location tables).
const NumLocations = int(numLocations)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case LocGPU:
		return "gpu"
	case LocGPUQ:
		return "gpu-int8"
	case LocPeerGPU:
		return "peer-gpu"
	case LocLocalCPU:
		return "local-cpu"
	case LocRemoteCPU:
		return "remote-cpu"
	default:
		return fmt.Sprintf("loc(%d)", int(l))
	}
}

// Store is the unified feature store: the master feature matrix
// (conceptually partitioned across machine CPUs), per-device cache
// bitsets, and the placement map.
type Store struct {
	Platform *hardware.Platform
	// Feats is the master copy; nil in accounting mode.
	Feats *tensor.Matrix
	// Dim is the feature width.
	Dim int
	// LoadDim is the width actually moved per node read: Dim for
	// GDP/SNP/DNP, Dim/C under NFP's dimension partitioning.
	LoadDim int
	// HostMachine[v] is the machine whose CPU stores v's feature.
	HostMachine []int32
	// QFeats holds the shared quantized copies backing every device's
	// int8 warm tier; nil until a tiered cache is configured. Rows are
	// quantized on admission (ConfigureCacheTiered) and indexed by
	// node ID, so kernels need no extra indirection; memory is
	// numNodes x (Dim+8) bytes, acceptable at reproduction scale.
	QFeats *tensor.QuantMatrix
	// cached[dev] is a bitset over nodes (fp32 hot tier).
	cached [][]uint64
	// qcached[dev] is a bitset over nodes resident in dev's int8 warm
	// tier; nil per device until configured.
	qcached [][]uint64
	// cachedLists keeps the configured cache lists for inspection.
	cachedLists [][]graph.NodeID
	// qcachedLists keeps the configured warm-tier lists.
	qcachedLists [][]graph.NodeID
	// cpuCached[machine] is a bitset of features replicated into that
	// machine's CPU memory beyond its hosted shard — the paper's
	// footnote 3: "hotness-based caching is conducted using excess CPU
	// memory". Nil when disabled.
	cpuCached [][]uint64
	numNodes  int
	// loc[dev] caches Locate's answer per node as one byte, built
	// lazily on first use and dropped by every placement mutation.
	// Placement only changes at (re)configure time while the epoch loop
	// resolves millions of reads, so the accounting hot path becomes a
	// single table load instead of a bitset chain plus an NVLink peer
	// scan. Concurrent first readers may race to build identical
	// tables; last store wins, which is harmless.
	loc []atomic.Pointer[[]uint8]
}

// NewStore creates a feature store for n nodes of width dim. feats may
// be nil (accounting mode).
func NewStore(p *hardware.Platform, n, dim int, feats *tensor.Matrix) *Store {
	s := &Store{
		Platform:     p,
		Feats:        feats,
		Dim:          dim,
		LoadDim:      dim,
		HostMachine:  make([]int32, n),
		cached:       make([][]uint64, p.NumDevices()),
		qcached:      make([][]uint64, p.NumDevices()),
		cachedLists:  make([][]graph.NodeID, p.NumDevices()),
		qcachedLists: make([][]graph.NodeID, p.NumDevices()),
		numNodes:     n,
		loc:          make([]atomic.Pointer[[]uint8], p.NumDevices()),
	}
	words := (n + 63) / 64
	for d := range s.cached {
		s.cached[d] = make([]uint64, words)
	}
	return s
}

// invalidateLoc drops every device's location table; any placement
// mutation must call it (a change on one device can alter another's
// LocPeerGPU answers).
func (s *Store) invalidateLoc() {
	for d := range s.loc {
		s.loc[d].Store(nil)
	}
}

// locTable returns dev's location table, building it on first use.
func (s *Store) locTable(dev int) []uint8 {
	if t := s.loc[dev].Load(); t != nil {
		return *t
	}
	t := make([]uint8, s.numNodes)
	for v := range t {
		t[v] = uint8(s.locate(dev, graph.NodeID(v)))
	}
	s.loc[dev].Store(&t)
	return t
}

// HostByRange partitions features across machine CPUs by node-ID range
// (the GDP/NFP data layout for multi-machine training).
func (s *Store) HostByRange() {
	m := s.Platform.Machines
	per := (s.numNodes + m - 1) / m
	for v := range s.HostMachine {
		h := v / per
		if h >= m {
			h = m - 1
		}
		s.HostMachine[v] = int32(h)
	}
	s.invalidateLoc()
}

// HostByPartition places each node's feature on the machine hosting
// its partition's device (the SNP/DNP-aware layout). assign maps node
// -> device.
func (s *Store) HostByPartition(assign []int32) {
	for v, d := range assign {
		s.HostMachine[v] = int32(s.Platform.MachineOf(int(d)))
	}
	s.invalidateLoc()
}

// ConfigureCache installs the cache list for device dev.
func (s *Store) ConfigureCache(dev int, nodes []graph.NodeID) {
	bits := s.cached[dev]
	for i := range bits {
		bits[i] = 0
	}
	for _, v := range nodes {
		bits[v>>6] |= 1 << (uint(v) & 63)
	}
	s.cachedLists[dev] = nodes
	s.invalidateLoc()
}

// CachedList returns the configured cache list of dev.
func (s *Store) CachedList(dev int) []graph.NodeID { return s.cachedLists[dev] }

// QCachedList returns the configured int8 warm-tier list of dev.
func (s *Store) QCachedList(dev int) []graph.NodeID { return s.qcachedLists[dev] }

// ConfigureCacheTiered installs a two-tier cache for device dev: hot
// rows stay fp32, warm rows are quantized to int8 on admission (4x
// capacity per byte, lossy). Warm rows are quantized into the shared
// QFeats matrix — admission is idempotent, so devices overlapping
// warm sets agree on the quantized bytes. In accounting mode (nil
// Feats) only the placement bitsets are installed.
func (s *Store) ConfigureCacheTiered(dev int, hot, warm []graph.NodeID) {
	s.ConfigureCache(dev, hot)
	words := (s.numNodes + 63) / 64
	if s.qcached[dev] == nil {
		s.qcached[dev] = make([]uint64, words)
	}
	bits := s.qcached[dev]
	for i := range bits {
		bits[i] = 0
	}
	for _, v := range warm {
		bits[v>>6] |= 1 << (uint(v) & 63)
	}
	s.qcachedLists[dev] = warm
	s.invalidateLoc()
	if s.Feats == nil {
		return
	}
	if s.QFeats == nil {
		s.QFeats = tensor.NewQuant(s.numNodes, s.Dim)
	}
	for _, v := range warm {
		s.QFeats.QuantizeRow(int(v), s.Feats.Row(int(v)))
	}
}

// IsQCached reports whether dev holds v in its int8 warm tier.
func (s *Store) IsQCached(dev int, v graph.NodeID) bool {
	q := s.qcached[dev]
	return q != nil && q[v>>6]&(1<<(uint(v)&63)) != 0
}

// FeatView returns device dev's read view of the store: the master
// fp32 matrix plus, when a warm tier is configured, the device's int8
// rows. With no tier the view is the plain fp32 matrix and every
// kernel consuming it takes the bit-identical fp32 path.
func (s *Store) FeatView(dev int) tensor.FeatSource {
	src := tensor.FeatSource{F: s.Feats}
	if s.QFeats != nil && s.qcached[dev] != nil && len(s.qcachedLists[dev]) > 0 {
		src.Q = s.QFeats
		src.QMask = s.qcached[dev]
	}
	return src
}

// ConfigureCPUCache replicates the given nodes' features into machine
// m's CPU memory, so its GPUs read them locally instead of remotely.
func (s *Store) ConfigureCPUCache(m int, nodes []graph.NodeID) {
	if s.cpuCached == nil {
		s.cpuCached = make([][]uint64, s.Platform.Machines)
	}
	words := (s.numNodes + 63) / 64
	bits := make([]uint64, words)
	for _, v := range nodes {
		bits[v>>6] |= 1 << (uint(v) & 63)
	}
	s.cpuCached[m] = bits
	s.invalidateLoc()
}

// isCPUCached reports whether machine m replicates v.
func (s *Store) isCPUCached(m int, v graph.NodeID) bool {
	if s.cpuCached == nil || s.cpuCached[m] == nil {
		return false
	}
	return s.cpuCached[m][v>>6]&(1<<(uint(v)&63)) != 0
}

// IsCached reports whether dev caches v.
func (s *Store) IsCached(dev int, v graph.NodeID) bool {
	return s.cached[dev][v>>6]&(1<<(uint(v)&63)) != 0
}

// Locate applies the paper's position rules for device dev reading v:
// own cache, then peer GPU (NVLink only), then local CPU, then remote.
// Answers are served from the per-device location table.
func (s *Store) Locate(dev int, v graph.NodeID) Location {
	return Location(s.locTable(dev)[v])
}

// locate is the uncached position-rule walk behind the table build.
func (s *Store) locate(dev int, v graph.NodeID) Location {
	if s.IsCached(dev, v) {
		return LocGPU
	}
	if s.IsQCached(dev, v) {
		return LocGPUQ
	}
	if s.Platform.HasNVLink {
		m := s.Platform.MachineOf(dev)
		lo := m * s.Platform.GPUsPerMachine
		for d := lo; d < lo+s.Platform.GPUsPerMachine; d++ {
			if d != dev && s.IsCached(d, v) {
				return LocPeerGPU
			}
		}
	}
	m := s.Platform.MachineOf(dev)
	if int(s.HostMachine[v]) == m || s.isCPUCached(m, v) {
		return LocLocalCPU
	}
	return LocRemoteCPU
}

// LoadStats summarizes one Load call.
type LoadStats struct {
	// Nodes[loc] counts reads served by each location.
	Nodes [numLocations]int64
	// Bytes[loc] counts bytes moved from each location.
	Bytes [numLocations]int64
	// Seconds is the simulated time charged.
	Seconds float64
}

// Add merges o into st.
func (st *LoadStats) Add(o LoadStats) {
	for i := range st.Nodes {
		st.Nodes[i] += o.Nodes[i]
		st.Bytes[i] += o.Bytes[i]
	}
	st.Seconds += o.Seconds
}

// locLink maps a location to the platform link it uses.
func locLink(loc Location) hardware.LinkKind {
	switch loc {
	case LocGPU, LocGPUQ:
		return hardware.LinkGPUMem
	case LocPeerGPU:
		return hardware.LinkNVLink
	case LocLocalCPU:
		return hardware.LinkPCIe
	default:
		return hardware.LinkNetwork
	}
}

// VolumeOnly computes the load statistics for dev reading nodes
// without charging time or moving data — the dry-run path the planner
// uses to estimate T_load. Warm-tier reads are accounted at their
// quantized size (1 byte per element plus the 8-byte scale/zero
// pair), not the fp32 size — the int8 tier's whole point is that a
// hit moves a quarter of the bytes.
func (s *Store) VolumeOnly(dev int, nodes []graph.NodeID) LoadStats {
	var st LoadStats
	perNode := int64(4 * s.LoadDim)
	perNodeQ := tensor.QuantRowBytes(s.LoadDim)
	tab := s.locTable(dev)
	for _, v := range nodes {
		loc := Location(tab[v])
		st.Nodes[loc]++
		if loc == LocGPUQ {
			st.Bytes[loc] += perNodeQ
		} else {
			st.Bytes[loc] += perNode
		}
	}
	return st
}

// chargeTime converts accumulated volumes into simulated seconds on
// dev's clock (stage StageLoad) and returns the seconds.
func (s *Store) chargeTime(dev *device.Device, st *LoadStats) {
	p := s.Platform
	var t float64
	for loc := Location(0); loc < numLocations; loc++ {
		if st.Bytes[loc] == 0 {
			continue
		}
		kind := locLink(loc)
		conc := 1
		if kind == hardware.LinkNetwork {
			conc = p.GPUsPerMachine
		}
		t += p.TransferTime(kind, st.Bytes[loc], conc)
	}
	st.Seconds = t
	dev.Charge(device.StageLoad, t)
}

// Charge accounts for device dev reading nodes — location volumes plus
// simulated load time — without materializing a gathered copy. The
// gather-fused kernels read the master feature matrix through the node
// list directly, so a load is pure accounting.
func (s *Store) Charge(dev *device.Device, nodes []graph.NodeID) LoadStats {
	st := s.VolumeOnly(dev.ID, nodes)
	s.chargeTime(dev, &st)
	return st
}

// Load gathers the features of nodes for device dev, charging
// simulated load time. In accounting mode (nil master features) only
// statistics are produced and the returned matrix is nil.
func (s *Store) Load(dev *device.Device, nodes []graph.NodeID) (*tensor.Matrix, LoadStats) {
	st := s.VolumeOnly(dev.ID, nodes)
	s.chargeTime(dev, &st)
	if s.Feats == nil {
		return nil, st
	}
	return tensor.Gather(s.Feats, nodes), st
}

// LoadDims gathers the column slice [dimLo, dimHi) of the requested
// nodes — NFP's per-device feature shard read. Accounting uses LoadDim
// (already set to the shard width under NFP).
func (s *Store) LoadDims(dev *device.Device, nodes []graph.NodeID, dimLo, dimHi int) (*tensor.Matrix, LoadStats) {
	st := s.VolumeOnly(dev.ID, nodes)
	s.chargeTime(dev, &st)
	if s.Feats == nil {
		return nil, st
	}
	out := tensor.New(len(nodes), dimHi-dimLo)
	for i, v := range nodes {
		copy(out.Row(i), s.Feats.Row(int(v))[dimLo:dimHi])
	}
	return out, st
}
