package cache

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/tensor"
)

// Location classifies where a feature read is served from, ordered by
// preference per the paper's feature-map rules.
type Location int

// Read locations.
const (
	// LocGPU is a local cache hit.
	LocGPU Location = iota
	// LocPeerGPU is a peer device's cache over NVLink.
	LocPeerGPU
	// LocLocalCPU is the machine's own CPU memory (UVA over PCIe).
	LocLocalCPU
	// LocRemoteCPU is another machine's CPU memory.
	LocRemoteCPU
	numLocations
)

// String implements fmt.Stringer.
func (l Location) String() string {
	switch l {
	case LocGPU:
		return "gpu"
	case LocPeerGPU:
		return "peer-gpu"
	case LocLocalCPU:
		return "local-cpu"
	case LocRemoteCPU:
		return "remote-cpu"
	default:
		return fmt.Sprintf("loc(%d)", int(l))
	}
}

// Store is the unified feature store: the master feature matrix
// (conceptually partitioned across machine CPUs), per-device cache
// bitsets, and the placement map.
type Store struct {
	Platform *hardware.Platform
	// Feats is the master copy; nil in accounting mode.
	Feats *tensor.Matrix
	// Dim is the feature width.
	Dim int
	// LoadDim is the width actually moved per node read: Dim for
	// GDP/SNP/DNP, Dim/C under NFP's dimension partitioning.
	LoadDim int
	// HostMachine[v] is the machine whose CPU stores v's feature.
	HostMachine []int32
	// cached[dev] is a bitset over nodes.
	cached [][]uint64
	// cachedLists keeps the configured cache lists for inspection.
	cachedLists [][]graph.NodeID
	// cpuCached[machine] is a bitset of features replicated into that
	// machine's CPU memory beyond its hosted shard — the paper's
	// footnote 3: "hotness-based caching is conducted using excess CPU
	// memory". Nil when disabled.
	cpuCached [][]uint64
	numNodes  int
}

// NewStore creates a feature store for n nodes of width dim. feats may
// be nil (accounting mode).
func NewStore(p *hardware.Platform, n, dim int, feats *tensor.Matrix) *Store {
	s := &Store{
		Platform:    p,
		Feats:       feats,
		Dim:         dim,
		LoadDim:     dim,
		HostMachine: make([]int32, n),
		cached:      make([][]uint64, p.NumDevices()),
		cachedLists: make([][]graph.NodeID, p.NumDevices()),
		numNodes:    n,
	}
	words := (n + 63) / 64
	for d := range s.cached {
		s.cached[d] = make([]uint64, words)
	}
	return s
}

// HostByRange partitions features across machine CPUs by node-ID range
// (the GDP/NFP data layout for multi-machine training).
func (s *Store) HostByRange() {
	m := s.Platform.Machines
	per := (s.numNodes + m - 1) / m
	for v := range s.HostMachine {
		h := v / per
		if h >= m {
			h = m - 1
		}
		s.HostMachine[v] = int32(h)
	}
}

// HostByPartition places each node's feature on the machine hosting
// its partition's device (the SNP/DNP-aware layout). assign maps node
// -> device.
func (s *Store) HostByPartition(assign []int32) {
	for v, d := range assign {
		s.HostMachine[v] = int32(s.Platform.MachineOf(int(d)))
	}
}

// ConfigureCache installs the cache list for device dev.
func (s *Store) ConfigureCache(dev int, nodes []graph.NodeID) {
	bits := s.cached[dev]
	for i := range bits {
		bits[i] = 0
	}
	for _, v := range nodes {
		bits[v>>6] |= 1 << (uint(v) & 63)
	}
	s.cachedLists[dev] = nodes
}

// CachedList returns the configured cache list of dev.
func (s *Store) CachedList(dev int) []graph.NodeID { return s.cachedLists[dev] }

// ConfigureCPUCache replicates the given nodes' features into machine
// m's CPU memory, so its GPUs read them locally instead of remotely.
func (s *Store) ConfigureCPUCache(m int, nodes []graph.NodeID) {
	if s.cpuCached == nil {
		s.cpuCached = make([][]uint64, s.Platform.Machines)
	}
	words := (s.numNodes + 63) / 64
	bits := make([]uint64, words)
	for _, v := range nodes {
		bits[v>>6] |= 1 << (uint(v) & 63)
	}
	s.cpuCached[m] = bits
}

// isCPUCached reports whether machine m replicates v.
func (s *Store) isCPUCached(m int, v graph.NodeID) bool {
	if s.cpuCached == nil || s.cpuCached[m] == nil {
		return false
	}
	return s.cpuCached[m][v>>6]&(1<<(uint(v)&63)) != 0
}

// IsCached reports whether dev caches v.
func (s *Store) IsCached(dev int, v graph.NodeID) bool {
	return s.cached[dev][v>>6]&(1<<(uint(v)&63)) != 0
}

// Locate applies the paper's position rules for device dev reading v:
// own cache, then peer GPU (NVLink only), then local CPU, then remote.
func (s *Store) Locate(dev int, v graph.NodeID) Location {
	if s.IsCached(dev, v) {
		return LocGPU
	}
	if s.Platform.HasNVLink {
		m := s.Platform.MachineOf(dev)
		lo := m * s.Platform.GPUsPerMachine
		for d := lo; d < lo+s.Platform.GPUsPerMachine; d++ {
			if d != dev && s.IsCached(d, v) {
				return LocPeerGPU
			}
		}
	}
	m := s.Platform.MachineOf(dev)
	if int(s.HostMachine[v]) == m || s.isCPUCached(m, v) {
		return LocLocalCPU
	}
	return LocRemoteCPU
}

// LoadStats summarizes one Load call.
type LoadStats struct {
	// Nodes[loc] counts reads served by each location.
	Nodes [numLocations]int64
	// Bytes[loc] counts bytes moved from each location.
	Bytes [numLocations]int64
	// Seconds is the simulated time charged.
	Seconds float64
}

// Add merges o into st.
func (st *LoadStats) Add(o LoadStats) {
	for i := range st.Nodes {
		st.Nodes[i] += o.Nodes[i]
		st.Bytes[i] += o.Bytes[i]
	}
	st.Seconds += o.Seconds
}

// locLink maps a location to the platform link it uses.
func locLink(loc Location) hardware.LinkKind {
	switch loc {
	case LocGPU:
		return hardware.LinkGPUMem
	case LocPeerGPU:
		return hardware.LinkNVLink
	case LocLocalCPU:
		return hardware.LinkPCIe
	default:
		return hardware.LinkNetwork
	}
}

// VolumeOnly computes the load statistics for dev reading nodes
// without charging time or moving data — the dry-run path the planner
// uses to estimate T_load.
func (s *Store) VolumeOnly(dev int, nodes []graph.NodeID) LoadStats {
	var st LoadStats
	perNode := int64(4 * s.LoadDim)
	for _, v := range nodes {
		loc := s.Locate(dev, v)
		st.Nodes[loc]++
		st.Bytes[loc] += perNode
	}
	return st
}

// chargeTime converts accumulated volumes into simulated seconds on
// dev's clock (stage StageLoad) and returns the seconds.
func (s *Store) chargeTime(dev *device.Device, st *LoadStats) {
	p := s.Platform
	var t float64
	for loc := Location(0); loc < numLocations; loc++ {
		if st.Bytes[loc] == 0 {
			continue
		}
		kind := locLink(loc)
		conc := 1
		if kind == hardware.LinkNetwork {
			conc = p.GPUsPerMachine
		}
		t += p.TransferTime(kind, st.Bytes[loc], conc)
	}
	st.Seconds = t
	dev.Charge(device.StageLoad, t)
}

// Charge accounts for device dev reading nodes — location volumes plus
// simulated load time — without materializing a gathered copy. The
// gather-fused kernels read the master feature matrix through the node
// list directly, so a load is pure accounting.
func (s *Store) Charge(dev *device.Device, nodes []graph.NodeID) LoadStats {
	st := s.VolumeOnly(dev.ID, nodes)
	s.chargeTime(dev, &st)
	return st
}

// Load gathers the features of nodes for device dev, charging
// simulated load time. In accounting mode (nil master features) only
// statistics are produced and the returned matrix is nil.
func (s *Store) Load(dev *device.Device, nodes []graph.NodeID) (*tensor.Matrix, LoadStats) {
	st := s.VolumeOnly(dev.ID, nodes)
	s.chargeTime(dev, &st)
	if s.Feats == nil {
		return nil, st
	}
	return tensor.Gather(s.Feats, nodes), st
}

// LoadDims gathers the column slice [dimLo, dimHi) of the requested
// nodes — NFP's per-device feature shard read. Accounting uses LoadDim
// (already set to the shard width under NFP).
func (s *Store) LoadDims(dev *device.Device, nodes []graph.NodeID, dimLo, dimHi int) (*tensor.Matrix, LoadStats) {
	st := s.VolumeOnly(dev.ID, nodes)
	s.chargeTime(dev, &st)
	if s.Feats == nil {
		return nil, st
	}
	out := tensor.New(len(nodes), dimHi-dimLo)
	for i, v := range nodes {
		copy(out.Row(i), s.Feats.Row(int(v))[dimLo:dimHi])
	}
	return out, st
}
