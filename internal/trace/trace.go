// Package trace renders the benchmark harness's outputs: stacked-bar
// epoch-time breakdowns (text form of the paper's Figures 1 and 8-11)
// and aligned tables.
package trace

import (
	"fmt"
	"strings"
)

// Seg is one stacked-bar segment.
type Seg struct {
	Name string
	Sec  float64
}

// Row is one bar: a labeled strategy run, optionally marked as APT's
// selection (the paper's red star).
type Row struct {
	Label    string
	Segments []Seg
	Marked   bool
	Note     string
}

// Total sums the row's segments.
func (r Row) Total() float64 {
	var t float64
	for _, s := range r.Segments {
		t += s.Sec
	}
	return t
}

// RenderBars draws rows as horizontal text bars scaled to the widest
// total, one character class per segment.
func RenderBars(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var maxTotal float64
	for _, r := range rows {
		if t := r.Total(); t > maxTotal {
			maxTotal = t
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	const width = 48
	glyphs := []byte{'#', '=', '-', '~', '.'}
	for _, r := range rows {
		star := " "
		if r.Marked {
			star = "*"
		}
		bar := make([]byte, 0, width)
		for i, s := range r.Segments {
			n := int(s.Sec / maxTotal * width)
			g := glyphs[i%len(glyphs)]
			for j := 0; j < n; j++ {
				bar = append(bar, g)
			}
		}
		fmt.Fprintf(&b, "  %s %-10s %-*s %8.4fs", star, r.Label, width, string(bar), r.Total())
		if r.Note != "" {
			fmt.Fprintf(&b, "  %s", r.Note)
		}
		b.WriteByte('\n')
	}
	if len(rows) > 0 && len(rows[0].Segments) > 0 {
		b.WriteString("    legend:")
		for i, s := range rows[0].Segments {
			fmt.Fprintf(&b, " %c=%s", glyphs[i%len(glyphs)], s.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTable renders an aligned text table.
func RenderTable(title string, headers []string, rows [][]string) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("  ")
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
