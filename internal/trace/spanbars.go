package trace

import "repro/internal/obs"

// Second renderer over span data: the same stacked text bars the
// benchmark reports use, but computed from an observability span
// collector instead of EpochStats — one bar per track, one segment per
// stage, segment length = the stage's total span time on that track.
// The Chrome trace answers "when did it run"; these bars answer "how
// much, per device" in plain text.

// RowsFromSpans folds span tracks into stacked-bar rows. stageOrder
// fixes the segment order (and therefore the legend); stages not
// listed append in first-appearance order, so nil renders everything.
func RowsFromSpans(tracks []*obs.Track, stageOrder []string) []Row {
	rows := make([]Row, 0, len(tracks))
	for _, tr := range tracks {
		totals := map[string]float64{}
		order := append([]string(nil), stageOrder...)
		for _, s := range tr.Spans() {
			if _, seen := totals[s.Stage]; !seen && !containsStage(order, s.Stage) {
				order = append(order, s.Stage)
			}
			totals[s.Stage] += s.Dur
		}
		row := Row{Label: tr.Name}
		for _, stage := range order {
			if sec, ok := totals[stage]; ok {
				row.Segments = append(row.Segments, Seg{Name: stage, Sec: sec})
			}
		}
		if len(row.Segments) > 0 {
			rows = append(rows, row)
		}
	}
	return rows
}

func containsStage(order []string, stage string) bool {
	for _, s := range order {
		if s == stage {
			return true
		}
	}
	return false
}

// RenderSpanBars is RowsFromSpans piped into RenderBars: the text-bar
// view of a collector, stage order matching the engine's stages.
func RenderSpanBars(title string, c *obs.Collector, stageOrder []string) string {
	return RenderBars(title, RowsFromSpans(c.Tracks(), stageOrder))
}
