package trace

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestRenderBars(t *testing.T) {
	rows := []Row{
		{Label: "GDP", Marked: true, Segments: []Seg{{"sampling", 1}, {"loading", 2}, {"training", 1}}},
		{Label: "SNP", Segments: []Seg{{"sampling", 2}, {"loading", 0.5}, {"training", 1.5}}, Note: "[OOM]"},
	}
	out := RenderBars("title", rows)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* GDP") {
		t.Error("missing star on marked row")
	}
	if !strings.Contains(out, "[OOM]") {
		t.Error("missing note")
	}
	if !strings.Contains(out, "legend:") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "4.0000s") {
		t.Error("missing total")
	}
	// The largest row should reach close to full width.
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Error("missing bar glyphs")
	}
}

func TestRenderBarsEmpty(t *testing.T) {
	if out := RenderBars("t", nil); !strings.Contains(out, "t") {
		t.Error("empty rows should still render title")
	}
}

func TestRowTotal(t *testing.T) {
	r := Row{Segments: []Seg{{"a", 1.5}, {"b", 2.5}}}
	if r.Total() != 4 {
		t.Errorf("Total = %v", r.Total())
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable("tbl", []string{"col1", "verylongheader"}, [][]string{
		{"a", "b"},
		{"ccccssss", "d"},
	})
	if !strings.Contains(out, "tbl") || !strings.Contains(out, "verylongheader") {
		t.Error("missing title or headers")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Alignment: all data lines should have the same column start.
	if !strings.Contains(out, "ccccssss") {
		t.Error("missing cell")
	}
}

func TestRenderTableNoTitle(t *testing.T) {
	out := RenderTable("", []string{"x"}, [][]string{{"1"}})
	if strings.HasPrefix(out, "\n") {
		t.Error("leading newline with empty title")
	}
}

func TestRowsFromSpans(t *testing.T) {
	c := obs.NewCollector()
	dev := c.AddTrack("device", "dev0")
	dev.Emit("sample", 0, 0, 1.0, 0)
	dev.Emit("train", 0, 1.0, 2.0, 0)
	dev.Emit("sample", 1, 3.0, 0.5, 0)
	empty := c.AddTrack("device", "dev1")
	_ = empty

	rows := RowsFromSpans(c.Tracks(), []string{"sample", "train"})
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1 (empty track dropped)", len(rows))
	}
	r := rows[0]
	if r.Label != "dev0" || len(r.Segments) != 2 {
		t.Fatalf("row = %+v", r)
	}
	if r.Segments[0].Name != "sample" || r.Segments[0].Sec != 1.5 {
		t.Errorf("sample segment = %+v", r.Segments[0])
	}
	if r.Segments[1].Name != "train" || r.Segments[1].Sec != 2.0 {
		t.Errorf("train segment = %+v", r.Segments[1])
	}
	out := RenderSpanBars("spans", c, nil)
	if !strings.Contains(out, "dev0") || !strings.Contains(out, "legend") {
		t.Errorf("bad render:\n%s", out)
	}
}
