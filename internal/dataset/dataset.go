// Package dataset provides the synthetic stand-ins for the paper's
// evaluation graphs (Table 2): OGBN-Papers100M, Friendster, and
// IGB260M. Real graphs of 10^8 nodes are not loadable here, so each
// preset is a laptop-scale RMAT graph whose *node-access skewness* —
// the property the paper shows determines the optimal strategy
// (Table 3) — is tuned to match the original's character: PS highly
// skewed, FS scattered, IM intermediate. Feature dimensions follow
// Table 2 (128 / 256 / 128).
package dataset

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Spec describes a synthetic dataset.
type Spec struct {
	// Name and Abbr follow the paper's naming.
	Name string
	Abbr string
	// NumNodes and AvgDegree size the graph (scaled down ~1000x from
	// the paper's originals, preserving average degree order).
	NumNodes  int
	AvgDegree int
	// FeatDim matches the paper's Table 2.
	FeatDim int
	// Classes is the label count.
	Classes int
	// SkewA is the RMAT quadrant weight controlling degree/access skew
	// (0.25 = uniform, larger = more skewed).
	SkewA float64
	// HomophilyDegree adds this many random same-class edges per node,
	// giving neighborhoods the label purity of real citation/social
	// graphs so the classification task is learnable. Zero disables.
	HomophilyDegree int
	// TrainFraction of nodes become training seeds.
	TrainFraction float64
	// Seed drives generation.
	Seed uint64
}

// Dataset is a materialized Spec.
type Dataset struct {
	Spec
	Graph *graph.Graph
	// Feats is nil unless built with features (accounting-mode
	// benchmarks skip them).
	Feats      *tensor.Matrix
	Labels     []int32
	TrainSeeds []graph.NodeID
	TestSeeds  []graph.NodeID
}

// FeatureBytes is the total input-feature footprint, the reference for
// cache-size fractions.
func (d *Dataset) FeatureBytes() int64 {
	return int64(d.NumNodes) * int64(d.FeatDim) * 4
}

// CacheBytesFraction converts a cache fraction (of total feature
// bytes) into a per-GPU cache budget. The paper's default — 4 GB per
// T4 against 52.9-128 GB of features — corresponds to roughly 3-8%.
func (d *Dataset) CacheBytesFraction(frac float64) int64 {
	return int64(frac * float64(d.FeatureBytes()))
}

// Presets returns the three evaluation datasets at the given scale
// multiplier (1.0 = default laptop scale).
func Presets(scale float64) []Spec {
	n := func(base int) int { return int(float64(base) * scale) }
	return []Spec{
		{
			Name: "papers-sim", Abbr: "PS",
			NumNodes: n(220_000), AvgDegree: 24, FeatDim: 128, Classes: 32,
			SkewA: 0.72, HomophilyDegree: 5, TrainFraction: 0.08, Seed: 1001,
		},
		{
			Name: "friendster-sim", Abbr: "FS",
			NumNodes: n(130_000), AvgDegree: 28, FeatDim: 256, Classes: 32,
			SkewA: 0.45, HomophilyDegree: 8, TrainFraction: 0.08, Seed: 1002,
		},
		{
			Name: "igb-sim", Abbr: "IM",
			NumNodes: n(260_000), AvgDegree: 20, FeatDim: 128, Classes: 32,
			SkewA: 0.57, HomophilyDegree: 6, TrainFraction: 0.08, Seed: 1003,
		},
	}
}

// ByAbbr finds a preset by its abbreviation.
func ByAbbr(abbr string, scale float64) (Spec, error) {
	for _, s := range Presets(scale) {
		if s.Abbr == abbr || s.Name == abbr {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q", abbr)
}

// Build materializes a spec. withFeatures additionally synthesizes
// label-correlated features (needed only for real-mode training).
func Build(spec Spec, withFeatures bool) *Dataset {
	g := graph.RMAT(graph.RMATConfig{
		GenerateConfig: graph.GenerateConfig{
			NumNodes: spec.NumNodes, AvgDegree: spec.AvgDegree, Seed: spec.Seed,
		},
		A: spec.SkewA,
		B: (1 - spec.SkewA) / 3,
		C: (1 - spec.SkewA) / 3,
	})
	d := &Dataset{Spec: spec}
	rng := graph.NewRNG(spec.Seed ^ 0xfeed)
	n := spec.NumNodes

	// Scatter RMAT's low-ID hub concentration uniformly over the ID
	// space before assigning class blocks: real graphs' hubs spread
	// across communities (and hence METIS partitions), instead of all
	// landing in one partition and turning its device into a hotspot.
	remap := rng.Perm(n)
	{
		b := graph.NewBuilder(n)
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				b.AddEdge(remap[u], remap[v])
			}
		}
		g = b.Build(true)
	}

	// Labels: contiguous ID blocks map to classes.
	d.Labels = make([]int32, n)
	per := (n + spec.Classes - 1) / spec.Classes
	for v := 0; v < n; v++ {
		d.Labels[v] = int32(v / per)
	}

	// Homophily: same-class edges make neighborhoods label-informative
	// and give the graph the community structure real citation/social
	// graphs have (METIS-style partitioners depend on it, Fig. 11).
	// Targets within a class block are drawn proportionally to RMAT
	// degree, so the extra mass lands on the hubs the access skew
	// already concentrates on instead of diluting it.
	if spec.HomophilyDegree > 0 {
		b := graph.NewBuilder(n)
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				b.AddEdge(u, graph.NodeID(v))
			}
		}
		// Per-block degree-endpoint pools: sampling a uniform element
		// picks a block member proportionally to its RMAT degree.
		pools := make([][]graph.NodeID, spec.Classes)
		for v := 0; v < n; v++ {
			c := int32(v) / int32(per)
			deg := g.Degree(graph.NodeID(v))
			for i := 0; i < deg; i++ {
				pools[c] = append(pools[c], graph.NodeID(v))
			}
		}
		for v := 0; v < n; v++ {
			c := int(d.Labels[v])
			base := c * per
			hi := base + per
			if hi > n {
				hi = n
			}
			for i := 0; i < spec.HomophilyDegree; i++ {
				var u graph.NodeID
				// 20% uniform exploration keeps blocks connected; 80%
				// degree-proportional attachment targets block hubs.
				if len(pools[c]) == 0 || rng.Float64() < 0.2 {
					u = graph.NodeID(base + rng.Intn(hi-base))
				} else {
					u = pools[c][rng.Intn(len(pools[c]))]
				}
				if u != graph.NodeID(v) {
					b.AddUndirected(u, graph.NodeID(v))
				}
			}
		}
		g = b.Build(true)
	}
	d.Graph = g

	// Train/test split over a TrainFraction sample of nodes.
	seedCount := int(spec.TrainFraction * float64(n))
	perm := rng.Perm(n)
	d.TrainSeeds = make([]graph.NodeID, seedCount)
	copy(d.TrainSeeds, perm[:seedCount])
	testCount := seedCount / 4
	d.TestSeeds = make([]graph.NodeID, testCount)
	copy(d.TestSeeds, perm[seedCount:seedCount+testCount])
	sort.Slice(d.TrainSeeds, func(i, j int) bool { return d.TrainSeeds[i] < d.TrainSeeds[j] })
	sort.Slice(d.TestSeeds, func(i, j int) bool { return d.TestSeeds[i] < d.TestSeeds[j] })

	if withFeatures {
		d.Feats = tensor.New(n, spec.FeatDim)
		for v := 0; v < n; v++ {
			row := d.Feats.Row(v)
			for j := range row {
				row[j] = 0.3 * rng.NormFloat32()
			}
			// Inject the label signal into a class-specific coordinate.
			row[int(d.Labels[v])%spec.FeatDim] += 1
		}
	}
	return d
}

// WithDims returns a copy of the spec with a different input feature
// dimension (the paper's Figure 1 input-dimension sweep).
func (s Spec) WithDims(featDim int) Spec {
	s.FeatDim = featDim
	return s
}
