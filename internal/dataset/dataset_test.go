package dataset

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sample"
)

func TestPresetsBuild(t *testing.T) {
	for _, spec := range Presets(0.05) { // tiny scale for test speed
		d := Build(spec, false)
		if err := d.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Abbr, err)
		}
		if len(d.TrainSeeds) == 0 || len(d.TestSeeds) == 0 {
			t.Errorf("%s: empty splits", spec.Abbr)
		}
		if d.Feats != nil {
			t.Errorf("%s: features built when not requested", spec.Abbr)
		}
		for _, s := range d.TrainSeeds {
			if int(s) >= d.Graph.NumNodes() {
				t.Fatalf("%s: seed out of range", spec.Abbr)
			}
		}
	}
}

func TestFeaturesCarryLabelSignal(t *testing.T) {
	spec := Presets(0.02)[0]
	d := Build(spec, true)
	if d.Feats == nil || d.Feats.Rows != d.Graph.NumNodes() || d.Feats.Cols != spec.FeatDim {
		t.Fatal("feature shape wrong")
	}
	// The label coordinate should be elevated on average.
	var sig, other float64
	n := 0
	for v := 0; v < d.Graph.NumNodes(); v += 7 {
		c := int(d.Labels[v]) % spec.FeatDim
		sig += float64(d.Feats.At(v, c))
		other += float64(d.Feats.At(v, (c+1)%spec.FeatDim))
		n++
	}
	if sig/float64(n) < other/float64(n)+0.5 {
		t.Errorf("label signal weak: %v vs %v", sig/float64(n), other/float64(n))
	}
}

// TestAccessSkewOrdering verifies the property the whole evaluation
// hinges on: PS accesses are the most concentrated, FS the most
// scattered, IM in between (paper Table 3).
func TestAccessSkewOrdering(t *testing.T) {
	top1 := map[string]float64{}
	for _, spec := range Presets(0.10) {
		d := Build(spec, false)
		freq := make([]int64, d.Graph.NumNodes())
		s := sample.NewSampler(d.Graph, sample.Config{Fanouts: []int{10, 10, 10}}, graph.NewRNG(3))
		for lo := 0; lo < len(d.TrainSeeds); lo += 512 {
			hi := lo + 512
			if hi > len(d.TrainSeeds) {
				hi = len(d.TrainSeeds)
			}
			mb := s.Sample(d.TrainSeeds[lo:hi])
			sample.CountLayer1SrcAccesses(freq, mb)
		}
		buckets := graph.AccessSkew(freq)
		top1[spec.Abbr] = buckets[0].AccessRatio
	}
	t.Logf("top-1%% access ratios: PS=%.3f IM=%.3f FS=%.3f", top1["PS"], top1["IM"], top1["FS"])
	if !(top1["PS"] > top1["IM"] && top1["IM"] > top1["FS"]) {
		t.Errorf("skew ordering violated: PS=%.3f IM=%.3f FS=%.3f (want PS > IM > FS)",
			top1["PS"], top1["IM"], top1["FS"])
	}
	if top1["PS"] < 0.12 {
		t.Errorf("PS top-1%% = %.3f, want strongly skewed (> 0.12 at test scale)", top1["PS"])
	}
	if top1["FS"] > 0.10 {
		t.Errorf("FS top-1%% = %.3f, want scattered (< 0.10 at test scale)", top1["FS"])
	}
}

func TestByAbbr(t *testing.T) {
	if _, err := ByAbbr("PS", 1); err != nil {
		t.Error(err)
	}
	if _, err := ByAbbr("friendster-sim", 1); err != nil {
		t.Error(err)
	}
	if _, err := ByAbbr("nope", 1); err == nil {
		t.Error("accepted unknown dataset")
	}
}

func TestCacheBytesFraction(t *testing.T) {
	spec := Presets(0.02)[0]
	d := Build(spec, false)
	if d.CacheBytesFraction(0.5)*2 != d.FeatureBytes() {
		t.Error("fraction math wrong")
	}
}

func TestWithDims(t *testing.T) {
	s := Presets(1)[0].WithDims(64)
	if s.FeatDim != 64 {
		t.Error("WithDims failed")
	}
	if Presets(1)[0].FeatDim == 64 {
		t.Error("WithDims mutated preset")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := Presets(0.02)[1]
	a, b := Build(spec, false), Build(spec, false)
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Error("builds differ")
	}
	for i := range a.TrainSeeds {
		if a.TrainSeeds[i] != b.TrainSeeds[i] {
			t.Fatal("seed splits differ")
		}
	}
}

func TestHomophilyIncreasesLabelPurity(t *testing.T) {
	spec := Presets(0.03)[1]
	spec.Classes = 8
	spec.HomophilyDegree = 0
	plain := Build(spec, false)
	spec2 := spec
	spec2.HomophilyDegree = 8
	homo := Build(spec2, false)
	purity := func(d *Dataset) float64 {
		same, total := 0, 0
		for v := 0; v < d.Graph.NumNodes(); v += 3 {
			for _, u := range d.Graph.Neighbors(int32(v)) {
				if d.Labels[u] == d.Labels[v] {
					same++
				}
				total++
			}
		}
		return float64(same) / float64(total+1)
	}
	pp, ph := purity(plain), purity(homo)
	if ph <= pp+0.1 {
		t.Errorf("homophily edges did not raise label purity: %.3f -> %.3f", pp, ph)
	}
	if homo.Graph.NumEdges() <= plain.Graph.NumEdges() {
		t.Error("homophily edges missing")
	}
}

func TestTrainTestSplitsDisjoint(t *testing.T) {
	d := Build(Presets(0.03)[0], false)
	seen := map[int32]bool{}
	for _, s := range d.TrainSeeds {
		seen[s] = true
	}
	for _, s := range d.TestSeeds {
		if seen[s] {
			t.Fatalf("seed %d in both splits", s)
		}
	}
}
