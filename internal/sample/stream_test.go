package sample

import (
	"testing"

	"repro/internal/graph"
)

func TestRequestSetCoalesces(t *testing.T) {
	rs := NewRequestSet()
	a := rs.Add([]graph.NodeID{5, 9, 5})
	b := rs.Add([]graph.NodeID{9, 2})
	if rs.NumRequests() != 2 {
		t.Fatalf("NumRequests = %d", rs.NumRequests())
	}
	wantSeeds := []graph.NodeID{5, 9, 2}
	if got := rs.Seeds(); len(got) != len(wantSeeds) {
		t.Fatalf("seeds = %v, want %v", got, wantSeeds)
	} else {
		for i := range wantSeeds {
			if got[i] != wantSeeds[i] {
				t.Fatalf("seeds = %v, want %v", got, wantSeeds)
			}
		}
	}
	if rows := rs.Rows(a); rows[0] != 0 || rows[1] != 1 || rows[2] != 0 {
		t.Fatalf("rows(a) = %v", rows)
	}
	if rows := rs.Rows(b); rows[0] != 1 || rows[1] != 2 {
		t.Fatalf("rows(b) = %v", rows)
	}
	if rs.NumSeeds() != 3 {
		t.Fatalf("NumSeeds = %d", rs.NumSeeds())
	}
}

func TestRequestSetReset(t *testing.T) {
	rs := NewRequestSet()
	rs.Add([]graph.NodeID{1, 2, 3})
	rs.Reset()
	if rs.NumRequests() != 0 || rs.NumSeeds() != 0 {
		t.Fatalf("reset left %d requests, %d seeds", rs.NumRequests(), rs.NumSeeds())
	}
	// Seeds added before Reset must not leak into the next batch's dedup.
	rs.Add([]graph.NodeID{2})
	if rows := rs.Rows(0); rows[0] != 0 {
		t.Fatalf("rows after reset = %v", rows)
	}
	if got := rs.Seeds(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("seeds after reset = %v", got)
	}
}
