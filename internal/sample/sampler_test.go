package sample

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 500, AvgDegree: 8, Seed: 1})
	return g
}

func TestSampleStructure(t *testing.T) {
	g := testGraph(t)
	s := NewSampler(g, Config{Fanouts: []int{10, 10, 10}}, graph.NewRNG(1))
	seeds := []graph.NodeID{3, 77, 200, 444}
	mb := s.Sample(seeds)
	if err := mb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(mb.Blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(mb.Blocks))
	}
	top := mb.Blocks[2]
	if top.NumDst() != 4 {
		t.Errorf("top dst = %d, want 4", top.NumDst())
	}
	// Fanout bound: each dst has at most 10 sampled neighbors.
	for _, b := range mb.Blocks {
		for i := range b.Dst {
			if d := b.DstDegree(i); d > 10 {
				t.Errorf("dst degree %d exceeds fanout 10", d)
			}
		}
	}
}

func TestSampleFanoutRespectsDegree(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	g := b.Build(true)
	s := NewSampler(g, Config{Fanouts: []int{10}}, graph.NewRNG(1))
	mb := s.Sample([]graph.NodeID{0})
	blk := mb.Layer1()
	if blk.DstDegree(0) != 2 {
		t.Errorf("degree = %d, want all 2 neighbors when degree < fanout", blk.DstDegree(0))
	}
}

func TestSampleDistinctNeighbors(t *testing.T) {
	g := testGraph(t)
	s := NewSampler(g, Config{Fanouts: []int{5}}, graph.NewRNG(2))
	f := func(seedSel uint8) bool {
		v := graph.NodeID(int(seedSel) % g.NumNodes())
		mb := s.Sample([]graph.NodeID{v})
		blk := mb.Layer1()
		seen := map[int32]bool{}
		for _, si := range blk.DstSources(0) {
			if seen[si] {
				return false
			}
			seen[si] = true
		}
		return len(seen) <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSampleSubsetOfTrueNeighbors(t *testing.T) {
	g := testGraph(t)
	s := NewSampler(g, Config{Fanouts: []int{4}}, graph.NewRNG(3))
	for v := graph.NodeID(0); v < 50; v++ {
		mb := s.Sample([]graph.NodeID{v})
		blk := mb.Layer1()
		truth := map[graph.NodeID]bool{}
		for _, u := range g.Neighbors(v) {
			truth[u] = true
		}
		for _, si := range blk.DstSources(0) {
			if !truth[blk.Src[si]] {
				t.Fatalf("sampled non-neighbor %d of %d", blk.Src[si], v)
			}
		}
	}
}

func TestIncludeDstInSrc(t *testing.T) {
	g := testGraph(t)
	s := NewSampler(g, Config{Fanouts: []int{5, 5}, IncludeDstInSrc: true}, graph.NewRNG(4))
	mb := s.Sample([]graph.NodeID{1, 2, 3})
	for _, b := range mb.Blocks {
		for i, v := range b.Dst {
			if b.Src[i] != v {
				t.Fatalf("src[%d] = %d, want dst %d first", i, b.Src[i], v)
			}
		}
	}
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	g := testGraph(t)
	a := NewSampler(g, Config{Fanouts: []int{10, 10}}, graph.NewRNG(9)).Sample([]graph.NodeID{5, 6})
	b := NewSampler(g, Config{Fanouts: []int{10, 10}}, graph.NewRNG(9)).Sample([]graph.NodeID{5, 6})
	if len(a.Layer1().Src) != len(b.Layer1().Src) {
		t.Fatal("same-seed samples differ in size")
	}
	for i := range a.Layer1().Src {
		if a.Layer1().Src[i] != b.Layer1().Src[i] {
			t.Fatal("same-seed samples differ")
		}
	}
}

func TestSrcDeduplicated(t *testing.T) {
	g := testGraph(t)
	s := NewSampler(g, Config{Fanouts: []int{10, 10}}, graph.NewRNG(5))
	mb := s.Sample([]graph.NodeID{10, 11, 12, 13, 14})
	for _, b := range mb.Blocks {
		seen := map[graph.NodeID]bool{}
		for _, u := range b.Src {
			if seen[u] {
				t.Fatalf("duplicate src node %d", u)
			}
			seen[u] = true
		}
	}
}

func TestSplitEven(t *testing.T) {
	seeds := make([]graph.NodeID, 103)
	for i := range seeds {
		seeds[i] = graph.NodeID(i)
	}
	plan := SplitEven(seeds, 4, graph.NewRNG(1))
	total := 0
	seen := map[graph.NodeID]bool{}
	for _, ws := range plan.PerWorker {
		total += len(ws)
		for _, s := range ws {
			if seen[s] {
				t.Fatalf("seed %d assigned twice", s)
			}
			seen[s] = true
		}
	}
	if total != 103 {
		t.Errorf("total seeds = %d, want 103", total)
	}
	if nb := plan.NumBatches(10); nb != 3 {
		t.Errorf("NumBatches = %d, want 3 (27 max per worker / 10)", nb)
	}
}

func TestSplitByOwner(t *testing.T) {
	seeds := []graph.NodeID{0, 1, 2, 3, 4, 5}
	assign := []int32{1, 0, 1, 0, 1, 1}
	plan := SplitByOwner(seeds, assign, 2, graph.NewRNG(1))
	if len(plan.PerWorker[0]) != 2 || len(plan.PerWorker[1]) != 4 {
		t.Fatalf("owner split sizes = %d/%d, want 2/4",
			len(plan.PerWorker[0]), len(plan.PerWorker[1]))
	}
	for w, ws := range plan.PerWorker {
		for _, s := range ws {
			if assign[s] != int32(w) {
				t.Errorf("seed %d on worker %d, owner %d", s, w, assign[s])
			}
		}
	}
}

func TestBatchSlicing(t *testing.T) {
	plan := &SeedPlan{PerWorker: [][]graph.NodeID{{1, 2, 3, 4, 5}, {6, 7}}}
	if got := plan.Batch(0, 1, 2); len(got) != 2 || got[0] != 3 {
		t.Errorf("Batch(0,1,2) = %v", got)
	}
	if got := plan.Batch(1, 1, 2); got != nil {
		t.Errorf("Batch(1,1,2) = %v, want nil (worker exhausted)", got)
	}
	if got := plan.Batch(0, 2, 2); len(got) != 1 {
		t.Errorf("tail batch = %v, want single element", got)
	}
}

func TestCountLayer1SrcAccesses(t *testing.T) {
	g := testGraph(t)
	s := NewSampler(g, Config{Fanouts: []int{10, 10}}, graph.NewRNG(6))
	freq := make([]int64, g.NumNodes())
	mb := s.Sample([]graph.NodeID{1, 2, 3})
	CountLayer1SrcAccesses(freq, mb)
	var total int64
	for _, f := range freq {
		total += f
	}
	if total != mb.Layer1().NumEdges() {
		t.Errorf("access total = %d, want %d (one per sampled edge)", total, mb.Layer1().NumEdges())
	}
}

func TestZeroFanoutLayer(t *testing.T) {
	g := testGraph(t)
	s := NewSampler(g, Config{Fanouts: []int{0}}, graph.NewRNG(7))
	mb := s.Sample([]graph.NodeID{1})
	if mb.Layer1().NumEdges() != 0 {
		t.Errorf("fanout 0 produced %d edges", mb.Layer1().NumEdges())
	}
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
}
