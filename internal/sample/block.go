// Package sample implements mini-batch neighbor sampling for GNN
// training: node-wise fanout sampling (the paper's Figure 2 scheme) and
// the bipartite Block representation consumed by the unified execution
// engine.
package sample

import (
	"fmt"

	"repro/internal/graph"
)

// Block is a bipartite computation graph for one GNN layer (a
// message-flow graph): embeddings of Dst nodes are computed by
// aggregating messages from Src nodes along Edges. IDs are global graph
// node IDs; edges reference Src by position.
type Block struct {
	// Dst lists destination nodes (deduplicated).
	Dst []graph.NodeID
	// Src lists source nodes (deduplicated). If the block was sampled
	// with IncludeDstInSrc, Src[:len(Dst)] == Dst.
	Src []graph.NodeID
	// EdgePtr/SrcIdx form a CSR over destinations: the sources feeding
	// Dst[i] are Src[SrcIdx[EdgePtr[i]:EdgePtr[i+1]]].
	EdgePtr []int64
	SrcIdx  []int32
}

// NumDst returns the destination count.
func (b *Block) NumDst() int { return len(b.Dst) }

// NumSrc returns the source count.
func (b *Block) NumSrc() int { return len(b.Src) }

// NumEdges returns the edge count.
func (b *Block) NumEdges() int64 { return b.EdgePtr[len(b.EdgePtr)-1] }

// DstDegree returns the in-degree of destination i.
func (b *Block) DstDegree(i int) int {
	return int(b.EdgePtr[i+1] - b.EdgePtr[i])
}

// DstSources returns the positions (into Src) of the sources of
// destination i. The slice aliases block storage.
func (b *Block) DstSources(i int) []int32 {
	return b.SrcIdx[b.EdgePtr[i]:b.EdgePtr[i+1]]
}

// Validate checks structural invariants.
func (b *Block) Validate() error {
	if len(b.EdgePtr) != len(b.Dst)+1 {
		return fmt.Errorf("sample: edgeptr len %d, want %d", len(b.EdgePtr), len(b.Dst)+1)
	}
	if b.EdgePtr[0] != 0 {
		return fmt.Errorf("sample: edgeptr[0] != 0")
	}
	for i := 1; i < len(b.EdgePtr); i++ {
		if b.EdgePtr[i] < b.EdgePtr[i-1] {
			return fmt.Errorf("sample: edgeptr not monotone at %d", i)
		}
	}
	if b.EdgePtr[len(b.Dst)] != int64(len(b.SrcIdx)) {
		return fmt.Errorf("sample: edgeptr end %d != len(srcidx) %d", b.EdgePtr[len(b.Dst)], len(b.SrcIdx))
	}
	for i, s := range b.SrcIdx {
		if s < 0 || int(s) >= len(b.Src) {
			return fmt.Errorf("sample: srcidx[%d] = %d out of range", i, s)
		}
	}
	return nil
}

// MiniBatch is the sampled computation graph for one batch of seeds.
// Blocks are ordered bottom-up: Blocks[0] is the first layer of
// computation (the paper's "layer furthest from the seeds", whose Src
// nodes need input features) and Blocks[len-1].Dst are the seeds.
// Invariant: Blocks[l].Dst equals Blocks[l+1].Src element-wise.
type MiniBatch struct {
	Seeds  []graph.NodeID
	Blocks []*Block
}

// Layer1 returns the bottom block (the layer all four parallelization
// strategies target).
func (m *MiniBatch) Layer1() *Block { return m.Blocks[0] }

// Validate checks the cross-block stitching invariant.
func (m *MiniBatch) Validate() error {
	for l, b := range m.Blocks {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("block %d: %w", l, err)
		}
	}
	top := m.Blocks[len(m.Blocks)-1]
	if len(top.Dst) != len(m.Seeds) {
		return fmt.Errorf("sample: top block has %d dst, want %d seeds", len(top.Dst), len(m.Seeds))
	}
	for i, s := range m.Seeds {
		if top.Dst[i] != s {
			return fmt.Errorf("sample: top dst[%d] = %d, want seed %d", i, top.Dst[i], s)
		}
	}
	for l := 0; l+1 < len(m.Blocks); l++ {
		lo, hi := m.Blocks[l], m.Blocks[l+1]
		if len(lo.Dst) != len(hi.Src) {
			return fmt.Errorf("sample: blocks %d/%d dst/src mismatch: %d vs %d", l, l+1, len(lo.Dst), len(hi.Src))
		}
		for i := range lo.Dst {
			if lo.Dst[i] != hi.Src[i] {
				return fmt.Errorf("sample: blocks %d/%d stitching broken at %d", l, l+1, i)
			}
		}
	}
	return nil
}
