package sample

import (
	"repro/internal/graph"
)

// Method selects the graph-sampling algorithm. APT treats sampling as
// a black box (paper §4.1): any method producing bipartite blocks
// works with every parallelization strategy.
type Method int

// Sampling methods.
const (
	// NodeWise samples up to Fanouts[i] neighbors per destination
	// (GraphSAGE-style; the paper's default, Figure 2).
	NodeWise Method = iota
	// LayerWise samples a per-layer budget of Fanouts[i] x |dst| nodes
	// from the union of the destinations' neighbors, with probability
	// proportional to degree (a simplified FastGCN/LADIES scheme), and
	// keeps all edges into the sampled set.
	LayerWise
	// Full takes every neighbor (no sampling); Fanouts still sets the
	// number of layers. Deterministic — useful for evaluation and
	// exact-equivalence tests.
	Full
)

// Config configures graph sampling.
type Config struct {
	// Fanouts lists per-layer neighbor sample counts ordered from the
	// seed layer downward, matching the paper's notation: [10, 5] means
	// the layer adjacent to the seeds samples 10 neighbors and the next
	// (the first layer of computation) samples 5. Under LayerWise the
	// per-layer node budget is Fanouts[i] x |dst|.
	//
	// Internally blocks are produced bottom-up, so Fanouts is consumed
	// in reverse.
	Fanouts []int
	// Method selects the sampling algorithm.
	Method Method
	// IncludeDstInSrc adds every destination node to its block's source
	// list (self-inclusion). Required by attention models (GAT needs
	// the destination's own projection); plain GraphSAGE per the
	// paper's Eq. (1) leaves it off.
	IncludeDstInSrc bool
}

// Layers returns the model depth implied by the fanout vector.
func (c Config) Layers() int { return len(c.Fanouts) }

// Sampler draws sampled subgraphs from a data graph. A Sampler is not
// safe for concurrent use; create one per worker with rng.Split().
// The pipelined engine runs each worker's sampler on that worker's
// prefetch goroutine, which preserves this contract.
type Sampler struct {
	g   *graph.Graph
	cfg Config
	rng *graph.RNG

	// stamp/epoch is scratch for within-call set membership
	// (pickNeighbors' Floyd sampling, sampleLayerWise's chosen set).
	stamp []int32
	epoch int32
	// srcStamp/srcPos/srcGen is the per-layer dedup scratch: node u is
	// already in the block's src list iff srcStamp[u] == srcGen, at
	// position srcPos[u]. Bumping srcGen resets the map in O(1).
	srcStamp []int32
	srcPos   []int32
	srcGen   int32
	picks    []graph.NodeID
}

// NewSampler creates a sampler over g.
func NewSampler(g *graph.Graph, cfg Config, rng *graph.RNG) *Sampler {
	s := &Sampler{
		g:        g,
		cfg:      cfg,
		rng:      rng,
		stamp:    make([]int32, g.NumNodes()),
		srcStamp: make([]int32, g.NumNodes()),
		srcPos:   make([]int32, g.NumNodes()),
	}
	for i := range s.stamp {
		s.stamp[i] = -1
	}
	return s
}

// RNGState returns the sampler's RNG stream position for
// checkpointing. The stamp/generation scratch is deliberately NOT part
// of the state: it only encodes set membership within one Sample call
// and never influences which nodes are drawn, so a fresh sampler with
// the same RNG state produces identical batches.
func (s *Sampler) RNGState() [4]uint64 { return s.rng.State() }

// SetRNGState repositions the sampler's RNG at a state captured by
// RNGState; it reports false (and changes nothing) for the degenerate
// all-zero state.
func (s *Sampler) SetRNGState(st [4]uint64) bool { return s.rng.SetState(st) }

// nextSrcGen advances the dedup generation, clearing the scratch on
// the (practically unreachable) int32 wraparound.
func (s *Sampler) nextSrcGen() int32 {
	s.srcGen++
	if s.srcGen == int32(^uint32(0)>>1) { // MaxInt32
		for i := range s.srcStamp {
			s.srcStamp[i] = 0
		}
		s.srcGen = 1
	}
	return s.srcGen
}

// Sample builds the mini-batch computation graph for the given seeds.
func (s *Sampler) Sample(seeds []graph.NodeID) *MiniBatch {
	L := len(s.cfg.Fanouts)
	blocks := make([]*Block, L)
	dst := seeds
	for l := L - 1; l >= 0; l-- {
		fanout := s.cfg.Fanouts[L-1-l]
		var b *Block
		switch s.cfg.Method {
		case LayerWise:
			b = s.sampleLayerWise(dst, fanout*len(dst))
		case Full:
			b = s.sampleLayer(dst, int(^uint(0)>>1))
		default:
			b = s.sampleLayer(dst, fanout)
		}
		blocks[l] = b
		dst = b.Src
	}
	return &MiniBatch{Seeds: seeds, Blocks: blocks}
}

// newEdgePtr returns a pooled CSR pointer array for n destinations
// with the leading 0 in place; entries 1..n are written by the caller
// (both sampling paths assign every one).
func newEdgePtr(n int) []int64 {
	ep := int64Slices.get(n + 1)[:n+1]
	ep[0] = 0
	return ep
}

// sampleLayerWise draws up to `budget` nodes from the union of the
// destinations' neighborhoods, with probability proportional to each
// candidate's multiplicity in that union (a degree-weighted FastGCN
// scheme), then connects every destination to its sampled neighbors.
func (s *Sampler) sampleLayerWise(dst []graph.NodeID, budget int) *Block {
	b := &Block{Dst: dst, EdgePtr: newEdgePtr(len(dst))}
	// Candidate pool with multiplicity = how many destinations list u.
	pool := nodeSlices.get(budget * 2)
	defer nodeSlices.put(pool)
	for _, v := range dst {
		pool = append(pool, s.g.Neighbors(v)...)
	}
	b.Src = nodeSlices.get(budget)
	b.SrcIdx = int32Slices.get(budget)
	gen := s.nextSrcGen()
	addSrc := func(u graph.NodeID) int32 {
		if s.srcStamp[u] == gen {
			return s.srcPos[u]
		}
		p := int32(len(b.Src))
		b.Src = append(b.Src, u)
		s.srcStamp[u] = gen
		s.srcPos[u] = p
		return p
	}
	if s.cfg.IncludeDstInSrc {
		for _, v := range dst {
			addSrc(v)
		}
	}
	// Sample the pool by index; drawing uniform indices of the
	// multiplicity-weighted pool samples nodes with probability
	// proportional to their in-union degree. The chosen set lives in
	// the stamp scratch (pickNeighbors is not used on this path).
	s.epoch++
	chosenGen := s.epoch
	nChosen := 0
	if len(pool) <= budget {
		for _, u := range pool {
			if s.stamp[u] != chosenGen {
				s.stamp[u] = chosenGen
				nChosen++
			}
		}
	} else {
		for tries := 0; nChosen < budget && tries < budget*4; tries++ {
			if u := pool[s.rng.Intn(len(pool))]; s.stamp[u] != chosenGen {
				s.stamp[u] = chosenGen
				nChosen++
			}
		}
	}
	for i, v := range dst {
		for _, u := range s.g.Neighbors(v) {
			if s.stamp[u] == chosenGen {
				b.SrcIdx = append(b.SrcIdx, addSrc(u))
			}
		}
		b.EdgePtr[i+1] = int64(len(b.SrcIdx))
	}
	return b
}

// sampleLayer samples up to fanout neighbors (without replacement) for
// each destination and assembles the bipartite block.
func (s *Sampler) sampleLayer(dst []graph.NodeID, fanout int) *Block {
	b := &Block{
		Dst:     dst,
		EdgePtr: newEdgePtr(len(dst)),
	}
	// Edge capacity is exactly bounded: min(fanout, degree) per
	// destination. Under Full fanout is huge, so bound by degree sums
	// instead of multiplying.
	capHint := 0
	for _, v := range dst {
		d := len(s.g.Neighbors(v))
		if d > fanout {
			d = fanout
		}
		capHint += d
	}
	b.SrcIdx = int32Slices.get(capHint)
	b.Src = nodeSlices.get(capHint)
	// Position map: src node -> index in b.Src, held in the stamped
	// scratch arrays (O(1) reset between layers, no per-layer map).
	gen := s.nextSrcGen()
	addSrc := func(u graph.NodeID) int32 {
		if s.srcStamp[u] == gen {
			return s.srcPos[u]
		}
		p := int32(len(b.Src))
		b.Src = append(b.Src, u)
		s.srcStamp[u] = gen
		s.srcPos[u] = p
		return p
	}
	if s.cfg.IncludeDstInSrc {
		for _, v := range dst {
			addSrc(v)
		}
	}
	for i, v := range dst {
		picks := s.pickNeighbors(v, fanout)
		for _, u := range picks {
			b.SrcIdx = append(b.SrcIdx, addSrc(u))
		}
		b.EdgePtr[i+1] = int64(len(b.SrcIdx))
	}
	return b
}

// pickNeighbors samples min(fanout, degree) distinct neighbors of v.
// The returned slice is scratch owned by the sampler.
func (s *Sampler) pickNeighbors(v graph.NodeID, fanout int) []graph.NodeID {
	nb := s.g.Neighbors(v)
	d := len(nb)
	s.picks = s.picks[:0]
	if d <= fanout {
		s.picks = append(s.picks, nb...)
		return s.picks
	}
	// Floyd's algorithm for sampling fanout distinct indices from [0,d).
	s.epoch++
	chosen := s.picks
	for j := d - fanout; j < d; j++ {
		t := s.rng.Intn(j + 1)
		u := nb[t]
		if s.stamp[u] == s.epoch {
			u = nb[j]
		}
		s.stamp[u] = s.epoch
		chosen = append(chosen, u)
	}
	s.picks = chosen
	return s.picks
}
