package sample

import (
	"testing"

	"repro/internal/graph"
)

func TestLayerWiseStructure(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 500, AvgDegree: 8, Seed: 1})
	s := NewSampler(g, Config{Fanouts: []int{5, 5}, Method: LayerWise}, graph.NewRNG(1))
	seeds := []graph.NodeID{3, 77, 200, 444}
	mb := s.Sample(seeds)
	if err := mb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Budget bound: layer adjacent to seeds samples at most 5*4 nodes
	// (plus none from self-inclusion since it is off).
	top := mb.Blocks[1]
	if top.NumSrc() > 5*len(seeds) {
		t.Errorf("layer-wise src count %d exceeds budget %d", top.NumSrc(), 5*len(seeds))
	}
}

func TestLayerWiseEdgesAreTrueNeighbors(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 300, AvgDegree: 6, Seed: 2})
	s := NewSampler(g, Config{Fanouts: []int{4}, Method: LayerWise}, graph.NewRNG(3))
	mb := s.Sample([]graph.NodeID{1, 2, 3})
	blk := mb.Layer1()
	for i, v := range blk.Dst {
		truth := map[graph.NodeID]bool{}
		for _, u := range g.Neighbors(v) {
			truth[u] = true
		}
		for _, si := range blk.DstSources(i) {
			if !truth[blk.Src[si]] {
				t.Fatalf("layer-wise edge to non-neighbor %d of %d", blk.Src[si], v)
			}
		}
	}
}

func TestLayerWiseSharesSources(t *testing.T) {
	// Layer-wise sampling's point: destinations share one sampled node
	// set, so the union is bounded even with many destinations.
	g := graph.ErdosRenyi(graph.GenerateConfig{NumNodes: 2000, AvgDegree: 20, Seed: 4})
	seeds := make([]graph.NodeID, 100)
	for i := range seeds {
		seeds[i] = graph.NodeID(i * 17)
	}
	lw := NewSampler(g, Config{Fanouts: []int{4}, Method: LayerWise}, graph.NewRNG(5)).Sample(seeds)
	if got := lw.Layer1().NumSrc(); got > 4*len(seeds) {
		t.Errorf("layer-wise src %d exceeds budget %d", got, 4*len(seeds))
	}
	// Shared sources mean each sampled node serves several
	// destinations: edges well exceed the source count.
	if lw.Layer1().NumEdges() < int64(lw.Layer1().NumSrc())*3/2 {
		t.Errorf("layer-wise sampled nodes are not shared: %d edges over %d srcs",
			lw.Layer1().NumEdges(), lw.Layer1().NumSrc())
	}
}

func TestLayerWiseWithDstInSrc(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 200, AvgDegree: 6, Seed: 6})
	s := NewSampler(g, Config{Fanouts: []int{3, 3}, Method: LayerWise, IncludeDstInSrc: true}, graph.NewRNG(7))
	mb := s.Sample([]graph.NodeID{10, 20})
	for _, b := range mb.Blocks {
		for i, v := range b.Dst {
			if b.Src[i] != v {
				t.Fatal("dst-first ordering violated under layer-wise sampling")
			}
		}
	}
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLayerWiseEmptySeeds(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 100, AvgDegree: 4, Seed: 8})
	s := NewSampler(g, Config{Fanouts: []int{3}, Method: LayerWise}, graph.NewRNG(9))
	mb := s.Sample(nil)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	if mb.Layer1().NumEdges() != 0 {
		t.Error("empty seeds produced edges")
	}
}

func TestFullMethodDeterministicAndComplete(t *testing.T) {
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 150, AvgDegree: 6, Seed: 11})
	a := NewSampler(g, Config{Fanouts: []int{1, 1}, Method: Full}, graph.NewRNG(1)).Sample([]graph.NodeID{3, 7})
	b := NewSampler(g, Config{Fanouts: []int{1, 1}, Method: Full}, graph.NewRNG(99)).Sample([]graph.NodeID{3, 7})
	la, lb := a.Layer1(), b.Layer1()
	if la.NumEdges() != lb.NumEdges() {
		t.Fatal("full sampling not deterministic across RNG seeds")
	}
	top := a.Blocks[1]
	for i, v := range top.Dst {
		if top.DstDegree(i) != g.Degree(v) {
			t.Errorf("full sampling dropped neighbors of %d: %d vs %d", v, top.DstDegree(i), g.Degree(v))
		}
	}
}
