package sample

import (
	"repro/internal/graph"
)

// SeedPlan assigns training seeds to parallel workers for one epoch.
// GDP and NFP split a global shuffle evenly; SNP and DNP give each
// worker the seeds inside its graph partition (paper §3.2: "each GPU
// processes the seed nodes in its managing partition").
type SeedPlan struct {
	// PerWorker[w] lists the seed nodes worker w processes this epoch.
	PerWorker [][]graph.NodeID
}

// NumBatches returns the number of synchronized mini-batch steps for
// the given per-worker batch size: workers step together, so it is
// driven by the largest per-worker seed list.
func (p *SeedPlan) NumBatches(batchSize int) int {
	maxLen := 0
	for _, s := range p.PerWorker {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	return (maxLen + batchSize - 1) / batchSize
}

// Batch returns worker w's seeds for step i (may be empty near the end
// of an epoch for workers with fewer seeds).
func (p *SeedPlan) Batch(w, i, batchSize int) []graph.NodeID {
	seeds := p.PerWorker[w]
	lo := i * batchSize
	if lo >= len(seeds) {
		return nil
	}
	hi := lo + batchSize
	if hi > len(seeds) {
		hi = len(seeds)
	}
	return seeds[lo:hi]
}

// SplitEven shuffles seeds and deals them to workers in contiguous
// chunks (the GDP/NFP seed assignment).
func SplitEven(seeds []graph.NodeID, workers int, rng *graph.RNG) *SeedPlan {
	shuffled := make([]graph.NodeID, len(seeds))
	copy(shuffled, seeds)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	per := make([][]graph.NodeID, workers)
	chunk := (len(shuffled) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo > len(shuffled) {
			lo = len(shuffled)
		}
		hi := lo + chunk
		if hi > len(shuffled) {
			hi = len(shuffled)
		}
		per[w] = shuffled[lo:hi]
	}
	return &SeedPlan{PerWorker: per}
}

// SplitByOwner assigns each seed to its owning worker per the
// partition assignment, shuffling within each worker (the SNP/DNP seed
// assignment).
func SplitByOwner(seeds []graph.NodeID, assign []int32, workers int, rng *graph.RNG) *SeedPlan {
	per := make([][]graph.NodeID, workers)
	for _, s := range seeds {
		w := assign[s]
		per[w] = append(per[w], s)
	}
	for w := range per {
		ws := per[w]
		rng.Shuffle(len(ws), func(i, j int) { ws[i], ws[j] = ws[j], ws[i] })
	}
	return &SeedPlan{PerWorker: per}
}

// CountLayer1SrcAccesses accumulates, into freq, how many times each
// graph node appears as a layer-1 source across the given mini-batches,
// counted with multiplicity (once per sampled edge, i.e. once per
// appearance in a seed's sampled subgraph). This is the
// access-frequency statistic the paper's dry-run collects for cache
// configuration and Table 3.
func CountLayer1SrcAccesses(freq []int64, batches ...*MiniBatch) {
	for _, mb := range batches {
		blk := mb.Layer1()
		for _, si := range blk.SrcIdx {
			freq[blk.Src[si]]++
		}
	}
}
