package sample

import (
	"math/bits"
	"sync"

	"repro/internal/graph"
)

// Block-storage recycling. Every training step samples a fresh
// mini-batch and discards it after compute, so the slices behind the
// blocks (Src, SrcIdx, EdgePtr) are the engine's steadiest source of
// garbage — and that garbage is what keeps the collector running,
// which in turn flushes the tensor pool and re-introduces allocation
// on the kernel hot path. Size-classed pools break the cycle: the
// engine returns each consumed mini-batch via Recycle and the sampler
// draws block storage from the pools instead of the heap.

// maxSliceClass bounds pooled slices at 2^maxSliceClass elements;
// larger requests bypass the pool.
const maxSliceClass = 24

// slicePool recycles []T by capacity class: class c serves any
// request of up to 1<<c elements.
type slicePool[T any] struct {
	pools [maxSliceClass + 1]sync.Pool
}

func sliceClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a zero-length slice with capacity >= n. Contents beyond
// the length are stale — callers must write before reading.
func (p *slicePool[T]) get(n int) []T {
	if n > 1<<maxSliceClass {
		return make([]T, 0, n)
	}
	c := sliceClass(n)
	if v := p.pools[c].Get(); v != nil {
		return (*v.(*[]T))[:0]
	}
	return make([]T, 0, 1<<c)
}

// put recycles s, filing it under the largest class its capacity
// fully covers. The caller must not touch s again.
func (p *slicePool[T]) put(s []T) {
	cp := cap(s)
	if cp == 0 || cp > 1<<maxSliceClass {
		return
	}
	c := bits.Len(uint(cp)) - 1
	s = s[:0]
	p.pools[c].Put(&s)
}

var (
	nodeSlices  slicePool[graph.NodeID]
	int32Slices slicePool[int32]
	int64Slices slicePool[int64]
)

// Recycle returns the mini-batch's block storage to the sampler
// pools. The caller must be the unique owner and must not touch the
// mini-batch afterwards. Seeds and each block's Dst alias external
// storage (the seed plan, or the neighboring block's Src) and are
// left alone; every block's Src/SrcIdx/EdgePtr is owned by exactly
// that block and is recycled here.
func (m *MiniBatch) Recycle() {
	for _, b := range m.Blocks {
		nodeSlices.put(b.Src)
		int32Slices.put(b.SrcIdx)
		int64Slices.put(b.EdgePtr)
		b.Dst, b.Src, b.SrcIdx, b.EdgePtr = nil, nil, nil, nil
	}
}
