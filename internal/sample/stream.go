package sample

import (
	"repro/internal/graph"
)

// RequestSet is the request-driven seed front-end to the sampler used
// by online inference: it accumulates the seed lists of concurrent
// predict requests and coalesces them into one deduplicated seed batch,
// remembering each request's row positions so the batched model output
// can be scattered back per request. Sharing is the point — requests
// asking for the same (hot) node sample and compute it once.
//
// A RequestSet is reusable across batches via Reset and is not safe for
// concurrent use; the serving layer keeps one per inference worker.
type RequestSet struct {
	seeds []graph.NodeID
	rows  [][]int32
	pos   map[graph.NodeID]int32
}

// NewRequestSet creates an empty request set.
func NewRequestSet() *RequestSet {
	return &RequestSet{pos: make(map[graph.NodeID]int32, 64)}
}

// Add appends one request's seed nodes, deduplicating against every
// seed already in the batch, and returns the request's index. The
// input slice is not retained.
func (r *RequestSet) Add(nodes []graph.NodeID) int {
	ix := make([]int32, len(nodes))
	for i, u := range nodes {
		p, ok := r.pos[u]
		if !ok {
			p = int32(len(r.seeds))
			r.seeds = append(r.seeds, u)
			r.pos[u] = p
		}
		ix[i] = p
	}
	r.rows = append(r.rows, ix)
	return len(r.rows) - 1
}

// NumRequests returns how many requests have been added since Reset.
func (r *RequestSet) NumRequests() int { return len(r.rows) }

// NumSeeds returns the deduplicated seed count.
func (r *RequestSet) NumSeeds() int { return len(r.seeds) }

// Seeds returns the deduplicated seed batch in first-seen order. The
// slice aliases internal storage and is invalidated by Reset.
func (r *RequestSet) Seeds() []graph.NodeID { return r.seeds }

// Rows returns request i's positions into Seeds() — and therefore into
// the row dimension of any model output computed for this batch. One
// entry per requested node, duplicates mapping to the same row.
func (r *RequestSet) Rows(i int) []int32 { return r.rows[i] }

// Reset clears the set for the next batch, retaining capacity.
func (r *RequestSet) Reset() {
	r.seeds = r.seeds[:0]
	r.rows = r.rows[:0]
	clear(r.pos)
}
