package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// TCPOptions configures a TCP transport rank.
type TCPOptions struct {
	// Rank is this process's rank in [0, World).
	Rank int
	// World is the group size (must equal the engine's device count).
	World int
	// Coord is the coordinator rendezvous address (host:port). Rank 0
	// binds it; every rank dials it to register and learn the peer
	// address table — the torch.distributed tcp:// init pattern.
	Coord string
	// CoordListener, when non-nil, is a pre-bound listener rank 0 uses
	// instead of binding Coord (lets tests and launchers pick a free
	// port race-free). Ignored on other ranks.
	CoordListener net.Listener
	// BindHost is the host data listeners bind and advertise (default
	// 127.0.0.1; set to a routable interface for multi-machine runs).
	BindHost string
	// BootstrapTimeout bounds the whole rendezvous, dial retries
	// included (default 30s).
	BootstrapTimeout time.Duration
	// DialRetryBase is the first retry backoff after a refused dial;
	// it doubles per attempt up to 64x (default 10ms).
	DialRetryBase time.Duration
	// MaxFrameBytes rejects frames larger than this (default
	// DefaultMaxFrameBytes).
	MaxFrameBytes int64
	// Reg, when non-nil, receives wire metrics: apt_transport_tx/rx
	// bytes and frame counters.
	Reg *obs.Registry
	// Spans, when non-nil, collects one receive track per peer with a
	// span per inbound frame (wall-clock axis, bytes on the span) —
	// the wire-level view next to the engine's simulated-clock comm
	// spans.
	Spans *obs.Collector
}

func (o *TCPOptions) normalize() error {
	if o.World < 2 {
		return fmt.Errorf("transport: world %d (need >= 2 ranks)", o.World)
	}
	if o.Rank < 0 || o.Rank >= o.World {
		return fmt.Errorf("transport: rank %d outside [0, %d)", o.Rank, o.World)
	}
	if o.Coord == "" && (o.Rank != 0 || o.CoordListener == nil) {
		return fmt.Errorf("transport: coordinator address required")
	}
	if o.BindHost == "" {
		o.BindHost = "127.0.0.1"
	}
	if o.BootstrapTimeout <= 0 {
		o.BootstrapTimeout = 30 * time.Second
	}
	if o.DialRetryBase <= 0 {
		o.DialRetryBase = 10 * time.Millisecond
	}
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	return nil
}

// TCP is the wire-backed comm.Transport: one rank per process, one
// duplex connection per peer, length-prefixed payload frames. Send
// serializes on the caller's goroutine (so the caller may recycle the
// payload's buffers as soon as the engine's ownership rules allow) and
// queues the frame to a per-peer writer goroutine; a per-peer reader
// goroutine decodes inbound frames into a buffered inbox. The
// collectives' send-to-all-then-receive-from-all pattern therefore
// never blocks on a socket buffer, and per-pair FIFO order — the only
// ordering the lockstep contract needs — comes from TCP stream order.
//
// Failure model is fail-stop: a broken or protocol-violating
// connection poisons the transport, and the next Recv panics with the
// stored cause. A lockstep collective cannot make progress on partial
// data, and silently returning zero payloads would corrupt training.
type TCP struct {
	rank, world int
	maxFrame    int64
	peers       []*tcpPeer // indexed by rank; peers[rank] == nil

	wgWrite   sync.WaitGroup
	wgRead    sync.WaitGroup
	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error

	failMu sync.Mutex
	failed error

	start time.Time

	txBytes, rxBytes, txFrames, rxFrames *obs.Counter
}

type tcpPeer struct {
	rank int
	conn net.Conn
	out  chan []byte       // encoded frames, drained by the writer
	in   chan comm.Payload // decoded frames, filled by the reader
	rx   *obs.Track
}

// outboxDepth bounds queued outbound frames per peer. Lockstep keeps
// at most a few frames in flight per directed pair (a rank cannot
// finish collective k before every peer reached k), so the writer
// never falls far behind; the bound only matters if a peer wedges.
const outboxDepth = 16

// inboxDepth bounds decoded inbound frames per peer; beyond it the
// reader stops draining the socket and TCP flow control pushes back.
const inboxDepth = 16

// NewTCP bootstraps this rank into the group (see bootstrap.go for
// the rendezvous protocol) and returns the connected transport.
//
//apt:allow simclock connection management only: dial retry backoff and bootstrap deadlines are inherently wall-clock; no payload data or timing model depends on them
func NewTCP(opts TCPOptions) (*TCP, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	conns, err := rendezvous(&opts)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		rank:     opts.Rank,
		world:    opts.World,
		maxFrame: opts.MaxFrameBytes,
		peers:    make([]*tcpPeer, opts.World),
		start:    time.Now(),
	}
	if r := opts.Reg; r != nil {
		t.txBytes = r.Counter("apt_transport_tx_bytes_total", "Payload bytes serialized onto the wire.")
		t.rxBytes = r.Counter("apt_transport_rx_bytes_total", "Payload bytes decoded off the wire.")
		t.txFrames = r.Counter("apt_transport_tx_frames_total", "Frames sent.")
		t.rxFrames = r.Counter("apt_transport_rx_frames_total", "Frames received.")
	}
	for peer, conn := range conns {
		if peer == opts.Rank {
			continue
		}
		p := &tcpPeer{
			rank: peer,
			conn: conn,
			out:  make(chan []byte, outboxDepth),
			in:   make(chan comm.Payload, inboxDepth),
		}
		if opts.Spans != nil {
			p.rx = opts.Spans.AddTrack("wire", fmt.Sprintf("rank%d/rx%d", opts.Rank, peer))
		}
		t.peers[peer] = p
		t.wgWrite.Add(1)
		t.wgRead.Add(1)
		go t.writeLoop(p)
		go t.readLoop(p)
	}
	return t, nil
}

// World returns the group size.
func (t *TCP) World() int { return t.world }

// Rank returns this process's rank.
func (t *TCP) Rank() int { return t.rank }

// fail poisons the transport with the first error and unblocks every
// receiver by closing the inboxes.
func (t *TCP) fail(err error) {
	t.failMu.Lock()
	first := t.failed == nil
	if first {
		t.failed = err
	}
	t.failMu.Unlock()
	if first {
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
	}
}

func (t *TCP) failure() error {
	t.failMu.Lock()
	defer t.failMu.Unlock()
	return t.failed
}

// Send implements comm.Transport. src must be this process's rank.
func (t *TCP) Send(src, dst int, p comm.Payload) {
	if src != t.rank {
		panic(fmt.Sprintf("transport: rank %d asked to send as rank %d", t.rank, src))
	}
	peer := t.peers[dst]
	if peer == nil {
		panic(fmt.Sprintf("transport: rank %d send to self", t.rank))
	}
	t.countTx(t.enqueue(peer, t.encodeFrame(p)))
}

// Broadcast implements comm.Broadcaster: one serialization, one frame
// shared read-only across every peer's outbox (writeLoop only reads
// frames, so sharing the slice is safe). Equivalent to Send to every
// other rank in ascending order, with the encoding work done once
// instead of world-1 times.
func (t *TCP) Broadcast(src int, p comm.Payload) {
	if src != t.rank {
		panic(fmt.Sprintf("transport: rank %d asked to broadcast as rank %d", t.rank, src))
	}
	frame := t.encodeFrame(p)
	for dst, peer := range t.peers {
		if dst == t.rank {
			continue
		}
		t.countTx(t.enqueue(peer, frame))
	}
}

// encodeFrame serializes p on the caller's goroutine (u32 body length
// + body) so the payload's buffers are free the moment the send
// returns.
func (t *TCP) encodeFrame(p comm.Payload) []byte {
	frame, err := AppendPayload(make([]byte, 4, 4+64), p)
	if err != nil {
		panic(fmt.Sprintf("transport: rank %d encode: %v", t.rank, err))
	}
	body := int64(len(frame) - 4)
	if body > t.maxFrame {
		panic(fmt.Sprintf("transport: rank %d frame of %d bytes exceeds limit %d: %v", t.rank, body, t.maxFrame, ErrOversized))
	}
	binary.LittleEndian.PutUint32(frame, uint32(body))
	return frame
}

// countTx records one physically enqueued frame (Broadcast enqueues
// the same frame once per peer, and each copy crosses its own socket).
func (t *TCP) countTx(body int64) {
	if t.txBytes != nil {
		t.txBytes.Add(body)
		t.txFrames.Inc()
	}
}

// enqueue pushes a frame onto peer's outbox and returns its body
// length for tx accounting.
func (t *TCP) enqueue(peer *tcpPeer, frame []byte) int64 {
	select {
	case peer.out <- frame:
	default:
		// Outbox full: the writer is behind (slow peer socket). Block —
		// unless the transport already failed, in which case blocking
		// would hang the worker forever.
		if err := t.failure(); err != nil {
			panic(fmt.Sprintf("transport: rank %d send after failure: %v", t.rank, err))
		}
		peer.out <- frame
	}
	return int64(len(frame) - 4)
}

// Recv implements comm.Transport. dst must be this process's rank.
func (t *TCP) Recv(dst, src int) comm.Payload {
	if dst != t.rank {
		panic(fmt.Sprintf("transport: rank %d asked to receive as rank %d", t.rank, dst))
	}
	peer := t.peers[src]
	if peer == nil {
		panic(fmt.Sprintf("transport: rank %d recv from self", t.rank))
	}
	p, ok := <-peer.in
	if !ok {
		panic(fmt.Sprintf("transport: rank %d recv from rank %d: %v", t.rank, src, t.failure()))
	}
	return p
}

func (t *TCP) writeLoop(p *tcpPeer) {
	defer t.wgWrite.Done()
	for frame := range p.out {
		if _, err := p.conn.Write(frame); err != nil {
			t.fail(fmt.Errorf("transport: rank %d write to rank %d: %w", t.rank, p.rank, err))
			return
		}
	}
	// Outbox closed: clean shutdown; half-close so the peer's reader
	// sees EOF once the stream drains.
	if cw, ok := p.conn.(interface{ CloseWrite() error }); ok {
		cw.CloseWrite()
	}
}

//apt:allow simclock wire receive spans sit on a wall-clock axis by definition (they time real sockets, not the simulated platform)
func (t *TCP) readLoop(p *tcpPeer) {
	defer t.wgRead.Done()
	defer close(p.in)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(p.conn, lenBuf[:]); err != nil {
			// EOF is the peer's clean half-close; a read error during our
			// own Close is this side's shutdown unblocking the reader. By
			// the Close contract every in-flight frame was already
			// received, so neither is a failure.
			if err != io.EOF && !t.closing.Load() {
				t.fail(fmt.Errorf("transport: rank %d read from rank %d: %w", t.rank, p.rank, err))
			}
			return
		}
		n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if n > t.maxFrame {
			t.fail(fmt.Errorf("transport: rank %d from rank %d: %d-byte frame: %w", t.rank, p.rank, n, ErrOversized))
			return
		}
		rxStart := time.Since(t.start).Seconds()
		body := make([]byte, n)
		if _, err := io.ReadFull(p.conn, body); err != nil {
			t.fail(fmt.Errorf("transport: rank %d read from rank %d: %w", t.rank, p.rank, err))
			return
		}
		pl, err := DecodePayload(body)
		if err != nil {
			t.fail(fmt.Errorf("transport: rank %d decode from rank %d: %w", t.rank, p.rank, err))
			return
		}
		if t.rxBytes != nil {
			t.rxBytes.Add(n)
			t.rxFrames.Inc()
		}
		p.rx.Emit("rx", -1, rxStart, time.Since(t.start).Seconds()-rxStart, n)
		p.in <- pl
	}
}

// Close shuts the transport down. Callers must be past their last
// collective (every sent frame has been received); Close flushes
// queued frames, then closes the connections — which is also what
// unblocks this side's readers, so ranks may close in any order
// without waiting on each other. The first wire error, if any, is
// returned — a non-nil result after a completed run means frames were
// lost in shutdown rather than delivered.
func (t *TCP) Close() error {
	t.closeOnce.Do(func() {
		t.closing.Store(true)
		for _, p := range t.peers {
			if p != nil {
				close(p.out)
			}
		}
		t.wgWrite.Wait()
		for _, p := range t.peers {
			if p != nil {
				p.conn.Close()
			}
		}
		t.wgRead.Wait()
		t.closeErr = t.failure()
	})
	return t.closeErr
}
