package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/comm"
)

// Gradient-compression chunk codecs for the ring allreduce
// (comm.ChunkCodec). Both live here, next to the rest of the wire
// format, because their byte layouts are wire contracts: every rank of
// a job must produce identical encodings for the ring's
// decode-the-owner's-bytes determinism to hold, and the golden tests
// below pin the layouts the same way the payload codec is pinned.
//
//	fp16: n × u16 little-endian IEEE-754 binary16, round-to-nearest-even
//	int8: f32 little-endian scale (maxAbs/127), then n × int8 q where
//	      q = round(v/scale) clamped to [-127, 127]; scale 0 encodes an
//	      all-zero chunk
//
// The compressed chunks cross the TCP backend boxed in
// comm.CompressedChunk under payload-data id 5 (wireDataChunk).

// Chunk codec ids (CompressedChunk.Codec). Distinct namespace from the
// payload-data ids; part of the wire format, never reuse.
const (
	chunkCodecFP16 = 1
	chunkCodecInt8 = 2
)

// wireDataChunk is the Payload.Data wire id for comm.CompressedChunk.
// Ids 1-4 belong to the engine's block/request codecs (see
// engine/wirecodec.go); the data-id space is shared and append-only.
const wireDataChunk = 5

func init() {
	RegisterData(wireDataChunk, (*comm.CompressedChunk)(nil), DataCodec{
		Encode: func(e *Encoder, v any) {
			c := v.(*comm.CompressedChunk)
			if c == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.U8(c.Codec)
			e.U32(uint32(c.N))
			e.Bytes(c.B)
		},
		Decode: func(d *Decoder) any {
			if !d.Presence() {
				return (*comm.CompressedChunk)(nil)
			}
			return &comm.CompressedChunk{
				Codec: d.U8(),
				N:     int(d.U32()),
				B:     d.TakeBytes(),
			}
		},
	})
}

// FP16Chunk compresses chunks to IEEE-754 binary16: exact 2× wire
// reduction, ~3 decimal digits of mantissa, no state. Values beyond
// half range saturate to ±Inf and NaN payloads collapse to a canonical
// quiet NaN — acceptable for gradients, which the tolerance-gated
// trajectory tests pin.
type FP16Chunk struct{}

func (FP16Chunk) ChunkID() uint8       { return chunkCodecFP16 }
func (FP16Chunk) Name() string         { return "fp16" }
func (FP16Chunk) EncodedLen(n int) int { return 2 * n }

func (FP16Chunk) EncodeChunk(dst []byte, src []float32) {
	for i, v := range src {
		binary.LittleEndian.PutUint16(dst[2*i:], f32ToF16(v))
	}
}

func (FP16Chunk) DecodeChunk(dst []float32, src []byte) error {
	if len(src) != 2*len(dst) {
		return fmt.Errorf("%w: fp16 chunk of %d bytes for %d values", ErrMalformed, len(src), len(dst))
	}
	for i := range dst {
		dst[i] = f16ToF32(binary.LittleEndian.Uint16(src[2*i:]))
	}
	return nil
}

// Int8Chunk compresses chunks to one int8 per value against a
// per-chunk absmax scale: 4× wire reduction (minus a 4-byte header).
// The quantization is much coarser than fp16, which is why the
// engine's gradient sync pairs it with an error-feedback residual
// (DESIGN decision 18).
type Int8Chunk struct{}

func (Int8Chunk) ChunkID() uint8       { return chunkCodecInt8 }
func (Int8Chunk) Name() string         { return "int8" }
func (Int8Chunk) EncodedLen(n int) int { return 4 + n }

func (Int8Chunk) EncodeChunk(dst []byte, src []float32) {
	var maxAbs float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	binary.LittleEndian.PutUint32(dst, math.Float32bits(scale))
	if scale == 0 {
		for i := range src {
			dst[4+i] = 0
		}
		return
	}
	for i, v := range src {
		q := int32(math.Round(float64(v / scale)))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[4+i] = byte(int8(q))
	}
}

func (Int8Chunk) DecodeChunk(dst []float32, src []byte) error {
	if len(src) != 4+len(dst) {
		return fmt.Errorf("%w: int8 chunk of %d bytes for %d values", ErrMalformed, len(src), len(dst))
	}
	scale := math.Float32frombits(binary.LittleEndian.Uint32(src))
	for i := range dst {
		dst[i] = float32(int8(src[4+i])) * scale
	}
	return nil
}

// ChunkCodecByName maps a job-level codec selection ("", "fp32",
// "fp16", "int8") to the ChunkCodec the comm layer uses; nil means
// exact fp32 (no compression).
func ChunkCodecByName(name string) (comm.ChunkCodec, error) {
	switch name {
	case "", "fp32", "none":
		return nil, nil
	case "fp16":
		return FP16Chunk{}, nil
	case "int8":
		return Int8Chunk{}, nil
	default:
		return nil, fmt.Errorf("transport: unknown gradient codec %q (want fp32, fp16 or int8)", name)
	}
}

// f32ToF16 converts to IEEE-754 binary16 with round-to-nearest-even,
// saturating overflow to infinity and canonicalizing NaNs.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	man := b & 0x7fffff
	if exp >= 0x1f {
		if b&0x7fffffff > 0x7f800000 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf / overflow far beyond rounding reach
	}
	if exp <= 0 {
		// Subnormal half (or underflow to zero). Values below half the
		// smallest subnormal round to signed zero.
		if exp < -10 {
			return sign
		}
		man |= 0x800000
		shift := uint32(14 - exp)
		half := sign | uint16(man>>shift)
		rem := man & (1<<shift - 1)
		mid := uint32(1) << (shift - 1)
		if rem > mid || (rem == mid && half&1 == 1) {
			half++
		}
		return half
	}
	half := sign | uint16(exp)<<10 | uint16(man>>13)
	rem := man & 0x1fff
	if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
		half++ // carries through the exponent, saturating 65520+ to Inf
	}
	return half
}

// f16ToF32 converts from IEEE-754 binary16 (exact, every half value is
// representable in float32).
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if man == 0 {
			return math.Float32frombits(sign) // ±0
		}
		e := uint32(127 - 15 + 1)
		for man&0x400 == 0 {
			man <<= 1
			e--
		}
		man &= 0x3ff
		return math.Float32frombits(sign | e<<23 | man<<13)
	case exp == 0x1f:
		if man == 0 {
			return math.Float32frombits(sign | 0x7f800000) // ±Inf
		}
		return math.Float32frombits(sign | 0x7fc00000 | man<<13) // NaN
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	}
}
