package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Rendezvous protocol (the torch.distributed tcp:// init pattern):
//
//  1. Every rank binds a data listener on BindHost:0 — the port its
//     peers will dial for the collective mesh.
//  2. Rank 0 binds the coordinator address. Ranks 1..W-1 dial it (with
//     retry, since rank 0 may start late) and send a hello frame:
//     magic, wire version, rank, world, data address. The coordinator
//     validates version/world agreement and rank uniqueness.
//  3. Once all W ranks are registered the coordinator broadcasts the
//     address table and the registration connections close.
//  4. Mesh: rank r dials the data listeners of ranks 0..r-1 (higher
//     dials lower, so exactly one duplex connection exists per pair)
//     and sends a 9-byte mesh hello (magic, version, rank); it accepts
//     connections from ranks r+1..W-1 on its own listener. Data
//     listeners close once the mesh is complete.
//
// Everything is bounded by BootstrapTimeout; a rank that never shows
// up turns into a deadline error, not a hang.

const (
	helloMaxFrame = 1 << 12 // hello/table frames are tiny
	meshHelloLen  = 4 + 1 + 4
)

// rendezvous runs the protocol above and returns one connected duplex
// conn per peer rank (nil at the rank's own index), with deadlines
// cleared, ready for the transport's reader/writer goroutines.
//
//apt:allow simclock bootstrap deadlines and dial retry backoff are wall-clock connection management, outside the simulated platform
func rendezvous(o *TCPOptions) (conns []net.Conn, err error) {
	deadline := time.Now().Add(o.BootstrapTimeout)

	data, err := net.Listen("tcp", net.JoinHostPort(o.BindHost, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d bind data listener: %w", o.Rank, err)
	}
	defer data.Close()
	setListenerDeadline(data, deadline)

	var table []string
	if o.Rank == 0 {
		table, err = coordinate(o, data.Addr().String(), deadline)
	} else {
		table, err = register(o, data.Addr().String(), deadline)
	}
	if err != nil {
		return nil, err
	}

	conns = make([]net.Conn, o.World)
	defer func() {
		if err != nil {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		}
	}()

	// Dial every lower rank.
	for j := 0; j < o.Rank; j++ {
		c, derr := dialRetry(table[j], deadline, o.DialRetryBase)
		if derr != nil {
			return nil, fmt.Errorf("transport: rank %d dial rank %d at %s: %w", o.Rank, j, table[j], derr)
		}
		c.SetDeadline(deadline)
		var hello [meshHelloLen]byte
		binary.LittleEndian.PutUint32(hello[0:], wireMagic)
		hello[4] = wireVersion
		binary.LittleEndian.PutUint32(hello[5:], uint32(o.Rank))
		if _, werr := c.Write(hello[:]); werr != nil {
			c.Close()
			return nil, fmt.Errorf("transport: rank %d mesh hello to rank %d: %w", o.Rank, j, werr)
		}
		conns[j] = c
	}

	// Accept every higher rank.
	for need := o.World - 1 - o.Rank; need > 0; need-- {
		c, aerr := data.Accept()
		if aerr != nil {
			return nil, fmt.Errorf("transport: rank %d accept mesh peer: %w", o.Rank, aerr)
		}
		c.SetDeadline(deadline)
		var hello [meshHelloLen]byte
		if _, rerr := io.ReadFull(c, hello[:]); rerr != nil {
			c.Close()
			return nil, fmt.Errorf("transport: rank %d read mesh hello: %w", o.Rank, rerr)
		}
		if m := binary.LittleEndian.Uint32(hello[0:]); m != wireMagic {
			c.Close()
			return nil, fmt.Errorf("transport: rank %d mesh hello magic %#x: %w", o.Rank, m, ErrMalformed)
		}
		if hello[4] != wireVersion {
			c.Close()
			return nil, fmt.Errorf("transport: rank %d mesh peer wire version %d (want %d): %w", o.Rank, hello[4], wireVersion, ErrVersion)
		}
		peer := int(binary.LittleEndian.Uint32(hello[5:]))
		if peer <= o.Rank || peer >= o.World {
			c.Close()
			return nil, fmt.Errorf("transport: rank %d mesh hello from invalid rank %d: %w", o.Rank, peer, ErrMalformed)
		}
		if conns[peer] != nil {
			c.Close()
			return nil, fmt.Errorf("transport: rank %d duplicate mesh hello from rank %d: %w", o.Rank, peer, ErrMalformed)
		}
		conns[peer] = c
	}

	for _, c := range conns {
		if c != nil {
			c.SetDeadline(time.Time{})
		}
	}
	return conns, nil
}

// coordinate is rank 0's side of the rendezvous: accept W-1
// registrations, validate, broadcast the address table.
func coordinate(o *TCPOptions, selfAddr string, deadline time.Time) ([]string, error) {
	coord := o.CoordListener
	if coord == nil {
		var err error
		coord, err = net.Listen("tcp", o.Coord)
		if err != nil {
			return nil, fmt.Errorf("transport: bind coordinator %s: %w", o.Coord, err)
		}
	}
	defer coord.Close()
	setListenerDeadline(coord, deadline)

	table := make([]string, o.World)
	table[0] = selfAddr
	regConns := make([]net.Conn, 0, o.World-1)
	defer func() {
		for _, c := range regConns {
			c.Close()
		}
	}()
	for got := 1; got < o.World; got++ {
		c, err := coord.Accept()
		if err != nil {
			return nil, fmt.Errorf("transport: coordinator accept (%d/%d ranks registered): %w", got, o.World, err)
		}
		c.SetDeadline(deadline)
		rank, addr, err := readHello(c, o.World)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: coordinator registration: %w", err)
		}
		if table[rank] != "" {
			c.Close()
			return nil, fmt.Errorf("transport: duplicate registration for rank %d: %w", rank, ErrMalformed)
		}
		table[rank] = addr
		regConns = append(regConns, c)
	}

	frame := encodeTable(table)
	for _, c := range regConns {
		if _, err := c.Write(frame); err != nil {
			return nil, fmt.Errorf("transport: coordinator broadcast table: %w", err)
		}
	}
	return table, nil
}

// register is rank >0's side: dial the coordinator (retrying while it
// comes up), send the hello, wait for the table.
func register(o *TCPOptions, selfAddr string, deadline time.Time) ([]string, error) {
	c, err := dialRetry(o.Coord, deadline, o.DialRetryBase)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d dial coordinator %s: %w", o.Rank, o.Coord, err)
	}
	defer c.Close()
	c.SetDeadline(deadline)

	var e Encoder
	e.U32(wireMagic)
	e.U8(wireVersion)
	e.U32(uint32(o.Rank))
	e.U32(uint32(o.World))
	e.Bytes([]byte(selfAddr))
	frame := make([]byte, 4, 4+len(e.B))
	binary.LittleEndian.PutUint32(frame, uint32(len(e.B)))
	frame = append(frame, e.B...)
	if _, err := c.Write(frame); err != nil {
		return nil, fmt.Errorf("transport: rank %d send hello: %w", o.Rank, err)
	}

	body, err := readFrame(c, helloMaxFrame)
	if err != nil {
		return nil, fmt.Errorf("transport: rank %d read address table: %w", o.Rank, err)
	}
	return decodeTable(body, o.World)
}

// readHello reads and validates one registration frame.
func readHello(c net.Conn, world int) (rank int, addr string, err error) {
	body, err := readFrame(c, helloMaxFrame)
	if err != nil {
		return 0, "", err
	}
	d := NewDecoder(body)
	if m := d.U32(); d.Err() == nil && m != wireMagic {
		return 0, "", fmt.Errorf("hello magic %#x: %w", m, ErrMalformed)
	}
	if v := d.U8(); d.Err() == nil && v != wireVersion {
		return 0, "", fmt.Errorf("hello wire version %d (want %d): %w", v, wireVersion, ErrVersion)
	}
	r := d.U32()
	w := d.U32()
	addrB := d.TakeBytes()
	if d.Err() != nil {
		return 0, "", d.Err()
	}
	if d.Remaining() != 0 {
		return 0, "", fmt.Errorf("hello has %d trailing bytes: %w", d.Remaining(), ErrTrailing)
	}
	if int(w) != world {
		return 0, "", fmt.Errorf("rank %d joined with world %d (coordinator has %d): %w", r, w, world, ErrMalformed)
	}
	if r == 0 || int(r) >= world {
		return 0, "", fmt.Errorf("registration from invalid rank %d: %w", r, ErrMalformed)
	}
	return int(r), string(addrB), nil
}

func encodeTable(table []string) []byte {
	var e Encoder
	e.U32(wireMagic)
	e.U8(wireVersion)
	e.U32(uint32(len(table)))
	for _, a := range table {
		e.Bytes([]byte(a))
	}
	frame := make([]byte, 4, 4+len(e.B))
	binary.LittleEndian.PutUint32(frame, uint32(len(e.B)))
	return append(frame, e.B...)
}

func decodeTable(body []byte, world int) ([]string, error) {
	d := NewDecoder(body)
	if m := d.U32(); d.Err() == nil && m != wireMagic {
		return nil, fmt.Errorf("transport: table magic %#x: %w", m, ErrMalformed)
	}
	if v := d.U8(); d.Err() == nil && v != wireVersion {
		return nil, fmt.Errorf("transport: table wire version %d (want %d): %w", v, wireVersion, ErrVersion)
	}
	w := d.U32()
	if d.Err() == nil && int(w) != world {
		return nil, fmt.Errorf("transport: table world %d (want %d): %w", w, world, ErrMalformed)
	}
	table := make([]string, 0, world)
	for i := 0; i < world; i++ {
		table = append(table, string(d.TakeBytes()))
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("transport: decode address table: %w", d.Err())
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("transport: table has %d trailing bytes: %w", d.Remaining(), ErrTrailing)
	}
	return table, nil
}

// readFrame reads one u32-length-prefixed frame with a size cap.
func readFrame(c net.Conn, max int64) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	if n > max {
		return nil, fmt.Errorf("%d-byte frame (cap %d): %w", n, max, ErrOversized)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		return nil, err
	}
	return body, nil
}

// dialRetry dials addr until it succeeds or the deadline passes,
// backing off exponentially from base (capped at 64x) between
// attempts — the peer may simply not have bound its listener yet.
//
//apt:allow simclock dial retry backoff is wall-clock connection management by nature
func dialRetry(addr string, deadline time.Time, base time.Duration) (net.Conn, error) {
	backoff := base
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, fmt.Errorf("rendezvous deadline exceeded")
		}
		c, err := net.DialTimeout("tcp", addr, remaining)
		if err == nil {
			return c, nil
		}
		sleep := backoff
		if sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		if backoff < base*64 {
			backoff *= 2
		}
	}
}

func setListenerDeadline(l net.Listener, t time.Time) {
	if tl, ok := l.(*net.TCPListener); ok {
		tl.SetDeadline(t)
	}
}
