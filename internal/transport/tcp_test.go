package transport

import (
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/hardware"
	"repro/internal/tensor"
)

// startWorld bootstraps an n-rank TCP world over loopback, every rank
// a goroutine in this process but every byte crossing a real socket.
// The pre-bound coordinator listener makes the rendezvous port
// race-free under parallel tests.
func startWorld(t *testing.T, n int, mutate func(*TCPOptions)) []*TCP {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("bind coordinator: %v", err)
	}
	trs := make([]*TCP, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			o := TCPOptions{Rank: r, World: n, Coord: ln.Addr().String()}
			if r == 0 {
				o.CoordListener = ln
			}
			if mutate != nil {
				mutate(&o)
			}
			trs[r], errs[r] = NewTCP(o)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d bootstrap: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tr := range trs {
			tr.Close()
		}
	})
	return trs
}

// commFor builds one rank's comm fabric over its transport — its own
// device group and simulated clocks, exactly as a distributed engine
// process would.
func commFor(tr *TCP) *comm.Comm {
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, tr.World())
	return comm.NewWithTransport(device.NewGroup(p), tr)
}

func TestTCPLoopbackCollectives(t *testing.T) {
	for _, n := range []int{2, 4} {
		t.Run(map[int]string{2: "world2", 4: "world4"}[n], func(t *testing.T) {
			trs := startWorld(t, n, nil)
			sums := make([][]float32, n)
			var wg sync.WaitGroup
			for r := 0; r < n; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					c := commFor(trs[r])

					// AllToAll: payload (r -> j) carries r*100+j; delivery
					// means rank r receives j*100+r from every j.
					outs := make([]comm.Payload, n)
					for j := 0; j < n; j++ {
						outs[j] = comm.Payload{Ints: []int32{int32(r*100 + j)}}
					}
					in := c.AllToAll(r, device.StageBuild, outs)
					for j := 0; j < n; j++ {
						if want := int32(j*100 + r); len(in[j].Ints) != 1 || in[j].Ints[0] != want {
							t.Errorf("rank %d: alltoall from %d = %v, want [%d]", r, j, in[j].Ints, want)
						}
					}

					// AllGather of a rank-stamped matrix.
					for j, p := range c.AllGather(r, device.StageBuild, comm.Payload{Mat: tensor.FromData(1, 1, []float32{float32(r)})}) {
						if p.Mat == nil || p.Mat.Data[0] != float32(j) {
							t.Errorf("rank %d: allgather slot %d = %+v, want %d", r, j, p.Mat, j)
						}
					}

					// AllReduce must produce the identical sum everywhere.
					mat := tensor.FromData(1, 3, []float32{float32(r + 1), 0.5, float32(r) * 0.125})
					sums[r] = append([]float32{}, c.AllReduce(r, device.StageTrain, mat, 0).Data...)

					// AnyTrue: only rank n-1 votes true; all must agree true.
					if !c.AnyTrue(r, r == n-1) {
						t.Errorf("rank %d: AnyTrue lost the true vote", r)
					}
					c.Barrier(r)
				}(r)
			}
			wg.Wait()
			want := []float32{float32(n*(n+1)) / 2, 0.5 * float32(n), 0.125 * float32(n*(n-1)) / 2}
			for r := 0; r < n; r++ {
				for i := range want {
					if math.Float32bits(sums[r][i]) != math.Float32bits(want[i]) {
						t.Fatalf("rank %d allreduce = %v, want %v (bit-exact)", r, sums[r], want)
					}
				}
			}
			for r, tr := range trs {
				if err := tr.Close(); err != nil {
					t.Fatalf("rank %d close: %v", r, err)
				}
			}
		})
	}
}

// TestTCPManyFrames pushes enough traffic through every directed pair
// to exercise outbox/inbox backpressure and per-pair FIFO order.
func TestTCPManyFrames(t *testing.T) {
	const n, rounds = 3, 200
	trs := startWorld(t, n, nil)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tr := trs[r]
			for k := 0; k < rounds; k++ {
				for j := 0; j < n; j++ {
					if j != r {
						tr.Send(r, j, comm.Payload{Ints: []int32{int32(k), int32(r)}})
					}
				}
				for j := 0; j < n; j++ {
					if j == r {
						continue
					}
					p := tr.Recv(r, j)
					if p.Ints[0] != int32(k) || p.Ints[1] != int32(j) {
						t.Errorf("rank %d round %d from %d: got %v", r, k, j, p.Ints)
					}
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestTCPSendOversizedPanics(t *testing.T) {
	trs := startWorld(t, 2, func(o *TCPOptions) { o.MaxFrameBytes = 64 })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized Send did not panic")
		}
		if !strings.Contains(r.(string), ErrOversized.Error()) {
			t.Fatalf("panic %q does not carry ErrOversized", r)
		}
	}()
	trs[0].Send(0, 1, comm.Payload{Mat: tensor.FromData(8, 8, make([]float32, 64))})
}

func TestTCPOptionValidation(t *testing.T) {
	if _, err := NewTCP(TCPOptions{Rank: 2, World: 2, Coord: "127.0.0.1:1"}); err == nil {
		t.Error("rank >= world accepted")
	}
	if _, err := NewTCP(TCPOptions{Rank: 1, World: 1, Coord: "127.0.0.1:1"}); err == nil {
		t.Error("world < 2 accepted")
	}
	if _, err := NewTCP(TCPOptions{Rank: 1, World: 2}); err == nil {
		t.Error("missing coordinator address accepted")
	}
}

// TestMeasureWireAgreement checks the calibration contract: every rank
// derives the exact same WireStats, so planning decisions based on
// them can never diverge across rank processes.
func TestMeasureWireAgreement(t *testing.T) {
	const n = 3
	trs := startWorld(t, n, nil)
	stats := make([]WireStats, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stats[r] = MeasureWire(commFor(trs[r]), r, 1<<12, 2)
		}(r)
	}
	wg.Wait()
	for r := 1; r < n; r++ {
		if stats[r] != stats[0] {
			t.Fatalf("rank %d stats %+v differ from rank 0 %+v", r, stats[r], stats[0])
		}
	}
	if stats[0].AllToAllBps <= 0 || math.IsInf(stats[0].AllToAllBps, 0) {
		t.Fatalf("implausible alltoall bandwidth %v", stats[0].AllToAllBps)
	}
	base := comm.MeasureProfile(hardware.WithDevices(hardware.SingleMachine8GPU(), 1, n))
	cal := stats[0].ApplyTo(base)
	if cal.AllToAllBps != stats[0].AllToAllBps || cal.AllReduceBps != stats[0].AllReduceBps {
		t.Fatalf("ApplyTo dropped measured bandwidths: %+v", cal)
	}
	if cal.UVAReadBps != base.UVAReadBps {
		t.Fatalf("ApplyTo clobbered memory-subsystem field: %v != %v", cal.UVAReadBps, base.UVAReadBps)
	}
}
