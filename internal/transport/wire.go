package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// Wire format. Every payload crossing a socket is one length-prefixed
// frame: a uint32 little-endian body length followed by the body. The
// body is the versioned payload encoding below; all integers are
// little-endian, floats are IEEE-754 bit patterns.
//
//	u8   version (wireVersion)
//	u8   flags   (flagMat | flagInts | flagData)
//	i64  Bytes field of the payload
//	mat  (if flagMat):  u32 rows, u32 cols, rows*cols f32
//	ints (if flagInts): u32 count, count i32
//	data (if flagData): u8 type id, u32 body length, codec body
//
// The encoding is self-delimiting and canonical: encoding the decoded
// value reproduces the input bytes, which the golden tests pin so the
// format cannot drift silently between releases.

// wireVersion is the payload-encoding version; bump on any layout
// change. Decoders reject frames from other versions with ErrVersion.
const wireVersion = 1

// wireMagic identifies APT wire streams in connection handshakes
// ("APTW" big-endian).
const wireMagic uint32 = 0x41505457

// DefaultMaxFrameBytes bounds a single frame (body length). Collective
// payloads are mini-batch-sized; anything near this limit indicates a
// corrupt or hostile length prefix.
const DefaultMaxFrameBytes = 1 << 30

// Typed codec errors. Decoders wrap them with context; test with
// errors.Is.
var (
	// ErrTruncated marks a frame shorter than its own structure claims.
	ErrTruncated = errors.New("transport: truncated frame")
	// ErrOversized marks a frame whose declared length exceeds the
	// transport's frame limit.
	ErrOversized = errors.New("transport: frame exceeds size limit")
	// ErrVersion marks a frame encoded under an unsupported wire version.
	ErrVersion = errors.New("transport: unsupported wire version")
	// ErrUnknownData marks a payload whose Data type id has no
	// registered codec on this side.
	ErrUnknownData = errors.New("transport: unregistered payload data type")
	// ErrTrailing marks a frame with bytes left over after a complete
	// decode — a codec mismatch between sender and receiver.
	ErrTrailing = errors.New("transport: trailing bytes after payload")
	// ErrMalformed marks a structurally invalid frame (bad flag bits,
	// impossible dimensions).
	ErrMalformed = errors.New("transport: malformed frame")
)

const (
	flagMat  = 1 << 0
	flagInts = 1 << 1
	flagData = 1 << 2
)

// Encoder appends little-endian primitives to a byte buffer. The zero
// value is ready to use; B holds the encoded bytes.
type Encoder struct {
	B []byte
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.B = append(e.B, v) }

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.B = binary.LittleEndian.AppendUint16(e.B, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// I32s appends a u32 count followed by the elements.
func (e *Encoder) I32s(vs []int32) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U32(uint32(v))
	}
}

// I64s appends a u32 count followed by the elements.
func (e *Encoder) I64s(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(uint64(v))
	}
}

// F32s appends the raw elements (no count — callers encode dimensions
// themselves, as the matrix codec does).
func (e *Encoder) F32s(vs []float32) {
	for _, v := range vs {
		e.U32(math.Float32bits(v))
	}
}

// Bytes appends a u32 length followed by the bytes.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.B = append(e.B, b...)
}

// Decoder consumes little-endian primitives from a byte buffer with a
// sticky error: after the first failure every read returns zero values
// and Err reports the cause.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps b for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decode error, nil if all reads succeeded.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// take returns the next n bytes, or nil after marking truncation.
func (d *Decoder) take(n int) []byte {
	if n < 0 || d.Remaining() < n {
		d.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, d.Remaining()))
		d.off = len(d.b)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// count reads a u32 element count and validates it against the bytes
// actually remaining (width bytes per element), so a corrupt count can
// never drive an outsized allocation.
func (d *Decoder) count(width int) int {
	n := int(d.U32())
	if d.err == nil && n*width > d.Remaining() {
		d.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrTruncated, n, d.Remaining()))
		return 0
	}
	return n
}

// I32s reads a u32 count followed by the elements.
func (d *Decoder) I32s() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.U32())
	}
	return vs
}

// I64s reads a u32 count followed by the elements.
func (d *Decoder) I64s() []int64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(d.U64())
	}
	return vs
}

// F32s reads exactly n raw elements.
func (d *Decoder) F32s(n int) []float32 {
	b := d.take(4 * n)
	if b == nil {
		return nil
	}
	vs := make([]float32, n)
	for i := range vs {
		vs[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return vs
}

// Presence reads a codec-level presence byte: 0 for nil, 1 for
// present. Any other value is rejected as malformed — the format has
// one canonical encoding per value, and a sloppy boolean would break
// that (the fuzz harness asserts decode∘encode is the identity).
func (d *Decoder) Presence() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: presence byte not 0/1", ErrMalformed))
		return false
	}
}

// TakeBytes reads a u32 length followed by that many bytes.
func (d *Decoder) TakeBytes() []byte {
	n := d.count(1)
	if d.err != nil {
		return nil
	}
	return d.take(n)
}

// AppendMatrix appends the wire encoding of m (u32 rows, u32 cols,
// row-major f32 data) to dst.
func AppendMatrix(dst []byte, m *tensor.Matrix) []byte {
	e := Encoder{B: dst}
	e.U32(uint32(m.Rows))
	e.U32(uint32(m.Cols))
	e.F32s(m.Data)
	return e.B
}

// DecodeMatrix reads one matrix. The receiver owns the result (it is
// heap-allocated, never pooled: wire-decoded tensors have no Put site,
// so handing them to the pool would poison its pairing invariant).
func DecodeMatrix(d *Decoder) *tensor.Matrix {
	rows := int(d.U32())
	cols := int(d.U32())
	if d.Err() != nil {
		return nil
	}
	if rows < 0 || cols < 0 || (cols != 0 && rows > (d.Remaining()/4)/cols) || rows*cols*4 > d.Remaining() {
		d.fail(fmt.Errorf("%w: matrix %dx%d exceeds %d remaining bytes", ErrTruncated, rows, cols, d.Remaining()))
		return nil
	}
	data := d.F32s(rows * cols)
	if d.Err() != nil {
		return nil
	}
	return tensor.FromData(rows, cols, data)
}

// DataCodec encodes one concrete Payload.Data type. Encode must accept
// a typed-nil value of the registered type (the engine ships typed
// nils for empty request slots); Decode must reproduce it.
type DataCodec struct {
	// Encode appends v's body to the encoder.
	Encode func(e *Encoder, v any)
	// Decode reads one body and returns the value.
	Decode func(d *Decoder) any
}

var (
	dataMu     sync.RWMutex
	dataByID   = map[uint8]DataCodec{}
	dataByType = map[reflect.Type]uint8{}
)

// RegisterData installs the codec for the concrete type of prototype
// under the given wire id. Ids are part of the wire format: both ends
// of a connection must register the same (id, type, codec) triples —
// the engine does so in an init, so every aptworker binary agrees.
// Duplicate ids or types panic (a silent overwrite would corrupt the
// format).
func RegisterData(id uint8, prototype any, c DataCodec) {
	t := reflect.TypeOf(prototype)
	if t == nil || c.Encode == nil || c.Decode == nil {
		panic("transport: RegisterData requires a typed prototype and a complete codec")
	}
	dataMu.Lock()
	defer dataMu.Unlock()
	if _, dup := dataByID[id]; dup {
		panic(fmt.Sprintf("transport: data codec id %d registered twice", id))
	}
	if _, dup := dataByType[t]; dup {
		panic(fmt.Sprintf("transport: data codec for %v registered twice", t))
	}
	dataByID[id] = c
	dataByType[t] = id
}

func lookupDataID(v any) (uint8, DataCodec, bool) {
	dataMu.RLock()
	defer dataMu.RUnlock()
	id, ok := dataByType[reflect.TypeOf(v)]
	if !ok {
		return 0, DataCodec{}, false
	}
	return id, dataByID[id], true
}

func lookupData(id uint8) (DataCodec, bool) {
	dataMu.RLock()
	defer dataMu.RUnlock()
	c, ok := dataByID[id]
	return c, ok
}

// AppendPayload appends the versioned wire encoding of p to dst. It
// fails only when p.Data has a concrete type with no registered codec.
func AppendPayload(dst []byte, p comm.Payload) ([]byte, error) {
	e := Encoder{B: dst}
	var flags uint8
	if p.Mat != nil {
		flags |= flagMat
	}
	if p.Ints != nil {
		flags |= flagInts
	}
	if p.Data != nil {
		flags |= flagData
	}
	e.U8(wireVersion)
	e.U8(flags)
	e.I64(p.Bytes)
	if p.Mat != nil {
		e.B = AppendMatrix(e.B, p.Mat)
	}
	if p.Ints != nil {
		e.I32s(p.Ints)
	}
	if p.Data != nil {
		id, codec, ok := lookupDataID(p.Data)
		if !ok {
			return dst, fmt.Errorf("%w: %T (RegisterData it)", ErrUnknownData, p.Data)
		}
		e.U8(id)
		lenAt := len(e.B)
		e.U32(0) // body length back-patched below
		codec.Encode(&e, p.Data)
		binary.LittleEndian.PutUint32(e.B[lenAt:], uint32(len(e.B)-lenAt-4))
	}
	return e.B, nil
}

// DecodePayload decodes one complete payload body, rejecting unknown
// versions, unregistered data types, truncation, and trailing bytes.
func DecodePayload(b []byte) (comm.Payload, error) {
	d := NewDecoder(b)
	var p comm.Payload
	if v := d.U8(); d.Err() == nil && v != wireVersion {
		return p, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, wireVersion)
	}
	flags := d.U8()
	if d.Err() == nil && flags&^uint8(flagMat|flagInts|flagData) != 0 {
		return p, fmt.Errorf("%w: unknown flag bits %#x", ErrMalformed, flags)
	}
	p.Bytes = d.I64()
	if flags&flagMat != 0 {
		p.Mat = DecodeMatrix(d)
	}
	if flags&flagInts != 0 {
		p.Ints = d.I32s()
		if p.Ints == nil && d.Err() == nil {
			p.Ints = []int32{} // present-but-empty survives the round trip
		}
	}
	if flags&flagData != 0 {
		id := d.U8()
		body := d.TakeBytes()
		if d.Err() == nil {
			codec, ok := lookupData(id)
			if !ok {
				return comm.Payload{}, fmt.Errorf("%w: id %d", ErrUnknownData, id)
			}
			bd := NewDecoder(body)
			p.Data = codec.Decode(bd)
			if bd.Err() != nil {
				return comm.Payload{}, bd.Err()
			}
			if bd.Remaining() != 0 {
				return comm.Payload{}, fmt.Errorf("%w: %d bytes after data body", ErrTrailing, bd.Remaining())
			}
		}
	}
	if err := d.Err(); err != nil {
		return comm.Payload{}, err
	}
	if d.Remaining() != 0 {
		return comm.Payload{}, fmt.Errorf("%w: %d bytes", ErrTrailing, d.Remaining())
	}
	return p, nil
}
