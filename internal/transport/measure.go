package transport

import (
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// WireStats holds measured transport speeds: what the live fabric
// actually delivers, as opposed to the platform's simulated link
// model. Bandwidths are bytes/sec of application payload (goodput);
// call times are per-collective fixed costs.
type WireStats struct {
	AllToAllBps      float64
	AllGatherBps     float64
	AllReduceBps     float64
	AllToAllCallSec  float64
	AllGatherCallSec float64
}

// MeasureWire runs timed collective trials over the live transport and
// returns wire statistics that are IDENTICAL on every rank. Every rank
// must call it at the same point (it is itself a sequence of
// collectives). bytesPerPeer sizes each trial payload; more trials
// smooth scheduler noise.
//
// Determinism across ranks: wall-clock timings differ per rank, so
// after the trials the ranks exchange their local measurements and
// take the element-wise maximum of the per-trial durations
// (conservative: the collective is only as fast as its slowest rank —
// which is also exactly the lockstep semantics). Planning decisions
// derived from the result therefore agree bit-for-bit on all ranks,
// preserving the engine's identical-plan invariant.
//
//apt:allow simclock measuring the real wire is this function's entire purpose; results flow into planner profiles, never into the simulated clocks directly
func MeasureWire(c *comm.Comm, rank, bytesPerPeer, trials int) WireStats {
	if bytesPerPeer <= 0 {
		bytesPerPeer = 1 << 20
	}
	if trials <= 0 {
		trials = 3
	}
	n := c.NumDevices()
	cols := bytesPerPeer / 4
	if cols < 1 {
		cols = 1
	}
	mat := tensor.FromData(1, cols, make([]float32, cols))
	for i := range mat.Data {
		mat.Data[i] = float32(i%7) * 0.25
	}
	outs := make([]comm.Payload, n)
	for j := range outs {
		outs[j] = comm.Payload{Mat: mat}
	}
	// The ring trial reduces in place; a scratch copy keeps mat's values
	// stable for the gather trials.
	ringBuf := make([]float32, cols)

	// local[t*3+k] = this rank's duration of trial t for collective k
	// (0=alltoall, 1=allgather, 2=allreduce-proxy).
	local := make([]float32, 0, trials*3)
	for t := 0; t < trials; t++ {
		start := time.Now()
		c.AllToAllNoCharge(rank, outs)
		a2a := time.Since(start).Seconds()

		start = time.Now()
		c.AllGatherNoCharge(rank, comm.Payload{Mat: mat})
		ag := time.Since(start).Seconds()

		// AllReduce runs the real ring data plane (chunked reduce-scatter
		// + allgather), so its measured bandwidth reflects the ring's
		// serialization and hop pattern, not the gather's.
		start = time.Now()
		c.RingAllReduceData(rank, ringBuf, nil)
		ar := time.Since(start).Seconds()

		local = append(local, float32(a2a), float32(ag), float32(ar))
	}

	// Cross-rank agreement: element-wise max over all ranks' samples.
	agreed := make([]float32, len(local))
	copy(agreed, local)
	for _, p := range c.AllGatherNoCharge(rank, comm.Payload{Mat: tensor.FromData(1, len(local), local)}) {
		for i, v := range p.Mat.Data {
			if v > agreed[i] {
				agreed[i] = v
			}
		}
	}

	perPeer := float64(bytesPerPeer/4) * 4 // actual matrix bytes
	volume := perPeer * float64(n-1)       // bytes each rank sends per collective
	best := func(k int) float64 {          // fastest agreed trial, sec
		b := math.Inf(1)
		for t := 0; t < trials; t++ {
			if v := float64(agreed[t*3+k]); v < b {
				b = v
			}
		}
		return b
	}
	bps := func(sec float64) float64 {
		if sec <= 0 {
			return math.Inf(1)
		}
		return volume / sec
	}
	a2a, ag, ar := best(0), best(1), best(2)
	// The ring moves 2·(n-1)/n of the vector per rank, not the gather's
	// (n-1)× volume; its goodput is that wire over the measured time.
	ringWire := 2 * perPeer * float64(n-1) / float64(n)
	arBps := math.Inf(1)
	if ar > 0 {
		arBps = ringWire / ar
	}
	return WireStats{
		AllToAllBps:      bps(a2a),
		AllGatherBps:     bps(ag),
		AllReduceBps:     arBps,
		AllToAllCallSec:  0.1 * a2a, // attribute ~10% of the best trial to fixed call cost
		AllGatherCallSec: 0.1 * ag,
	}
}

// ApplyTo overlays the measured wire speeds on base and returns a new
// profile: collective bandwidths and call latencies come from the
// wire, while the memory-subsystem fields (UVA/peer/GPU read) keep the
// base model's values — the wire says nothing about them. Feed the
// result to core's planner (Task.ProfileOverride or
// Replanner.CalibrateTransport) to cost strategies against observed
// transport speeds.
func (w WireStats) ApplyTo(base *comm.Profile) *comm.Profile {
	p := *base
	if w.AllToAllBps > 0 && !math.IsInf(w.AllToAllBps, 0) {
		p.AllToAllBps = w.AllToAllBps
	}
	if w.AllGatherBps > 0 && !math.IsInf(w.AllGatherBps, 0) {
		p.AllGatherBps = w.AllGatherBps
	}
	if w.AllReduceBps > 0 && !math.IsInf(w.AllReduceBps, 0) {
		p.AllReduceBps = w.AllReduceBps
	}
	if w.AllToAllCallSec > 0 {
		p.AllToAllCallSec = w.AllToAllCallSec
	}
	if w.AllGatherCallSec > 0 {
		p.AllGatherCallSec = w.AllGatherCallSec
	}
	return &p
}
