package transport

import (
	"bytes"
	"encoding/hex"
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/device"
	"repro/internal/hardware"
)

// TestFP16ChunkGolden pins the fp16 chunk wire layout: little-endian
// IEEE-754 binary16, round-to-nearest-even. These bytes are protocol.
func TestFP16ChunkGolden(t *testing.T) {
	src := []float32{0, 1, -2, 0.5, 65504, 6.103515625e-05}
	dst := make([]byte, FP16Chunk{}.EncodedLen(len(src)))
	FP16Chunk{}.EncodeChunk(dst, src)
	want := "0000" + "003c" + "00c0" + "0038" + "ff7b" + "0004"
	if got := hex.EncodeToString(dst); got != want {
		t.Fatalf("fp16 golden mismatch:\n got  %s\n want %s", got, want)
	}
	back := make([]float32, len(src))
	if err := (FP16Chunk{}).DecodeChunk(back, dst); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, v := range back {
		if math.Float32bits(v) != math.Float32bits(src[i]) {
			t.Fatalf("fp16 roundtrip[%d] = %v, want %v (all inputs are exact halfs)", i, v, src[i])
		}
	}
}

// TestInt8ChunkGolden pins the int8 chunk wire layout: f32 LE scale
// (maxAbs/127) then one int8 per value, round-half-away via math.Round.
func TestInt8ChunkGolden(t *testing.T) {
	// maxAbs 127 makes the scale exactly 1.0: quantization is identity
	// on integers, rounding is visible on the fractional values.
	src := []float32{127, -64, 1, -1, 0.4, 0.6}
	dst := make([]byte, Int8Chunk{}.EncodedLen(len(src)))
	Int8Chunk{}.EncodeChunk(dst, src)
	want := "0000803f" + "7f" + "c0" + "01" + "ff" + "00" + "01"
	if got := hex.EncodeToString(dst); got != want {
		t.Fatalf("int8 golden mismatch:\n got  %s\n want %s", got, want)
	}

	// All-zero chunks encode scale 0 and zero bytes.
	zsrc := make([]float32, 3)
	zdst := make([]byte, Int8Chunk{}.EncodedLen(3))
	Int8Chunk{}.EncodeChunk(zdst, zsrc)
	if got := hex.EncodeToString(zdst); got != "00000000"+"000000" {
		t.Fatalf("int8 zero-chunk golden mismatch: %s", got)
	}
	back := make([]float32, 3)
	if err := (Int8Chunk{}).DecodeChunk(back, zdst); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, v := range back {
		if v != 0 {
			t.Fatalf("zero chunk decoded[%d] = %v", i, v)
		}
	}
}

// TestCompressedChunkPayloadGolden pins the Payload.Data framing of a
// compressed chunk (wire data id 5) crossing the TCP backend.
func TestCompressedChunkPayloadGolden(t *testing.T) {
	p := comm.Payload{
		Data:  &comm.CompressedChunk{Codec: 1, N: 3, B: []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}},
		Bytes: 6,
	}
	want := "01" + "04" + "0600000000000000" + // version, flags(data), bytes
		"05" + "10000000" + // data id 5, body length 16
		"01" + "01" + "03000000" + "06000000" + "aabbccddeeff"
	got := hex.EncodeToString(mustEncode(t, p))
	if got != want {
		t.Fatalf("golden mismatch:\n got  %s\n want %s", got, want)
	}
	back, err := DecodePayload(mustEncode(t, p))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c, ok := back.Data.(*comm.CompressedChunk)
	if !ok || c.Codec != 1 || c.N != 3 || !bytes.Equal(c.B, p.Data.(*comm.CompressedChunk).B) {
		t.Fatalf("roundtrip = %+v", back.Data)
	}
}

// TestF16ConversionEdges pins the binary16 conversion corners the
// codec's determinism depends on.
func TestF16ConversionEdges(t *testing.T) {
	cases := []struct {
		in   float32
		want uint16
	}{
		{0, 0x0000},
		{float32(math.Copysign(0, -1)), 0x8000},
		{1, 0x3c00},
		{-1.5, 0xbe00},
		{65504, 0x7bff}, // largest finite half
		{65519, 0x7bff}, // rounds down to 65504
		{65520, 0x7c00}, // rounds up past the range: Inf
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{2.9802322387695312e-08, 0x0000}, // half the smallest subnormal: tie-to-even -> 0
		{5.9604644775390625e-08, 0x0001}, // smallest subnormal (2^-24)
		{6.097555160522461e-05, 0x03ff},  // largest subnormal
		{6.103515625e-05, 0x0400},        // smallest normal
		{1.0009765625, 0x3c01},           // 1 + one half-ulp step
		{1.00048828125, 0x3c00},          // tie rounds to even (down)
		{1.00146484375, 0x3c02},          // tie rounds to even (up)
	}
	for _, tc := range cases {
		if got := f32ToF16(tc.in); got != tc.want {
			t.Errorf("f32ToF16(%v) = %#04x, want %#04x", tc.in, got, tc.want)
		}
	}
	if got := f32ToF16(float32(math.NaN())); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("f32ToF16(NaN) = %#04x, not a half NaN", got)
	}
	// f16ToF32 is exact on every half value; spot-check the corners.
	back := []struct {
		in   uint16
		want float32
	}{
		{0x0000, 0}, {0x3c00, 1}, {0x7bff, 65504},
		{0x0001, 5.960464477539063e-08}, {0x03ff, 6.097555160522461e-05},
		{0x0400, 6.103515625e-05},
	}
	for _, tc := range back {
		if got := f16ToF32(tc.in); math.Float32bits(got) != math.Float32bits(tc.want) {
			t.Errorf("f16ToF32(%#04x) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if !math.IsInf(float64(f16ToF32(0x7c00)), 1) || !math.IsInf(float64(f16ToF32(0xfc00)), -1) {
		t.Error("f16ToF32 Inf mismatch")
	}
	if !math.IsNaN(float64(f16ToF32(0x7e00))) {
		t.Error("f16ToF32(0x7e00) not NaN")
	}
}

func TestChunkCodecByName(t *testing.T) {
	for _, name := range []string{"", "fp32", "none"} {
		if c, err := ChunkCodecByName(name); err != nil || c != nil {
			t.Errorf("ChunkCodecByName(%q) = %v, %v; want nil, nil", name, c, err)
		}
	}
	if c, err := ChunkCodecByName("fp16"); err != nil || c == nil || c.Name() != "fp16" {
		t.Errorf("fp16 lookup = %v, %v", c, err)
	}
	if c, err := ChunkCodecByName("int8"); err != nil || c == nil || c.Name() != "int8" {
		t.Errorf("int8 lookup = %v, %v", c, err)
	}
	if _, err := ChunkCodecByName("bf16"); err == nil {
		t.Error("unknown codec accepted")
	}
}

// TestChunkDecodeRejectsSizeMismatch pins the malformed-length guards.
func TestChunkDecodeRejectsSizeMismatch(t *testing.T) {
	if err := (FP16Chunk{}).DecodeChunk(make([]float32, 3), make([]byte, 5)); err == nil {
		t.Error("fp16 accepted mismatched length")
	}
	if err := (Int8Chunk{}).DecodeChunk(make([]float32, 3), make([]byte, 6)); err == nil {
		t.Error("int8 accepted mismatched length")
	}
}

// FuzzFP16ChunkIdentity: decoding arbitrary fp16 chunk bytes and
// re-encoding reproduces them exactly, except NaN payloads which
// collapse to the canonical quiet NaN — every half value except NaNs
// round-trips bit-exactly through float32.
func FuzzFP16ChunkIdentity(f *testing.F) {
	f.Add([]byte{0x00, 0x3c, 0xff, 0x7b})
	f.Add([]byte{0x01, 0x00, 0xff, 0x03, 0x00, 0x7c})
	f.Fuzz(func(t *testing.T, b []byte) {
		n := len(b) / 2
		b = b[:2*n]
		vals := make([]float32, n)
		if err := (FP16Chunk{}).DecodeChunk(vals, b); err != nil {
			t.Fatalf("decode: %v", err)
		}
		re := make([]byte, 2*n)
		FP16Chunk{}.EncodeChunk(re, vals)
		for i := 0; i < n; i++ {
			in := uint16(b[2*i]) | uint16(b[2*i+1])<<8
			out := uint16(re[2*i]) | uint16(re[2*i+1])<<8
			if in&0x7c00 == 0x7c00 && in&0x3ff != 0 {
				if want := in&0x8000 | 0x7e00; out != want {
					t.Fatalf("[%d] NaN %#04x re-encoded to %#04x, want canonical %#04x", i, in, out, want)
				}
				continue
			}
			if in != out {
				t.Fatalf("[%d] %#04x re-encoded to %#04x", i, in, out)
			}
		}
	})
}

// FuzzInt8ChunkError: int8 quantization is deterministic and its
// reconstruction error is bounded by half a quantization step.
func FuzzInt8ChunkError(f *testing.F) {
	f.Add(float32(1), float32(-2), float32(0.5), float32(100))
	f.Add(float32(0), float32(0), float32(0), float32(0))
	f.Fuzz(func(t *testing.T, a, b, c, d float32) {
		src := []float32{a, b, c, d}
		for _, v := range src {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return
			}
		}
		enc := make([]byte, Int8Chunk{}.EncodedLen(len(src)))
		Int8Chunk{}.EncodeChunk(enc, src)
		enc2 := make([]byte, len(enc))
		Int8Chunk{}.EncodeChunk(enc2, src)
		if !bytes.Equal(enc, enc2) {
			t.Fatal("int8 encoding is not deterministic")
		}
		dec := make([]float32, len(src))
		if err := (Int8Chunk{}).DecodeChunk(dec, enc); err != nil {
			t.Fatalf("decode: %v", err)
		}
		var maxAbs float64
		for _, v := range src {
			if av := math.Abs(float64(v)); av > maxAbs {
				maxAbs = av
			}
		}
		scale := maxAbs / 127
		tol := scale*0.51 + 1e-30
		for i := range src {
			if diff := math.Abs(float64(dec[i]) - float64(src[i])); diff > tol && !math.IsInf(diff, 0) {
				t.Fatalf("[%d] %v decoded as %v (err %v > tol %v)", i, src[i], dec[i], diff, tol)
			}
		}
	})
}

// TestTCPRingAllReduce is the 2-rank TCP ring smoke test (run by CI):
// the compressed and uncompressed rings cross real sockets and land
// bit-identical on both ranks.
func TestTCPRingAllReduce(t *testing.T) {
	const n, elems = 2, 67
	trs := startWorld(t, n, nil)
	for _, codecName := range []string{"fp32", "fp16", "int8"} {
		codec, err := ChunkCodecByName(codecName)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]float32, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := commFor(trs[r])
				data := make([]float32, elems)
				for i := range data {
					data[i] = float32(r+1) + float32(i)*0.25
				}
				c.RingAllReduceData(r, data, codec)
				results[r] = data
			}(r)
		}
		wg.Wait()
		for i := 0; i < elems; i++ {
			if math.Float32bits(results[0][i]) != math.Float32bits(results[1][i]) {
				t.Fatalf("%s: ranks disagree at [%d]: %v vs %v", codecName, i, results[0][i], results[1][i])
			}
		}
		if codecName == "fp32" {
			for i := 0; i < elems; i++ {
				if want := 3 + 0.5*float32(i); results[0][i] != want {
					t.Fatalf("fp32 ring[%d] = %v, want %v", i, results[0][i], want)
				}
			}
		}
	}
}

// TestRingChanVsTCPBitIdentical pins the compressed ring's
// backend-independence: the same inputs reduce to bit-identical values
// over in-process channels and over TCP sockets, for every codec.
func TestRingChanVsTCPBitIdentical(t *testing.T) {
	const n, elems = 2, 53
	input := func(r, i int) float32 { return float32(math.Sin(float64(r*100 + i))) }

	runChan := func(codec comm.ChunkCodec) [][]float32 {
		p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, n)
		c := comm.New(device.NewGroup(p))
		out := make([][]float32, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				data := make([]float32, elems)
				for i := range data {
					data[i] = input(r, i)
				}
				c.RingAllReduceData(r, data, codec)
				out[r] = data
			}(r)
		}
		wg.Wait()
		return out
	}
	runTCP := func(codec comm.ChunkCodec) [][]float32 {
		trs := startWorld(t, n, nil)
		out := make([][]float32, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c := commFor(trs[r])
				data := make([]float32, elems)
				for i := range data {
					data[i] = input(r, i)
				}
				c.RingAllReduceData(r, data, codec)
				out[r] = data
			}(r)
		}
		wg.Wait()
		return out
	}

	for _, codec := range []comm.ChunkCodec{nil, FP16Chunk{}, Int8Chunk{}} {
		name := "fp32"
		if codec != nil {
			name = codec.Name()
		}
		ch, tc := runChan(codec), runTCP(codec)
		for r := 0; r < n; r++ {
			for i := 0; i < elems; i++ {
				if math.Float32bits(ch[r][i]) != math.Float32bits(tc[r][i]) {
					t.Fatalf("%s rank %d [%d]: chan %v != tcp %v", name, r, i, ch[r][i], tc[r][i])
				}
			}
		}
	}
}
