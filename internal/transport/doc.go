// Package transport implements the multi-process distributed runtime:
// a comm.Transport backend where every rank of the collective group is
// a separate OS process and payloads cross real TCP sockets, plus the
// deterministic wire-format codecs, the rank/world rendezvous
// bootstrap, and wall-clock wire measurement for planner calibration.
//
// The pieces (DESIGN.md decision 16):
//
//   - wire.go: versioned little-endian codecs for comm.Payload and
//     tensor.Matrix, with a registry for the engine's opaque
//     Payload.Data types (golden- and fuzz-tested; truncated and
//     oversized frames are rejected with typed errors).
//   - bootstrap.go: torch.distributed-style tcp:// rendezvous — rank 0
//     listens on the coordinator address, every rank registers its data
//     listener, the coordinator broadcasts the address table, then the
//     ranks dial a full mesh (higher rank dials lower).
//   - tcp.go: the TCP transport itself — one duplex connection per
//     rank pair, length-prefixed frames, a writer and a reader
//     goroutine per peer so the collectives' send-all-then-receive-all
//     pattern can never deadlock on socket buffers.
//   - measure.go: bandwidth/latency trials over the live transport,
//     producing a comm.Profile so the planner and the online
//     re-planner cost strategies against observed wire speeds instead
//     of the simulated link model.
//
// Determinism: the wire carries exactly the values the in-process
// channel backend moves by reference, every rank performs the same
// arithmetic in the same order on them, and the transport's only
// wall-clock use is connection management and explicit measurement —
// so real-mode training over TCP is bit-identical to the in-process
// engine (asserted per strategy by the engine's distributed tests).
package transport
