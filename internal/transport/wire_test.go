package transport

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/comm"
	"repro/internal/tensor"
)

// testReq is the stand-in for the engine's opaque Payload.Data types;
// the id is far from the engine's range so both registries can load in
// one test binary.
type testReq struct {
	IDs  []int32
	Ptrs []int64
}

func init() {
	RegisterData(200, (*testReq)(nil), DataCodec{
		Encode: func(e *Encoder, v any) {
			q := v.(*testReq)
			if q == nil {
				e.U8(0)
				return
			}
			e.U8(1)
			e.I32s(q.IDs)
			e.I64s(q.Ptrs)
		},
		Decode: func(d *Decoder) any {
			if !d.Presence() {
				return (*testReq)(nil)
			}
			return &testReq{IDs: d.I32s(), Ptrs: d.I64s()}
		},
	})
}

func mustEncode(t *testing.T, p comm.Payload) []byte {
	t.Helper()
	b, err := AppendPayload(nil, p)
	if err != nil {
		t.Fatalf("AppendPayload: %v", err)
	}
	return b
}

// TestPayloadGolden pins the wire format: these bytes are the
// protocol, and any codec change that alters them is a breaking wire
// revision that must bump wireVersion.
func TestPayloadGolden(t *testing.T) {
	p := comm.Payload{
		Mat:   tensor.FromData(2, 2, []float32{1, 2, 3, 4}),
		Ints:  []int32{5, -1},
		Bytes: 7,
	}
	want := "01" + "03" + "0700000000000000" +
		"02000000" + "02000000" + "0000803f" + "00000040" + "00004040" + "00008040" +
		"02000000" + "05000000" + "ffffffff"
	got := hex.EncodeToString(mustEncode(t, p))
	if got != want {
		t.Fatalf("golden mismatch:\n got  %s\n want %s", got, want)
	}
}

func TestMatrixGolden(t *testing.T) {
	b := AppendMatrix(nil, tensor.FromData(1, 3, []float32{0, -2, 0.5}))
	want := "01000000" + "03000000" + "00000000" + "000000c0" + "0000003f"
	if got := hex.EncodeToString(b); got != want {
		t.Fatalf("golden mismatch:\n got  %s\n want %s", got, want)
	}
}

func payloadEqual(a, b comm.Payload) bool {
	if a.Bytes != b.Bytes {
		return false
	}
	if (a.Mat == nil) != (b.Mat == nil) {
		return false
	}
	if a.Mat != nil {
		if a.Mat.Rows != b.Mat.Rows || a.Mat.Cols != b.Mat.Cols {
			return false
		}
		// Bit-exact, not approximately: the wire must move floats
		// unchanged or distributed training diverges from in-process.
		for i := range a.Mat.Data {
			if math32bits(a.Mat.Data[i]) != math32bits(b.Mat.Data[i]) {
				return false
			}
		}
	}
	if (a.Ints == nil) != (b.Ints == nil) || !reflect.DeepEqual(append([]int32{}, a.Ints...), append([]int32{}, b.Ints...)) {
		return false
	}
	return reflect.DeepEqual(a.Data, b.Data)
}

func math32bits(f float32) uint32 {
	return math.Float32bits(f)
}

func TestPayloadRoundTrip(t *testing.T) {
	cases := map[string]comm.Payload{
		"empty":     {},
		"bytesOnly": {Bytes: 123456789},
		"mat":       {Mat: tensor.FromData(3, 2, []float32{1, -1, 0.25, 3e30, -0, 42})},
		"matEmpty":  {Mat: tensor.FromData(0, 5, nil)},
		"ints":      {Ints: []int32{1, 2, 3, -4}},
		"intsEmpty": {Ints: []int32{}},
		"dataNil":   {Data: (*testReq)(nil)},
		"data":      {Data: &testReq{IDs: []int32{7, 8}, Ptrs: []int64{0, 2}}},
		"all": {
			Mat:   tensor.FromData(1, 1, []float32{9}),
			Ints:  []int32{-5},
			Data:  &testReq{IDs: []int32{1}, Ptrs: []int64{0, 1}},
			Bytes: 10,
		},
	}
	for name, p := range cases {
		t.Run(name, func(t *testing.T) {
			b := mustEncode(t, p)
			got, err := DecodePayload(b)
			if err != nil {
				t.Fatalf("DecodePayload: %v", err)
			}
			if !payloadEqual(p, got) {
				t.Fatalf("round trip changed payload:\n sent %+v\n got  %+v", p, got)
			}
			// Re-encoding the decoded payload must reproduce the exact
			// bytes: the format has one canonical encoding per value.
			b2, err := AppendPayload(nil, got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatalf("re-encode differs:\n first  %x\n second %x", b, b2)
			}
		})
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := mustEncode(t, comm.Payload{
		Mat:  tensor.FromData(2, 3, []float32{1, 2, 3, 4, 5, 6}),
		Ints: []int32{1, 2, 3},
		Data: &testReq{IDs: []int32{9}, Ptrs: []int64{0}},
	})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodePayload(full[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(full))
		}
	}
	// A clean cut mid-matrix is specifically a truncation error.
	if _, err := DecodePayload(full[:14]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestDecodeRejectsCorruptHeader(t *testing.T) {
	full := mustEncode(t, comm.Payload{Ints: []int32{1}})

	bad := append([]byte{}, full...)
	bad[0] = 99
	if _, err := DecodePayload(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: want ErrVersion, got %v", err)
	}

	bad = append([]byte{}, full...)
	bad[1] |= 0x80
	if _, err := DecodePayload(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("flags: want ErrMalformed, got %v", err)
	}

	if _, err := DecodePayload(append(append([]byte{}, full...), 0)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing: want ErrTrailing, got %v", err)
	}
}

func TestDecodeRejectsHugeCount(t *testing.T) {
	// Ints count claims 2^31 elements in a 12-byte body: the count
	// guard must reject it without attempting the allocation.
	var e Encoder
	e.U8(wireVersion)
	e.U8(flagInts)
	e.I64(0)
	e.U32(1 << 31)
	if _, err := DecodePayload(e.B); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
}

func TestDecodeRejectsUnknownData(t *testing.T) {
	var e Encoder
	e.U8(wireVersion)
	e.U8(flagData)
	e.I64(0)
	e.U8(250) // never registered
	e.Bytes([]byte{1})
	if _, err := DecodePayload(e.B); !errors.Is(err, ErrUnknownData) {
		t.Fatalf("want ErrUnknownData, got %v", err)
	}
	if _, err := AppendPayload(nil, comm.Payload{Data: "a string"}); !errors.Is(err, ErrUnknownData) {
		t.Fatalf("encode of unregistered type: want ErrUnknownData, got %v", err)
	}
}

func FuzzDecodePayload(f *testing.F) {
	seeds := []comm.Payload{
		{},
		{Mat: tensor.FromData(2, 2, []float32{1, 2, 3, 4}), Ints: []int32{5}, Bytes: 7},
		{Data: &testReq{IDs: []int32{1, 2}, Ptrs: []int64{0, 2}}},
		{Data: (*testReq)(nil)},
	}
	for _, p := range seeds {
		b, err := AppendPayload(nil, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodePayload(b) // must never panic or overallocate
		if err != nil {
			return
		}
		// Anything that decodes must re-encode to the identical bytes:
		// decode is the inverse of the one canonical encoding.
		b2, err := AppendPayload(nil, p)
		if err != nil {
			t.Fatalf("decoded payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b, b2)
		}
	})
}
