// Package obs is the unified observability layer shared by training
// and serving: per-step spans on named tracks (the paper's Figures 1
// and 8-11 are stage-by-stage breakdowns, and APT's cost models are
// only trustworthy if an operator can see the same per-step,
// per-device record), a counter/gauge/histogram metrics registry with
// a text exposition format, and exporters — Chrome trace-event JSON
// (chrome://tracing-loadable) plus the text renderers in
// internal/trace.
//
// The design goal is zero cost when disabled: every emission point
// holds a *Track (or *Collector) that is nil when observability is
// off, and Emit on a nil receiver is a no-op, so the engine's hot
// kernels stay allocation-free. When enabled, each track is owned by
// one device goroutine — appends never take a lock — and the tracks
// are merged only at flush time.
package obs

import "sort"

// Span is one timed interval on a track: a stage of one mini-batch
// step on a simulated device, a collective on a comm link, or one
// serving micro-batch phase. Times are simulated seconds relative to
// the collector's time base (the start of the run).
type Span struct {
	// Stage names the interval (sample/build/load/train/shuffle for
	// engine steps, the operator name for collectives).
	Stage string
	// Step is the mini-batch step (or serving batch ordinal) the span
	// belongs to; -1 when not step-scoped.
	Step int
	// Start and Dur position the span on the simulated clock, seconds.
	Start, Dur float64
	// Bytes is the payload volume moved during the span (collectives
	// and feature loads; 0 otherwise).
	Bytes int64
}

// End returns Start + Dur.
func (s Span) End() float64 { return s.Start + s.Dur }

// Track is one horizontal lane of the timeline: a simulated device's
// compute stream, its sampler stream, or a comm link. A track must be
// fed by a single goroutine at a time; distinct tracks may be fed
// concurrently (that is the whole point).
type Track struct {
	// Name labels the lane ("dev0", "dev0/sampler", "dev0/comm", ...).
	Name string
	// Proc groups tracks into Chrome trace processes ("device",
	// "sampler", "comm", "serve").
	Proc  string
	spans []Span
}

// Emit appends a span to the track. A nil receiver or a non-positive
// duration is a no-op, so call sites need no enabled-check and
// zero-length stages never break the strict per-track time ordering.
func (t *Track) Emit(stage string, step int, start, dur float64, bytes int64) {
	if t == nil || dur <= 0 {
		return
	}
	t.spans = append(t.spans, Span{Stage: stage, Step: step, Start: start, Dur: dur, Bytes: bytes})
}

// Len returns the number of spans collected so far.
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Spans returns the track's spans, sorted by start time. The returned
// slice aliases the track's buffer once sorted; treat it as read-only.
func (t *Track) Spans() []Span {
	if t == nil {
		return nil
	}
	sort.SliceStable(t.spans, func(i, j int) bool { return t.spans[i].Start < t.spans[j].Start })
	return t.spans
}

// Collector owns the tracks of one run. AddTrack happens at setup
// time (single goroutine); afterwards each track is appended to by its
// owning goroutine without locks, and the collector is read only after
// the emitting goroutines have been joined (epoch end, server drain).
type Collector struct {
	tracks []*Track
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// AddTrack registers a new track under the given process group and
// returns its handle. Not safe for concurrent use; call during setup.
func (c *Collector) AddTrack(proc, name string) *Track {
	if c == nil {
		return nil
	}
	t := &Track{Name: name, Proc: proc}
	c.tracks = append(c.tracks, t)
	return t
}

// Tracks returns the collector's tracks in registration order.
func (c *Collector) Tracks() []*Track {
	if c == nil {
		return nil
	}
	return c.tracks
}

// NumSpans totals the spans across all tracks.
func (c *Collector) NumSpans() int {
	n := 0
	for _, t := range c.Tracks() {
		n += t.Len()
	}
	return n
}

// Reset drops all collected spans but keeps the track layout, so a
// caller can flush per window (e.g. per epoch) without re-wiring the
// emission points.
func (c *Collector) Reset() {
	for _, t := range c.Tracks() {
		t.spans = t.spans[:0]
	}
}

// MaxEnd returns the latest span end across all tracks — the length of
// the recorded timeline.
func (c *Collector) MaxEnd() float64 {
	var mx float64
	for _, t := range c.Tracks() {
		for _, s := range t.spans {
			if e := s.End(); e > mx {
				mx = e
			}
		}
	}
	return mx
}
