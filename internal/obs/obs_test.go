package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentTrackEmission drives one goroutine per track — the
// engine's device-goroutine shape — and checks every span lands on its
// own track. Run under -race (make verify does) this doubles as the
// collector's data-race test.
func TestConcurrentTrackEmission(t *testing.T) {
	c := NewCollector()
	const (
		nTracks = 8
		nSpans  = 500
	)
	tracks := make([]*Track, nTracks)
	for i := range tracks {
		tracks[i] = c.AddTrack("device", "dev")
	}
	reg := NewRegistry()
	steps := reg.Counter("steps_total", "")
	var wg sync.WaitGroup
	for i, tr := range tracks {
		wg.Add(1)
		go func(i int, tr *Track) {
			defer wg.Done()
			start := 0.0
			for s := 0; s < nSpans; s++ {
				dur := 0.001 * float64(i+1)
				tr.Emit("train", s, start, dur, int64(s))
				start += dur
				steps.Inc()
			}
		}(i, tr)
	}
	wg.Wait()
	if got := c.NumSpans(); got != nTracks*nSpans {
		t.Fatalf("collected %d spans, want %d", got, nTracks*nSpans)
	}
	if got := steps.Value(); got != nTracks*nSpans {
		t.Fatalf("counter = %d, want %d", got, nTracks*nSpans)
	}
	for i, tr := range tracks {
		spans := tr.Spans()
		for s := 1; s < len(spans); s++ {
			if spans[s].Start <= spans[s-1].Start {
				t.Fatalf("track %d: span %d start %v <= previous %v",
					i, s, spans[s].Start, spans[s-1].Start)
			}
		}
	}
}

// TestNilSafety: every emission-point type must be a no-op on nil, so
// disabled observability needs no call-site guards.
func TestNilSafety(t *testing.T) {
	var tr *Track
	tr.Emit("train", 0, 0, 1, 0)
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil track collected spans")
	}
	var c *Collector
	if c.AddTrack("p", "t") != nil || c.Tracks() != nil {
		t.Fatal("nil collector returned a track")
	}
	var cnt *Counter
	cnt.Inc()
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	var r *Registry
	if r.Counter("x", "") != nil || r.Exposition() != "" {
		t.Fatal("nil registry created metrics")
	}
	r.GaugeFunc("y", "", func() float64 { return 1 })
}

// TestZeroDurationSkipped: zero- and negative-duration spans must not
// be recorded, preserving strict per-track time ordering.
func TestZeroDurationSkipped(t *testing.T) {
	c := NewCollector()
	tr := c.AddTrack("device", "dev0")
	tr.Emit("build", 0, 0, 0, 0)
	tr.Emit("load", 0, 0, -1, 0)
	tr.Emit("train", 0, 0, 0.5, 0)
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
}

func TestCollectorResetAndMaxEnd(t *testing.T) {
	c := NewCollector()
	tr := c.AddTrack("device", "dev0")
	tr.Emit("train", 0, 1, 2, 0)
	if got := c.MaxEnd(); got != 3 {
		t.Fatalf("MaxEnd = %v, want 3", got)
	}
	c.Reset()
	if c.NumSpans() != 0 {
		t.Fatal("Reset left spans behind")
	}
	if len(c.Tracks()) != 1 {
		t.Fatal("Reset dropped the track layout")
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("apt_requests_total", "Completed requests.").Add(3)
	r.Gauge("apt_epoch_seconds", "Last epoch time.").Set(1.5)
	r.GaugeFunc("apt_sim_seconds", "", func() float64 { return 2 })
	h := r.LinearHistogram("apt_batch_seeds", "Seeds per batch.", 8)
	h.Observe(2)
	h.Observe(2)
	h.Observe(5)

	out := r.Exposition()
	for _, want := range []string{
		"# HELP apt_requests_total Completed requests.",
		"# TYPE apt_requests_total counter",
		"apt_requests_total 3",
		"# TYPE apt_epoch_seconds gauge",
		"apt_epoch_seconds 1.5",
		"apt_sim_seconds 2",
		"# TYPE apt_batch_seeds histogram",
		`apt_batch_seeds_bucket{le="2"} 2`,
		`apt_batch_seeds_bucket{le="5"} 3`,
		`apt_batch_seeds_bucket{le="+Inf"} 3`,
		"apt_batch_seeds_sum 9",
		"apt_batch_seeds_count 3",
		"apt_batch_seeds_max 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Get-or-create returns the same instance.
	if r.Counter("apt_requests_total", "").Value() != 3 {
		t.Fatal("re-lookup created a fresh counter")
	}
	// Kind mismatch must fail loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch did not panic")
			}
		}()
		r.Gauge("apt_requests_total", "")
	}()
}

func TestLogHistogramQuantiles(t *testing.T) {
	h := newLogHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	p50 := h.Quantile(0.50)
	if p50 < 400 || p50 > 700 {
		t.Fatalf("p50 = %d, want ~500 within log-bucket error", p50)
	}
	if q := h.Quantile(0.999); q > h.Max() {
		t.Fatalf("quantile %d exceeds max %d", q, h.Max())
	}
	if h.Mean() < 400 || h.Mean() > 600 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

// TestChromeTraceExport checks the exporter produces loadable JSON
// with per-process/thread metadata and microsecond timestamps.
func TestChromeTraceExport(t *testing.T) {
	c := NewCollector()
	dev := c.AddTrack("device", "dev0")
	smp := c.AddTrack("sampler", "dev0/sampler")
	dev.Emit("train", 0, 0.001, 0.002, 0)
	smp.Emit("sample", 1, 0.0015, 0.001, 64)

	raw, err := ChromeTraceJSON(c)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	var metas, xs int
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
		case "X":
			xs++
			if ev["ts"].(float64) <= 0 || ev["dur"].(float64) <= 0 {
				t.Fatalf("bad X event: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	// 2 process_name + 2 thread_name metadata events, 2 spans.
	if metas != 4 || xs != 2 {
		t.Fatalf("metas=%d xs=%d, want 4 and 2", metas, xs)
	}
}

// TestOptionsBuild checks the functional options fold correctly and
// Enabled gates on any sink.
func TestOptionsBuild(t *testing.T) {
	if BuildOptions().Enabled() {
		t.Fatal("empty options enabled")
	}
	o := BuildOptions(WithTracePath("/tmp/x.json"))
	if !o.Enabled() || o.TracePath != "/tmp/x.json" {
		t.Fatalf("options = %+v", o)
	}
	obsv := &recordingObserver{}
	o = BuildOptions(WithObserver(obsv))
	if !o.Enabled() || o.Observer == nil {
		t.Fatal("observer option not applied")
	}
	c := NewCollector()
	c.AddTrack("device", "dev0").Emit("train", 0, 0, 1, 0)
	r := NewRegistry()
	r.Counter("x", "").Inc()
	if err := o.Flush(c, r); err != nil {
		t.Fatal(err)
	}
	if obsv.spans != 1 || obsv.metrics == nil {
		t.Fatalf("observer got %d span tracks, metrics %v", obsv.spans, obsv.metrics)
	}
}

type recordingObserver struct {
	spans   int
	metrics *Registry
}

func (o *recordingObserver) ObserveSpans(tracks []*Track) { o.spans = len(tracks) }
func (o *recordingObserver) ObserveMetrics(r *Registry)   { o.metrics = r }
