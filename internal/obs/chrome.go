package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace-event exporter: renders a Collector as the JSON object
// format that chrome://tracing (and Perfetto's legacy importer) loads
// directly. Tracks become threads grouped into one process per Proc
// label, spans become complete ("X") events with the simulated clock
// mapped to microseconds, so the prefetch overlap of the pipelined
// engine is visually verifiable — the sampler track's span for step
// t+1 sits above the device track's compute span for step t.

// chromeMeta is a metadata ("M") event naming a process or thread.
type chromeMeta struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Name string         `json:"name"`
	Args chromeNameArgs `json:"args"`
}

type chromeNameArgs struct {
	Name string `json:"name"`
}

// chromeSpan is a complete ("X") event.
type chromeSpan struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Name string         `json:"name"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args chromeSpanArgs `json:"args"`
}

type chromeSpanArgs struct {
	Step  int   `json:"step"`
	Bytes int64 `json:"bytes,omitempty"`
}

// chromeFile is the top-level trace object.
type chromeFile struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the collector's tracks as Chrome
// trace-event JSON. Spans within each track are emitted in start-time
// order; the simulated clock (seconds) becomes the trace's microsecond
// axis.
func WriteChromeTrace(w io.Writer, c *Collector) error {
	events := make([]json.RawMessage, 0, c.NumSpans()+2*len(c.Tracks()))
	add := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		events = append(events, raw)
		return nil
	}
	pidOf := map[string]int{}
	tidNext := map[int]int{}
	for _, t := range c.Tracks() {
		pid, ok := pidOf[t.Proc]
		if !ok {
			pid = len(pidOf)
			pidOf[t.Proc] = pid
			if err := add(chromeMeta{Ph: "M", Pid: pid, Name: "process_name",
				Args: chromeNameArgs{Name: t.Proc}}); err != nil {
				return err
			}
		}
		tid := tidNext[pid]
		tidNext[pid] = tid + 1
		if err := add(chromeMeta{Ph: "M", Pid: pid, Tid: tid, Name: "thread_name",
			Args: chromeNameArgs{Name: t.Name}}); err != nil {
			return err
		}
		for _, s := range t.Spans() {
			if err := add(chromeSpan{
				Ph: "X", Pid: pid, Tid: tid, Name: s.Stage,
				Ts: s.Start * 1e6, Dur: s.Dur * 1e6,
				Args: chromeSpanArgs{Step: s.Step, Bytes: s.Bytes},
			}); err != nil {
				return err
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ChromeTraceJSON renders WriteChromeTrace to a byte slice.
func ChromeTraceJSON(c *Collector) ([]byte, error) {
	var buf jsonBuffer
	if err := WriteChromeTrace(&buf, c); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// WriteChromeTraceFile writes the trace to path (0644).
func WriteChromeTraceFile(path string, c *Collector) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace file: %w", err)
	}
	if err := WriteChromeTrace(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonBuffer is a minimal io.Writer over a byte slice (avoids pulling
// bytes.Buffer into the package's tiny dependency surface).
type jsonBuffer struct{ b []byte }

func (w *jsonBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
