package obs

// The option surface shared by the facade's constructors: NewAPT and
// Serve both accept ...Option, so observability is opt-in per call
// site instead of a process-global toggle.

// Observer receives observability data at flush points: the end of a
// training run (core.APT) or server close (serve.Server). Both methods
// are called from the flushing goroutine after all emitters have been
// joined, so implementations need no synchronization against the run.
type Observer interface {
	// ObserveSpans receives the run's tracks with their collected
	// spans. The tracks are live references — read, don't mutate.
	ObserveSpans(tracks []*Track)
	// ObserveMetrics receives the run's metrics registry.
	ObserveMetrics(r *Registry)
}

// Options is the resolved observability configuration.
type Options struct {
	// Observer receives spans and metrics at flush points; nil
	// disables the callback.
	Observer Observer
	// TracePath, when non-empty, writes a Chrome trace-event JSON file
	// of the run's spans at flush time (load it in chrome://tracing).
	TracePath string
}

// Enabled reports whether any observability sink is configured; the
// engine only allocates collectors (and pays the span emission cost)
// when it is.
func (o Options) Enabled() bool { return o.Observer != nil || o.TracePath != "" }

// Option configures observability on a constructor.
type Option func(*Options)

// WithObserver routes flushed spans and metrics to obs.
func WithObserver(observer Observer) Option {
	return func(o *Options) { o.Observer = observer }
}

// WithTracePath writes a Chrome trace-event JSON file of the run to
// path at flush time.
func WithTracePath(path string) Option {
	return func(o *Options) { o.TracePath = path }
}

// BuildOptions folds opts into a resolved Options.
func BuildOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Flush delivers a finished run to the configured sinks: the Chrome
// trace file first (so an Observer panic cannot lose the file), then
// the Observer callbacks. Either argument may be nil.
func (o Options) Flush(c *Collector, r *Registry) error {
	var err error
	if o.TracePath != "" && c != nil {
		err = WriteChromeTraceFile(o.TracePath, c)
	}
	if o.Observer != nil {
		if c != nil {
			o.Observer.ObserveSpans(c.Tracks())
		}
		if r != nil {
			o.Observer.ObserveMetrics(r)
		}
	}
	return err
}
