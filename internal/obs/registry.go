package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics half of the observability layer: a named registry of
// counters, gauges, and histograms with a Prometheus-style text
// exposition format. It subsumes the serving stats registry and the
// engine's epoch volume accounting: aptserve exposes it on /metrics,
// aptrun and aptbench dump it on exit.
//
// Counters and gauges are atomic (no lock on the update path);
// histograms take a short mutex per Observe — they are fed per
// micro-batch or per epoch, never per kernel.

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (not atomic with concurrent Set; the
// engine only updates gauges from the collection goroutine).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.Set(g.Value() + d)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram buckets non-negative int64 observations (unit chosen by
// the caller: microseconds for latencies, seeds for batch sizes).
// Two bucketings exist: log-scale — sub sub-buckets per power-of-two
// octave, the serving latency scheme (~19% worst-case relative error
// on reported quantiles at sub=4) — and linear, one bucket per value
// up to a cap.
type Histogram struct {
	mu      sync.Mutex
	log     bool
	sub     int // log: sub-buckets per octave
	buckets []int64
	count   int64
	sum     int64
	max     int64
}

// latOctaves spans 1 .. ~2^26 units; latSub is the log-scale
// sub-bucket resolution per octave.
const (
	latOctaves = 27
	latSub     = 4
)

func newLogHistogram() *Histogram {
	return &Histogram{log: true, sub: latSub, buckets: make([]int64, latOctaves*latSub)}
}

func newLinearHistogram(max int) *Histogram {
	if max < 1 {
		max = 1
	}
	return &Histogram{buckets: make([]int64, max+1)}
}

// bucketOf maps a value to its bucket index.
func (h *Histogram) bucketOf(v int64) int {
	if v < 1 {
		return 0
	}
	if !h.log {
		if v >= int64(len(h.buckets)) {
			return len(h.buckets) - 1
		}
		return int(v)
	}
	// Octave = position of the highest set bit, split into h.sub
	// linear sub-buckets.
	oct := 0
	for x := v; x > 1; x >>= 1 {
		oct++
	}
	lo := int64(1) << oct
	b := oct*h.sub + int((v-lo)*int64(h.sub)/lo)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket b.
func (h *Histogram) bucketUpper(b int) int64 {
	if !h.log {
		return int64(b)
	}
	oct := b / h.sub
	sub := b % h.sub
	lo := int64(1) << oct
	return lo + (lo*int64(sub+1))/int64(h.sub)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.buckets[h.bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the average observation.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the approximate q-quantile (0 < q <= 1), reported
// as the matched bucket's upper bound clamped to the true maximum so
// the log-scale overshoot never exceeds an observed value.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen > rank {
			if u := h.bucketUpper(b); u < h.max {
				return u
			}
			return h.max
		}
	}
	return h.max
}

// NonEmptyBuckets calls fn for each bucket holding at least one
// observation, with the bucket's upper bound and its count.
func (h *Histogram) NonEmptyBuckets(fn func(upper, count int64)) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for b, c := range h.buckets {
		if c > 0 {
			fn(h.bucketUpper(b), c)
		}
	}
}

// metric is one registered entry.
type metric struct {
	name string
	help string
	kind string // "counter" | "gauge" | "histogram"
	c    *Counter
	g    *Gauge
	gf   func() float64
	h    *Histogram
}

// Registry is an ordered, named metrics registry. Get-or-create
// lookups are cheap but not hot-path-free: callers hold the returned
// metric handle and update it directly.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]*metric{}}
}

// lookup returns the entry for name, creating it with mk if absent.
// It panics if the name is already registered with a different kind —
// that is always a programming error worth failing loudly on.
func (r *Registry) lookup(name, help, kind string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.index[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := mk()
	m.name, m.help, m.kind = name, help, kind
	r.metrics = append(r.metrics, m)
	r.index[name] = m
	return m
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "counter", func() *metric { return &metric{c: &Counter{}} }).c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "gauge", func() *metric { return &metric{g: &Gauge{}} }).g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time (e.g. accumulated simulated seconds).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.lookup(name, help, "gauge", func() *metric { return &metric{gf: fn} })
}

// LogHistogram returns the named log-scale histogram, creating it if
// needed.
func (r *Registry) LogHistogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "histogram", func() *metric { return &metric{h: newLogHistogram()} }).h
}

// LinearHistogram returns the named linear histogram with buckets
// 0..max, creating it if needed.
func (r *Registry) LinearHistogram(name, help string, max int) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "histogram", func() *metric { return &metric{h: newLinearHistogram(max)} }).h
}

// WriteExposition writes every metric in registration order in the
// text exposition format:
//
//	# HELP apt_serve_requests_total Completed requests.
//	# TYPE apt_serve_requests_total counter
//	apt_serve_requests_total 123
//
// Histograms expose cumulative le-labeled buckets plus _sum, _count,
// and _max series.
func (r *Registry) WriteExposition(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range metrics {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch {
		case m.c != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.c.Value())
		case m.g != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.g.Value()))
		case m.gf != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gf()))
		case m.h != nil:
			var cum int64
			m.h.NonEmptyBuckets(func(upper, count int64) {
				cum += count
				fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m.name, upper, cum)
			})
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.h.Count())
			fmt.Fprintf(&b, "%s_sum %d\n", m.name, m.h.Sum())
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.h.Count())
			fmt.Fprintf(&b, "%s_max %d\n", m.name, m.h.Max())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Exposition renders WriteExposition to a string.
func (r *Registry) Exposition() string {
	var b strings.Builder
	r.WriteExposition(&b)
	return b.String()
}

// Names returns the registered metric names in registration order
// (tests use it to assert coverage).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		names[i] = m.name
	}
	return names
}

// SortedNames returns the registered names sorted alphabetically.
func (r *Registry) SortedNames() []string {
	names := r.Names()
	sort.Strings(names)
	return names
}

// formatFloat renders gauges compactly: integral values without a
// fractional part, everything else with enough digits to round-trip.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
