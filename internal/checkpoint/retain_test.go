package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func touch(t *testing.T, path string) {
	t.Helper()
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotNameOrdersLexically(t *testing.T) {
	// Zero padding is what lets Prune/LatestSnapshot sort names instead
	// of parsing epochs back out of them.
	if a, b := SnapshotName(9), SnapshotName(10); a >= b {
		t.Fatalf("SnapshotName(9)=%q not < SnapshotName(10)=%q", a, b)
	}
}

func TestPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, ep := range []int{1, 2, 3, 4} {
		touch(t, filepath.Join(dir, SnapshotName(ep)))
	}
	// Bystanders the pruner must never touch.
	touch(t, filepath.Join(dir, DefaultName))
	touch(t, filepath.Join(dir, "notes.txt"))

	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		SnapshotName(3): true, SnapshotName(4): true,
		DefaultName: true, "notes.txt": true,
	}
	if len(left) != len(want) {
		t.Fatalf("after prune: %v", left)
	}
	for _, p := range left {
		if !want[filepath.Base(p)] {
			t.Fatalf("prune left unexpected %s (or removed a keeper): %v", p, left)
		}
	}

	// keep <= 0 means retention off: nothing is removed.
	if err := Prune(dir, 0); err != nil {
		t.Fatal(err)
	}
	if after, _ := filepath.Glob(filepath.Join(dir, "*")); len(after) != len(left) {
		t.Fatalf("Prune(0) removed files: %v -> %v", left, after)
	}
}

func TestPruneIgnoresNonSnapshots(t *testing.T) {
	dir := t.TempDir()
	junk := []string{
		"snapshot-epfoo.aptc",     // non-numeric stamp
		"snapshot-ep.aptc",        // empty stamp
		"snapshot-ep00000001.tmp", // wrong extension
		"xsnapshot-ep00000001.aptc",
		"snapshot-ep00000001.aptc.bak",
	}
	for _, name := range junk {
		touch(t, filepath.Join(dir, name))
	}
	for _, ep := range []int{1, 2, 3} {
		touch(t, filepath.Join(dir, SnapshotName(ep)))
	}
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	// All junk survives; only the two oldest real snapshots are gone.
	if len(left) != len(junk)+1 {
		t.Fatalf("after prune: %v", left)
	}
	got, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != SnapshotName(3) {
		t.Fatalf("LatestSnapshot = %s, want %s (junk must never win)", got, SnapshotName(3))
	}
}

func TestRetentionOrdersNumerically(t *testing.T) {
	// Epochs at or past 1e8 outgrow the zero padding, so "snapshot-
	// ep100000000.aptc" sorts lexicographically BEFORE "snapshot-
	// ep99999999.aptc". Retention must order by parsed epoch, not name.
	dir := t.TempDir()
	touch(t, filepath.Join(dir, SnapshotName(99999999)))
	touch(t, filepath.Join(dir, SnapshotName(100000000)))

	got, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != SnapshotName(100000000) {
		t.Fatalf("LatestSnapshot = %s, want epoch 100000000", got)
	}
	if err := Prune(dir, 1); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "snapshot-ep*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || filepath.Base(left[0]) != SnapshotName(100000000) {
		t.Fatalf("prune kept %v, want only epoch 100000000", left)
	}
}

func TestLatestSnapshot(t *testing.T) {
	dir := t.TempDir()
	if _, err := LatestSnapshot(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("empty dir: err = %v, want ErrNotExist", err)
	}
	touch(t, filepath.Join(dir, DefaultName))
	got, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != DefaultName {
		t.Fatalf("rolling-only dir: %s, want %s", got, DefaultName)
	}
	touch(t, filepath.Join(dir, SnapshotName(2)))
	touch(t, filepath.Join(dir, SnapshotName(10)))
	if got, err = LatestSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != SnapshotName(10) {
		t.Fatalf("stamped dir: %s, want %s", got, SnapshotName(10))
	}
}
