package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/nn"
	"repro/internal/strategy"
	"repro/internal/transport"
)

// Snapshot container format. All integers little-endian:
//
//	u32 magic "APTS"
//	u32 version (snapVersion)
//	u32 section count
//	per section: u8 id, u32 bodyLen, body, u32 crc32(IEEE, body)
//
// Sections appear in strictly increasing id order, at most once each;
// meta and model are mandatory, opt/rng/freq/adaptive optional. The ordering
// rule plus presence-byte discipline inside bodies makes the encoding
// canonical: decoding and re-encoding any accepted file reproduces it
// byte for byte (the fuzz harness pins this), so no two byte strings
// decode to the same snapshot.

// snapVersion is the container version; bump on any layout change.
const snapVersion = 1

// snapMagic identifies snapshot files ("APTS" read as a little-endian
// word from the on-disk bytes 'S' 'T' 'P' 'A').
const snapMagic uint32 = 0x41505453

// DefaultMaxSectionBytes bounds one section body. Model parameters
// dominate real snapshots; anything near this limit is a corrupt or
// hostile length prefix.
const DefaultMaxSectionBytes = 1 << 30

// Section ids, in their mandatory file order.
const (
	secMeta     = 1
	secModel    = 2
	secOpt      = 3
	secRNG      = 4
	secFreq     = 5
	secAdaptive = 6
)

// Typed codec errors, mirroring the transport wire codec's taxonomy.
// Decode wraps them with context; test with errors.Is.
var (
	// ErrTruncated marks a file shorter than its own structure claims.
	ErrTruncated = errors.New("checkpoint: truncated snapshot")
	// ErrOversized marks a section whose declared length exceeds the
	// section size limit.
	ErrOversized = errors.New("checkpoint: section exceeds size limit")
	// ErrBadCRC marks a section whose body fails its CRC32 frame check.
	ErrBadCRC = errors.New("checkpoint: section CRC mismatch")
	// ErrVersion marks a snapshot from an unsupported container version.
	ErrVersion = errors.New("checkpoint: unsupported snapshot version")
	// ErrUnknownSection marks a section id this version does not know.
	ErrUnknownSection = errors.New("checkpoint: unknown section")
	// ErrTrailing marks bytes left over after the declared sections.
	ErrTrailing = errors.New("checkpoint: trailing bytes after snapshot")
	// ErrMalformed marks a structurally invalid snapshot (bad magic,
	// missing mandatory section, out-of-order sections, impossible
	// field values) whose framing was otherwise intact.
	ErrMalformed = errors.New("checkpoint: malformed snapshot")
)

// Encode renders the snapshot in the canonical container format.
func (s *Snapshot) Encode() ([]byte, error) {
	if _, err := strategy.Parse(s.Strategy); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	if len(s.Model) == 0 {
		return nil, fmt.Errorf("checkpoint: encode: snapshot has no model parameters")
	}
	type section struct {
		id   uint8
		body []byte
	}
	sections := []section{
		{secMeta, s.encodeMeta()},
		{secModel, s.Model},
	}
	if s.Opt != nil {
		sections = append(sections, section{secOpt, encodeOpt(s.Opt)})
	}
	if s.HasRNG() {
		sections = append(sections, section{secRNG, s.encodeRNG()})
	}
	if s.Freq != nil {
		var e transport.Encoder
		e.I64s(s.Freq)
		sections = append(sections, section{secFreq, e.B})
	}
	if s.Adaptive != nil {
		sections = append(sections, section{secAdaptive, encodeAdaptive(s.Adaptive)})
	}
	var e transport.Encoder
	e.U32(snapMagic)
	e.U32(snapVersion)
	e.U32(uint32(len(sections)))
	for _, sec := range sections {
		e.U8(sec.id)
		e.U32(uint32(len(sec.body)))
		e.B = append(e.B, sec.body...)
		e.U32(crc32.ChecksumIEEE(sec.body))
	}
	return e.B, nil
}

func (s *Snapshot) encodeMeta() []byte {
	var e transport.Encoder
	e.Bytes([]byte(s.Strategy))
	if s.Pipelined {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.U32(uint32(s.PipelineDepth))
	e.U64(math.Float64bits(s.Int8Frac))
	e.U64(s.Seed)
	e.U32(uint32(s.Devices))
	e.U32(uint32(s.EpochsDone))
	e.U32(uint32(s.StepInEpoch))
	return e.B
}

func (s *Snapshot) encodeRNG() []byte {
	var e transport.Encoder
	e.U32(uint32(len(s.SamplerRNG)))
	for _, st := range s.SamplerRNG {
		for _, w := range st {
			e.U64(w)
		}
	}
	for _, w := range s.EpochRNG {
		e.U64(w)
	}
	return e.B
}

// encodeOpt renders an optimizer state: kind, step, then per slot a
// presence byte and (when present) the flattened M moment, followed by
// the same structure for V. M and V presence are encoded independently
// per slot so SGD (no V at all) and Adam (M and V in lockstep) share
// one layout.
func encodeOpt(o *nn.OptState) []byte {
	var e transport.Encoder
	e.Bytes([]byte(o.Kind))
	e.I64(o.Step)
	e.U32(uint32(len(o.M)))
	for i := range o.M {
		encodeMoment(&e, o.M[i])
		var v []float32
		if i < len(o.V) {
			v = o.V[i]
		}
		encodeMoment(&e, v)
	}
	return e.B
}

func encodeMoment(e *transport.Encoder, m []float32) {
	if m == nil {
		e.U8(0)
		return
	}
	e.U8(1)
	e.U32(uint32(len(m)))
	e.F32s(m)
}

// Decode parses one snapshot, rejecting unknown versions, unknown or
// duplicated sections, truncation, CRC mismatches, and trailing bytes.
// Section bodies whose CRC passed but whose contents do not parse are
// ErrMalformed: at that point the file is intact, just not a snapshot.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("%w: %d bytes, header needs 12", ErrTruncated, len(b))
	}
	if m := binary.LittleEndian.Uint32(b); m != snapMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrMalformed, m)
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != snapVersion {
		return nil, fmt.Errorf("%w: got version %d, want %d", ErrVersion, v, snapVersion)
	}
	nsec := int(binary.LittleEndian.Uint32(b[8:]))
	rest := b[12:]
	s := &Snapshot{}
	lastID := uint8(0)
	for i := 0; i < nsec; i++ {
		if len(rest) < 5 {
			return nil, fmt.Errorf("%w: section %d frame header needs 5 bytes, %d remain",
				ErrTruncated, i, len(rest))
		}
		id := rest[0]
		bodyLen := int(binary.LittleEndian.Uint32(rest[1:]))
		rest = rest[5:]
		if bodyLen > DefaultMaxSectionBytes {
			return nil, fmt.Errorf("%w: section %d declares %d bytes", ErrOversized, id, bodyLen)
		}
		if len(rest) < bodyLen+4 {
			return nil, fmt.Errorf("%w: section %d body+crc needs %d bytes, %d remain",
				ErrTruncated, id, bodyLen+4, len(rest))
		}
		body := rest[:bodyLen]
		sum := binary.LittleEndian.Uint32(rest[bodyLen:])
		rest = rest[bodyLen+4:]
		if got := crc32.ChecksumIEEE(body); got != sum {
			return nil, fmt.Errorf("%w: section %d crc %08x, frame says %08x", ErrBadCRC, id, got, sum)
		}
		if id <= lastID {
			return nil, fmt.Errorf("%w: section %d duplicated or out of order", ErrMalformed, id)
		}
		lastID = id
		var err error
		switch id {
		case secMeta:
			err = s.decodeMeta(body)
		case secModel:
			s.Model = append([]byte(nil), body...)
		case secOpt:
			err = s.decodeOpt(body)
		case secRNG:
			err = s.decodeRNG(body)
		case secFreq:
			err = s.decodeFreq(body)
		case secAdaptive:
			err = s.decodeAdaptive(body)
		default:
			return nil, fmt.Errorf("%w: id %d", ErrUnknownSection, id)
		}
		if err != nil {
			return nil, err
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(rest))
	}
	if len(s.Model) == 0 || s.Strategy == "" {
		return nil, fmt.Errorf("%w: missing mandatory meta or model section", ErrMalformed)
	}
	return s, nil
}

func (s *Snapshot) decodeMeta(body []byte) error {
	d := transport.NewDecoder(body)
	s.Strategy = string(d.TakeBytes())
	switch d.U8() {
	case 0:
	case 1:
		s.Pipelined = true
	default:
		if d.Err() == nil {
			return fmt.Errorf("%w: meta pipelined byte not 0/1", ErrMalformed)
		}
	}
	s.PipelineDepth = int(d.U32())
	s.Int8Frac = math.Float64frombits(d.U64())
	s.Seed = d.U64()
	s.Devices = int(d.U32())
	s.EpochsDone = int(d.U32())
	s.StepInEpoch = int(d.U32())
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: meta: %v", ErrMalformed, err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes after meta fields", ErrMalformed, d.Remaining())
	}
	if _, err := strategy.Parse(s.Strategy); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if math.IsNaN(s.Int8Frac) || s.Int8Frac < 0 || s.Int8Frac >= 1 {
		return fmt.Errorf("%w: int8 fraction %v outside [0, 1)", ErrMalformed, s.Int8Frac)
	}
	if s.Devices <= 0 {
		return fmt.Errorf("%w: %d devices", ErrMalformed, s.Devices)
	}
	if s.StepInEpoch != 0 {
		return fmt.Errorf("%w: mid-epoch snapshots (step %d) are not supported by this version",
			ErrMalformed, s.StepInEpoch)
	}
	return nil
}

func (s *Snapshot) decodeRNG(body []byte) error {
	d := transport.NewDecoder(body)
	n := int(d.U32())
	if d.Err() == nil && n*32 > d.Remaining() {
		return fmt.Errorf("%w: rng section claims %d samplers, %d bytes remain", ErrMalformed, n, d.Remaining())
	}
	if d.Err() == nil && n != s.Devices {
		// Meta always precedes rng, so Devices is already validated.
		return fmt.Errorf("%w: %d rng cursors for %d devices", ErrMalformed, n, s.Devices)
	}
	s.SamplerRNG = make([][4]uint64, n)
	for i := range s.SamplerRNG {
		for w := range s.SamplerRNG[i] {
			s.SamplerRNG[i][w] = d.U64()
		}
	}
	for w := range s.EpochRNG {
		s.EpochRNG[w] = d.U64()
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: rng: %v", ErrMalformed, err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes after rng cursors", ErrMalformed, d.Remaining())
	}
	for i, st := range s.SamplerRNG {
		if st == ([4]uint64{}) {
			return fmt.Errorf("%w: sampler %d cursor is the degenerate all-zero xoshiro state", ErrMalformed, i)
		}
	}
	if s.EpochRNG == ([4]uint64{}) {
		return fmt.Errorf("%w: epoch rng cursor is the degenerate all-zero xoshiro state", ErrMalformed)
	}
	return nil
}

func (s *Snapshot) decodeFreq(body []byte) error {
	d := transport.NewDecoder(body)
	s.Freq = d.I64s()
	if s.Freq == nil && d.Err() == nil {
		s.Freq = []int64{} // present-but-empty survives the round trip
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: freq: %v", ErrMalformed, err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes after freq vector", ErrMalformed, d.Remaining())
	}
	for i, f := range s.Freq {
		if f < 0 {
			return fmt.Errorf("%w: negative access frequency at node %d", ErrMalformed, i)
		}
	}
	return nil
}

func (s *Snapshot) decodeOpt(body []byte) error {
	d := transport.NewDecoder(body)
	o := &nn.OptState{Kind: string(d.TakeBytes()), Step: d.I64()}
	n := int(d.U32())
	// Every slot carries at least two presence bytes, so a count beyond
	// half the remaining bytes is a corrupt length, not a big snapshot.
	if d.Err() == nil && n > d.Remaining()/2+1 {
		return fmt.Errorf("%w: opt section claims %d slots, %d bytes remain", ErrMalformed, n, d.Remaining())
	}
	o.M = make([][]float32, n)
	o.V = make([][]float32, n)
	anyV := false
	for i := 0; i < n && d.Err() == nil; i++ {
		o.M[i] = decodeMoment(d)
		o.V[i] = decodeMoment(d)
		if o.V[i] != nil {
			anyV = true
		}
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: opt: %v", ErrMalformed, err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes after opt moments", ErrMalformed, d.Remaining())
	}
	if o.Kind == "" {
		return fmt.Errorf("%w: opt section has empty kind", ErrMalformed)
	}
	if o.Step < 0 {
		return fmt.Errorf("%w: opt step %d", ErrMalformed, o.Step)
	}
	if !anyV {
		// nn.OptState uses a nil V for optimizers without second
		// moments; all-absent V slots decode back to that form.
		o.V = nil
	}
	s.Opt = o
	return nil
}

func decodeMoment(d *transport.Decoder) []float32 {
	if !d.Presence() {
		return nil
	}
	n := int(d.U32())
	if d.Err() != nil {
		return nil
	}
	v := d.F32s(n) // take() inside guards n against Remaining()
	if v == nil && d.Err() == nil {
		return []float32{}
	}
	return v
}
