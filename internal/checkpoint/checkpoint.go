// Package checkpoint defines APT's versioned training snapshot: one
// self-describing binary artifact holding everything a training run
// needs to resume bit-identically — model parameters, optimizer
// moments, the sampler RNG stream positions, epoch counters, cache
// hotness, and the active plan (strategy, pipeline depth, cache-tier
// split).
//
// The design mirrors the transport wire codec (internal/transport):
// little-endian primitives, length-prefixed CRC-framed sections, a
// canonical encoding (decode∘encode is the identity, pinned by golden
// and fuzz tests), and typed errors for every rejection class. RNG
// cursors are first-class state here, not an afterthought: the engine
// is deterministic GIVEN its RNG streams, so capturing each sampler's
// xoshiro position plus the epoch shuffler is exactly what makes a
// resumed run draw the same mini-batches the uninterrupted run would
// have drawn.
//
// Files are written atomically (temp file + rename), so a crash during
// Checkpoint can never corrupt the previous snapshot.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
	"repro/internal/strategy"
)

// DefaultName is the rolling snapshot filename inside a checkpoint
// directory: each epoch-boundary snapshot atomically replaces the
// previous one.
const DefaultName = "snapshot.aptc"

// Snapshot is the full training state at an epoch boundary. The
// zero-valued optional fields (Opt, SamplerRNG, Freq) encode as absent
// sections; Resume degrades gracefully without them (cold optimizer,
// fresh RNG streams, re-run dry-run).
//
//apt:snapshot
type Snapshot struct {
	// Strategy is the canonical name of the active strategy
	// (strategy.Kind round-trips through it).
	Strategy string
	// Pipelined records whether the run overlapped sampling with
	// compute; PipelineDepth is its prefetch bound (0 = engine default).
	Pipelined     bool
	PipelineDepth int
	// Int8Frac is the warm-tier share of the cache budget the run was
	// using (the re-planner may have moved it off the task's value).
	Int8Frac float64
	// Seed is the task seed the run was built from; resume validates it
	// so a snapshot cannot silently continue a different experiment.
	Seed uint64
	// Devices is the worker count the RNG cursors were captured under.
	// A resume onto a different device count (elastic resume) keeps the
	// params and optimizer but must drop the cursors and re-plan.
	Devices int
	// EpochsDone counts fully completed epochs; StepInEpoch is reserved
	// for future mid-epoch snapshots and is always 0 at a boundary.
	EpochsDone  int
	StepInEpoch int
	// Model is one replica's parameters in the nn.SaveParams format
	// (itself versioned; replicas are identical by the allreduce
	// invariant, so one is enough).
	Model []byte
	// Opt is the optimizer state (nil when the optimizer is not a
	// nn.StatefulOptimizer; moments are identical across devices for
	// the same reason the replicas are).
	Opt *nn.OptState
	// SamplerRNG holds each device sampler's RNG stream position;
	// EpochRNG is the epoch shuffler's. Empty SamplerRNG means the rng
	// section is absent (the snapshot cannot resume bit-identically,
	// only warm-start).
	SamplerRNG [][4]uint64
	EpochRNG   [4]uint64
	// Freq is the dry-run access-frequency vector the caches were
	// configured from; restoring it lets a same-topology resume skip
	// the dry-run entirely.
	Freq []int64
	// Adaptive carries the online re-planner's learned state and the
	// per-strategy dry-run statistics, so a resumed TrainAdaptive keeps
	// re-planning with the calibration it had already learned. Nil when
	// the run had no planner state to save.
	Adaptive *AdaptiveState
}

// Kind parses the snapshot's strategy name.
func (s *Snapshot) Kind() (strategy.Kind, error) {
	return strategy.Parse(s.Strategy)
}

// HasRNG reports whether the snapshot carries RNG cursors (the
// precondition for a bit-identical resume).
func (s *Snapshot) HasRNG() bool { return len(s.SamplerRNG) > 0 }

// Write encodes the snapshot to w.
func (s *Snapshot) Write(w io.Writer) error {
	b, err := s.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Read decodes one snapshot from r (which must contain exactly one:
// trailing bytes are rejected, mirroring the wire codec).
func Read(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	return Decode(b)
}

// WriteFile writes the snapshot atomically: encode, write to a temp
// file next to path, rename. A crash mid-write leaves the previous
// snapshot untouched.
func (s *Snapshot) WriteFile(path string) error {
	b, err := s.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile reads a snapshot written by WriteFile.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// LoadModelInto loads model parameters from path into m, accepting
// either a full training snapshot (this package's format) or a raw
// nn.SaveParams file — the first four bytes disambiguate. It is the
// serving-side loader: aptserve does not care about optimizer moments
// or RNG cursors, only the weights.
func LoadModelInto(m *nn.Model, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) >= 4 && binary.LittleEndian.Uint32(b) == snapMagic {
		snap, err := Decode(b)
		if err != nil {
			return err
		}
		return m.LoadParams(bytes.NewReader(snap.Model))
	}
	return m.LoadParams(bytes.NewReader(b))
}
