package checkpoint

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/strategy"
	"repro/internal/transport"
)

// AdaptiveState is the online re-planner's learned state plus the
// per-strategy dry-run statistics the planner selects over. Carrying
// both in the snapshot lets a resumed TrainAdaptive keep re-planning —
// and keep the calibration it had already learned — instead of holding
// the recorded plan frozen. The calibration factors are flattened here
// (core.Calibration cannot be imported without a cycle); core converts.
//
// Per-device stats are captured in full because the cost model compares
// per-device maxima (load imbalance); StepTrace timelines are not part
// of the state (the cost models never read them).
type AdaptiveState struct {
	// BaseFrac is the warm-tier split the dry-run volumes were
	// collected under.
	BaseFrac float64
	// Cooldown is the re-planner's remaining hysteresis epochs.
	Cooldown int
	// CalBuild/CalLoadHost/CalShuffle/CalTrain are the per-stage
	// measured-over-predicted correction factors (0 = not yet observed).
	CalBuild    float64
	CalLoadHost float64
	CalShuffle  float64
	CalTrain    float64
	// GradOverlap is the measured hidden fraction of the gradient
	// allreduce under the engine's backward-overlapped bucketing.
	GradOverlap float64
	// PerStrategy holds each strategy's dry-run accounting epoch.
	PerStrategy map[strategy.Kind]engine.EpochStats
}

// encodeAdaptive renders the adaptive section body. Strategies are
// emitted in ascending Kind order so the encoding is canonical.
func encodeAdaptive(a *AdaptiveState) []byte {
	var e transport.Encoder
	e.U64(math.Float64bits(a.BaseFrac))
	e.U32(uint32(a.Cooldown))
	for _, f := range [5]float64{a.CalBuild, a.CalLoadHost, a.CalShuffle, a.CalTrain, a.GradOverlap} {
		e.U64(math.Float64bits(f))
	}
	kinds := make([]strategy.Kind, 0, len(a.PerStrategy))
	for k := range a.PerStrategy {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	e.U32(uint32(len(kinds)))
	for _, k := range kinds {
		e.Bytes([]byte(k.String()))
		st := a.PerStrategy[k]
		encodeEpochStats(&e, &st)
	}
	return e.B
}

func encodeEpochStats(e *transport.Encoder, st *engine.EpochStats) {
	for _, f := range [7]float64{st.SampleSec, st.BuildSec, st.LoadSec, st.TrainSec,
		st.ShuffleSec, st.MeasuredPipelinedSec, st.MeanLoss} {
		e.U64(math.Float64bits(f))
	}
	e.U32(uint32(st.NumBatches))
	if st.OOM {
		e.U8(1)
	} else {
		e.U8(0)
	}
	encodeWorkerStats(e, &st.Totals)
	e.U32(uint32(len(st.PerDevice)))
	for i := range st.PerDevice {
		encodeWorkerStats(e, &st.PerDevice[i])
	}
}

func encodeWorkerStats(e *transport.Encoder, ws *engine.WorkerStats) {
	e.U32(uint32(len(ws.Load.Nodes)))
	for _, v := range ws.Load.Nodes {
		e.I64(v)
	}
	for _, v := range ws.Load.Bytes {
		e.I64(v)
	}
	e.U64(math.Float64bits(ws.Load.Seconds))
	for _, v := range [12]int64{ws.GraphA2ABytes, ws.GraphBcastBytes,
		ws.HiddenA2ABytes, ws.HiddenBcastBytes,
		ws.BuildA2ACalls, ws.BuildBcastCalls, ws.ShufA2ACalls, ws.ShufBcastCalls,
		ws.VirtualNodes, ws.Layer1Dst, ws.SampledEdges, ws.SeedsProcessed} {
		e.I64(v)
	}
	for _, f := range [3]float64{ws.LossSum, ws.GradCommSec, ws.GradExposedSec} {
		e.U64(math.Float64bits(f))
	}
}

func (s *Snapshot) decodeAdaptive(body []byte) error {
	d := transport.NewDecoder(body)
	a := &AdaptiveState{}
	a.BaseFrac = math.Float64frombits(d.U64())
	a.Cooldown = int(d.U32())
	for _, p := range [5]*float64{&a.CalBuild, &a.CalLoadHost, &a.CalShuffle, &a.CalTrain, &a.GradOverlap} {
		*p = math.Float64frombits(d.U64())
	}
	n := int(d.U32())
	// Each strategy entry is at least a 4-byte name prefix plus the
	// fixed stats frame, so a count beyond the remaining bytes is a
	// corrupt length, not a big snapshot.
	if d.Err() == nil && n > d.Remaining()/4+1 {
		return fmt.Errorf("%w: adaptive section claims %d strategies, %d bytes remain",
			ErrMalformed, n, d.Remaining())
	}
	var last strategy.Kind
	for i := 0; i < n && d.Err() == nil; i++ {
		name := string(d.TakeBytes())
		k, err := strategy.Parse(name)
		if err != nil {
			return fmt.Errorf("%w: adaptive: %v", ErrMalformed, err)
		}
		if k.String() != name || (i > 0 && k <= last) {
			// Canonical names in strictly ascending order, or the
			// encoding would not be unique.
			return fmt.Errorf("%w: adaptive strategy %q duplicated, out of order, or non-canonical",
				ErrMalformed, name)
		}
		last = k
		st, err := decodeEpochStats(d)
		if err != nil {
			return err
		}
		if a.PerStrategy == nil {
			a.PerStrategy = map[strategy.Kind]engine.EpochStats{}
		}
		a.PerStrategy[k] = st
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("%w: adaptive: %v", ErrMalformed, err)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d bytes after adaptive state", ErrMalformed, d.Remaining())
	}
	if a.Cooldown < 0 {
		return fmt.Errorf("%w: adaptive cooldown %d", ErrMalformed, a.Cooldown)
	}
	s.Adaptive = a
	return nil
}

func decodeEpochStats(d *transport.Decoder) (engine.EpochStats, error) {
	var st engine.EpochStats
	for _, p := range [7]*float64{&st.SampleSec, &st.BuildSec, &st.LoadSec, &st.TrainSec,
		&st.ShuffleSec, &st.MeasuredPipelinedSec, &st.MeanLoss} {
		*p = math.Float64frombits(d.U64())
	}
	st.NumBatches = int(d.U32())
	switch d.U8() {
	case 0:
	case 1:
		st.OOM = true
	default:
		if d.Err() == nil {
			return st, fmt.Errorf("%w: adaptive oom byte not 0/1", ErrMalformed)
		}
	}
	if err := decodeWorkerStats(d, &st.Totals); err != nil {
		return st, err
	}
	n := int(d.U32())
	// A worker-stats frame is >= 4 bytes (its location count alone).
	if d.Err() == nil && n > d.Remaining()/4+1 {
		return st, fmt.Errorf("%w: adaptive section claims %d per-device stats, %d bytes remain",
			ErrMalformed, n, d.Remaining())
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		var ws engine.WorkerStats
		if err := decodeWorkerStats(d, &ws); err != nil {
			return st, err
		}
		st.PerDevice = append(st.PerDevice, ws)
	}
	return st, nil
}

func decodeWorkerStats(d *transport.Decoder, ws *engine.WorkerStats) error {
	if n := int(d.U32()); d.Err() == nil && n != len(ws.Load.Nodes) {
		return fmt.Errorf("%w: adaptive load stats carry %d locations, this build has %d",
			ErrMalformed, n, len(ws.Load.Nodes))
	}
	for i := range ws.Load.Nodes {
		ws.Load.Nodes[i] = d.I64()
	}
	for i := range ws.Load.Bytes {
		ws.Load.Bytes[i] = d.I64()
	}
	ws.Load.Seconds = math.Float64frombits(d.U64())
	for _, p := range [12]*int64{&ws.GraphA2ABytes, &ws.GraphBcastBytes,
		&ws.HiddenA2ABytes, &ws.HiddenBcastBytes,
		&ws.BuildA2ACalls, &ws.BuildBcastCalls, &ws.ShufA2ACalls, &ws.ShufBcastCalls,
		&ws.VirtualNodes, &ws.Layer1Dst, &ws.SampledEdges, &ws.SeedsProcessed} {
		*p = d.I64()
	}
	for _, p := range [3]*float64{&ws.LossSum, &ws.GradCommSec, &ws.GradExposedSec} {
		*p = math.Float64frombits(d.U64())
	}
	return nil
}
