package checkpoint

import (
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// TestSectionIDsGolden pins the section-id assignments and the
// container header. Snapshots outlive binaries — kill-and-resume and
// elastic re-join decode files written by older builds — so a changed
// id or header here is a format break: add a new id (and bump
// snapVersion for header changes) instead of editing these.
func TestSectionIDsGolden(t *testing.T) {
	ids := []struct {
		name string
		id   uint8
		want uint8
	}{
		{"secMeta", secMeta, 1},
		{"secModel", secModel, 2},
		{"secOpt", secOpt, 3},
		{"secRNG", secRNG, 4},
		{"secFreq", secFreq, 5},
		{"secAdaptive", secAdaptive, 6},
	}
	for _, s := range ids {
		if s.id != s.want {
			t.Errorf("%s = %d, want %d", s.name, s.id, s.want)
		}
	}

	// A full snapshot must serialize its sections in id order with the
	// pinned container header: magic "APTS" (LE), version 1, count 6.
	b, err := fullSnapshot(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	const wantHeader = "53545041" + "01000000" + "06000000"
	if got := hex.EncodeToString(b[:12]); got != wantHeader {
		t.Fatalf("container header = %s, want %s", got, wantHeader)
	}
	var order []uint8
	for off := 12; off < len(b); {
		id := b[off]
		bodyLen := binary.LittleEndian.Uint32(b[off+1 : off+5])
		order = append(order, id)
		off += 5 + int(bodyLen) + 4 // header, body, crc
	}
	for i, s := range ids {
		if i >= len(order) || order[i] != s.want {
			t.Fatalf("section order = %v, want ids 1..6 in sequence", order)
		}
	}
}
