package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// Epoch-stamped snapshot retention. With retention on, each
// epoch-boundary snapshot gets its own file (SnapshotName) instead of
// replacing a single rolling one, and Prune keeps only the newest k.
// Names are parsed back to epoch numbers and sorted numerically:
// lexicographic order agrees with epoch order only while epochs fit
// the zero padding, and a glob would admit junk like
// "snapshot-epfoo.aptc" as a candidate for deletion.

// SnapshotName is the epoch-stamped snapshot filename for a retention
// directory.
func SnapshotName(epoch int) string {
	return fmt.Sprintf("snapshot-ep%08d.aptc", epoch)
}

// stampedName matches exactly the files SnapshotName produces (plus
// epochs wide enough to outgrow the padding).
var stampedName = regexp.MustCompile(`^snapshot-ep(\d+)\.aptc$`)

// listStamped returns the epoch-stamped snapshots in dir, oldest
// first by epoch number. Files that merely resemble snapshots are
// ignored, never deletion candidates.
func listStamped(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type stamped struct {
		path  string
		epoch int64
	}
	var found []stamped
	for _, ent := range entries {
		m := stampedName.FindStringSubmatch(ent.Name())
		if m == nil {
			continue
		}
		ep, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			continue // digit run too long for int64; not ours
		}
		found = append(found, stamped{filepath.Join(dir, ent.Name()), ep})
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].epoch != found[j].epoch {
			return found[i].epoch < found[j].epoch
		}
		return found[i].path < found[j].path // e.g. ep5 vs ep05
	})
	names := make([]string, len(found))
	for i, s := range found {
		names[i] = s.path
	}
	return names, nil
}

// Prune removes all but the newest keep epoch-stamped snapshots in
// dir. The rolling DefaultName file, temp files, and anything else in
// the directory are never touched. keep <= 0 is a no-op (retention
// off).
func Prune(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	names, err := listStamped(dir)
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-keep)] {
		if err := os.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// LatestSnapshot returns the path of the newest snapshot in dir: the
// highest-epoch stamped file, or the rolling DefaultName when no
// stamped snapshots exist. It reports os.ErrNotExist (wrapped) when the
// directory holds neither — errors.Is(err, os.ErrNotExist) to test.
func LatestSnapshot(dir string) (string, error) {
	names, err := listStamped(dir)
	if err != nil {
		return "", err
	}
	if len(names) > 0 {
		return names[len(names)-1], nil
	}
	rolling := filepath.Join(dir, DefaultName)
	if _, err := os.Stat(rolling); err != nil {
		return "", fmt.Errorf("checkpoint: no snapshot in %s: %w", dir, err)
	}
	return rolling, nil
}
