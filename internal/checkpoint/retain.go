package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Epoch-stamped snapshot retention. With retention on, each
// epoch-boundary snapshot gets its own file (SnapshotName) instead of
// replacing a single rolling one, and Prune keeps only the newest k.
// The epoch number is zero-padded so lexicographic filename order IS
// epoch order — Prune and LatestSnapshot sort names, never parse them.

// SnapshotName is the epoch-stamped snapshot filename for a retention
// directory.
func SnapshotName(epoch int) string {
	return fmt.Sprintf("snapshot-ep%08d.aptc", epoch)
}

// listStamped returns the epoch-stamped snapshots in dir, oldest first.
func listStamped(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "snapshot-ep*.aptc"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Prune removes all but the newest keep epoch-stamped snapshots in
// dir. The rolling DefaultName file, temp files, and anything else in
// the directory are never touched. keep <= 0 is a no-op (retention
// off).
func Prune(dir string, keep int) error {
	if keep <= 0 {
		return nil
	}
	names, err := listStamped(dir)
	if err != nil {
		return err
	}
	for _, name := range names[:max(0, len(names)-keep)] {
		if err := os.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// LatestSnapshot returns the path of the newest snapshot in dir: the
// highest-epoch stamped file, or the rolling DefaultName when no
// stamped snapshots exist. It reports os.ErrNotExist (wrapped) when the
// directory holds neither — errors.Is(err, os.ErrNotExist) to test.
func LatestSnapshot(dir string) (string, error) {
	names, err := listStamped(dir)
	if err != nil {
		return "", err
	}
	if len(names) > 0 {
		return names[len(names)-1], nil
	}
	rolling := filepath.Join(dir, DefaultName)
	if _, err := os.Stat(rolling); err != nil {
		return "", fmt.Errorf("checkpoint: no snapshot in %s: %w", dir, err)
	}
	return rolling, nil
}
