package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/strategy"
)

// fullSnapshot builds a snapshot exercising every section.
func fullSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	m := nn.NewGraphSAGE(4, 8, 3, 2)
	m.Init(graph.NewRNG(1))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	opt := nn.NewAdam(0.01)
	params := m.Params()
	for _, p := range params {
		for i := range p.G.Data {
			p.G.Data[i] = float32(i%7) * 0.125
		}
	}
	opt.Step(params)
	st := opt.State(params)
	return &Snapshot{
		Strategy:      "NFP",
		Pipelined:     true,
		PipelineDepth: 2,
		Int8Frac:      0.25,
		Seed:          42,
		Devices:       2,
		EpochsDone:    3,
		Model:         buf.Bytes(),
		Opt:           &st,
		SamplerRNG:    [][4]uint64{{1, 2, 3, 4}, {5, 6, 7, 8}},
		EpochRNG:      [4]uint64{9, 10, 11, 12},
		Freq:          []int64{4, 0, 9, 1},
		Adaptive:      adaptiveState(),
	}
}

// adaptiveState builds a re-planner state with every field exercised.
func adaptiveState() *AdaptiveState {
	gdp := engine.EpochStats{
		SampleSec: 0.5, BuildSec: 0.25, LoadSec: 2, TrainSec: 1.5, ShuffleSec: 0.125,
		NumBatches: 7, MeanLoss: 1.25,
	}
	gdp.Totals.SampledEdges = 900
	gdp.Totals.GradCommSec = 0.25
	gdp.Totals.GradExposedSec = 0.0625
	gdp.PerDevice = []engine.WorkerStats{{SeedsProcessed: 40}, {SeedsProcessed: 41}}
	gdp.PerDevice[0].Load.Nodes[0] = 11
	gdp.PerDevice[0].Load.Bytes[0] = 44
	gdp.PerDevice[0].Load.Seconds = 0.375
	snp := engine.EpochStats{BuildSec: 3, NumBatches: 7, OOM: true}
	snp.Totals.GraphA2ABytes = 1 << 20
	snp.Totals.VirtualNodes = 123
	return &AdaptiveState{
		BaseFrac:    0.25,
		Cooldown:    1,
		CalBuild:    1.5,
		CalLoadHost: 0.75,
		CalShuffle:  1,
		CalTrain:    0.875,
		GradOverlap: 0.75,
		PerStrategy: map[strategy.Kind]engine.EpochStats{
			strategy.GDP: gdp,
			strategy.SNP: snp,
		},
	}
}

// TestRoundTripAdaptive pins the adaptive section: the full re-planner
// state — calibration factors, overlap, and the per-strategy dry-run
// stats with their per-device breakdown — survives encode/decode, and
// the encoding is canonical.
func TestRoundTripAdaptive(t *testing.T) {
	s := fullSnapshot(t)
	b := mustEncode(t, s)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s.Adaptive, got.Adaptive) {
		t.Fatalf("adaptive state changed:\n in %+v\nout %+v", s.Adaptive, got.Adaptive)
	}
	if !bytes.Equal(b, mustEncode(t, got)) {
		t.Fatal("re-encode differs from original bytes")
	}
}

// TestDecodeRejectsBadAdaptive covers the adaptive section's rejection
// classes: out-of-order strategies and a location-count mismatch.
func TestDecodeRejectsBadAdaptive(t *testing.T) {
	base := minimalSnapshot(t)
	encode := func(mutate func(*AdaptiveState)) []byte {
		s := *base
		s.Adaptive = adaptiveState()
		mutate(s.Adaptive)
		b, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ok := encode(func(*AdaptiveState) {})
	if _, err := Decode(ok); err != nil {
		t.Fatalf("baseline adaptive snapshot rejected: %v", err)
	}
	// Rewrite every "GDP" name prefix to a kind sorting after "SNP"'s
	// (the meta section's copy stays a valid strategy; the adaptive
	// section's first entry becomes DNP before SNP) — the decoder must
	// reject the no-longer-ascending order.
	bad := bytes.ReplaceAll(ok, []byte("\x03\x00\x00\x00GDP"), []byte("\x03\x00\x00\x00DNP"))
	fixCRC(t, bad)
	if _, err := Decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("out-of-order adaptive strategies: err = %v, want ErrMalformed", err)
	}
}

// fixCRC recomputes every section CRC of a possibly-mutated snapshot so
// structural rejections are tested, not the CRC frame.
func fixCRC(t *testing.T, b []byte) {
	t.Helper()
	rest := b[12:]
	for len(rest) > 0 {
		bodyLen := int(binary.LittleEndian.Uint32(rest[1:]))
		body := rest[5 : 5+bodyLen]
		binary.LittleEndian.PutUint32(rest[5+bodyLen:], crc32.ChecksumIEEE(body))
		rest = rest[5+bodyLen+4:]
	}
}

// minimalSnapshot has only the two mandatory sections.
func minimalSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	s := fullSnapshot(t)
	return &Snapshot{
		Strategy: "GDP",
		Seed:     7,
		Devices:  1,
		Model:    s.Model,
	}
}

func mustEncode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	b, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

// TestSnapshotGolden pins the container format: these bytes ARE the
// on-disk format, and any codec change that alters them is a breaking
// revision that must bump snapVersion.
func TestSnapshotGolden(t *testing.T) {
	s := &Snapshot{
		Strategy: "GDP",
		Int8Frac: 0.5,
		Seed:     0x0102030405060708,
		Devices:  1,
		// Shortest well-formed model body the golden bytes can carry: a
		// raw stand-in, not a real nn checkpoint (the container does not
		// parse the model section).
		Model:      []byte{0xde, 0xad, 0xbe, 0xef},
		SamplerRNG: [][4]uint64{{1, 0, 0, 0}},
		EpochRNG:   [4]uint64{0, 0, 0, 2},
	}
	got := mustEncode(t, s)
	const want = "" +
		"53545041" + // magic "APTS" (little-endian)
		"01000000" + // version 1
		"03000000" + // 3 sections
		// meta: id 1, len 40
		"01" + "28000000" +
		"03000000474450" + // strategy "GDP"
		"00" + // not pipelined
		"00000000" + // depth 0
		"000000000000e03f" + // float64(0.5)
		"0807060504030201" + // seed
		"01000000" + // 1 device
		"00000000" + // 0 epochs done
		"00000000" + // step 0
		"da2248a1" + // crc
		// model: id 2, len 4
		"02" + "04000000" + "deadbeef" + "5aa39c7c" +
		// rng: id 4, len 68
		"04" + "44000000" +
		"01000000" + // 1 sampler
		"0100000000000000" + "0000000000000000" + "0000000000000000" + "0000000000000000" +
		"0000000000000000" + "0000000000000000" + "0000000000000000" + "0200000000000000" +
		"67dcfab8" // crc
	if hex.EncodeToString(got) != want {
		t.Fatalf("golden mismatch:\n got %s\nwant %s", hex.EncodeToString(got), want)
	}
}

func TestRoundTripFull(t *testing.T) {
	s := fullSnapshot(t)
	b := mustEncode(t, s)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed snapshot:\n in %+v\nout %+v", s, got)
	}
	// Canonical encoding: re-encode reproduces the bytes.
	b2 := mustEncode(t, got)
	if !bytes.Equal(b, b2) {
		t.Fatal("re-encode differs from original bytes")
	}
}

func TestRoundTripMinimal(t *testing.T) {
	s := minimalSnapshot(t)
	got, err := Decode(mustEncode(t, s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip changed snapshot:\n in %+v\nout %+v", s, got)
	}
	if got.HasRNG() {
		t.Error("minimal snapshot claims RNG cursors")
	}
	if got.Opt != nil || got.Freq != nil {
		t.Error("minimal snapshot grew optional sections")
	}
}

func TestRoundTripSGDState(t *testing.T) {
	s := minimalSnapshot(t)
	// SGD: nil V, and one never-materialized velocity slot.
	s.Opt = &nn.OptState{Kind: "sgd", M: [][]float32{{1, 2, 3}, nil}}
	got, err := Decode(mustEncode(t, s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Opt.V != nil {
		t.Error("sgd state grew a V on round trip")
	}
	if got.Opt.M[1] != nil {
		t.Error("absent moment became present on round trip")
	}
	if !reflect.DeepEqual(s.Opt, got.Opt) {
		t.Fatalf("opt state changed: in %+v out %+v", s.Opt, got.Opt)
	}
}

func TestRoundTripNeverSteppedAdam(t *testing.T) {
	// A never-stepped Adam emits all-absent moment slots; the codec
	// canonicalizes the all-absent V to nil — the SGD form — and
	// Adam.Restore must accept it back.
	m := nn.NewGraphSAGE(4, 8, 3, 2)
	m.Init(graph.NewRNG(1))
	params := m.Params()
	opt := nn.NewAdam(0.01)
	s := minimalSnapshot(t)
	st := opt.State(params)
	s.Opt = &st
	got, err := Decode(mustEncode(t, s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Opt.V != nil {
		t.Error("all-absent V was not canonicalized to nil")
	}
	if err := nn.NewAdam(0.01).Restore(params, *got.Opt); err != nil {
		t.Fatalf("Restore of never-stepped adam state: %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := mustEncode(t, fullSnapshot(t))
	for _, n := range []int{0, 4, 11, 12, 16, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:n]); !errors.Is(err, ErrTruncated) {
			t.Errorf("prefix of %d bytes: got %v, want ErrTruncated", n, err)
		}
	}
}

func TestDecodeTrailing(t *testing.T) {
	b := mustEncode(t, fullSnapshot(t))
	if _, err := Decode(append(append([]byte(nil), b...), 0)); !errors.Is(err, ErrTrailing) {
		t.Error("accepted snapshot with trailing byte")
	}
}

func TestDecodeBadCRC(t *testing.T) {
	b := mustEncode(t, fullSnapshot(t))
	// Flip one bit inside the meta section body (starts after the
	// 12-byte header and 5-byte section frame header).
	bad := append([]byte(nil), b...)
	bad[17+3] ^= 0x40
	if _, err := Decode(bad); !errors.Is(err, ErrBadCRC) {
		t.Errorf("got %v, want ErrBadCRC", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b := mustEncode(t, fullSnapshot(t))
	bad := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(bad[4:], 99)
	if _, err := Decode(bad); !errors.Is(err, ErrVersion) {
		t.Errorf("got %v, want ErrVersion", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	b := mustEncode(t, fullSnapshot(t))
	bad := append([]byte(nil), b...)
	bad[0] = 'X'
	if _, err := Decode(bad); !errors.Is(err, ErrMalformed) {
		t.Errorf("got %v, want ErrMalformed", err)
	}
}

// reframe rebuilds the container around raw (id, body) sections,
// computing correct lengths and CRCs, so tests can construct files
// whose framing is valid but whose structure is not.
func reframe(sections ...[2][]byte) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint32(b, snapMagic)
	binary.LittleEndian.PutUint32(b[4:], snapVersion)
	binary.LittleEndian.PutUint32(b[8:], uint32(len(sections)))
	for _, sec := range sections {
		b = append(b, sec[0][0])
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sec[1])))
		b = append(b, sec[1]...)
		b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(sec[1]))
	}
	return b
}

// sections splits an encoded snapshot back into (id, body) pairs.
func sections(t *testing.T, b []byte) [][2][]byte {
	t.Helper()
	n := int(binary.LittleEndian.Uint32(b[8:]))
	rest := b[12:]
	var out [][2][]byte
	for i := 0; i < n; i++ {
		id := rest[0]
		l := int(binary.LittleEndian.Uint32(rest[1:]))
		out = append(out, [2][]byte{{id}, rest[5 : 5+l]})
		rest = rest[5+l+4:]
	}
	return out
}

func TestDecodeUnknownSection(t *testing.T) {
	secs := sections(t, mustEncode(t, fullSnapshot(t)))
	secs = append(secs, [2][]byte{{200}, {1, 2, 3}})
	if _, err := Decode(reframe(secs...)); !errors.Is(err, ErrUnknownSection) {
		t.Error("accepted unknown section id 200")
	}
}

func TestDecodeDuplicateSection(t *testing.T) {
	secs := sections(t, mustEncode(t, fullSnapshot(t)))
	dup := append(secs, secs[len(secs)-1])
	if _, err := Decode(reframe(dup...)); !errors.Is(err, ErrMalformed) {
		t.Error("accepted duplicated section")
	}
}

func TestDecodeOutOfOrderSections(t *testing.T) {
	secs := sections(t, mustEncode(t, fullSnapshot(t)))
	secs[0], secs[1] = secs[1], secs[0]
	if _, err := Decode(reframe(secs...)); !errors.Is(err, ErrMalformed) {
		t.Error("accepted out-of-order sections")
	}
}

func TestDecodeMissingMandatorySection(t *testing.T) {
	secs := sections(t, mustEncode(t, fullSnapshot(t)))
	for drop := 0; drop < 2; drop++ { // meta, model
		var kept [][2][]byte
		for i, sec := range secs {
			if i != drop {
				kept = append(kept, sec)
			}
		}
		if _, err := Decode(reframe(kept...)); !errors.Is(err, ErrMalformed) {
			t.Errorf("accepted snapshot without section %d", secs[drop][0][0])
		}
	}
}

func TestDecodeOversized(t *testing.T) {
	b := mustEncode(t, fullSnapshot(t))
	bad := append([]byte(nil), b...)
	// Meta section's length field sits right after the header + id byte.
	binary.LittleEndian.PutUint32(bad[13:], DefaultMaxSectionBytes+1)
	if _, err := Decode(bad); !errors.Is(err, ErrOversized) {
		t.Errorf("got %v, want ErrOversized", err)
	}
}

func TestDecodeRejectsZeroRNGState(t *testing.T) {
	s := fullSnapshot(t)
	s.SamplerRNG[1] = [4]uint64{}
	if _, err := Decode(mustEncode(t, s)); !errors.Is(err, ErrMalformed) {
		t.Error("accepted all-zero sampler rng state")
	}
	s = fullSnapshot(t)
	s.EpochRNG = [4]uint64{}
	// Encode treats zero EpochRNG as legal (HasRNG only checks
	// samplers), so the decoder must be the backstop.
	if _, err := Decode(mustEncode(t, s)); !errors.Is(err, ErrMalformed) {
		t.Error("accepted all-zero epoch rng state")
	}
}

func TestDecodeRejectsCursorDeviceMismatch(t *testing.T) {
	s := fullSnapshot(t)
	s.Devices = 3 // cursors were captured under 2
	if _, err := Decode(mustEncode(t, s)); !errors.Is(err, ErrMalformed) {
		t.Error("accepted rng cursor count != device count")
	}
}

func TestDecodeRejectsBadMeta(t *testing.T) {
	cases := []func(*Snapshot){
		func(s *Snapshot) { s.Strategy = "WARP" },
		func(s *Snapshot) { s.Int8Frac = 1.5 },
		func(s *Snapshot) { s.Int8Frac = -0.1 },
		func(s *Snapshot) { s.StepInEpoch = 3 },
	}
	for i, mutate := range cases {
		s := minimalSnapshot(t)
		mutate(s)
		b, err := s.Encode()
		if err != nil {
			continue // Encode already rejects it; that's fine too.
		}
		if _, err := Decode(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: bad meta accepted", i)
		}
	}
}

func TestEncodeRejectsBadSnapshot(t *testing.T) {
	s := minimalSnapshot(t)
	s.Strategy = "WARP"
	if _, err := s.Encode(); err == nil {
		t.Error("encoded unknown strategy")
	}
	s = minimalSnapshot(t)
	s.Model = nil
	if _, err := s.Encode(); err == nil {
		t.Error("encoded snapshot without model")
	}
}

func TestWriteReadFile(t *testing.T) {
	s := fullSnapshot(t)
	path := filepath.Join(t.TempDir(), DefaultName)
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatal("file round trip changed snapshot")
	}
}

func TestLoadModelInto(t *testing.T) {
	m := nn.NewGraphSAGE(4, 8, 3, 2)
	m.Init(graph.NewRNG(1))
	dir := t.TempDir()

	// From a full snapshot.
	s := fullSnapshot(t)
	snapPath := filepath.Join(dir, "snap.aptc")
	if err := s.WriteFile(snapPath); err != nil {
		t.Fatal(err)
	}
	m2 := nn.NewGraphSAGE(4, 8, 3, 2)
	if err := LoadModelInto(m2, snapPath); err != nil {
		t.Fatalf("LoadModelInto(snapshot): %v", err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		if p1[i].W.MaxAbsDiff(p2[i].W) != 0 {
			t.Fatalf("param %d differs after snapshot load", i)
		}
	}

	// From a raw nn params file.
	rawPath := filepath.Join(dir, "model.aptm")
	if err := m.SaveFile(rawPath); err != nil {
		t.Fatal(err)
	}
	m3 := nn.NewGraphSAGE(4, 8, 3, 2)
	if err := LoadModelInto(m3, rawPath); err != nil {
		t.Fatalf("LoadModelInto(raw): %v", err)
	}
	p3 := m3.Params()
	for i := range p1 {
		if p1[i].W.MaxAbsDiff(p3[i].W) != 0 {
			t.Fatalf("param %d differs after raw load", i)
		}
	}
}

// FuzzDecode asserts the decoder never panics and that every accepted
// input re-encodes to exactly the bytes that produced it — the
// canonical-encoding invariant the resume checksum tests lean on.
func FuzzDecode(f *testing.F) {
	m := nn.NewGraphSAGE(4, 4, 2, 1)
	m.Init(graph.NewRNG(1))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		f.Fatal(err)
	}
	full := &Snapshot{
		Strategy:   "DNP",
		Pipelined:  true,
		Int8Frac:   0.125,
		Seed:       3,
		Devices:    1,
		EpochsDone: 1,
		Model:      buf.Bytes(),
		Opt:        &nn.OptState{Kind: "adam", Step: 4, M: [][]float32{{1}}, V: [][]float32{{2}}},
		SamplerRNG: [][4]uint64{{1, 2, 3, 4}},
		EpochRNG:   [4]uint64{5, 6, 7, 8},
		Freq:       []int64{1, 0, 2},
	}
	if b, err := full.Encode(); err == nil {
		f.Add(b)
		f.Add(b[:12])
		f.Add(b[:len(b)-3])
	}
	f.Add([]byte{})
	f.Add([]byte("APTS"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		b2, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, b2) {
			t.Fatalf("decode∘encode not identity:\n in %x\nout %x", data, b2)
		}
	})
}
