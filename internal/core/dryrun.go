package core

import (
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// DryRunStats are the data-dependent statistics the planner collects
// (paper §3.2): one epoch of graph sampling plus, per strategy, the
// communication and load volumes of dispatching those samples — all
// without feature loading, hidden-embedding movement, or training
// computation.
type DryRunStats struct {
	// Freq[v] counts how often node v appeared as a layer-1 source —
	// the hotness signal for cache configuration and Table 3.
	Freq []int64
	// PerStrategy holds each strategy's volume-accounting epoch.
	PerStrategy map[strategy.Kind]engine.EpochStats
}

// sampleDryRunEpoch samples one epoch (even seed split) once, counts
// layer-1 source accesses, and keeps the batches so every strategy's
// dispatch-only epoch can reuse them — the paper's second dry-run
// cheapness argument ("the same graph samples are reused during
// dry-run for different strategies"). One epoch suffices: the top-1%
// hot sets of consecutive epochs overlap ~95%.
func (a *APT) sampleDryRunEpoch() (*sample.SeedPlan, [][]*sample.MiniBatch, []int64) {
	t := &a.task
	n := t.Platform.NumDevices()
	freq := make([]int64, t.Graph.NumNodes())
	plan := sample.SplitEven(t.Seeds, n, graph.NewRNG(t.Seed^0xd17a))
	smp := t.Sampling
	if t.NewModel().NeedsDstInSrc() {
		smp.IncludeDstInSrc = true
	}
	steps := plan.NumBatches(t.BatchSize)
	batches := make([][]*sample.MiniBatch, n)
	for w := 0; w < n; w++ {
		s := sample.NewSampler(t.Graph, smp, graph.NewRNG(t.Seed^uint64(w*31+7)))
		batches[w] = make([]*sample.MiniBatch, steps)
		for step := 0; step < steps; step++ {
			mb := s.Sample(plan.Batch(w, step, t.BatchSize))
			batches[w][step] = mb
			sample.CountLayer1SrcAccesses(freq, mb)
		}
	}
	return plan, batches, freq
}

// collectFrequencies returns only the dry-run access frequencies (used
// when an engine is built for a pinned strategy without planning).
func (a *APT) collectFrequencies() []int64 {
	_, _, freq := a.sampleDryRunEpoch()
	return freq
}

// dryRunStrategy dispatches the shared dry-run samples under the given
// strategy with its proper cache configuration and returns the epoch's
// volumes and stage times.
func (a *APT) dryRunStrategy(k strategy.Kind, plan *sample.SeedPlan,
	batches [][]*sample.MiniBatch, freq []int64) (engine.EpochStats, error) {
	store := a.buildStore(k, freq, false)
	cfg := a.engineConfig(k, store, engine.Accounting)
	cfg.ForceSeedPlan = plan
	cfg.PreSampled = batches
	e, err := engine.New(cfg)
	if err != nil {
		return engine.EpochStats{}, err
	}
	return e.RunEpoch(), nil
}

// DryRun collects all planner statistics: one sampled epoch, shared by
// the frequency counters and all four strategies' dispatch epochs.
func (a *APT) DryRun() (*DryRunStats, error) {
	plan, batches, freq := a.sampleDryRunEpoch()
	st := &DryRunStats{Freq: freq, PerStrategy: map[strategy.Kind]engine.EpochStats{}}
	for _, k := range strategy.Core {
		es, err := a.dryRunStrategy(k, plan, batches, freq)
		if err != nil {
			return nil, err
		}
		st.PerStrategy[k] = es
	}
	a.dryRun = st
	return st, nil
}

// AccessSkewTable returns the paper's Table 3 rank bands from the
// dry-run frequencies.
func (st *DryRunStats) AccessSkewTable() []graph.SkewBucket {
	return graph.AccessSkew(st.Freq)
}

// cachePolicyFor maps a strategy to its paper §3.2 cache rule.
func cachePolicyFor(k strategy.Kind) cache.Policy {
	switch k {
	case strategy.SNP, strategy.Hybrid:
		return cache.PolicyHotPartition
	case strategy.DNP:
		return cache.PolicyHotPartitionPlus1Hop
	default:
		return cache.PolicyHotGlobal
	}
}
