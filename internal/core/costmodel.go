package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/strategy"
)

// Estimate is the cost model's predicted per-epoch time of one
// strategy, decomposed per the paper's Eq. (2). T_train is identical
// across strategies and excluded from comparison by default; it can be
// included for the full-cost ablation.
type Estimate struct {
	Kind strategy.Kind
	// BuildSec estimates T_build: sampling plus computation-graph
	// shuffling.
	BuildSec float64
	// LoadSec estimates T_load from the collected per-location volumes
	// and the profiled read speeds.
	LoadSec float64
	// ShuffleSec estimates T_shuffle from the collected hidden-embedding
	// volumes and the profiled collective speeds.
	ShuffleSec float64
	// TrainSec carries the (strategy-common) computation estimate; set
	// only when requested.
	TrainSec float64
	// OOM marks a strategy predicted to exceed device memory.
	OOM bool
}

// ComparableCost is the strategy-unique portion the planner compares
// (paper: "the costs have common parts for all strategies ... we
// compare only the unique parts").
func (e Estimate) ComparableCost() float64 {
	return e.BuildSec + e.LoadSec + e.ShuffleSec
}

// TotalCost includes the common training term.
func (e Estimate) TotalCost() float64 { return e.ComparableCost() + e.TrainSec }

// CostModel converts dry-run volumes into per-strategy time estimates
// using the Prepare-step operator profile.
type CostModel struct {
	Profile *comm.Profile
	Devices int
	// IncludeTrain adds the common T_train term (ablation switch).
	IncludeTrain bool
}

// Estimate applies the paper's §3.2 cost model to one strategy's
// dry-run statistics. Each communication operator is treated
// separately with its profiled speed and per-call latency, and the
// per-stage estimate is the maximum over devices (synchronous steps
// wait for the slowest device, which matters on skewed graphs where
// partition owners serve unequal volumes).
func (cm *CostModel) Estimate(k strategy.Kind, st engine.EpochStats) Estimate {
	out := Estimate{Kind: k, OOM: st.OOM, BuildSec: st.SampleSec}
	p := cm.Profile
	var buildMax, loadMax, shufMax float64
	for i := range st.PerDevice {
		ws := &st.PerDevice[i]

		// T_build communication: subgraph shipping per operator.
		build := float64(ws.GraphA2ABytes)/p.AllToAllBps +
			float64(ws.GraphBcastBytes)/p.AllGatherBps +
			float64(ws.BuildA2ACalls)*p.AllToAllCallSec +
			float64(ws.BuildBcastCalls)*p.AllGatherCallSec

		// T_load: per-location volumes over the profiled read speeds,
		// plus the per-step read-issue latencies.
		var load float64
		load += float64(ws.Load.Bytes[cache.LocGPU]) / p.GPUReadBps
		if ws.Load.Bytes[cache.LocPeerGPU] > 0 && p.PeerReadBps > 0 {
			load += float64(ws.Load.Bytes[cache.LocPeerGPU]) / p.PeerReadBps
		}
		load += float64(ws.Load.Bytes[cache.LocLocalCPU]) / p.UVAReadBps
		if ws.Load.Bytes[cache.LocRemoteCPU] > 0 {
			load += float64(ws.Load.Bytes[cache.LocRemoteCPU]) / p.RemoteReadBps
		}
		load += float64(st.NumBatches) * p.ReadCallSec

		// T_shuffle: hidden embeddings + gradients per operator.
		shuf := float64(ws.HiddenA2ABytes)/p.AllToAllBps +
			float64(ws.HiddenBcastBytes)/p.AllGatherBps +
			float64(ws.ShufA2ACalls)*p.AllToAllCallSec +
			float64(ws.ShufBcastCalls)*p.AllGatherCallSec

		buildMax = maxf(buildMax, build)
		loadMax = maxf(loadMax, load)
		shufMax = maxf(shufMax, shuf)
	}
	out.BuildSec += buildMax
	out.LoadSec = loadMax
	out.ShuffleSec = shufMax
	if cm.IncludeTrain {
		out.TrainSec = st.TrainSec
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Select returns the estimates for all candidate strategies sorted
// best-first; OOM-predicted strategies sort last. Candidates are
// evaluated in sorted Kind order and cost ties break on Kind, so the
// planner's pick is identical run to run even when two strategies cost
// exactly the same (building the slice in map iteration order made the
// tie-winner random; caught by aptlint/detrange).
func (cm *CostModel) Select(stats map[strategy.Kind]engine.EpochStats) []Estimate {
	kinds := make([]strategy.Kind, 0, len(stats))
	for k := range stats {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	ests := make([]Estimate, 0, len(kinds))
	for _, k := range kinds {
		ests = append(ests, cm.Estimate(k, stats[k]))
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].OOM != ests[j].OOM {
			return !ests[i].OOM
		}
		if ci, cj := ests[i].ComparableCost(), ests[j].ComparableCost(); ci != cj {
			return ci < cj
		}
		return ests[i].Kind < ests[j].Kind
	})
	return ests
}

// FormatEstimates renders a planner report.
func FormatEstimates(ests []Estimate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s\n", "strat", "build(s)", "load(s)", "shuffle(s)", "unique(s)")
	for _, e := range ests {
		oom := ""
		if e.OOM {
			oom = " [OOM]"
		}
		fmt.Fprintf(&b, "%-6s %10.4f %10.4f %10.4f %10.4f%s\n",
			e.Kind, e.BuildSec, e.LoadSec, e.ShuffleSec, e.ComparableCost(), oom)
	}
	return b.String()
}
