package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/strategy"
)

// Estimate is the cost model's predicted per-epoch time of one
// strategy, decomposed per the paper's Eq. (2). T_train is identical
// across strategies and excluded from comparison by default; it can be
// included for the full-cost ablation.
type Estimate struct {
	Kind strategy.Kind
	// BuildSec estimates T_build: sampling plus computation-graph
	// shuffling.
	BuildSec float64
	// LoadSec estimates T_load from the collected per-location volumes
	// and the profiled read speeds.
	LoadSec float64
	// ShuffleSec estimates T_shuffle from the collected hidden-embedding
	// volumes and the profiled collective speeds.
	ShuffleSec float64
	// LoadHostSec is the host-side share of LoadSec (CPU and remote
	// reads over the contended link) on the load-critical device — the
	// part online calibration can re-scale independently of GPU-side
	// cache hits.
	LoadHostSec float64
	// TrainSec carries the (strategy-common) computation estimate; set
	// only when requested.
	TrainSec float64
	// OOM marks a strategy predicted to exceed device memory.
	OOM bool
}

// ComparableCost is the strategy-unique portion the planner compares
// (paper: "the costs have common parts for all strategies ... we
// compare only the unique parts").
func (e Estimate) ComparableCost() float64 {
	return e.BuildSec + e.LoadSec + e.ShuffleSec
}

// TotalCost includes the common training term.
func (e Estimate) TotalCost() float64 { return e.ComparableCost() + e.TrainSec }

// Calibration holds multiplicative correction factors learned online:
// each is measured-over-predicted, so a factor of 1 means the dry-run
// model was exact and 2 means the stage ran twice as slow as
// predicted (a mis-profiled operator, contention the one-shot
// bandwidth trial missed, ...). The planner multiplies every
// strategy's estimate by the shared factors — the correction
// transfers across strategies because all of them move bytes through
// the same profiled operators.
//
// The load stage gets special treatment: its GPU-side share (cache
// hits at device-memory speed) and host-side share (CPU/remote reads
// over the contended link) respond to different operators, and a
// single scalar would punish a strategy whose load is genuinely cheap
// because another strategy's host reads were mis-profiled. The
// measured load residual is therefore attributed to the host term
// only (LoadHost); the GPU-side term stays at the profile's word.
type Calibration struct {
	Build    float64
	LoadHost float64
	Shuffle  float64
	Train    float64
}

// factor guards degenerate measurements: non-positive factors (stage
// absent from the measured epoch, or prediction was zero) fall back
// to the uncalibrated model.
func calFactor(f float64) float64 {
	if f <= 0 {
		return 1
	}
	return f
}

// Observe derives calibration factors from one measured epoch of the
// strategy predicted by est (the uncalibrated estimate for the
// strategy that actually ran). A stage the running plan does not
// exercise is unobservable this epoch, so its factor is kept rather
// than reset — forgetting a correction the moment the planner routes
// around the slow operator would flap straight back onto it.
func (c *Calibration) Observe(est Estimate, measured engine.EpochStats) {
	c.Build = stickyRatio(c.Build, measured.SampleSec+measured.BuildSec, est.BuildSec)
	c.Shuffle = stickyRatio(c.Shuffle, measured.ShuffleSec, est.ShuffleSec)
	c.Train = stickyRatio(c.Train, measured.TrainSec, est.TrainSec)
	if est.LoadHostSec > 0.01*est.LoadSec {
		residual := measured.LoadSec - (est.LoadSec - est.LoadHostSec)
		c.LoadHost = stickyRatio(c.LoadHost, residual, est.LoadHostSec)
	}
}

// stickyRatio is measured/predicted, falling back to the previous
// factor when either side is degenerate (stage absent this epoch).
func stickyRatio(prev, measured, predicted float64) float64 {
	if measured <= 0 || predicted <= 0 {
		return prev
	}
	return measured / predicted
}

// CostModel converts dry-run volumes into per-strategy time estimates
// using the Prepare-step operator profile.
type CostModel struct {
	Profile *comm.Profile
	Devices int
	// IncludeTrain adds the common T_train term (ablation switch).
	IncludeTrain bool
	// Cal, when non-nil, multiplies each stage's estimate by the
	// measured correction factor (online re-planning mode).
	Cal *Calibration
	// GradOverlap is the measured fraction of the gradient allreduce
	// the backward pass hides (1 - GradExposedSec/GradCommSec from the
	// engine's bucketed sync). The dry-run charges the collective fully
	// exposed, so the train term subtracts the hidden share; the
	// codec's compression ratio is already inside GradCommSec (the
	// allreduce model prices the encoded wire). Zero means no overlap
	// correction.
	GradOverlap float64
}

// Estimate applies the paper's §3.2 cost model to one strategy's
// dry-run statistics. Each communication operator is treated
// separately with its profiled speed and per-call latency, and the
// per-stage estimate is the maximum over devices (synchronous steps
// wait for the slowest device, which matters on skewed graphs where
// partition owners serve unequal volumes).
func (cm *CostModel) Estimate(k strategy.Kind, st engine.EpochStats) Estimate {
	out := Estimate{Kind: k, OOM: st.OOM, BuildSec: st.SampleSec}
	p := cm.Profile
	hostFactor := 1.0
	if cm.Cal != nil {
		hostFactor = calFactor(cm.Cal.LoadHost)
	}
	var buildMax, loadMax, hostAtMax, shufMax float64
	for i := range st.PerDevice {
		ws := &st.PerDevice[i]

		// T_build communication: subgraph shipping per operator.
		build := float64(ws.GraphA2ABytes)/p.AllToAllBps +
			float64(ws.GraphBcastBytes)/p.AllGatherBps +
			float64(ws.BuildA2ACalls)*p.AllToAllCallSec +
			float64(ws.BuildBcastCalls)*p.AllGatherCallSec

		// T_load: per-location volumes over the profiled read speeds,
		// plus the per-step read-issue latencies. GPU-side reads (both
		// cache tiers, peers) and host-side reads are tracked apart so
		// calibration can re-scale the contended host link alone; the
		// warm tier moves quantized bytes at GPU-memory speed, its
		// dequant fused into the consuming kernel and costed as
		// compute, not load.
		hit := float64(ws.Load.Bytes[cache.LocGPU]) / p.GPUReadBps
		hit += float64(ws.Load.Bytes[cache.LocGPUQ]) / p.GPUReadBps
		if ws.Load.Bytes[cache.LocPeerGPU] > 0 && p.PeerReadBps > 0 {
			hit += float64(ws.Load.Bytes[cache.LocPeerGPU]) / p.PeerReadBps
		}
		hit += float64(st.NumBatches) * p.ReadCallSec
		host := float64(ws.Load.Bytes[cache.LocLocalCPU]) / p.UVAReadBps
		if ws.Load.Bytes[cache.LocRemoteCPU] > 0 {
			host += float64(ws.Load.Bytes[cache.LocRemoteCPU]) / p.RemoteReadBps
		}
		load := hit + hostFactor*host

		// T_shuffle: hidden embeddings + gradients per operator.
		shuf := float64(ws.HiddenA2ABytes)/p.AllToAllBps +
			float64(ws.HiddenBcastBytes)/p.AllGatherBps +
			float64(ws.ShufA2ACalls)*p.AllToAllCallSec +
			float64(ws.ShufBcastCalls)*p.AllGatherCallSec

		if load > loadMax {
			loadMax, hostAtMax = load, hostFactor*host
		}
		buildMax = maxf(buildMax, build)
		shufMax = maxf(shufMax, shuf)
	}
	out.BuildSec += buildMax
	out.LoadSec = loadMax
	out.LoadHostSec = hostAtMax
	out.ShuffleSec = shufMax
	if cm.IncludeTrain {
		out.TrainSec = st.TrainSec
		if cm.GradOverlap > 0 {
			var grad float64
			for i := range st.PerDevice {
				grad = maxf(grad, st.PerDevice[i].GradCommSec)
			}
			hidden := cm.GradOverlap * grad
			if hidden > out.TrainSec {
				hidden = out.TrainSec
			}
			out.TrainSec -= hidden
		}
	}
	if c := cm.Cal; c != nil {
		out.BuildSec *= calFactor(c.Build)
		out.ShuffleSec *= calFactor(c.Shuffle)
		out.TrainSec *= calFactor(c.Train)
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Select returns the estimates for all candidate strategies sorted
// best-first; OOM-predicted strategies sort last. Candidates are
// evaluated in sorted Kind order and cost ties break on Kind, so the
// planner's pick is identical run to run even when two strategies cost
// exactly the same (building the slice in map iteration order made the
// tie-winner random; caught by aptlint/detrange).
func (cm *CostModel) Select(stats map[strategy.Kind]engine.EpochStats) []Estimate {
	kinds := make([]strategy.Kind, 0, len(stats))
	for k := range stats {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	ests := make([]Estimate, 0, len(kinds))
	for _, k := range kinds {
		ests = append(ests, cm.Estimate(k, stats[k]))
	}
	sort.Slice(ests, func(i, j int) bool {
		if ests[i].OOM != ests[j].OOM {
			return !ests[i].OOM
		}
		if ci, cj := ests[i].ComparableCost(), ests[j].ComparableCost(); ci != cj {
			return ci < cj
		}
		return ests[i].Kind < ests[j].Kind
	})
	return ests
}

// FormatEstimates renders a planner report.
func FormatEstimates(ests []Estimate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s\n", "strat", "build(s)", "load(s)", "shuffle(s)", "unique(s)")
	for _, e := range ests {
		oom := ""
		if e.OOM {
			oom = " [OOM]"
		}
		fmt.Fprintf(&b, "%-6s %10.4f %10.4f %10.4f %10.4f%s\n",
			e.Kind, e.BuildSec, e.LoadSec, e.ShuffleSec, e.ComparableCost(), oom)
	}
	return b.String()
}
