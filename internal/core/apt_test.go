package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// testTask builds a small accounting-mode task over a dataset preset.
func testTask(t testing.TB, abbr string, devices int, hidden int) Task {
	t.Helper()
	spec, err := dataset.ByAbbr(abbr, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Build(spec, false)
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, devices)
	return Task{
		Graph:   d.Graph,
		FeatDim: spec.FeatDim,
		Seeds:   d.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(spec.FeatDim, hidden, spec.Classes, 3)
		},
		Sampling:   sample.Config{Fanouts: []int{10, 10, 10}},
		BatchSize:  64,
		Platform:   p,
		CacheBytes: d.CacheBytesFraction(0.08), // ~paper 4GB/52.9GB
		Seed:       7,
	}
}

func TestTaskValidation(t *testing.T) {
	task := testTask(t, "PS", 4, 32)
	task.NewModel = nil
	if _, err := New(task); err == nil {
		t.Error("accepted task without model")
	}
	task2 := testTask(t, "PS", 4, 32)
	task2.Sampling.Fanouts = []int{10} // 1 fanout, 3-layer model
	if _, err := New(task2); err == nil {
		t.Error("accepted fanout/layer mismatch")
	}
	task3 := testTask(t, "PS", 4, 32)
	task3.FeatDim = 999
	if _, err := New(task3); err == nil {
		t.Error("accepted feature-dim mismatch")
	}
}

func TestPrepareProducesProfileAndPartition(t *testing.T) {
	a, err := New(testTask(t, "PS", 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Prepare(); err != nil {
		t.Fatal(err)
	}
	if a.Profile() == nil || a.Profile().AllToAllBps <= 0 {
		t.Error("no operator profile measured")
	}
	part := a.Partition()
	if part == nil || part.NumParts != 4 {
		t.Fatal("partitioning missing")
	}
	if err := part.Validate(true); err != nil {
		t.Error(err)
	}
}

func TestPlanSelectsAndEstimates(t *testing.T) {
	a, err := New(testTask(t, "PS", 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	choice, err := a.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Estimates) != 4 {
		t.Fatalf("got %d estimates, want 4", len(a.Estimates))
	}
	if a.Estimates[0].Kind != choice {
		t.Error("choice is not the best estimate")
	}
	for _, e := range a.Estimates {
		if e.ComparableCost() <= 0 {
			t.Errorf("%v: non-positive cost %v", e.Kind, e.ComparableCost())
		}
	}
	// GDP never shuffles hidden embeddings.
	for _, e := range a.Estimates {
		if e.Kind == strategy.GDP && e.ShuffleSec != 0 {
			t.Error("GDP estimate has hidden shuffle cost")
		}
	}
	if a.PlanWallSeconds <= 0 {
		t.Error("plan wall time not recorded")
	}
	if rep := FormatEstimates(a.Estimates); len(rep) == 0 {
		t.Error("empty estimate report")
	}
}

// TestCostModelTracksActual checks the planner's core property: for
// each strategy, the estimated strategy-unique cost must track the
// engine's measured build+load+shuffle time within a modest error
// (paper Fig. 12 reports <= 5.5% on their testbed; we allow more
// because the dry-run epoch and measured epochs sample independently).
func TestCostModelTracksActual(t *testing.T) {
	a, err := New(testTask(t, "FS", 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(); err != nil {
		t.Fatal(err)
	}
	for _, est := range a.Estimates {
		eng, err := a.BuildEngine(est.Kind)
		if err != nil {
			t.Fatal(err)
		}
		st := eng.RunEpoch()
		actual := st.SampleSec + st.BuildSec + st.LoadSec + st.ShuffleSec
		rel := (est.ComparableCost() - actual) / actual
		if rel < -0.5 || rel > 0.5 {
			t.Errorf("%v: estimate %.4fs vs actual %.4fs (rel err %.0f%%)",
				est.Kind, est.ComparableCost(), actual, rel*100)
		}
	}
}

// TestAPTSelectionQuality is the headline claim: APT's pick must be
// the optimal strategy or within 25% of it, across datasets.
func TestAPTSelectionQuality(t *testing.T) {
	for _, abbr := range []string{"PS", "FS", "IM"} {
		a, err := New(testTask(t, abbr, 4, 32))
		if err != nil {
			t.Fatal(err)
		}
		choice, err := a.Plan()
		if err != nil {
			t.Fatal(err)
		}
		actual := map[strategy.Kind]float64{}
		for _, k := range strategy.Core {
			eng, err := a.BuildEngine(k)
			if err != nil {
				t.Fatal(err)
			}
			actual[k] = eng.RunEpoch().EpochTime()
		}
		best, bestT := strategy.GDP, actual[strategy.GDP]
		for k, v := range actual {
			if v < bestT {
				best, bestT = k, v
			}
		}
		t.Logf("%s: APT chose %v (%.4fs), optimal %v (%.4fs)", abbr, choice, actual[choice], best, bestT)
		if actual[choice] > bestT*1.25 {
			t.Errorf("%s: APT chose %v (%.4fs) but %v is %.4fs — more than 25%% off",
				abbr, choice, actual[choice], best, bestT)
		}
	}
}

func TestTrainWithRealFeatures(t *testing.T) {
	spec, _ := dataset.ByAbbr("FS", 0.04)
	spec.FeatDim = 16
	spec.Classes = 4
	spec.HomophilyDegree = 6
	d := dataset.Build(spec, true)
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2)
	task := Task{
		Graph:  d.Graph,
		Feats:  d.Feats,
		Labels: d.Labels,
		Seeds:  d.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(16, 16, 4, 2)
		},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
		Sampling:     sample.Config{Fanouts: []int{8, 8}},
		BatchSize:    64,
		Platform:     p,
		Seed:         11,
	}
	a, err := New(task)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || len(res.Epochs) != 10 {
		t.Fatal("missing result pieces")
	}
	last := len(res.Epochs) - 1
	if res.Epochs[last].MeanLoss >= res.Epochs[0].MeanLoss {
		t.Errorf("loss did not decrease: %v -> %v", res.Epochs[0].MeanLoss, res.Epochs[last].MeanLoss)
	}
	acc := engine.Evaluate(d.Graph, res.Model, d.Feats, d.Labels, d.TestSeeds, task.Sampling, 64, 1)
	if acc < 0.4 {
		t.Errorf("test accuracy %v too low", acc)
	}
	if res.SimulatedEpochSeconds() <= 0 {
		t.Error("no simulated epoch time")
	}
}

func TestTrainWithPinnedStrategy(t *testing.T) {
	a, err := New(testTask(t, "FS", 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.TrainWith(strategy.DNP, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice != strategy.DNP || len(res.Epochs) != 1 {
		t.Error("pinned strategy run wrong")
	}
}

func TestAccessSkewFromDryRun(t *testing.T) {
	a, err := New(testTask(t, "PS", 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(); err != nil {
		t.Fatal(err)
	}
	buckets := a.DryRunStats().AccessSkewTable()
	if len(buckets) != 6 {
		t.Fatal("skew table wrong size")
	}
	if buckets[0].AccessRatio < 0.15 {
		t.Errorf("PS top-1%% = %.3f, want skewed", buckets[0].AccessRatio)
	}
	if s := graph.FormatSkewTable(buckets); len(s) == 0 {
		t.Error("empty skew table")
	}
}

func TestRandomPartitionOption(t *testing.T) {
	task := testTask(t, "PS", 4, 32)
	task.Partitioner = PartitionRandom
	a, err := New(task)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Prepare(); err != nil {
		t.Fatal(err)
	}
	// Random partition must have a worse cut than multilevel.
	taskML := testTask(t, "PS", 4, 32)
	aML, _ := New(taskML)
	if err := aML.Prepare(); err != nil {
		t.Fatal(err)
	}
	qr := a.Partition()
	qm := aML.Partition()
	if qr == nil || qm == nil {
		t.Fatal("missing partitions")
	}
}

func TestCostModelIncludeTrainAblation(t *testing.T) {
	a, err := New(testTask(t, "PS", 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(); err != nil {
		t.Fatal(err)
	}
	cm := &CostModel{Profile: a.Profile(), Devices: 4, IncludeTrain: true}
	ests := cm.Select(a.DryRunStats().PerStrategy)
	for _, e := range ests {
		if e.TrainSec <= 0 {
			t.Errorf("%v: IncludeTrain did not populate TrainSec", e.Kind)
		}
		if e.TotalCost() <= e.ComparableCost() {
			t.Errorf("%v: total not larger than unique", e.Kind)
		}
	}
}

func TestReportContainsAllSections(t *testing.T) {
	a, err := New(testTask(t, "PS", 4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	for _, want := range []string{"operator profile", "graph partition", "node-access skew", "cost-model estimates", "selected:", "Permute:"} {
		if !containsStr(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}
