package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/strategy"
	"repro/internal/tensor"
)

// Online adaptive re-planning (the dynamic half of the planner). The
// dry-run cost model predicts per-stage times from one profiled
// bandwidth trial and one accounting epoch; both can be wrong at run
// time — a mis-measured operator, interference from co-located jobs,
// or access skew that drifts from the dry-run sample. After every
// epoch the re-planner compares the measured per-stage times (the
// same numbers RecordEpochMetrics folds into the obs registry) against
// the prediction for the running plan, derives per-stage correction
// factors, re-runs strategy selection under the calibrated model, and
// — behind a hysteresis guard — switches strategy, resizes the
// pipeline depth, or resizes the fp32/int8 cache-tier split mid-run.

// Plan is one concrete configuration the adaptive trainer can run: a
// parallelization strategy, a prefetch bound, and a warm-tier split.
type Plan struct {
	Kind strategy.Kind
	// PipelineDepth bounds sampling prefetch when the task pipelines
	// (0 keeps the engine default).
	PipelineDepth int
	// Int8Frac is the warm tier's share of the cache budget.
	Int8Frac float64
}

// String implements fmt.Stringer.
func (p Plan) String() string {
	return fmt.Sprintf("%v(depth=%d,int8=%.2f)", p.Kind, p.PipelineDepth, p.Int8Frac)
}

// ReplanConfig bounds the online re-planner. The zero value picks the
// defaults below.
type ReplanConfig struct {
	// MinRelGain is the hysteresis guard: a candidate plan must predict
	// at least this fractional improvement over the current plan's
	// calibrated cost before the trainer rebuilds for it. Rebuilding
	// re-admits caches and resets optimizer moments, so marginal wins
	// are not worth the churn. Default 0.15.
	MinRelGain float64
	// CooldownEpochs blocks further switches for this many epochs after
	// one fires, so a switch's own transient (cold warm-tier, first
	// pipelined epoch) cannot trigger an immediate switch back.
	// Default 1.
	CooldownEpochs int
	// Int8Fracs are the candidate warm-tier splits evaluated each
	// epoch. Default {0, 0.25, 0.5}.
	Int8Fracs []float64
	// MaxPipelineDepth caps the prefetch bound. Default 4.
	MaxPipelineDepth int
}

func (c *ReplanConfig) normalize() {
	if c.MinRelGain <= 0 {
		c.MinRelGain = 0.15
	}
	if c.CooldownEpochs <= 0 {
		c.CooldownEpochs = 1
	}
	if len(c.Int8Fracs) == 0 {
		c.Int8Fracs = []float64{0, 0.25, 0.5}
	}
	if c.MaxPipelineDepth <= 0 {
		c.MaxPipelineDepth = 4
	}
}

// ReplanEvent records one plan switch.
type ReplanEvent struct {
	// Epoch is the boundary (0-based, after that epoch ran) where the
	// switch fired.
	Epoch    int
	From, To Plan
	// PredictedGain is the fractional cost reduction the calibrated
	// model predicted for the switch.
	PredictedGain float64
	// Cal is the calibration snapshot the decision used.
	Cal Calibration
}

// Replanner turns measured epochs into plan decisions. It owns a
// calibrated CostModel and the dry-run statistics; Observe is called
// once per epoch boundary.
type Replanner struct {
	cfg   ReplanConfig
	cm    *CostModel
	stats map[strategy.Kind]engine.EpochStats

	// freq is the dry-run per-node access counts, hottest first — the
	// tier model integrates over it to predict how a candidate split
	// moves load bytes between GPU memory and the host link.
	freq       []int64
	cacheBytes int64
	featDim    int
	devices    int
	pipeline   bool
	// baseFrac is the split the dry-run volumes were collected under;
	// candidate splits are costed relative to it.
	baseFrac float64

	cur      Plan
	cooldown int
	cal      Calibration
	// gradOverlap is the measured hidden fraction of the gradient
	// allreduce (from the engine's bucketed backward-overlapped sync),
	// sticky across epochs like the calibration factors. The cost
	// model's train term subtracts the hidden share from the fully
	// exposed dry-run charge.
	gradOverlap float64

	// Events accumulates every switch, oldest first.
	Events []ReplanEvent
}

// ReplanState is the Replanner's learned state — everything a
// checkpoint must carry so a resumed adaptive run keeps calibrating
// where the interrupted one left off instead of starting cold.
type ReplanState struct {
	// BaseFrac is the warm-tier split the dry-run volumes were
	// collected under (candidate splits are costed relative to it; the
	// re-planner may have moved the live split away from it).
	BaseFrac float64
	// Cooldown is the remaining hysteresis epochs after the last switch.
	Cooldown int
	// Cal holds the per-stage correction factors.
	Cal Calibration
	// GradOverlap is the measured hidden fraction of the gradient
	// allreduce.
	GradOverlap float64
}

// State snapshots the learned re-planner state for checkpointing.
func (r *Replanner) State() ReplanState {
	return ReplanState{
		BaseFrac: r.baseFrac, Cooldown: r.cooldown,
		Cal: r.cal, GradOverlap: r.gradOverlap,
	}
}

// Restore adopts a checkpointed state (call before the first Observe).
func (r *Replanner) Restore(s ReplanState) {
	r.baseFrac = s.BaseFrac
	r.cooldown = s.Cooldown
	r.cal = s.Cal
	r.gradOverlap = s.GradOverlap
}

// NewReplanner builds a re-planner over the planner's dry-run output.
// stats and freq are read, never written; initial is the plan the
// first epoch runs under (its Int8Frac must be the split the dry-run
// volumes were measured with).
func NewReplanner(cfg ReplanConfig, cm *CostModel, stats map[strategy.Kind]engine.EpochStats,
	freq []int64, cacheBytes int64, featDim, devices int, pipeline bool, initial Plan) *Replanner {
	cfg.normalize()
	sorted := append([]int64(nil), freq...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	return &Replanner{
		cfg: cfg, cm: cm, stats: stats,
		freq: sorted, cacheBytes: cacheBytes, featDim: featDim,
		devices: devices, pipeline: pipeline,
		baseFrac: initial.Int8Frac, cur: initial,
	}
}

// Current returns the plan the trainer should be running.
func (r *Replanner) Current() Plan { return r.cur }

// Calibration returns the latest per-stage correction factors.
func (r *Replanner) Calibration() Calibration { return r.cal }

// CalibrateTransport swaps the re-planner's cost model onto a measured
// communication profile — typically transport.MeasureWire's WireStats
// applied over the simulated base (WireStats.ApplyTo) — so every
// subsequent Observe costs collectives at real wire speed instead of
// the hardware model's links. In a multi-process run every rank MUST
// pass an identical profile or their plan decisions diverge;
// MeasureWire guarantees this by exchanging per-trial timings and
// taking the cross-rank maximum, so feeding each rank its own
// MeasureWire result is safe by construction.
func (r *Replanner) CalibrateTransport(measured *comm.Profile) {
	if measured == nil {
		return
	}
	r.cm.Profile = measured
}

// MeasuredStages reads the last epoch's per-stage seconds back out of
// the metrics registry (the apt_engine_* gauges RecordEpochMetrics
// maintains), so a caller holding only the registry can feed Observe.
func MeasuredStages(reg *obs.Registry) engine.EpochStats {
	g := func(name string) float64 { return reg.Gauge(name, "").Value() }
	st := engine.EpochStats{
		SampleSec:  g("apt_engine_sample_seconds"),
		BuildSec:   g("apt_engine_build_seconds"),
		LoadSec:    g("apt_engine_load_seconds"),
		TrainSec:   g("apt_engine_train_seconds"),
		ShuffleSec: g("apt_engine_shuffle_seconds"),
	}
	st.Totals.GradCommSec = g("apt_engine_grad_comm_seconds")
	st.Totals.GradExposedSec = g("apt_engine_grad_exposed_seconds")
	return st
}

// loadDim is the per-read feature width of one strategy (NFP shards
// the dimension across devices).
func (r *Replanner) loadDim(k strategy.Kind) int {
	if k == strategy.NFP {
		return (r.featDim + r.devices - 1) / r.devices
	}
	return r.featDim
}

// tierLoadSec predicts aggregate feature-load seconds under a
// candidate warm-tier split by integrating the hottest-first access
// distribution: the top band hits fp32 GPU cache, the next band hits
// the int8 tier (quantized bytes at GPU speed), everything below
// crosses the host link at full width. It is a global approximation —
// per-device placement is ignored — used only as a ratio against the
// same model at the dry-run's split, so the systematic error divides
// out.
func (r *Replanner) tierLoadSec(k strategy.Kind, frac float64) float64 {
	dim := r.loadDim(k)
	rowF := float64(4 * dim)
	rowQ := float64(tensor.QuantRowBytes(dim))
	hotN := 0
	if rowF > 0 {
		hotN = int(float64(r.cacheBytes) * (1 - frac) / rowF)
	}
	warmN := 0
	if frac > 0 {
		warmN = int(float64(r.cacheBytes) * frac / rowQ)
	}
	p := r.cm.Profile
	var sec float64
	for i, f := range r.freq {
		b := float64(f)
		switch {
		case i < hotN:
			sec += b * rowF / p.GPUReadBps
		case i < hotN+warmN:
			sec += b * rowQ / p.GPUReadBps
		default:
			sec += b * rowF / p.UVAReadBps
		}
	}
	return sec
}

// tierRatio scales a strategy's dry-run load estimate from the split
// the volumes were collected under to a candidate split.
func (r *Replanner) tierRatio(k strategy.Kind, frac float64) float64 {
	if frac == r.baseFrac {
		return 1
	}
	base := r.tierLoadSec(k, r.baseFrac)
	if base <= 0 {
		return 1
	}
	return r.tierLoadSec(k, frac) / base
}

// planCost is the calibrated strategy-unique cost of one candidate
// plan. The common training term is excluded from the comparison —
// like the static planner's — because it would dilute the relative
// gain and let the hysteresis guard mask real wins.
func (r *Replanner) planCost(p Plan) float64 {
	e := r.cm.Estimate(p.Kind, r.stats[p.Kind])
	e.LoadSec *= r.tierRatio(p.Kind, p.Int8Frac)
	return e.ComparableCost()
}

// pipelineDepth picks the prefetch bound from the calibrated stage
// bars: enough queued batches to hide the sampling/build bar behind
// the consume bar, clamped to [1, MaxPipelineDepth]. When the task
// does not pipeline the current depth is kept.
func (r *Replanner) pipelineDepth(e Estimate) int {
	if !r.pipeline {
		return r.cur.PipelineDepth
	}
	consume := e.LoadSec + e.TrainSec + e.ShuffleSec
	if consume <= 0 || e.BuildSec <= 0 {
		return 1
	}
	d := int(math.Ceil(e.BuildSec / consume))
	if d < 1 {
		d = 1
	}
	if d > r.cfg.MaxPipelineDepth {
		d = r.cfg.MaxPipelineDepth
	}
	return d
}

// Observe ingests one measured epoch of the current plan and returns
// the plan the next epoch should run, plus whether it changed. The
// decision is a pure function of (dry-run stats, measured stages,
// internal cooldown state): candidate strategies come from the cost
// model's sorted Select and candidate splits from the configured
// slice, so the same inputs always produce the same plan.
func (r *Replanner) Observe(epoch int, measured engine.EpochStats) (Plan, bool) {
	// Learn the gradient-sync overlap first: the measured epoch reports
	// how much of the bucketed allreduce the backward pass hid, and the
	// cost model subtracts that share from every strategy's (fully
	// exposed) dry-run train charge. Updated before the calibration
	// prediction so the train factor measures residual compute error,
	// not the overlap the explicit term already carries.
	if t := measured.Totals.GradCommSec; t > 0 {
		r.gradOverlap = 1 - measured.Totals.GradExposedSec/t
	}
	r.cm.GradOverlap = r.gradOverlap

	// Calibrate: measured-over-predicted per stage, where the
	// prediction is the *uncalibrated* model for the plan that just
	// ran (its load term scaled to the split it actually used).
	r.cm.Cal = nil
	pred := r.cm.Estimate(r.cur.Kind, r.stats[r.cur.Kind])
	pred.LoadSec *= r.tierRatio(r.cur.Kind, r.cur.Int8Frac)
	r.cal.Observe(pred, measured)
	r.cm.Cal = &r.cal

	if r.cooldown > 0 {
		r.cooldown--
		return r.cur, false
	}

	curCost := r.planCost(r.cur)
	best, bestCost := r.cur, curCost
	for _, e := range r.cm.Select(r.stats) {
		if e.OOM {
			continue
		}
		for _, frac := range r.cfg.Int8Fracs {
			p := Plan{Kind: e.Kind, Int8Frac: frac}
			if c := r.planCost(p); c < bestCost {
				best, bestCost = p, c
			}
		}
	}
	best.PipelineDepth = r.pipelineDepth(r.cm.Estimate(best.Kind, r.stats[best.Kind]))

	if best == r.cur {
		return r.cur, false
	}
	// A depth-only resize costs nothing to apply (no store rebuild),
	// so it bypasses the gain guard; anything touching the strategy or
	// the tier split must clear the hysteresis bar.
	depthOnly := best.Kind == r.cur.Kind && best.Int8Frac == r.cur.Int8Frac
	gain := 0.0
	if curCost > 0 {
		gain = (curCost - bestCost) / curCost
	}
	if !depthOnly && gain < r.cfg.MinRelGain {
		return r.cur, false
	}
	r.Events = append(r.Events, ReplanEvent{
		Epoch: epoch, From: r.cur, To: best, PredictedGain: gain, Cal: r.cal,
	})
	r.cur = best
	r.cooldown = r.cfg.CooldownEpochs
	return best, true
}

// adoptParams copies trained parameters from src into every replica of
// e. The engine keeps replicas synchronized, so device 0's weights are
// the run's weights; optimizer moments are not carried (the rebuilt
// optimizer restarts cold, which SGD-family optimizers tolerate — the
// moments re-estimate within a few steps).
func adoptParams(e *engine.Engine, devices int, src *nn.Model) {
	for d := 0; d < devices; d++ {
		dst := e.Model(d)
		for li, layer := range dst.Layers {
			sp := src.Layers[li].Params()
			for pi, p := range layer.Params() {
				copy(p.W.Data, sp[pi].W.Data)
			}
		}
	}
}

// TrainAdaptive runs the full pipeline with online re-planning: plan,
// train, and at every epoch boundary recalibrate the cost model from
// the measured stage times and — behind the hysteresis guard — switch
// strategy, pipeline depth, or cache-tier split for the remaining
// epochs. The default ReplanConfig is used; TrainAdaptiveContext takes
// a custom one.
func (a *APT) TrainAdaptive(epochs int) (*Result, error) {
	return a.TrainAdaptiveContext(context.Background(), epochs, ReplanConfig{})
}

// TrainAdaptiveContext is TrainAdaptive under a context and an
// explicit re-planner configuration.
func (a *APT) TrainAdaptiveContext(ctx context.Context, epochs int, rcfg ReplanConfig) (*Result, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("core: epochs = %d", epochs)
	}
	if _, err := a.Plan(); err != nil {
		return nil, err
	}
	cur := Plan{Kind: a.Choice, PipelineDepth: a.task.PipelineDepth, Int8Frac: a.int8Frac}
	e, err := a.BuildEngine(cur.Kind)
	if err != nil {
		return nil, err
	}
	if err := a.consumeResume(e); err != nil {
		return nil, err
	}
	devices := a.task.Platform.NumDevices()
	cm := &CostModel{Profile: a.profile, Devices: devices, IncludeTrain: true}
	rp := NewReplanner(rcfg, cm, a.dryRun.PerStrategy, a.dryRun.Freq,
		a.task.CacheBytes, a.task.FeatDim, devices, a.task.Pipeline, cur)
	if a.resumeReplan != nil {
		// A resumed run adopts the interrupted run's learned state: the
		// calibration, cooldown, and — crucially — the split the dry-run
		// volumes were collected under, which NewReplanner cannot know
		// (the initial plan carries the re-planner's possibly-moved
		// split, not the dry-run's).
		rp.Restore(*a.resumeReplan)
		a.resumeReplan = nil
	}
	// The live re-planner is visible to buildSnapshot for the duration
	// of the run and afterwards, so both the in-loop checkpoint cadence
	// and an explicit post-run Checkpoint capture its learned state.
	a.replanner = rp
	res := &Result{
		Choice:          cur.Kind,
		Estimates:       a.Estimates,
		PlanWallSeconds: a.PlanWallSeconds,
	}
	var runErr error
	for a.epochBase+e.EpochsRun() < epochs {
		st, err := e.RunEpochContext(ctx)
		engine.RecordEpochMetrics(a.reg, st)
		if err != nil {
			runErr = err
			break
		}
		res.Epochs = append(res.Epochs, st)
		done := a.epochBase + e.EpochsRun()
		if done < epochs {
			// Observe BEFORE checkpointing: the boundary-k snapshot must
			// carry the planner state that has already seen epoch k, or a
			// resumed run would calibrate one epoch behind the
			// uninterrupted one and their plan decisions could diverge.
			// The measured stage times come back out of the obs registry —
			// the same apt_engine_* gauges any external observer sees.
			next, switched := rp.Observe(done-1, MeasuredStages(a.reg))
			if switched {
				a.reg.Counter("apt_replan_switches_total", "Online re-planner plan switches applied.").Inc()
				if next.Kind == cur.Kind && next.Int8Frac == cur.Int8Frac {
					// Depth-only resize: adjust the live engine's prefetch
					// bound, no rebuild.
					e.EnablePipeline(next.PipelineDepth)
					cur = next
				} else {
					trained := e.Model(0)
					a.int8Frac = next.Int8Frac
					// Completed epochs move into the base across the
					// rebuild, so the epoch counter (and any snapshot of
					// it) spans engines.
					a.epochBase = done
					e2, err := a.BuildEngine(next.Kind)
					if err != nil {
						runErr = err
						break
					}
					if a.task.Pipeline && next.PipelineDepth > 0 {
						e2.EnablePipeline(next.PipelineDepth)
					}
					adoptParams(e2, devices, trained)
					e = e2
					cur = next
					res.Choice = cur.Kind
				}
			}
		}
		if err := a.maybeCheckpoint(e, cur.Kind); err != nil {
			runErr = err
			break
		}
	}
	res.Replans = rp.Events
	res.Model = e.Model(0)
	if err := a.obsO.Flush(a.spans, a.reg); err != nil && runErr == nil {
		runErr = err
	}
	return res, runErr
}
