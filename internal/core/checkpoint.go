package core

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/strategy"
)

// Checkpoint/restore orchestration. A snapshot captures the full
// training state at an epoch boundary — parameters, optimizer moments,
// RNG stream cursors, epoch counter, the dry-run frequency vector the
// caches were configured from, and the active plan — so a resumed run
// is bit-identical to the uninterrupted one: the engine is
// deterministic given its RNG streams, and everything else restored
// here is exactly the state those streams act on.
//
// Two resume shapes fall out of one snapshot:
//
//   - Same topology: the recorded plan, cache frequencies, and RNG
//     cursors are adopted wholesale. Planning is skipped and training
//     continues as if never interrupted.
//   - Elastic (different device count): parameters, optimizer moments,
//     and the epoch counter survive; the plan and cursors cannot (they
//     are functions of the worker layout), so Prepare/Plan re-run on
//     the new topology and training warm-starts from the snapshot's
//     weights.

// Checkpoint writes the training state as of the last completed epoch
// of the most recently built engine. Call it between epochs (or after
// Train returns); it is not safe while an epoch is in flight.
func (a *APT) Checkpoint(w io.Writer) error {
	snap, err := a.Snapshot()
	if err != nil {
		return err
	}
	return snap.Write(w)
}

// CheckpointFile is Checkpoint to an atomically-replaced file.
func (a *APT) CheckpointFile(path string) error {
	snap, err := a.Snapshot()
	if err != nil {
		return err
	}
	return snap.WriteFile(path)
}

// Snapshot captures the current training state as a checkpoint
// snapshot (the value Checkpoint serializes).
func (a *APT) Snapshot() (*checkpoint.Snapshot, error) {
	if a.lastEngine == nil {
		return nil, fmt.Errorf("core: nothing to checkpoint: no engine has been built")
	}
	return a.buildSnapshot(a.lastEngine, a.lastKind)
}

// buildSnapshot captures the training state from the rank-local
// replica (rank 0 in-process). In a multi-process run this is a
// COLLECTIVE: every rank must call Checkpoint/Snapshot at the same
// epoch boundary (the sampler cursors are exchanged over the fabric),
// and since replicas are synchronized, every rank builds the identical
// snapshot — convention is that rank 0 persists it.
func (a *APT) buildSnapshot(e *engine.Engine, k strategy.Kind) (*checkpoint.Snapshot, error) {
	if err := e.SyncRNGCursors(); err != nil {
		return nil, err
	}
	local := e.LocalRank()
	var buf bytes.Buffer
	if err := e.Model(local).SaveParams(&buf); err != nil {
		return nil, err
	}
	pipelined, depth := e.PipelineState()
	s := &checkpoint.Snapshot{
		Strategy:      k.String(),
		Pipelined:     pipelined,
		PipelineDepth: depth,
		Int8Frac:      a.int8Frac,
		Seed:          a.task.Seed,
		Devices:       a.task.Platform.NumDevices(),
		EpochsDone:    a.epochBase + e.EpochsRun(),
		Model:         buf.Bytes(),
	}
	if so, ok := e.Optimizer(local).(nn.StatefulOptimizer); ok {
		st := so.State(e.Model(local).Params())
		s.Opt = &st
	}
	s.SamplerRNG, s.EpochRNG = e.RNGCursors()
	if a.dryRun != nil {
		s.Freq = a.dryRun.Freq
	}
	if a.dryRun != nil && a.dryRun.PerStrategy != nil {
		// Carry the planner's inputs and learned state so a resumed
		// TrainAdaptive keeps re-planning online. Outside an adaptive run
		// there is no live re-planner; the state is then the task's
		// dry-run split with cold calibration, which is exactly what a
		// fresh re-planner over these stats would start from.
		st := ReplanState{BaseFrac: a.task.Int8CacheFrac}
		if a.replanner != nil {
			st = a.replanner.State()
		}
		s.Adaptive = &checkpoint.AdaptiveState{
			BaseFrac:    st.BaseFrac,
			Cooldown:    st.Cooldown,
			CalBuild:    st.Cal.Build,
			CalLoadHost: st.Cal.LoadHost,
			CalShuffle:  st.Cal.Shuffle,
			CalTrain:    st.Cal.Train,
			GradOverlap: st.GradOverlap,
			PerStrategy: a.dryRun.PerStrategy,
		}
	}
	return s, nil
}

// maybeCheckpoint writes a snapshot when the system was configured
// with a checkpoint directory and the completed-epoch count hits the
// cadence: the single rolling file by default, or — with
// CheckpointRetain set — an epoch-stamped file followed by pruning to
// the newest CheckpointRetain.
func (a *APT) maybeCheckpoint(e *engine.Engine, k strategy.Kind) error {
	if a.CheckpointDir == "" {
		return nil
	}
	every := a.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	done := a.epochBase + e.EpochsRun()
	if done == 0 || done%every != 0 {
		return nil
	}
	snap, err := a.buildSnapshot(e, k)
	if err != nil {
		return err
	}
	if a.CheckpointRetain > 0 {
		if err := snap.WriteFile(filepath.Join(a.CheckpointDir, checkpoint.SnapshotName(done))); err != nil {
			return err
		}
		return checkpoint.Prune(a.CheckpointDir, a.CheckpointRetain)
	}
	return snap.WriteFile(filepath.Join(a.CheckpointDir, checkpoint.DefaultName))
}

// Resume reconstructs an APT from a snapshot stream. task must be the
// same experiment the snapshot came from (the seed is validated; the
// graph, model factory, and hyperparameters are the caller's contract,
// exactly as they are across ranks of a distributed run).
//
// When task's device count matches the snapshot's, the recorded plan
// and cache frequencies are adopted, planning is skipped, and the
// first engine built restores parameters, optimizer moments, and RNG
// cursors — Train then continues bit-identically. When the device
// count differs (elastic resume), Prepare and Plan re-run on the new
// topology and only parameters, optimizer moments, and the epoch
// counter carry over.
//
// Train's epoch argument counts TOTAL epochs for the experiment: a run
// resumed at epoch 3 with Train(10) trains 7 more.
func Resume(task Task, r io.Reader, opts ...obs.Option) (*APT, error) {
	snap, err := checkpoint.Read(r)
	if err != nil {
		return nil, err
	}
	return resume(task, snap, opts...)
}

// ResumeFile is Resume from a snapshot file.
func ResumeFile(task Task, path string, opts ...obs.Option) (*APT, error) {
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return resume(task, snap, opts...)
}

func resume(task Task, snap *checkpoint.Snapshot, opts ...obs.Option) (*APT, error) {
	a, err := New(task, opts...)
	if err != nil {
		return nil, err
	}
	if snap.Seed != a.task.Seed {
		return nil, fmt.Errorf("core: snapshot is from seed %d, task has seed %d", snap.Seed, a.task.Seed)
	}
	kind, err := snap.Kind()
	if err != nil {
		return nil, err
	}
	a.resume = snap
	a.epochBase = snap.EpochsDone
	if snap.Devices != a.task.Platform.NumDevices() {
		// Elastic resume: the plan and RNG cursors are functions of the
		// worker layout, so Train re-plans; ApplyResume will restore
		// only topology-independent state.
		return a, nil
	}
	if err := a.Prepare(); err != nil {
		return nil, err
	}
	if snap.Freq != nil {
		a.dryRun = &DryRunStats{Freq: snap.Freq}
	}
	if snap.Adaptive != nil {
		// The per-strategy dry-run stats and the re-planner's learned
		// state ride in the snapshot, so a resumed TrainAdaptive keeps
		// re-planning online with the calibration it had already earned.
		if a.dryRun == nil {
			a.dryRun = &DryRunStats{}
		}
		a.dryRun.PerStrategy = snap.Adaptive.PerStrategy
		a.resumeReplan = &ReplanState{
			BaseFrac: snap.Adaptive.BaseFrac,
			Cooldown: snap.Adaptive.Cooldown,
			Cal: Calibration{
				Build:    snap.Adaptive.CalBuild,
				LoadHost: snap.Adaptive.CalLoadHost,
				Shuffle:  snap.Adaptive.CalShuffle,
				Train:    snap.Adaptive.CalTrain,
			},
			GradOverlap: snap.Adaptive.GradOverlap,
		}
	}
	a.Choice = kind
	a.int8Frac = snap.Int8Frac
	// The plan is adopted, not recomputed: Plan() short-circuits on
	// planned, so Train goes straight to the recorded strategy.
	a.planned = true
	return a, nil
}

// EpochBase reports how many epochs were already complete when this
// APT was constructed — zero for a fresh run, the snapshot's epoch
// counter after Resume. Callers driving the epoch loop themselves
// start at EpochBase()+1 and run to their TOTAL epoch target.
func (a *APT) EpochBase() int {
	return a.epochBase
}

// ApplyResume restores the pending snapshot's training state into an
// engine built from this APT: parameters into every replica, optimizer
// moments into every device's optimizer, and — when the topology
// matches — the RNG stream cursors. Train and TrainAdaptive call it
// automatically on their first engine; callers driving
// BuildEngine/BuildEngineDistributed themselves (e.g. one rank of a
// multi-process run) call it once after building. A no-op when the APT
// did not come from Resume.
func (a *APT) ApplyResume(e *engine.Engine) error {
	snap := a.resume
	if snap == nil {
		return nil
	}
	devices := a.task.Platform.NumDevices()
	for d := 0; d < devices; d++ {
		if err := e.Model(d).LoadParams(bytes.NewReader(snap.Model)); err != nil {
			return fmt.Errorf("core: resume device %d params: %w", d, err)
		}
		if snap.Opt == nil {
			continue
		}
		if so, ok := e.Optimizer(d).(nn.StatefulOptimizer); ok {
			if err := so.Restore(e.Model(d).Params(), *snap.Opt); err != nil {
				return fmt.Errorf("core: resume device %d optimizer: %w", d, err)
			}
		}
	}
	if snap.HasRNG() && snap.Devices == devices {
		if err := e.SetRNGCursors(snap.SamplerRNG, snap.EpochRNG); err != nil {
			return fmt.Errorf("core: resume rng cursors: %w", err)
		}
	}
	return nil
}

// consumeResume applies the pending snapshot to the run's first engine
// and clears it, so engines rebuilt later in the same run (re-planner
// switches) start from their live adopted parameters instead.
func (a *APT) consumeResume(e *engine.Engine) error {
	if err := a.ApplyResume(e); err != nil {
		return err
	}
	a.resume = nil
	return nil
}
