// Package core implements the APT system of the paper: given the
// specifics of a GNN training task (graph, model, sampling algorithm,
// hardware platform), it measures communication-operator speeds
// (Prepare), dry-runs one epoch to collect data-dependent statistics
// and applies cost models to pick the fastest parallelization strategy
// (Plan), configures the unified execution engine and feature store
// for the chosen strategy (Adapt), and trains (Run).
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// PartitionerKind selects how SNP/DNP partition the graph.
type PartitionerKind int

// Partitioners.
const (
	// PartitionMultilevel is the METIS-quality multilevel partitioner
	// (the paper's default).
	PartitionMultilevel PartitionerKind = iota
	// PartitionRandom is the Fig. 11 baseline.
	PartitionRandom
)

// Task is the user-facing specification of a GNN training job.
type Task struct {
	// Graph is the data graph (in-neighbor CSR).
	Graph *graph.Graph
	// Feats is the input feature matrix; nil runs the task in
	// accounting mode (timing only).
	Feats *tensor.Matrix
	// FeatDim is the input feature dimension (required; must match
	// Feats when present).
	FeatDim int
	// Labels are node classes (required when Feats is present).
	Labels []int32
	// Seeds are the training seed nodes.
	Seeds []graph.NodeID
	// NewModel constructs the GNN model (DGL/PyG stand-in). The model's
	// first-layer input dimension must equal FeatDim.
	NewModel func() *nn.Model
	// NewOptimizer constructs the per-replica optimizer; nil => SGD.
	NewOptimizer func() nn.Optimizer
	// Sampling is the graph-sampling configuration (fanouts).
	Sampling sample.Config
	// BatchSize is the per-GPU mini-batch size (paper default 1024).
	BatchSize int
	// Platform describes the hardware.
	Platform *hardware.Platform
	// CacheBytes is the per-GPU feature-cache budget; 0 uses the
	// platform default.
	CacheBytes int64
	// CPUCacheBytes is per-machine excess CPU memory used to replicate
	// hot remote features (paper footnote 3); 0 disables. Only
	// meaningful on multi-machine platforms.
	CPUCacheBytes int64
	// Int8CacheFrac is the fraction of CacheBytes given to the int8
	// warm tier (0 disables tiering; must be < 1). The warm tier
	// extends cache coverage below the fp32 hot band: a row it holds
	// is served from GPU memory at quantized byte volume and
	// dequantized inside the consuming kernel, instead of crossing
	// the host link at full width.
	Int8CacheFrac float64
	// ProfileOverride pins the communication-operator profile instead
	// of measuring it in Prepare. The re-planning ablation uses it to
	// hand the planner a mis-ranked profile and show the calibrated
	// re-planner recovering.
	ProfileOverride *comm.Profile
	// Partitioner selects the SNP/DNP graph partitioner.
	Partitioner PartitionerKind
	// Partition supplies a precomputed partitioning (e.g. from the
	// aptpart tool, mirroring the paper's offline DGL-style
	// partitioning step); when set, Prepare skips partitioning.
	Partition *partition.Partitioning
	// CachePolicyOverride pins one cache policy for every strategy
	// (nil uses the paper's per-strategy rules); the cache-policy
	// ablation sets it to the degree-based PaGraph baseline.
	CachePolicyOverride *cache.Policy
	// RecordTimeline captures per-step stage times in every epoch's
	// statistics (engine.EpochStats.Timeline).
	RecordTimeline bool
	// GradCompress selects the gradient-allreduce wire codec: "" or
	// "fp32" moves exact floats, "fp16" halves the wire, "int8" quarters
	// it with per-chunk scales and error feedback. Compression changes
	// only the wire — replicas stay bit-identical to each other (every
	// rank decodes the chunk owner's single final encoding), but a
	// compressed run is no longer bit-identical to an uncompressed one.
	GradCompress string
	// Pipeline runs training epochs with per-worker sampling prefetch
	// overlapped against compute (engine.Config.Pipeline); epoch stats
	// then carry the measured overlapped time.
	Pipeline bool
	// PipelineDepth bounds the prefetch queue (<=0 uses the engine
	// default).
	PipelineDepth int
	// Seed drives all randomness.
	Seed uint64
}

// normalize fills defaults and validates.
func (t *Task) normalize() error {
	if t.Graph == nil || t.Graph.NumNodes() == 0 {
		return fmt.Errorf("core: task has no graph")
	}
	if t.NewModel == nil {
		return fmt.Errorf("core: task has no model")
	}
	if len(t.Seeds) == 0 {
		return fmt.Errorf("core: task has no training seeds")
	}
	if t.Platform == nil {
		return fmt.Errorf("core: task has no platform")
	}
	if err := t.Platform.Validate(); err != nil {
		return err
	}
	if t.BatchSize <= 0 {
		t.BatchSize = 1024
	}
	if t.CacheBytes == 0 {
		t.CacheBytes = t.Platform.DefaultCacheBytes
	}
	if len(t.Sampling.Fanouts) == 0 {
		return fmt.Errorf("core: task has no sampling fanouts")
	}
	probe := t.NewModel()
	if len(probe.Layers) != len(t.Sampling.Fanouts) {
		return fmt.Errorf("core: model has %d layers but %d fanouts",
			len(probe.Layers), len(t.Sampling.Fanouts))
	}
	if t.FeatDim == 0 && t.Feats != nil {
		t.FeatDim = t.Feats.Cols
	}
	if t.FeatDim != probe.Layers[0].InDim() {
		return fmt.Errorf("core: feature dim %d != model input dim %d",
			t.FeatDim, probe.Layers[0].InDim())
	}
	if t.Feats != nil && t.Feats.Cols != t.FeatDim {
		return fmt.Errorf("core: feature matrix width %d != FeatDim %d", t.Feats.Cols, t.FeatDim)
	}
	if t.Feats != nil && t.Labels == nil {
		return fmt.Errorf("core: real-mode task needs labels")
	}
	if t.Int8CacheFrac < 0 || t.Int8CacheFrac >= 1 {
		return fmt.Errorf("core: Int8CacheFrac %v outside [0, 1)", t.Int8CacheFrac)
	}
	if _, err := transport.ChunkCodecByName(t.GradCompress); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}

// partitionGraph runs the configured partitioner over the task graph.
func (t *Task) partitionGraph() *partition.Partitioning {
	k := t.Platform.NumDevices()
	switch t.Partitioner {
	case PartitionRandom:
		return partition.Random(t.Graph, k, t.Seed)
	default:
		return partition.Multilevel(t.Graph, k, partition.MultilevelConfig{Seed: t.Seed, EdgeBalanced: true})
	}
}
