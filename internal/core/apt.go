package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/strategy"
	"repro/internal/tensor"
)

// APT is the adaptive parallel training system. Typical use:
//
//	apt, _ := core.New(task)
//	result, _ := apt.Train(epochs)
//
// or step-by-step: Prepare, Plan, BuildEngine, then drive the engine.
type APT struct {
	task    Task
	profile *comm.Profile
	part    *partition.Partitioning
	dryRun  *DryRunStats

	// Estimates are the planner's per-strategy predictions, best first.
	Estimates []Estimate
	// Choice is the selected strategy.
	Choice strategy.Kind
	// PlanWallSeconds is the wall-clock cost of Prepare+Plan (the
	// paper's dry-run overhead measurement).
	PlanWallSeconds float64

	prepared bool
	planned  bool

	// int8Frac is the live warm-tier split used by buildStore. It
	// starts at Task.Int8CacheFrac and is resized by the re-planner.
	int8Frac float64

	// CheckpointDir, when non-empty, makes Train write a rolling
	// snapshot (checkpoint.DefaultName inside the directory) at every
	// CheckpointEvery-th epoch boundary; 0 means every epoch. The
	// directory must exist.
	CheckpointDir   string
	CheckpointEvery int
	// CheckpointRetain, when positive, switches the directory to
	// epoch-stamped snapshots (checkpoint.SnapshotName) and prunes all
	// but the newest CheckpointRetain after each write; zero keeps the
	// single rolling snapshot.
	CheckpointRetain int

	// Checkpoint/resume state: the most recently built engine and its
	// strategy (what Checkpoint snapshots), the completed-epoch base
	// carried across engine rebuilds and resumes, and the snapshot a
	// Resume'd APT still has to apply to its first engine.
	lastEngine *engine.Engine
	lastKind   strategy.Kind
	epochBase  int
	resume     *checkpoint.Snapshot

	// Adaptive checkpoint/resume state: the live re-planner (set while
	// TrainAdaptive runs, so snapshots capture its learned state) and
	// the restored state a Resume'd APT hands to its first re-planner.
	replanner    *Replanner
	resumeReplan *ReplanState

	// Observability: reg always exists (epoch metrics fold into it);
	// spans is created only when an option asked for span collection.
	obsO  obs.Options
	reg   *obs.Registry
	spans *obs.Collector
}

// New validates the task and creates the system. Options attach
// observers: obs.WithTracePath exports a Chrome trace of the training
// run's spans when Train finishes, obs.WithObserver receives the span
// tracks and the metrics registry.
func New(task Task, opts ...obs.Option) (*APT, error) {
	if err := task.normalize(); err != nil {
		return nil, err
	}
	a := &APT{task: task, obsO: obs.BuildOptions(opts...), reg: obs.NewRegistry(), int8Frac: task.Int8CacheFrac}
	if a.obsO.Enabled() {
		a.spans = obs.NewCollector()
	}
	return a, nil
}

// Metrics returns the system's metrics registry; Train folds each
// epoch's volumes and stage times into it (apt_engine_* series).
func (a *APT) Metrics() *obs.Registry { return a.reg }

// Spans returns the span collector, or nil when no observability
// option requested span collection.
func (a *APT) Spans() *obs.Collector { return a.spans }

// Task returns the normalized task.
func (a *APT) Task() *Task { return &a.task }

// Partition returns the graph partitioning (after Prepare).
func (a *APT) Partition() *partition.Partitioning { return a.part }

// Profile returns the measured operator speeds (after Prepare).
func (a *APT) Profile() *comm.Profile { return a.profile }

// DryRunStats returns the planner statistics (after Plan).
func (a *APT) DryRunStats() *DryRunStats { return a.dryRun }

// Prepare runs the paper's Prepare step: communication-operator
// bandwidth trials and graph partitioning.
//
//apt:allow simclock PlanWallSeconds reports real planner overhead (Table 4); the simulated clock only covers training
func (a *APT) Prepare() error {
	start := time.Now()
	if a.task.ProfileOverride != nil {
		a.profile = a.task.ProfileOverride
	} else {
		a.profile = comm.MeasureProfile(a.task.Platform)
	}
	if a.task.Partition != nil {
		a.part = a.task.Partition
	} else {
		a.part = a.task.partitionGraph()
	}
	if err := a.part.Validate(false); err != nil {
		return err
	}
	a.prepared = true
	a.PlanWallSeconds += time.Since(start).Seconds()
	return nil
}

// Plan runs the dry-run and cost models and selects the strategy.
// Planning is idempotent: once a plan exists — computed here or
// adopted from a snapshot by Resume — Plan returns it without
// re-running the dry-run.
//
//apt:allow simclock PlanWallSeconds reports real planner overhead (Table 4); the simulated clock only covers training
func (a *APT) Plan() (strategy.Kind, error) {
	if a.planned {
		return a.Choice, nil
	}
	if !a.prepared {
		if err := a.Prepare(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	if _, err := a.DryRun(); err != nil {
		return 0, err
	}
	cm := &CostModel{Profile: a.profile, Devices: a.task.Platform.NumDevices()}
	a.Estimates = cm.Select(a.dryRun.PerStrategy)
	a.Choice = a.Estimates[0].Kind
	a.planned = true
	a.PlanWallSeconds += time.Since(start).Seconds()
	return a.Choice, nil
}

// buildStore assembles the unified feature store for one strategy:
// host placement, per-strategy cache policy, and NFP's dimension-shard
// accounting (paper §3.2 and §4.2).
func (a *APT) buildStore(k strategy.Kind, freq []int64, real bool) *cache.Store {
	t := &a.task
	var feats = t.Feats
	if !real {
		feats = nil
	}
	s := cache.NewStore(t.Platform, t.Graph.NumNodes(), t.FeatDim, feats)
	if k.NeedsPartition() {
		s.HostByPartition(a.part.Assign)
	} else {
		s.HostByRange()
	}
	devices := t.Platform.NumDevices()
	bytesPerNode := int64(4 * t.FeatDim)
	if k == strategy.NFP {
		shard := (t.FeatDim + devices - 1) / devices
		s.LoadDim = shard
		bytesPerNode = int64(4 * shard)
	}
	// Tier split: the warm fraction of the budget holds int8 rows, the
	// remainder stays fp32. Quantized rows are charged at their actual
	// byte size (row + scale/zero header), so the warm tier covers
	// roughly 4x the nodes per byte.
	hotBudget := t.CacheBytes
	warmNodes := 0
	if a.int8Frac > 0 {
		warmBudget := int64(float64(t.CacheBytes) * a.int8Frac)
		hotBudget = t.CacheBytes - warmBudget
		warmNodes = int(warmBudget / tensor.QuantRowBytes(s.LoadDim))
	}
	capNodes := 0
	if bytesPerNode > 0 {
		capNodes = int(hotBudget / bytesPerNode)
	}
	policy := cachePolicyFor(k)
	if t.CachePolicyOverride != nil {
		policy = *t.CachePolicyOverride
	}
	selCfg := cache.SelectConfig{
		Policy:        policy,
		Freq:          freq,
		Assign:        a.part.Assign,
		Graph:         t.Graph,
		CapacityNodes: capNodes,
		Devices:       devices,
	}
	if warmNodes > 0 {
		hot, warm := cache.SelectTiered(selCfg, warmNodes)
		for d := range hot {
			s.ConfigureCacheTiered(d, hot[d], warm[d])
		}
	} else {
		for d, l := range cache.Select(selCfg) {
			s.ConfigureCache(d, l)
		}
	}
	if t.Platform.Machines > 1 && t.CPUCacheBytes > 0 {
		a.configureCPUCaches(s, freq)
	}
	return s
}

// configureCPUCaches replicates each machine's hottest remotely-hosted
// features into its CPU memory, within the per-machine budget.
func (a *APT) configureCPUCaches(s *cache.Store, freq []int64) {
	t := &a.task
	capNodes := int(t.CPUCacheBytes / int64(4*t.FeatDim))
	if capNodes <= 0 {
		return
	}
	for m := 0; m < t.Platform.Machines; m++ {
		cands := make([]graph.NodeID, 0, len(freq))
		for v := range freq {
			if int(s.HostMachine[v]) != m {
				cands = append(cands, graph.NodeID(v))
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			fi, fj := freq[cands[i]], freq[cands[j]]
			if fi != fj {
				return fi > fj
			}
			return cands[i] < cands[j]
		})
		if len(cands) > capNodes {
			cands = cands[:capNodes]
		}
		s.ConfigureCPUCache(m, cands)
	}
}

// engineConfig assembles an engine configuration (the Adapt step).
func (a *APT) engineConfig(k strategy.Kind, store *cache.Store, mode engine.Mode) engine.Config {
	t := &a.task
	cfg := engine.Config{
		Platform:       t.Platform,
		Graph:          t.Graph,
		Store:          store,
		NewModel:       t.NewModel,
		NewOptimizer:   t.NewOptimizer,
		Seeds:          t.Seeds,
		Sampling:       t.Sampling,
		BatchSize:      t.BatchSize,
		Assign:         a.part.Assign,
		Kind:           k,
		Mode:           mode,
		Seed:           t.Seed,
		RecordTimeline: t.RecordTimeline,
		GradCompress:   t.GradCompress,
		Pipeline:       t.Pipeline,
		PipelineDepth:  t.PipelineDepth,
	}
	if mode == engine.Real {
		cfg.Labels = t.Labels
	}
	return cfg
}

// BuildEngine performs the Adapt step for the given strategy: it
// configures the data layout (feature store, caches) and the unified
// execution engine. Real mode is used when the task has features.
func (a *APT) BuildEngine(k strategy.Kind) (*engine.Engine, error) {
	if !a.planned && a.dryRun == nil {
		// The cache configuration needs access frequencies even when
		// the user pins a strategy without planning.
		if !a.prepared {
			if err := a.Prepare(); err != nil {
				return nil, err
			}
		}
		a.dryRun = &DryRunStats{Freq: a.collectFrequencies()}
	}
	mode := engine.Accounting
	if a.task.Feats != nil {
		mode = engine.Real
	}
	store := a.buildStore(k, a.dryRun.Freq, mode == engine.Real)
	cfg := a.engineConfig(k, store, mode)
	cfg.Spans = a.spans
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	a.lastEngine, a.lastKind = e, k
	return e, nil
}

// BuildEngineDistributed is BuildEngine for one rank of a
// multi-process run: the engine's collectives cross tr (e.g. a
// transport.TCP bootstrapped against the job's coordinator) and only
// localRank's worker executes in this process. Every rank must call it
// with an identical Task — planning inputs included — so the replicas
// and the plan agree across processes; pair it with
// Task.ProfileOverride or Replanner.CalibrateTransport to plan against
// measured wire speeds instead of the simulated link model.
func (a *APT) BuildEngineDistributed(k strategy.Kind, tr comm.Transport, localRank int) (*engine.Engine, error) {
	if !a.planned && a.dryRun == nil {
		if !a.prepared {
			if err := a.Prepare(); err != nil {
				return nil, err
			}
		}
		a.dryRun = &DryRunStats{Freq: a.collectFrequencies()}
	}
	mode := engine.Accounting
	if a.task.Feats != nil {
		mode = engine.Real
	}
	store := a.buildStore(k, a.dryRun.Freq, mode == engine.Real)
	cfg := a.engineConfig(k, store, mode)
	cfg.Spans = a.spans
	cfg.Transport = tr
	cfg.LocalRank = localRank
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	a.lastEngine, a.lastKind = e, k
	return e, nil
}

// Result summarizes a Train run.
type Result struct {
	Choice          strategy.Kind
	Estimates       []Estimate
	PlanWallSeconds float64
	// Epochs holds per-epoch statistics of the actual run.
	Epochs []engine.EpochStats
	// Replans lists the online re-planner's switches (TrainAdaptive
	// runs only; empty when the initial plan held).
	Replans []ReplanEvent
	// Model is device 0's trained replica (real mode).
	Model *nn.Model
}

// SimulatedEpochSeconds averages the simulated epoch time.
func (r *Result) SimulatedEpochSeconds() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	var s float64
	for _, e := range r.Epochs {
		s += e.EpochTime()
	}
	return s / float64(len(r.Epochs))
}

// Train runs the full APT pipeline: Prepare, Plan, Adapt, and epochs
// of training under the selected strategy.
func (a *APT) Train(epochs int) (*Result, error) {
	return a.TrainContext(context.Background(), epochs)
}

// TrainContext is Train under a context: cancellation stops the run
// cleanly at the next synchronized step boundary and returns the
// epochs that completed alongside ctx.Err().
func (a *APT) TrainContext(ctx context.Context, epochs int) (*Result, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("core: epochs = %d", epochs)
	}
	if _, err := a.Plan(); err != nil {
		return nil, err
	}
	return a.TrainWithContext(ctx, a.Choice, epochs)
}

// TrainWith trains under a pinned strategy (used by the benchmarks to
// evaluate every strategy, and by users who want to override APT).
func (a *APT) TrainWith(k strategy.Kind, epochs int) (*Result, error) {
	return a.TrainWithContext(context.Background(), k, epochs)
}

// TrainWithContext is TrainWith under a context. Whatever ends the
// run — completion or cancellation — the observability options flush:
// the Chrome trace file is written and any observer sees the span
// tracks and metrics collected so far.
//
// epochs counts total completed epochs for the experiment: on a fresh
// APT that is simply the number of epochs to run, on a Resume'd one
// the snapshot's completed epochs count toward it. With CheckpointDir
// set, a rolling snapshot is written at the configured epoch cadence.
func (a *APT) TrainWithContext(ctx context.Context, k strategy.Kind, epochs int) (*Result, error) {
	e, err := a.BuildEngine(k)
	if err != nil {
		return nil, err
	}
	if err := a.consumeResume(e); err != nil {
		return nil, err
	}
	res := &Result{
		Choice:          k,
		Estimates:       a.Estimates,
		PlanWallSeconds: a.PlanWallSeconds,
	}
	var runErr error
	for a.epochBase+e.EpochsRun() < epochs {
		st, err := e.RunEpochContext(ctx)
		engine.RecordEpochMetrics(a.reg, st)
		if err != nil {
			runErr = err
			break
		}
		res.Epochs = append(res.Epochs, st)
		if err := a.maybeCheckpoint(e, k); err != nil {
			runErr = err
			break
		}
	}
	res.Model = e.Model(0)
	if err := a.obsO.Flush(a.spans, a.reg); err != nil && runErr == nil {
		runErr = err
	}
	return res, runErr
}
