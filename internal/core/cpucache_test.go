package core

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/dataset"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// TestCPUCacheReducesRemoteReads checks the footnote-3 mechanism:
// per-machine CPU replication of hot remote features converts remote
// reads into local ones on the distributed platform.
func TestCPUCacheReducesRemoteReads(t *testing.T) {
	spec, err := dataset.ByAbbr("PS", 0.08)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.Build(spec, false)
	mk := func(cpuCache int64) Task {
		return Task{
			Graph:   d.Graph,
			FeatDim: spec.FeatDim,
			Seeds:   d.TrainSeeds,
			NewModel: func() *nn.Model {
				return nn.NewGraphSAGE(spec.FeatDim, 32, spec.Classes, 2)
			},
			Sampling:      sample.Config{Fanouts: []int{10, 10}},
			BatchSize:     64,
			Platform:      hardware.FourMachines4GPU(),
			CacheBytes:    d.CacheBytesFraction(0.05),
			CPUCacheBytes: cpuCache,
			Seed:          3,
		}
	}
	run := func(task Task) int64 {
		a, err := New(task)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := a.BuildEngine(strategy.GDP)
		if err != nil {
			t.Fatal(err)
		}
		st := eng.RunEpoch()
		return st.Totals.Load.Bytes[cache.LocRemoteCPU]
	}
	off := run(mk(0))
	on := run(mk(d.CacheBytesFraction(0.3)))
	if off == 0 {
		t.Fatal("no remote reads without CPU cache; test setup broken")
	}
	if on >= off {
		t.Errorf("CPU cache did not reduce remote reads: %d -> %d", off, on)
	}
	if float64(on) > 0.7*float64(off) {
		t.Errorf("CPU cache too weak: %d -> %d (want >30%% cut)", off, on)
	}
}
