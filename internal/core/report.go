package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Report renders everything the planner learned about the task: the
// profiled operator speeds, the partition quality, the dry-run access
// skew, the per-strategy estimates, and the adapted execution plan of
// the selected strategy. Available after Plan.
func (a *APT) Report() string {
	var b strings.Builder
	t := &a.task
	fmt.Fprintf(&b, "APT plan report — %d nodes, %d edges, %d-dim features, %d devices\n",
		t.Graph.NumNodes(), t.Graph.NumEdges(), t.FeatDim, t.Platform.NumDevices())

	if a.profile != nil {
		p := a.profile
		fmt.Fprintf(&b, "\noperator profile (Prepare):\n")
		fmt.Fprintf(&b, "  alltoall %.1f GB/s  broadcast %.1f GB/s  allreduce %.1f GB/s\n",
			p.AllToAllBps/1e9, p.AllGatherBps/1e9, p.AllReduceBps/1e9)
		fmt.Fprintf(&b, "  uva-read %.1f GB/s  remote-read %.1f GB/s  peer-read %.1f GB/s\n",
			p.UVAReadBps/1e9, p.RemoteReadBps/1e9, p.PeerReadBps/1e9)
	}
	if a.part != nil {
		q := partition.Evaluate(t.Graph, a.part)
		fmt.Fprintf(&b, "\ngraph partition: %d parts, edge cut %.1f%%, imbalance %.2f\n",
			a.part.NumParts, q.CutRatio*100, q.Imbalance)
	}
	if a.dryRun != nil && a.dryRun.Freq != nil {
		fmt.Fprintf(&b, "\nnode-access skew (dry-run):\n%s",
			graph.FormatSkewTable(graph.AccessSkew(a.dryRun.Freq)))
	}
	if len(a.Estimates) > 0 {
		fmt.Fprintf(&b, "\ncost-model estimates:\n%s", FormatEstimates(a.Estimates))
		fmt.Fprintf(&b, "selected: %v (planning wall time %.2fs)\n", a.Choice, a.PlanWallSeconds)
		fmt.Fprintf(&b, "\n%s", engine.DescribePlan(a.Choice, t.NewModel()))
	}
	return b.String()
}
