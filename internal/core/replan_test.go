package core

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/strategy"
)

// Synthetic planner inputs for re-planner unit tests: a profile that
// lies about host-read speed (50x too fast, the classic mis-profiled
// UVA link), dry-run stats where one strategy's load is host-bound
// and another's is cache-resident, and a measured epoch that tells
// the truth. No engine runs — the tests pin the decision logic alone.

const hostReadLie = 50.0

func replanProfile() *comm.Profile {
	return &comm.Profile{
		AllToAllBps:      1e10,
		AllGatherBps:     1e10,
		AllReduceBps:     1e10,
		UVAReadBps:       hostReadLie * 1e9, // honest link moves 1e9 B/s
		RemoteReadBps:    1e9,
		GPUReadBps:       1e12,
		AllToAllCallSec:  1e-6,
		AllGatherCallSec: 1e-6,
		ReadCallSec:      1e-6,
	}
}

// replanStats builds the dry-run stats map fresh each call (fresh map
// ⇒ fresh iteration order, which the determinism test leans on).
// GDP loads 1 GB from host memory per epoch; SNP serves the same
// bytes from GPU cache but pays collective traffic; NFP and DNP are
// strictly worse fillers.
func replanStats() map[strategy.Kind]engine.EpochStats {
	mk := func(fill func(ws *engine.WorkerStats)) engine.EpochStats {
		st := engine.EpochStats{SampleSec: 0.01, TrainSec: 0.05, NumBatches: 10,
			PerDevice: make([]engine.WorkerStats, 2)}
		for i := range st.PerDevice {
			fill(&st.PerDevice[i])
		}
		return st
	}
	return map[strategy.Kind]engine.EpochStats{
		strategy.GDP: mk(func(ws *engine.WorkerStats) {
			ws.Load.Bytes[cache.LocLocalCPU] = 1e9
		}),
		strategy.SNP: mk(func(ws *engine.WorkerStats) {
			ws.Load.Bytes[cache.LocGPU] = 1e9
			ws.GraphA2ABytes = 2e8
			ws.BuildA2ACalls = 10
			ws.HiddenA2ABytes = 4e8
			ws.ShufA2ACalls = 10
		}),
		strategy.NFP: mk(func(ws *engine.WorkerStats) {
			ws.Load.Bytes[cache.LocLocalCPU] = 1e9
			ws.GraphBcastBytes = 1e9
			ws.BuildBcastCalls = 10
			ws.HiddenBcastBytes = 1e9
			ws.ShufBcastCalls = 10
		}),
		strategy.DNP: mk(func(ws *engine.WorkerStats) {
			ws.Load.Bytes[cache.LocLocalCPU] = 1e9
			ws.GraphA2ABytes = 1e9
			ws.BuildA2ACalls = 10
			ws.HiddenA2ABytes = 1e9
			ws.ShufA2ACalls = 10
		}),
	}
}

func replanFreq() []int64 {
	freq := make([]int64, 1000)
	for i := range freq {
		freq[i] = int64(1000 - i)
	}
	return freq
}

func newTestReplanner(cfg ReplanConfig) *Replanner {
	cm := &CostModel{Profile: replanProfile(), Devices: 2, IncludeTrain: true}
	return NewReplanner(cfg, cm, replanStats(), replanFreq(),
		64*1024, 16, 2, false, Plan{Kind: strategy.GDP})
}

// measuredGDP is an honest epoch of the GDP plan: sampling and
// training as predicted, but the 1 GB host load took a full second —
// the profile's 50x-fast lie exposed.
func measuredGDP() engine.EpochStats {
	return engine.EpochStats{SampleSec: 0.01, LoadSec: 1.0, TrainSec: 0.05}
}

// TestReplannerDeterministic: the same dry-run stats and measured
// epochs must produce the same plan sequence every time. The stats
// map is rebuilt per trial so Go's randomized map iteration order
// gets a fresh roll — any order-dependence in candidate enumeration
// shows up as a diverging trial.
func TestReplannerDeterministic(t *testing.T) {
	run := func() ([]Plan, []ReplanEvent) {
		rp := newTestReplanner(ReplanConfig{})
		var plans []Plan
		for epoch := 0; epoch < 4; epoch++ {
			p, _ := rp.Observe(epoch, measuredGDP())
			plans = append(plans, p)
		}
		return plans, rp.Events
	}
	wantPlans, wantEvents := run()
	for trial := 1; trial < 30; trial++ {
		plans, events := run()
		if !reflect.DeepEqual(plans, wantPlans) {
			t.Fatalf("trial %d: plan sequence %v, want %v", trial, plans, wantPlans)
		}
		if !reflect.DeepEqual(events, wantEvents) {
			t.Fatalf("trial %d: events %+v, want %+v", trial, events, wantEvents)
		}
	}
}

// TestReplannerRecoversFromMisprofiledHostReads: under the lying
// profile the planner starts on GDP (host load looks 50x cheaper than
// it is). One honest measured epoch must calibrate the host factor
// back to ~50 and switch to SNP, whose load never touches the host
// link — and the correction must not inflate SNP's cache-resident
// load estimate.
func TestReplannerRecoversFromMisprofiledHostReads(t *testing.T) {
	rp := newTestReplanner(ReplanConfig{})
	next, switched := rp.Observe(0, measuredGDP())
	if !switched || next.Kind != strategy.SNP {
		t.Fatalf("Observe = %v, switched=%v; want a switch to SNP", next, switched)
	}
	cal := rp.Calibration()
	if cal.LoadHost < 0.8*hostReadLie || cal.LoadHost > 1.2*hostReadLie {
		t.Errorf("LoadHost factor = %.2f, want ~%.0f (the injected distortion)", cal.LoadHost, hostReadLie)
	}
	if len(rp.Events) != 1 {
		t.Fatalf("%d events recorded, want 1", len(rp.Events))
	}
	if ev := rp.Events[0]; ev.PredictedGain < 0.5 {
		t.Errorf("predicted gain %.2f, want > 0.5 (GDP's real load is ~16x SNP's unique cost)", ev.PredictedGain)
	}
}

// TestReplannerCooldownBlocksImmediateSwitchBack: the epoch right
// after a switch is inside the cooldown window, so even a measured
// epoch that would re-rank the candidates cannot flap the plan.
func TestReplannerCooldownBlocksImmediateSwitchBack(t *testing.T) {
	rp := newTestReplanner(ReplanConfig{})
	if _, switched := rp.Observe(0, measuredGDP()); !switched {
		t.Fatal("setup: first epoch should have switched to SNP")
	}
	// An SNP epoch measuring nothing unusual; regardless of content,
	// cooldown must hold the plan.
	cur := rp.Current()
	next, switched := rp.Observe(1, engine.EpochStats{SampleSec: 0.01, LoadSec: 0.001, TrainSec: 0.05, ShuffleSec: 0.04})
	if switched || next != cur {
		t.Fatalf("switched to %v during cooldown; want %v held", next, cur)
	}
}

// TestReplannerHysteresisHoldsMarginalWins: with the tier split
// frozen, a candidate that is only marginally cheaper than the
// calibrated current plan must not trigger a rebuild. The measured
// load (0.065s vs the 0.02s lie) calibrates GDP to ~0.075s unique
// cost — about 5% above SNP's 0.071s, under the 15% hysteresis bar.
func TestReplannerHysteresisHoldsMarginalWins(t *testing.T) {
	rp := newTestReplanner(ReplanConfig{Int8Fracs: []float64{0}})
	measured := engine.EpochStats{SampleSec: 0.01, LoadSec: 0.065, TrainSec: 0.05}
	next, switched := rp.Observe(0, measured)
	if switched {
		t.Fatalf("switched to %v on a marginal (<15%%) predicted win", next)
	}
	// Non-vacuous: under the calibrated model SNP really is cheaper —
	// the guard, not the ranking, held the plan.
	cur, snp := rp.planCost(rp.cur), rp.planCost(Plan{Kind: strategy.SNP})
	if snp >= cur {
		t.Fatalf("calibrated SNP cost %.4f is not below current %.4f; the test exercises nothing", snp, cur)
	}
	if gain := (cur - snp) / cur; gain >= rp.cfg.MinRelGain {
		t.Fatalf("predicted gain %.2f clears the %.2f bar; fixture no longer marginal", gain, rp.cfg.MinRelGain)
	}
	if len(rp.Events) != 0 {
		t.Fatalf("%d events recorded, want none", len(rp.Events))
	}
}
