package core

import (
	"bytes"
	"context"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
)

// realResumeTask builds a small real-mode task (floats actually move,
// so bit-identity is observable in the trained parameters).
func realResumeTask(t testing.TB, devices int, pipeline bool) Task {
	t.Helper()
	spec, err := dataset.ByAbbr("FS", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	spec.FeatDim = 16
	spec.Classes = 4
	spec.HomophilyDegree = 6
	d := dataset.Build(spec, true)
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, devices)
	return Task{
		Graph:  d.Graph,
		Feats:  d.Feats,
		Labels: d.Labels,
		Seeds:  d.TrainSeeds,
		NewModel: func() *nn.Model {
			return nn.NewGraphSAGE(16, 16, 4, 2)
		},
		NewOptimizer: func() nn.Optimizer { return nn.NewAdam(0.01) },
		Sampling:     sample.Config{Fanouts: []int{8, 8}},
		BatchSize:    64,
		Platform:     p,
		CacheBytes:   d.CacheBytesFraction(0.08),
		Seed:         11,
		Pipeline:     pipeline,
	}
}

// paramChecksum is an FNV-64a digest over the exact parameter bits.
func paramChecksum(m *nn.Model) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, p := range m.Params() {
		for _, v := range p.W.Data {
			bits := math.Float32bits(v)
			b[0] = byte(bits)
			b[1] = byte(bits >> 8)
			b[2] = byte(bits >> 16)
			b[3] = byte(bits >> 24)
			h.Write(b[:])
		}
	}
	return h.Sum64()
}

// TestResumeBitIdentical pins the checkpoint contract for every core
// strategy, sync and pipelined: training E epochs straight and
// training k epochs, snapshotting, resuming in a fresh APT, and
// finishing to E must produce bit-identical parameters.
func TestResumeBitIdentical(t *testing.T) {
	const interruptAt, total = 2, 4
	for _, k := range strategy.Core {
		for _, pipeline := range []bool{false, true} {
			name := k.String()
			if pipeline {
				name += "/pipelined"
			}
			t.Run(name, func(t *testing.T) {
				// Uninterrupted baseline.
				base, err := New(realResumeTask(t, 2, pipeline))
				if err != nil {
					t.Fatal(err)
				}
				baseRes, err := base.TrainWith(k, total)
				if err != nil {
					t.Fatal(err)
				}
				want := paramChecksum(baseRes.Model)

				// Interrupted run: k epochs, rolling snapshot every epoch.
				dir := t.TempDir()
				first, err := New(realResumeTask(t, 2, pipeline))
				if err != nil {
					t.Fatal(err)
				}
				first.CheckpointDir = dir
				if _, err := first.TrainWith(k, interruptAt); err != nil {
					t.Fatal(err)
				}

				// Fresh process's view: resume from the snapshot file.
				snapPath := filepath.Join(dir, checkpoint.DefaultName)
				resumed, err := ResumeFile(realResumeTask(t, 2, pipeline), snapPath)
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Choice != k {
					t.Fatalf("resume adopted %v, snapshot was %v", resumed.Choice, k)
				}
				res, err := resumed.TrainWith(k, total)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Epochs) != total-interruptAt {
					t.Fatalf("resumed run trained %d epochs, want %d", len(res.Epochs), total-interruptAt)
				}
				if got := paramChecksum(res.Model); got != want {
					t.Fatalf("resumed params %016x != uninterrupted %016x", got, want)
				}
			})
		}
	}
}

// TestResumeAfterMidEpochKill cancels training at an arbitrary point
// mid-run (after at least one snapshot exists) and checks the
// boundary-snapshot property: wherever the kill lands, resuming from
// the last epoch-boundary snapshot finishes bit-identically to the
// uninterrupted run.
func TestResumeAfterMidEpochKill(t *testing.T) {
	const total = 4
	base, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.Train(total)
	if err != nil {
		t.Fatal(err)
	}
	want := paramChecksum(baseRes.Model)
	choice := baseRes.Choice

	dir := t.TempDir()
	snapPath := filepath.Join(dir, checkpoint.DefaultName)
	victim, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	victim.CheckpointDir = dir
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The "kill": cancellation fires as soon as the first snapshot
		// lands on disk — an arbitrary point within a later epoch.
		for {
			if _, err := os.Stat(snapPath); err == nil {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, _ = victim.TrainContext(ctx, total) // error is the cancellation
	<-done
	cancel()

	resumed, err := ResumeFile(realResumeTask(t, 2, false), snapPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Train(total)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Choice != choice {
		t.Fatalf("resumed choice %v, baseline planned %v", resumed.Choice, choice)
	}
	if got := paramChecksum(res.Model); got != want {
		t.Fatalf("post-kill resume params %016x != uninterrupted %016x", got, want)
	}
}

// TestResumeElastic restores a 2-device snapshot onto 4 devices: the
// plan and RNG cursors cannot survive the topology change, but the
// parameters, optimizer moments, and epoch counter must.
func TestResumeElastic(t *testing.T) {
	dir := t.TempDir()
	first, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	first.CheckpointDir = dir
	if _, err := first.Train(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if snap.EpochsDone != 2 {
		t.Fatalf("snapshot records %d epochs, want 2", snap.EpochsDone)
	}

	resumed, err := Resume(realResumeTask(t, 4, false), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Elastic resume re-plans on the new topology.
	if resumed.planned {
		t.Fatal("elastic resume adopted the old topology's plan")
	}
	// The restored engine must start from the snapshot's weights.
	wantModel := nn.NewGraphSAGE(16, 16, 4, 2)
	if err := wantModel.LoadParams(bytes.NewReader(snap.Model)); err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Train(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("elastic resume trained %d epochs, want 2 (4 total - 2 done)", len(res.Epochs))
	}
	if paramChecksum(res.Model) == paramChecksum(wantModel) {
		t.Fatal("model did not train after elastic resume")
	}
}

// TestResumeWarmStartsFromSnapshotParams verifies ApplyResume actually
// installs the snapshot's parameters (elastic path, before training).
func TestResumeWarmStartsFromSnapshotParams(t *testing.T) {
	first, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Train(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	wantModel := nn.NewGraphSAGE(16, 16, 4, 2)
	if err := wantModel.LoadParams(bytes.NewReader(snap.Model)); err != nil {
		t.Fatal(err)
	}

	resumed, err := Resume(realResumeTask(t, 4, false), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	choice, err := resumed.Plan()
	if err != nil {
		t.Fatal(err)
	}
	e, err := resumed.BuildEngine(choice)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.ApplyResume(e); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		if paramChecksum(e.Model(d)) != paramChecksum(wantModel) {
			t.Fatalf("device %d replica does not match snapshot params", d)
		}
	}
}

// TestResumeTotalEpochSemantics: Train's epoch count is the total for
// the experiment, so resuming at the target is a no-op.
func TestResumeTotalEpochSemantics(t *testing.T) {
	dir := t.TempDir()
	first, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	first.CheckpointDir = dir
	if _, err := first.Train(3); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeFile(realResumeTask(t, 2, false), filepath.Join(dir, checkpoint.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Train(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 0 {
		t.Fatalf("resume at the target trained %d epochs, want 0", len(res.Epochs))
	}
}

// TestResumeRejectsSeedMismatch: a snapshot cannot silently continue a
// different experiment.
func TestResumeRejectsSeedMismatch(t *testing.T) {
	first, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Train(1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := realResumeTask(t, 2, false)
	other.Seed = 999
	if _, err := Resume(other, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("accepted snapshot from a different seed")
	}
}

// TestCheckpointEveryCadence: CheckpointEvery throttles the rolling
// snapshot to every n-th boundary.
func TestCheckpointEveryCadence(t *testing.T) {
	dir := t.TempDir()
	a, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	a.CheckpointDir = dir
	a.CheckpointEvery = 2
	if _, err := a.Train(3); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.ReadFile(filepath.Join(dir, checkpoint.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	if snap.EpochsDone != 2 {
		t.Fatalf("rolling snapshot is from epoch %d, want 2 (every=2, 3 epochs run)", snap.EpochsDone)
	}
}

// TestCheckpointWithoutEngineFails: Checkpoint before any engine
// exists is a usage error, not a zero-byte snapshot.
func TestCheckpointWithoutEngineFails(t *testing.T) {
	a, err := New(testTask(t, "PS", 2, 16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err == nil {
		t.Fatal("checkpointed an APT with no engine")
	}
}

// TestAdaptiveResumeCarriesDryRunStats: a snapshot from any planned
// run carries the per-strategy dry-run stats, so TrainAdaptive on a
// resumed APT re-plans online instead of holding the recorded plan.
func TestAdaptiveResumeCarriesDryRunStats(t *testing.T) {
	dir := t.TempDir()
	first, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	first.CheckpointDir = dir
	if _, err := first.Train(2); err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeFile(realResumeTask(t, 2, false), filepath.Join(dir, checkpoint.DefaultName))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.dryRun == nil || resumed.dryRun.PerStrategy == nil {
		t.Fatal("resume did not adopt the snapshot's per-strategy dry-run stats")
	}
	if resumed.resumeReplan == nil {
		t.Fatal("resume did not adopt the snapshot's re-planner state")
	}
	res, err := resumed.TrainAdaptive(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 2 {
		t.Fatalf("adaptive resume trained %d epochs, want 2", len(res.Epochs))
	}
}

// TestAdaptiveResumeBitIdentical pins the adaptive resume contract:
// TrainAdaptive run straight to E, and the same run resumed at an
// intermediate epoch-stamped snapshot, must produce bit-identical
// parameters — which requires the resumed re-planner to make the same
// decisions, which requires the snapshot to carry the calibration,
// overlap, cooldown, and dry-run stats the interrupted planner held.
func TestAdaptiveResumeBitIdentical(t *testing.T) {
	const interruptAt, total = 2, 5
	dir := t.TempDir()
	first, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	first.CheckpointDir = dir
	// Retain every boundary so the interruptAt snapshot survives the
	// full run (the baseline and the donor are the same run).
	first.CheckpointRetain = total
	firstRes, err := first.TrainAdaptive(total)
	if err != nil {
		t.Fatal(err)
	}
	want := paramChecksum(firstRes.Model)

	snapPath := filepath.Join(dir, checkpoint.SnapshotName(interruptAt))
	resumed, err := ResumeFile(realResumeTask(t, 2, false), snapPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.TrainAdaptive(total)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != total-interruptAt {
		t.Fatalf("resumed adaptive run trained %d epochs, want %d", len(res.Epochs), total-interruptAt)
	}
	if res.Choice != firstRes.Choice {
		t.Fatalf("resumed run ended on %v, uninterrupted on %v", res.Choice, firstRes.Choice)
	}
	if got := paramChecksum(res.Model); got != want {
		t.Fatalf("resumed adaptive params %016x != uninterrupted %016x", got, want)
	}
	// The replan decisions after the interrupt point must match the
	// uninterrupted run's tail exactly.
	var tail []ReplanEvent
	for _, ev := range firstRes.Replans {
		if ev.Epoch >= interruptAt {
			tail = append(tail, ev)
		}
	}
	if len(res.Replans) != len(tail) {
		t.Fatalf("resumed run made %d switches after epoch %d, uninterrupted made %d",
			len(res.Replans), interruptAt, len(tail))
	}
	for i := range tail {
		if res.Replans[i].To != tail[i].To || res.Replans[i].Epoch != tail[i].Epoch {
			t.Fatalf("switch %d: resumed %+v != uninterrupted %+v", i, res.Replans[i], tail[i])
		}
	}
}

// TestCheckpointRetainRotation: with CheckpointRetain set, snapshots
// are epoch-stamped and pruned to the newest k — including across a
// resume, where the rotation continues from the adopted epoch base.
func TestCheckpointRetainRotation(t *testing.T) {
	dir := t.TempDir()
	stamped := func() []string {
		names, err := filepath.Glob(filepath.Join(dir, "snapshot-ep*.aptc"))
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range names {
			names[i] = filepath.Base(n)
		}
		return names
	}
	a, err := New(realResumeTask(t, 2, false))
	if err != nil {
		t.Fatal(err)
	}
	a.CheckpointDir = dir
	a.CheckpointRetain = 2
	if _, err := a.Train(3); err != nil {
		t.Fatal(err)
	}
	want := []string{checkpoint.SnapshotName(2), checkpoint.SnapshotName(3)}
	if got := stamped(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("after 3 epochs retain 2: %v, want %v", got, want)
	}

	latest, err := checkpoint.LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(latest) != checkpoint.SnapshotName(3) {
		t.Fatalf("LatestSnapshot = %s, want %s", latest, checkpoint.SnapshotName(3))
	}
	resumed, err := ResumeFile(realResumeTask(t, 2, false), latest)
	if err != nil {
		t.Fatal(err)
	}
	resumed.CheckpointDir = dir
	resumed.CheckpointRetain = 2
	if _, err := resumed.Train(5); err != nil {
		t.Fatal(err)
	}
	want = []string{checkpoint.SnapshotName(4), checkpoint.SnapshotName(5)}
	if got := stamped(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("after resume to 5 retain 2: %v, want %v", got, want)
	}
}
