package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/strategy"
	"repro/internal/transport"
)

// TestBuildEngineDistributedMatchesInProcess models a 2-rank job the
// way separate OS processes would run it: each rank constructs its own
// APT from the identical task, builds its engine with
// BuildEngineDistributed, and shares nothing with its peer except the
// transport. The accounting epoch is deterministic, so rank r's
// per-device counters must equal worker r's counters from a plain
// in-process run of the same task.
func TestBuildEngineDistributedMatchesInProcess(t *testing.T) {
	const world = 2
	base, err := New(testTask(t, "PS", world, 32))
	if err != nil {
		t.Fatal(err)
	}
	be, err := base.BuildEngine(strategy.SNP)
	if err != nil {
		t.Fatal(err)
	}
	baseStats := be.RunEpoch()

	tr := comm.NewChanTransport(world)
	stats := make([]engine.EpochStats, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			a, err := New(testTask(t, "PS", world, 32))
			if err != nil {
				errs[r] = err
				return
			}
			e, err := a.BuildEngineDistributed(strategy.SNP, tr, r)
			if err != nil {
				errs[r] = err
				return
			}
			stats[r] = e.RunEpoch()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < world; r++ {
		if got, want := stats[r].PerDevice[r], baseStats.PerDevice[r]; !reflect.DeepEqual(got, want) {
			t.Errorf("rank %d counters diverge from in-process worker %d:\n got  %+v\n want %+v", r, r, got, want)
		}
		// A rank process runs only its own worker; the other slots must
		// stay untouched.
		for d := 0; d < world; d++ {
			if d != r && !reflect.DeepEqual(stats[r].PerDevice[d], engine.WorkerStats{}) {
				t.Errorf("rank %d has counters for foreign worker %d", r, d)
			}
		}
	}
}

func TestBuildEngineDistributedValidation(t *testing.T) {
	a, err := New(testTask(t, "PS", 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.BuildEngineDistributed(strategy.GDP, comm.NewChanTransport(3), 0); err == nil {
		t.Error("transport world 3 accepted for a 2-device task")
	}
	if _, err := a.BuildEngineDistributed(strategy.GDP, comm.NewChanTransport(2), 5); err == nil {
		t.Error("local rank 5 accepted for world 2")
	}
}

// TestCalibrateTransport checks the measured-transport feedback path:
// after CalibrateTransport the re-planner costs collectives at the
// measured wire speed, so a drastically slower wire must raise every
// communication-bound plan cost.
func TestCalibrateTransport(t *testing.T) {
	a, err := New(testTask(t, "PS", 2, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Plan(); err != nil {
		t.Fatal(err)
	}
	devices := a.Task().Platform.NumDevices()
	cm := &CostModel{Profile: a.Profile(), Devices: devices, IncludeTrain: true}
	rp := NewReplanner(ReplanConfig{}, cm, a.DryRunStats().PerStrategy, a.DryRunStats().Freq,
		a.Task().CacheBytes, a.Task().FeatDim, devices, false, Plan{Kind: strategy.SNP})

	before := rp.planCost(Plan{Kind: strategy.SNP})

	// A measured profile as cmd/aptworker would derive it: WireStats
	// overlaid on the simulated base, here pinned to a pathologically
	// slow wire so the cost shift is unambiguous.
	slow := transport.WireStats{
		AllToAllBps: 1e3, AllGatherBps: 1e3, AllReduceBps: 1e3,
		AllToAllCallSec: 1e-3, AllGatherCallSec: 1e-3,
	}.ApplyTo(a.Profile())
	rp.CalibrateTransport(slow)
	if cm.Profile != slow {
		t.Fatal("CalibrateTransport did not swap the cost model's profile")
	}
	after := rp.planCost(Plan{Kind: strategy.SNP})
	if after <= before {
		t.Fatalf("slow wire did not raise SNP plan cost: before %v, after %v", before, after)
	}

	rp.CalibrateTransport(nil)
	if cm.Profile != slow {
		t.Error("nil profile must be a no-op, not a reset")
	}
}
