package tensor

import (
	"testing"

	"repro/internal/graph"
)

// randomCSR builds a random bipartite block with nDst destinations over
// nSrc sources, degree up to maxDeg.
func randomCSR(nDst, nSrc, maxDeg int, rng *graph.RNG) ([]int64, []int32) {
	edgePtr := make([]int64, nDst+1)
	var srcIdx []int32
	for i := 0; i < nDst; i++ {
		d := rng.Intn(maxDeg + 1)
		for j := 0; j < d; j++ {
			srcIdx = append(srcIdx, int32(rng.Intn(nSrc)))
		}
		edgePtr[i+1] = int64(len(srcIdx))
	}
	return edgePtr, srcIdx
}

// TestSegmentSumBackwardParallelMatchesSequential drives blocks large
// enough to take the parallel partial-accumulator path and compares
// against the sequential scatter. Partials merge in worker order, so
// the summation order differs from the sequential path; the documented
// tolerance is float32 reassociation error (~1e-4 relative on these
// magnitudes), not bit identity.
func TestSegmentSumBackwardParallelMatchesSequential(t *testing.T) {
	rng := graph.NewRNG(21)
	nDst, nSrc := 4*segBackwardMinDst, 300
	edgePtr, srcIdx := randomCSR(nDst, nSrc, 12, rng)
	dOut := randomMatrix(nDst, 17, rng)

	got := SegmentSumBackward(edgePtr, srcIdx, dOut, nSrc)
	want := Get(nSrc, dOut.Cols)
	segmentScatterRange(edgePtr, srcIdx, dOut, want, 0, nDst)
	if d := got.MaxAbsDiff(want); d > 1e-3 {
		t.Errorf("parallel SegmentSumBackward diff %g > 1e-3", d)
	}
	Put(got)
	Put(want)
}

func TestSegmentMeanBackwardParallelMatchesSequential(t *testing.T) {
	rng := graph.NewRNG(22)
	nDst, nSrc := 3*segBackwardMinDst, 250
	edgePtr, srcIdx := randomCSR(nDst, nSrc, 9, rng)
	dOut := randomMatrix(nDst, 8, rng)

	got := SegmentMeanBackward(edgePtr, srcIdx, dOut, nSrc)

	scaled := dOut.Clone()
	for i := 0; i < nDst; i++ {
		if d := edgePtr[i+1] - edgePtr[i]; d > 1 {
			inv := float32(1.0 / float64(d))
			row := scaled.Row(i)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	want := Get(nSrc, dOut.Cols)
	segmentScatterRange(edgePtr, srcIdx, scaled, want, 0, nDst)
	if d := got.MaxAbsDiff(want); d > 1e-3 {
		t.Errorf("parallel SegmentMeanBackward diff %g > 1e-3", d)
	}
	Put(got)
	Put(want)
}

func TestSegmentWeightedSumBackwardParallelMatchesSequential(t *testing.T) {
	rng := graph.NewRNG(23)
	nDst, nSrc := 4*segBackwardMinDst, 200
	edgePtr, srcIdx := randomCSR(nDst, nSrc, 10, rng)
	src := randomMatrix(nSrc, 11, rng)
	dOut := randomMatrix(nDst, 11, rng)
	w := make([]float32, len(srcIdx))
	for i := range w {
		w[i] = rng.NormFloat32()
	}

	gotSrc, gotW := SegmentWeightedSumBackward(edgePtr, srcIdx, w, src, dOut)
	wantSrc := Get(nSrc, src.Cols)
	wantW := make([]float32, len(w))
	segmentWeightedScatterRange(edgePtr, srcIdx, w, src, dOut, wantSrc, wantW, 0, nDst)

	if d := gotSrc.MaxAbsDiff(wantSrc); d > 1e-3 {
		t.Errorf("parallel SegmentWeightedSumBackward dSrc diff %g", d)
	}
	for e := range wantW {
		// dW entries are written by exactly one worker each — identical.
		if gotW[e] != wantW[e] {
			t.Fatalf("dW[%d] = %v, want %v (must be bit-identical)", e, gotW[e], wantW[e])
		}
	}
	Put(gotSrc)
	Put(wantSrc)
}
