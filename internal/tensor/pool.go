package tensor

import (
	"math/bits"
	"sync"
)

// Buffer pool for matrix storage. The hot training loop allocates and
// discards the same handful of shapes every mini-batch step (layer
// projections, aggregation outputs, gradient scratch); recycling them
// through size-classed sync.Pools makes the kernels allocation-free in
// steady state, which is what lets the pipelined engine run sampling
// and compute concurrently without fighting the allocator.
//
// Protocol: Get returns a zeroed matrix whose storage comes from the
// pool when available — semantically identical to New. Put recycles a
// matrix (header and backing slice); after Put the caller must not
// touch the matrix again. Put is always optional — a matrix that
// escapes to a long-lived owner is simply never recycled — and accepts
// matrices from any source (New, Get, or a kernel's return value).

// maxPoolClass bounds pooled buffers at 2^maxPoolClass float32s
// (256 MiB); larger requests bypass the pool.
const maxPoolClass = 26

// matPools[c] holds *Matrix whose Data capacity is >= 1<<c floats.
var matPools [maxPoolClass + 1]sync.Pool

// sync.Pool contents are discarded across GC cycles, and the training
// loop's own steady-state churn is enough to keep the collector
// running — so under sync.Pool alone the hot loop re-allocates its
// whole working set every couple of epochs and the "miss → allocate →
// GC → flush → miss" cycle never settles. A small strongly-referenced
// free list in front of the sync.Pools pins the hot shapes across
// collections. It is deliberately tiny: only buffers up to
// 2^strongMaxClass floats (4 MiB) with at most strongPerClass entries
// per class, bounding pinned memory at ~64 MiB worst case and far less
// in practice (only classes the workload actually uses fill up).
// Oversized or overflow traffic falls through to the sync.Pools.
const (
	strongMaxClass = 20
	strongPerClass = 8
)

var strongMats struct {
	mu   sync.Mutex
	free [strongMaxClass + 1][]*Matrix
}

// sizeClass returns the smallest c with 1<<c >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a zeroed rows x cols matrix, reusing pooled storage when
// possible. Semantically identical to New.
func Get(rows, cols int) *Matrix {
	n := rows * cols
	if n == 0 || n > 1<<maxPoolClass {
		return New(rows, cols)
	}
	c := sizeClass(n)
	var m *Matrix
	if c <= strongMaxClass {
		strongMats.mu.Lock()
		if fl := strongMats.free[c]; len(fl) > 0 {
			m = fl[len(fl)-1]
			strongMats.free[c] = fl[:len(fl)-1]
		}
		strongMats.mu.Unlock()
	}
	if m == nil {
		if v := matPools[c].Get(); v != nil {
			m = v.(*Matrix)
		}
	}
	if m != nil {
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
		return m
	}
	// Allocate at full class capacity so the buffer serves any future
	// request of this class.
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, n, 1<<c)}
}

// Put recycles m into the pool. m must not be used (by anyone) after
// Put; recycling a matrix whose storage is still shared corrupts later
// Gets. nil is ignored.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	cp := cap(m.Data)
	if cp == 0 || cp > 1<<maxPoolClass {
		return
	}
	// File under the largest class the capacity fully covers, so any
	// matrix Get pulls from class c is guaranteed to hold 2^c floats.
	c := bits.Len(uint(cp)) - 1
	m.Data = m.Data[:0]
	if c <= strongMaxClass {
		strongMats.mu.Lock()
		if len(strongMats.free[c]) < strongPerClass {
			strongMats.free[c] = append(strongMats.free[c], m)
			strongMats.mu.Unlock()
			return
		}
		strongMats.mu.Unlock()
	}
	matPools[c].Put(m)
}
