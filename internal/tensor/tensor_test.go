package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func randomMatrix(rows, cols int, rng *graph.RNG) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat32()
	}
	return m
}

// naiveMatMul is the O(n^3) reference implementation.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func matricesClose(t *testing.T, name string, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if d := got.MaxAbsDiff(want); d > tol {
		t.Errorf("%s: max abs diff %g > %g", name, d, tol)
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := graph.NewRNG(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 32, 48}, {100, 7, 3}} {
		a := randomMatrix(dims[0], dims[1], rng)
		b := randomMatrix(dims[1], dims[2], rng)
		matricesClose(t, "MatMul", MatMul(a, b), naiveMatMul(a, b), 1e-3)
	}
}

func TestMatMulTEquivalence(t *testing.T) {
	rng := graph.NewRNG(2)
	a := randomMatrix(13, 7, rng)
	b := randomMatrix(11, 7, rng)
	// a @ bT == naive(a, transpose(b))
	bt := New(b.Cols, b.Rows)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	matricesClose(t, "MatMulT", MatMulT(a, b), naiveMatMul(a, bt), 1e-3)
}

func TestTMatMulEquivalence(t *testing.T) {
	rng := graph.NewRNG(3)
	a := randomMatrix(150, 6, rng) // tall enough to trigger parallel path
	b := randomMatrix(150, 9, rng)
	at := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	matricesClose(t, "TMatMul", TMatMul(a, b), naiveMatMul(at, b), 1e-3)
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul accepted mismatched shapes")
		}
	}()
	MatMul(New(2, 3), New(4, 5))
}

func TestGatherScatterRoundTrip(t *testing.T) {
	rng := graph.NewRNG(4)
	src := randomMatrix(10, 5, rng)
	idx := []int32{3, 3, 7, 0}
	g := Gather(src, idx)
	for i, r := range idx {
		for j := 0; j < 5; j++ {
			if g.At(i, j) != src.At(int(r), j) {
				t.Fatalf("gather mismatch at %d,%d", i, j)
			}
		}
	}
	dst := New(10, 5)
	ScatterAdd(dst, idx, g)
	// Row 3 was gathered twice, so scatter doubles it.
	for j := 0; j < 5; j++ {
		if math.Abs(float64(dst.At(3, j)-2*src.At(3, j))) > 1e-6 {
			t.Errorf("scatter double-count wrong at col %d", j)
		}
		if dst.At(1, j) != 0 {
			t.Errorf("untouched row modified")
		}
	}
}

// simple block CSR: 3 destinations, 4 sources.
//
//	dst0 <- src0, src1
//	dst1 <- (empty)
//	dst2 <- src1, src2, src3
var (
	tEdgePtr = []int64{0, 2, 2, 5}
	tSrcIdx  = []int32{0, 1, 1, 2, 3}
)

func TestSegmentSumAndMean(t *testing.T) {
	src := FromData(4, 2, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	sum := SegmentSum(tEdgePtr, tSrcIdx, src)
	want := FromData(3, 2, []float32{4, 6, 0, 0, 15, 18})
	matricesClose(t, "SegmentSum", sum, want, 1e-6)

	mean := SegmentMean(tEdgePtr, tSrcIdx, src)
	wantMean := FromData(3, 2, []float32{2, 3, 0, 0, 5, 6})
	matricesClose(t, "SegmentMean", mean, wantMean, 1e-6)
}

func TestSegmentSumBackwardMatchesNumerical(t *testing.T) {
	rng := graph.NewRNG(5)
	src := randomMatrix(4, 3, rng)
	dOut := randomMatrix(3, 3, rng)
	dSrc := SegmentSumBackward(tEdgePtr, tSrcIdx, dOut, 4)
	// Numerical check: d/dsrc[r][c] of <out, dOut> equals dSrc[r][c].
	const eps = 1e-3
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			orig := src.At(r, c)
			src.Set(r, c, orig+eps)
			up := inner(SegmentSum(tEdgePtr, tSrcIdx, src), dOut)
			src.Set(r, c, orig-eps)
			down := inner(SegmentSum(tEdgePtr, tSrcIdx, src), dOut)
			src.Set(r, c, orig)
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(dSrc.At(r, c))) > 1e-2 {
				t.Errorf("dSrc[%d][%d] = %v, numerical %v", r, c, dSrc.At(r, c), num)
			}
		}
	}
}

func TestSegmentMeanBackwardMatchesNumerical(t *testing.T) {
	rng := graph.NewRNG(6)
	src := randomMatrix(4, 2, rng)
	dOut := randomMatrix(3, 2, rng)
	dSrc := SegmentMeanBackward(tEdgePtr, tSrcIdx, dOut, 4)
	const eps = 1e-3
	for r := 0; r < 4; r++ {
		for c := 0; c < 2; c++ {
			orig := src.At(r, c)
			src.Set(r, c, orig+eps)
			up := inner(SegmentMean(tEdgePtr, tSrcIdx, src), dOut)
			src.Set(r, c, orig-eps)
			down := inner(SegmentMean(tEdgePtr, tSrcIdx, src), dOut)
			src.Set(r, c, orig)
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(dSrc.At(r, c))) > 1e-2 {
				t.Errorf("dSrc[%d][%d] = %v, numerical %v", r, c, dSrc.At(r, c), num)
			}
		}
	}
}

func inner(a, b *Matrix) float64 {
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s
}

func TestSegmentSoftmaxNormalizes(t *testing.T) {
	scores := []float32{1, 2, 0.5, -1, 3}
	p := SegmentSoftmax(tEdgePtr, scores)
	for i := 0; i+1 < len(tEdgePtr); i++ {
		lo, hi := tEdgePtr[i], tEdgePtr[i+1]
		if lo == hi {
			continue
		}
		var sum float64
		for e := lo; e < hi; e++ {
			if p[e] < 0 || p[e] > 1 {
				t.Errorf("prob out of range: %v", p[e])
			}
			sum += float64(p[e])
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("segment %d probs sum to %v", i, sum)
		}
	}
}

func TestSegmentSoftmaxStability(t *testing.T) {
	scores := []float32{1000, 1001, 0, 0, 0}
	p := SegmentSoftmax(tEdgePtr, scores)
	for _, v := range p {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax produced %v on large inputs", v)
		}
	}
}

func TestSegmentSoftmaxBackwardNumerical(t *testing.T) {
	scores := []float32{0.3, -0.7, 1.2, 0.1, -0.2}
	dOut := []float32{1, -2, 0.5, 3, -1}
	probs := SegmentSoftmax(tEdgePtr, scores)
	dScores := SegmentSoftmaxBackward(tEdgePtr, probs, dOut)
	const eps = 1e-3
	for e := range scores {
		orig := scores[e]
		scores[e] = orig + eps
		up := sdot(SegmentSoftmax(tEdgePtr, scores), dOut)
		scores[e] = orig - eps
		down := sdot(SegmentSoftmax(tEdgePtr, scores), dOut)
		scores[e] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(dScores[e])) > 1e-2 {
			t.Errorf("dScores[%d] = %v, numerical %v", e, dScores[e], num)
		}
	}
}

func sdot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func TestSegmentWeightedSumBackwardNumerical(t *testing.T) {
	rng := graph.NewRNG(7)
	src := randomMatrix(4, 2, rng)
	w := []float32{0.5, -1, 2, 0.1, 1.5}
	dOut := randomMatrix(3, 2, rng)
	dSrc, dW := SegmentWeightedSumBackward(tEdgePtr, tSrcIdx, w, src, dOut)
	const eps = 1e-3
	for e := range w {
		orig := w[e]
		w[e] = orig + eps
		up := inner(SegmentWeightedSum(tEdgePtr, tSrcIdx, w, src), dOut)
		w[e] = orig - eps
		down := inner(SegmentWeightedSum(tEdgePtr, tSrcIdx, w, src), dOut)
		w[e] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(dW[e])) > 1e-2 {
			t.Errorf("dW[%d] = %v, numerical %v", e, dW[e], num)
		}
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 2; c++ {
			orig := src.At(r, c)
			src.Set(r, c, orig+eps)
			up := inner(SegmentWeightedSum(tEdgePtr, tSrcIdx, w, src), dOut)
			src.Set(r, c, orig-eps)
			down := inner(SegmentWeightedSum(tEdgePtr, tSrcIdx, w, src), dOut)
			src.Set(r, c, orig)
			num := (up - down) / (2 * eps)
			if math.Abs(num-float64(dSrc.At(r, c))) > 1e-2 {
				t.Errorf("dSrc[%d][%d] = %v, numerical %v", r, c, dSrc.At(r, c), num)
			}
		}
	}
}

func TestSDDMMAdd(t *testing.T) {
	dstVal := []float32{10, 20, 30}
	srcVal := []float32{1, 2, 3, 4}
	s := SDDMMAdd(tEdgePtr, tSrcIdx, dstVal, srcVal)
	want := []float32{11, 12, 32, 33, 34}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("score[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

func TestReLUAndBackward(t *testing.T) {
	x := FromData(1, 4, []float32{-1, 0, 2, -3})
	y := ReLU(x)
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("ReLU[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
	d := ReLUBackward(y, FromData(1, 4, []float32{5, 5, 5, 5}))
	wantD := []float32{0, 0, 5, 0}
	for i := range wantD {
		if d.Data[i] != wantD[i] {
			t.Errorf("dReLU[%d] = %v, want %v", i, d.Data[i], wantD[i])
		}
	}
}

func TestLeakyReLU(t *testing.T) {
	x := []float32{-2, 3}
	y := LeakyReLUSlice(x, 0.2)
	if y[0] != -0.4 || y[1] != 3 {
		t.Errorf("LeakyReLU = %v", y)
	}
	d := LeakyReLUSliceBackward(x, []float32{1, 1}, 0.2)
	if d[0] != 0.2 || d[1] != 1 {
		t.Errorf("LeakyReLU backward = %v", d)
	}
}

func TestMatMulLinearityProperty(t *testing.T) {
	rng := graph.NewRNG(8)
	f := func(seed uint64) bool {
		r := graph.NewRNG(seed)
		a := randomMatrix(6, 4, r)
		b := randomMatrix(4, 5, r)
		c := randomMatrix(4, 5, r)
		// A(B+C) == AB + AC
		bc := b.Clone()
		bc.AddInPlace(c)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.AddInPlace(MatMul(a, c))
		return left.MaxAbsDiff(right) < 1e-4
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := FromData(2, 2, []float32{1, 2, 3, 4})
	if m.Bytes() != 16 {
		t.Errorf("Bytes = %d, want 16", m.Bytes())
	}
	c := m.Clone()
	c.ScaleInPlace(2)
	if m.At(0, 0) != 1 || c.At(0, 0) != 2 {
		t.Error("Clone aliases original")
	}
	c.SubInPlace(m)
	if c.MaxAbsDiff(m) > 1e-6 {
		t.Error("2m - m != m")
	}
	m.AXPY(3, c)
	if m.At(1, 1) != 16 {
		t.Errorf("AXPY result %v, want 16", m.At(1, 1))
	}
	m.Zero()
	if m.FrobeniusNorm() != 0 {
		t.Error("Zero left nonzero norm")
	}
}
