package tensor

import (
	"testing"

	"repro/internal/graph"
)

// Kernel micro-benchmarks backing BENCH_kernels.json (`make
// bench-kernels`). Shapes mirror the real-mode training hot path: a
// few thousand gathered source rows, feature dims in the dozens to low
// hundreds, and power-law segment structure from neighbor sampling.
//
// The *Unfused / *ThenMatMul variants reproduce the compositions the
// fused kernels replaced, so each pair measures one fusion in
// isolation. The Dense/Sparse MatMul pair justifies the per-row
// zero-skip branch: post-ReLU activations (the dominant MatMul input
// above layer 0) are typically 40–60% zero.

const (
	benchRows = 4096 // gathered source rows per mini-batch
	benchIn   = 64   // input feature dim
	benchOut  = 64   // hidden dim
	benchSrcN = 20000
)

func benchRandMat(rng *graph.RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat32()
	}
	return m
}

// benchSegments builds a sampled-neighborhood CSR: nDst segments of
// `deg` edges each, sources drawn from [0, nSrc).
func benchSegments(nDst, deg, nSrc int, rng *graph.RNG) ([]int64, []int32) {
	edgePtr := make([]int64, nDst+1)
	srcIdx := make([]int32, nDst*deg)
	for i := 0; i < nDst; i++ {
		edgePtr[i+1] = edgePtr[i] + int64(deg)
		for e := 0; e < deg; e++ {
			srcIdx[i*deg+e] = int32(rng.Intn(nSrc))
		}
	}
	return edgePtr, srcIdx
}

func benchIdx(n, srcN int, rng *graph.RNG) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(rng.Intn(srcN))
	}
	return idx
}

// --- tiled GEMM: dense vs zero-skip ---

func benchMatMul(b *testing.B, zeroFrac float64) {
	rng := graph.NewRNG(1)
	a := benchRandMat(rng, benchRows, benchIn)
	w := benchRandMat(rng, benchIn, benchOut)
	if zeroFrac > 0 {
		sparsify(a, zeroFrac, rng)
	}
	b.SetBytes(int64(benchRows * benchIn * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MatMul(a, w)
		Put(m)
	}
}

func BenchmarkMatMulDense(b *testing.B) { benchMatMul(b, 0) }

// BenchmarkMatMulSparse50 measures the zero-skip branch on a post-ReLU
// sparsity level; the speedup over Dense is what justifies the per-row
// sparsity check in the kernel.
func BenchmarkMatMulSparse50(b *testing.B) { benchMatMul(b, 0.5) }
func BenchmarkMatMulSparse75(b *testing.B) { benchMatMul(b, 0.75) }
func BenchmarkMatMulSparse90(b *testing.B) { benchMatMul(b, 0.9) }

// BenchmarkMatMulPackedWide exercises the packed-B panel path: enough
// rows to amortize packing and a wide-enough N to need column tiles.
func BenchmarkMatMulPackedWide(b *testing.B) {
	rng := graph.NewRNG(2)
	a := benchRandMat(rng, benchRows, 128)
	w := benchRandMat(rng, 128, 256)
	b.SetBytes(int64(benchRows * 128 * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MatMul(a, w)
		Put(m)
	}
}

// --- fused bias+ReLU epilogue ---

func BenchmarkMatMulBiasReLU(b *testing.B) {
	rng := graph.NewRNG(3)
	a := benchRandMat(rng, benchRows, benchIn)
	w := benchRandMat(rng, benchIn, benchOut)
	bias := make([]float32, benchOut)
	for i := range bias {
		bias[i] = rng.NormFloat32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MatMulBiasReLU(a, w, bias)
		Put(m)
	}
}

// BenchmarkMatMulBiasReLUUnfused is the composition the epilogue
// replaced: GEMM, then a second pass adding the bias, then a third
// pass for the activation (into a separate matrix, as the old layer
// code did).
func BenchmarkMatMulBiasReLUUnfused(b *testing.B) {
	rng := graph.NewRNG(3)
	a := benchRandMat(rng, benchRows, benchIn)
	w := benchRandMat(rng, benchIn, benchOut)
	bias := make([]float32, benchOut)
	for i := range bias {
		bias[i] = rng.NormFloat32()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MatMul(a, w)
		for r := 0; r < m.Rows; r++ {
			row := m.Row(r)
			for j := range row {
				row[j] += bias[j]
			}
		}
		out := ReLU(m)
		Put(m)
		Put(out)
	}
}

// --- gather-fused projection ---

func BenchmarkGatherMatMul(b *testing.B) {
	rng := graph.NewRNG(4)
	feats := benchRandMat(rng, benchSrcN, benchIn)
	idx := benchIdx(benchRows, benchSrcN, rng)
	w := benchRandMat(rng, benchIn, benchOut)
	b.SetBytes(int64(benchRows * benchIn * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := GatherMatMul(feats, idx, w)
		Put(m)
	}
}

// BenchmarkGatherThenMatMul is the old hot path: materialize the
// gathered rows, then multiply the copy.
func BenchmarkGatherThenMatMul(b *testing.B) {
	rng := graph.NewRNG(4)
	feats := benchRandMat(rng, benchSrcN, benchIn)
	idx := benchIdx(benchRows, benchSrcN, rng)
	w := benchRandMat(rng, benchIn, benchOut)
	b.SetBytes(int64(benchRows * benchIn * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := Gather(feats, idx)
		m := MatMul(x, w)
		Put(x)
		Put(m)
	}
}

// --- int8 warm-tier variants (dequant fused into the gather) ---

// benchFeatSource admits every other row of feats into an int8 warm
// tier, mirroring a half-warm tiered cache: the kernels see the worst
// case for tier dispatch (fp32/int8 alternating per gathered row).
func benchFeatSource(feats *Matrix) FeatSource {
	q := NewQuant(feats.Rows, feats.Cols)
	mask := make([]uint64, (feats.Rows+63)/64)
	for r := 0; r < feats.Rows; r += 2 {
		q.QuantizeRow(r, feats.Row(r))
		mask[r>>6] |= 1 << (uint(r) & 63)
	}
	return FeatSource{F: feats, Q: q, QMask: mask}
}

// BenchmarkGatherMatMulQuant is BenchmarkGatherMatMul over a half-warm
// tiered source: the dequant cost rides inside the gather-GEMM rather
// than a separate materialization pass. Must stay 0 allocs/op (the
// dequant scratch is pooled).
func BenchmarkGatherMatMulQuant(b *testing.B) {
	rng := graph.NewRNG(4)
	feats := benchRandMat(rng, benchSrcN, benchIn)
	src := benchFeatSource(feats)
	idx := benchIdx(benchRows, benchSrcN, rng)
	w := benchRandMat(rng, benchIn, benchOut)
	b.SetBytes(int64(benchRows * benchIn * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := GatherMatMulSrc(src, idx, w)
		Put(m)
	}
}

// BenchmarkGatherTMatMulAccQuant is the layer-0 weight gradient read
// through the tiered source.
func BenchmarkGatherTMatMulAccQuant(b *testing.B) {
	rng := graph.NewRNG(5)
	feats := benchRandMat(rng, benchSrcN, benchIn)
	src := benchFeatSource(feats)
	idx := benchIdx(benchRows, benchSrcN, rng)
	dz := benchRandMat(rng, benchRows, benchOut)
	sparsify(dz, 0.5, rng)
	dst := New(benchIn, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherTMatMulAccSrc(dst, src, idx, dz)
	}
}

// BenchmarkSegmentAggFusedQuant aggregates neighbor rows straight out
// of the tiered source, dequantizing int8 rows edge by edge.
func BenchmarkSegmentAggFusedQuant(b *testing.B) {
	rng := graph.NewRNG(6)
	edgePtr, srcIdx := benchSegments(512, 10, benchRows, rng)
	z := benchRandMat(rng, benchRows, benchOut)
	src := benchFeatSource(z)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := SegmentAggFusedSrc(edgePtr, srcIdx, src, true, true)
		Put(m)
	}
}

// --- transposed gradient accumulation ---

func BenchmarkTMatMulAcc(b *testing.B) {
	rng := graph.NewRNG(5)
	a := benchRandMat(rng, benchRows, benchIn)
	dz := benchRandMat(rng, benchRows, benchOut)
	sparsify(dz, 0.5, rng) // ReLU-masked gradients
	dst := New(benchIn, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TMatMulAcc(dst, a, dz)
	}
}

func BenchmarkGatherTMatMulAcc(b *testing.B) {
	rng := graph.NewRNG(5)
	feats := benchRandMat(rng, benchSrcN, benchIn)
	idx := benchIdx(benchRows, benchSrcN, rng)
	dz := benchRandMat(rng, benchRows, benchOut)
	sparsify(dz, 0.5, rng)
	dst := New(benchIn, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherTMatMulAcc(dst, feats, idx, dz)
	}
}

// --- fused segment aggregation (mean + ReLU in one pass) ---

func BenchmarkSegmentAggFused(b *testing.B) {
	rng := graph.NewRNG(6)
	edgePtr, srcIdx := benchSegments(512, 10, benchRows, rng)
	z := benchRandMat(rng, benchRows, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := SegmentAggFused(edgePtr, srcIdx, z, true, true)
		Put(m)
	}
}

// BenchmarkSegmentAggUnfused is the replaced composition: segment mean
// into one matrix, activation into a second.
func BenchmarkSegmentAggUnfused(b *testing.B) {
	rng := graph.NewRNG(6)
	edgePtr, srcIdx := benchSegments(512, 10, benchRows, rng)
	z := benchRandMat(rng, benchRows, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := SegmentMean(edgePtr, srcIdx, z)
		out := ReLU(s)
		Put(s)
		Put(out)
	}
}

func BenchmarkSegmentAggFusedBackward(b *testing.B) {
	rng := graph.NewRNG(7)
	edgePtr, srcIdx := benchSegments(512, 10, benchRows, rng)
	z := benchRandMat(rng, benchRows, benchOut)
	out := SegmentAggFused(edgePtr, srcIdx, z, true, true)
	dOut := benchRandMat(rng, 512, benchOut)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dz := SegmentAggFusedBackward(edgePtr, srcIdx, out, dOut, true, true, benchRows)
		Put(dz)
	}
}
