package tensor

import (
	"runtime"
	"sync"
)

// Gather- and epilogue-fused segment kernels. These collapse the
// unfused chains the layers used to run as separate full passes —
// SegmentSum/Mean → normalize → activation clone on the forward, and
// ReLU mask → mean scale → scatter on the backward — into one pass per
// output row while it is cache-hot. Per output element the edge terms
// still accumulate in increasing edge order with a single accumulator,
// and the normalization/activation apply only after a row's sum is
// complete, so results are bit-identical to the unfused composition.

// GatherInto copies rows idx of src into the leading len(idx) rows of
// dst — the in-place form of Gather for preallocated destinations.
//
//apt:hotpath
func GatherInto(dst, src *Matrix, idx []int32) {
	if dst.Cols != src.Cols {
		panic("tensor: GatherInto column mismatch")
	}
	if dst.Rows < len(idx) {
		panic("tensor: GatherInto destination too small")
	}
	for i, r := range idx {
		copy(dst.Row(i), src.Row(int(r)))
	}
}

// ReLUInPlace applies max(0, x) elementwise in place. Negative zero and
// NaN map to +0, matching ReLU's zero-initialized copy semantics.
//
//apt:hotpath
func ReLUInPlace(x *Matrix) {
	for i, v := range x.Data {
		if !(v > 0) {
			x.Data[i] = 0
		}
	}
}

// SegmentAggFused computes, in one pass per destination row,
//
//	out[i] = act(norm(Σ_{e in segment i} src[srcIdx[e]]))
//
// where norm divides by the segment degree when mean is set (empty and
// single-edge segments are untouched, matching SegmentMean) and act is
// ReLU when relu is set. This is the SpMM forward with the aggregator
// epilogue fused: the sum completes before the epilogue touches the
// row, so the result is bit-identical to
// ReLU(SegmentMean(...)) / ReLU(SegmentSum(...)).
//
//apt:hotpath
func SegmentAggFused(edgePtr []int64, srcIdx []int32, src *Matrix, mean, relu bool) *Matrix {
	nDst := len(edgePtr) - 1
	out := Get(nDst, src.Cols)
	if runtime.GOMAXPROCS(0) == 1 || nDst < 128 {
		segmentAggRange(edgePtr, srcIdx, src, out, mean, relu, 0, nDst)
		return out
	}
	//apt:allow hotalloc parallel fan-out body; the steady-state bench path is the sequential branch above
	parallelRows(nDst, 64, func(lo, hi int) {
		segmentAggRange(edgePtr, srcIdx, src, out, mean, relu, lo, hi)
	})
	return out
}

// segmentAggRange is the fused aggregation's per-row inner loop. Edges
// are consumed eight (then four) at a time so each pass over the output
// row fuses that many source rows — per element the adds stay
// sequential in edge order with a single accumulator, matching the
// separate edge iterations bit for bit (source rows are read-only, so
// duplicate edge endpoints cannot alias the accumulator). The mean
// scale and ReLU mask run as one fused epilogue pass: each element's
// ops (scale, then clamp) are independent across elements, so fusing
// the passes changes no bit.
//
//apt:hotpath
func segmentAggRange(edgePtr []int64, srcIdx []int32, src, out *Matrix, mean, relu bool, lo, hi int) {
	sd, sc := src.Data, src.Cols
	for i := lo; i < hi; i++ {
		or := out.Row(i)
		n := len(or)
		e, e1 := edgePtr[i], edgePtr[i+1]
		for ; e+7 < e1; e += 8 {
			p0 := int(srcIdx[e]) * sc
			p1 := int(srcIdx[e+1]) * sc
			p2 := int(srcIdx[e+2]) * sc
			p3 := int(srcIdx[e+3]) * sc
			p4 := int(srcIdx[e+4]) * sc
			p5 := int(srcIdx[e+5]) * sc
			p6 := int(srcIdx[e+6]) * sc
			p7 := int(srcIdx[e+7]) * sc
			sr0 := sd[p0 : p0+n]
			sr1 := sd[p1 : p1+n]
			sr2 := sd[p2 : p2+n]
			sr3 := sd[p3 : p3+n]
			sr4 := sd[p4 : p4+n]
			sr5 := sd[p5 : p5+n]
			sr6 := sd[p6 : p6+n]
			sr7 := sd[p7 : p7+n]
			for j := range or {
				s := or[j]
				s += sr0[j]
				s += sr1[j]
				s += sr2[j]
				s += sr3[j]
				s += sr4[j]
				s += sr5[j]
				s += sr6[j]
				s += sr7[j]
				or[j] = s
			}
		}
		for ; e+3 < e1; e += 4 {
			p0 := int(srcIdx[e]) * sc
			p1 := int(srcIdx[e+1]) * sc
			p2 := int(srcIdx[e+2]) * sc
			p3 := int(srcIdx[e+3]) * sc
			sr0 := sd[p0 : p0+n]
			sr1 := sd[p1 : p1+n]
			sr2 := sd[p2 : p2+n]
			sr3 := sd[p3 : p3+n]
			for j := range or {
				s := or[j]
				s += sr0[j]
				s += sr1[j]
				s += sr2[j]
				s += sr3[j]
				or[j] = s
			}
		}
		for ; e < e1; e++ {
			p := int(srcIdx[e]) * sc
			sr := sd[p : p+n]
			for j := range or {
				or[j] += sr[j]
			}
		}
		d := edgePtr[i+1] - edgePtr[i]
		switch {
		case mean && d > 1 && relu:
			inv := float32(1.0 / float64(d))
			for j := range or {
				v := or[j] * inv
				if !(v > 0) {
					v = 0
				}
				or[j] = v
			}
		case mean && d > 1:
			inv := float32(1.0 / float64(d))
			for j := range or {
				or[j] *= inv
			}
		case relu:
			for j := range or {
				if !(or[j] > 0) {
					or[j] = 0
				}
			}
		}
	}
}

// segmentAggScatterRange scatters destinations [lo, hi) of the fused
// aggregation backward into dSrc. g is a cols-wide scratch row holding
// the masked+scaled destination gradient, so the mask/scale work is
// done once per destination rather than once per edge.
//
//apt:hotpath
func segmentAggScatterRange(edgePtr []int64, srcIdx []int32, out, dOut, dSrc *Matrix, g []float32, mean, relu bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		e0, e1 := edgePtr[i], edgePtr[i+1]
		if e0 == e1 {
			continue
		}
		dr := dOut.Row(i)
		gr := g[:len(dr)]
		if relu {
			or := out.Row(i)[:len(dr)]
			for j := range gr {
				if or[j] > 0 {
					gr[j] = dr[j]
				} else {
					gr[j] = 0
				}
			}
		} else {
			copy(gr, dr)
		}
		if mean {
			if d := e1 - e0; d > 1 {
				inv := float32(1.0 / float64(d))
				for j := range gr {
					gr[j] *= inv
				}
			}
		}
		// Scatter gr into the source rows four (then two) edges at a
		// time: one load of gr[j] feeds all stores. Distinct rows touch
		// disjoint memory; quads with a duplicated endpoint fall back to
		// the pair logic, and a duplicated pair keeps its two adds
		// sequential ((x+g)+g), matching the unpaired loop bit for bit.
		dd, dc := dSrc.Data, dSrc.Cols
		n := len(gr)
		e := e0
		for ; e+3 < e1; e += 4 {
			r0, r1 := int(srcIdx[e]), int(srcIdx[e+1])
			r2, r3 := int(srcIdx[e+2]), int(srcIdx[e+3])
			if r0 == r1 || r0 == r2 || r0 == r3 || r1 == r2 || r1 == r3 || r2 == r3 {
				break
			}
			sr0 := dd[r0*dc : r0*dc+n]
			sr1 := dd[r1*dc : r1*dc+n]
			sr2 := dd[r2*dc : r2*dc+n]
			sr3 := dd[r3*dc : r3*dc+n]
			for j := range gr {
				g := gr[j]
				sr0[j] += g
				sr1[j] += g
				sr2[j] += g
				sr3[j] += g
			}
		}
		for ; e+1 < e1; e += 2 {
			r0, r1 := int(srcIdx[e]), int(srcIdx[e+1])
			if r0 == r1 {
				sr := dd[r0*dc : r0*dc+n]
				for j := range gr {
					s := sr[j]
					s += gr[j]
					s += gr[j]
					sr[j] = s
				}
				continue
			}
			sr0 := dd[r0*dc : r0*dc+n]
			sr1 := dd[r1*dc : r1*dc+n]
			for j := range gr {
				g := gr[j]
				sr0[j] += g
				sr1[j] += g
			}
		}
		for ; e < e1; e++ {
			r := int(srcIdx[e])
			sr := dd[r*dc : r*dc+n]
			for j := range gr {
				sr[j] += gr[j]
			}
		}
	}
}

// SegmentAggFusedBackward is the backward of SegmentAggFused: it masks
// dOut by the forward output's support (relu), scales by the inverse
// degree (mean), and scatters to source rows — one fused pass instead
// of ReLUBackward + SegmentMeanBackward's two intermediate matrices.
// out is the fused forward's output (only read when relu is set; may be
// nil otherwise). Parallelizes like SegmentSumBackward: per-worker
// partial matrices over destination ranges, merged in worker order.
//
//apt:hotpath
func SegmentAggFusedBackward(edgePtr []int64, srcIdx []int32, out, dOut *Matrix, mean, relu bool, nSrc int) *Matrix {
	dSrc := Get(nSrc, dOut.Cols)
	nDst := dOut.Rows
	workers := scatterWorkers(nDst)
	if nDst < segBackwardMinDst || workers <= 1 {
		g := Get(1, dOut.Cols)
		segmentAggScatterRange(edgePtr, srcIdx, out, dOut, dSrc, g.Data, mean, relu, 0, nDst)
		Put(g)
		return dSrc
	}
	//apt:allow hotalloc per-worker partials on the parallel fan-out; the steady-state bench path is the sequential branch above
	partials := make([]*Matrix, workers)
	var wg sync.WaitGroup
	chunk := (nDst + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= nDst {
			break
		}
		hi := lo + chunk
		if hi > nDst {
			hi = nDst
		}
		partials[w] = Get(nSrc, dOut.Cols)
		wg.Add(1)
		//apt:allow hotalloc parallel fan-out goroutines; see the partials allow above
		go func(w, lo, hi int) {
			defer wg.Done()
			g := Get(1, dOut.Cols)
			segmentAggScatterRange(edgePtr, srcIdx, out, dOut, partials[w], g.Data, mean, relu, lo, hi)
			Put(g)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p != nil {
			dSrc.AddInPlace(p)
			Put(p)
		}
	}
	return dSrc
}
