package tensor

import (
	"math"
	"runtime"
	"sync"
)

// Segment kernels operate on a CSR edge structure (edgePtr over
// destinations, srcIdx into the source-row matrix) — the dense-sparse
// products of the paper's Figure 5 tensor abstraction.

// SegmentSum computes out[i] = Σ_{e in segment i} src[srcIdx[e]] — the
// SpMM forward with sum aggregation. The result is pool-backed (see
// Get/Put).
func SegmentSum(edgePtr []int64, srcIdx []int32, src *Matrix) *Matrix {
	nDst := len(edgePtr) - 1
	out := Get(nDst, src.Cols)
	parallelRows(nDst, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
				sr := src.Row(int(srcIdx[e]))
				for j := range or {
					or[j] += sr[j]
				}
			}
		}
	})
	return out
}

// segBackwardMinDst is the destination count below which the scatter
// backwards run sequentially (per-worker partial matrices are not
// worth their zeroing/merging cost on small blocks).
const segBackwardMinDst = 256

// segmentScatterRange accumulates dOut rows [lo, hi) into dSrc.
//
//apt:hotpath
func segmentScatterRange(edgePtr []int64, srcIdx []int32, dOut, dSrc *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		dr := dOut.Row(i)
		for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
			sr := dSrc.Row(int(srcIdx[e]))
			for j := range dr {
				sr[j] += dr[j]
			}
		}
	}
}

// scatterWorkers picks the worker count for a parallel scatter over
// nDst destinations into nSrc x cols partial accumulators, bounding the
// zero+merge overhead relative to the scatter work itself.
func scatterWorkers(nDst int) int {
	workers := runtime.GOMAXPROCS(0)
	if w := nDst / (segBackwardMinDst / 4); w < workers {
		workers = w
	}
	return workers
}

// SegmentSumBackward scatters dOut back to source rows:
// dSrc[srcIdx[e]] += dOut[i] for each edge e of destination i.
//
// Multiple destinations may share a source row, so a naive parallel
// scatter would race; large blocks instead scatter into per-worker
// partial matrices merged in worker order (the TMatMul scheme). The
// result is deterministic for a fixed GOMAXPROCS but sums in a
// different order than the sequential path (float32 reassociation on
// the order of the usual 1e-6 relative error).
func SegmentSumBackward(edgePtr []int64, srcIdx []int32, dOut *Matrix, nSrc int) *Matrix {
	dSrc := Get(nSrc, dOut.Cols)
	nDst := dOut.Rows
	workers := scatterWorkers(nDst)
	if nDst < segBackwardMinDst || workers <= 1 {
		segmentScatterRange(edgePtr, srcIdx, dOut, dSrc, 0, nDst)
		return dSrc
	}
	partials := make([]*Matrix, workers)
	var wg sync.WaitGroup
	chunk := (nDst + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= nDst {
			break
		}
		hi := lo + chunk
		if hi > nDst {
			hi = nDst
		}
		partials[w] = Get(nSrc, dOut.Cols)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			segmentScatterRange(edgePtr, srcIdx, dOut, partials[w], lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p != nil {
			dSrc.AddInPlace(p)
			Put(p)
		}
	}
	return dSrc
}

// SegmentMean computes out[i] = mean over segment i (zero for empty
// segments) — GraphSAGE's mean aggregation.
func SegmentMean(edgePtr []int64, srcIdx []int32, src *Matrix) *Matrix {
	out := SegmentSum(edgePtr, srcIdx, src)
	for i := 0; i < out.Rows; i++ {
		d := edgePtr[i+1] - edgePtr[i]
		if d > 1 {
			inv := float32(1.0 / float64(d))
			or := out.Row(i)
			for j := range or {
				or[j] *= inv
			}
		}
	}
	return out
}

// SegmentMeanBackward is the backward of SegmentMean. It parallelizes
// like SegmentSumBackward (same determinism caveat).
func SegmentMeanBackward(edgePtr []int64, srcIdx []int32, dOut *Matrix, nSrc int) *Matrix {
	scaled := Get(dOut.Rows, dOut.Cols)
	copy(scaled.Data, dOut.Data)
	for i := 0; i < scaled.Rows; i++ {
		d := edgePtr[i+1] - edgePtr[i]
		if d > 1 {
			inv := float32(1.0 / float64(d))
			sr := scaled.Row(i)
			for j := range sr {
				sr[j] *= inv
			}
		}
	}
	dSrc := SegmentSumBackward(edgePtr, srcIdx, scaled, nSrc)
	Put(scaled)
	return dSrc
}

// SegmentWeightedSum computes out[i] = Σ_e w[e] * src[srcIdx[e]] — the
// attention-weighted aggregation of GAT.
func SegmentWeightedSum(edgePtr []int64, srcIdx []int32, w []float32, src *Matrix) *Matrix {
	nDst := len(edgePtr) - 1
	out := Get(nDst, src.Cols)
	parallelRows(nDst, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
				sr := src.Row(int(srcIdx[e]))
				we := w[e]
				for j := range or {
					or[j] += we * sr[j]
				}
			}
		}
	})
	return out
}

// segmentWeightedScatterRange accumulates destinations [lo, hi) of the
// weighted-sum backward into dSrc and writes their edge gradients into
// dW (each edge belongs to exactly one destination, so concurrent
// ranges write disjoint dW entries).
//
//apt:hotpath
func segmentWeightedScatterRange(edgePtr []int64, srcIdx []int32, w []float32, src, dOut, dSrc *Matrix, dW []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		dr := dOut.Row(i)
		for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
			si := int(srcIdx[e])
			sr := src.Row(si)
			ds := dSrc.Row(si)
			we := w[e]
			var dot float32
			for j := range dr {
				ds[j] += we * dr[j]
				dot += sr[j] * dr[j]
			}
			dW[e] = dot
		}
	}
}

// SegmentWeightedSumBackward returns (dSrc, dW) for SegmentWeightedSum.
// Large blocks parallelize over destination ranges with per-worker
// partial dSrc matrices merged in worker order (same determinism
// caveat as SegmentSumBackward); dW rows are disjoint per destination
// and are written in place by every worker.
func SegmentWeightedSumBackward(edgePtr []int64, srcIdx []int32, w []float32, src, dOut *Matrix) (*Matrix, []float32) {
	dSrc := Get(src.Rows, src.Cols)
	dW := make([]float32, len(w))
	nDst := dOut.Rows
	workers := scatterWorkers(nDst)
	if nDst < segBackwardMinDst || workers <= 1 {
		segmentWeightedScatterRange(edgePtr, srcIdx, w, src, dOut, dSrc, dW, 0, nDst)
		return dSrc, dW
	}
	partials := make([]*Matrix, workers)
	var wg sync.WaitGroup
	chunk := (nDst + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		if lo >= nDst {
			break
		}
		hi := lo + chunk
		if hi > nDst {
			hi = nDst
		}
		partials[wk] = Get(src.Rows, src.Cols)
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			segmentWeightedScatterRange(edgePtr, srcIdx, w, src, dOut, partials[wk], dW, lo, hi)
		}(wk, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p != nil {
			dSrc.AddInPlace(p)
			Put(p)
		}
	}
	return dSrc, dW
}

// SDDMMAdd computes per-edge scores score[e] = dstVal[i] + srcVal[srcIdx[e]]
// for each edge e of destination i — the additive attention logits of GAT
// (a_l·Wh_v + a_r·Wh_u).
func SDDMMAdd(edgePtr []int64, srcIdx []int32, dstVal, srcVal []float32) []float32 {
	out := make([]float32, edgePtr[len(edgePtr)-1])
	for i := 0; i+1 < len(edgePtr); i++ {
		dv := dstVal[i]
		for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
			out[e] = dv + srcVal[srcIdx[e]]
		}
	}
	return out
}

// SegmentSoftmax normalizes scores within each destination's segment.
// Numerically stabilized by the per-segment max.
func SegmentSoftmax(edgePtr []int64, scores []float32) []float32 {
	out := make([]float32, len(scores))
	for i := 0; i+1 < len(edgePtr); i++ {
		lo, hi := edgePtr[i], edgePtr[i+1]
		if lo == hi {
			continue
		}
		mx := scores[lo]
		for e := lo + 1; e < hi; e++ {
			if scores[e] > mx {
				mx = scores[e]
			}
		}
		var sum float64
		for e := lo; e < hi; e++ {
			v := math.Exp(float64(scores[e] - mx))
			out[e] = float32(v)
			sum += v
		}
		inv := float32(1 / sum)
		for e := lo; e < hi; e++ {
			out[e] *= inv
		}
	}
	return out
}

// SegmentSoftmaxBackward computes dScores given the softmax output and
// dOut (gradient w.r.t. the softmax probabilities):
// dScore[e] = p[e] * (dOut[e] - Σ_f p[f] dOut[f]).
func SegmentSoftmaxBackward(edgePtr []int64, probs, dOut []float32) []float32 {
	dScores := make([]float32, len(probs))
	for i := 0; i+1 < len(edgePtr); i++ {
		lo, hi := edgePtr[i], edgePtr[i+1]
		var dot float64
		for e := lo; e < hi; e++ {
			dot += float64(probs[e]) * float64(dOut[e])
		}
		for e := lo; e < hi; e++ {
			dScores[e] = probs[e] * (dOut[e] - float32(dot))
		}
	}
	return dScores
}

// ReLU applies max(0, x) elementwise, returning a new (pool-backed)
// matrix.
func ReLU(x *Matrix) *Matrix {
	out := Get(x.Rows, x.Cols)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	return out
}

// ReLUBackward masks dOut by the forward output's support.
func ReLUBackward(out, dOut *Matrix) *Matrix {
	d := Get(dOut.Rows, dOut.Cols)
	for i, v := range out.Data {
		if v > 0 {
			d.Data[i] = dOut.Data[i]
		}
	}
	return d
}

// LeakyReLUSlice applies LeakyReLU with the given negative slope to a
// score vector (GAT's activation on attention logits).
func LeakyReLUSlice(x []float32, slope float32) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		if v >= 0 {
			out[i] = v
		} else {
			out[i] = slope * v
		}
	}
	return out
}

// LeakyReLUSliceBackward masks gradients by the input sign.
func LeakyReLUSliceBackward(x, dOut []float32, slope float32) []float32 {
	d := make([]float32, len(x))
	for i, v := range x {
		if v >= 0 {
			d[i] = dOut[i]
		} else {
			d[i] = slope * dOut[i]
		}
	}
	return d
}
