package tensor

import "math"

// Segment kernels operate on a CSR edge structure (edgePtr over
// destinations, srcIdx into the source-row matrix) — the dense-sparse
// products of the paper's Figure 5 tensor abstraction.

// SegmentSum computes out[i] = Σ_{e in segment i} src[srcIdx[e]] — the
// SpMM forward with sum aggregation.
func SegmentSum(edgePtr []int64, srcIdx []int32, src *Matrix) *Matrix {
	nDst := len(edgePtr) - 1
	out := New(nDst, src.Cols)
	parallelRows(nDst, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
				sr := src.Row(int(srcIdx[e]))
				for j := range or {
					or[j] += sr[j]
				}
			}
		}
	})
	return out
}

// SegmentSumBackward scatters dOut back to source rows:
// dSrc[srcIdx[e]] += dOut[i] for each edge e of destination i.
func SegmentSumBackward(edgePtr []int64, srcIdx []int32, dOut *Matrix, nSrc int) *Matrix {
	dSrc := New(nSrc, dOut.Cols)
	// Sequential over destinations: multiple destinations may share a
	// source row, so a naive parallel scatter would race.
	for i := 0; i < dOut.Rows; i++ {
		dr := dOut.Row(i)
		for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
			sr := dSrc.Row(int(srcIdx[e]))
			for j := range dr {
				sr[j] += dr[j]
			}
		}
	}
	return dSrc
}

// SegmentMean computes out[i] = mean over segment i (zero for empty
// segments) — GraphSAGE's mean aggregation.
func SegmentMean(edgePtr []int64, srcIdx []int32, src *Matrix) *Matrix {
	out := SegmentSum(edgePtr, srcIdx, src)
	for i := 0; i < out.Rows; i++ {
		d := edgePtr[i+1] - edgePtr[i]
		if d > 1 {
			inv := float32(1.0 / float64(d))
			or := out.Row(i)
			for j := range or {
				or[j] *= inv
			}
		}
	}
	return out
}

// SegmentMeanBackward is the backward of SegmentMean.
func SegmentMeanBackward(edgePtr []int64, srcIdx []int32, dOut *Matrix, nSrc int) *Matrix {
	scaled := dOut.Clone()
	for i := 0; i < scaled.Rows; i++ {
		d := edgePtr[i+1] - edgePtr[i]
		if d > 1 {
			inv := float32(1.0 / float64(d))
			sr := scaled.Row(i)
			for j := range sr {
				sr[j] *= inv
			}
		}
	}
	return SegmentSumBackward(edgePtr, srcIdx, scaled, nSrc)
}

// SegmentWeightedSum computes out[i] = Σ_e w[e] * src[srcIdx[e]] — the
// attention-weighted aggregation of GAT.
func SegmentWeightedSum(edgePtr []int64, srcIdx []int32, w []float32, src *Matrix) *Matrix {
	nDst := len(edgePtr) - 1
	out := New(nDst, src.Cols)
	parallelRows(nDst, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.Row(i)
			for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
				sr := src.Row(int(srcIdx[e]))
				we := w[e]
				for j := range or {
					or[j] += we * sr[j]
				}
			}
		}
	})
	return out
}

// SegmentWeightedSumBackward returns (dSrc, dW) for SegmentWeightedSum.
func SegmentWeightedSumBackward(edgePtr []int64, srcIdx []int32, w []float32, src, dOut *Matrix) (*Matrix, []float32) {
	dSrc := New(src.Rows, src.Cols)
	dW := make([]float32, len(w))
	for i := 0; i < dOut.Rows; i++ {
		dr := dOut.Row(i)
		for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
			si := int(srcIdx[e])
			sr := src.Row(si)
			ds := dSrc.Row(si)
			we := w[e]
			var dot float32
			for j := range dr {
				ds[j] += we * dr[j]
				dot += sr[j] * dr[j]
			}
			dW[e] = dot
		}
	}
	return dSrc, dW
}

// SDDMMAdd computes per-edge scores score[e] = dstVal[i] + srcVal[srcIdx[e]]
// for each edge e of destination i — the additive attention logits of GAT
// (a_l·Wh_v + a_r·Wh_u).
func SDDMMAdd(edgePtr []int64, srcIdx []int32, dstVal, srcVal []float32) []float32 {
	out := make([]float32, edgePtr[len(edgePtr)-1])
	for i := 0; i+1 < len(edgePtr); i++ {
		dv := dstVal[i]
		for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
			out[e] = dv + srcVal[srcIdx[e]]
		}
	}
	return out
}

// SegmentSoftmax normalizes scores within each destination's segment.
// Numerically stabilized by the per-segment max.
func SegmentSoftmax(edgePtr []int64, scores []float32) []float32 {
	out := make([]float32, len(scores))
	for i := 0; i+1 < len(edgePtr); i++ {
		lo, hi := edgePtr[i], edgePtr[i+1]
		if lo == hi {
			continue
		}
		mx := scores[lo]
		for e := lo + 1; e < hi; e++ {
			if scores[e] > mx {
				mx = scores[e]
			}
		}
		var sum float64
		for e := lo; e < hi; e++ {
			v := math.Exp(float64(scores[e] - mx))
			out[e] = float32(v)
			sum += v
		}
		inv := float32(1 / sum)
		for e := lo; e < hi; e++ {
			out[e] *= inv
		}
	}
	return out
}

// SegmentSoftmaxBackward computes dScores given the softmax output and
// dOut (gradient w.r.t. the softmax probabilities):
// dScore[e] = p[e] * (dOut[e] - Σ_f p[f] dOut[f]).
func SegmentSoftmaxBackward(edgePtr []int64, probs, dOut []float32) []float32 {
	dScores := make([]float32, len(probs))
	for i := 0; i+1 < len(edgePtr); i++ {
		lo, hi := edgePtr[i], edgePtr[i+1]
		var dot float64
		for e := lo; e < hi; e++ {
			dot += float64(probs[e]) * float64(dOut[e])
		}
		for e := lo; e < hi; e++ {
			dScores[e] = probs[e] * (dOut[e] - float32(dot))
		}
	}
	return dScores
}

// ReLU applies max(0, x) elementwise, returning a new matrix.
func ReLU(x *Matrix) *Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// ReLUBackward masks dOut by the forward output's support.
func ReLUBackward(out, dOut *Matrix) *Matrix {
	d := dOut.Clone()
	for i, v := range out.Data {
		if v <= 0 {
			d.Data[i] = 0
		}
	}
	return d
}

// LeakyReLUSlice applies LeakyReLU with the given negative slope to a
// score vector (GAT's activation on attention logits).
func LeakyReLUSlice(x []float32, slope float32) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		if v >= 0 {
			out[i] = v
		} else {
			out[i] = slope * v
		}
	}
	return out
}

// LeakyReLUSliceBackward masks gradients by the input sign.
func LeakyReLUSliceBackward(x, dOut []float32, slope float32) []float32 {
	d := make([]float32, len(x))
	for i, v := range x {
		if v >= 0 {
			d[i] = dOut[i]
		} else {
			d[i] = slope * dOut[i]
		}
	}
	return d
}
