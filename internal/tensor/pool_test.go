package tensor

import (
	"testing"

	"repro/internal/graph"
)

func TestPoolGetReturnsZeroedMatrix(t *testing.T) {
	m := Get(7, 5)
	if m.Rows != 7 || m.Cols != 5 || len(m.Data) != 35 {
		t.Fatalf("Get(7,5) shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i := range m.Data {
		m.Data[i] = float32(i + 1)
	}
	Put(m)
	// Recycled storage must come back zeroed regardless of the dirt we
	// left in it.
	n := Get(5, 7)
	for i, v := range n.Data {
		if v != 0 {
			t.Fatalf("recycled matrix not zeroed at %d: %v", i, v)
		}
	}
	Put(n)
}

func TestPoolReusesStorageAcrossClasses(t *testing.T) {
	m := Get(16, 16) // 256 floats, exact class boundary
	p := &m.Data[0]
	Put(m)
	// A smaller request of the same class may reuse the same backing
	// array. (sync.Pool gives no hard guarantee, so only check that a
	// hit — if it happens — is well-formed.)
	n := Get(10, 20) // 200 floats -> same class (256)
	if len(n.Data) != 200 {
		t.Fatalf("Get(10,20) len %d", len(n.Data))
	}
	if &n.Data[0] == p && cap(n.Data) < 256 {
		t.Fatal("reused buffer lost its class capacity")
	}
	Put(n)
}

func TestPoolAcceptsForeignMatrices(t *testing.T) {
	// Put must tolerate matrices allocated outside Get (arbitrary,
	// non-power-of-two capacities) and degenerate shapes.
	Put(New(3, 33))
	Put(FromData(1, 3, []float32{1, 2, 3}))
	Put(&Matrix{})
	Put(nil)
	m := Get(3, 33)
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("foreign recycled matrix not zeroed at %d", i)
		}
	}
}

func TestPooledKernelsMatchSemantics(t *testing.T) {
	// Kernels now return pool-backed matrices; hammer a mix of shapes
	// through the pool and verify results still match naive references.
	rng := graph.NewRNG(11)
	for iter := 0; iter < 20; iter++ {
		a := randomMatrix(9+iter, 7, rng)
		b := randomMatrix(7, 5+iter%3, rng)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if d := got.MaxAbsDiff(want); d > 1e-4 {
			t.Fatalf("iter %d: pooled MatMul diff %g", iter, d)
		}
		Put(got)
		Put(a)
		Put(b)
	}
}
