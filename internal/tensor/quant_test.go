package tensor

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// quantFixture builds a feature matrix with mixed row shapes (normal,
// large-range, constant, tiny-range, zero) and a fully-quantized
// shadow of it.
func quantFixture(rows, cols int, seed uint64) (*Matrix, *QuantMatrix, []uint64) {
	rng := graph.NewRNG(seed)
	m := New(rows, cols)
	for r := 0; r < rows; r++ {
		switch r % 5 {
		case 0: // typical features
			for j := 0; j < cols; j++ {
				m.Set(r, j, rng.NormFloat32())
			}
		case 1: // large dynamic range
			for j := 0; j < cols; j++ {
				m.Set(r, j, 100*rng.NormFloat32())
			}
		case 2: // constant row (degenerate: scale 0)
			for j := 0; j < cols; j++ {
				m.Set(r, j, 3.25)
			}
		case 3: // tiny range around a large offset
			for j := 0; j < cols; j++ {
				m.Set(r, j, 50+0.001*rng.NormFloat32())
			}
		case 4: // all zero
		}
	}
	q := NewQuant(rows, cols)
	mask := make([]uint64, (rows+63)/64)
	for r := 0; r < rows; r++ {
		q.QuantizeRow(r, m.Row(r))
		mask[r>>6] |= 1 << (uint(r) & 63)
	}
	return m, q, mask
}

// rowRange is max-min of a row.
func rowRange(row []float32) float64 {
	mn, mx := row[0], row[0]
	for _, v := range row {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return float64(mx) - float64(mn)
}

// TestQuantRoundTripProperty: per-row affine int8 quantization over
// 255 levels bounds the round-trip error of every element by half a
// step, (max-min)/510; degenerate constant rows reproduce exactly.
func TestQuantRoundTripProperty(t *testing.T) {
	const rows, cols = 200, 19
	m, q, _ := quantFixture(rows, cols, 11)
	dst := make([]float32, cols)
	for r := 0; r < rows; r++ {
		src := m.Row(r)
		q.DequantRowInto(dst, r)
		// Half a quantization step, plus a few float32 ULPs at the
		// row's magnitude: scale*q+zero rounds once more than the real
		// arithmetic the half-step bound assumes.
		var maxAbs float64
		for _, v := range src {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		halfStep := rowRange(src) / 510
		bound := halfStep*(1+1e-5) + maxAbs*1e-6
		for j := 0; j < cols; j++ {
			err := math.Abs(float64(dst[j]) - float64(src[j]))
			if halfStep == 0 {
				if err != 0 {
					t.Fatalf("row %d col %d: constant row must round-trip exactly, got err %g", r, j, err)
				}
				continue
			}
			if err > bound {
				t.Errorf("row %d col %d: round-trip error %g exceeds bound %g", r, j, err, bound)
			}
		}
	}
}

// TestQuantizeRowDeterministic: quantizing the same data twice yields
// identical codes and row parameters (the admission path re-runs on
// re-planning, and the cache contents must not drift).
func TestQuantizeRowDeterministic(t *testing.T) {
	const rows, cols = 40, 16
	m, q, _ := quantFixture(rows, cols, 23)
	q2 := NewQuant(rows, cols)
	for r := 0; r < rows; r++ {
		q2.QuantizeRow(r, m.Row(r))
	}
	for i := range q.Data {
		if q.Data[i] != q2.Data[i] {
			t.Fatalf("code %d differs across identical quantizations", i)
		}
	}
	for r := 0; r < rows; r++ {
		if q.Scale[r] != q2.Scale[r] || q.Zero[r] != q2.Zero[r] {
			t.Fatalf("row %d params differ across identical quantizations", r)
		}
	}
}

// TestFeatSourceExactDispatch: a FeatSource with no quantized tier
// must route every kernel to the existing fp32 implementation with
// bit-identical output — the tier being merely *present in the API*
// cannot perturb the fp32 path.
func TestFeatSourceExactDispatch(t *testing.T) {
	const rows, cols, out = 64, 12, 7
	rng := graph.NewRNG(5)
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat32()
	}
	b := New(cols, out)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat32()
	}
	idx := make([]int32, 40)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}
	src := FS(m)

	want := GatherMatMul(m, idx, b)
	got := GatherMatMulSrc(src, idx, b)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("GatherMatMulSrc[%d] = %v, want exact %v", i, got.Data[i], want.Data[i])
		}
	}
	Put(want)
	Put(got)

	g1 := Gather(m, idx)
	g2 := New(len(idx), cols)
	GatherIntoSrc(g2, src, idx)
	for i := range g1.Data {
		if g1.Data[i] != g2.Data[i] {
			t.Fatalf("GatherIntoSrc[%d] = %v, want exact %v", i, g2.Data[i], g1.Data[i])
		}
	}

	dW1 := New(cols, out)
	dW2 := New(cols, out)
	dZ := New(len(idx), out)
	for i := range dZ.Data {
		dZ.Data[i] = rng.NormFloat32()
	}
	GatherTMatMulAcc(dW1, m, idx, dZ)
	GatherTMatMulAccSrc(dW2, src, idx, dZ)
	for i := range dW1.Data {
		if dW1.Data[i] != dW2.Data[i] {
			t.Fatalf("GatherTMatMulAccSrc[%d] = %v, want exact %v", i, dW2.Data[i], dW1.Data[i])
		}
	}
}

// TestQuantizedGatherTolerance: with every source row quantized, the
// fused dequant-gather matmul stays within the analytic error bound
// sum_k rowErr(k)*|B[k,j]| of the fp32 product.
func TestQuantizedGatherTolerance(t *testing.T) {
	const rows, cols, out = 100, 16, 9
	m, q, mask := quantFixture(rows, cols, 31)
	src := FeatSource{F: m, Q: q, QMask: mask}
	rng := graph.NewRNG(17)
	b := New(cols, out)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat32()
	}
	idx := make([]int32, 80)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}

	exact := GatherMatMul(m, idx, b)
	approx := GatherMatMulSrc(src, idx, b)
	for r := range idx {
		rowErr := rowRange(m.Row(int(idx[r]))) / 510 * (1 + 1e-5)
		for j := 0; j < out; j++ {
			var bound float64
			for k := 0; k < cols; k++ {
				bound += rowErr * math.Abs(float64(b.At(k, j)))
			}
			d := math.Abs(float64(approx.At(r, j)) - float64(exact.At(r, j)))
			if d > bound+1e-5 {
				t.Errorf("out[%d,%d]: quantized drift %g exceeds analytic bound %g", r, j, d, bound)
			}
		}
	}
	Put(exact)
	Put(approx)
}

// TestSegmentAggFusedSrcExact: the per-edge dispatching aggregation
// matches the fp32 kernel bit-for-bit when no row is quantized, and
// stays within the per-row bound when all are.
func TestSegmentAggFusedSrcExact(t *testing.T) {
	const rows, cols = 60, 10
	m, q, mask := quantFixture(rows, cols, 41)
	rng := graph.NewRNG(7)
	nDst := 20
	edgePtr := make([]int64, nDst+1)
	var srcIdx []int32
	for d := 0; d < nDst; d++ {
		deg := rng.Intn(6)
		for e := 0; e < deg; e++ {
			srcIdx = append(srcIdx, int32(rng.Intn(rows)))
		}
		edgePtr[d+1] = int64(len(srcIdx))
	}

	want := SegmentAggFused(edgePtr, srcIdx, m, true, true)
	got := SegmentAggFusedSrc(edgePtr, srcIdx, FS(m), true, true)
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("SegmentAggFusedSrc[%d] = %v, want exact %v", i, got.Data[i], want.Data[i])
		}
	}
	Put(got)

	approx := SegmentAggFusedSrc(edgePtr, srcIdx, FeatSource{F: m, Q: q, QMask: mask}, true, true)
	for d := 0; d < nDst; d++ {
		var bound float64
		for _, s := range srcIdx[edgePtr[d]:edgePtr[d+1]] {
			bound += rowRange(m.Row(int(s))) / 510 * (1 + 1e-5)
		}
		deg := float64(edgePtr[d+1] - edgePtr[d])
		if deg > 1 {
			bound /= deg // mean aggregation divides the summed error too
		}
		for j := 0; j < cols; j++ {
			diff := math.Abs(float64(approx.At(d, j)) - float64(want.At(d, j)))
			if diff > bound+1e-5 {
				t.Errorf("agg[%d,%d]: drift %g exceeds bound %g", d, j, diff, bound)
			}
		}
	}
	Put(want)
	Put(approx)
}
