package tensor

import "math"

// Per-row affine int8 quantization for the warm feature-cache tier.
//
// Each row r stores q[j] = round((v[j] - zero_r) / scale_r) in int8 and
// dequantizes as v'[j] = scale_r*q[j] + zero_r. The row's scale spans
// its value range across the full int8 domain (scale = (max-min)/255,
// zero = min + 128*scale), so the round-trip error is bounded by
// scale/2 = (max-min)/510 per element. A constant row (max == min)
// gets scale 0 and zero = value, which round-trips exactly.
//
// The quantized path is deliberately NOT bit-identical to fp32 — it is
// a lossy cache tier traded for 4x capacity — so everything reading it
// is tested against tolerance bounds, never exact equality (DESIGN
// decision 15). The fp32 path never routes through this file.

// QuantMatrix is a dense row-major int8 matrix with per-row affine
// dequantization parameters. Rows not admitted through QuantizeRow are
// all-zero and dequantize to zero; callers gate reads with a row
// bitset (see FeatSource).
type QuantMatrix struct {
	Rows, Cols int
	Data       []int8
	Scale      []float32
	Zero       []float32
}

// NewQuant allocates a zeroed rows x cols quantized matrix.
func NewQuant(rows, cols int) *QuantMatrix {
	return &QuantMatrix{
		Rows:  rows,
		Cols:  cols,
		Data:  make([]int8, rows*cols),
		Scale: make([]float32, rows),
		Zero:  make([]float32, rows),
	}
}

// QuantRowBytes is the accounting size of one quantized row: one byte
// per element plus the 8-byte scale/zero pair — the size the cache
// store charges for an int8-tier read, vs 4 bytes per element for
// fp32.
func QuantRowBytes(cols int) int64 { return int64(cols) + 8 }

// Bytes returns the accounting size of the whole matrix.
func (q *QuantMatrix) Bytes() int64 { return int64(q.Rows) * QuantRowBytes(q.Cols) }

// QuantizeRow admits src (len Cols) as row r, computing the row's
// affine parameters and rounding each element to the nearest int8
// step. Admission is idempotent: re-quantizing the same values yields
// the same bytes.
func (q *QuantMatrix) QuantizeRow(r int, src []float32) {
	if len(src) != q.Cols {
		panic("tensor: QuantizeRow width mismatch")
	}
	mn, mx := src[0], src[0]
	for _, v := range src[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	dst := q.Data[r*q.Cols : (r+1)*q.Cols]
	if mx == mn {
		q.Scale[r] = 0
		q.Zero[r] = mn
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	scale := (mx - mn) / 255
	zero := mn + 128*scale
	q.Scale[r] = scale
	q.Zero[r] = zero
	inv := 1 / scale
	for j, v := range src {
		t := math.RoundToEven(float64((v - zero) * inv))
		if t > 127 {
			t = 127
		} else if t < -128 {
			t = -128
		}
		dst[j] = int8(t)
	}
}

// DequantRowInto reconstructs row r into dst (len >= Cols).
//
//apt:hotpath
func (q *QuantMatrix) DequantRowInto(dst []float32, r int) {
	qr := q.Data[r*q.Cols : (r+1)*q.Cols]
	s, z := q.Scale[r], q.Zero[r]
	dst = dst[:len(qr)]
	for j, qv := range qr {
		dst[j] = s*float32(qv) + z
	}
}

// FeatSource is the unified read view of a feature store: a master
// fp32 matrix plus an optional int8 warm tier. Rows whose bit is set
// in QMask are served by dequantizing Q; all other rows read F
// directly. With a nil QMask a FeatSource is exactly its fp32 matrix,
// and every kernel taking a FeatSource dispatches to the bit-identical
// fp32 kernel in that case.
type FeatSource struct {
	F     *Matrix
	Q     *QuantMatrix
	QMask []uint64 // bitset over row ids; nil disables the tier
}

// FS wraps a plain fp32 matrix as a FeatSource (the bit-identical
// path).
func FS(m *Matrix) FeatSource { return FeatSource{F: m} }

// Quantized reports whether row r is served from the int8 tier.
//
//apt:hotpath
func (s FeatSource) Quantized(r int) bool {
	return s.QMask != nil && s.QMask[r>>6]&(1<<(uint(r)&63)) != 0
}

// RowInto materializes row r into dst (len >= Cols), dequantizing if
// the row lives in the int8 tier.
//
//apt:hotpath
func (s FeatSource) RowInto(dst []float32, r int) {
	if s.Quantized(r) {
		s.Q.DequantRowInto(dst, r)
		return
	}
	copy(dst[:s.F.Cols], s.F.Row(r))
}

// GatherIntoSrc copies (dequantizing where needed) rows idx of src
// into the leading len(idx) rows of dst — the FeatSource form of
// GatherInto.
//
//apt:hotpath
func GatherIntoSrc(dst *Matrix, src FeatSource, idx []int32) {
	if src.QMask == nil {
		GatherInto(dst, src.F, idx)
		return
	}
	if dst.Cols != src.F.Cols {
		panic("tensor: GatherIntoSrc column mismatch")
	}
	if dst.Rows < len(idx) {
		panic("tensor: GatherIntoSrc destination too small")
	}
	for i, r := range idx {
		src.RowInto(dst.Row(i), int(r))
	}
}

// GatherMatMulSrc returns src[idx] @ b, reading fp32 rows directly and
// int8 rows through on-the-fly dequantization — the gather-mm used by
// layer 0 once the warm tier is enabled. With no tier it is exactly
// GatherMatMul.
//
//apt:hotpath
func GatherMatMulSrc(src FeatSource, idx []int32, b *Matrix) *Matrix {
	if src.QMask == nil {
		return GatherMatMul(src.F, idx, b)
	}
	out := Get(len(idx), b.Cols)
	gemmInto(out, gemmA{src: src.F, idx: idx, hi: src.F.Cols, q: src.Q, qmask: src.QMask}, b, nil, false)
	return out
}

// GatherMatMulSliceSrc returns src[idx][:, lo:hi] @ b — NFP's
// per-shard projection over a tiered source.
//
//apt:hotpath
func GatherMatMulSliceSrc(src FeatSource, idx []int32, lo, hi int, b *Matrix) *Matrix {
	if src.QMask == nil {
		return GatherMatMulSlice(src.F, idx, lo, hi, b)
	}
	out := Get(len(idx), b.Cols)
	gemmInto(out, gemmA{src: src.F, idx: idx, lo: lo, hi: hi, q: src.Q, qmask: src.QMask}, b, nil, false)
	return out
}

// GatherTMatMulAccSrc accumulates dst += src[idx]ᵀ @ b over a tiered
// source — the layer-0 weight gradient read straight from the store.
//
//apt:hotpath
func GatherTMatMulAccSrc(dst *Matrix, src FeatSource, idx []int32, b *Matrix) {
	if src.QMask == nil {
		GatherTMatMulAcc(dst, src.F, idx, b)
		return
	}
	if len(idx) != b.Rows {
		panic("tensor: GatherTMatMulAccSrc outer dimension mismatch")
	}
	gatherTMatMulAcc(dst, gemmA{src: src.F, idx: idx, hi: src.F.Cols, q: src.Q, qmask: src.QMask}, b)
}

// GatherTMatMulAccSliceSrc accumulates dst += src[idx][:, lo:hi]ᵀ @ b
// over a tiered source — NFP's weight-shard gradient.
//
//apt:hotpath
func GatherTMatMulAccSliceSrc(dst *Matrix, src FeatSource, idx []int32, lo, hi int, b *Matrix) {
	if src.QMask == nil {
		GatherTMatMulAccSlice(dst, src.F, idx, lo, hi, b)
		return
	}
	if len(idx) != b.Rows {
		panic("tensor: GatherTMatMulAccSliceSrc outer dimension mismatch")
	}
	gatherTMatMulAcc(dst, gemmA{src: src.F, idx: idx, lo: lo, hi: hi, q: src.Q, qmask: src.QMask}, b)
}

// SegmentAggFusedSrc is SegmentAggFused over a tiered source: fp32
// rows accumulate directly, int8 rows accumulate their dequantized
// values term by term (or[j] += scale*q[j] + zero), which equals
// dequantize-then-add exactly. With no tier it is exactly
// SegmentAggFused.
//
//apt:hotpath
func SegmentAggFusedSrc(edgePtr []int64, srcIdx []int32, src FeatSource, mean, relu bool) *Matrix {
	if src.QMask == nil {
		return SegmentAggFused(edgePtr, srcIdx, src.F, mean, relu)
	}
	nDst := len(edgePtr) - 1
	out := Get(nDst, src.F.Cols)
	segmentAggRangeSrc(edgePtr, srcIdx, src, out, mean, relu, 0, nDst)
	return out
}

// segmentAggRangeSrc is segmentAggRange with per-edge tier dispatch.
//
//apt:hotpath
func segmentAggRangeSrc(edgePtr []int64, srcIdx []int32, src FeatSource, out *Matrix, mean, relu bool, lo, hi int) {
	fd, fc := src.F.Data, src.F.Cols
	for i := lo; i < hi; i++ {
		or := out.Row(i)
		n := len(or)
		for e := edgePtr[i]; e < edgePtr[i+1]; e++ {
			r := int(srcIdx[e])
			if src.Quantized(r) {
				q := src.Q
				qr := q.Data[r*q.Cols : r*q.Cols+n]
				s, z := q.Scale[r], q.Zero[r]
				for j := range or {
					or[j] += s*float32(qr[j]) + z
				}
				continue
			}
			sr := fd[r*fc : r*fc+n]
			for j := range or {
				or[j] += sr[j]
			}
		}
		if mean {
			if d := edgePtr[i+1] - edgePtr[i]; d > 1 {
				inv := float32(1.0 / float64(d))
				for j := range or {
					or[j] *= inv
				}
			}
		}
		if relu {
			for j := range or {
				if !(or[j] > 0) {
					or[j] = 0
				}
			}
		}
	}
}
