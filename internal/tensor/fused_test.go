package tensor

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// The tiled/fused kernels promise bit-identity with their naive
// unfused counterparts (same per-element float32 summation order), so
// these tests assert EXACT equality, not tolerances.

// naiveMatMulF32 is the reference the blocked kernel must match
// bitwise: per output element, float32 terms added in increasing k
// order with a single accumulator.
func naiveMatMulF32(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// naiveTMatMulAccF32 mirrors TMatMulAcc's contract: rank-1 updates in
// increasing k order, zero a-entries skipped.
func naiveTMatMulAccF32(dst, a, b *Matrix) {
	for kk := 0; kk < a.Rows; kk++ {
		for i := 0; i < a.Cols; i++ {
			av := a.At(kk, i)
			if av == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				dst.Data[i*dst.Cols+j] += av * b.At(kk, j)
			}
		}
	}
}

func matricesExact(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (must be bit-identical)",
				name, i, got.Data[i], want.Data[i])
		}
	}
}

// sparsify zeroes a fraction of entries, mimicking post-ReLU
// activations that trigger the zero-skip kernel.
func sparsify(m *Matrix, frac float64, rng *graph.RNG) {
	for i := range m.Data {
		if rng.Float64() < frac {
			m.Data[i] = 0
		}
	}
}

func TestTiledMatMulBitIdenticalToNaive(t *testing.T) {
	rng := graph.NewRNG(31)
	// Shapes chosen to cross every blocking boundary: single k-panel,
	// multiple k-panels (k > gemmKC), column blocking + packing
	// (n > gemmNB with a tall row block), and ragged remainders.
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 32, 48},
		{40, gemmKC + 37, gemmNB + 61}, {gemmPackMinRows + 5, 2 * gemmKC, gemmNB + 1},
		{100, 7, 3}, {5, 300, 300},
	} {
		a := randomMatrix(dims[0], dims[1], rng)
		b := randomMatrix(dims[1], dims[2], rng)
		got := MatMul(a, b)
		matricesExact(t, "MatMul", got, naiveMatMulF32(a, b))
		Put(got)
	}
}

func TestSparseMatMulBitIdenticalToDense(t *testing.T) {
	// The per-row zero-skip dispatch must not change results: skipped
	// terms are av*bv == ±0 added to a +0-rooted accumulator, which is
	// bitwise inert. Mix dense and ~90%-sparse rows in one matrix so
	// both kernels run.
	rng := graph.NewRNG(32)
	a := randomMatrix(60, 2*gemmKC, rng)
	for i := 0; i < a.Rows; i += 2 {
		row := a.Row(i)
		for j := range row {
			if rng.Float64() < 0.9 {
				row[j] = 0
			}
		}
	}
	b := randomMatrix(a.Cols, 33, rng)
	got := MatMul(a, b)
	matricesExact(t, "sparse MatMul", got, naiveMatMulF32(a, b))
	Put(got)
}

func TestMatMulBiasReLUMatchesComposition(t *testing.T) {
	rng := graph.NewRNG(33)
	a := randomMatrix(50, 20, rng)
	b := randomMatrix(20, gemmNB+10, rng) // cross the column-block boundary
	bias := make([]float32, b.Cols)
	for i := range bias {
		bias[i] = rng.NormFloat32()
	}
	want := naiveMatMulF32(a, b)
	for i := 0; i < want.Rows; i++ {
		row := want.Row(i)
		for j := range row {
			v := row[j] + bias[j]
			if !(v > 0) {
				v = 0
			}
			row[j] = v
		}
	}
	got := MatMulBiasReLU(a, b, bias)
	matricesExact(t, "MatMulBiasReLU", got, want)
	Put(got)

	// nil bias = fused activation only.
	wantNoBias := naiveMatMulF32(a, b)
	ReLUInPlace(wantNoBias)
	got = MatMulBiasReLU(a, b, nil)
	matricesExact(t, "MatMulBiasReLU(nil bias)", got, wantNoBias)
	Put(got)
}

func TestGatherMatMulBitIdenticalToGatherThenMatMul(t *testing.T) {
	rng := graph.NewRNG(34)
	src := randomMatrix(40, 24, rng)
	b := randomMatrix(24, 18, rng)
	idx := make([]int32, 77)
	for i := range idx {
		idx[i] = int32(rng.Intn(src.Rows))
	}
	gathered := Gather(src, idx)
	want := MatMul(gathered, b)
	got := GatherMatMul(src, idx, b)
	matricesExact(t, "GatherMatMul", got, want)
	Put(got)
	Put(want)

	// Slice form: columns [lo, hi) of each indexed row.
	lo, hi := 5, 19
	bs := randomMatrix(hi-lo, 9, rng)
	sliced := New(len(idx), hi-lo)
	for i, r := range idx {
		copy(sliced.Row(i), src.Row(int(r))[lo:hi])
	}
	want = MatMul(sliced, bs)
	got = GatherMatMulSlice(src, idx, lo, hi, bs)
	matricesExact(t, "GatherMatMulSlice", got, want)
	Put(got)
	Put(want)
}

func TestMatMulTBitIdenticalToNaive(t *testing.T) {
	rng := graph.NewRNG(35)
	for _, dims := range [][3]int{{3, 5, 4}, {50, 30, gemmTB + 21}, {17, 130, 90}} {
		a := randomMatrix(dims[0], dims[1], rng)
		b := randomMatrix(dims[2], dims[1], rng)
		want := New(a.Rows, b.Rows)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < b.Rows; j++ {
				var s float32
				for k := 0; k < a.Cols; k++ {
					s += a.At(i, k) * b.At(j, k)
				}
				want.Set(i, j, s)
			}
		}
		got := MatMulT(a, b)
		matricesExact(t, "MatMulT", got, want)
		Put(got)
	}
}

func TestTMatMulAccBitIdenticalToNaive(t *testing.T) {
	rng := graph.NewRNG(36)
	for _, rows := range []int{7, 63, tmatmulAccMinRows + 31} { // sequential + (maybe) parallel
		a := randomMatrix(rows, 12, rng)
		sparsify(a, 0.5, rng) // exercise the zero-skip pairs
		b := randomMatrix(rows, 15, rng)
		got := randomMatrix(12, 15, rng) // nonzero dst: accumulate, not overwrite
		want := got.Clone()
		TMatMulAcc(got, a, b)
		naiveTMatMulAccF32(want, a, b)
		if runtime.GOMAXPROCS(0) == 1 || rows < tmatmulAccMinRows {
			matricesExact(t, "TMatMulAcc", got, want)
		} else if d := got.MaxAbsDiff(want); d > 1e-3 {
			// Parallel partials merge in worker order: reassociation only.
			t.Errorf("TMatMulAcc parallel diff %g", d)
		}
	}
}

func TestGatherTMatMulAccMatchesGatherThenAcc(t *testing.T) {
	rng := graph.NewRNG(37)
	src := randomMatrix(30, 16, rng)
	idx := make([]int32, 45)
	for i := range idx {
		idx[i] = int32(rng.Intn(src.Rows))
	}
	b := randomMatrix(len(idx), 11, rng)

	want := Get(src.Cols, b.Cols)
	TMatMulAcc(want, Gather(src, idx), b)
	got := Get(src.Cols, b.Cols)
	GatherTMatMulAcc(got, src, idx, b)
	matricesExact(t, "GatherTMatMulAcc", got, want)
	Put(got)
	Put(want)

	lo, hi := 3, 13
	sliced := New(len(idx), hi-lo)
	for i, r := range idx {
		copy(sliced.Row(i), src.Row(int(r))[lo:hi])
	}
	want = Get(hi-lo, b.Cols)
	TMatMulAcc(want, sliced, b)
	got = Get(hi-lo, b.Cols)
	GatherTMatMulAccSlice(got, src, idx, lo, hi, b)
	matricesExact(t, "GatherTMatMulAccSlice", got, want)
	Put(got)
	Put(want)
}

func TestSegmentAggFusedMatchesUnfusedComposition(t *testing.T) {
	rng := graph.NewRNG(38)
	edgePtr, srcIdx := randomCSR(200, 80, 7, rng)
	src := randomMatrix(80, 13, rng)
	for _, mean := range []bool{false, true} {
		for _, relu := range []bool{false, true} {
			var want *Matrix
			if mean {
				want = SegmentMean(edgePtr, srcIdx, src)
			} else {
				want = SegmentSum(edgePtr, srcIdx, src)
			}
			if relu {
				masked := ReLU(want)
				Put(want)
				want = masked
			}
			got := SegmentAggFused(edgePtr, srcIdx, src, mean, relu)
			matricesExact(t, "SegmentAggFused", got, want)

			// Backward: mask by forward support, scale by degree, scatter.
			dOut := randomMatrix(got.Rows, got.Cols, rng)
			var dWant *Matrix
			{
				d := dOut
				if relu {
					d = ReLUBackward(got, dOut)
				}
				if mean {
					dWant = SegmentMeanBackward(edgePtr, srcIdx, d, src.Rows)
				} else {
					dWant = SegmentSumBackward(edgePtr, srcIdx, d, src.Rows)
				}
				if relu {
					Put(d)
				}
			}
			dGot := SegmentAggFusedBackward(edgePtr, srcIdx, got, dOut, mean, relu, src.Rows)
			matricesExact(t, "SegmentAggFusedBackward", dGot, dWant)
			Put(dGot)
			Put(dWant)
			Put(dOut)
			Put(got)
			Put(want)
		}
	}
}

func TestSegmentAggFusedBackwardParallelMatchesSequential(t *testing.T) {
	rng := graph.NewRNG(39)
	nDst, nSrc := 4*segBackwardMinDst, 220
	edgePtr, srcIdx := randomCSR(nDst, nSrc, 10, rng)
	src := randomMatrix(nSrc, 9, rng)
	out := SegmentAggFused(edgePtr, srcIdx, src, true, true)
	dOut := randomMatrix(nDst, 9, rng)

	got := SegmentAggFusedBackward(edgePtr, srcIdx, out, dOut, true, true, nSrc)
	want := Get(nSrc, 9)
	g := Get(1, 9)
	segmentAggScatterRange(edgePtr, srcIdx, out, dOut, want, g.Data, true, true, 0, nDst)
	if d := got.MaxAbsDiff(want); d > 1e-3 {
		t.Errorf("parallel SegmentAggFusedBackward diff %g", d)
	}
	Put(g)
	Put(got)
	Put(want)
}

func TestReLUInPlaceMatchesReLU(t *testing.T) {
	x := FromData(1, 6, []float32{-1, 0, 2, -3, float32(math.Copysign(0, -1)), float32(math.NaN())})
	want := ReLU(x)
	ReLUInPlace(x)
	for i := range want.Data {
		if x.Data[i] != want.Data[i] || math.Signbit(float64(x.Data[i])) != math.Signbit(float64(want.Data[i])) {
			t.Errorf("ReLUInPlace[%d] = %v (signbit %v), want %v", i, x.Data[i],
				math.Signbit(float64(x.Data[i])), want.Data[i])
		}
	}
}

func TestGatherIntoMatchesGather(t *testing.T) {
	rng := graph.NewRNG(40)
	src := randomMatrix(12, 5, rng)
	idx := []int32{4, 4, 0, 11, 7}
	want := Gather(src, idx)
	dst := Get(len(idx)+3, 5) // oversized destination: only leading rows written
	GatherInto(dst, src, idx)
	for i := range idx {
		for j := 0; j < 5; j++ {
			if dst.At(i, j) != want.At(i, j) {
				t.Fatalf("GatherInto mismatch at %d,%d", i, j)
			}
		}
	}
	Put(dst)
}

// TestFusedKernelsAllocFree is the allocation guard for the fused hot
// path: with the pool warm and GOMAXPROCS=1 (the inline kernel path),
// one fused forward+backward step through every new kernel must not
// touch the allocator.
func TestFusedKernelsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	rng := graph.NewRNG(41)
	feats := randomMatrix(300, 32, rng)
	w := randomMatrix(32, 16, rng)
	bias := make([]float32, 16)
	edgePtr, srcIdx := randomCSR(120, 200, 6, rng)
	idx := make([]int32, 200)
	for i := range idx {
		idx[i] = int32(rng.Intn(feats.Rows))
	}
	grad := New(32, 16)

	step := func() {
		z := GatherMatMul(feats, idx, w)
		s := SegmentAggFused(edgePtr, srcIdx, z, true, true)
		fz := MatMulBiasReLU(z, randomStaticB, bias)
		dOut := s // reuse as a stand-in gradient
		dZ := SegmentAggFusedBackward(edgePtr, srcIdx, s, dOut, true, true, z.Rows)
		GatherTMatMulAcc(grad, feats, idx, dZ)
		dH := MatMulT(dZ, w)
		ReLUInPlace(dH)
		Put(dH)
		Put(dZ)
		Put(fz)
		Put(s)
		Put(z)
	}
	step() // warm the pools
	if allocs := testing.AllocsPerRun(10, step); allocs > 0 {
		t.Errorf("fused kernel step allocates %.1f times per run, want 0", allocs)
	}
}

// randomStaticB is a fixed operand for the alloc-free test (built once
// so the closure itself performs no setup allocation).
var randomStaticB = func() *Matrix {
	rng := graph.NewRNG(42)
	return randomMatrix(16, 16, rng)
}()
