// Package tensor provides the dense and sparse (segment) float32
// kernels that play the role of DGL's GPU kernels in this
// reproduction: matrix multiplication, elementwise ops, gather/scatter
// by row, segment aggregation over bipartite blocks (SpMM), and
// per-edge score computation (SDDMM), each with a hand-written backward
// pass used by the manual autograd in package nn.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed rows x cols matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromData wraps data (len rows*cols) without copying.
func FromData(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromData %dx%d with %d elements", rows, cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears all elements.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Bytes returns the payload size in bytes (4 bytes per element), the
// unit the communication volume ledger accounts in.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// AddInPlace computes m += x.
func (m *Matrix) AddInPlace(x *Matrix) {
	checkSameShape("AddInPlace", m, x)
	for i, v := range x.Data {
		m.Data[i] += v
	}
}

// SubInPlace computes m -= x.
func (m *Matrix) SubInPlace(x *Matrix) {
	checkSameShape("SubInPlace", m, x)
	for i, v := range x.Data {
		m.Data[i] -= v
	}
}

// ScaleInPlace computes m *= s.
func (m *Matrix) ScaleInPlace(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes m += s*x.
func (m *Matrix) AXPY(s float32, x *Matrix) {
	checkSameShape("AXPY", m, x)
	for i, v := range x.Data {
		m.Data[i] += s * v
	}
}

// MaxAbsDiff returns max_i |m_i - x_i|; used by equivalence tests.
func (m *Matrix) MaxAbsDiff(x *Matrix) float64 {
	checkSameShape("MaxAbsDiff", m, x)
	var mx float64
	for i := range m.Data {
		d := math.Abs(float64(m.Data[i]) - float64(x.Data[i]))
		if d > mx {
			mx = d
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// Gather copies rows idx of src into a new matrix (index_select).
func Gather(src *Matrix, idx []int32) *Matrix {
	out := New(len(idx), src.Cols)
	for i, r := range idx {
		copy(out.Row(i), src.Row(int(r)))
	}
	return out
}

// ScatterAdd adds each row of src into dst at the given row indices:
// dst[idx[i]] += src[i]. The backward of Gather.
func ScatterAdd(dst *Matrix, idx []int32, src *Matrix) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAdd shape mismatch")
	}
	for i, r := range idx {
		d := dst.Row(int(r))
		s := src.Row(i)
		for j := range s {
			d[j] += s[j]
		}
	}
}
