package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Dense GEMM kernels, cache-blocked and fused.
//
// Every variant preserves one invariant: for each output element, the
// k-index terms are accumulated in strictly increasing k order with a
// single accumulator. Cache blocking only reorders work ACROSS output
// elements (row blocks, column blocks, k-panels processed low-to-high),
// never the summation order WITHIN one element, so the engine's
// bit-identical-logits guarantee survives tiling. The k-unrolled inner
// loops keep the adds sequential per element ((((s+t0)+t1)+t2)+t3),
// which is the same operation sequence as four separate iterations —
// multi-accumulator reductions would reassociate and are not used.

// parallelRows runs fn over row ranges [lo, hi) on up to GOMAXPROCS
// goroutines. Small matrices run inline to avoid goroutine overhead.
func parallelRows(rows int, minRowsPerTask int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if rows < 2*minRowsPerTask || workers == 1 {
		fn(0, rows)
		return
	}
	if workers > rows/minRowsPerTask {
		workers = rows / minRowsPerTask
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Blocking parameters. gemmKC bounds the k-panel so a panel of B rows
// stays cache-resident across a row block; gemmNB bounds the output
// column block so one block of B columns (and its packed panel) fits
// comfortably in L1/L2 alongside the A row.
const (
	gemmKC = 128
	gemmNB = 256
	// gemmPackMinRows is the row-block size below which packing a B
	// panel cannot amortize its copy.
	gemmPackMinRows = 32
	// gemmTB blocks the B rows of MatMulT so a panel of them is reused
	// across many A rows.
	gemmTB = 64
)

// parallelTiles partitions an m x n output into (row block x column
// block) tiles and runs fn over them on up to GOMAXPROCS goroutines
// pulling tiles from a shared counter — 2D parallelism with disjoint
// output regions. Small problems (or GOMAXPROCS=1) run inline.
func parallelTiles(rows, cols, minRowsPerTask, colBlock int, fn func(i0, i1, j0, j1 int)) {
	jb := (cols + colBlock - 1) / colBlock
	if jb < 1 {
		jb = 1
	}
	workers := runtime.GOMAXPROCS(0)
	rb := 1
	if minRowsPerTask > 0 {
		rb = rows / minRowsPerTask
	}
	if rb > workers {
		rb = workers
	}
	if rb < 1 {
		rb = 1
	}
	tiles := rb * jb
	if workers == 1 || tiles == 1 {
		for j0 := 0; j0 < cols; j0 += colBlock {
			j1 := j0 + colBlock
			if j1 > cols {
				j1 = cols
			}
			fn(0, rows, j0, j1)
		}
		return
	}
	chunk := (rows + rb - 1) / rb
	if workers > tiles {
		workers = tiles
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= tiles {
					return
				}
				i0 := (t / jb) * chunk
				i1 := i0 + chunk
				if i1 > rows {
					i1 = rows
				}
				j0 := (t % jb) * colBlock
				j1 := j0 + colBlock
				if j1 > cols {
					j1 = cols
				}
				if i0 < i1 {
					fn(i0, i1, j0, j1)
				}
			}
		}()
	}
	wg.Wait()
}

// gemmA is the left-operand view of the blocked GEMM: plain matrix
// rows, gathered rows (row r reads src[idx[r]]), or a column window
// [lo, hi) of either — the gather- and shard-fused forms share one
// kernel body instead of materializing copies. When q/qmask are set,
// rows flagged in qmask are served by dequantizing the int8 tier into
// a rotating scratch slot instead of reading src.
type gemmA struct {
	src *Matrix
	idx []int32 // nil: row r is src row r
	lo  int     // column window into each source row
	hi  int

	q     *QuantMatrix // optional int8 warm tier
	qmask []uint64     // bitset over source rows served from q
	// scratch holds gemmAScratchSlots dequant rows of width hi-lo; a
	// returned row stays valid for the next gemmAScratchSlots-1 row
	// calls (the widest kernel holds 8 rows live). Each worker must
	// own its scratch (withScratch) — it is mutable per-call state.
	scratch []float32
	slot    int
}

// gemmAScratchSlots is the number of rotating dequant rows; must cover
// the widest kernel's simultaneously live row count (8-wide unrolls)
// and stay a power of two.
const gemmAScratchSlots = 8

// withScratch returns a copy of g owning a pooled dequant scratch (nil
// matrix when no tier is configured — the fp32 path pays nothing).
// The caller must Put the returned matrix when the kernel finishes.
//
//apt:hotpath
func (g gemmA) withScratch() (gemmA, *Matrix) {
	if g.qmask == nil {
		return g, nil
	}
	m := Get(gemmAScratchSlots, g.hi-g.lo)
	g.scratch = m.Data
	g.slot = 0
	return g, m
}

// row is split so its fp32 fast path stays under the inlining budget;
// the dequant slow path lives in dequantRow.
//
//apt:hotpath
func (g *gemmA) row(r int) []float32 {
	if g.idx != nil {
		r = int(g.idx[r])
	}
	if g.qmask != nil && g.qmask[r>>6]&(1<<(uint(r)&63)) != 0 {
		return g.dequantRow(r)
	}
	base := r * g.src.Cols
	return g.src.Data[base+g.lo : base+g.hi]
}

// dequantRow serves source row r from the int8 tier, dequantized into
// the next rotating scratch slot.
//
//go:noinline
//apt:hotpath
func (g *gemmA) dequantRow(r int) []float32 {
	w := g.hi - g.lo
	o := g.slot * w
	g.slot = (g.slot + 1) & (gemmAScratchSlots - 1)
	dst := g.scratch[o : o+w]
	q := g.q
	qr := q.Data[r*q.Cols+g.lo : r*q.Cols+g.hi]
	s, z := q.Scale[r], q.Zero[r]
	j := 0
	// Four independent convert+FMA chains per iteration keep the int8
	// loads and CVTs pipelined instead of serializing on one chain.
	for ; j+3 < len(qr); j += 4 {
		dst[j] = s*float32(qr[j]) + z
		dst[j+1] = s*float32(qr[j+1]) + z
		dst[j+2] = s*float32(qr[j+2]) + z
		dst[j+3] = s*float32(qr[j+3]) + z
	}
	for ; j < len(qr); j++ {
		dst[j] = s*float32(qr[j]) + z
	}
	return dst
}

func (g gemmA) k() int { return g.hi - g.lo }

// gemmPanelDense accumulates or[j] += Σ_kk arp[kk] * B[kk][j] over one
// k-panel, k increasing, no zero-skip branch in the inner loop. arp is
// the A-row slice aligned with the panel; bd holds the panel's B rows
// starting at its first row with stride bw, offset bj selecting the
// output column window. The 8-wide (then 4-wide) k-unroll amortizes the
// or[] load/store over eight fused terms; per element the adds remain
// sequential in k order, so the association matches eight separate
// iterations.
//
//apt:hotpath
func gemmPanelDense(or, arp, bd []float32, bw, bj int) {
	n := len(or)
	kk := 0
	for ; kk+7 < len(arp); kk += 8 {
		a0, a1, a2, a3 := arp[kk], arp[kk+1], arp[kk+2], arp[kk+3]
		a4, a5, a6, a7 := arp[kk+4], arp[kk+5], arp[kk+6], arp[kk+7]
		o := kk*bw + bj
		b0 := bd[o : o+n]
		b1 := bd[o+bw : o+bw+n]
		b2 := bd[o+2*bw : o+2*bw+n]
		b3 := bd[o+3*bw : o+3*bw+n]
		b4 := bd[o+4*bw : o+4*bw+n]
		b5 := bd[o+5*bw : o+5*bw+n]
		b6 := bd[o+6*bw : o+6*bw+n]
		b7 := bd[o+7*bw : o+7*bw+n]
		// Two output columns per pass: each column's adds stay in k
		// order (bit-identical), but the two accumulator chains are
		// independent, hiding the FP add latency the single chain
		// serializes on.
		j := 0
		for ; j+1 < n; j += 2 {
			s0, s1 := or[j], or[j+1]
			s0 += a0 * b0[j]
			s1 += a0 * b0[j+1]
			s0 += a1 * b1[j]
			s1 += a1 * b1[j+1]
			s0 += a2 * b2[j]
			s1 += a2 * b2[j+1]
			s0 += a3 * b3[j]
			s1 += a3 * b3[j+1]
			s0 += a4 * b4[j]
			s1 += a4 * b4[j+1]
			s0 += a5 * b5[j]
			s1 += a5 * b5[j+1]
			s0 += a6 * b6[j]
			s1 += a6 * b6[j+1]
			s0 += a7 * b7[j]
			s1 += a7 * b7[j+1]
			or[j] = s0
			or[j+1] = s1
		}
		for ; j < n; j++ {
			s := or[j]
			s += a0 * b0[j]
			s += a1 * b1[j]
			s += a2 * b2[j]
			s += a3 * b3[j]
			s += a4 * b4[j]
			s += a5 * b5[j]
			s += a6 * b6[j]
			s += a7 * b7[j]
			or[j] = s
		}
	}
	for ; kk+3 < len(arp); kk += 4 {
		a0, a1, a2, a3 := arp[kk], arp[kk+1], arp[kk+2], arp[kk+3]
		o := kk*bw + bj
		b0 := bd[o : o+n]
		b1 := bd[o+bw : o+bw+n]
		b2 := bd[o+2*bw : o+2*bw+n]
		b3 := bd[o+3*bw : o+3*bw+n]
		for j := range or {
			s := or[j]
			s += a0 * b0[j]
			s += a1 * b1[j]
			s += a2 * b2[j]
			s += a3 * b3[j]
			or[j] = s
		}
	}
	for ; kk < len(arp); kk++ {
		av := arp[kk]
		o := kk*bw + bj
		br := bd[o : o+n]
		for j := range or {
			or[j] += av * br[j]
		}
	}
}

// gemmPanelSparse is the zero-skipping panel kernel, profitable only
// when enough A-row entries are exactly zero (post-ReLU activations).
// Skipped terms contribute av*bv == ±0, so the value is identical to
// the dense kernel for finite data; the k order of the remaining terms
// is unchanged.
//
//apt:hotpath
func gemmPanelSparse(or, arp, bd []float32, bw, bj int) {
	n := len(or)
	for kk := 0; kk < len(arp); kk++ {
		av := arp[kk]
		if av == 0 {
			continue
		}
		o := kk*bw + bj
		br := bd[o : o+n]
		for j := range or {
			or[j] += av * br[j]
		}
	}
}

// gemmRowIsSparse decides the per-row kernel. The branchy zero-skip
// loop mispredicts too often near 50/50 — measured on
// BenchmarkMatMulDense/Sparse{50,75,90}, it loses ~13% at half zeros
// and only wins from about two-thirds zeros up (1.3× at 75%, 3× at
// 90%) — so dispatch to it only when at least 2/3 of the panel entries
// are zero. Both kernels skip the same terms of the same k-ordered
// sum, so the choice never changes a single output bit.
//
// The scan exits early once the nonzero count exceeds ⌊len/3⌋ — past
// that point the two-thirds-zeros threshold is unreachable — so dense
// rows (raw features, layer-0's common case) pay ~len/3 comparisons
// instead of a full pass.
//
//apt:hotpath
func gemmRowIsSparse(arp []float32) bool {
	limit := len(arp) - (2*len(arp)+2)/3
	nz := 0
	for _, v := range arp {
		if v != 0 {
			nz++
			if nz > limit {
				return false
			}
		}
	}
	return true
}

// gemmTile computes one output tile [i0,i1) x [j0,j1) of out += A @ b,
// k-panels low-to-high, with the optional fused bias+ReLU epilogue once
// the tile's k-sum is complete.
//
//apt:hotpath
func gemmTile(out *Matrix, a gemmA, b *Matrix, bias []float32, relu bool, i0, i1, j0, j1 int) {
	// Each tile invocation owns its dequant scratch: tiles may run on
	// separate goroutines and row() mutates the slot cursor.
	a, aScratch := a.withScratch()
	k, n := a.k(), out.Cols
	jw := j1 - j0
	// Pack the B panel when column blocking is active and the row block
	// is tall enough to amortize the copy: the packed panel is
	// contiguous, so the inner kernels stream it without striding across
	// the full B row.
	var packMat *Matrix
	var pack []float32
	if jw < n && i1-i0 >= gemmPackMinRows {
		packMat = Get(gemmKC, jw)
		pack = packMat.Data
	}
	for k0 := 0; k0 < k; k0 += gemmKC {
		k1 := k0 + gemmKC
		if k1 > k {
			k1 = k
		}
		bd, bw, bj := b.Data[k0*n:], n, j0
		if pack != nil {
			for kk := k0; kk < k1; kk++ {
				copy(pack[(kk-k0)*jw:(kk-k0)*jw+jw], b.Data[kk*n+j0:kk*n+j1])
			}
			bd, bw, bj = pack, jw, 0
		}
		// Narrow output windows (the classifier head) do too little work
		// per skipped term to repay the density scan; dispatch straight
		// to the dense kernel there. Both kernels compute the same
		// k-ordered sum, so the dispatch choice never changes a bit.
		scanSparse := jw >= 16
		for i := i0; i < i1; i++ {
			arp := a.row(i)[k0:k1]
			or := out.Row(i)[j0:j1]
			if scanSparse && gemmRowIsSparse(arp) {
				gemmPanelSparse(or, arp, bd, bw, bj)
			} else {
				gemmPanelDense(or, arp, bd, bw, bj)
			}
		}
	}
	if packMat != nil {
		Put(packMat)
	}
	Put(aScratch)
	if bias != nil || relu {
		for i := i0; i < i1; i++ {
			or := out.Row(i)[j0:j1]
			if bias != nil {
				bb := bias[j0:j1]
				for j := range or {
					or[j] += bb[j]
				}
			}
			if relu {
				for j := range or {
					if !(or[j] > 0) {
						or[j] = 0
					}
				}
			}
		}
	}
}

// gemmInto computes out += A @ b tiled. Single-proc (and small)
// problems walk the column blocks directly — no closure, no goroutines,
// zero allocations in steady state; larger ones go through the 2D tile
// scheduler.
//
//apt:hotpath
func gemmInto(out *Matrix, a gemmA, b *Matrix, bias []float32, relu bool) {
	if a.k() != b.Rows {
		panic("tensor: MatMul inner dimension mismatch")
	}
	m, n := out.Rows, out.Cols
	if m == 0 || n == 0 {
		return
	}
	if runtime.GOMAXPROCS(0) == 1 || m < 32 {
		for j0 := 0; j0 < n; j0 += gemmNB {
			j1 := j0 + gemmNB
			if j1 > n {
				j1 = n
			}
			gemmTile(out, a, b, bias, relu, 0, m, j0, j1)
		}
		return
	}
	//apt:allow hotalloc parallel fan-out body; the steady-state bench path is the single-proc branch above
	parallelTiles(m, n, 16, gemmNB, func(i0, i1, j0, j1 int) {
		gemmTile(out, a, b, bias, relu, i0, i1, j0, j1)
	})
}

// MatMul returns a @ b (a: m x k, b: k x n). The result is pool-backed
// (see Get/Put); callers that discard it may Put it back.
//
//apt:hotpath
func MatMul(a, b *Matrix) *Matrix {
	out := Get(a.Rows, b.Cols)
	gemmInto(out, gemmA{src: a, hi: a.Cols}, b, nil, false)
	return out
}

// MatMulBiasReLU returns relu(a @ b + bias), the fused projection
// epilogue: the bias add and activation run on each output tile while
// it is cache-hot, instead of as separate full passes. bias may be nil
// (activation only). The k-sum completes before the epilogue, so the
// result is exactly ReLU(MatMul(a,b)+bias).
//
//apt:hotpath
func MatMulBiasReLU(a, b *Matrix, bias []float32) *Matrix {
	if bias != nil && len(bias) != b.Cols {
		panic("tensor: MatMulBiasReLU bias length mismatch")
	}
	out := Get(a.Rows, b.Cols)
	gemmInto(out, gemmA{src: a, hi: a.Cols}, b, bias, true)
	return out
}

// GatherMatMul returns src[idx] @ b without materializing the gathered
// rows: the kernel reads source rows through the index vector directly
// (DGL's gather-mm). Bit-identical to MatMul(Gather(src, idx), b).
//
//apt:hotpath
func GatherMatMul(src *Matrix, idx []int32, b *Matrix) *Matrix {
	out := Get(len(idx), b.Cols)
	gemmInto(out, gemmA{src: src, idx: idx, hi: src.Cols}, b, nil, false)
	return out
}

// GatherMatMulSlice returns src[idx][:, lo:hi] @ b — the gather-fused
// form of NFP's per-shard projection, reading only the column window
// [lo, hi) of each indexed row.
//
//apt:hotpath
func GatherMatMulSlice(src *Matrix, idx []int32, lo, hi int, b *Matrix) *Matrix {
	out := Get(len(idx), b.Cols)
	gemmInto(out, gemmA{src: src, idx: idx, lo: lo, hi: hi}, b, nil, false)
	return out
}

// MatMulT returns a @ bᵀ (a: m x k, b: n x k). Each output element is
// one dot product accumulated in increasing k order; B rows are
// processed in blocks so a panel of them is reused across many A rows.
//
//apt:hotpath
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: MatMulT inner dimension mismatch")
	}
	out := Get(a.Rows, b.Rows)
	if runtime.GOMAXPROCS(0) == 1 || a.Rows < 32 {
		matmulTRange(out, a, b, 0, a.Rows)
		return out
	}
	//apt:allow hotalloc parallel fan-out body; the steady-state bench path is the sequential branch above
	parallelRows(a.Rows, 16, func(lo, hi int) {
		matmulTRange(out, a, b, lo, hi)
	})
	return out
}

//apt:hotpath
func matmulTRange(out, a, b *Matrix, lo, hi int) {
	k := a.Cols
	for j0 := 0; j0 < b.Rows; j0 += gemmTB {
		j1 := j0 + gemmTB
		if j1 > b.Rows {
			j1 = b.Rows
		}
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for j := j0; j < j1; j++ {
				br := b.Row(j)[:len(ar)]
				var s float32
				kk := 0
				for ; kk+7 < k; kk += 8 {
					s += ar[kk] * br[kk]
					s += ar[kk+1] * br[kk+1]
					s += ar[kk+2] * br[kk+2]
					s += ar[kk+3] * br[kk+3]
					s += ar[kk+4] * br[kk+4]
					s += ar[kk+5] * br[kk+5]
					s += ar[kk+6] * br[kk+6]
					s += ar[kk+7] * br[kk+7]
				}
				for ; kk+3 < k; kk += 4 {
					s += ar[kk] * br[kk]
					s += ar[kk+1] * br[kk+1]
					s += ar[kk+2] * br[kk+2]
					s += ar[kk+3] * br[kk+3]
				}
				for ; kk < k; kk++ {
					s += ar[kk] * br[kk]
				}
				or[j] = s
			}
		}
	}
}

// tmatmulAccMinRows is the k extent below which the transposed
// accumulate runs sequentially (per-worker partials are not worth
// their zeroing/merging cost on small blocks).
const tmatmulAccMinRows = 64

// TMatMulAcc accumulates dst += aᵀ @ b (a: k x m, b: k x n, dst: m x n)
// — the weight-gradient kernel (Xᵀ @ dY) writing straight into the
// gradient buffer, eliminating the scratch-matrix + AddInPlace round
// trip. Terms are added in increasing k order per element; rows of a
// that are entirely zero in a k-pair are skipped (post-ReLU sparsity),
// which is value-identical for finite data.
//
// Large k parallelizes over k ranges with per-worker partial matrices
// merged in worker order: deterministic for a fixed GOMAXPROCS, but
// the summation order differs from the sequential path (same caveat as
// the segment scatter backwards).
//
//apt:hotpath
func TMatMulAcc(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic("tensor: TMatMulAcc outer dimension mismatch")
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: TMatMulAcc output shape mismatch")
	}
	gatherTMatMulAcc(dst, gemmA{src: a, hi: a.Cols}, b)
}

// GatherTMatMulAcc accumulates dst += src[idx]ᵀ @ b without
// materializing the gathered rows — the layer-0 weight gradient read
// straight from the feature store.
//
//apt:hotpath
func GatherTMatMulAcc(dst, src *Matrix, idx []int32, b *Matrix) {
	if len(idx) != b.Rows {
		panic("tensor: GatherTMatMulAcc outer dimension mismatch")
	}
	gatherTMatMulAcc(dst, gemmA{src: src, idx: idx, hi: src.Cols}, b)
}

// GatherTMatMulAccSlice accumulates dst += src[idx][:, lo:hi]ᵀ @ b —
// NFP's weight-shard gradient from the feature columns [lo, hi).
//
//apt:hotpath
func GatherTMatMulAccSlice(dst, src *Matrix, idx []int32, lo, hi int, b *Matrix) {
	if len(idx) != b.Rows {
		panic("tensor: GatherTMatMulAccSlice outer dimension mismatch")
	}
	gatherTMatMulAcc(dst, gemmA{src: src, idx: idx, lo: lo, hi: hi}, b)
}

//apt:hotpath
func gatherTMatMulAcc(dst *Matrix, a gemmA, b *Matrix) {
	rows := b.Rows
	workers := runtime.GOMAXPROCS(0)
	if rows < tmatmulAccMinRows || workers == 1 {
		aw, aScratch := a.withScratch()
		tmatmulAccRange(dst, aw, b, 0, rows)
		Put(aScratch)
		return
	}
	//apt:allow hotalloc per-worker partials on the parallel fan-out; the steady-state bench path is the sequential branch above
	partials := make([]*Matrix, workers)
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		partials[w] = Get(dst.Rows, dst.Cols)
		wg.Add(1)
		//apt:allow hotalloc parallel fan-out goroutines; see the partials allow above
		go func(w, lo, hi int) {
			defer wg.Done()
			aw, aScratch := a.withScratch()
			tmatmulAccRange(partials[w], aw, b, lo, hi)
			Put(aScratch)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p != nil {
			dst.AddInPlace(p)
			Put(p)
		}
	}
}

// tmatmulAccPair applies the rank-1 updates of one k-row pair to output
// row or, skipping zero coefficients (value-identical ±0 for finite
// data). The adds stay sequential in k order — (or[j]+a0·br0[j])+a1·br1[j]
// — matching two separate iterations exactly.
//
//apt:hotpath
func tmatmulAccPair(or []float32, a0, a1 float32, br0, br1 []float32) {
	if a0 == 0 {
		if a1 == 0 {
			return
		}
		for j := range or {
			or[j] += a1 * br1[j]
		}
		return
	}
	if a1 == 0 {
		for j := range or {
			or[j] += a0 * br0[j]
		}
		return
	}
	for j := range or {
		s := or[j]
		s += a0 * br0[j]
		s += a1 * br1[j]
		or[j] = s
	}
}

// tmatmulAccRange applies the rank-1 updates of k rows [lo, hi) to dst,
// eight (then four) k rows at a time. The wide forms amortize the pass
// over dst when all coefficients are live (the common layer-0 case:
// raw features are dense); mixed zero patterns fall back to zero-
// skipping pair updates. Per element the adds stay sequential in k
// order, so the association is identical to the separate iterations.
//
//apt:hotpath
func tmatmulAccRange(dst *Matrix, a gemmA, b *Matrix, lo, hi int) {
	m, n := dst.Rows, dst.Cols
	dd := dst.Data
	kk := lo
	for ; kk+7 < hi; kk += 8 {
		// Reslicing every A row to exactly m elements lets the compiler
		// drop the bounds checks on the eight ar[i] loads per output row.
		ar0 := a.row(kk)[:m]
		ar1 := a.row(kk + 1)[:m]
		ar2 := a.row(kk + 2)[:m]
		ar3 := a.row(kk + 3)[:m]
		ar4 := a.row(kk + 4)[:m]
		ar5 := a.row(kk + 5)[:m]
		ar6 := a.row(kk + 6)[:m]
		ar7 := a.row(kk + 7)[:m]
		br0 := b.Row(kk)[:n]
		br1 := b.Row(kk + 1)[:n]
		br2 := b.Row(kk + 2)[:n]
		br3 := b.Row(kk + 3)[:n]
		br4 := b.Row(kk + 4)[:n]
		br5 := b.Row(kk + 5)[:n]
		br6 := b.Row(kk + 6)[:n]
		br7 := b.Row(kk + 7)[:n]
		for i := 0; i < m; i++ {
			a0, a1, a2, a3 := ar0[i], ar1[i], ar2[i], ar3[i]
			a4, a5, a6, a7 := ar4[i], ar5[i], ar6[i], ar7[i]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 &&
				a4 != 0 && a5 != 0 && a6 != 0 && a7 != 0 {
				or := dd[i*n : i*n+n]
				// Two columns per pass — independent accumulator
				// chains, per-column k order unchanged (see
				// gemmPanelDense).
				j := 0
				for ; j+1 < n; j += 2 {
					s0, s1 := or[j], or[j+1]
					s0 += a0 * br0[j]
					s1 += a0 * br0[j+1]
					s0 += a1 * br1[j]
					s1 += a1 * br1[j+1]
					s0 += a2 * br2[j]
					s1 += a2 * br2[j+1]
					s0 += a3 * br3[j]
					s1 += a3 * br3[j+1]
					s0 += a4 * br4[j]
					s1 += a4 * br4[j+1]
					s0 += a5 * br5[j]
					s1 += a5 * br5[j+1]
					s0 += a6 * br6[j]
					s1 += a6 * br6[j+1]
					s0 += a7 * br7[j]
					s1 += a7 * br7[j+1]
					or[j] = s0
					or[j+1] = s1
				}
				for ; j < n; j++ {
					s := or[j]
					s += a0 * br0[j]
					s += a1 * br1[j]
					s += a2 * br2[j]
					s += a3 * br3[j]
					s += a4 * br4[j]
					s += a5 * br5[j]
					s += a6 * br6[j]
					s += a7 * br7[j]
					or[j] = s
				}
				continue
			}
			or := dd[i*n : i*n+n]
			tmatmulAccPair(or, a0, a1, br0, br1)
			tmatmulAccPair(or, a2, a3, br2, br3)
			tmatmulAccPair(or, a4, a5, br4, br5)
			tmatmulAccPair(or, a6, a7, br6, br7)
		}
	}
	for ; kk+3 < hi; kk += 4 {
		ar0 := a.row(kk)[:m]
		ar1 := a.row(kk + 1)[:m]
		ar2 := a.row(kk + 2)[:m]
		ar3 := a.row(kk + 3)[:m]
		br0 := b.Row(kk)[:n]
		br1 := b.Row(kk + 1)[:n]
		br2 := b.Row(kk + 2)[:n]
		br3 := b.Row(kk + 3)[:n]
		for i := 0; i < m; i++ {
			a0, a1, a2, a3 := ar0[i], ar1[i], ar2[i], ar3[i]
			if a0 != 0 && a1 != 0 && a2 != 0 && a3 != 0 {
				or := dd[i*n : i*n+n]
				for j := range or {
					s := or[j]
					s += a0 * br0[j]
					s += a1 * br1[j]
					s += a2 * br2[j]
					s += a3 * br3[j]
					or[j] = s
				}
				continue
			}
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			or := dd[i*n : i*n+n]
			tmatmulAccPair(or, a0, a1, br0, br1)
			tmatmulAccPair(or, a2, a3, br2, br3)
		}
	}
	if kk+1 < hi {
		ar0 := a.row(kk)
		ar1 := a.row(kk + 1)
		br0 := b.Row(kk)[:n]
		br1 := b.Row(kk + 1)[:n]
		for i := 0; i < m; i++ {
			a0, a1 := ar0[i], ar1[i]
			if a0 == 0 && a1 == 0 {
				continue
			}
			tmatmulAccPair(dd[i*n:i*n+n], a0, a1, br0, br1)
		}
		kk += 2
	}
	for ; kk < hi; kk++ {
		ar := a.row(kk)
		br := b.Row(kk)[:n]
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := dst.Data[i*n : i*n+n]
			for j := range or {
				or[j] += av * br[j]
			}
		}
	}
}

// TMatMul returns aᵀ @ b (a: k x m, b: k x n); used for weight
// gradients that cannot accumulate in place (fresh scratch).
//
//apt:hotpath
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: TMatMul outer dimension mismatch")
	}
	out := Get(a.Cols, b.Cols)
	gatherTMatMulAcc(out, gemmA{src: a, hi: a.Cols}, b)
	return out
}
