package tensor

import (
	"runtime"
	"sync"
)

// parallelRows runs fn over row ranges [lo, hi) on up to GOMAXPROCS
// goroutines. Small matrices run inline to avoid goroutine overhead.
func parallelRows(rows int, minRowsPerTask int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if rows < 2*minRowsPerTask || workers == 1 {
		fn(0, rows)
		return
	}
	if workers > rows/minRowsPerTask {
		workers = rows / minRowsPerTask
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= rows {
			break
		}
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul returns a @ b (a: m x k, b: k x n). The result is pool-backed
// (see Get/Put); callers that discard it may Put it back.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := Get(a.Rows, b.Cols)
	n := b.Cols
	parallelRows(a.Rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for kk, av := range ar {
				if av == 0 {
					continue
				}
				br := b.Data[kk*n : kk*n+n]
				for j, bv := range br {
					or[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatMulT returns a @ bᵀ (a: m x k, b: n x k).
func MatMulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: MatMulT inner dimension mismatch")
	}
	out := Get(a.Rows, b.Rows)
	parallelRows(a.Rows, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			or := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				br := b.Row(j)
				var s float32
				for kk := range ar {
					s += ar[kk] * br[kk]
				}
				or[j] = s
			}
		}
	})
	return out
}

// TMatMul returns aᵀ @ b (a: k x m, b: k x n); used for weight
// gradients (Xᵀ @ dY).
func TMatMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: TMatMul outer dimension mismatch")
	}
	out := Get(a.Cols, b.Cols)
	// Parallelize over the k dimension with per-worker accumulators to
	// avoid write contention on the (small) output. Partials merge in
	// worker order, so the result is deterministic for a fixed
	// GOMAXPROCS (summation order differs from the sequential path).
	workers := runtime.GOMAXPROCS(0)
	if a.Rows < 64 || workers == 1 {
		tmatmulRange(a, b, out, 0, a.Rows)
		return out
	}
	partials := make([]*Matrix, workers)
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= a.Rows {
			break
		}
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		partials[w] = Get(a.Cols, b.Cols)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tmatmulRange(a, b, partials[w], lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, p := range partials {
		if p != nil {
			out.AddInPlace(p)
			Put(p)
		}
	}
	return out
}

func tmatmulRange(a, b, out *Matrix, lo, hi int) {
	n := b.Cols
	for kk := lo; kk < hi; kk++ {
		ar := a.Row(kk)
		br := b.Row(kk)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			or := out.Data[i*n : i*n+n]
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}
