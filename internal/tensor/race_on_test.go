//go:build race

package tensor

// raceEnabled reports whether the race detector is active; its
// instrumentation allocates, so allocation-count assertions must skip.
const raceEnabled = true
