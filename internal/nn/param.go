// Package nn implements the GNN models of the paper's evaluation —
// GraphSAGE (mean aggregation, Eq. 1) and GAT (multi-head additive
// attention) — with hand-written forward and backward passes over the
// kernels in package tensor, plus losses and optimizers. The layer
// computations are exposed at the granularity the unified execution
// engine needs to run them distributed (project / aggregate split).
package nn

import (
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Param is a trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Matrix
	G    *tensor.Matrix
}

// NewParam allocates a parameter and its gradient.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.New(rows, cols), G: tensor.New(rows, cols)}
}

// GlorotInit fills p.W with the Glorot/Xavier uniform distribution,
// the init used by DGL's SAGEConv/GATConv.
func (p *Param) GlorotInit(rng *graph.RNG) {
	limit := float32(math.Sqrt(6.0 / float64(p.W.Rows+p.W.Cols)))
	for i := range p.W.Data {
		p.W.Data[i] = (2*rng.Float32() - 1) * limit
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// NumElements returns the parameter element count.
func (p *Param) NumElements() int { return len(p.W.Data) }
