package nn

import (
	"fmt"

	"repro/internal/sample"
	"repro/internal/tensor"
)

// Inference-only execution. Training forward passes retain a LayerCtx
// per layer (inputs, attention scores, pre-activation sums) so the
// backward pass can consume them; a serving path that never calls
// Backward would leak every one of those pooled buffers to the garbage
// collector. Model.Predict runs the same kernels but recycles each
// intermediate as soon as the next layer has consumed it, so steady-
// state inference allocates nothing beyond what the kernels' pools
// already hold.

// InferenceLayer is implemented by layers that provide a forward pass
// keeping no backward intermediates: every scratch buffer is returned
// to the tensor pool before Infer returns, except the output itself.
type InferenceLayer interface {
	// Infer computes dst embeddings from src embeddings h exactly like
	// Forward, but retains no LayerCtx. The returned matrix is
	// pool-backed and owned by the caller.
	Infer(blk *sample.Block, h *tensor.Matrix) *tensor.Matrix
}

// inferFused is the shared SAGE inference body over a plain or
// gather-fused input.
func (l *SAGELayer) inferFused(blk *sample.Block, h *tensor.Matrix, src tensor.FeatSource, idx []int32) *tensor.Matrix {
	var z *tensor.Matrix
	if idx != nil {
		z = l.ProjectGathered(src, idx)
	} else {
		z = l.Project(h)
	}
	s := tensor.SegmentAggFused(blk.EdgePtr, blk.SrcIdx, z, l.Agg == AggMean, l.Act == ActReLU)
	tensor.Put(z)
	return s
}

// Infer implements InferenceLayer for GraphSAGE: projection + fused
// aggregate/activate with the projection recycled immediately.
func (l *SAGELayer) Infer(blk *sample.Block, h *tensor.Matrix) *tensor.Matrix {
	if h.Rows != blk.NumSrc() {
		panic(fmt.Sprintf("nn: SAGE infer got %d src rows, block has %d", h.Rows, blk.NumSrc()))
	}
	return l.inferFused(blk, h, tensor.FeatSource{}, nil)
}

// InferGathered implements GatherLayer.
func (l *SAGELayer) InferGathered(blk *sample.Block, feats tensor.FeatSource, idx []int32) *tensor.Matrix {
	if len(idx) != blk.NumSrc() {
		panic(fmt.Sprintf("nn: SAGE infer got %d src indices, block has %d", len(idx), blk.NumSrc()))
	}
	if idx == nil {
		idx = []int32{} // empty block: stay on the gather-fused path
	}
	return l.inferFused(blk, nil, feats, idx)
}

// inferFused is the shared GAT inference body over a plain or
// gather-fused input.
func (l *GATLayer) inferFused(blk *sample.Block, h *tensor.Matrix, src tensor.FeatSource, idx []int32) *tensor.Matrix {
	nDst := blk.NumDst()
	dh := l.OutPerHead()
	concat := tensor.Get(nDst, l.OutDim())
	for k := 0; k < l.Heads; k++ {
		var z *tensor.Matrix
		if idx != nil {
			z = l.ProjectHeadGathered(k, src, idx)
		} else {
			z = l.ProjectHead(k, h)
		}
		o, _ := l.headAttention(k, blk, z)
		tensor.Put(z)
		for i := 0; i < nDst; i++ {
			copy(concat.Row(i)[k*dh:(k+1)*dh], o.Row(i))
		}
		tensor.Put(o)
	}
	if l.Act == ActReLU {
		tensor.ReLUInPlace(concat)
	}
	return concat
}

// Infer implements InferenceLayer for GAT: per-head projection and
// attention with every head's projection recycled after its weighted
// sum, instead of being parked in the backward context.
func (l *GATLayer) Infer(blk *sample.Block, h *tensor.Matrix) *tensor.Matrix {
	if h.Rows != blk.NumSrc() {
		panic(fmt.Sprintf("nn: GAT infer got %d src rows, block has %d", h.Rows, blk.NumSrc()))
	}
	return l.inferFused(blk, h, tensor.FeatSource{}, nil)
}

// InferGathered implements GatherLayer.
func (l *GATLayer) InferGathered(blk *sample.Block, feats tensor.FeatSource, idx []int32) *tensor.Matrix {
	if len(idx) != blk.NumSrc() {
		panic(fmt.Sprintf("nn: GAT infer got %d src indices, block has %d", len(idx), blk.NumSrc()))
	}
	if idx == nil {
		idx = []int32{} // empty block: stay on the gather-fused path
	}
	return l.inferFused(blk, nil, feats, idx)
}

// Predict runs the inference-only forward pass on mini-batch mb with
// gathered input features x (rows aligned with mb.Blocks[0].Src). It
// computes exactly what Forward's Logits would hold — bit-identical,
// since the same kernels run in the same order — but retains no
// backward intermediates: every hidden layer's output is recycled once
// the next layer has consumed it. The caller keeps ownership of x and
// receives ownership of the returned logits (pool-backed; tensor.Put
// it when done). Predict only reads model parameters, so one Model may
// serve concurrent Predict calls from multiple goroutines.
func (m *Model) Predict(mb *sample.MiniBatch, x *tensor.Matrix) *tensor.Matrix {
	if len(mb.Blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	h := x
	for l, layer := range m.Layers {
		var out *tensor.Matrix
		if il, ok := layer.(InferenceLayer); ok {
			out = il.Infer(mb.Blocks[l], h)
		} else {
			out, _ = layer.Forward(mb.Blocks[l], h)
		}
		if h != x { // recycle the previous hidden layer's output
			tensor.Put(h)
		}
		h = out
	}
	return h
}

// PredictGathered is Predict with the input gather fused into layer 0:
// it reads feature rows through idx directly instead of consuming a
// materialized x, and is bit-identical to
// Predict(mb, Gather(feats, idx)). Ownership mirrors Predict: feats
// stays with the caller, the logits transfer to it.
func (m *Model) PredictGathered(mb *sample.MiniBatch, feats tensor.FeatSource, idx []int32) *tensor.Matrix {
	if len(mb.Blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	var h *tensor.Matrix
	if gl, ok := m.Layers[0].(GatherLayer); ok {
		h = gl.InferGathered(mb.Blocks[0], feats, idx)
	} else {
		x := tensor.Get(len(idx), feats.F.Cols)
		tensor.GatherIntoSrc(x, feats, idx)
		if il, ok := m.Layers[0].(InferenceLayer); ok {
			h = il.Infer(mb.Blocks[0], x)
		} else {
			h, _ = m.Layers[0].Forward(mb.Blocks[0], x)
		}
		tensor.Put(x)
	}
	for l := 1; l < len(m.Layers); l++ {
		var out *tensor.Matrix
		if il, ok := m.Layers[l].(InferenceLayer); ok {
			out = il.Infer(mb.Blocks[l], h)
		} else {
			out, _ = m.Layers[l].Forward(mb.Blocks[l], h)
		}
		tensor.Put(h)
		h = out
	}
	return h
}
