package nn

import (
	"fmt"

	"repro/internal/sample"
	"repro/internal/tensor"
)

// Aggregator selects how a SAGE layer merges neighbor messages. Both
// choices decompose into per-owner partial sums (plus a final
// normalization for the mean), which is what lets SNP/NFP aggregate
// partially (paper Table 1).
type Aggregator int

// Aggregators.
const (
	// AggMean divides the neighbor sum by the sampled degree
	// (GraphSAGE-mean, the paper's default).
	AggMean Aggregator = iota
	// AggSum keeps the raw neighbor sum (GIN-style).
	AggSum
)

// String implements fmt.Stringer.
func (a Aggregator) String() string {
	if a == AggSum {
		return "sum"
	}
	return "mean"
}

// SAGELayer implements the paper's Eq. (1):
//
//	h_v = act( AGG_{u in N(v)} ( W · h_u ) )
//
// The computation is decomposed into Project (dense: Z = H W) and
// aggregation (sparse: segment sum/mean), matching the Figure 5 tensor
// abstraction so the execution engine can distribute the two halves
// independently (NFP partitions Project's columns; SNP/DNP split the
// aggregation by source/destination nodes).
type SAGELayer struct {
	W   *Param
	Act Activation
	Agg Aggregator
}

// NewSAGELayer creates a GraphSAGE layer mapping in -> out dims with
// mean aggregation.
func NewSAGELayer(name string, in, out int, act Activation) *SAGELayer {
	return &SAGELayer{W: NewParam(name+".W", in, out), Act: act, Agg: AggMean}
}

// InDim implements Layer.
func (l *SAGELayer) InDim() int { return l.W.W.Rows }

// OutDim implements Layer.
func (l *SAGELayer) OutDim() int { return l.W.W.Cols }

// Params implements Layer.
func (l *SAGELayer) Params() []*Param { return []*Param{l.W} }

// NeedsDstInSrc implements Layer; SAGE mean aggregation only reads
// neighbor embeddings.
func (l *SAGELayer) NeedsDstInSrc() bool { return false }

type sageCtx struct {
	h   *tensor.Matrix // layer input (sources)
	out *tensor.Matrix // post-activation output
}

// Project computes Z = h @ W, the dense half of the layer. Exposed for
// the distributed execution paths.
func (l *SAGELayer) Project(h *tensor.Matrix) *tensor.Matrix {
	return tensor.MatMul(h, l.W.W)
}

// ProjectBackward accumulates dW += hᵀ dZ and returns dH = dZ Wᵀ.
func (l *SAGELayer) ProjectBackward(h, dZ *tensor.Matrix) *tensor.Matrix {
	gw := tensor.TMatMul(h, dZ)
	l.W.G.AddInPlace(gw)
	tensor.Put(gw)
	return tensor.MatMulT(dZ, l.W.W)
}

// Forward implements Layer.
func (l *SAGELayer) Forward(blk *sample.Block, h *tensor.Matrix) (*tensor.Matrix, LayerCtx) {
	if h.Rows != blk.NumSrc() {
		panic(fmt.Sprintf("nn: SAGE forward got %d src rows, block has %d", h.Rows, blk.NumSrc()))
	}
	z := l.Project(h)
	var s *tensor.Matrix
	if l.Agg == AggSum {
		s = tensor.SegmentSum(blk.EdgePtr, blk.SrcIdx, z)
	} else {
		s = tensor.SegmentMean(blk.EdgePtr, blk.SrcIdx, z)
	}
	tensor.Put(z)
	out := applyActivation(l.Act, s)
	if out != s { // activation cloned; recycle the pre-activation sums
		tensor.Put(s)
	}
	return out, &sageCtx{h: h, out: out}
}

// Backward implements Layer.
func (l *SAGELayer) Backward(blk *sample.Block, ctx LayerCtx, dOut *tensor.Matrix) *tensor.Matrix {
	c := ctx.(*sageCtx)
	dS := activationBackward(l.Act, c.out, dOut)
	var dZ *tensor.Matrix
	if l.Agg == AggSum {
		dZ = tensor.SegmentSumBackward(blk.EdgePtr, blk.SrcIdx, dS, blk.NumSrc())
	} else {
		dZ = tensor.SegmentMeanBackward(blk.EdgePtr, blk.SrcIdx, dS, blk.NumSrc())
	}
	if dS != dOut { // ActNone passes dOut through untouched
		tensor.Put(dS)
	}
	dH := l.ProjectBackward(c.h, dZ)
	tensor.Put(dZ)
	return dH
}

// NormalizeAggregate applies the aggregator's normalization to partial
// sums assembled by the distributed paths (identity for AggSum, divide
// by sampled degree for AggMean). It mutates s in place.
func (l *SAGELayer) NormalizeAggregate(blk *sample.Block, s *tensor.Matrix) {
	if l.Agg != AggMean {
		return
	}
	for i := 0; i < blk.NumDst(); i++ {
		if d := blk.DstDegree(i); d > 1 {
			inv := float32(1.0 / float64(d))
			row := s.Row(i)
			for j := range row {
				row[j] *= inv
			}
		}
	}
}

// ActivationBackwardOnly exposes the activation gradient for the
// distributed paths that re-implement the aggregation half.
func (l *SAGELayer) ActivationBackwardOnly(out, dOut *tensor.Matrix) *tensor.Matrix {
	return activationBackward(l.Act, out, dOut)
}

// ApplyActivationOnly exposes the activation for the distributed paths.
func (l *SAGELayer) ApplyActivationOnly(s *tensor.Matrix) *tensor.Matrix {
	return applyActivation(l.Act, s)
}
