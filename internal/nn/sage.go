package nn

import (
	"fmt"

	"repro/internal/sample"
	"repro/internal/tensor"
)

// Aggregator selects how a SAGE layer merges neighbor messages. Both
// choices decompose into per-owner partial sums (plus a final
// normalization for the mean), which is what lets SNP/NFP aggregate
// partially (paper Table 1).
type Aggregator int

// Aggregators.
const (
	// AggMean divides the neighbor sum by the sampled degree
	// (GraphSAGE-mean, the paper's default).
	AggMean Aggregator = iota
	// AggSum keeps the raw neighbor sum (GIN-style).
	AggSum
)

// String implements fmt.Stringer.
func (a Aggregator) String() string {
	if a == AggSum {
		return "sum"
	}
	return "mean"
}

// SAGELayer implements the paper's Eq. (1):
//
//	h_v = act( AGG_{u in N(v)} ( W · h_u ) )
//
// The computation is decomposed into Project (dense: Z = H W) and
// aggregation (sparse: segment sum/mean), matching the Figure 5 tensor
// abstraction so the execution engine can distribute the two halves
// independently (NFP partitions Project's columns; SNP/DNP split the
// aggregation by source/destination nodes).
type SAGELayer struct {
	W   *Param
	Act Activation
	Agg Aggregator
}

// NewSAGELayer creates a GraphSAGE layer mapping in -> out dims with
// mean aggregation.
func NewSAGELayer(name string, in, out int, act Activation) *SAGELayer {
	return &SAGELayer{W: NewParam(name+".W", in, out), Act: act, Agg: AggMean}
}

// InDim implements Layer.
func (l *SAGELayer) InDim() int { return l.W.W.Rows }

// OutDim implements Layer.
func (l *SAGELayer) OutDim() int { return l.W.W.Cols }

// Params implements Layer.
func (l *SAGELayer) Params() []*Param { return []*Param{l.W} }

// NeedsDstInSrc implements Layer; SAGE mean aggregation only reads
// neighbor embeddings.
func (l *SAGELayer) NeedsDstInSrc() bool { return false }

type sageCtx struct {
	h   *tensor.Matrix    // layer input (sources) on the plain path
	src tensor.FeatSource // the feature store view when idx is set
	idx []int32           // non-nil: input row r is src row idx[r] (gather-fused)
	out *tensor.Matrix    // post-activation output
}

// Project computes Z = h @ W, the dense half of the layer. Exposed for
// the distributed execution paths.
func (l *SAGELayer) Project(h *tensor.Matrix) *tensor.Matrix {
	return tensor.MatMul(h, l.W.W)
}

// ProjectGathered computes Z = feats[idx] @ W without materializing the
// gathered rows — the projection reads the feature store through the
// index vector (SNP serves requests this way), dequantizing warm-tier
// rows on the fly.
func (l *SAGELayer) ProjectGathered(feats tensor.FeatSource, idx []int32) *tensor.Matrix {
	return tensor.GatherMatMulSrc(feats, idx, l.W.W)
}

// ProjectBackward accumulates dW += hᵀ dZ and returns dH = dZ Wᵀ.
func (l *SAGELayer) ProjectBackward(h, dZ *tensor.Matrix) *tensor.Matrix {
	tensor.TMatMulAcc(l.W.G, h, dZ)
	return tensor.MatMulT(dZ, l.W.W)
}

// AccumulateProjGrad accumulates dW += feats[idx]ᵀ @ dZ straight from
// the feature store, with no input gradient (raw features are not
// trained) and no gathered copy.
func (l *SAGELayer) AccumulateProjGrad(feats tensor.FeatSource, idx []int32, dZ *tensor.Matrix) {
	tensor.GatherTMatMulAccSrc(l.W.G, feats, idx, dZ)
}

// forward is the shared fused forward: projection (plain or gathered),
// then segment aggregation with the mean normalization and activation
// fused into the same pass over each output row.
func (l *SAGELayer) forward(blk *sample.Block, h *tensor.Matrix, src tensor.FeatSource, idx []int32) (*tensor.Matrix, *sageCtx) {
	var z *tensor.Matrix
	if idx != nil {
		z = l.ProjectGathered(src, idx)
	} else {
		z = l.Project(h)
	}
	s := tensor.SegmentAggFused(blk.EdgePtr, blk.SrcIdx, z, l.Agg == AggMean, l.Act == ActReLU)
	tensor.Put(z)
	return s, &sageCtx{h: h, src: src, idx: idx, out: s}
}

// Forward implements Layer.
func (l *SAGELayer) Forward(blk *sample.Block, h *tensor.Matrix) (*tensor.Matrix, LayerCtx) {
	if h.Rows != blk.NumSrc() {
		panic(fmt.Sprintf("nn: SAGE forward got %d src rows, block has %d", h.Rows, blk.NumSrc()))
	}
	out, c := l.forward(blk, h, tensor.FeatSource{}, nil)
	return out, c
}

// ForwardGathered implements GatherLayer.
func (l *SAGELayer) ForwardGathered(blk *sample.Block, feats tensor.FeatSource, idx []int32) (*tensor.Matrix, LayerCtx) {
	if len(idx) != blk.NumSrc() {
		panic(fmt.Sprintf("nn: SAGE forward got %d src indices, block has %d", len(idx), blk.NumSrc()))
	}
	if idx == nil {
		idx = []int32{} // empty block: stay on the gather-fused path
	}
	out, c := l.forward(blk, nil, feats, idx)
	return out, c
}

// backwardToProjection runs the fused aggregation backward (activation
// mask, mean scaling, scatter in one pass) down to dZ.
func (l *SAGELayer) backwardToProjection(blk *sample.Block, c *sageCtx, dOut *tensor.Matrix) *tensor.Matrix {
	return tensor.SegmentAggFusedBackward(blk.EdgePtr, blk.SrcIdx, c.out, dOut,
		l.Agg == AggMean, l.Act == ActReLU, blk.NumSrc())
}

// Backward implements Layer.
func (l *SAGELayer) Backward(blk *sample.Block, ctx LayerCtx, dOut *tensor.Matrix) *tensor.Matrix {
	c := ctx.(*sageCtx)
	dZ := l.backwardToProjection(blk, c, dOut)
	var dH *tensor.Matrix
	if c.idx != nil {
		l.AccumulateProjGrad(c.src, c.idx, dZ)
		dH = tensor.MatMulT(dZ, l.W.W)
	} else {
		dH = l.ProjectBackward(c.h, dZ)
	}
	tensor.Put(dZ)
	return dH
}

// BackwardParams implements GatherLayer: parameter gradients only, no
// dIn — the layer-0 hot path, where the input gradient was always
// discarded.
func (l *SAGELayer) BackwardParams(blk *sample.Block, ctx LayerCtx, dOut *tensor.Matrix) {
	c := ctx.(*sageCtx)
	dZ := l.backwardToProjection(blk, c, dOut)
	if c.idx != nil {
		l.AccumulateProjGrad(c.src, c.idx, dZ)
	} else {
		tensor.TMatMulAcc(l.W.G, c.h, dZ)
	}
	tensor.Put(dZ)
}

// NormalizeAggregate applies the aggregator's normalization to partial
// sums assembled by the distributed paths (identity for AggSum, divide
// by sampled degree for AggMean). It mutates s in place.
func (l *SAGELayer) NormalizeAggregate(blk *sample.Block, s *tensor.Matrix) {
	if l.Agg != AggMean {
		return
	}
	for i := 0; i < blk.NumDst(); i++ {
		if d := blk.DstDegree(i); d > 1 {
			inv := float32(1.0 / float64(d))
			row := s.Row(i)
			for j := range row {
				row[j] *= inv
			}
		}
	}
}

// ActivationBackwardOnly exposes the activation gradient for the
// distributed paths that re-implement the aggregation half.
func (l *SAGELayer) ActivationBackwardOnly(out, dOut *tensor.Matrix) *tensor.Matrix {
	return activationBackward(l.Act, out, dOut)
}

// ApplyActivationOnly applies the activation to s in place and returns
// it; the distributed paths call it on locally assembled partial-sum
// matrices they own.
func (l *SAGELayer) ApplyActivationOnly(s *tensor.Matrix) *tensor.Matrix {
	if l.Act == ActReLU {
		tensor.ReLUInPlace(s)
	}
	return s
}
