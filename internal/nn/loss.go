package nn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// against integer labels and the gradient w.r.t. the logits. The
// gradient is divided by globalBatch (not the local row count) so that
// summing worker gradients across a data-parallel group yields the
// gradient of the global mini-batch mean — the invariant the
// strategy-equivalence tests rely on.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int32, globalBatch int) (float64, *tensor.Matrix) {
	n, c := logits.Rows, logits.Cols
	grad := tensor.New(n, c)
	var loss float64
	inv := 1.0 / float64(globalBatch)
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		probs := grad.Row(i)
		for j, v := range row {
			p := math.Exp(float64(v - mx))
			probs[j] = float32(p)
			sum += p
		}
		invSum := float32(1 / sum)
		y := labels[i]
		for j := range probs {
			probs[j] *= invSum
		}
		loss += -math.Log(math.Max(float64(probs[y]), 1e-30)) * inv
		probs[y] -= 1
		for j := range probs {
			probs[j] *= float32(inv)
		}
	}
	return loss, grad
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *tensor.Matrix, labels []int32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		if int32(best) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(logits.Rows)
}
