package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary checkpoint format for model parameters:
//
//	magic   uint32 "APTM"
//	version uint32 2
//	nameLen uint32, name        (version >= 2: the model family name)
//	count   uint32
//	per parameter: nameLen uint32, name, rows uint32, cols uint32, data
//
// Only parameter values are stored; architecture is reconstructed by
// the caller's model factory, and LoadParams checks that names and
// shapes match. Version 1 files (no model name) still load; the
// family check is then carried only by the per-parameter names.
// LoadParams reads exactly one checkpoint and rejects trailing bytes,
// so a concatenated or padded file cannot load silently.

const (
	modelMagic   = 0x4150544d // "APTM"
	modelVersion = 2
)

// SaveParams writes all parameter values to w.
func (m *Model) SaveParams(w io.Writer) error {
	bw := bufio.NewWriter(w)
	params := m.Params()
	hdr := []uint32{modelMagic, modelVersion}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("nn: save header: %w", err)
		}
	}
	modelName := []byte(m.Name)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(modelName))); err != nil {
		return err
	}
	if _, err := bw.Write(modelName); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	for _, p := range params {
		name := []byte(p.Name)
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.Write(name); err != nil {
			return err
		}
		dims := []uint32{uint32(p.W.Rows), uint32(p.W.Cols)}
		for _, d := range dims {
			if err := binary.Write(bw, binary.LittleEndian, d); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, p.W.Data); err != nil {
			return fmt.Errorf("nn: save %s: %w", p.Name, err)
		}
	}
	return bw.Flush()
}

// LoadParams reads parameter values written by SaveParams into this
// model, validating names and shapes.
func (m *Model) LoadParams(r io.Reader) error {
	br := bufio.NewReader(r)
	var hdr [2]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return fmt.Errorf("nn: load header: %w", err)
		}
	}
	if hdr[0] != modelMagic {
		return fmt.Errorf("nn: bad checkpoint magic %#x", hdr[0])
	}
	if hdr[1] != 1 && hdr[1] != modelVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", hdr[1])
	}
	if hdr[1] >= 2 {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return fmt.Errorf("nn: load header: %w", err)
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: absurd model name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("nn: load header: %w", err)
		}
		if string(name) != m.Name {
			return fmt.Errorf("nn: checkpoint is a %q model, this model is %q", name, m.Name)
		}
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: load header: %w", err)
	}
	params := m.Params()
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d params, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 1<<16 {
			return fmt.Errorf("nn: absurd name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: checkpoint param %q, model expects %q", name, p.Name)
		}
		var rows, cols uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return err
		}
		if int(rows) != p.W.Rows || int(cols) != p.W.Cols {
			return fmt.Errorf("nn: %s shape %dx%d, model expects %dx%d",
				p.Name, rows, cols, p.W.Rows, p.W.Cols)
		}
		if err := binary.Read(br, binary.LittleEndian, &p.W.Data); err != nil {
			return fmt.Errorf("nn: load %s: %w", p.Name, err)
		}
	}
	// Exactly one checkpoint: anything after the last parameter means a
	// concatenated or corrupt file, which must not load silently.
	if _, err := br.ReadByte(); err != io.EOF {
		if err != nil {
			return fmt.Errorf("nn: after last param: %w", err)
		}
		return fmt.Errorf("nn: trailing bytes after last parameter")
	}
	return nil
}

// SaveFile checkpoints the model atomically to path.
func (m *Model) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := m.SaveParams(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a checkpoint written by SaveFile.
func (m *Model) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.LoadParams(f)
}
