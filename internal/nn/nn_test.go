package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/tensor"
)

func smallGraph() *graph.Graph {
	return graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 120, AvgDegree: 6, Seed: 1})
}

func randomFeatures(n, d int, rng *graph.RNG) *tensor.Matrix {
	m := tensor.New(n, d)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat32() * 0.5
	}
	return m
}

func sampleBatch(g *graph.Graph, fanouts []int, includeDst bool, seeds []graph.NodeID, seed uint64) *sample.MiniBatch {
	s := sample.NewSampler(g, sample.Config{Fanouts: fanouts, IncludeDstInSrc: includeDst}, graph.NewRNG(seed))
	return s.Sample(seeds)
}

func gatherInput(feats *tensor.Matrix, blk *sample.Block) *tensor.Matrix {
	return tensor.Gather(feats, blk.Src)
}

// lossOf runs a forward pass and returns the loss.
func lossOf(m *Model, mb *sample.MiniBatch, x *tensor.Matrix, labels []int32) float64 {
	st := m.Forward(mb, x)
	loss, _ := SoftmaxCrossEntropy(st.Logits, labels, len(labels))
	return loss
}

// checkModelGradients numerically validates every parameter gradient.
func checkModelGradients(t *testing.T, m *Model, mb *sample.MiniBatch, x *tensor.Matrix, labels []int32, tol float64) {
	t.Helper()
	m.ZeroGrad()
	st := m.Forward(mb, x)
	_, dLogits := SoftmaxCrossEntropy(st.Logits, labels, len(labels))
	m.Backward(mb, st, dLogits)
	const eps = 1e-2
	for _, p := range m.Params() {
		// Check a few elements of each parameter (full check is slow).
		stride := len(p.W.Data)/7 + 1
		for i := 0; i < len(p.W.Data); i += stride {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			up := lossOf(m, mb, x, labels)
			p.W.Data[i] = orig - eps
			down := lossOf(m, mb, x, labels)
			p.W.Data[i] = orig
			num := (up - down) / (2 * eps)
			got := float64(p.G.Data[i])
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: grad %v, numerical %v", p.Name, i, got, num)
			}
		}
	}
}

func TestSAGEGradients(t *testing.T) {
	g := smallGraph()
	rng := graph.NewRNG(2)
	feats := randomFeatures(g.NumNodes(), 6, rng)
	m := NewGraphSAGE(6, 5, 3, 2)
	m.Init(graph.NewRNG(3))
	mb := sampleBatch(g, []int{4, 4}, false, []graph.NodeID{5, 9, 30}, 4)
	x := gatherInput(feats, mb.Layer1())
	labels := []int32{0, 2, 1}
	checkModelGradients(t, m, mb, x, labels, 2e-2)
}

func TestGATGradients(t *testing.T) {
	g := smallGraph()
	rng := graph.NewRNG(5)
	feats := randomFeatures(g.NumNodes(), 6, rng)
	m := NewGAT(6, 4, 2, 3, 2)
	m.Init(graph.NewRNG(6))
	mb := sampleBatch(g, []int{4, 4}, true, []graph.NodeID{7, 11}, 7)
	x := gatherInput(feats, mb.Layer1())
	labels := []int32{2, 0}
	checkModelGradients(t, m, mb, x, labels, 3e-2)
}

func TestSAGEForwardShapes(t *testing.T) {
	g := smallGraph()
	m := NewGraphSAGE(8, 16, 4, 3)
	m.Init(graph.NewRNG(1))
	mb := sampleBatch(g, []int{3, 3, 3}, false, []graph.NodeID{1, 2, 3, 4}, 1)
	x := randomFeatures(mb.Layer1().NumSrc(), 8, graph.NewRNG(2))
	st := m.Forward(mb, x)
	if st.Logits.Rows != 4 || st.Logits.Cols != 4 {
		t.Errorf("logits shape %dx%d, want 4x4", st.Logits.Rows, st.Logits.Cols)
	}
}

func TestGATOutDim(t *testing.T) {
	l := NewGATLayer("g", 10, 8, 4, ActReLU)
	if l.OutDim() != 32 {
		t.Errorf("OutDim = %d, want 32 (4 heads x 8)", l.OutDim())
	}
	if !l.NeedsDstInSrc() {
		t.Error("GAT must require dst in src")
	}
	m := NewGAT(10, 8, 4, 5, 3)
	if !m.NeedsDstInSrc() {
		t.Error("GAT model must require dst in src")
	}
	if m.Layers[1].InDim() != 32 {
		t.Errorf("layer1 InDim = %d, want 32", m.Layers[1].InDim())
	}
	if m.Layers[2].OutDim() != 5 {
		t.Errorf("final OutDim = %d, want 5", m.Layers[2].OutDim())
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromData(2, 3, []float32{10, 0, 0, 0, 10, 0})
	loss, grad := SoftmaxCrossEntropy(logits, []int32{0, 1}, 2)
	if loss > 0.01 {
		t.Errorf("confident correct predictions loss = %v, want ~0", loss)
	}
	// Gradient rows sum to ~0 (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for _, v := range grad.Row(i) {
			s += float64(v)
		}
		if math.Abs(s) > 1e-5 {
			t.Errorf("grad row %d sums to %v", i, s)
		}
	}
	lossBad, _ := SoftmaxCrossEntropy(logits, []int32{1, 0}, 2)
	if lossBad < 5 {
		t.Errorf("wrong predictions loss = %v, want large", lossBad)
	}
}

func TestGlobalBatchGradientScaling(t *testing.T) {
	// Summing two half-batch gradients (scaled by global batch) must
	// equal the full-batch gradient — the data-parallel invariant.
	logits := tensor.FromData(4, 2, []float32{1, 2, -1, 0.5, 3, 1, 0, 0})
	labels := []int32{0, 1, 0, 1}
	_, full := SoftmaxCrossEntropy(logits, labels, 4)
	lo := tensor.FromData(2, 2, logits.Data[:4])
	hi := tensor.FromData(2, 2, logits.Data[4:])
	_, g1 := SoftmaxCrossEntropy(lo, labels[:2], 4)
	_, g2 := SoftmaxCrossEntropy(hi, labels[2:], 4)
	combined := tensor.New(4, 2)
	copy(combined.Data[:4], g1.Data)
	copy(combined.Data[4:], g2.Data)
	if combined.MaxAbsDiff(full) > 1e-6 {
		t.Error("split-batch gradients do not sum to full-batch gradient")
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromData(3, 2, []float32{1, 0, 0, 1, 1, 0})
	acc := Accuracy(logits, []int32{0, 1, 1})
	if math.Abs(acc-2.0/3.0) > 1e-9 {
		t.Errorf("accuracy = %v, want 2/3", acc)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.W.Data[0], p.W.Data[1] = 1, 2
	p.G.Data[0], p.G.Data[1] = 0.5, -0.5
	NewSGD(0.1, 0).Step([]*Param{p})
	if math.Abs(float64(p.W.Data[0])-0.95) > 1e-6 || math.Abs(float64(p.W.Data[1])-2.05) > 1e-6 {
		t.Errorf("SGD step result %v", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := NewParam("w", 1, 1)
	p.G.Data[0] = 1
	opt := NewSGD(1, 0.9)
	opt.Step([]*Param{p}) // v=1, w=-1
	opt.Step([]*Param{p}) // v=1.9, w=-2.9
	if math.Abs(float64(p.W.Data[0])+2.9) > 1e-6 {
		t.Errorf("momentum result %v, want -2.9", p.W.Data[0])
	}
}

func TestAdamReducesLoss(t *testing.T) {
	g := smallGraph()
	rng := graph.NewRNG(8)
	feats := randomFeatures(g.NumNodes(), 8, rng)
	labels := make([]int32, g.NumNodes())
	for i := range labels {
		labels[i] = int32(i % 3)
	}
	m := NewGraphSAGE(8, 16, 3, 2)
	m.Init(graph.NewRNG(9))
	opt := NewAdam(0.05)
	seeds := []graph.NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	mb := sampleBatch(g, []int{5, 5}, false, seeds, 10)
	x := gatherInput(feats, mb.Layer1())
	lb := make([]int32, len(seeds))
	for i, s := range seeds {
		lb[i] = labels[s]
	}
	first := lossOf(m, mb, x, lb)
	for it := 0; it < 120; it++ {
		m.ZeroGrad()
		st := m.Forward(mb, x)
		_, dL := SoftmaxCrossEntropy(st.Logits, lb, len(lb))
		m.Backward(mb, st, dL)
		opt.Step(m.Params())
	}
	last := lossOf(m, mb, x, lb)
	if last >= first/2 {
		t.Errorf("Adam failed to optimize: loss %v -> %v", first, last)
	}
}

func TestModelInitDeterministic(t *testing.T) {
	a := NewGraphSAGE(8, 16, 3, 2)
	a.Init(graph.NewRNG(1))
	b := NewGraphSAGE(8, 16, 3, 2)
	b.Init(graph.NewRNG(1))
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if pa[i].W.MaxAbsDiff(pb[i].W) != 0 {
			t.Fatal("same-seed init differs")
		}
	}
}

func TestForwardBackwardPartialMatchesFull(t *testing.T) {
	// Running layer 0 manually then ForwardPartial from layer 1 must
	// match a full Forward — the invariant the unified engine relies on.
	g := smallGraph()
	rng := graph.NewRNG(11)
	feats := randomFeatures(g.NumNodes(), 6, rng)
	m := NewGraphSAGE(6, 8, 3, 3)
	m.Init(graph.NewRNG(12))
	mb := sampleBatch(g, []int{4, 4, 4}, false, []graph.NodeID{2, 3}, 13)
	x := gatherInput(feats, mb.Layer1())

	full := m.Forward(mb, x)

	h0, _ := m.Layers[0].Forward(mb.Blocks[0], x)
	part := m.ForwardPartial(mb, 1, h0)
	if part.Logits.MaxAbsDiff(full.Logits) > 1e-5 {
		t.Error("ForwardPartial diverges from Forward")
	}

	labels := []int32{0, 1}
	_, dL := SoftmaxCrossEntropy(full.Logits, labels, 2)

	m.ZeroGrad()
	m.Backward(mb, full, dL)
	fullGrads := snapshotGrads(m)

	m.ZeroGrad()
	st2 := m.Forward(mb, x)
	dH0 := m.BackwardPartial(mb, st2, 0, dL)
	m.Layers[0].Backward(mb.Blocks[0], st2.Ctxs[0], dH0)
	partGrads := snapshotGrads(m)

	for i := range fullGrads {
		if fullGrads[i].MaxAbsDiff(partGrads[i]) > 1e-5 {
			t.Errorf("param %d grads differ between full and partial backward", i)
		}
	}
}

func snapshotGrads(m *Model) []*tensor.Matrix {
	var out []*tensor.Matrix
	for _, p := range m.Params() {
		out = append(out, p.G.Clone())
	}
	return out
}

func TestNumParamElements(t *testing.T) {
	m := NewGraphSAGE(10, 4, 2, 2)
	if got := m.NumParamElements(); got != 10*4+4*2 {
		t.Errorf("NumParamElements = %d, want 48", got)
	}
}

func TestSoftmaxGradientRowsSumZeroQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := graph.NewRNG(seed)
		logits := randomFeatures(6, 5, rng)
		labels := make([]int32, 6)
		for i := range labels {
			labels[i] = int32(rng.Intn(5))
		}
		_, grad := SoftmaxCrossEntropy(logits, labels, 6)
		for i := 0; i < grad.Rows; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += float64(v)
			}
			if s > 1e-5 || s < -1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGlorotInitBoundsQuick(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewParam("w", 7, 13)
		p.GlorotInit(graph.NewRNG(seed))
		limit := float32(math.Sqrt(6.0 / float64(7+13)))
		for _, v := range p.W.Data {
			if v < -limit || v > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
