package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Model is a stack of GNN layers applied block-by-block to a sampled
// mini-batch. Blocks[l] feeds layer l (bottom-up ordering; see package
// sample).
type Model struct {
	Name   string
	Layers []Layer
}

// Params returns all trainable parameters in a stable order.
func (m *Model) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Init Glorot-initializes every parameter from rng; deterministic given
// the seed, so every worker replica starts identical.
func (m *Model) Init(rng *graph.RNG) {
	for _, p := range m.Params() {
		p.GlorotInit(rng)
	}
}

// ZeroGrad clears all parameter gradients.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NeedsDstInSrc reports whether any layer requires destination
// self-inclusion in block sources (true for GAT).
func (m *Model) NeedsDstInSrc() bool {
	for _, l := range m.Layers {
		if l.NeedsDstInSrc() {
			return true
		}
	}
	return false
}

// NumParamElements is the total scalar parameter count (the "small
// model" whose synchronization the paper treats as cheap).
func (m *Model) NumParamElements() int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumElements()
	}
	return n
}

// ForwardState carries all layer contexts of a forward pass.
type ForwardState struct {
	Inputs []*tensor.Matrix // input to each layer
	Ctxs   []LayerCtx
	Logits *tensor.Matrix
}

// Forward runs the full model on mini-batch mb with gathered input
// features x (rows aligned with mb.Blocks[0].Src).
func (m *Model) Forward(mb *sample.MiniBatch, x *tensor.Matrix) *ForwardState {
	if len(mb.Blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	st := &ForwardState{
		Inputs: make([]*tensor.Matrix, len(m.Layers)),
		Ctxs:   make([]LayerCtx, len(m.Layers)),
	}
	h := x
	for l, layer := range m.Layers {
		st.Inputs[l] = h
		out, ctx := layer.Forward(mb.Blocks[l], h)
		st.Ctxs[l] = ctx
		h = out
	}
	st.Logits = h
	return st
}

// Backward propagates dLogits through all layers, accumulating
// parameter gradients. The gradient w.r.t. the input features is
// discarded (features are not trained) — so layer 0 runs its
// params-only backward when available, skipping the dIn GEMM entirely.
func (m *Model) Backward(mb *sample.MiniBatch, st *ForwardState, dLogits *tensor.Matrix) {
	d := dLogits
	for l := len(m.Layers) - 1; l > 0; l-- {
		nd := m.Layers[l].Backward(mb.Blocks[l], st.Ctxs[l], d)
		if d != dLogits { // recycle the intermediate gradient chain
			tensor.Put(d)
		}
		d = nd
	}
	if gl, ok := m.Layers[0].(GatherLayer); ok {
		gl.BackwardParams(mb.Blocks[0], st.Ctxs[0], d)
	} else {
		tensor.Put(m.Layers[0].Backward(mb.Blocks[0], st.Ctxs[0], d))
	}
	if d != dLogits {
		tensor.Put(d)
	}
}

// ReleaseActivations recycles every activation a forward state owns
// above fromLayer: the outputs of layers fromLayer..end, i.e.
// Inputs[fromLayer+1..] plus Logits. Inputs[fromLayer] itself (the
// caller-provided input) is left alone. The state and its layer
// contexts must not be used afterwards — call only after the backward
// pass is fully done with them.
func (m *Model) ReleaseActivations(st *ForwardState, fromLayer int) {
	for l := fromLayer + 1; l < len(m.Layers); l++ {
		tensor.Put(st.Inputs[l])
		st.Inputs[l] = nil
	}
	if fromLayer < len(m.Layers) {
		tensor.Put(st.Logits)
	}
	st.Logits = nil
}

// ForwardGathered is Forward with the input gather fused into layer 0:
// instead of materializing x = Gather(feats, idx), layer 0 reads the
// feature rows through idx directly. Falls back to an explicit gather
// for layers without gather-fused kernels (Inputs[0] then holds the
// copy).
func (m *Model) ForwardGathered(mb *sample.MiniBatch, feats tensor.FeatSource, idx []int32) *ForwardState {
	if len(mb.Blocks) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d blocks for %d layers", len(mb.Blocks), len(m.Layers)))
	}
	st := &ForwardState{
		Inputs: make([]*tensor.Matrix, len(m.Layers)),
		Ctxs:   make([]LayerCtx, len(m.Layers)),
	}
	var h *tensor.Matrix
	if gl, ok := m.Layers[0].(GatherLayer); ok {
		h, st.Ctxs[0] = gl.ForwardGathered(mb.Blocks[0], feats, idx)
	} else {
		x := tensor.Get(len(idx), feats.F.Cols)
		tensor.GatherIntoSrc(x, feats, idx)
		st.Inputs[0] = x
		h, st.Ctxs[0] = m.Layers[0].Forward(mb.Blocks[0], x)
	}
	for l := 1; l < len(m.Layers); l++ {
		st.Inputs[l] = h
		out, ctx := m.Layers[l].Forward(mb.Blocks[l], h)
		st.Ctxs[l] = ctx
		h = out
	}
	st.Logits = h
	return st
}

// ForwardPartial runs layers [fromLayer, end) given h already computed
// for Blocks[fromLayer].Src. Used by the unified engine, which executes
// layer 0 via a parallelization strategy and the remaining layers
// data-parallel.
func (m *Model) ForwardPartial(mb *sample.MiniBatch, fromLayer int, h *tensor.Matrix) *ForwardState {
	st := &ForwardState{
		Inputs: make([]*tensor.Matrix, len(m.Layers)),
		Ctxs:   make([]LayerCtx, len(m.Layers)),
	}
	for l := fromLayer; l < len(m.Layers); l++ {
		st.Inputs[l] = h
		out, ctx := m.Layers[l].Forward(mb.Blocks[l], h)
		st.Ctxs[l] = ctx
		h = out
	}
	st.Logits = h
	return st
}

// BackwardPartial propagates dLogits down to (and excluding) layer
// toLayer, returning the gradient w.r.t. Blocks[toLayer].Dst embeddings
// — i.e. the input gradient of layer toLayer+1.
func (m *Model) BackwardPartial(mb *sample.MiniBatch, st *ForwardState, toLayer int, dLogits *tensor.Matrix) *tensor.Matrix {
	return m.BackwardPartialHooked(mb, st, toLayer, dLogits, nil)
}

// BackwardPartialHooked is BackwardPartial with a completion hook:
// onLayer(l), when non-nil, runs right after layer l's backward has
// fully accumulated that layer's parameter gradients. The engine's
// DDP-style gradient sync uses it to launch a layer's allreduce bucket
// while the remaining (lower) layers are still computing.
func (m *Model) BackwardPartialHooked(mb *sample.MiniBatch, st *ForwardState, toLayer int, dLogits *tensor.Matrix, onLayer func(l int)) *tensor.Matrix {
	d := dLogits
	for l := len(m.Layers) - 1; l > toLayer; l-- {
		nd := m.Layers[l].Backward(mb.Blocks[l], st.Ctxs[l], d)
		if d != dLogits { // recycle the intermediate gradient chain
			tensor.Put(d)
		}
		d = nd
		if onLayer != nil {
			onLayer(l)
		}
	}
	return d
}

// GradBuckets groups the parameters per layer in reverse layer order —
// the order backward completes them — for bucketed gradient
// synchronization: bucket i holds layer len(Layers)-1-i's parameters,
// so bucket 0 is ready first and the layer-0 bucket comes last. Every
// parameter appears in exactly one bucket.
func (m *Model) GradBuckets() [][]*Param {
	buckets := make([][]*Param, len(m.Layers))
	for l, layer := range m.Layers {
		buckets[len(m.Layers)-1-l] = layer.Params()
	}
	return buckets
}

// NewGraphSAGE builds the paper's default GraphSAGE: layers-1 hidden
// layers of width hidden with ReLU, and a linear classification layer.
func NewGraphSAGE(inDim, hidden, classes, layers int) *Model {
	m := &Model{Name: "GraphSAGE"}
	for l := 0; l < layers; l++ {
		in, out, act := hidden, hidden, ActReLU
		if l == 0 {
			in = inDim
		}
		if l == layers-1 {
			out, act = classes, ActNone
		}
		m.Layers = append(m.Layers, NewSAGELayer(fmt.Sprintf("sage%d", l), in, out, act))
	}
	return m
}

// NewGraphSAGEWithAgg is NewGraphSAGE with an explicit aggregator.
func NewGraphSAGEWithAgg(inDim, hidden, classes, layers int, agg Aggregator) *Model {
	m := NewGraphSAGE(inDim, hidden, classes, layers)
	for _, l := range m.Layers {
		l.(*SAGELayer).Agg = agg
	}
	return m
}

// NewGAT builds the paper's GAT: hidden layers with `heads` attention
// heads of width hiddenPerHead (concatenated), and a single-head linear
// output layer.
func NewGAT(inDim, hiddenPerHead, heads, classes, layers int) *Model {
	m := &Model{Name: "GAT"}
	for l := 0; l < layers; l++ {
		in := hiddenPerHead * heads
		if l == 0 {
			in = inDim
		}
		if l == layers-1 {
			m.Layers = append(m.Layers, NewGATLayer(fmt.Sprintf("gat%d", l), in, classes, 1, ActNone))
		} else {
			m.Layers = append(m.Layers, NewGATLayer(fmt.Sprintf("gat%d", l), in, hiddenPerHead, heads, ActReLU))
		}
	}
	return m
}
