package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (callers
	// zero them explicitly between iterations).
	Step(params []*Param)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	velocity map[*Param]*tensor.Matrix
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param]*tensor.Matrix{}}
}

// Step implements Optimizer.
//
//apt:hotpath
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			p.W.AXPY(-o.LR, p.G)
			continue
		}
		v := o.velocity[p]
		if v == nil {
			v = tensor.New(p.W.Rows, p.W.Cols)
			o.velocity[p] = v
		}
		v.ScaleInPlace(o.Momentum)
		v.AddInPlace(p.G)
		p.W.AXPY(-o.LR, v)
	}
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	t                     int
	m, v                  map[*Param]*tensor.Matrix
}

// NewAdam constructs Adam with standard defaults for unset fields.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Matrix{}, v: map[*Param]*tensor.Matrix{},
	}
}

// Step implements Optimizer.
//
//apt:hotpath
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.W.Rows, p.W.Cols)
			v = tensor.New(p.W.Rows, p.W.Cols)
			a.m[p] = m
			a.v[p] = v
		}
		for i, g := range p.G.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / c1
			vhat := v.Data[i] / c2
			p.W.Data[i] -= a.LR * mhat / (float32(math.Sqrt(float64(vhat))) + a.Eps)
		}
	}
}
