package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients untouched (callers
	// zero them explicitly between iterations).
	Step(params []*Param)
}

// OptState is a serializable snapshot of an optimizer's internal state.
// Moment vectors are keyed positionally by the params slice handed to
// State/Restore (always Model.Params() order); a nil slice means the
// optimizer had not yet materialized that parameter's moments — lazily
// initialized optimizers must round-trip that distinction exactly, or
// a restored run would diverge from the original on the first step.
//
//apt:snapshot
type OptState struct {
	// Kind names the optimizer family ("sgd", "adam"); Restore rejects
	// a snapshot from a different family.
	Kind string
	// Step is Adam's bias-correction step count (0 for SGD).
	Step int64
	// M holds the first-moment (or momentum-velocity) vector per
	// parameter, flattened row-major.
	M [][]float32
	// V holds Adam's second-moment vector per parameter (nil for SGD).
	V [][]float32
}

// StatefulOptimizer is an Optimizer whose internal state can be
// captured into an OptState and restored bit-identically — the
// contract checkpoint/resume builds on. Both built-in optimizers
// implement it; a custom Optimizer that does not is checkpointed
// without state and restarts cold on resume.
type StatefulOptimizer interface {
	Optimizer
	// State snapshots the optimizer; params fixes the moment order.
	State(params []*Param) OptState
	// Restore installs a snapshot captured by State over the same
	// parameter list (same count and shapes).
	Restore(params []*Param, st OptState) error
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	velocity map[*Param]*tensor.Matrix
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: map[*Param]*tensor.Matrix{}}
}

// Step implements Optimizer.
//
//apt:hotpath
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			p.W.AXPY(-o.LR, p.G)
			continue
		}
		v := o.velocity[p]
		if v == nil {
			v = tensor.New(p.W.Rows, p.W.Cols)
			o.velocity[p] = v
		}
		v.ScaleInPlace(o.Momentum)
		v.AddInPlace(p.G)
		p.W.AXPY(-o.LR, v)
	}
}

// State implements StatefulOptimizer: Kind "sgd", Step 0, and one
// velocity vector per parameter (nil where momentum never
// materialized one).
func (o *SGD) State(params []*Param) OptState {
	st := OptState{Kind: "sgd", M: make([][]float32, len(params))}
	for i, p := range params {
		if v := o.velocity[p]; v != nil {
			st.M[i] = append([]float32(nil), v.Data...)
		}
	}
	return st
}

// Restore implements StatefulOptimizer.
func (o *SGD) Restore(params []*Param, st OptState) error {
	if st.Kind != "sgd" {
		return fmt.Errorf("nn: restoring %q state into SGD", st.Kind)
	}
	if len(st.M) != len(params) {
		return fmt.Errorf("nn: sgd state has %d moment slots, model has %d params", len(st.M), len(params))
	}
	vel := make(map[*Param]*tensor.Matrix, len(params))
	for i, p := range params {
		if st.M[i] == nil {
			continue
		}
		if len(st.M[i]) != p.W.Rows*p.W.Cols {
			return fmt.Errorf("nn: sgd velocity %d has %d elements, param %s has %d",
				i, len(st.M[i]), p.Name, p.W.Rows*p.W.Cols)
		}
		v := tensor.New(p.W.Rows, p.W.Cols)
		copy(v.Data, st.M[i])
		vel[p] = v
	}
	o.velocity = vel
	return nil
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	t                     int
	m, v                  map[*Param]*tensor.Matrix
}

// NewAdam constructs Adam with standard defaults for unset fields.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Matrix{}, v: map[*Param]*tensor.Matrix{},
	}
}

// State implements StatefulOptimizer: the bias-correction step count
// and both moment vectors per parameter (nil before the first Step
// touched that parameter).
func (a *Adam) State(params []*Param) OptState {
	st := OptState{
		Kind: "adam", Step: int64(a.t),
		M: make([][]float32, len(params)),
		V: make([][]float32, len(params)),
	}
	for i, p := range params {
		if m := a.m[p]; m != nil {
			st.M[i] = append([]float32(nil), m.Data...)
			st.V[i] = append([]float32(nil), a.v[p].Data...)
		}
	}
	return st
}

// Restore implements StatefulOptimizer.
func (a *Adam) Restore(params []*Param, st OptState) error {
	if st.Kind != "adam" {
		return fmt.Errorf("nn: restoring %q state into Adam", st.Kind)
	}
	if st.V == nil {
		// A never-stepped Adam encodes like SGD — every moment slot
		// absent — and the checkpoint codec canonicalizes all-absent V
		// to nil. Accept that form iff M is all-absent too.
		allNil := true
		for _, m := range st.M {
			if m != nil {
				allNil = false
				break
			}
		}
		if allNil {
			st.V = make([][]float32, len(st.M))
		}
	}
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: adam state has %d/%d moment slots, model has %d params",
			len(st.M), len(st.V), len(params))
	}
	if st.Step < 0 {
		return fmt.Errorf("nn: adam state has negative step %d", st.Step)
	}
	m := make(map[*Param]*tensor.Matrix, len(params))
	v := make(map[*Param]*tensor.Matrix, len(params))
	for i, p := range params {
		if (st.M[i] == nil) != (st.V[i] == nil) {
			return fmt.Errorf("nn: adam moments for param %d present in only one of m/v", i)
		}
		if st.M[i] == nil {
			continue
		}
		want := p.W.Rows * p.W.Cols
		if len(st.M[i]) != want || len(st.V[i]) != want {
			return fmt.Errorf("nn: adam moments %d have %d/%d elements, param %s has %d",
				i, len(st.M[i]), len(st.V[i]), p.Name, want)
		}
		mm := tensor.New(p.W.Rows, p.W.Cols)
		vv := tensor.New(p.W.Rows, p.W.Cols)
		copy(mm.Data, st.M[i])
		copy(vv.Data, st.V[i])
		m[p], v[p] = mm, vv
	}
	a.t = int(st.Step)
	a.m, a.v = m, v
	return nil
}

// Step implements Optimizer.
//
//apt:hotpath
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.W.Rows, p.W.Cols)
			v = tensor.New(p.W.Rows, p.W.Cols)
			a.m[p] = m
			a.v[p] = v
		}
		for i, g := range p.G.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mhat := m.Data[i] / c1
			vhat := v.Data[i] / c2
			p.W.Data[i] -= a.LR * mhat / (float32(math.Sqrt(float64(vhat))) + a.Eps)
		}
	}
}
