package nn

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewGraphSAGE(8, 16, 4, 2)
	m.Init(graph.NewRNG(1))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewGraphSAGE(8, 16, 4, 2)
	if err := m2.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		if p1[i].W.MaxAbsDiff(p2[i].W) != 0 {
			t.Fatalf("param %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsMismatchedArchitecture(t *testing.T) {
	m := NewGraphSAGE(8, 16, 4, 2)
	m.Init(graph.NewRNG(1))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	wrongShape := NewGraphSAGE(8, 32, 4, 2)
	if err := wrongShape.LoadParams(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted checkpoint with wrong shapes")
	}
	wrongCount := NewGraphSAGE(8, 16, 4, 3)
	if err := wrongCount.LoadParams(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted checkpoint with wrong param count")
	}
	gat := NewGAT(8, 8, 2, 4, 2)
	if err := gat.LoadParams(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("accepted checkpoint for different model family")
	}
}

func TestLoadRejectsTrailingBytes(t *testing.T) {
	m := NewGraphSAGE(8, 16, 4, 2)
	m.Init(graph.NewRNG(1))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]byte{{0}, bytes.Repeat([]byte{0xab}, 17), buf.Bytes()} {
		data := append(append([]byte(nil), buf.Bytes()...), extra...)
		m2 := NewGraphSAGE(8, 16, 4, 2)
		if err := m2.LoadParams(bytes.NewReader(data)); err == nil {
			t.Errorf("accepted checkpoint with %d trailing bytes", len(extra))
		}
	}
}

func TestLoadAcceptsVersion1(t *testing.T) {
	// A version-1 file is the version-2 layout minus the model-name
	// field: rewrite the header of a fresh save to the old version.
	m := NewGraphSAGE(8, 16, 4, 2)
	m.Init(graph.NewRNG(1))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	nameLen := int(uint32(v2[8]) | uint32(v2[9])<<8 | uint32(v2[10])<<16 | uint32(v2[11])<<24)
	v1 := append([]byte(nil), v2[:8]...)
	v1[4] = 1 // version
	v1 = append(v1, v2[12+nameLen:]...)
	m2 := NewGraphSAGE(8, 16, 4, 2)
	if err := m2.LoadParams(bytes.NewReader(v1)); err != nil {
		t.Fatalf("version-1 checkpoint rejected: %v", err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		if p1[i].W.MaxAbsDiff(p2[i].W) != 0 {
			t.Fatalf("param %d differs after v1 round trip", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m := NewGraphSAGE(4, 4, 2, 1)
	if err := m.LoadParams(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("accepted garbage checkpoint")
	}
}

func TestSaveLoadFileGAT(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.aptm")
	m := NewGAT(6, 4, 2, 3, 2)
	m.Init(graph.NewRNG(5))
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2 := NewGAT(6, 4, 2, 3, 2)
	if err := m2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.Params(), m2.Params()
	for i := range p1 {
		if p1[i].W.MaxAbsDiff(p2[i].W) != 0 {
			t.Fatalf("GAT param %d differs after file round trip", i)
		}
	}
}

func TestSumAggregatorGradients(t *testing.T) {
	g := smallGraph()
	rng := graph.NewRNG(9)
	feats := randomFeatures(g.NumNodes(), 6, rng)
	m := NewGraphSAGEWithAgg(6, 5, 3, 2, AggSum)
	m.Init(graph.NewRNG(10))
	mb := sampleBatch(g, []int{4, 4}, false, []graph.NodeID{5, 9, 30}, 4)
	x := gatherInput(feats, mb.Layer1())
	labels := []int32{0, 2, 1}
	checkModelGradients(t, m, mb, x, labels, 2e-2)
}

func TestAggregatorString(t *testing.T) {
	if AggMean.String() != "mean" || AggSum.String() != "sum" {
		t.Error("aggregator names wrong")
	}
}

// FuzzLoadParams checks the checkpoint parser never panics or
// over-allocates on corrupt input.
func FuzzLoadParams(f *testing.F) {
	m := NewGraphSAGE(4, 4, 2, 1)
	m.Init(graph.NewRNG(1))
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		target := NewGraphSAGE(4, 4, 2, 1)
		if err := target.LoadParams(bytes.NewReader(data)); err != nil {
			return
		}
		// Accepted checkpoints must leave valid shapes.
		for _, p := range target.Params() {
			if len(p.W.Data) != p.W.Rows*p.W.Cols {
				t.Fatal("accepted checkpoint corrupted shapes")
			}
		}
	})
}
