package nn

import (
	"repro/internal/sample"
	"repro/internal/tensor"
)

// Layer is one GNN layer: it computes destination embeddings from
// source embeddings over a bipartite block. Forward returns the output
// and an opaque context consumed by Backward; Backward accumulates
// parameter gradients and returns the gradient w.r.t. the layer input.
type Layer interface {
	// InDim and OutDim are the source and destination embedding widths.
	InDim() int
	OutDim() int
	// Params lists the layer's trainable parameters.
	Params() []*Param
	// Forward computes dst embeddings from src embeddings h
	// (shape [block.NumSrc(), InDim()]).
	Forward(blk *sample.Block, h *tensor.Matrix) (*tensor.Matrix, LayerCtx)
	// Backward propagates dOut (shape [NumDst, OutDim]) to dIn
	// (shape [NumSrc, InDim]), accumulating parameter gradients.
	Backward(blk *sample.Block, ctx LayerCtx, dOut *tensor.Matrix) *tensor.Matrix
	// NeedsDstInSrc reports whether the layer requires every
	// destination to appear in its block's source list (attention).
	NeedsDstInSrc() bool
}

// LayerCtx carries forward-pass intermediates to the backward pass.
type LayerCtx interface{}

// GatherLayer is implemented by layers whose layer-0 execution can read
// input features directly through an index vector (the gather-fused
// kernels), skipping the materialized tensor.Gather copy, and whose
// backward can skip the input gradient entirely (raw features are never
// trained, so dIn at layer 0 is always discarded).
type GatherLayer interface {
	Layer
	// ForwardGathered is Forward with h replaced by (feats, idx):
	// logical input row r is feats row idx[r], served fp32 or — when
	// the store's warm tier holds it — dequantized from int8. idx must
	// have blk.NumSrc() entries. A FeatSource with no quantized tier
	// makes this bit-identical to Forward on the gathered copy.
	ForwardGathered(blk *sample.Block, feats tensor.FeatSource, idx []int32) (*tensor.Matrix, LayerCtx)
	// BackwardParams is Backward minus the dIn computation: it only
	// accumulates parameter gradients. Legal exactly when the input
	// gradient would be discarded.
	BackwardParams(blk *sample.Block, ctx LayerCtx, dOut *tensor.Matrix)
	// InferGathered is the InferenceLayer forward with gather-fused
	// input: no LayerCtx retained, result owned by the caller.
	InferGathered(blk *sample.Block, feats tensor.FeatSource, idx []int32) *tensor.Matrix
}

// Activation selects the nonlinearity applied to a layer's output.
type Activation int

// Supported activations.
const (
	// ActNone leaves the output linear (final classification layers).
	ActNone Activation = iota
	// ActReLU applies max(0, x).
	ActReLU
)

func applyActivation(act Activation, x *tensor.Matrix) *tensor.Matrix {
	switch act {
	case ActReLU:
		return tensor.ReLU(x)
	default:
		return x
	}
}

func activationBackward(act Activation, out, dOut *tensor.Matrix) *tensor.Matrix {
	switch act {
	case ActReLU:
		return tensor.ReLUBackward(out, dOut)
	default:
		return dOut
	}
}
