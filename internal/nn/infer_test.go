package nn

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// inferEnv builds a small graph, sampled mini-batch, and input features
// for forward-pass tests.
func inferEnv(t testing.TB, cfg sample.Config) (*sample.MiniBatch, *tensor.Matrix, int) {
	t.Helper()
	g := graph.PreferentialAttachment(graph.GenerateConfig{NumNodes: 400, AvgDegree: 8, Seed: 3})
	smp := sample.NewSampler(g, cfg, graph.NewRNG(11))
	seeds := []graph.NodeID{1, 7, 42, 99, 100, 250, 399}
	mb := smp.Sample(seeds)
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	inDim := 24
	rng := graph.NewRNG(5)
	x := tensor.New(mb.Layer1().NumSrc(), inDim)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat32()
	}
	return mb, x, inDim
}

// TestPredictMatchesForward checks the inference-only path is
// bit-identical to the training forward pass for both model families.
func TestPredictMatchesForward(t *testing.T) {
	cases := []struct {
		name  string
		build func(inDim int) *Model
		smp   sample.Config
	}{
		{"sage", func(in int) *Model { return NewGraphSAGE(in, 16, 5, 2) },
			sample.Config{Fanouts: []int{5, 5}}},
		{"gat", func(in int) *Model { return NewGAT(in, 8, 2, 5, 2) },
			sample.Config{Fanouts: []int{5, 5}, IncludeDstInSrc: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mb, x, inDim := inferEnv(t, tc.smp)
			m := tc.build(inDim)
			m.Init(graph.NewRNG(7))
			st := m.Forward(mb, x)
			logits := m.Predict(mb, x)
			if logits.Rows != len(mb.Seeds) {
				t.Fatalf("predict rows = %d, want %d", logits.Rows, len(mb.Seeds))
			}
			if d := st.Logits.MaxAbsDiff(logits); d != 0 {
				t.Fatalf("predict differs from forward by %g", d)
			}
			tensor.Put(logits)
		})
	}
}

// TestPredictConcurrent runs Predict from many goroutines against one
// shared model; the race detector guards the read-only contract.
func TestPredictConcurrent(t *testing.T) {
	mb, x, inDim := inferEnv(t, sample.Config{Fanouts: []int{4, 4}})
	m := NewGraphSAGE(inDim, 16, 5, 2)
	m.Init(graph.NewRNG(7))
	want := m.Predict(mb, x)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 20; j++ {
				got := m.Predict(mb, x)
				d := want.MaxAbsDiff(got)
				tensor.Put(got)
				if d != 0 {
					done <- nil
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	tensor.Put(want)
}

// BenchmarkModelPredict measures the inference-only forward; with the
// tensor pool warm it should run with near-zero allocs/op, unlike the
// training forward which parks intermediates in layer contexts.
func BenchmarkModelPredict(b *testing.B) {
	mb, x, inDim := inferEnv(b, sample.Config{Fanouts: []int{10, 10}})
	m := NewGraphSAGE(inDim, 32, 8, 2)
	m.Init(graph.NewRNG(7))
	tensor.Put(m.Predict(mb, x)) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Put(m.Predict(mb, x))
	}
}

// BenchmarkModelForwardTraining is the training-forward baseline for
// BenchmarkModelPredict's allocs/op comparison.
func BenchmarkModelForwardTraining(b *testing.B) {
	mb, x, inDim := inferEnv(b, sample.Config{Fanouts: []int{10, 10}})
	m := NewGraphSAGE(inDim, 32, 8, 2)
	m.Init(graph.NewRNG(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := m.Forward(mb, x)
		_ = st
	}
}
