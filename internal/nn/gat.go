package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// GATLayer implements multi-head additive attention (Velickovic et al.):
//
//	e_uv   = LeakyReLU( aL · (W h_v) + aR · (W h_u) )
//	α_uv   = softmax_{u in N(v)}(e_uv)
//	h_v^k  = act( ||_heads Σ_u α_uv (W_k h_u) )
//
// Head outputs are concatenated. Attention requires each destination to
// see all of its sources (the paper's §3.3 point about SNP/NFP paying
// extra communication for attention models), which is why
// NeedsDstInSrc is true: the destination's own projection feeds aL.
type GATLayer struct {
	// Ws[k] projects inputs for head k; ALs[k]/ARs[k] are the
	// destination/source halves of head k's attention vector, stored as
	// [outPerHead x 1] matrices.
	Ws    []*Param
	ALs   []*Param
	ARs   []*Param
	Heads int
	Act   Activation
	// NegativeSlope of the LeakyReLU on attention logits.
	NegativeSlope float32
}

// NewGATLayer creates a GAT layer with the given head count; the output
// dimension is heads*outPerHead (concatenation).
func NewGATLayer(name string, in, outPerHead, heads int, act Activation) *GATLayer {
	l := &GATLayer{Heads: heads, Act: act, NegativeSlope: 0.2}
	for k := 0; k < heads; k++ {
		l.Ws = append(l.Ws, NewParam(fmt.Sprintf("%s.W%d", name, k), in, outPerHead))
		l.ALs = append(l.ALs, NewParam(fmt.Sprintf("%s.aL%d", name, k), outPerHead, 1))
		l.ARs = append(l.ARs, NewParam(fmt.Sprintf("%s.aR%d", name, k), outPerHead, 1))
	}
	return l
}

// InDim implements Layer.
func (l *GATLayer) InDim() int { return l.Ws[0].W.Rows }

// OutDim implements Layer (concatenated width).
func (l *GATLayer) OutDim() int { return l.Heads * l.Ws[0].W.Cols }

// OutPerHead is the width of one head.
func (l *GATLayer) OutPerHead() int { return l.Ws[0].W.Cols }

// Params implements Layer.
func (l *GATLayer) Params() []*Param {
	ps := make([]*Param, 0, 3*l.Heads)
	for k := 0; k < l.Heads; k++ {
		ps = append(ps, l.Ws[k], l.ALs[k], l.ARs[k])
	}
	return ps
}

// NeedsDstInSrc implements Layer.
func (l *GATLayer) NeedsDstInSrc() bool { return true }

// InitParams Glorot-initializes all head parameters.
func (l *GATLayer) InitParams(rng *graph.RNG) {
	for _, p := range l.Params() {
		p.GlorotInit(rng)
	}
}

type gatHeadCtx struct {
	z     *tensor.Matrix // projected sources [nSrc, dh]
	sRaw  []float32      // pre-LeakyReLU logits
	alpha []float32      // attention probabilities
}

type gatCtx struct {
	h    *tensor.Matrix    // layer input on the plain path
	src  tensor.FeatSource // the feature store view when idx is set
	idx  []int32           // non-nil: input row r is src row idx[r] (gather-fused)
	attn *GATAttnCtx
}

// ProjectHead computes head k's source projection Z = h @ W_k. The
// distributed strategies run this where the features live (SNP: on the
// source owner; NFP: per feature shard).
func (l *GATLayer) ProjectHead(k int, h *tensor.Matrix) *tensor.Matrix {
	return tensor.MatMul(h, l.Ws[k].W)
}

// ProjectHeadGathered computes Z = feats[idx] @ W_k without
// materializing the gathered rows, dequantizing warm-tier rows on the
// fly.
func (l *GATLayer) ProjectHeadGathered(k int, feats tensor.FeatSource, idx []int32) *tensor.Matrix {
	return tensor.GatherMatMulSrc(feats, idx, l.Ws[k].W)
}

// ProjectHeadBackward accumulates dW_k += hᵀ dZ and returns dH = dZ W_kᵀ.
func (l *GATLayer) ProjectHeadBackward(k int, h, dZ *tensor.Matrix) *tensor.Matrix {
	tensor.TMatMulAcc(l.Ws[k].G, h, dZ)
	return tensor.MatMulT(dZ, l.Ws[k].W)
}

// AccumulateHeadProjGrad accumulates dW_k += feats[idx]ᵀ @ dZ straight
// from the feature store, with no input gradient.
func (l *GATLayer) AccumulateHeadProjGrad(k int, feats tensor.FeatSource, idx []int32, dZ *tensor.Matrix) {
	tensor.GatherTMatMulAccSrc(l.Ws[k].G, feats, idx, dZ)
}

// headAttention runs one head's attention given the already-projected
// sources z (rows aligned with blk.Src; rows [:NumDst] are the
// destinations' own projections).
func (l *GATLayer) headAttention(k int, blk *sample.Block, z *tensor.Matrix) (*tensor.Matrix, gatHeadCtx) {
	er := tensor.MatMul(z, l.ARs[k].W) // [nSrc, 1]
	nDst := blk.NumDst()
	el := make([]float32, nDst)
	zdst := tensor.FromData(nDst, z.Cols, z.Data[:nDst*z.Cols])
	elm := tensor.MatMul(zdst, l.ALs[k].W)
	copy(el, elm.Data)
	tensor.Put(elm)
	sRaw := tensor.SDDMMAdd(blk.EdgePtr, blk.SrcIdx, el, er.Data)
	tensor.Put(er)
	s := tensor.LeakyReLUSlice(sRaw, l.NegativeSlope)
	alpha := tensor.SegmentSoftmax(blk.EdgePtr, s)
	o := tensor.SegmentWeightedSum(blk.EdgePtr, blk.SrcIdx, alpha, z)
	return o, gatHeadCtx{z: z, sRaw: sRaw, alpha: alpha}
}

// GATAttnCtx carries the attention intermediates of all heads between
// AttentionForward and AttentionBackward.
type GATAttnCtx struct {
	heads []gatHeadCtx
	out   *tensor.Matrix
}

// Out returns the post-activation layer output.
func (c *GATAttnCtx) Out() *tensor.Matrix { return c.out }

// AttentionForward runs every head's attention given the per-head
// source projections zs (each aligned with blk.Src) and returns the
// concatenated, activated output. The distributed strategies assemble
// zs from remotely computed pieces and call this where the block lives.
func (l *GATLayer) AttentionForward(blk *sample.Block, zs []*tensor.Matrix) (*tensor.Matrix, *GATAttnCtx) {
	nDst := blk.NumDst()
	dh := l.OutPerHead()
	concat := tensor.Get(nDst, l.OutDim())
	ctx := &GATAttnCtx{heads: make([]gatHeadCtx, l.Heads)}
	for k := 0; k < l.Heads; k++ {
		o, hc := l.headAttention(k, blk, zs[k])
		ctx.heads[k] = hc
		for i := 0; i < nDst; i++ {
			copy(concat.Row(i)[k*dh:(k+1)*dh], o.Row(i))
		}
		tensor.Put(o)
	}
	// Activation applied in place on the concat buffer — no extra clone.
	if l.Act == ActReLU {
		tensor.ReLUInPlace(concat)
	}
	ctx.out = concat
	return ctx.out, ctx
}

// AttentionBackward propagates dOut through activation and every
// head's attention, accumulating aL/aR gradients, and returns the
// per-head gradients w.r.t. the projections zs. The activation mask is
// fused into the per-head slice extraction, eliminating the masked
// copy of the full concatenated gradient.
func (l *GATLayer) AttentionBackward(blk *sample.Block, ctx *GATAttnCtx, dOut *tensor.Matrix) []*tensor.Matrix {
	nDst := blk.NumDst()
	dh := l.OutPerHead()
	relu := l.Act == ActReLU
	dZs := make([]*tensor.Matrix, l.Heads)
	for k := 0; k < l.Heads; k++ {
		dO := tensor.Get(nDst, dh)
		for i := 0; i < nDst; i++ {
			dr := dOut.Row(i)[k*dh : (k+1)*dh]
			dst := dO.Row(i)
			if relu {
				or := ctx.out.Row(i)[k*dh : (k+1)*dh]
				for j := range dst {
					if or[j] > 0 { // dO starts zeroed; masked entries stay 0
						dst[j] = dr[j]
					}
				}
			} else {
				copy(dst, dr)
			}
		}
		dZs[k] = l.headBackwardToProjection(k, blk, ctx.heads[k], dO)
		tensor.Put(dO)
	}
	return dZs
}

// Forward implements Layer.
func (l *GATLayer) Forward(blk *sample.Block, h *tensor.Matrix) (*tensor.Matrix, LayerCtx) {
	if h.Rows != blk.NumSrc() {
		panic(fmt.Sprintf("nn: GAT forward got %d src rows, block has %d", h.Rows, blk.NumSrc()))
	}
	zs := make([]*tensor.Matrix, l.Heads)
	for k := 0; k < l.Heads; k++ {
		zs[k] = l.ProjectHead(k, h)
	}
	out, attn := l.AttentionForward(blk, zs)
	return out, &gatCtx{h: h, attn: attn}
}

// ForwardGathered implements GatherLayer: per-head projections read the
// feature store through idx, no gathered copy.
func (l *GATLayer) ForwardGathered(blk *sample.Block, feats tensor.FeatSource, idx []int32) (*tensor.Matrix, LayerCtx) {
	if len(idx) != blk.NumSrc() {
		panic(fmt.Sprintf("nn: GAT forward got %d src indices, block has %d", len(idx), blk.NumSrc()))
	}
	if idx == nil {
		idx = []int32{} // empty block: stay on the gather-fused path
	}
	zs := make([]*tensor.Matrix, l.Heads)
	for k := 0; k < l.Heads; k++ {
		zs[k] = l.ProjectHeadGathered(k, feats, idx)
	}
	out, attn := l.AttentionForward(blk, zs)
	return out, &gatCtx{src: feats, idx: idx, attn: attn}
}

// Backward implements Layer.
func (l *GATLayer) Backward(blk *sample.Block, ctxI LayerCtx, dOut *tensor.Matrix) *tensor.Matrix {
	ctx := ctxI.(*gatCtx)
	dZs := l.AttentionBackward(blk, ctx.attn, dOut)
	var dHTotal *tensor.Matrix
	if ctx.idx != nil {
		dHTotal = tensor.Get(len(ctx.idx), l.InDim())
	} else {
		dHTotal = tensor.Get(ctx.h.Rows, l.InDim())
	}
	for k := 0; k < l.Heads; k++ {
		var dH *tensor.Matrix
		if ctx.idx != nil {
			l.AccumulateHeadProjGrad(k, ctx.src, ctx.idx, dZs[k])
			dH = tensor.MatMulT(dZs[k], l.Ws[k].W)
		} else {
			dH = l.ProjectHeadBackward(k, ctx.h, dZs[k])
		}
		dHTotal.AddInPlace(dH)
		tensor.Put(dH)
		tensor.Put(dZs[k])
		// zs[k] was created by this layer's Forward; the head ctx is done
		// with it once its gradient is propagated.
		tensor.Put(ctx.attn.heads[k].z)
	}
	return dHTotal
}

// BackwardParams implements GatherLayer: attention + projection
// parameter gradients only, no dIn and no per-head dH matrices.
func (l *GATLayer) BackwardParams(blk *sample.Block, ctxI LayerCtx, dOut *tensor.Matrix) {
	ctx := ctxI.(*gatCtx)
	dZs := l.AttentionBackward(blk, ctx.attn, dOut)
	for k := 0; k < l.Heads; k++ {
		if ctx.idx != nil {
			l.AccumulateHeadProjGrad(k, ctx.src, ctx.idx, dZs[k])
		} else {
			tensor.TMatMulAcc(l.Ws[k].G, ctx.h, dZs[k])
		}
		tensor.Put(dZs[k])
		tensor.Put(ctx.attn.heads[k].z)
	}
}

// headBackwardToProjection propagates one head's output gradient back
// to the projected features Z, accumulating attention-vector gradients.
func (l *GATLayer) headBackwardToProjection(k int, blk *sample.Block, c gatHeadCtx, dO *tensor.Matrix) *tensor.Matrix {
	dh := l.OutPerHead()
	nDst := blk.NumDst()
	dZ, dAlpha := tensor.SegmentWeightedSumBackward(blk.EdgePtr, blk.SrcIdx, c.alpha, c.z, dO)
	dS := tensor.SegmentSoftmaxBackward(blk.EdgePtr, c.alpha, dAlpha)
	dSRaw := tensor.LeakyReLUSliceBackward(c.sRaw, dS, l.NegativeSlope)
	dEl := make([]float32, nDst)
	dEr := make([]float32, blk.NumSrc())
	for i := 0; i < nDst; i++ {
		for e := blk.EdgePtr[i]; e < blk.EdgePtr[i+1]; e++ {
			dEl[i] += dSRaw[e]
			dEr[blk.SrcIdx[e]] += dSRaw[e]
		}
	}
	zdst := tensor.FromData(nDst, dh, c.z.Data[:nDst*dh])
	gl := tensor.TMatMul(zdst, tensor.FromData(nDst, 1, dEl))
	l.ALs[k].G.AddInPlace(gl)
	tensor.Put(gl)
	gr := tensor.TMatMul(c.z, tensor.FromData(blk.NumSrc(), 1, dEr))
	l.ARs[k].G.AddInPlace(gr)
	tensor.Put(gr)
	aL, aR := l.ALs[k].W.Data, l.ARs[k].W.Data
	for i := 0; i < nDst; i++ {
		row := dZ.Row(i)
		for j := 0; j < dh; j++ {
			row[j] += dEl[i] * aL[j]
		}
	}
	for i := 0; i < blk.NumSrc(); i++ {
		row := dZ.Row(i)
		for j := 0; j < dh; j++ {
			row[j] += dEr[i] * aR[j]
		}
	}
	return dZ
}
