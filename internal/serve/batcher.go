package serve

import (
	"time"

	"repro/internal/engine"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// The adaptive micro-batcher. Each inference worker runs this loop:
// block for one request, then coalesce whatever else the queue holds
// under the dual trigger — the batch closes when its deduplicated seed
// count reaches MaxBatch OR the oldest request has waited MaxDelay,
// whichever comes first. Under light load the queue is empty and the
// timer path adds at most MaxDelay; under heavy load requests pile up
// behind busy workers and batches fill to MaxBatch without ever
// touching the timer, which is what amortizes sampling and feature
// loading across requests.

// worker drives one inference worker until the request channel closes
// (shutdown) or quit closes (this worker's generation was retired by a
// model reload). A batch claimed before either signal still executes
// to completion on this generation's model — retirement never drops a
// request.
func (s *Server) worker(w *engine.InferWorker, quit chan struct{}) {
	defer s.wg.Done()
	rs := sample.NewRequestSet()
	var batch []*pending
	for {
		select {
		case <-quit:
			return
		case p, ok := <-s.reqs:
			if !ok {
				return
			}
			batch = append(batch[:0], p)
			s.fill(&batch, len(p.nodes), p.enq)
			s.runBatch(w, rs, batch)
		}
	}
}

// fill coalesces more queued requests into batch until the dual
// trigger fires. seedsHint over-counts duplicates (dedup happens at
// execution), which only makes batches close slightly early.
//
//apt:allow simclock the max-delay trigger batches real client arrivals, so it must run on the wall clock
func (s *Server) fill(batch *[]*pending, seedsHint int, oldest time.Time) {
	if seedsHint >= s.cfg.MaxBatch {
		return
	}
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for seedsHint < s.cfg.MaxBatch {
		select {
		case q, ok := <-s.reqs:
			if !ok {
				return // closing: run what we have, the loop exits next
			}
			*batch = append(*batch, q)
			seedsHint += len(q.nodes)
		default:
			// Queue drained; wait out the remaining delay budget for
			// stragglers, measured from the oldest request's enqueue.
			wait := s.cfg.MaxDelay - time.Since(oldest)
			if wait <= 0 {
				return
			}
			if timer == nil {
				timer = time.NewTimer(wait)
			} else {
				timer.Reset(wait)
			}
			select {
			case q, ok := <-s.reqs:
				if !ok {
					return
				}
				*batch = append(*batch, q)
				seedsHint += len(q.nodes)
			case <-timer.C:
				return
			}
		}
	}
}

// runBatch executes one coalesced micro-batch on worker w and
// completes every member request.
func (s *Server) runBatch(w *engine.InferWorker, rs *sample.RequestSet, batch []*pending) {
	rs.Reset()
	for _, p := range batch {
		rs.Add(p.nodes)
	}
	logits, ld := w.Infer(rs.Seeds())
	latencies := make([]time.Duration, len(batch))
	//apt:allow simclock request latency is a wall-clock serving metric by design
	now := time.Now()
	for i, p := range batch {
		rows := rs.Rows(i)
		res := make([]Result, len(p.nodes))
		for j, r := range rows {
			scores := append([]float32(nil), logits.Row(int(r))...)
			res[j] = Result{Node: p.nodes[j], Label: argmax(scores), Scores: scores}
		}
		p.res = res
		latencies[i] = now.Sub(p.enq)
		close(p.done)
	}
	tensor.Put(logits)
	s.stats.recordBatch(latencies, rs.NumSeeds(), ld)
}

// argmax returns the index of the largest score (lowest index wins
// ties, matching nn.Accuracy).
func argmax(scores []float32) int {
	best := 0
	for i, v := range scores {
		if v > scores[best] {
			best = i
		}
	}
	return best
}
