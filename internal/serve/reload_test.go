package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/graph"
	"repro/internal/nn"
)

// altModel builds a second architecture-matched model with different
// parameters, so a swap is observable in the scores.
func (f *testFixture) altModel(seed uint64) *nn.Model {
	m := nn.NewGraphSAGE(f.ds.FeatDim, 16, f.ds.Classes, 2)
	m.Init(graph.NewRNG(seed))
	return m
}

func TestReloadSwapsModel(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	defer s.Close()

	before, err := s.Predict([]graph.NodeID{5})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(f.altModel(99)); err != nil {
		t.Fatal(err)
	}
	if s.ModelVersion() != 1 {
		t.Fatalf("model version %d after one reload", s.ModelVersion())
	}
	after, err := s.Predict([]graph.NodeID{5})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range before[0].Scores {
		if before[0].Scores[i] != after[0].Scores[i] {
			same = false
		}
	}
	if same {
		t.Fatal("scores identical after swapping to a different model")
	}
}

// TestReloadDropsNoRequests hammers Predict from many goroutines while
// repeatedly hot-swapping the model: every request must complete
// without error — the blue/green handoff may never drop or fail one.
func TestReloadDropsNoRequests(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	defer s.Close()

	const clients, perClient, reloads = 8, 50, 20
	var wg sync.WaitGroup
	var completed, failed atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				v := graph.NodeID((c*perClient + i) % f.ds.Graph.NumNodes())
				res, err := s.Predict([]graph.NodeID{v, v + 1})
				if err != nil || len(res) != 2 {
					failed.Add(1)
					continue
				}
				completed.Add(1)
			}
		}(c)
	}
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		for i := 0; i < reloads; i++ {
			if err := s.Reload(f.altModel(uint64(100 + i))); err != nil {
				t.Errorf("reload %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-reloadDone
	if failed.Load() != 0 {
		t.Fatalf("%d requests failed during reloads", failed.Load())
	}
	if completed.Load() != clients*perClient {
		t.Fatalf("completed %d of %d requests", completed.Load(), clients*perClient)
	}
	if s.ModelVersion() != reloads {
		t.Fatalf("model version %d after %d reloads", s.ModelVersion(), reloads)
	}
	snap := s.Stats()
	if snap.Requests != clients*perClient {
		t.Fatalf("stats counted %d requests, want %d", snap.Requests, clients*perClient)
	}
	if snap.SimSeconds <= 0 {
		t.Fatal("sim-seconds gauge lost time across generations")
	}
}

// TestReloadCheckpointFromSnapshotAndRaw drives the file-based reload
// path with both accepted formats.
func TestReloadCheckpointFromSnapshotAndRaw(t *testing.T) {
	f := newFixture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	s := f.server(t, func(c *Config) {
		c.ReloadPath = path
		c.NewModel = func() *nn.Model {
			return nn.NewGraphSAGE(f.ds.FeatDim, 16, f.ds.Classes, 2)
		}
	})
	defer s.Close()

	// Raw nn params file.
	if err := f.altModel(5).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadCheckpoint(); err != nil {
		t.Fatalf("reload raw params: %v", err)
	}

	// Full training snapshot at the same path.
	var buf bytes.Buffer
	if err := f.altModel(6).SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	snap := &checkpoint.Snapshot{
		Strategy: "GDP",
		Seed:     3,
		Devices:  2,
		Model:    buf.Bytes(),
	}
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadCheckpoint(); err != nil {
		t.Fatalf("reload snapshot: %v", err)
	}
	if s.ModelVersion() != 2 {
		t.Fatalf("model version %d after two file reloads", s.ModelVersion())
	}

	// A corrupt file fails the reload and leaves the server serving.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.ReloadCheckpoint(); err == nil {
		t.Fatal("reloaded a corrupt checkpoint")
	}
	if _, err := s.Predict([]graph.NodeID{1}); err != nil {
		t.Fatalf("server broken after failed reload: %v", err)
	}
	if s.ModelVersion() != 2 {
		t.Fatal("failed reload bumped the model version")
	}
}

func TestReloadAfterCloseFails(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(f.altModel(4)); err != ErrServerClosed {
		t.Fatalf("reload after close: %v, want ErrServerClosed", err)
	}
}
