// Package serve implements online inference serving over a trained
// GNN model: a Server answers "predict label/embedding for node(s) X"
// requests by coalescing concurrent requests into sampled mini-batches
// (adaptive micro-batching under a dual trigger: max batch size OR max
// queue delay), executed by a pool of inference workers over the
// simulated devices. The paper's framing — strategy choice is a
// data-movement problem over sampled bipartite blocks — applies
// unchanged at serving time: the workers reuse the unified engine's
// real-mode block execution, the unified feature store, and the
// hotness caches, so hot-node requests skip feature loading entirely.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// ErrServerClosed is returned by Predict once Close has begun; queued
// and in-flight requests still complete (drain semantics).
var ErrServerClosed = errors.New("serve: server closed")

// UnknownNodeError reports a requested node ID outside the graph.
type UnknownNodeError struct {
	Node     graph.NodeID
	NumNodes int
}

// Error implements error.
func (e *UnknownNodeError) Error() string {
	return fmt.Sprintf("serve: unknown node %d (graph has %d nodes)", e.Node, e.NumNodes)
}

// Config assembles an inference server.
type Config struct {
	// Graph is the data graph the model was trained on.
	Graph *graph.Graph
	// Feats are the node input features (required: serving is real
	// execution, never accounting).
	Feats *tensor.Matrix
	// Model is the trained model; only its parameters are read.
	Model *nn.Model
	// Sampling configures neighbor sampling per request. Use the
	// training fanouts for the training-matched latency/accuracy point,
	// or Method: sample.Full for deterministic answers.
	Sampling sample.Config
	// Platform describes the simulated cluster; defaults to
	// hardware.SingleMachine8GPU.
	Platform *hardware.Platform
	// Workers is the inference pool size (one simulated device each);
	// 0 selects one worker per platform device.
	Workers int
	// MaxBatch is the micro-batcher's seed budget per mini-batch
	// (default 64). A batch closes as soon as its coalesced seed count
	// reaches MaxBatch.
	MaxBatch int
	// MaxDelay is the other half of the dual trigger (default 2ms): a
	// batch closes no later than MaxDelay after its oldest request was
	// dequeued, whatever its size.
	MaxDelay time.Duration
	// QueueCap bounds the pending-request buffer (default 1024);
	// Predict blocks while the queue is full (backpressure).
	QueueCap int
	// CacheBytes is the per-device feature-cache budget (0 disables
	// caching).
	CacheBytes int64
	// Int8CacheFrac gives that fraction of CacheBytes to an int8 warm
	// tier below the fp32 band (0 disables; must be < 1). Warm-tier
	// rows are served from device memory and dequantized inside the
	// gather kernels, trading bounded quantization error for roughly
	// 4x the cached coverage per byte.
	Int8CacheFrac float64
	// CachePolicy selects the cache rule (default cache.PolicyDegree,
	// which needs no access trace). Hotness policies require Freq.
	CachePolicy cache.Policy
	// Freq are optional per-node access frequencies (e.g. from a
	// training dry-run) for the hotness cache policies.
	Freq []int64
	Seed uint64
	// NewModel constructs an architecture-matched empty model; required
	// for ReloadCheckpoint (the checkpoint's parameters are loaded into
	// a fresh instance so a bad file can never corrupt the live model).
	NewModel func() *nn.Model
	// ReloadPath is the checkpoint file ReloadCheckpoint re-reads —
	// either a training snapshot (internal/checkpoint format) or a raw
	// parameter file. Empty disables checkpoint reloading; Reload with
	// an explicit model still works.
	ReloadPath string
}

func (c *Config) normalize() error {
	if c.Graph == nil {
		return fmt.Errorf("serve: nil graph")
	}
	if c.Feats == nil {
		return fmt.Errorf("serve: nil features (serving requires real features)")
	}
	if c.Feats.Rows != c.Graph.NumNodes() {
		return fmt.Errorf("serve: %d feature rows for %d nodes", c.Feats.Rows, c.Graph.NumNodes())
	}
	if c.Model == nil {
		return fmt.Errorf("serve: nil model")
	}
	if c.Platform == nil {
		c.Platform = hardware.SingleMachine8GPU()
	}
	if c.Workers <= 0 || c.Workers > c.Platform.NumDevices() {
		c.Workers = c.Platform.NumDevices()
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.CachePolicy != cache.PolicyDegree && c.Freq == nil {
		// Hotness policies are meaningless without an access trace.
		c.CachePolicy = cache.PolicyDegree
	}
	if c.Int8CacheFrac < 0 || c.Int8CacheFrac >= 1 {
		return fmt.Errorf("serve: Int8CacheFrac %v outside [0, 1)", c.Int8CacheFrac)
	}
	return nil
}

// Result is the prediction for one requested node.
type Result struct {
	Node graph.NodeID `json:"node"`
	// Label is the argmax class.
	Label int `json:"label"`
	// Scores are the raw per-class logits.
	Scores []float32 `json:"scores"`
}

// pending is one enqueued request.
type pending struct {
	nodes []graph.NodeID
	enq   time.Time
	res   []Result
	err   error
	done  chan struct{}
}

// Server is an online inference server. Create with New, issue
// requests with Predict (safe for concurrent use), and stop with
// Close.
type Server struct {
	cfg   Config
	store *cache.Store
	stats *Stats
	reg   *obs.Registry
	obsO  obs.Options
	spans *obs.Collector
	reqs  chan *pending

	mu     sync.RWMutex
	closed bool
	// Blue/green state under mu: inf is the live generation's worker
	// pool, quit tells the previous generation's workers to stop
	// claiming requests, retiredSimSec accumulates the simulated time
	// of retired generations, and modelVersion counts swaps.
	inf           *engine.Inferencer
	quit          chan struct{}
	retiredSimSec float64
	modelVersion  int

	reloads   *obs.Counter
	wg        sync.WaitGroup
	flushOnce sync.Once
	flushErr  error
}

// New builds the feature store (host placement + per-device caches),
// the inference worker pool, and starts the micro-batcher. Options
// attach observers: obs.WithTracePath exports a Chrome trace of the
// workers' simulated-clock spans on Close, obs.WithObserver receives
// the span tracks and the metrics registry on Close.
func New(cfg Config, opts ...obs.Option) (*Server, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	store := buildStore(&cfg)
	inf, err := newInferencer(&cfg, store, cfg.Model)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		inf:   inf,
		quit:  make(chan struct{}),
		reg:   obs.NewRegistry(),
		obsO:  obs.BuildOptions(opts...),
		reqs:  make(chan *pending, cfg.QueueCap),
	}
	// The sim-seconds gauge spans model swaps: retired generations'
	// totals accumulate and the live inferencer adds its own.
	s.stats = newStats(s.reg, cfg.MaxBatch, func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.retiredSimSec + s.inf.SimSeconds()
	})
	s.reloads = s.reg.Counter("apt_serve_reloads_total", "Live model swaps applied.")
	if s.obsO.Enabled() {
		// Span collection is opt-in: a long-running server would grow the
		// span buffers without bound for no reader.
		s.spans = obs.NewCollector()
		inf.AttachSpans(s.spans)
	}
	s.startWorkers(inf, s.quit)
	return s, nil
}

// buildStore assembles the serving feature store: host placement plus
// the per-device fp32/int8 cache tiers. The store is model-independent
// — it outlives model swaps, so a reload re-admits nothing.
func buildStore(cfg *Config) *cache.Store {
	n := cfg.Graph.NumNodes()
	dim := cfg.Feats.Cols
	store := cache.NewStore(cfg.Platform, n, dim, cfg.Feats)
	store.HostByRange()
	if cfg.CacheBytes > 0 {
		hotBudget := cfg.CacheBytes
		warmNodes := 0
		if cfg.Int8CacheFrac > 0 {
			warmBudget := int64(float64(cfg.CacheBytes) * cfg.Int8CacheFrac)
			hotBudget = cfg.CacheBytes - warmBudget
			warmNodes = int(warmBudget / tensor.QuantRowBytes(dim))
		}
		selCfg := cache.SelectConfig{
			Policy:        cfg.CachePolicy,
			Freq:          cfg.Freq,
			Graph:         cfg.Graph,
			CapacityNodes: int(hotBudget / int64(4*dim)),
			Devices:       cfg.Platform.NumDevices(),
		}
		if warmNodes > 0 {
			hot, warm := cache.SelectTiered(selCfg, warmNodes)
			for d := range hot {
				store.ConfigureCacheTiered(d, hot[d], warm[d])
			}
		} else {
			for d, l := range cache.Select(selCfg) {
				store.ConfigureCache(d, l)
			}
		}
	}
	return store
}

// newInferencer builds one generation's worker pool over the shared
// store.
func newInferencer(cfg *Config, store *cache.Store, m *nn.Model) (*engine.Inferencer, error) {
	return engine.NewInferencer(engine.InferConfig{
		Platform: cfg.Platform,
		Graph:    cfg.Graph,
		Store:    store,
		Model:    m,
		Sampling: cfg.Sampling,
		Workers:  cfg.Workers,
		Seed:     cfg.Seed,
	})
}

// startWorkers launches one goroutine per inference worker of a
// generation; quit retires them without touching the shared queue.
func (s *Server) startWorkers(inf *engine.Inferencer, quit chan struct{}) {
	for w := 0; w < inf.NumWorkers(); w++ {
		s.wg.Add(1)
		go s.worker(inf.Worker(w), quit)
	}
}

// Reload blue/green-swaps the serving model: a new generation of
// workers over m starts consuming the shared request queue, then the
// old generation is told to retire. In-flight batches complete on the
// model they started with, queued requests are picked up by the new
// generation, and no request is ever dropped — there is no instant
// with zero live workers. The feature store is shared (it holds
// features, not model state), so a swap costs worker construction,
// nothing more. m must match the architecture the server was built
// with only in input/output contract; its parameters are used as-is.
func (s *Server) Reload(m *nn.Model) error {
	if m == nil {
		return fmt.Errorf("serve: reload with nil model")
	}
	inf, err := newInferencer(&s.cfg, s.store, m)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if s.spans != nil {
		inf.AttachSpans(s.spans)
	}
	oldInf, oldQuit := s.inf, s.quit
	s.retiredSimSec += oldInf.SimSeconds()
	s.inf = inf
	s.quit = make(chan struct{})
	s.modelVersion++
	// Green before blue: the new workers are live before the old ones
	// are told to go, so the queue never loses its consumers.
	s.startWorkers(inf, s.quit)
	close(oldQuit)
	s.reloads.Inc()
	s.mu.Unlock()
	return nil
}

// ReloadCheckpoint re-reads the configured ReloadPath — a training
// snapshot or a raw parameter file — into a fresh model from
// Config.NewModel and swaps it in via Reload. The parameters land in a
// new instance first, so a corrupt or mismatched file fails the reload
// and leaves the live model untouched.
func (s *Server) ReloadCheckpoint() error {
	if s.cfg.ReloadPath == "" {
		return fmt.Errorf("serve: no reload path configured")
	}
	if s.cfg.NewModel == nil {
		return fmt.Errorf("serve: reload requires Config.NewModel")
	}
	m := s.cfg.NewModel()
	if err := checkpoint.LoadModelInto(m, s.cfg.ReloadPath); err != nil {
		return fmt.Errorf("serve: reload %s: %w", s.cfg.ReloadPath, err)
	}
	return s.Reload(m)
}

// ModelVersion counts the model swaps applied so far (0 until the
// first Reload).
func (s *Server) ModelVersion() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.modelVersion
}

// Predict answers one request: the predicted label and per-class
// scores for each requested node, in request order (duplicates
// allowed; they share one sampled computation). It blocks until the
// micro-batcher has executed the request's batch. Unknown node IDs
// fail the whole request with an UnknownNodeError before it is
// enqueued; after Close has begun it fails with ErrServerClosed.
func (s *Server) Predict(nodes []graph.NodeID) ([]Result, error) {
	return s.PredictContext(context.Background(), nodes)
}

// PredictContext is Predict under a context: cancellation abandons the
// wait and returns ctx.Err(). The request's batch still executes (the
// micro-batcher owns it by then) — only this caller stops waiting, so
// co-batched requests are unaffected.
func (s *Server) PredictContext(ctx context.Context, nodes []graph.NodeID) ([]Result, error) {
	if len(nodes) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := s.cfg.Graph.NumNodes()
	for _, v := range nodes {
		if v < 0 || int(v) >= n {
			return nil, &UnknownNodeError{Node: v, NumNodes: n}
		}
	}
	//apt:allow simclock enqueue stamp feeds the wall-clock latency metric and max-delay trigger
	p := &pending{nodes: nodes, enq: time.Now(), done: make(chan struct{})}
	// The read lock spans the enqueue so Close cannot close the channel
	// between the closed-flag check and the send: Close flips the flag
	// under the write lock, which waits out every in-flight send.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.stats.recordRejected()
		return nil, ErrServerClosed
	}
	s.reqs <- p
	s.mu.RUnlock()
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns a snapshot of the server's metrics registry.
func (s *Server) Stats() Snapshot { return s.stats.Snapshot() }

// Metrics returns the server's metrics registry (the /metrics
// endpoint renders it in the text exposition format).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// NumWorkers returns the live generation's inference pool size.
func (s *Server) NumWorkers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inf.NumWorkers()
}

// Close stops the server: new Predict calls fail with ErrServerClosed,
// while already-queued and in-flight requests drain and complete.
// Once every worker has exited, the observability options flush —
// the Chrome trace file is written and any observer sees the final
// span tracks and metrics. Close blocks until all of that is done and
// is idempotent (later calls return the first flush error).
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.mu.Unlock()
		close(s.reqs)
	} else {
		s.mu.Unlock()
	}
	s.wg.Wait()
	// The Once serializes concurrent Closes: all of them return after
	// the flush has happened, with its error.
	s.flushOnce.Do(func() { s.flushErr = s.obsO.Flush(s.spans, s.reg) })
	return s.flushErr
}
