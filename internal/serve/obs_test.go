package serve

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

// TestMetricsExposition drives a few requests and checks the /metrics
// registry exposes the serving counters in the text format, agreeing
// with the JSON snapshot.
func TestMetricsExposition(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	defer s.Close()

	for i := 0; i < 10; i++ {
		if _, err := s.Predict([]graph.NodeID{graph.NodeID(i * 7 % 600)}); err != nil {
			t.Fatal(err)
		}
	}
	exp := s.Metrics().Exposition()
	for _, want := range []string{
		"# TYPE apt_serve_requests_total counter",
		"apt_serve_requests_total 10",
		"# TYPE apt_serve_latency_us histogram",
		"apt_serve_latency_us_count 10",
		"# TYPE apt_serve_batch_seeds histogram",
		"apt_serve_uptime_seconds",
		"apt_serve_sim_seconds",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	snap := s.Stats()
	if snap.Requests != 10 {
		t.Errorf("snapshot requests = %d, want 10", snap.Requests)
	}
	if snap.Batches <= 0 || snap.Seeds <= 0 {
		t.Errorf("snapshot lost batches/seeds: %+v", snap)
	}
}

// TestPredictContext covers the context path: a live context behaves
// like Predict, a cancelled one fails fast, and cancelling mid-wait
// returns ctx.Err() without wedging the server.
func TestPredictContext(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	defer s.Close()

	if res, err := s.PredictContext(context.Background(), []graph.NodeID{1, 2}); err != nil || len(res) != 2 {
		t.Fatalf("PredictContext = %v, %v", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.PredictContext(ctx, []graph.NodeID{3}); err != context.Canceled {
		t.Fatalf("cancelled PredictContext err = %v", err)
	}
	// The server keeps answering after an abandoned wait.
	if _, err := s.Predict([]graph.NodeID{4}); err != nil {
		t.Fatal(err)
	}
}

// TestServeTraceOnClose serves with a trace path attached and checks
// Close writes a well-formed Chrome trace with per-worker inference
// spans, and that the observer callback sees the same tracks plus the
// metrics registry.
func TestServeTraceOnClose(t *testing.T) {
	f := newFixture(t)
	path := filepath.Join(t.TempDir(), "serve_trace.json")
	var sawTracks, sawMetrics bool
	obsv := observerFuncs{
		spans: func(tracks []*obs.Track) {
			for _, tr := range tracks {
				if tr.Proc == "infer" && tr.Len() > 0 {
					sawTracks = true
				}
			}
		},
		metrics: func(r *obs.Registry) {
			sawMetrics = r.Counter("apt_serve_requests_total", "").Value() > 0
		},
	}
	s := f.server(t, nil, obs.WithTracePath(path), obs.WithObserver(obsv))

	for i := 0; i < 8; i++ {
		if _, err := s.Predict([]graph.NodeID{graph.NodeID(i * 11 % 600)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !sawTracks || !sawMetrics {
		t.Errorf("observer: sawTracks=%v sawMetrics=%v", sawTracks, sawMetrics)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
	spans := 0
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("trace has no spans")
	}
}

// observerFuncs adapts two closures to obs.Observer.
type observerFuncs struct {
	spans   func([]*obs.Track)
	metrics func(*obs.Registry)
}

func (o observerFuncs) ObserveSpans(tracks []*obs.Track) { o.spans(tracks) }
func (o observerFuncs) ObserveMetrics(r *obs.Registry)   { o.metrics(r) }
