package serve

import (
	"sync"
	"time"

	"repro/internal/cache"
)

// Stats is the server's embedded metrics registry. Latencies go into a
// log-scale histogram (4 sub-buckets per power-of-two microsecond
// octave, ~19% worst-case relative error on reported percentiles),
// batch sizes into a linear histogram. All methods are safe for
// concurrent use.

// latOctaves spans 1µs .. ~2^26µs (~67s); latSub is the sub-bucket
// resolution per octave.
const (
	latOctaves = 27
	latSub     = 4
	latBuckets = latOctaves * latSub
)

// Stats accumulates serving metrics.
type Stats struct {
	mu        sync.Mutex
	start     time.Time
	requests  int64
	rejected  int64
	seeds     int64
	batches   int64
	lat       [latBuckets]int64
	latSum    time.Duration
	latMax    time.Duration
	batchHist []int64 // index = coalesced seed count, clamped to cap
	maxBatch  int64   // largest observed batch (seeds)
	load      cache.LoadStats
	simSec    func() float64
}

func newStats(maxBatch int, simSec func() float64) *Stats {
	return &Stats{
		start:     time.Now(),
		batchHist: make([]int64, maxBatch+1),
		simSec:    simSec,
	}
}

// latBucket maps a latency to its histogram bucket.
func latBucket(d time.Duration) int {
	us := d.Microseconds()
	if us < 1 {
		return 0
	}
	// Find the octave (position of the highest set bit), then split it
	// into latSub linear sub-buckets.
	oct := 0
	for v := us; v > 1; v >>= 1 {
		oct++
	}
	lo := int64(1) << oct
	sub := int((us - lo) * latSub / lo)
	b := oct*latSub + sub
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

// latBucketUpper returns the inclusive upper bound of bucket b.
func latBucketUpper(b int) time.Duration {
	oct := b / latSub
	sub := b % latSub
	lo := int64(1) << oct
	return time.Duration(lo+(lo*int64(sub+1))/latSub) * time.Microsecond
}

// recordBatch folds one executed micro-batch into the registry.
func (s *Stats) recordBatch(latencies []time.Duration, seeds int, ld cache.LoadStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches++
	s.seeds += int64(seeds)
	s.requests += int64(len(latencies))
	for _, d := range latencies {
		s.lat[latBucket(d)]++
		s.latSum += d
		if d > s.latMax {
			s.latMax = d
		}
	}
	idx := seeds
	if idx >= len(s.batchHist) {
		idx = len(s.batchHist) - 1
	}
	s.batchHist[idx]++
	if int64(seeds) > s.maxBatch {
		s.maxBatch = int64(seeds)
	}
	s.load.Add(ld)
}

// recordRejected counts a request refused after shutdown began.
func (s *Stats) recordRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// percentileLocked returns the approximate q-quantile (0 < q <= 1) of
// recorded latencies; callers hold s.mu.
func (s *Stats) percentileLocked(q float64) time.Duration {
	var total int64
	for _, c := range s.lat {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for b, c := range s.lat {
		seen += c
		if seen > rank {
			// The bucket's upper bound can overshoot the largest latency
			// actually recorded; never report past the true max.
			if u := latBucketUpper(b); u < s.latMax {
				return u
			}
			return s.latMax
		}
	}
	return s.latMax
}

// BatchBucket is one batch-size histogram entry.
type BatchBucket struct {
	Seeds int   `json:"seeds"`
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of the registry, JSON-ready for the
// /stats endpoint.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	Requests  int64   `json:"requests"`
	Rejected  int64   `json:"rejected"`
	Seeds     int64   `json:"seeds"`
	Batches   int64   `json:"batches"`
	// ThroughputRPS is completed requests per wall-clock second since
	// the server started.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanBatchSeeds is the average coalesced batch size in seeds.
	MeanBatchSeeds float64 `json:"mean_batch_seeds"`
	MaxBatchSeeds  int64   `json:"max_batch_seeds"`
	// BatchHist lists non-empty batch-size buckets.
	BatchHist []BatchBucket `json:"batch_hist"`
	// Latency percentiles over all completed requests, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// CacheHitRate is the fraction of feature reads served from the
	// worker's own GPU cache.
	CacheHitRate float64 `json:"cache_hit_rate"`
	// FeatureReads counts feature rows read per location.
	FeatureReads map[string]int64 `json:"feature_reads"`
	// SimSeconds is the simulated device time consumed by inference.
	SimSeconds float64 `json:"sim_seconds"`
}

// Snapshot captures the current registry state.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	snap := Snapshot{
		UptimeSec:     up,
		Requests:      s.requests,
		Rejected:      s.rejected,
		Seeds:         s.seeds,
		Batches:       s.batches,
		MaxBatchSeeds: s.maxBatch,
		P50Ms:         s.percentileLocked(0.50).Seconds() * 1e3,
		P95Ms:         s.percentileLocked(0.95).Seconds() * 1e3,
		P99Ms:         s.percentileLocked(0.99).Seconds() * 1e3,
		MaxMs:         s.latMax.Seconds() * 1e3,
		FeatureReads:  make(map[string]int64, 4),
	}
	if up > 0 {
		snap.ThroughputRPS = float64(s.requests) / up
	}
	if s.batches > 0 {
		snap.MeanBatchSeeds = float64(s.seeds) / float64(s.batches)
	}
	if s.requests > 0 {
		snap.MeanMs = (s.latSum / time.Duration(s.requests)).Seconds() * 1e3
	}
	for sz, c := range s.batchHist {
		if c > 0 {
			snap.BatchHist = append(snap.BatchHist, BatchBucket{Seeds: sz, Count: c})
		}
	}
	var totalReads int64
	for loc, n := range s.load.Nodes {
		if n > 0 {
			snap.FeatureReads[cache.Location(loc).String()] = n
		}
		totalReads += n
	}
	if totalReads > 0 {
		snap.CacheHitRate = float64(s.load.Nodes[cache.LocGPU]) / float64(totalReads)
	}
	if s.simSec != nil {
		snap.SimSeconds = s.simSec()
	}
	return snap
}
