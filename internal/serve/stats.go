package serve

import (
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Stats is the server's metrics facade, built on the shared obs
// registry: every serving metric is an apt_serve_* counter, gauge, or
// histogram, so the same numbers back both the JSON /stats snapshot
// and the text-exposition /metrics endpoint. Latencies go into the
// registry's log-scale histogram (microsecond octaves, ~19% worst-case
// relative error on reported percentiles), batch sizes into a linear
// one bucket per seed count. All methods are safe for concurrent use.
type Stats struct {
	reg        *obs.Registry
	start      time.Time
	requests   *obs.Counter
	rejected   *obs.Counter
	seeds      *obs.Counter
	batches    *obs.Counter
	latUs      *obs.Histogram
	batchSeeds *obs.Histogram
	reads      [cache.NumLocations]*obs.Counter
	simSec     func() float64
}

// newStats builds the serving metrics registry.
//
//apt:allow simclock serving uptime and latency are wall-clock metrics by design; training determinism is unaffected
func newStats(reg *obs.Registry, maxBatch int, simSec func() float64) *Stats {
	s := &Stats{
		reg:      reg,
		start:    time.Now(),
		requests: reg.Counter("apt_serve_requests_total", "Completed predict requests."),
		rejected: reg.Counter("apt_serve_rejected_total", "Requests refused after shutdown began."),
		seeds:    reg.Counter("apt_serve_seeds_total", "Seed nodes executed (deduplicated per batch)."),
		batches:  reg.Counter("apt_serve_batches_total", "Coalesced micro-batches executed."),
		latUs: reg.LogHistogram("apt_serve_latency_us",
			"Request latency, microseconds, enqueue to completion."),
		batchSeeds: reg.LinearHistogram("apt_serve_batch_seeds",
			"Coalesced batch size in seeds.", maxBatch),
		simSec: simSec,
	}
	for loc := range s.reads {
		s.reads[loc] = reg.Counter(
			"apt_serve_feature_reads_"+locMetricName(cache.Location(loc))+"_total",
			"Feature rows served from "+cache.Location(loc).String()+".")
	}
	reg.GaugeFunc("apt_serve_uptime_seconds", "Wall-clock seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	if simSec != nil {
		reg.GaugeFunc("apt_serve_sim_seconds", "Simulated device seconds consumed by inference.", simSec)
	}
	return s
}

// locMetricName turns a cache location into a metric-name fragment
// (metric names cannot carry the '-' of Location.String()).
func locMetricName(l cache.Location) string {
	switch l {
	case cache.LocGPU:
		return "gpu"
	case cache.LocGPUQ:
		return "gpu_int8"
	case cache.LocPeerGPU:
		return "peer_gpu"
	case cache.LocLocalCPU:
		return "local_cpu"
	default:
		return "remote_cpu"
	}
}

// recordBatch folds one executed micro-batch into the registry.
func (s *Stats) recordBatch(latencies []time.Duration, seeds int, ld cache.LoadStats) {
	s.batches.Inc()
	s.seeds.Add(int64(seeds))
	s.requests.Add(int64(len(latencies)))
	for _, d := range latencies {
		s.latUs.Observe(d.Microseconds())
	}
	s.batchSeeds.Observe(int64(seeds))
	for loc, n := range ld.Nodes {
		if n > 0 {
			s.reads[loc].Add(n)
		}
	}
}

// recordRejected counts a request refused after shutdown began.
func (s *Stats) recordRejected() { s.rejected.Inc() }

// BatchBucket is one batch-size histogram entry.
type BatchBucket struct {
	Seeds int   `json:"seeds"`
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time copy of the registry, JSON-ready for the
// /stats endpoint.
type Snapshot struct {
	UptimeSec float64 `json:"uptime_sec"`
	Requests  int64   `json:"requests"`
	Rejected  int64   `json:"rejected"`
	Seeds     int64   `json:"seeds"`
	Batches   int64   `json:"batches"`
	// ThroughputRPS is completed requests per wall-clock second since
	// the server started.
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanBatchSeeds is the average coalesced batch size in seeds.
	MeanBatchSeeds float64 `json:"mean_batch_seeds"`
	MaxBatchSeeds  int64   `json:"max_batch_seeds"`
	// BatchHist lists non-empty batch-size buckets.
	BatchHist []BatchBucket `json:"batch_hist"`
	// Latency percentiles over all completed requests, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
	// CacheHitRate is the fraction of feature reads served from the
	// worker's own GPU cache, either tier (fp32 or int8).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// FeatureReads counts feature rows read per location.
	FeatureReads map[string]int64 `json:"feature_reads"`
	// SimSeconds is the simulated device time consumed by inference.
	SimSeconds float64 `json:"sim_seconds"`
}

// Snapshot captures the current registry state.
//
//apt:allow simclock uptime in the snapshot is a wall-clock serving metric by design
func (s *Stats) Snapshot() Snapshot {
	up := time.Since(s.start).Seconds()
	snap := Snapshot{
		UptimeSec:     up,
		Requests:      s.requests.Value(),
		Rejected:      s.rejected.Value(),
		Seeds:         s.seeds.Value(),
		Batches:       s.batches.Value(),
		MaxBatchSeeds: s.batchSeeds.Max(),
		P50Ms:         float64(s.latUs.Quantile(0.50)) / 1e3,
		P95Ms:         float64(s.latUs.Quantile(0.95)) / 1e3,
		P99Ms:         float64(s.latUs.Quantile(0.99)) / 1e3,
		MaxMs:         float64(s.latUs.Max()) / 1e3,
		MeanMs:        s.latUs.Mean() / 1e3,
		FeatureReads:  make(map[string]int64, len(s.reads)),
	}
	if up > 0 {
		snap.ThroughputRPS = float64(snap.Requests) / up
	}
	snap.MeanBatchSeeds = s.batchSeeds.Mean()
	s.batchSeeds.NonEmptyBuckets(func(upper, count int64) {
		snap.BatchHist = append(snap.BatchHist, BatchBucket{Seeds: int(upper), Count: count})
	})
	var totalReads int64
	for loc, c := range s.reads {
		if n := c.Value(); n > 0 {
			snap.FeatureReads[cache.Location(loc).String()] = n
			totalReads += n
		}
	}
	if totalReads > 0 {
		hits := s.reads[cache.LocGPU].Value() + s.reads[cache.LocGPUQ].Value()
		snap.CacheHitRate = float64(hits) / float64(totalReads)
	}
	if s.simSec != nil {
		snap.SimSeconds = s.simSec()
	}
	return snap
}
