package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/sample"
	"repro/internal/tensor"
)

// testFixture builds a small dataset and a (randomly initialized)
// model for serving tests. Full sampling makes every prediction
// deterministic, so batched and single-request answers must agree
// bit-for-bit.
type testFixture struct {
	ds    *dataset.Dataset
	model *nn.Model
	smp   sample.Config
}

func newFixture(t testing.TB) *testFixture {
	t.Helper()
	ds := dataset.Build(dataset.Spec{
		Name: "serve-test", Abbr: "ST",
		NumNodes: 600, AvgDegree: 8, FeatDim: 16, Classes: 5,
		SkewA: 0.45, HomophilyDegree: 4, TrainFraction: 0.3, Seed: 21,
	}, true)
	m := nn.NewGraphSAGE(ds.FeatDim, 16, ds.Classes, 2)
	m.Init(graph.NewRNG(7))
	return &testFixture{
		ds:    ds,
		model: m,
		smp:   sample.Config{Fanouts: []int{0, 0}, Method: sample.Full},
	}
}

func (f *testFixture) server(t testing.TB, mutate func(*Config), opts ...obs.Option) *Server {
	t.Helper()
	cfg := Config{
		Graph:    f.ds.Graph,
		Feats:    f.ds.Feats,
		Model:    f.model,
		Sampling: f.smp,
		Platform: hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 2),
		MaxBatch: 32,
		MaxDelay: time.Millisecond,
		Seed:     3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// direct computes the reference answer for one node with a fresh
// sampler and the inference-only forward, no batching involved.
func (f *testFixture) direct(t testing.TB, v graph.NodeID) []float32 {
	t.Helper()
	smp := sample.NewSampler(f.ds.Graph, f.smp, graph.NewRNG(99))
	mb := smp.Sample([]graph.NodeID{v})
	x := tensor.Gather(f.ds.Feats, mb.Layer1().Src)
	logits := f.model.Predict(mb, x)
	defer tensor.Put(logits)
	return append([]float32(nil), logits.Row(0)...)
}

// TestBatchedEqualsSingle fires many concurrent single-node requests
// (forcing coalesced batches) and checks every answer is bit-identical
// to unbatched inference, duplicates included.
func TestBatchedEqualsSingle(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	defer s.Close()

	nodes := []graph.NodeID{0, 1, 17, 17, 99, 230, 599, 42, 1, 0}
	want := make(map[graph.NodeID][]float32)
	for _, v := range nodes {
		if _, ok := want[v]; !ok {
			want[v] = f.direct(t, v)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for rep := 0; rep < 8; rep++ {
		for _, v := range nodes {
			wg.Add(1)
			go func(v graph.NodeID) {
				defer wg.Done()
				res, err := s.Predict([]graph.NodeID{v})
				if err != nil {
					errs <- err
					return
				}
				for i, w := range want[v] {
					if res[0].Scores[i] != w {
						errs <- errors.New("batched scores differ from single-request inference")
						return
					}
				}
			}(v)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestMultiNodeRequestWithDuplicates checks one request carrying
// duplicate node IDs gets per-position answers, duplicates equal.
func TestMultiNodeRequestWithDuplicates(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	defer s.Close()

	req := []graph.NodeID{7, 7, 300, 7}
	res, err := s.Predict(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(req) {
		t.Fatalf("got %d results for %d nodes", len(res), len(req))
	}
	for i, v := range req {
		if res[i].Node != v {
			t.Fatalf("result %d is for node %d, want %d", i, res[i].Node, v)
		}
		want := f.direct(t, v)
		for j, w := range want {
			if res[i].Scores[j] != w {
				t.Fatalf("node %d scores differ from single-request inference", v)
			}
		}
	}
	if res[0].Label != res[1].Label || res[0].Label != res[3].Label {
		t.Fatal("duplicate nodes got different labels")
	}
}

// TestUnknownNode checks out-of-range IDs are rejected with the typed
// error before reaching the queue.
func TestUnknownNode(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)
	defer s.Close()

	_, err := s.Predict([]graph.NodeID{0, graph.NodeID(f.ds.Graph.NumNodes())})
	var ue *UnknownNodeError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnknownNodeError", err)
	}
	if int(ue.Node) != f.ds.Graph.NumNodes() {
		t.Fatalf("error names node %d", ue.Node)
	}
	if _, err := s.Predict([]graph.NodeID{-1}); err == nil {
		t.Fatal("negative node accepted")
	}
	if _, err := s.Predict(nil); err != nil {
		t.Fatalf("empty request errored: %v", err)
	}
}

// TestMicroBatchingCoalesces floods one worker and checks batches
// bigger than one request actually formed.
func TestMicroBatchingCoalesces(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, func(c *Config) {
		c.Platform = hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 1)
		c.MaxDelay = 5 * time.Millisecond
	})
	defer s.Close()

	const n = 128
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Predict([]graph.NodeID{graph.NodeID(i % 600)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Requests != n {
		t.Fatalf("requests = %d, want %d", st.Requests, n)
	}
	if st.Batches >= st.Requests {
		t.Fatalf("no coalescing: %d batches for %d requests", st.Batches, st.Requests)
	}
	if st.MaxBatchSeeds <= 1 {
		t.Fatalf("max batch seeds = %d, want > 1", st.MaxBatchSeeds)
	}
	if st.P50Ms <= 0 || st.P95Ms < st.P50Ms || st.P99Ms < st.P95Ms {
		t.Fatalf("bad percentiles: p50=%v p95=%v p99=%v", st.P50Ms, st.P95Ms, st.P99Ms)
	}
	if st.ThroughputRPS <= 0 {
		t.Fatal("zero throughput")
	}
}

// TestFullCacheHitsEverything gives every device a cache big enough
// for the whole feature matrix; every read must then be a GPU hit.
func TestFullCacheHitsEverything(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, func(c *Config) {
		c.CacheBytes = int64(f.ds.Graph.NumNodes()) * int64(4*f.ds.FeatDim)
	})
	defer s.Close()

	for i := 0; i < 20; i++ {
		if _, err := s.Predict([]graph.NodeID{graph.NodeID(i * 13 % 600)}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheHitRate != 1.0 {
		t.Fatalf("cache hit rate = %v, want 1.0 (reads: %v)", st.CacheHitRate, st.FeatureReads)
	}
	if st.SimSeconds <= 0 {
		t.Fatal("no simulated time recorded")
	}
}

// TestCloseDrainsAndRejects closes the server while requests are in
// flight: every Predict must either complete with a valid answer or
// fail with ErrServerClosed, and Predict after Close always fails.
func TestCloseDrainsAndRejects(t *testing.T) {
	f := newFixture(t)
	s := f.server(t, nil)

	const n = 200
	var wg sync.WaitGroup
	var completed, rejected atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := s.Predict([]graph.NodeID{graph.NodeID(i % 600)})
			switch {
			case err == nil:
				if len(res) != 1 || len(res[0].Scores) != f.ds.Classes {
					t.Error("drained request returned a malformed result")
				}
				completed.Add(1)
			case errors.Is(err, ErrServerClosed):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
	}
	time.Sleep(500 * time.Microsecond) // let some requests enqueue
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if completed.Load()+rejected.Load() != n {
		t.Fatalf("completed %d + rejected %d != %d", completed.Load(), rejected.Load(), n)
	}
	if _, err := s.Predict([]graph.NodeID{1}); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-close Predict: %v, want ErrServerClosed", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestConfigValidation exercises New's error paths.
func TestConfigValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := New(Config{Feats: f.ds.Feats, Model: f.model, Sampling: f.smp}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := New(Config{Graph: f.ds.Graph, Model: f.model, Sampling: f.smp}); err == nil {
		t.Fatal("nil features accepted")
	}
	if _, err := New(Config{Graph: f.ds.Graph, Feats: f.ds.Feats, Sampling: f.smp}); err == nil {
		t.Fatal("nil model accepted")
	}
}
