package device

import (
	"sync"
	"testing"

	"repro/internal/hardware"
)

func TestNewGroupTopology(t *testing.T) {
	g := NewGroup(hardware.FourMachines4GPU())
	if len(g.Devices) != 16 {
		t.Fatalf("got %d devices", len(g.Devices))
	}
	if g.Devices[5].Machine != 1 || g.Devices[5].ID != 5 {
		t.Errorf("device 5 = %+v", g.Devices[5])
	}
}

func TestChargeConcurrent(t *testing.T) {
	g := NewGroup(hardware.SingleMachine8GPU())
	d := g.Devices[0]
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Charge(StageLoad, 0.001)
		}()
	}
	wg.Wait()
	if e := d.Elapsed(StageLoad); e < 0.0999 || e > 0.1001 {
		t.Errorf("concurrent charges lost: %v", e)
	}
}

func TestMemoryLifecycle(t *testing.T) {
	g := NewGroup(hardware.SingleMachine8GPU())
	d := g.Devices[0]
	d.Alloc(100)
	d.Alloc(200)
	if d.MemUsed() != 300 {
		t.Errorf("MemUsed = %d", d.MemUsed())
	}
	d.Free(300)
	if d.MemUsed() != 0 || d.OOM() {
		t.Error("free accounting wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative memory did not panic")
		}
	}()
	d.Free(1)
}

func TestOOMSticky(t *testing.T) {
	g := NewGroup(hardware.SingleMachine8GPU())
	d := g.Devices[0]
	d.Alloc(d.MemUsed() + 17*hardware.GB)
	if !d.OOM() {
		t.Fatal("no OOM at 17GB on 16GB device")
	}
	d.Free(17 * hardware.GB)
	if !d.OOM() {
		t.Error("OOM flag must be sticky (the overflow happened)")
	}
}

func TestStageMaxAcrossDevices(t *testing.T) {
	g := NewGroup(hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 3))
	g.Devices[0].Charge(StageTrain, 1)
	g.Devices[1].Charge(StageTrain, 5)
	g.Devices[2].Charge(StageTrain, 3)
	g.Devices[2].Charge(StageLoad, 9)
	mx := g.StageMax(StageTrain, StageLoad)
	if mx[StageTrain] != 5 || mx[StageLoad] != 9 {
		t.Errorf("StageMax = %v", mx)
	}
}
