// Package device provides the simulated GPU runtime: each Device owns
// a simulated clock split into named stage buckets (sample, build,
// load, train — the paper's Eq. 2 decomposition) and a device-memory
// arena with capacity accounting. One goroutine drives each device
// during parallel execution; a Device's methods are safe for use only
// from its owning goroutine unless noted.
package device

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/hardware"
)

// Stage names matching the paper's cost decomposition T = T_build +
// T_load + T_shuffle + T_train (sampling is reported inside T_build's
// "sampling" bucket in the figures).
const (
	StageSample  = "sample"
	StageBuild   = "build"   // permute + subgraph shuffle
	StageLoad    = "load"    // input feature loading
	StageTrain   = "train"   // model compute
	StageShuffle = "shuffle" // hidden-embedding shuffle (reported inside train in figures)
)

// Device is one simulated GPU.
type Device struct {
	ID      int
	Machine int

	mu      sync.Mutex
	clock   map[string]float64
	memUsed int64
	memCap  int64
	// oom records that an allocation exceeded capacity (the paper's
	// Fig. 10 NFP observation); execution continues but the flag is
	// surfaced in results.
	oom bool
}

// Group is the set of devices for one run.
type Group struct {
	Platform *hardware.Platform
	Devices  []*Device
}

// NewGroup creates one Device per GPU of the platform.
func NewGroup(p *hardware.Platform) *Group {
	g := &Group{Platform: p}
	for d := 0; d < p.NumDevices(); d++ {
		g.Devices = append(g.Devices, &Device{
			ID:      d,
			Machine: p.MachineOf(d),
			clock:   map[string]float64{},
			memCap:  p.GPUMemBytes,
		})
	}
	return g
}

// Charge adds secs of simulated time to the named stage bucket.
// Safe for concurrent use. Called for every kernel and collective on
// the training loop.
//
//apt:hotpath
func (d *Device) Charge(stage string, secs float64) {
	d.mu.Lock()
	d.clock[stage] += secs
	d.mu.Unlock()
}

// Elapsed returns the accumulated simulated seconds for a stage.
func (d *Device) Elapsed(stage string) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock[stage]
}

// TotalElapsed sums all stage buckets. Buckets are added in sorted
// stage order: float addition does not associate, so summing in map
// iteration order would make the total's low bits vary run to run and
// break the deterministic-trace guarantee (caught by aptlint/detrange).
func (d *Device) TotalElapsed() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	stages := make([]string, 0, len(d.clock))
	for s := range d.clock {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	var t float64
	for _, s := range stages {
		t += d.clock[s]
	}
	return t
}

// ResetClock clears all stage buckets (between epochs or trials).
func (d *Device) ResetClock() {
	d.mu.Lock()
	d.clock = map[string]float64{}
	d.mu.Unlock()
}

// Alloc reserves n bytes of device memory, setting the OOM flag if the
// arena overflows (allocation still proceeds; the simulation keeps
// running so the overflow can be reported like the paper's Fig. 10).
func (d *Device) Alloc(n int64) {
	d.mu.Lock()
	d.memUsed += n
	if d.memUsed > d.memCap {
		d.oom = true
	}
	d.mu.Unlock()
}

// Free releases n bytes.
func (d *Device) Free(n int64) {
	d.mu.Lock()
	d.memUsed -= n
	if d.memUsed < 0 {
		panic(fmt.Sprintf("device %d: negative memory", d.ID))
	}
	d.mu.Unlock()
}

// MemUsed returns current arena usage.
func (d *Device) MemUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memUsed
}

// OOM reports whether any allocation exceeded device memory.
func (d *Device) OOM() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.oom
}

// StageMax returns, for each named stage, the maximum accumulated time
// across devices — the synchronous-execution epoch decomposition.
func (g *Group) StageMax(stages ...string) map[string]float64 {
	out := map[string]float64{}
	for _, s := range stages {
		for _, d := range g.Devices {
			if e := d.Elapsed(s); e > out[s] {
				out[s] = e
			}
		}
	}
	return out
}

// AnyOOM reports whether any device overflowed its memory.
func (g *Group) AnyOOM() bool {
	for _, d := range g.Devices {
		if d.OOM() {
			return true
		}
	}
	return false
}

// ResetClocks clears every device's clock.
func (g *Group) ResetClocks() {
	for _, d := range g.Devices {
		d.ResetClock()
	}
}
