package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// EdgeListOptions configures text edge-list parsing.
type EdgeListOptions struct {
	// Undirected adds each edge in both directions (the common case
	// for SNAP-style social-network files).
	Undirected bool
	// Comment marks lines to skip when they start with this prefix
	// (default "#").
	Comment string
	// DropSelfLoops removes u->u edges (default behavior of Build).
	DropSelfLoops bool
}

// ReadEdgeList parses a whitespace-separated "src dst" text edge list
// (the format SNAP and OGB distribute graphs in) into a CSR graph.
// Node IDs must be non-negative integers; the graph spans [0, maxID].
// Unknown tokens or malformed lines produce an error with the line
// number.
func ReadEdgeList(r io.Reader, opts EdgeListOptions) (*Graph, error) {
	if opts.Comment == "" {
		opts.Comment = "#"
	}
	type rawEdge struct{ u, v int64 }
	var edges []rawEdge
	var maxID int64 = -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, opts.Comment) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: want 'src dst', got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: edge list line %d: negative node ID", lineNo)
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		edges = append(edges, rawEdge{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: edge list: %w", err)
	}
	if maxID >= 1<<31 {
		return nil, fmt.Errorf("graph: node ID %d exceeds int32", maxID)
	}
	b := NewBuilder(int(maxID + 1))
	for _, e := range edges {
		if opts.Undirected {
			b.AddUndirected(NodeID(e.u), NodeID(e.v))
		} else {
			b.AddEdge(NodeID(e.u), NodeID(e.v))
		}
	}
	return b.Build(opts.DropSelfLoops), nil
}

// WriteEdgeList emits the graph as a "src dst" text edge list (each
// directed edge once).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.NumNodes(), g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
