package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
1 0
2 0

3 1
`
	g, err := ReadEdgeList(strings.NewReader(in), EdgeListOptions{DropSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Errorf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d", g.Degree(0))
	}
}

func TestReadEdgeListUndirected(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), EdgeListOptions{Undirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"abc def\n",
		"1\n",
		"-1 2\n",
		"1 xyz\n",
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c), EdgeListOptions{}); err == nil {
			t.Errorf("accepted malformed input %q", c)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := PreferentialAttachment(GenerateConfig{NumNodes: 200, AvgDegree: 6, Seed: 3})
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, EdgeListOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !csrEqual(g, g2) {
		t.Error("edge-list round trip changed the graph")
	}
}

func TestReadEdgeListCustomComment(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("% skip\n0 1\n"), EdgeListOptions{Comment: "%"})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}
