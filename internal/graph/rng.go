package graph

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (SplitMix64 seeded xoshiro256**). Every randomized component in this
// repository (graph generation, sampling, weight init) takes an explicit
// *RNG so that runs are reproducible across machines and goroutine
// schedules.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 to expand the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("graph: RNG.Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method.
	v := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, v)
	if lo < v {
		thresh := -v % v
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, v)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat32 returns a standard normal variate using the polar method.
func (r *RNG) NormFloat32() float32 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return float32(u * math.Sqrt(-2*math.Log(s)/s))
		}
	}
}

// State returns the generator's xoshiro256** state words — its exact
// position in the random stream. Together with SetState it lets a
// checkpoint capture and restore the stream so a resumed run draws the
// identical continuation (see internal/checkpoint).
func (r *RNG) State() [4]uint64 { return r.s }

// SetState repositions the generator at a state captured by State. The
// all-zero state is xoshiro's degenerate fixed point (the stream would
// be constant zero); NewRNG can never produce it, so SetState rejects
// it by leaving the generator untouched and returning false.
func (r *RNG) SetState(s [4]uint64) bool {
	if s == ([4]uint64{}) {
		return false
	}
	r.s = s
	return true
}

// Split derives an independent generator; convenient for handing one
// stream per worker without sharing mutable state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// Shuffle permutes the first n elements addressed by swap uniformly.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
