// Package graph provides the in-memory graph substrate used throughout
// APT-Go: a compressed-sparse-row (CSR) topology, deterministic random
// generators for synthetic datasets, builders, statistics, and binary
// serialization.
//
// Node identifiers are int32 (the paper's graphs have <2^31 nodes) and
// edge offsets are int64 (edge counts can exceed 2^31).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node in the global graph.
type NodeID = int32

// Graph is a directed graph in CSR form. For GNN usage the CSR stores,
// for each destination node, its in-neighbors (message sources): row v
// lists the nodes u with an edge u->v, matching the neighbor set N(v)
// aggregated by Eq. (1) of the paper.
//
// A Graph is immutable after construction and safe for concurrent reads.
type Graph struct {
	// Indptr has length NumNodes()+1; neighbors of v are
	// Indices[Indptr[v]:Indptr[v+1]].
	Indptr []int64
	// Indices holds concatenated adjacency lists.
	Indices []NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.Indptr) - 1 }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int64 { return g.Indptr[len(g.Indptr)-1] }

// Degree returns the in-degree (neighbor count) of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.Indptr[v+1] - g.Indptr[v])
}

// Neighbors returns the neighbor slice of v. The slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.Indices[g.Indptr[v]:g.Indptr[v+1]]
}

// Validate checks structural invariants and returns a descriptive error
// if any is violated.
func (g *Graph) Validate() error {
	if len(g.Indptr) == 0 {
		return fmt.Errorf("graph: empty indptr")
	}
	if g.Indptr[0] != 0 {
		return fmt.Errorf("graph: indptr[0] = %d, want 0", g.Indptr[0])
	}
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		if g.Indptr[v+1] < g.Indptr[v] {
			return fmt.Errorf("graph: indptr not monotone at node %d", v)
		}
	}
	if g.Indptr[n] != int64(len(g.Indices)) {
		return fmt.Errorf("graph: indptr[%d] = %d, want len(indices) = %d",
			n, g.Indptr[n], len(g.Indices))
	}
	for i, u := range g.Indices {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("graph: indices[%d] = %d out of range [0,%d)", i, u, n)
		}
	}
	return nil
}

// Reverse returns the transposed graph (edges u->v become v->u). For a
// GNN CSR of in-neighbors, the reverse lists out-neighbors, which is
// what edge-cut partition refinement and 1-hop cache expansion need.
func (g *Graph) Reverse() *Graph {
	n := g.NumNodes()
	indptr := make([]int64, n+1)
	for _, u := range g.Indices {
		indptr[u+1]++
	}
	for v := 0; v < n; v++ {
		indptr[v+1] += indptr[v]
	}
	indices := make([]NodeID, len(g.Indices))
	cursor := make([]int64, n)
	copy(cursor, indptr[:n])
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(NodeID(v)) {
			indices[cursor[u]] = NodeID(v)
			cursor[u]++
		}
	}
	return &Graph{Indptr: indptr, Indices: indices}
}

// Builder accumulates edges and produces a CSR Graph. Duplicate edges
// are merged and adjacency lists are sorted for deterministic layouts.
type Builder struct {
	numNodes int
	srcs     []NodeID
	dsts     []NodeID
}

// NewBuilder creates a builder for a graph with numNodes nodes.
func NewBuilder(numNodes int) *Builder {
	return &Builder{numNodes: numNodes}
}

// AddEdge records a directed edge u->v (u becomes an in-neighbor of v).
func (b *Builder) AddEdge(u, v NodeID) {
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
}

// AddUndirected records both u->v and v->u.
func (b *Builder) AddUndirected(u, v NodeID) {
	b.AddEdge(u, v)
	b.AddEdge(v, u)
}

// NumPendingEdges reports how many (possibly duplicate) edges have been
// added so far.
func (b *Builder) NumPendingEdges() int { return len(b.srcs) }

// Build produces the CSR graph, merging duplicates and dropping
// self-loops if dropSelfLoops is set.
func (b *Builder) Build(dropSelfLoops bool) *Graph {
	n := b.numNodes
	indptr := make([]int64, n+1)
	for i, v := range b.dsts {
		if dropSelfLoops && b.srcs[i] == v {
			continue
		}
		indptr[v+1]++
	}
	for v := 0; v < n; v++ {
		indptr[v+1] += indptr[v]
	}
	indices := make([]NodeID, indptr[n])
	cursor := make([]int64, n)
	copy(cursor, indptr[:n])
	for i, v := range b.dsts {
		u := b.srcs[i]
		if dropSelfLoops && u == v {
			continue
		}
		indices[cursor[v]] = u
		cursor[v]++
	}
	// Sort each adjacency list and dedup in place.
	out := make([]NodeID, 0, len(indices))
	newIndptr := make([]int64, n+1)
	for v := 0; v < n; v++ {
		row := indices[indptr[v]:indptr[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		var last NodeID = -1
		for _, u := range row {
			if u != last {
				out = append(out, u)
				last = u
			}
		}
		newIndptr[v+1] = int64(len(out))
	}
	g := &Graph{Indptr: newIndptr, Indices: out}
	return g
}

// FromCSR wraps pre-built CSR arrays into a Graph after validation.
func FromCSR(indptr []int64, indices []NodeID) (*Graph, error) {
	g := &Graph{Indptr: indptr, Indices: indices}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
