package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(1, 0)
	b.AddEdge(2, 0)
	b.AddEdge(3, 1)
	b.AddEdge(2, 0) // duplicate
	b.AddEdge(0, 0) // self loop
	g := b.Build(true)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3 (dup and self-loop dropped)", got)
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want [1 2]", nb)
	}
	if got := g.Degree(2); got != 0 {
		t.Errorf("Degree(2) = %d, want 0", got)
	}
}

func TestBuilderKeepSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(1, 0)
	g := b.Build(false)
	if got := g.NumEdges(); got != 2 {
		t.Errorf("NumEdges = %d, want 2", got)
	}
}

func TestReverse(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g := b.Build(true)
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatalf("reverse Validate: %v", err)
	}
	if got := r.Degree(0); got != 2 {
		t.Errorf("reverse Degree(0) = %d, want 2", got)
	}
	rr := r.Reverse()
	if !csrEqual(g, rr) {
		t.Errorf("double reverse != original")
	}
}

func csrEqual(a, b *Graph) bool {
	if len(a.Indptr) != len(b.Indptr) || len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indptr {
		if a.Indptr[i] != b.Indptr[i] {
			return false
		}
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			return false
		}
	}
	return true
}

func TestReverseIsInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := ErdosRenyi(GenerateConfig{NumNodes: 50, AvgDegree: 6, Seed: seed})
		return csrEqual(g, g.Reverse().Reverse())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestReverseEdgeCountPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		g := PreferentialAttachment(GenerateConfig{NumNodes: 80, AvgDegree: 4, Seed: seed})
		return g.NumEdges() == g.Reverse().NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(GenerateConfig{NumNodes: 1000, AvgDegree: 8, Seed: 1})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := ComputeDegreeStats(g)
	if st.Mean < 4 || st.Mean > 16 {
		t.Errorf("mean degree = %.1f, want near 8", st.Mean)
	}
	// Power-law graphs have highly unequal degrees.
	if st.GiniCoefficient < 0.2 {
		t.Errorf("gini = %.3f, want power-law inequality > 0.2", st.GiniCoefficient)
	}
	if st.Max < 5*st.P50 {
		t.Errorf("max degree %d not heavy-tailed vs median %d", st.Max, st.P50)
	}
}

func TestErdosRenyiUniformity(t *testing.T) {
	g := ErdosRenyi(GenerateConfig{NumNodes: 2000, AvgDegree: 10, Seed: 7})
	st := ComputeDegreeStats(g)
	if st.GiniCoefficient > 0.3 {
		t.Errorf("gini = %.3f, want near-uniform < 0.3", st.GiniCoefficient)
	}
}

func TestRMATSkewOrdering(t *testing.T) {
	skewed := RMAT(RMATConfig{GenerateConfig: GenerateConfig{NumNodes: 2000, AvgDegree: 10, Seed: 3}, A: 0.57, B: 0.19, C: 0.19})
	flat := RMAT(RMATConfig{GenerateConfig: GenerateConfig{NumNodes: 2000, AvgDegree: 10, Seed: 3}, A: 0.25, B: 0.25, C: 0.25})
	gs := ComputeDegreeStats(skewed).GiniCoefficient
	gf := ComputeDegreeStats(flat).GiniCoefficient
	if gs <= gf {
		t.Errorf("RMAT skew knob ineffective: gini skewed %.3f <= flat %.3f", gs, gf)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PreferentialAttachment(GenerateConfig{NumNodes: 300, AvgDegree: 6, Seed: 42})
	b := PreferentialAttachment(GenerateConfig{NumNodes: 300, AvgDegree: 6, Seed: 42})
	if !csrEqual(a, b) {
		t.Error("same seed produced different graphs")
	}
	c := PreferentialAttachment(GenerateConfig{NumNodes: 300, AvgDegree: 6, Seed: 43})
	if csrEqual(a, c) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	g := PreferentialAttachment(GenerateConfig{NumNodes: 500, AvgDegree: 6, Seed: 9})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !csrEqual(g, g2) {
		t.Error("round-trip changed graph")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(make([]byte, 64))
	if _, err := Read(buf); err == nil {
		t.Error("Read accepted garbage input")
	}
}

func TestFromCSRValidates(t *testing.T) {
	if _, err := FromCSR([]int64{0, 1}, []NodeID{5}); err == nil {
		t.Error("FromCSR accepted out-of-range index")
	}
	if _, err := FromCSR([]int64{0, 2, 1}, []NodeID{0, 0}); err == nil {
		t.Error("FromCSR accepted non-monotone indptr")
	}
	g, err := FromCSR([]int64{0, 1, 2}, []NodeID{1, 0})
	if err != nil {
		t.Fatalf("FromCSR valid input: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestAccessSkewBands(t *testing.T) {
	// 100 nodes, node 0 gets 1000 accesses, the rest 1 each.
	freq := make([]int64, 100)
	for i := range freq {
		freq[i] = 1
	}
	freq[0] = 1000
	buckets := AccessSkew(freq)
	if len(buckets) != 6 {
		t.Fatalf("got %d buckets, want 6", len(buckets))
	}
	if buckets[0].AccessRatio < 0.9 {
		t.Errorf("top-1%% ratio = %.3f, want > 0.9", buckets[0].AccessRatio)
	}
	var total float64
	for _, b := range buckets {
		total += b.AccessRatio
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("bucket ratios sum to %.4f, want 1", total)
	}
}

func TestAccessSkewEmptyAndZero(t *testing.T) {
	buckets := AccessSkew(make([]int64, 10))
	for _, b := range buckets {
		if b.AccessRatio != 0 {
			t.Errorf("zero accesses gave nonzero ratio %v", b)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewRNG(seed).Perm(50)
		seen := make(map[int32]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(seen) == 50
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRNGNormFloat32Moments(t *testing.T) {
	r := NewRNG(5)
	n := 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := float64(r.NormFloat32())
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("normal mean = %.4f, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("normal variance = %.4f, want ~1", variance)
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	g := NewBuilder(0).Build(true)
	st := ComputeDegreeStats(g)
	if st.Mean != 0 {
		t.Errorf("empty graph mean = %v", st.Mean)
	}
}
