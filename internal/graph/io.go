package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary serialization of CSR graphs. Format:
//
//	magic   uint32  "APTG"
//	version uint32  1
//	nodes   uint64
//	edges   uint64
//	indptr  [nodes+1]int64
//	indices [edges]int32
//
// Little-endian throughout; intended for caching generated graphs
// between benchmark runs.

const (
	graphMagic   = 0x41505447 // "APTG"
	graphVersion = 1
)

// Write serializes g to w.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hdr := []uint64{graphMagic, graphVersion, uint64(g.NumNodes()), uint64(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: write header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Indptr); err != nil {
		return fmt.Errorf("graph: write indptr: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Indices); err != nil {
		return fmt.Errorf("graph: write indices: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a Graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [4]uint64
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: read header: %w", err)
		}
	}
	if hdr[0] != graphMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1] != graphVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr[1])
	}
	nodes, edges := hdr[2], hdr[3]
	// Bound the header-declared sizes: node IDs are int32 by design.
	if nodes >= 1<<31 {
		return nil, fmt.Errorf("graph: header declares %d nodes (exceeds int32 IDs)", nodes)
	}
	if edges >= 1<<33 {
		return nil, fmt.Errorf("graph: header declares %d edges (implausible)", edges)
	}
	// Allocate progressively while reading so a corrupt or hostile
	// header cannot force a huge up-front allocation: memory grows only
	// as actual payload bytes arrive, and a truncated stream fails
	// after at most one chunk.
	g := &Graph{}
	indptr, err := readChunkedInt64(br, nodes+1)
	if err != nil {
		return nil, fmt.Errorf("graph: read indptr: %w", err)
	}
	g.Indptr = indptr
	indices, err := readChunkedInt32(br, edges)
	if err != nil {
		return nil, fmt.Errorf("graph: read indices: %w", err)
	}
	g.Indices = indices
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ioChunk bounds single allocations while deserializing (1M entries).
const ioChunk = 1 << 20

func readChunkedInt64(r io.Reader, n uint64) ([]int64, error) {
	out := make([]int64, 0, minU64(n, ioChunk))
	for n > 0 {
		c := minU64(n, ioChunk)
		buf := make([]int64, c)
		if err := binary.Read(r, binary.LittleEndian, &buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		n -= c
	}
	return out, nil
}

func readChunkedInt32(r io.Reader, n uint64) ([]int32, error) {
	out := make([]int32, 0, minU64(n, ioChunk))
	for n > 0 {
		c := minU64(n, ioChunk)
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, &buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
		n -= c
	}
	return out, nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// SaveFile writes g to path atomically (via a temp file + rename).
func (g *Graph) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := g.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a graph previously written by SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
