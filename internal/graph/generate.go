package graph

import "math"

// GenerateConfig configures the synthetic graph generators.
type GenerateConfig struct {
	// NumNodes is the node count of the generated graph.
	NumNodes int
	// AvgDegree is the target average in-degree.
	AvgDegree int
	// Seed makes generation deterministic.
	Seed uint64
}

// PreferentialAttachment generates an undirected power-law graph using
// the Barabási–Albert process: each new node attaches AvgDegree/2 edges
// to existing nodes chosen proportionally to their current degree. The
// result mirrors the heavy-tailed degree distributions of citation and
// social graphs (Papers100M, Friendster).
func PreferentialAttachment(cfg GenerateConfig) *Graph {
	n := cfg.NumNodes
	m := cfg.AvgDegree / 2
	if m < 1 {
		m = 1
	}
	rng := NewRNG(cfg.Seed)
	b := NewBuilder(n)
	// targets holds one entry per edge endpoint, so sampling a uniform
	// entry samples nodes proportionally to degree.
	targets := make([]NodeID, 0, 2*n*m)
	seed := m + 1
	if seed > n {
		seed = n
	}
	// Seed clique over the first few nodes.
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			b.AddUndirected(NodeID(i), NodeID(j))
			targets = append(targets, NodeID(i), NodeID(j))
		}
	}
	chosen := make([]NodeID, 0, m)
	for v := seed; v < n; v++ {
		chosen = chosen[:0]
	pick:
		for len(chosen) < m {
			var u NodeID
			if len(targets) == 0 {
				u = NodeID(rng.Intn(v))
			} else {
				u = targets[rng.Intn(len(targets))]
			}
			if u == NodeID(v) {
				continue
			}
			for _, c := range chosen {
				if c == u {
					continue pick
				}
			}
			chosen = append(chosen, u)
		}
		for _, u := range chosen {
			b.AddUndirected(u, NodeID(v))
			targets = append(targets, u, NodeID(v))
		}
	}
	return b.Build(true)
}

// ErdosRenyi generates a uniform random graph with the given average
// degree; node accesses under sampling are nearly uniform, modeling the
// "scattered" end of the access-skew spectrum.
func ErdosRenyi(cfg GenerateConfig) *Graph {
	n := cfg.NumNodes
	rng := NewRNG(cfg.Seed)
	b := NewBuilder(n)
	edges := n * cfg.AvgDegree / 2
	for i := 0; i < edges; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		b.AddUndirected(u, v)
	}
	return b.Build(true)
}

// RMATConfig extends GenerateConfig with the RMAT quadrant
// probabilities; a+b+c+d must sum to 1.
type RMATConfig struct {
	GenerateConfig
	A, B, C float64 // D is implied: 1-A-B-C
}

// RMAT generates a Kronecker-style power-law graph (Graph500 RMAT).
// Larger A concentrates edges on low-ID nodes, producing tunable skew —
// this is the knob the dataset presets use to match the paper's Table 3
// access-skew ordering.
func RMAT(cfg RMATConfig) *Graph {
	n := cfg.NumNodes
	scale := int(math.Ceil(math.Log2(float64(n))))
	size := 1 << scale
	rng := NewRNG(cfg.Seed)
	b := NewBuilder(n)
	edges := n * cfg.AvgDegree / 2
	a, bb, c := cfg.A, cfg.B, cfg.C
	for i := 0; i < edges; i++ {
		u, v := 0, 0
		for bit := size >> 1; bit >= 1; bit >>= 1 {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+bb:
				v |= bit
			case r < a+bb+c:
				u |= bit
			default:
				u |= bit
				v |= bit
			}
		}
		// Fold IDs beyond n back into range to keep exactly n nodes.
		u %= n
		v %= n
		if u == v {
			continue
		}
		b.AddUndirected(NodeID(u), NodeID(v))
	}
	return b.Build(true)
}
