package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DegreeStats summarizes the degree distribution of a graph.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// P50, P90, P99 are degree percentiles.
	P50, P90, P99 int
	// GiniCoefficient in [0,1] measures degree inequality; power-law
	// graphs score high, uniform graphs low.
	GiniCoefficient float64
}

// ComputeDegreeStats scans the graph once and returns its degree summary.
func ComputeDegreeStats(g *Graph) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int, n)
	var sum int64
	mn, mx := int(^uint(0)>>1), 0
	for v := 0; v < n; v++ {
		d := g.Degree(NodeID(v))
		degs[v] = d
		sum += int64(d)
		if d < mn {
			mn = d
		}
		if d > mx {
			mx = d
		}
	}
	sort.Ints(degs)
	pct := func(p float64) int { return degs[int(p*float64(n-1))] }
	// Gini over the sorted degrees.
	var cum, weighted float64
	for i, d := range degs {
		cum += float64(d)
		weighted += float64(i+1) * float64(d)
	}
	gini := 0.0
	if cum > 0 {
		gini = (2*weighted/(float64(n)*cum) - float64(n+1)/float64(n))
	}
	return DegreeStats{
		Min: mn, Max: mx,
		Mean:            float64(sum) / float64(n),
		P50:             pct(0.50),
		P90:             pct(0.90),
		P99:             pct(0.99),
		GiniCoefficient: gini,
	}
}

// SkewBucket is one row of an access-skew table (paper Table 3): the
// fraction of all accesses attributable to nodes in a popularity-rank
// band.
type SkewBucket struct {
	// LoRank and HiRank bound the rank band as fractions of the node
	// count, e.g. [0, 0.01) is the top-1% most accessed nodes.
	LoRank, HiRank float64
	// AccessRatio is that band's share of total accesses.
	AccessRatio float64
}

// AccessSkew ranks nodes by the supplied access frequencies and returns
// the paper's Table 3 rank bands.
func AccessSkew(freq []int64) []SkewBucket {
	n := len(freq)
	sorted := make([]int64, n)
	copy(sorted, freq)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total int64
	for _, f := range sorted {
		total += f
	}
	bands := [][2]float64{{0, 0.01}, {0.01, 0.05}, {0.05, 0.10}, {0.10, 0.20}, {0.20, 0.50}, {0.50, 1.00}}
	out := make([]SkewBucket, 0, len(bands))
	for _, b := range bands {
		lo := int(b[0] * float64(n))
		hi := int(b[1] * float64(n))
		if hi > n {
			hi = n
		}
		var s int64
		for i := lo; i < hi; i++ {
			s += sorted[i]
		}
		ratio := 0.0
		if total > 0 {
			ratio = float64(s) / float64(total)
		}
		out = append(out, SkewBucket{LoRank: b[0], HiRank: b[1], AccessRatio: ratio})
	}
	return out
}

// FormatSkewTable renders skew buckets like the paper's Table 3 rows.
func FormatSkewTable(buckets []SkewBucket) string {
	var sb strings.Builder
	for _, b := range buckets {
		fmt.Fprintf(&sb, "%5.0f%%~%-4.0f%%  %6.1f%%\n", b.LoRank*100, b.HiRank*100, b.AccessRatio*100)
	}
	return sb.String()
}
