package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the text parser never panics and that every
// accepted graph passes structural validation.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n3 4\n")
	f.Add("")
	f.Add("9 9\n")
	f.Add("1 2 extra tokens\n")
	f.Add("0 1\nnot numbers\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), EdgeListOptions{DropSelfLoops: true})
		if err != nil {
			return
		}
		if vErr := g.Validate(); vErr != nil {
			t.Fatalf("accepted graph fails validation: %v (input %q)", vErr, input)
		}
	})
}

// FuzzRead checks the binary deserializer never panics on corrupt
// input and round-trips valid graphs.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialized graph and some corruptions.
	g := ErdosRenyi(GenerateConfig{NumNodes: 20, AvgDegree: 3, Seed: 1})
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 20 {
		corrupt[16] ^= 0xff
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		g2, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if vErr := g2.Validate(); vErr != nil {
			t.Fatalf("deserialized graph fails validation: %v", vErr)
		}
	})
}
