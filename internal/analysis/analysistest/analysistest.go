// Package analysistest runs one analyzer over a testdata source tree
// and checks its diagnostics against expectations embedded in the
// sources — a stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout mirrors the x/tools convention: testdata/src/<importpath>/
// holds one package per directory; packages may import each other by
// those paths (so a test package can import a stubbed "tensor").
//
// Expectations sit on the line they refer to:
//
//	x := time.Now() // want "wall-clock"
//	y := tensor.Get(2, 2) //apt:allow poolpair scratch // want:suppressed "never passed"
//
// `want` takes one or more quoted regexps, each of which must match a
// distinct unsuppressed finding on that line; `want:suppressed`
// likewise for findings cancelled by an //apt:allow directive — proving
// both that the analyzer fired and that the suppression took. Findings
// with no expectation, and expectations with no finding, fail the test.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads testdata/src, runs a over the packages named by pkgpaths,
// and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(testdata, "src")
	dirs, err := discover(srcRoot)
	if err != nil {
		t.Fatalf("discovering %s: %v", srcRoot, err)
	}
	pkgs, err := analysis.LoadPackages(token.NewFileSet(), dirs)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	var check []*analysis.Package
	checkDirs := map[string]bool{}
	for _, want := range pkgpaths {
		found := false
		for _, p := range pkgs {
			if p.Path == want {
				check = append(check, p)
				checkDirs[p.Dir] = true
				found = true
			}
		}
		if !found {
			t.Fatalf("package %q not found under %s", want, srcRoot)
		}
	}
	// Run over every loaded package — interprocedural analyzers need
	// the full call graph, stub packages included — but hold only the
	// named packages to their want markers.
	findings, err := analysis.Run([]*analysis.Analyzer{a}, pkgs, analysis.Options{})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	var scoped []analysis.Finding
	for _, f := range findings {
		if checkDirs[filepath.Dir(f.Pos.Filename)] {
			scoped = append(scoped, f)
		}
	}
	exps, err := expectations(check)
	if err != nil {
		t.Fatalf("parsing expectations: %v", err)
	}
	match(t, a.Name, scoped, exps)
}

// discover maps each package directory under srcRoot to its import
// path (the slash path relative to srcRoot).
func discover(srcRoot string) (map[string]string, error) {
	dirs := map[string]string{}
	err := filepath.WalkDir(srcRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			return err
		}
		dirs[filepath.ToSlash(rel)] = dir
		return nil
	})
	return dirs, err
}

// An expectation is one `want` or `want:suppressed` regexp with its
// location.
type expectation struct {
	file       string
	line       int
	re         *regexp.Regexp
	suppressed bool
	matched    bool
}

// expectations scans the comments of every file in pkgs.
func expectations(pkgs []*analysis.Package) ([]*expectation, error) {
	var out []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, g := range f.Comments {
				for _, c := range g.List {
					pos := pkg.Fset.Position(c.Pos())
					exps, err := parseWants(c.Text, pos)
					if err != nil {
						return nil, err
					}
					out = append(out, exps...)
				}
			}
		}
	}
	return out, nil
}

// parseWants extracts the expectations of one comment. A comment may
// carry both a want and a want:suppressed section.
func parseWants(text string, pos token.Position) ([]*expectation, error) {
	var out []*expectation
	for _, marker := range []struct {
		tag        string
		suppressed bool
	}{{"want:suppressed", true}, {"want", false}} {
		idx := markerIndex(text, marker.tag)
		if idx < 0 {
			continue
		}
		section := text[idx+len(marker.tag):]
		if end := markerIndex(section, "want:suppressed"); !marker.suppressed && end >= 0 {
			// Don't let a plain `want` scan re-consume the suppressed
			// section's patterns.
			section = section[:end]
		}
		for _, q := range quotedStrings(section) {
			pat, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("%s: bad pattern %s: %v", pos, q, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("%s: bad regexp %q: %v", pos, pat, err)
			}
			out = append(out, &expectation{
				file: pos.Filename, line: pos.Line,
				re: re, suppressed: marker.suppressed,
			})
		}
	}
	return out, nil
}

// markerIndex finds tag in text as a standalone word (so "want" does
// not match inside "want:suppressed").
func markerIndex(text, tag string) int {
	for from := 0; ; {
		i := strings.Index(text[from:], tag)
		if i < 0 {
			return -1
		}
		i += from
		end := i + len(tag)
		before := i == 0 || text[i-1] == ' ' || text[i-1] == '\t' || text[i-1] == '/'
		after := end == len(text) || text[end] == ' ' || text[end] == '\t'
		if before && after {
			return i
		}
		from = end
	}
}

// quotedStrings returns the double-quoted segments of s, quotes
// included, honoring backslash escapes.
func quotedStrings(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		if s[i] != '"' {
			continue
		}
		j := i + 1
		for ; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				break
			}
		}
		if j >= len(s) {
			break
		}
		out = append(out, s[i:j+1])
		i = j
	}
	return out
}

// match pairs findings with expectations one-to-one per (file, line,
// suppression class) and reports every leftover on either side.
func match(t *testing.T, analyzer string, findings []analysis.Finding, exps []*expectation) {
	t.Helper()
	for _, f := range findings {
		ok := false
		for _, e := range exps {
			if e.matched || e.suppressed != f.Suppressed ||
				e.file != f.Pos.Filename || e.line != f.Pos.Line {
				continue
			}
			if e.re.MatchString(f.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			kind := "finding"
			if f.Suppressed {
				kind = "suppressed finding"
			}
			t.Errorf("%s: unexpected %s: %s: %s", f.Pos, kind, analyzer, f.Message)
		}
	}
	for _, e := range exps {
		if !e.matched {
			kind := "want"
			if e.suppressed {
				kind = "want:suppressed"
			}
			t.Errorf("%s:%d: no %s finding matched %s %q", e.file, e.line, analyzer, kind, e.re)
		}
	}
}
