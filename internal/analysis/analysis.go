// Package analysis is aptlint's static-analysis framework: a
// self-contained reimplementation of the narrow slice of
// golang.org/x/tools/go/analysis that the repo's analyzers need
// (Analyzer, Pass, diagnostics), built only on the standard library's
// go/ast, go/parser, go/token and go/types.
//
// Why not depend on x/tools directly: the reproduction builds in a
// hermetic, network-free environment with an empty module cache, so the
// module must remain dependency-free. The types here mirror the
// x/tools API shape one-for-one (an Analyzer has Name/Doc/Run, a Pass
// carries Fset/Files/Pkg/TypesInfo and a Report entry point), so
// migrating an analyzer to the real framework — and to `go vet
// -vettool` via unitchecker — is a mechanical import swap, not a
// rewrite. See DESIGN.md decision 14.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check. It reports findings through the
// Pass; it must not depend on analyzer execution order or retain the
// Pass after Run returns.
type Analyzer struct {
	// Name identifies the analyzer in output and in //apt:allow
	// suppression directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// protects and what a finding means.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Dir       string // package directory on disk (for _test.go inspection)
	Pkg       *types.Package
	TypesInfo *types.Info

	// Graph is the module-wide call graph, shared by every pass of a
	// driver run — the interprocedural layer (see callgraph.go). Nil
	// only when a test constructs a Pass by hand.
	Graph *CallGraph

	report func(Diagnostic)
}

// A Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// ObjectOf returns the object denoted by id, consulting Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return p.TypesInfo.Defs[id]
}

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (package-level functions and methods; nil for builtins, conversions,
// and calls through function-typed variables).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltinCall reports whether call invokes the named builtin
// (e.g. "make", "new", "append").
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
