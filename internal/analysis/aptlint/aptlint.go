// Package aptlint assembles the repo's analyzer suite and drives it —
// the library behind cmd/aptlint and the module-wide cleanliness test.
package aptlint

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/directive"
	"repro/internal/analysis/goownership"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/lockstep"
	"repro/internal/analysis/poolpair"
	"repro/internal/analysis/simclock"
	"repro/internal/analysis/wirecontract"
)

// All is the full analyzer suite, in reporting-name order. Each entry
// guards one structural invariant — see DESIGN.md decisions 14 and 19.
var All = []*analysis.Analyzer{
	detrange.Analyzer,
	directive.Analyzer,
	goownership.Analyzer,
	hotalloc.Analyzer,
	lockstep.Analyzer,
	poolpair.Analyzer,
	simclock.Analyzer,
	wirecontract.Analyzer,
}

func init() {
	// Teach the directive validator which analyzer names //apt:allow
	// may reference. "aptlint" is the driver's own name, used by the
	// stale-suppression audit.
	directive.Known["aptlint"] = true
	for _, a := range All {
		directive.Known[a.Name] = true
	}
}

// CheckModule loads the module rooted at dir and runs the full suite
// over every production package, returning all findings (suppressed
// included) in positional order.
func CheckModule(dir string) ([]analysis.Finding, error) {
	pkgs, err := analysis.LoadModule(dir)
	if err != nil {
		return nil, err
	}
	return analysis.Run(All, pkgs, analysis.Options{ReportUnusedAllows: true})
}

// Audit is the one-load full gate: it runs the suite over the module
// at dir once, prints every unsuppressed finding, then prints every
// //apt:allow directive with its analyzer, justification, and status:
// "in-use" when the directive still suppresses a live finding, "STALE"
// when the finding it excused no longer fires (staleness is scoped to
// the allowing function — see analysis.AllowsForFile). Exit codes
// mirror Main: 0 clean, 1 on any finding or stale allow, 2 on failure.
// Because findings and directive usage come from the same run, `make
// lint` and CI pay for one go/types load instead of two.
func Audit(w io.Writer, dir string) int {
	pkgs, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(w, "aptlint:", err)
		return 2
	}
	findings, allows, err := analysis.RunWithAllows(All, pkgs, analysis.Options{})
	if err != nil {
		fmt.Fprintln(w, "aptlint:", err)
		return 2
	}
	bad := analysis.Print(w, findings, false)
	if bad > 0 {
		fmt.Fprintf(w, "aptlint: %d unsuppressed finding(s)\n", bad)
	}
	stale := 0
	for _, d := range allows {
		status := "in-use"
		if !d.Used {
			status = "STALE"
			stale++
		}
		fmt.Fprintf(w, "%-7s %s: //apt:allow %s %s\n", status, d.Pos, d.Analyzer, d.Reason)
	}
	fmt.Fprintf(w, "aptlint: %d allow directive(s), %d stale\n", len(allows), stale)
	if bad > 0 || stale > 0 {
		return 1
	}
	return 0
}

// Main runs the suite over the module at dir and prints unsuppressed
// findings to w (all findings when verbose). It returns the process
// exit code: 0 clean, 1 findings, 2 load/internal failure.
func Main(w io.Writer, dir string, verbose bool) int {
	findings, err := CheckModule(dir)
	if err != nil {
		fmt.Fprintln(w, "aptlint:", err)
		return 2
	}
	if bad := analysis.Print(w, findings, verbose); bad > 0 {
		fmt.Fprintf(w, "aptlint: %d unsuppressed finding(s)\n", bad)
		return 1
	}
	return 0
}
