package aptlint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleClean is the acceptance gate: the full suite over the whole
// module must produce zero unsuppressed findings and zero stale allows.
// Suppressed findings are fine — they are the audited exceptions — but
// anything unsuppressed means either a real violation or an allow whose
// finding disappeared (so the directive should be deleted).
func TestModuleClean(t *testing.T) {
	findings, err := CheckModule(moduleRoot(t))
	if err != nil {
		t.Fatalf("CheckModule: %v", err)
	}
	var bad []string
	suppressed := 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			continue
		}
		bad = append(bad, f.Pos.String()+": ["+f.Analyzer+"] "+f.Message)
	}
	if len(bad) > 0 {
		t.Errorf("module is not aptlint-clean: %d unsuppressed finding(s):\n  %s",
			len(bad), strings.Join(bad, "\n  "))
	}
	if suppressed == 0 {
		// The repo carries audited wall-clock allows (serving, CLI
		// progress) — if none fired, suppression matching is broken.
		t.Errorf("expected suppressed findings from audited //apt:allow sites, got none")
	}
}

// TestViolationsFail proves the gate has teeth: a synthetic module with
// a wall-clock call in an engine-like package and a tensor.Get whose Put
// was deleted must produce exactly those unsuppressed findings.
func TestViolationsFail(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.21\n")
	write("internal/tensor/tensor.go", `package tensor

type Matrix struct{ Data []float32 }

func Get(r, c int) *Matrix { return &Matrix{Data: make([]float32, r*c)} }
func Put(m *Matrix)        {}
`)
	write("internal/engine/engine.go", `package engine

import (
	"time"

	"tmpmod/internal/tensor"
)

func Step() float64 {
	start := time.Now()
	m := tensor.Get(4, 4)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return time.Since(start).Seconds()
}
`)

	findings, err := CheckModule(dir)
	if err != nil {
		t.Fatalf("CheckModule(synthetic): %v", err)
	}
	counts := map[string]int{}
	for _, f := range findings {
		if f.Suppressed {
			t.Errorf("unexpected suppressed finding in synthetic module: %v", f)
			continue
		}
		counts[f.Analyzer]++
		t.Logf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	}
	if counts["simclock"] != 2 {
		t.Errorf("simclock findings = %d, want 2 (time.Now + time.Since)", counts["simclock"])
	}
	if counts["poolpair"] != 1 {
		t.Errorf("poolpair findings = %d, want 1 (Get with deleted Put)", counts["poolpair"])
	}
	if got, want := len(findings), 3; got != want {
		t.Errorf("total findings = %d, want %d", got, want)
	}
}

// TestMainExitCodes pins the CLI contract make lint depends on: clean
// module → 0, findings → 1 with a summary line.
func TestMainExitCodes(t *testing.T) {
	var sb strings.Builder
	if code := Main(&sb, moduleRoot(t), false); code != 0 {
		t.Errorf("Main on clean module = %d, want 0; output:\n%s", code, sb.String())
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := "package p\n\nimport \"time\"\n\nfunc Now() time.Time { return time.Now() }\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if code := Main(&sb, dir, false); code != 1 {
		t.Errorf("Main on dirty module = %d, want 1; output:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "unsuppressed finding") {
		t.Errorf("dirty-module output missing summary line:\n%s", sb.String())
	}
}

// moduleRoot locates the repo's go.mod from the test's working
// directory (internal/analysis/aptlint → three levels up).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}
