package analysis

// Package loading without golang.org/x/tools/go/packages: aptlint
// discovers the module's packages by walking the source tree, parses
// them with go/parser, topologically orders them by their intra-module
// imports, and type-checks each with go/types. Standard-library imports
// resolve through the toolchain's compiled export data
// (importer.ForCompiler "gc"), which works offline; module-internal
// imports resolve to the packages checked earlier in topological order.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at dir (the directory containing go.mod). testdata,
// vendor and hidden directories are skipped, as are _test.go files:
// aptlint's invariants are properties of production code, and tests
// legitimately use wall-clock timeouts and ad-hoc allocation.
func LoadModule(dir string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	pkgDirs := map[string]string{}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		pdir := filepath.Dir(path)
		rel, err := filepath.Rel(dir, pdir)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		pkgDirs[imp] = pdir
		return nil
	})
	if err != nil {
		return nil, err
	}
	return LoadPackages(token.NewFileSet(), pkgDirs)
}

// LoadPackages parses and type-checks the package directories in dirs,
// keyed by import path. Imports between the given packages resolve to
// each other; all other imports resolve to the standard library.
// Packages are returned sorted by import path.
func LoadPackages(fset *token.FileSet, dirs map[string]string) ([]*Package, error) {
	ld := &loader{
		fset:    fset,
		dirs:    dirs,
		std:     importer.ForCompiler(fset, "gc", nil),
		parsed:  map[string]*parsedPkg{},
		checked: map[string]*Package{},
	}
	paths := make([]string, 0, len(dirs))
	for p := range dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := ld.check(p, nil); err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, ld.checked[p])
	}
	return out, nil
}

type parsedPkg struct {
	name  string
	files []*ast.File
}

type loader struct {
	fset    *token.FileSet
	dirs    map[string]string
	std     types.Importer
	parsed  map[string]*parsedPkg
	checked map[string]*Package
}

// Import implements types.Importer so a package under check can resolve
// its intra-set imports through the loader.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, ok := ld.dirs[path]; ok {
		pkg, err := ld.check(path, nil)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

// check type-checks path, first checking its intra-set dependencies.
// stack detects import cycles.
func (ld *loader) check(path string, stack []string) (*Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
	}
	pp, err := ld.parse(path)
	if err != nil {
		return nil, err
	}
	stack = append(stack, path)
	for _, imp := range importsOf(pp.files) {
		if _, ok := ld.dirs[imp]; ok {
			if _, err := ld.check(imp, stack); err != nil {
				return nil, err
			}
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: ld,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, ld.fset, pp.files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, firstErr)
	}
	pkg := &Package{
		Path:  path,
		Dir:   ld.dirs[path],
		Fset:  ld.fset,
		Files: pp.files,
		Types: tpkg,
		Info:  info,
	}
	ld.checked[path] = pkg
	return pkg, nil
}

func (ld *loader) parse(path string) (*parsedPkg, error) {
	if pp, ok := ld.parsed[path]; ok {
		return pp, nil
	}
	dir := ld.dirs[path]
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pp := &parsedPkg{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pp.name == "" {
			pp.name = f.Name.Name
		} else if f.Name.Name != pp.name {
			return nil, fmt.Errorf("%s: conflicting package names %s and %s", dir, pp.name, f.Name.Name)
		}
		pp.files = append(pp.files, f)
	}
	if len(pp.files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	ld.parsed[path] = pp
	return pp, nil
}

// importsOf returns the distinct import paths of files, sorted.
func importsOf(files []*ast.File) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	sort.Strings(out)
	return out
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
