package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// A Finding is one driver-level result: a diagnostic attributed to its
// analyzer, with suppression resolved against //apt:allow directives.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed is set when an //apt:allow directive covers the
	// finding; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
	if f.Suppressed {
		s += fmt.Sprintf(" (allowed: %s)", f.Reason)
	}
	return s
}

// Options configures a driver run.
type Options struct {
	// ReportUnusedAllows adds a synthetic "aptlint" finding for every
	// //apt:allow directive that suppressed nothing — only meaningful
	// when the full analyzer suite runs, so single-analyzer runs should
	// leave it off.
	ReportUnusedAllows bool
}

// Run executes every analyzer over every package, resolves //apt:allow
// suppressions, and returns all findings (suppressed ones included)
// sorted by position. Analyzer errors abort the run.
func Run(analyzers []*Analyzer, pkgs []*Package, opts Options) ([]Finding, error) {
	findings, _, err := RunWithAllows(analyzers, pkgs, opts)
	return findings, err
}

// RunWithAllows is Run returning, additionally, every //apt:allow
// directive in the module with its post-run usage status (Used is set
// when the directive suppressed at least one finding) — the data
// behind the stale-suppression audit. Directives are returned in
// file-then-line order.
func RunWithAllows(analyzers []*Analyzer, pkgs []*Package, opts Options) ([]Finding, []*AllowDirective, error) {
	var findings []Finding
	var allows []*AllowDirective
	// One call graph serves every (analyzer, package) pass: the loader
	// type-checks the whole set with shared *types.Func identities, so
	// interprocedural queries work across package boundaries.
	graph := BuildCallGraph(pkgs)
	for _, pkg := range pkgs {
		// Directive scopes are per-file line ranges, keyed by filename.
		fileAllows := map[string][]*AllowDirective{}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			ds := AllowsForFile(pkg.Fset, f)
			fileAllows[name] = ds
			allows = append(allows, ds...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				PkgPath:   pkg.Path,
				Dir:       pkg.Dir,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Graph:     graph,
			}
			name := a.Name
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Pos: pos, Analyzer: name, Message: d.Message}
				if d := matchAllow(fileAllows[pos.Filename], name, pos.Line); d != nil {
					d.Used = true
					f.Suppressed = true
					f.Reason = d.Reason
				}
				findings = append(findings, f)
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	if opts.ReportUnusedAllows {
		for _, d := range allows {
			if !d.Used {
				findings = append(findings, Finding{
					Pos:      d.Pos,
					Analyzer: "aptlint",
					Message:  fmt.Sprintf("//apt:allow %s suppresses nothing; delete the stale directive", d.Analyzer),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i], allows[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return findings, allows, nil
}

// matchAllow returns the first allow directive for analyzer covering
// line, or nil.
func matchAllow(ds []*AllowDirective, analyzer string, line int) *AllowDirective {
	for _, d := range ds {
		if d.Analyzer == analyzer && line >= d.FromLine && line <= d.ToLine {
			return d
		}
	}
	return nil
}

// Print writes unsuppressed findings to w, one per line, and returns
// how many there were. With verbose set, suppressed findings are listed
// too (marked with their allow reason).
func Print(w io.Writer, findings []Finding, verbose bool) int {
	bad := 0
	for _, f := range findings {
		if f.Suppressed {
			if verbose {
				fmt.Fprintln(w, f)
			}
			continue
		}
		fmt.Fprintln(w, f)
		bad++
	}
	return bad
}
