package analysis

// The interprocedural layer: a module-wide call graph over the loaded
// packages, so analyzers can reason about what a function *transitively*
// does — "this call eventually issues a collective", "this goroutine's
// body signals a WaitGroup" — instead of being limited to one function
// body at a time. The graph is deliberately syntactic and cheap:
//
//   - Nodes are the module's declared functions and methods
//     (*types.Func identities are shared across packages because the
//     loader type-checks the whole module with one FileSet and one
//     importer, so cross-package edges need no name mangling).
//   - An edge caller→callee exists for every static call in the
//     caller's body. Calls inside function literals are attributed to
//     the enclosing declaration: for reachability ("does running this
//     function make that call possible") that is the useful answer.
//   - Dynamic calls (function values, interface methods) resolve to
//     the declared *types.Func go/types reports — an interface
//     method's callees are not expanded to implementations. Analyzers
//     that need soundness across interfaces match the interface
//     method itself.
//
// Build order and all query results are deterministic: nodes follow
// package/file/declaration order, and Reachers runs a BFS seeded and
// expanded in that order, so witness paths are stable across runs.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A CallEdge is one static call site: the resolved callee and where the
// call appears in the caller.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

// A FuncNode is one declared function or method of the module, with its
// syntax, its package (for position and type information), and its
// outgoing call edges in source order.
type FuncNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CallEdge
}

// A CallGraph is the module-wide static call graph.
type CallGraph struct {
	nodes   map[*types.Func]*FuncNode
	callers map[*types.Func][]*FuncNode
	order   []*FuncNode
}

// BuildCallGraph constructs the call graph of pkgs. Functions without
// bodies (external declarations) get no node; calls to them still
// appear as edges.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:   map[*types.Func]*FuncNode{},
		callers: map[*types.Func][]*FuncNode{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: obj, Decl: fn, Pkg: pkg}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeFunc(pkg.Info, call); callee != nil {
						node.Calls = append(node.Calls, CallEdge{Callee: callee, Pos: call.Pos()})
					}
					return true
				})
				g.nodes[obj] = node
				g.order = append(g.order, node)
			}
		}
	}
	for _, n := range g.order {
		seen := map[*types.Func]bool{}
		for _, e := range n.Calls {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				g.callers[e.Callee] = append(g.callers[e.Callee], n)
			}
		}
	}
	return g
}

// Node returns fn's graph node, or nil when fn has no body in the
// module (stdlib, interface methods, external linkage).
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// Funcs returns every node in deterministic package/file/decl order.
func (g *CallGraph) Funcs() []*FuncNode { return g.order }

// ReachInfo is one step of a reachability witness: the next callee on a
// path from the function toward Target, the matched function.
type ReachInfo struct {
	Next   *types.Func
	Target *types.Func
}

// A Reach is the result of a Reachers query: for every function that
// can transitively make a matching call, one witness step.
type Reach struct {
	info map[*types.Func]ReachInfo
}

// Reachers computes, by reverse BFS over the call graph, the set of
// functions from which a call matching match is reachable. A function
// that calls a matching callee directly is a reacher; so is anything
// that transitively calls a reacher. match is consulted on callees
// (which may be external to the module, e.g. methods of an imported
// package).
func (g *CallGraph) Reachers(match func(*types.Func) bool) *Reach {
	r := &Reach{info: map[*types.Func]ReachInfo{}}
	var queue []*types.Func
	for _, n := range g.order {
		for _, e := range n.Calls {
			if match(e.Callee) {
				if _, ok := r.info[n.Fn]; !ok {
					r.info[n.Fn] = ReachInfo{Next: e.Callee, Target: e.Callee}
					queue = append(queue, n.Fn)
				}
				break
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, caller := range g.callers[fn] {
			if _, ok := r.info[caller.Fn]; ok {
				continue
			}
			r.info[caller.Fn] = ReachInfo{Next: fn, Target: r.info[fn].Target}
			queue = append(queue, caller.Fn)
		}
	}
	return r
}

// Reaches reports whether a matching call is reachable from fn.
func (r *Reach) Reaches(fn *types.Func) bool {
	_, ok := r.info[fn]
	return ok
}

// Get returns fn's witness step.
func (r *Reach) Get(fn *types.Func) (ReachInfo, bool) {
	info, ok := r.info[fn]
	return info, ok
}

// Path returns the witness call chain from fn (exclusive) down to the
// matched target (inclusive), as function names — e.g. for
// computeStep→syncGradients→AllReduceCodec it returns
// ["syncGradients", "AllReduceCodec"]. Empty when fn is not a reacher.
func (r *Reach) Path(fn *types.Func) []string {
	var out []string
	cur := fn
	for i := 0; i < len(r.info); i++ { // bounded by graph size; guards witness cycles
		info, ok := r.info[cur]
		if !ok {
			break
		}
		out = append(out, info.Next.Name())
		if info.Next == info.Target {
			break
		}
		cur = info.Next
	}
	return out
}
