package directive_test

import (
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/directive"

	// Populates directive.Known with the registered analyzer names.
	_ "repro/internal/analysis/aptlint"
)

func TestDirective(t *testing.T) {
	analysistest.Run(t, "testdata", directive.Analyzer, "directivedata")
}

// TestMalformedAllows covers the spellings whose findings land on the
// directive comment itself (see directivebad's comment for why the
// golden harness cannot express them).
func TestMalformedAllows(t *testing.T) {
	pkgs, err := analysis.LoadPackages(token.NewFileSet(), map[string]string{
		"directivebad": "testdata/src/directivebad",
	})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.Run([]*analysis.Analyzer{directive.Analyzer}, pkgs, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"//apt:allow needs an analyzer name and a reason",
		"//apt:allow simclock has no reason: suppressions must say why",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(want), findings)
	}
	for i, f := range findings {
		if f.Suppressed || !strings.Contains(f.Message, want[i]) {
			t.Errorf("finding %d = %q (suppressed=%v), want substring %q", i, f.Message, f.Suppressed, want[i])
		}
	}
}
