package directivebad

// The two malformations below cannot carry same-line `want` markers —
// trailing text would change how the directive itself parses — so
// directive_test.go asserts their findings directly.

//apt:allow
var a int

//apt:allow simclock
var b int
