package directivedata

//apt:frobnicate // want "unknown aptlint directive"
var x int

//apt:allow nosuchanalyzer the analyzer name is checked // want "unknown analyzer"
var y int

// hot is a legitimate hotpath marking: function doc comment.
//
//apt:hotpath
func hot() {}

var v = 1 //apt:hotpath // want "must sit in a function declaration"

// wellFormed suppressions produce no directive findings.
//
//apt:allow simclock a complete, audited suppression
func wellFormed() {}

func use() { _, _, _ = x, y, v }
