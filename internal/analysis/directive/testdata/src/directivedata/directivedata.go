package directivedata

//apt:frobnicate // want "unknown aptlint directive"
var x int

//apt:allow nosuchanalyzer the analyzer name is checked // want "unknown analyzer"
var y int

// hot is a legitimate hotpath marking: function doc comment.
//
//apt:hotpath
func hot() {}

var v = 1 //apt:hotpath // want "must sit in a function declaration"

// wellFormed suppressions produce no directive findings.
//
//apt:allow simclock a complete, audited suppression
func wellFormed() {}

// snapState is checkpointed state: type-declaration doc comments may
// carry the marker.
//
//apt:snapshot
type snapState struct {
	// Cursor must round-trip exactly: struct-field doc comments may
	// carry the marker too.
	//
	//apt:snapshot
	Cursor uint64
}

//apt:snapshot // want "must sit in a type declaration's or struct field's doc comment"
func notState() {}

var w = 1 //apt:snapshot // want "must sit in a type declaration's or struct field's doc comment"

func use() { _, _, _, _ = x, y, v, w }
