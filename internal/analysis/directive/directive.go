// Package directive keeps aptlint's own directive comments honest.
//
// Suppressions are part of the audited invariant policy, so a typo'd
// directive must be an error, not a silent no-op: //apt:allow with a
// missing analyzer name, an unknown analyzer name, or no reason;
// //apt:hotpath placed anywhere but a function declaration's doc
// comment; //apt:snapshot (marking state that must round-trip through
// the checkpoint codec bit-for-bit) placed anywhere but a type
// declaration's or struct field's doc comment; and any other //apt:*
// spelling are all reported.
package directive

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc:  "validate //apt:allow, //apt:hotpath, and //apt:snapshot directive comments",
	Run:  run,
}

// Known is the set of analyzer names //apt:allow may reference. The
// registry populates it so this package does not import its siblings.
var Known = map[string]bool{}

func knownNames() string {
	names := make([]string, 0, len(Known))
	for n := range Known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		hotpathLines := hotpathDocLines(pass.Fset, f)
		snapshotLines := snapshotDocLines(pass.Fset, f)
		for _, g := range f.Comments {
			for _, c := range g.List {
				checkComment(pass, c, hotpathLines, snapshotLines)
			}
		}
	}
	return nil
}

// hotpathDocLines collects the line numbers of doc comments attached to
// function declarations — the only place //apt:hotpath belongs.
func hotpathDocLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	return lines
}

// snapshotDocLines collects the line numbers of doc comments attached
// to type declarations and struct fields — the places //apt:snapshot
// (state the checkpoint codec must round-trip exactly) belongs.
func snapshotDocLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	add := func(doc *ast.CommentGroup) {
		if doc == nil {
			return
		}
		for _, c := range doc.List {
			lines[fset.Position(c.Pos()).Line] = true
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		add(gd.Doc)
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			add(ts.Doc)
			if st, ok := ts.Type.(*ast.StructType); ok {
				for _, fld := range st.Fields.List {
					add(fld.Doc)
				}
			}
		}
	}
	return lines
}

func checkComment(pass *analysis.Pass, c *ast.Comment, hotpathLines, snapshotLines map[int]bool) {
	text := c.Text
	if !strings.HasPrefix(text, "//apt:") {
		return
	}
	word := text[len("//apt:"):]
	if i := strings.IndexAny(word, " \t"); i >= 0 {
		word = word[:i]
	}
	switch word {
	case "allow":
		fields := strings.Fields(text[len("//apt:allow"):])
		switch {
		case len(fields) == 0:
			pass.Reportf(c.Pos(), "//apt:allow needs an analyzer name and a reason")
		case len(Known) > 0 && !Known[fields[0]]:
			pass.Reportf(c.Pos(), "//apt:allow names unknown analyzer %q (known: %s)", fields[0], knownNames())
		case len(fields) == 1:
			pass.Reportf(c.Pos(), "//apt:allow %s has no reason: suppressions must say why", fields[0])
		}
	case "hotpath":
		if !hotpathLines[pass.Fset.Position(c.Pos()).Line] {
			pass.Reportf(c.Pos(), "//apt:hotpath must sit in a function declaration's doc comment")
		}
	case "snapshot":
		if !snapshotLines[pass.Fset.Position(c.Pos()).Line] {
			pass.Reportf(c.Pos(), "//apt:snapshot must sit in a type declaration's or struct field's doc comment")
		}
	default:
		pass.Reportf(c.Pos(), "unknown aptlint directive //apt:%s (known: allow, hotpath, snapshot)", word)
	}
}
