// Package detrange flags map iteration whose loop body is sensitive to
// iteration order.
//
// Go randomizes map iteration order per run. The reproduction's
// correctness story leans on two properties that such loops silently
// break: bit-identical logits across strategies (float addition does
// not associate, so accumulating map values in random order changes the
// result bits) and golden traces (sends and appends in map order
// shuffle span/ledger sequences). The analyzer flags a `range m` over a
// map when the body
//
//   - compound-assigns (+= -= *= /=) into a float or complex lvalue
//     that does not mention the loop key (per-key slots like sum[k] +=
//     v are order-independent),
//   - sends on any channel, or
//   - appends to a slice — except the idiomatic fix itself: appending
//     the bare key into a slice that is passed to a sort/slices call
//     later in the same scope.
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flag order-sensitive work inside map iteration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		sorted := sortedSlices(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rng, sorted)
			return true
		})
	}
	return nil
}

// checkBody walks one map-range body for order-sensitive operations.
func checkBody(pass *analysis.Pass, rng *ast.RangeStmt, sorted map[types.Object][]token.Pos) {
	keyObj := rangeVarObj(pass, rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Arrow,
				"channel send inside map iteration: message order depends on map iteration order")
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			lhs := n.Lhs[0]
			if !isFloatish(pass.TypeOf(lhs)) {
				return true
			}
			if keyObj != nil && mentions(pass, lhs, keyObj) {
				return true // per-key slot: each key visited once, order-free
			}
			pass.Reportf(n.TokPos,
				"float accumulation inside map iteration: addition order follows map order and changes result bits")
		case *ast.CallExpr:
			if !analysis.IsBuiltinCall(pass.TypesInfo, n, "append") {
				return true
			}
			if isSortedKeyCollect(pass, n, rng, keyObj, sorted) {
				return true
			}
			pass.Reportf(n.Pos(),
				"append inside map iteration: element order depends on map iteration order (collect keys and sort, or use //apt:allow detrange <reason>)")
		}
		return true
	})
}

// isFloatish reports whether t is a floating-point or complex type —
// the types whose addition does not associate.
func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rangeVarObj resolves a range clause variable to its object.
func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.ObjectOf(id)
}

// mentions reports whether expr references obj anywhere.
func mentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isSortedKeyCollect recognizes `keys = append(keys, k)` where k is the
// range key and keys later flows into a sort/slices call after the
// loop — the canonical deterministic-iteration idiom, which must not be
// flagged or the fix would need a suppression.
func isSortedKeyCollect(pass *analysis.Pass, call *ast.CallExpr, rng *ast.RangeStmt, keyObj types.Object, sorted map[types.Object][]token.Pos) bool {
	if keyObj == nil || len(call.Args) != 2 {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || pass.ObjectOf(arg) != keyObj {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	dstObj := pass.ObjectOf(dst)
	for _, pos := range sorted[dstObj] {
		if pos > rng.End() {
			return true
		}
	}
	return false
}

// sortedSlices maps slice objects to the positions of sort/slices calls
// they are passed to, across the whole file. Variable objects are
// scope-local, so collecting file-wide cannot cross functions.
func sortedSlices(pass *analysis.Pass, f *ast.File) map[types.Object][]token.Pos {
	out := map[types.Object][]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if id, ok := ast.Unparen(a).(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					out[obj] = append(out[obj], call.Pos())
				}
			}
		}
		return true
	})
	return out
}
