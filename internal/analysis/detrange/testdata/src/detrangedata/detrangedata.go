package detrangedata

import "sort"

// sumValues accumulates floats in map order: the result's bits change
// run to run.
func sumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation inside map iteration"
	}
	return sum
}

// perKey writes into a per-key slot: each key is visited exactly once,
// so order cannot matter.
func perKey(m, out map[string]float64) {
	for k, v := range m {
		out[k] += v
	}
}

// intSum associates: integer addition is order-free.
func intSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func sendAll(m map[int]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want "channel send inside map iteration"
	}
}

func collectValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "append inside map iteration"
	}
	return out
}

// sortedKeys is the idiomatic deterministic-iteration fix and must not
// be flagged: bare keys collected, then sorted.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys never sorts, so the collected order leaks out.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append inside map iteration"
	}
	return keys
}

// nested catches accumulation any depth below the map range.
func nested(m map[string][]float64) float64 {
	var sum float64
	for _, vs := range m {
		for _, v := range vs {
			sum += v // want "float accumulation inside map iteration"
		}
	}
	return sum
}

// sliceRange is not a map: nothing to flag.
func sliceRange(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

func allowed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//apt:allow detrange aggregate is compared with tolerance, not bit-exactly
		sum += v // want:suppressed "float accumulation"
	}
	return sum
}
