// Package simclock forbids wall-clock time and the global math/rand
// source in production code.
//
// The reproduction's training substrate runs on a simulated clock:
// device compute, communication and pipeline overlap are all charged in
// simulated seconds so that traces are deterministic and the four
// strategies can be proven bit-identical (PAPER.md §5). A single
// time.Now() on a modeled path silently turns a reproducible trace into
// a machine-dependent one, and the global math/rand source introduces
// cross-test order dependence. Code that legitimately measures wall
// time (serving latency stats, planner wall-time reporting, CLI
// progress) must carry an audited //apt:allow simclock directive.
package simclock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock time and global math/rand in simulated-time code",
	Run:  run,
}

// wallClockFuncs are the package-level time functions that read or wait
// on the machine clock. Types (time.Duration, time.Time arithmetic) are
// fine — the simulated clock itself is expressed in time.Duration.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

// globalRandExempt are the math/rand constructors that build an
// explicitly seeded private source — the deterministic replacement the
// analyzer is steering code toward.
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions: methods like Timer.Reset
			// follow from an already-flagged constructor.
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in simulated-time code (use the device/comm simulated clock, or //apt:allow simclock <reason>)",
						fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !globalRandExempt[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global math/rand source via rand.%s (seed a private rand.New(rand.NewSource(...)) so runs are reproducible)",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
