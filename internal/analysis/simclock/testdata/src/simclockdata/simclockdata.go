package simclockdata

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()         // want "wall-clock time.Now"
	time.Sleep(time.Nanosecond) // want "wall-clock time.Sleep"
	ch := time.After(time.Hour) // want "wall-clock time.After"
	<-ch
	t := time.NewTimer(time.Hour) // want "wall-clock time.NewTimer"
	t.Stop()
	return time.Since(start) // want "wall-clock time.Since"
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand source via rand.Shuffle"
	return rand.Intn(10)               // want "global math/rand source via rand.Intn"
}

// seededRand builds a private, explicitly seeded source — the
// deterministic replacement the analyzer steers code toward.
func seededRand() float64 {
	r := rand.New(rand.NewSource(7))
	return r.Float64()
}

// simTick advances a simulated clock: time.Duration arithmetic is fine,
// only reading the machine clock is not.
func simTick(now time.Duration) time.Duration { return now + time.Millisecond }

// allowedFunc carries a function-scoped suppression: every simclock
// finding in the body is excused.
//
//apt:allow simclock uptime metric is wall-clock by design
func allowedFunc() time.Duration {
	start := time.Now()      // want:suppressed "wall-clock time.Now"
	return time.Since(start) // want:suppressed "wall-clock time.Since"
}

func allowedLine() time.Time {
	//apt:allow simclock progress reporting only
	return time.Now() // want:suppressed "wall-clock time.Now"
}

func wrongAllow() time.Time {
	//apt:allow detrange suppressing the wrong analyzer does nothing
	return time.Now() // want "wall-clock time.Now"
}
