// Package wirecontract audits the wire-format contracts: codec
// registrations need golden tests, checkpoint section ids must be
// strictly increasing, and encode paths must stay endian-canonical.
//
// The repo's cross-process formats (transport frames, checkpoint
// sections) are canonical little-endian encodings: snapshots written
// on one machine restore on another, and the fuzz/golden tests pin
// every byte. Three conventions keep that true, and this analyzer
// enforces them:
//
//   - Every type registered in the transport codec registry
//     (transport.RegisterData) must be pinned by a golden test in the
//     registering package: a Test*Golden* function that references the
//     type. Round-trip tests alone cannot catch a silent layout change
//     — encode and decode drift together.
//   - Checkpoint section ids (the `sec*` constants of a checkpoint
//     package) must be strictly increasing in declaration order — the
//     decoder enforces ascending ids on the wire, so a shuffled or
//     duplicated constant silently orphans a section — and each id
//     must likewise be referenced from a golden test.
//   - Encode paths must not depend on host byte order: no
//     binary.NativeEndian anywhere, and no unsafe import in a package
//     that registers wire codecs or declares section ids.
//
// Test files are inspected by parsing the package directory's
// *_test.go sources (the analysis loader deliberately excludes them
// from type-checking).
package wirecontract

import (
	"go/ast"
	"go/constant"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirecontract",
	Doc:  "wire codec registrations and checkpoint section ids need golden tests, increasing ids, and canonical endianness",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	regs := registrations(pass)
	secs := sectionConsts(pass)

	var golden *goldenIndex
	if len(regs) > 0 || len(secs) > 0 {
		var err error
		golden, err = loadGoldenIndex(pass.Dir)
		if err != nil {
			return err
		}
	}

	for _, r := range regs {
		if !golden.references(r.typeName) {
			pass.Reportf(r.pos,
				"wire type %s (data id %d) has no golden test: add a Test...Golden in this package pinning its encoded bytes (round-trips alone let encode+decode drift together)",
				r.typeName, r.id)
		}
	}

	prev := ""
	prevVal := int64(-1 << 62)
	for _, s := range secs {
		if s.val <= prevVal {
			pass.Reportf(s.pos,
				"section id %s = %d is not greater than %s = %d: section ids must be strictly increasing in declaration order (the decoder enforces ascending ids on the wire)",
				s.name, s.val, prev, prevVal)
		}
		prev, prevVal = s.name, s.val
		if !golden.references(s.name) {
			pass.Reportf(s.pos,
				"section id %s has no golden test: reference it from a Test...Golden in this package so a renumbering cannot land silently",
				s.name)
		}
	}

	checkEndianness(pass, len(regs) > 0 || len(secs) > 0)
	return nil
}

// A registration is one transport.RegisterData call site.
type registration struct {
	pos      token.Pos
	id       int64
	typeName string
}

func registrations(pass *analysis.Pass) []registration {
	var out []registration
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "RegisterData" || fn.Pkg() == nil || len(call.Args) < 2 {
				return true
			}
			if p := fn.Pkg().Path(); p != "transport" && !strings.HasSuffix(p, "/transport") {
				return true
			}
			r := registration{pos: call.Pos(), id: -1}
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
					r.id = v
				}
			}
			if t := pass.TypeOf(call.Args[1]); t != nil {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					r.typeName = named.Obj().Name()
				}
			}
			if r.typeName != "" {
				out = append(out, r)
			}
			return true
		})
	}
	return out
}

// A sectionConst is one `sec*` constant of a checkpoint package, in
// declaration order.
type sectionConst struct {
	pos  token.Pos
	name string
	val  int64
}

func sectionConsts(pass *analysis.Pass) []sectionConst {
	if pass.Pkg == nil || pass.Pkg.Name() != "checkpoint" {
		return nil
	}
	var out []sectionConst
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "sec") || len(name.Name) < 4 ||
						name.Name[3] < 'A' || name.Name[3] > 'Z' {
						continue
					}
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
						out = append(out, sectionConst{pos: name.Pos(), name: name.Name, val: v})
					}
				}
			}
		}
	}
	return out
}

// checkEndianness flags binary.NativeEndian uses (always) and unsafe
// imports (in wire packages: anything registering codecs or declaring
// section ids, plus the transport/checkpoint/comm packages themselves).
func checkEndianness(pass *analysis.Pass, isWirePkg bool) {
	for _, s := range []string{"transport", "checkpoint", "comm"} {
		if pass.PkgPath == s || strings.HasSuffix(pass.PkgPath, "/"+s) {
			isWirePkg = true
		}
	}
	for _, f := range pass.Files {
		if isWirePkg {
			for _, imp := range f.Imports {
				if strings.Trim(imp.Path.Value, `"`) == "unsafe" {
					pass.Reportf(imp.Pos(),
						"unsafe imported in a wire-format package: encodings must be canonical little-endian, not memory-layout reinterpretation")
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "NativeEndian" {
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "encoding/binary" {
				pass.Reportf(sel.Pos(),
					"binary.NativeEndian on a wire path: canonical encodings are explicitly little-endian (binary.LittleEndian)")
			}
			return true
		})
	}
}

// goldenIndex is the set of identifiers referenced inside golden test
// functions (Test*Golden*) of one package directory.
type goldenIndex struct {
	idents map[string]bool
}

// references reports whether name appears inside any golden test.
// A nil index references nothing.
func (g *goldenIndex) references(name string) bool {
	return g != nil && g.idents[name]
}

// loadGoldenIndex parses the *_test.go files of dir (syntax only — the
// loader's type-checked set excludes tests) and records every
// identifier appearing in a function whose name contains "Golden".
func loadGoldenIndex(dir string) (*goldenIndex, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	idx := &goldenIndex{idents: map[string]bool{}}
	fset := token.NewFileSet()
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !strings.Contains(fn.Name.Name, "Golden") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					idx.idents[id.Name] = true
				}
				return true
			})
		}
	}
	return idx, nil
}
