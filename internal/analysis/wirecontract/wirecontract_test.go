package wirecontract_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wirecontract"
)

func TestWireContract(t *testing.T) {
	analysistest.Run(t, "testdata", wirecontract.Analyzer, "wiredata", "checkpoint")
}
