package checkpoint

import "testing"

// TestSectionLayoutGolden references every pinned id; secRNG is
// deliberately missing so the analyzer reports it.
func TestSectionLayoutGolden(t *testing.T) {
	ids := []int{secMeta, secModel, secOpt, secAux, secAlias}
	if len(ids) != 5 {
		t.Fatal("placeholder golden body")
	}
}
