// Package checkpoint (the name is what wirecontract keys on) carries
// the section-id constants under audit.
package checkpoint

// Section ids, in their mandatory file order.
const (
	secMeta  = 1
	secModel = 3
	secOpt   = 2 // want "section id secOpt = 2 is not greater than secModel = 3"
	secRNG   = 4 // want "section id secRNG has no golden test"
)

// A later block continues the same declaration-order sequence.
const (
	secAux   = 10
	secAlias = 10 //apt:allow wirecontract alias id kept so v1 decoders accept both spellings // want:suppressed "not greater"
)

func all() []int { return []int{secMeta, secModel, secOpt, secRNG, secAux, secAlias} }
