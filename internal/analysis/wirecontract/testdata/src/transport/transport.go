// Package transport stubs the codec registry: wirecontract matches
// RegisterData by name and package-path suffix.
package transport

type DataCodec struct{}

func RegisterData(id uint8, prototype any, c DataCodec) {}
