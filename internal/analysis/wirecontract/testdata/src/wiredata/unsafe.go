package wiredata

import "unsafe" // want "unsafe imported in a wire-format package"

func size() uintptr { return unsafe.Sizeof(uint32(0)) }
