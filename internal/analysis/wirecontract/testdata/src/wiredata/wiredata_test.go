package wiredata

import "testing"

// TestPinnedGolden is syntax-parsed by wirecontract (the analysis
// loader never type-checks tests): referencing Pinned here satisfies
// the golden-test requirement for its registration.
func TestPinnedGolden(t *testing.T) {
	p := Pinned{A: 0x01020304}
	if p.A == 0 {
		t.Fatal("placeholder golden body")
	}
}
