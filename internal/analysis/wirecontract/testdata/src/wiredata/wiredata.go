package wiredata

import (
	"encoding/binary"

	"transport"
)

// Pinned is referenced from TestPinnedGolden in this package's tests.
type Pinned struct{ A uint32 }

// Unpinned has a registration but no golden test.
type Unpinned struct{ B uint32 }

func register() {
	transport.RegisterData(1, (*Pinned)(nil), transport.DataCodec{})
	transport.RegisterData(2, (*Unpinned)(nil), transport.DataCodec{}) // want "wire type Unpinned .* no golden test"
}

func encode(buf []byte, v uint32) {
	binary.NativeEndian.PutUint32(buf, v) // want "binary.NativeEndian on a wire path"
	binary.LittleEndian.PutUint32(buf[4:], v)
}
