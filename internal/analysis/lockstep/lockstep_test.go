package lockstep_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockstep"
)

func TestLockstep(t *testing.T) {
	analysistest.Run(t, "testdata", lockstep.Analyzer, "lockstepdata")
}
