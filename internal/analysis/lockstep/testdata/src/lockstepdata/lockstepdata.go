package lockstepdata

import "comm"

type engine struct {
	c    *comm.Comm
	rank int
	cfg  struct{ LocalRank int }
}

// Direct collective under a rank guard: the textbook divergent
// deadlock.
func (e *engine) bad1() {
	if e.rank == 0 {
		e.c.Barrier(0) // want "collective Barrier issued under rank-dependent branch"
	}
}

// sync is a rank-uniform helper on its own; the bug is calling it
// under a rank guard.
func (e *engine) sync() { e.c.AllReduce(0, nil) }

func (e *engine) bad2() {
	if e.cfg.LocalRank != 0 {
		e.sync() // want "transitively issues a collective"
	}
}

// The else branch of a rank guard diverges just the same.
func (e *engine) bad3(rank int) {
	if rank == 0 {
		_ = rank
	} else {
		e.c.AnyTrue(0, true) // want "collective AnyTrue issued under rank-dependent branch"
	}
}

// Collectives inside a map range: iteration order is per-process
// random, so ranks interleave their sequences differently.
func (e *engine) bad4(peers map[int][]float32) {
	for p := range peers {
		e.c.AllReduce(p, nil) // want "map-range body"
	}
}

// Two levels of helpers still resolve through the call graph.
func (e *engine) fence() { e.sync() }

func (e *engine) bad5() {
	if e.c.Rank() == 0 {
		e.fence() // want "transitively issues a collective"
	}
}

// Rank-uniform guard: every rank takes the same branch.
func (e *engine) good1(step int) {
	if step == 0 {
		e.c.Barrier(0)
	}
}

// The cost-model query is local arithmetic, not a rendezvous.
func (e *engine) good2(rank int) {
	if rank == 0 {
		_ = e.c.AllReduceModel(8)
	}
}

// Slice iteration order is deterministic and identical across ranks.
func (e *engine) good3(xs []int) {
	for range xs {
		e.c.Barrier(0)
	}
}

// Rank-guarded local work is fine, and "misranked" is not a rank name.
func (e *engine) good4(rank int, misranked bool) {
	if rank == 0 && misranked {
		_ = len("io")
	}
}

// A protocol-correct divergence carries the audited allow.
func (e *engine) allowed() {
	if e.c.Rank() == 0 {
		e.c.Barrier(0) //apt:allow lockstep coordinator-only fence; peers block on the bootstrap dial instead // want:suppressed "collective Barrier"
	}
}
