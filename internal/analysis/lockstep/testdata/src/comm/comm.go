// Package comm stubs the repo's collective layer: the method names and
// the package-path suffix are what lockstep matches on.
package comm

type Payload struct{ Bytes int64 }

type Comm struct{ world int }

func (c *Comm) AllReduce(dev int, xs []float32)        {}
func (c *Comm) Barrier(dev int)                        {}
func (c *Comm) AnyTrue(dev int, v bool) bool           { return v }
func (c *Comm) AllGather(dev int, p Payload) []Payload { return nil }

// AllReduceModel is the cost-model query — local arithmetic, not a
// rendezvous. The analyzer must not treat it as a collective.
func (c *Comm) AllReduceModel(n int) float64 { return float64(n) }

func (c *Comm) Rank() int { return 0 }
