// Package lockstep flags collective operations reachable under
// rank-divergent control flow — the classic divergent-collective
// deadlock.
//
// Every collective (AllReduce*, AllGather*, AllToAll*, Barrier,
// AnyTrue, RingAllReduceData) is a rendezvous: each rank must issue
// the same collective sequence or the world deadlocks — rank 0 waits
// in a Barrier no one else entered, everyone else waits in the next
// AllReduce rank 0 never reaches. The two ways repos grow this bug:
//
//   - a branch whose condition depends on the process's rank
//     (`if rank == 0 { barrier() }`, `if c.Rank() != 0 { ... }`)
//     guarding a call that — possibly transitively, through any number
//     of helpers — issues a collective; and
//   - a collective issued from inside `for ... range m` over a map:
//     Go map iteration order is per-process random, so two ranks
//     walking "the same" map issue the same collectives in different
//     orders, which interleaves payloads across different operations.
//
// The analyzer uses the module call graph (Pass.Graph) to follow
// helpers: the branch body doesn't need to name AllReduce — calling
// anything from which a collective is reachable is flagged, with the
// witness path in the message. Rank-dependence is syntactic: the
// condition mentions an identifier or selector whose name begins or
// ends with "rank" (rank, localRank, Rank(), cfg.LocalRank, o.Rank).
// Rank-uniform guards (backend checks, error paths, step counts) are
// not flagged; genuinely rank-divergent collectives that are correct
// by a higher protocol must carry //apt:allow lockstep with the
// argument.
package lockstep

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockstep",
	Doc:  "flag collectives reachable under rank-dependent or map-iteration-dependent control flow",
	Run:  run,
}

// collectiveNames are the comm package's rendezvous operations. Note
// AllReduceModel is NOT one: it is the cost-model query (pure local
// arithmetic), which is precisely why the set is explicit instead of a
// prefix match.
var collectiveNames = map[string]bool{
	"AllReduce":         true,
	"AllReduceCodec":    true,
	"AllGather":         true,
	"AllGatherNoCharge": true,
	"AllToAll":          true,
	"AllToAllNoCharge":  true,
	"Barrier":           true,
	"AnyTrue":           true,
	"RingAllReduceData": true,
}

// isCollective reports whether fn is a collective method of a comm
// package (matched by import-path suffix so testdata can stub it).
func isCollective(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || !collectiveNames[fn.Name()] {
		return false
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "comm" || strings.HasSuffix(p, "/comm")
}

// reachCache memoizes the Reachers query per call graph: the driver
// runs one analyzer over many packages against the same graph.
var reachCache struct {
	sync.Mutex
	graph *analysis.CallGraph
	reach *analysis.Reach
}

func collectiveReachers(g *analysis.CallGraph) *analysis.Reach {
	reachCache.Lock()
	defer reachCache.Unlock()
	if reachCache.graph != g {
		reachCache.graph = g
		reachCache.reach = g.Reachers(isCollective)
	}
	return reachCache.reach
}

func run(pass *analysis.Pass) error {
	if pass.Graph == nil {
		return nil
	}
	reach := collectiveReachers(pass.Graph)
	reported := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IfStmt:
				if rankDependent(s.Cond) {
					cause := "rank-dependent branch"
					flagCollectives(pass, reach, reported, s.Body, cause)
					if s.Else != nil {
						flagCollectives(pass, reach, reported, s.Else, cause)
					}
				}
			case *ast.SwitchStmt:
				if s.Tag != nil && rankDependent(s.Tag) {
					flagCollectives(pass, reach, reported, s.Body, "rank-dependent switch")
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(s.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						flagCollectives(pass, reach, reported, s.Body,
							"map-range body (iteration order differs across ranks)")
					}
				}
			}
			return true
		})
	}
	return nil
}

// rankDependent reports whether cond mentions a rank-like name: an
// identifier or selector beginning or ending with "rank" (case
// insensitive). Prefix/suffix matching keeps names like "misranked"
// out while catching rank, localRank, myRank, rankID, Rank(), *rank.
func rankDependent(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		var name string
		switch e := n.(type) {
		case *ast.Ident:
			name = e.Name
		case *ast.SelectorExpr:
			name = e.Sel.Name
		default:
			return true
		}
		lower := strings.ToLower(name)
		if strings.HasPrefix(lower, "rank") || strings.HasSuffix(lower, "rank") {
			found = true
			return false
		}
		return true
	})
	return found
}

// flagCollectives reports every call in body that is, or transitively
// reaches, a collective. reported dedups call sites claimed by an
// enclosing construct (a guarded map-range would otherwise flag each
// call twice).
func flagCollectives(pass *analysis.Pass, reach *analysis.Reach, reported map[token.Pos]bool, body ast.Node, cause string) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || reported[call.Pos()] {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if isCollective(callee) {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(),
				"collective %s issued under %s: every rank must issue the same collective sequence (//apt:allow lockstep <why divergence is safe> if protocol-correct)",
				callee.Name(), cause)
			return true
		}
		if reach.Reaches(callee) {
			reported[call.Pos()] = true
			path := strings.Join(reach.Path(callee), " → ")
			pass.Reportf(call.Pos(),
				"call to %s under %s transitively issues a collective (%s → %s): every rank must issue the same collective sequence",
				callee.Name(), cause, callee.Name(), path)
		}
		return true
	})
}
