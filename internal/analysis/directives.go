package analysis

// Directive comments are how source code talks back to aptlint.
//
//	//apt:hotpath
//	    On a function's doc comment: opts the function into the
//	    hotalloc analyzer — its body must be allocation-free.
//
//	//apt:allow <analyzer> <reason>
//	    Suppresses findings of the named analyzer. On its own line (or
//	    trailing a statement) it covers that line and the next, never
//	    extending past the enclosing function; on a function's doc
//	    comment it covers the whole function. The reason
//	    is mandatory — suppressions are an audited policy decision, not
//	    an off switch — and the driver reports allows that no longer
//	    suppress anything, so stale exemptions cannot accumulate.

import (
	"go/ast"
	"go/token"
	"strings"
)

const (
	allowPrefix   = "//apt:allow"
	hotpathPrefix = "//apt:hotpath"
	// directivePrefix is the namespace shared by all aptlint
	// directives; anything else under it is a typo worth reporting.
	directivePrefix = "//apt:"
)

// An AllowDirective is one parsed //apt:allow comment with the line
// range it covers.
type AllowDirective struct {
	Pos      token.Position // position of the comment
	Analyzer string
	Reason   string
	FromLine int
	ToLine   int
	// Used is set by the driver when the directive suppresses at least
	// one finding.
	Used bool
}

// AllowsForFile parses every //apt:allow directive in f and resolves
// its scope: a directive inside a function declaration's doc comment
// covers the declaration's full line range; any other placement covers
// the comment's own line plus the following line (so the directive can
// sit either on or immediately above the code it excuses). Malformed
// directives are skipped here — the `directive` analyzer reports them.
func AllowsForFile(fset *token.FileSet, f *ast.File) []*AllowDirective {
	var out []*AllowDirective
	for _, g := range f.Comments {
		for _, c := range g.List {
			analyzer, reason, ok := parseAllow(c.Text)
			if !ok || analyzer == "" || reason == "" {
				continue
			}
			pos := fset.Position(c.Pos())
			out = append(out, &AllowDirective{
				Pos:      pos,
				Analyzer: analyzer,
				Reason:   reason,
				FromLine: pos.Line,
				ToLine:   pos.Line + 1,
			})
		}
	}
	// Widen directives that live in a function's doc comment to the
	// function's whole extent.
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		docFrom := fset.Position(fn.Doc.Pos()).Line
		docTo := fset.Position(fn.Doc.End()).Line
		endLine := fset.Position(fn.End()).Line
		for _, d := range out {
			if d.FromLine >= docFrom && d.FromLine <= docTo {
				d.ToLine = endLine
			}
		}
	}
	// Clamp a directive that sits inside a function so its scope never
	// leaks past that function's last line. Without the clamp, the
	// statement-level "this line and the next" default can spill into
	// the following declaration — a stale allow trailing one function
	// is then counted in-use (and silently suppresses a real finding)
	// whenever the next function diagnoses on the very next line. A
	// suppression is a per-function policy decision; its staleness
	// must be judged within the allowing function alone. (FuncDecl.Pos
	// is the `func` keyword, so doc-comment directives — already
	// widened above — are not touched here.)
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		from := fset.Position(fn.Pos()).Line
		end := fset.Position(fn.End()).Line
		for _, d := range out {
			if d.FromLine >= from && d.FromLine <= end && d.ToLine > end {
				d.ToLine = end
			}
		}
	}
	return out
}

// parseAllow splits an //apt:allow comment into analyzer and reason.
// ok is false when the comment is not an allow directive at all.
func parseAllow(text string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false
	}
	rest := text[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //apt:allowed — a different (unknown) directive.
		return "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", true
	}
	return fields[0], strings.Join(fields[1:], " "), true
}

// IsHotpath reports whether fn's doc comment carries //apt:hotpath.
func IsHotpath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if isHotpathComment(c.Text) {
			return true
		}
	}
	return false
}

func isHotpathComment(text string) bool {
	if !strings.HasPrefix(text, hotpathPrefix) {
		return false
	}
	rest := text[len(hotpathPrefix):]
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}
