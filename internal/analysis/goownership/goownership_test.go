package goownership_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/goownership"
)

func TestGoOwnership(t *testing.T) {
	analysistest.Run(t, "testdata", goownership.Analyzer, "engine", "util")
}
