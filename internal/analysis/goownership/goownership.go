// Package goownership requires every goroutine spawned in the
// concurrency-bearing packages (engine, comm, serve, transport) to
// have a join or cancel path.
//
// The runtime's goroutines are all owned: the sync goroutine is
// drained through its ack/done channels before the schedule is
// charged, the prefetcher closes its output channel and the consumer
// drains it, transport loops signal WaitGroups that Close waits on,
// serve workers retire through a quit channel and a WaitGroup. A `go`
// statement with none of those is a leak: it outlives its owner,
// races teardown, and (for the gradsync class) silently breaks the
// drain-before-collective contract.
//
// For each `go` statement the analyzer resolves the spawned body — a
// function literal in place, or the declaration of a named
// callee/method through the module call graph — and accepts any of:
//
//   - WaitGroup join: the body calls Done on a sync.WaitGroup that
//     some function in the module Waits on (same variable, or same
//     field of the same type);
//   - channel join: the body sends on or closes a channel that some
//     function in the module receives from (channel parameters are
//     mapped back to the spawner's argument);
//   - cancellation: the body receives from a context's Done() channel,
//     or from a channel that the module closes or sends on elsewhere
//     (a quit/stop channel).
//
// Anything else is reported at the `go` statement. A goroutine whose
// lifetime is genuinely process-scoped must say so with
// //apt:allow goownership <reason>.
package goownership

import (
	"go/ast"
	"go/types"
	"strings"
	"sync"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "goownership",
	Doc:  "every goroutine in engine/comm/serve/transport needs a join or cancel path",
	Run:  run,
}

// scopedPkgs are the package-path suffixes the invariant applies to.
var scopedPkgs = []string{"engine", "comm", "serve", "transport"}

func inScope(path string) bool {
	for _, s := range scopedPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// A sigKey identifies a synchronization object across functions:
// either a types.Object (locals, params, package vars) or a
// fieldKey (field f of named type T), so `gs.acks` in the goroutine
// matches `<-gs.acks` in finish regardless of receiver names.
type fieldKey struct {
	typ   *types.TypeName
	field string
}

// keyOf resolves a channel/WaitGroup expression to its identity key,
// or nil when the expression is too dynamic to track.
func keyOf(info *types.Info, expr ast.Expr) any {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil {
				return fieldKey{typ: named.Obj(), field: e.Sel.Name}
			}
		}
		// Package-qualified vars (pkg.Chan) resolve through Uses.
		if obj := info.ObjectOf(e.Sel); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

func isWaitGroup(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "WaitGroup" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// evidence is the module-wide synchronization index: which objects are
// Waited on, received from, and closed/sent-to — the other half of
// every join handshake.
type evidence struct {
	waits  map[any]bool // X in some `X.Wait()`
	recvs  map[any]bool // C in some `<-C`, `range C`, or select case
	wakers map[any]bool // C in some `close(C)` or `C <- v` (cancel sources)
}

var evCache struct {
	sync.Mutex
	graph *analysis.CallGraph
	ev    *evidence
}

func moduleEvidence(g *analysis.CallGraph) *evidence {
	evCache.Lock()
	defer evCache.Unlock()
	if evCache.graph == g {
		return evCache.ev
	}
	ev := &evidence{waits: map[any]bool{}, recvs: map[any]bool{}, wakers: map[any]bool{}}
	for _, node := range g.Funcs() {
		info := node.Pkg.Info
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
					if isWaitGroup(info.TypeOf(sel.X)) {
						if k := keyOf(info, sel.X); k != nil {
							ev.waits[k] = true
						}
					}
				}
				if analysis.IsBuiltinCall(info, s, "close") && len(s.Args) == 1 {
					if k := keyOf(info, s.Args[0]); k != nil {
						ev.wakers[k] = true
					}
				}
			case *ast.UnaryExpr:
				if s.Op.String() == "<-" {
					if k := keyOf(info, s.X); k != nil {
						ev.recvs[k] = true
					}
				}
			case *ast.SendStmt:
				if k := keyOf(info, s.Chan); k != nil {
					ev.wakers[k] = true
				}
			case *ast.RangeStmt:
				if isChan(info.TypeOf(s.X)) {
					if k := keyOf(info, s.X); k != nil {
						ev.recvs[k] = true
					}
				}
			}
			return true
		})
	}
	evCache.graph, evCache.ev = g, ev
	return ev
}

func run(pass *analysis.Pass) error {
	if pass.Graph == nil || !inScope(pass.PkgPath) {
		return nil
	}
	ev := moduleEvidence(pass.Graph)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkSpawn(pass, ev, g)
			return true
		})
	}
	return nil
}

// checkSpawn resolves the spawned body and looks for join/cancel
// evidence inside it.
func checkSpawn(pass *analysis.Pass, ev *evidence, g *ast.GoStmt) {
	var body *ast.BlockStmt
	info := pass.TypesInfo
	// paramArg maps a callee parameter object to the argument
	// expression at the spawn site, so `close(out)` inside the callee
	// counts as closing the spawner's channel.
	paramArg := map[types.Object]ast.Expr{}

	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		callee := analysis.CalleeFunc(pass.TypesInfo, g.Call)
		if callee == nil {
			pass.Reportf(g.Pos(), "goroutine body is dynamic (function value); spawn a named function or literal so its join path is checkable, or //apt:allow goownership <reason>")
			return
		}
		node := pass.Graph.Node(callee)
		if node == nil {
			pass.Reportf(g.Pos(), "goroutine body %s is outside the module; wrap it so the join path is visible, or //apt:allow goownership <reason>", callee.Name())
			return
		}
		body = node.Decl.Body
		info = node.Pkg.Info
		sig := callee.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len() && i < len(g.Call.Args); i++ {
			paramArg[sig.Params().At(i)] = g.Call.Args[i]
		}
	}

	resolve := func(k any) any {
		if obj, ok := k.(types.Object); ok {
			if arg, ok := paramArg[obj]; ok {
				if ak := keyOf(pass.TypesInfo, arg); ak != nil {
					return ak
				}
			}
		}
		return k
	}

	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				// WaitGroup join: Done here, Wait somewhere in the module.
				if sel.Sel.Name == "Done" && isWaitGroup(info.TypeOf(sel.X)) {
					if k := resolve(keyOf(info, sel.X)); k != nil && ev.waits[k] {
						joined = true
					}
				}
				// Context cancellation: the body observes ctx.Done().
				if sel.Sel.Name == "Done" && isContext(info.TypeOf(sel.X)) {
					joined = true
				}
			}
			// Channel join: the body closes a channel someone receives from.
			if analysis.IsBuiltinCall(info, s, "close") && len(s.Args) == 1 {
				if k := resolve(keyOf(info, s.Args[0])); k != nil && ev.recvs[k] {
					joined = true
				}
			}
		case *ast.SendStmt:
			// Channel join: the body sends on a channel someone receives from.
			if k := resolve(keyOf(info, s.Chan)); k != nil && ev.recvs[k] {
				joined = true
			}
		case *ast.UnaryExpr:
			// Cancellation: the body receives from a channel the module
			// can close or send on (quit/stop channels).
			if s.Op.String() == "<-" {
				if k := resolve(keyOf(info, s.X)); k != nil && ev.wakers[k] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			if isChan(info.TypeOf(s.X)) {
				if k := resolve(keyOf(info, s.X)); k != nil && ev.wakers[k] {
					joined = true
				}
			}
		}
		return !joined
	})
	if !joined {
		pass.Reportf(g.Pos(), "goroutine has no join or cancel path (no WaitGroup Done/Wait pair, no channel handshake, no cancellation receive): the owner cannot retire it (//apt:allow goownership <reason> if its lifetime is process-scoped)")
	}
}

func isContext(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "Context" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context"
}
