// Package engine exercises every join/cancel shape goownership
// accepts, and the leaks it reports. The import path suffix "engine"
// puts it in the analyzer's scope.
package engine

import (
	"context"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	quit chan struct{}
}

// WaitGroup join: Done in the literal, Wait in Close.
func (s *server) startGood() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.quit
	}()
}

func (s *server) Close() {
	close(s.quit)
	s.wg.Wait()
}

// Channel join through a named callee: the close of the callee's
// parameter maps back to the spawner's ch, which the spawner drains.
func produce(out chan<- int) {
	defer close(out)
	for i := 0; i < 3; i++ {
		out <- i
	}
}

func consume() int {
	ch := make(chan int, 3)
	go produce(ch)
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Method goroutine joined through receiver-field channels (the
// gradsync shape: run sends acks/done, finish receives them).
type syncer struct {
	acks chan int
	done chan struct{}
}

func (g *syncer) run() {
	g.acks <- 1
	g.done <- struct{}{}
}

func (g *syncer) begin() { go g.run() }

func (g *syncer) finish() {
	<-g.acks
	<-g.done
}

// Cancellation via context: the body observes ctx.Done().
func watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Fire-and-forget literal: nothing joins it.
func leak1(xs []int) {
	go func() { // want "no join or cancel path"
		for range xs {
		}
	}()
}

// spin has no handshake of any kind.
func spin() {
	for i := 0; i < 1000; i++ {
		_ = i
	}
}

func leak2() {
	go spin() // want "no join or cancel path"
}

// Sends on a channel no function in the module receives from: the
// goroutine blocks forever once the buffer fills.
type emitter struct{ out chan int }

func (e *emitter) leak3() {
	go func() { // want "no join or cancel path"
		e.out <- 1
	}()
}

// A process-scoped daemon is a policy decision, audited by the allow.
func daemon() {
	go spin() //apt:allow goownership process-lifetime pump, retired only by exit // want:suppressed "no join or cancel path"
}
