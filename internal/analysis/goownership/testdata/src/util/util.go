// Package util is outside goownership's scope (engine/comm/serve/
// transport): the leak below must NOT be reported.
package util

func Background() {
	go func() {
		for i := 0; i < 1000; i++ {
			_ = i
		}
	}()
}
