// Package hotalloc makes the "0 allocs/op" kernel guarantee a
// compile-time property.
//
// The pipelined engine only overlaps sampling and compute profitably
// because the fused kernels (PR 4) allocate nothing in steady state —
// today that is guarded by `make verify`'s -benchmem gate, which only
// sees the shapes the benchmarks happen to exercise. hotalloc checks it
// structurally: a function whose doc comment carries //apt:hotpath must
// not contain make, new, slice/map composite literals, address-taken
// composite literals, append, closures, or go statements — each of
// those either allocates or (closures, go) defeats escape analysis for
// what it captures. Scratch space in a hot path comes from the tensor
// pool (tensor.Get/Put), which the analyzer deliberately does not flag.
//
// One-time or fan-out paths inside a marked function (e.g. a parallel
// dispatcher's per-worker partials) are excused with
// //apt:allow hotalloc <reason>.
package hotalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid allocations in //apt:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.IsHotpath(fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch {
			case analysis.IsBuiltinCall(pass.TypesInfo, n, "make"):
				pass.Reportf(n.Pos(), "make in hot path: %s allocates per call", typeLabel(pass, n))
			case analysis.IsBuiltinCall(pass.TypesInfo, n, "new"):
				pass.Reportf(n.Pos(), "new in hot path: %s allocates per call", typeLabel(pass, n))
			case analysis.IsBuiltinCall(pass.TypesInfo, n, "append"):
				pass.Reportf(n.Pos(), "append in hot path: growth allocates; write into preallocated storage")
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "%s literal in hot path allocates per call", kindWord(t))
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-taken composite literal in hot path escapes to the heap")
				}
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path: the closure and its captures may escape; hoist it or pass a named function")
			return false // findings inside the closure belong to its own audit
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path allocates a goroutine per call")
			return false // one finding per go statement; its closure is implied
		}
		return true
	})
}

func typeLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return "value"
	}
	if t := pass.TypeOf(call.Args[0]); t != nil {
		return t.String()
	}
	return "value"
}

func kindWord(t types.Type) string {
	if _, ok := t.Underlying().(*types.Map); ok {
		return "map"
	}
	return "slice"
}
