package hotallocdata

type mat struct {
	rows, cols int
	data       []float32
}

// scale is hot and clean: in-place arithmetic over preallocated
// storage.
//
//apt:hotpath
func scale(xs []float32, a float32) {
	for i := range xs {
		xs[i] *= a
	}
}

// axpyInto writes into caller-provided storage.
//
//apt:hotpath
func axpyInto(dst, x []float32, a float32) {
	for i, v := range x {
		dst[i] += a * v
	}
}

// allocEverywhere demonstrates every allocation class the analyzer
// reports.
//
//apt:hotpath
func allocEverywhere(n int) []float32 {
	out := make([]float32, n)    // want "make in hot path"
	p := new(mat)                // want "new in hot path"
	idx := map[int]bool{}        // want "map literal in hot path"
	lit := []float32{1, 2}       // want "slice literal in hot path"
	m := &mat{rows: n}           // want "address-taken composite literal"
	out = append(out, 1)         // want "append in hot path"
	f := func() int { return n } // want "closure in hot path"
	go scale(out, 2)             // want "go statement in hot path"
	_ = p
	_ = idx
	_ = lit
	_ = m
	_ = f
	return out
}

// coldAlloc is unmarked: hotalloc has no opinion.
func coldAlloc(n int) []float32 {
	out := make([]float32, n)
	return append(out, 1)
}

// dispatcher fans out once per call by design; the allocation is an
// audited exception, not a violation.
//
//apt:hotpath
func dispatcher(n int) {
	//apt:allow hotalloc one-time per-call fan-out; steady-state inner loop is scale
	partials := make([]float32, n) // want:suppressed "make in hot path"
	scale(partials, 2)
}
