package poolpairdata

import (
	"sync"

	"tensor"
)

// leak: borrowed, read, never returned to the pool.
func leak() float32 {
	m := tensor.Get(4, 4) // want "never passed to tensor.Put"
	m.Data[0] = 1
	return m.Data[0]
}

// discarded: the only reference to the borrowed matrix is dropped on
// the spot.
func discarded() {
	tensor.Get(2, 2) // want "discarded"
}

// paired: the canonical borrow.
func paired() float32 {
	m := tensor.Get(4, 4)
	m.Data[0] = 1
	v := m.Data[0]
	tensor.Put(m)
	return v
}

// deferredPut covers every return path, early ones included.
func deferredPut(cond bool) int {
	m := tensor.Get(4, 4)
	defer tensor.Put(m)
	if cond {
		return 0
	}
	return int(m.Data[0])
}

// earlyReturn leaks on the cond path: the Put only runs on
// fall-through.
func earlyReturn(cond bool) int {
	m := tensor.Get(4, 4)
	if cond {
		return 0 // want "only runs on the fall-through path"
	}
	tensor.Put(m)
	return 1
}

// returned transfers ownership to the caller — the documented pool
// protocol for kernels that produce pool-backed results.
func returned() *tensor.Matrix {
	return tensor.Get(4, 4)
}

func returnedVar() *tensor.Matrix {
	m := tensor.Get(4, 4)
	m.Data[0] = 2
	return m
}

// escapesToCallee hands the matrix to another function, which owns it
// from then on.
func escapesToCallee() {
	m := tensor.Get(4, 4)
	consume(m)
}

func consume(m *tensor.Matrix) {
	defer tensor.Put(m)
	m.Data[0] = 3
}

type holder struct{ m *tensor.Matrix }

// storedInField escapes into a longer-lived owner.
func storedInField(h *holder) {
	h.m = tensor.Get(2, 2)
}

// workerPool mirrors the parallel-scatter kernels: per-worker partials
// escape into a slice, closures borrow and return their own scratch.
func workerPool(n int) *tensor.Matrix {
	dst := tensor.Get(n, n)
	partials := make([]*tensor.Matrix, 2)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		partials[w] = tensor.Get(n, n)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := tensor.Get(1, n)
			partials[w].Data[0] += g.Data[0]
			tensor.Put(g)
		}(w)
	}
	wg.Wait()
	for _, p := range partials {
		dst.AddInPlace(p)
		tensor.Put(p)
	}
	return dst
}

// closureLeak: a closure is its own pairing scope.
func closureLeak() func() {
	return func() {
		g := tensor.Get(1, 1) // want "never passed to tensor.Put"
		g.Data[0] = 1
	}
}

// captured: the closure takes ownership of the capture.
func captured() {
	m := tensor.Get(2, 2)
	release := func() { tensor.Put(m) }
	release()
}

// allowed: a deliberate non-returning borrow, audited in place.
func allowed() {
	//apt:allow poolpair cached for the process lifetime, recycled at shutdown
	m := tensor.Get(2, 2) // want:suppressed "never passed to tensor.Put"
	m.Data[0] = 1
}
