// Package tensor stubs the real pool API (repro/internal/tensor) for
// the poolpair golden tests; the analyzer matches Get/Put by package
// path suffix.
package tensor

type Matrix struct {
	Rows, Cols int
	Data       []float32
}

func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

func Get(rows, cols int) *Matrix { return New(rows, cols) }

func Put(m *Matrix) {}

func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

func (m *Matrix) AddInPlace(o *Matrix) {
	for i, v := range o.Data {
		m.Data[i] += v
	}
}
