// Package poolpair flags tensor.Get results that can leak out of the
// matrix pool.
//
// The pool-backed kernels are allocation-free only while every borrowed
// buffer makes it back via tensor.Put; a dropped Put silently degrades
// the kernel to allocating-per-call, which the -benchmem gate catches
// late and only on benchmarked shapes. For each function (closures are
// independent scopes), every direct tensor.Get call must either
//
//   - be paired with a tensor.Put of the same variable in that scope,
//   - transfer ownership: the result is returned, sent, stored into a
//     field/element/global, passed to another function, captured by a
//     closure, or consumed directly inside a larger expression (the
//     pool protocol says Put is the borrower's job once a matrix
//     escapes to a new owner), or
//   - carry an //apt:allow poolpair directive explaining why not.
//
// A discarded Get (statement position) is always a leak. A paired but
// non-deferred Put additionally flags return statements between the Get
// and the Put: those paths leak the buffer (and a panic in between
// does too — prefer defer tensor.Put when early returns exist).
package poolpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "pair every tensor.Get with a Put or an ownership transfer",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Every function body — declarations and closures — is its own
		// pairing scope.
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkScope(pass, fn.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkScope(pass, lit.Body)
			}
			return true
		})
	}
	return nil
}

// isPoolFunc matches the pool entry points by name and package. The
// package is matched by path suffix so analyzer testdata can stub it.
func isPoolFunc(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == "tensor" || strings.HasSuffix(p, "/tensor")
}

type putSite struct {
	pos      token.Pos
	obj      types.Object
	deferred bool
}

func checkScope(pass *analysis.Pass, body *ast.BlockStmt) {
	parents := parentMap(body)
	var puts []putSite
	var rets []*ast.ReturnStmt

	// First pass: collect Put calls and return statements belonging to
	// this scope (not to nested closures).
	walkScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPoolFunc(pass.TypesInfo, n, "Put") && len(n.Args) == 1 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					puts = append(puts, putSite{
						pos:      n.Pos(),
						obj:      pass.ObjectOf(id),
						deferred: isDeferred(parents, n),
					})
				}
			}
		case *ast.ReturnStmt:
			rets = append(rets, n)
		}
	})

	// Second pass: judge each Get call.
	walkScope(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isPoolFunc(pass.TypesInfo, call, "Get") {
			return
		}
		obj, ok := boundVar(pass, parents, call)
		if !ok {
			// Consumed inside a larger expression (call argument,
			// return value, field/element store, ...): ownership moved
			// with the value. A bare statement, though, drops the only
			// reference.
			if _, discarded := parents[call].(*ast.ExprStmt); discarded {
				pass.Reportf(call.Pos(),
					"tensor.Get result discarded: the borrowed matrix can never be Put back")
			}
			return
		}
		judgeTracked(pass, body, parents, call, obj, puts, rets)
	})
}

// judgeTracked handles `v := tensor.Get(...)`: v must be Put, escape to
// a new owner, or be excused.
func judgeTracked(pass *analysis.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, get *ast.CallExpr, obj types.Object, puts []putSite, rets []*ast.ReturnStmt) {
	var matched []putSite
	for _, p := range puts {
		if p.obj == obj {
			matched = append(matched, p)
		}
	}
	if len(matched) > 0 {
		// Paired. A non-deferred Put still leaks on any return between
		// the Get and the Put (and on panics in that window).
		firstPut := token.Pos(-1)
		for _, p := range matched {
			if p.deferred {
				return
			}
			if firstPut < 0 || p.pos < firstPut {
				firstPut = p.pos
			}
		}
		for _, ret := range rets {
			if ret.Pos() > get.End() && ret.Pos() < firstPut && !mentionsObj(pass, ret, obj) {
				pass.Reportf(ret.Pos(),
					"return leaks %s: tensor.Put(%s) only runs on the fall-through path (defer the Put or Put before returning)",
					obj.Name(), obj.Name())
			}
		}
		return
	}
	if escapes(pass, body, parents, obj) {
		return
	}
	pass.Reportf(get.Pos(),
		"tensor.Get result %s is never passed to tensor.Put and never escapes this function",
		obj.Name())
}

// boundVar returns the local variable a Get result is bound to via
// `v := Get(...)`, `v = Get(...)` or `var v = Get(...)`.
func boundVar(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr) (types.Object, bool) {
	switch p := parents[call].(type) {
	case *ast.AssignStmt:
		for i, rhs := range p.Rhs {
			if ast.Unparen(rhs) == call && i < len(p.Lhs) {
				if id, ok := p.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.ObjectOf(id); obj != nil {
						return obj, true
					}
				}
			}
		}
	case *ast.ValueSpec:
		for i, rhs := range p.Values {
			if ast.Unparen(rhs) == call && i < len(p.Names) && p.Names[i].Name != "_" {
				if obj := pass.ObjectOf(p.Names[i]); obj != nil {
					return obj, true
				}
			}
		}
	}
	return nil, false
}

// escapes reports whether obj is handed to a new owner somewhere in the
// scope: passed to a call, returned, sent, stored into a non-local
// lvalue, aliased, address-taken, or captured by a closure. Reads
// through the variable (v.Data, v.Row(i), method calls on v) do not
// transfer ownership.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, obj types.Object) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != obj {
			return true
		}
		if inFuncLit(parents, id, body) {
			esc = true // captured by a closure: tracked there, owned there
			return false
		}
		switch p := parents[id].(type) {
		case *ast.CallExpr:
			for _, a := range p.Args {
				if ast.Unparen(a) == ast.Node(id) {
					esc = true
				}
			}
		case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
			esc = true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				esc = true
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if ast.Unparen(rhs) == ast.Node(id) {
					esc = true // aliased or stored into another lvalue
				}
			}
		}
		return true
	})
	return esc
}

// mentionsObj reports whether obj appears under n.
func mentionsObj(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// walkScope visits the nodes of body that belong to its function,
// stopping at closure boundaries (each FuncLit is judged separately).
func walkScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// isDeferred reports whether call sits under a defer statement.
func isDeferred(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	for n := ast.Node(call); n != nil; n = parents[n] {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// inFuncLit reports whether n sits inside a FuncLit nested in scope.
func inFuncLit(parents map[ast.Node]ast.Node, n ast.Node, scope *ast.BlockStmt) bool {
	for m := parents[n]; m != nil && m != ast.Node(scope); m = parents[m] {
		if _, ok := m.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// parentMap records each node's syntactic parent under root,
// unwrapping nothing: callers unparen as needed.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
