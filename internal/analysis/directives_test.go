package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseAllows(t *testing.T, src string) (*token.FileSet, *ast.File, []*AllowDirective) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f, AllowsForFile(fset, f)
}

// TestAllowScopeClampedToFunction is the regression test for the audit
// staleness bug: an //apt:allow trailing one function's line must not
// spill into the next function — before the clamp, the directive below
// was counted in-use (and suppressed B's real finding) because its
// "line and the next" default range covered B's line.
func TestAllowScopeClampedToFunction(t *testing.T) {
	src := `package p

import "time"

func A() int { return 1 } //apt:allow simclock stale: A no longer reads the clock
func B() time.Time { return time.Now() }
`
	_, _, ds := parseAllows(t, src)
	if len(ds) != 1 {
		t.Fatalf("directives = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.FromLine != 5 || d.ToLine != 5 {
		t.Errorf("scope = [%d,%d], want [5,5] (clamped to func A)", d.FromLine, d.ToLine)
	}
	if m := matchAllow(ds, "simclock", 6); m != nil {
		t.Errorf("line 6 (func B) matched A's directive; staleness must be scoped to the allowing function")
	}
	if m := matchAllow(ds, "simclock", 5); m == nil {
		t.Errorf("line 5 (func A itself) no longer matches its own directive")
	}
}

// TestAllowScopeWithinFunction pins the documented statement-level
// behavior: inside a function the directive still covers its own line
// and the next, and a function-doc directive covers the whole body.
func TestAllowScopeWithinFunction(t *testing.T) {
	src := `package p

import "time"

func A() time.Time {
	//apt:allow simclock serving latency is wall time
	return time.Now()
}

// B measures real elapsed time for CLI progress.
//
//apt:allow simclock progress reporting
func B() time.Time {
	t := time.Now()
	return t
}
`
	_, _, ds := parseAllows(t, src)
	if len(ds) != 2 {
		t.Fatalf("directives = %d, want 2", len(ds))
	}
	if d := ds[0]; d.FromLine != 6 || d.ToLine != 7 {
		t.Errorf("statement directive scope = [%d,%d], want [6,7]", d.FromLine, d.ToLine)
	}
	if d := ds[1]; d.FromLine != 12 || d.ToLine != 16 {
		t.Errorf("doc directive scope = [%d,%d], want [12,16] (whole function)", d.FromLine, d.ToLine)
	}
	if m := matchAllow(ds, "simclock", 14); m == nil || m != ds[1] {
		t.Errorf("finding inside B not matched to B's doc directive")
	}
}

// TestAllowTrailingLastLine: a directive trailing the function's last
// body line keeps covering that line (the clamp only trims the spill).
func TestAllowTrailingLastLine(t *testing.T) {
	src := `package p

import "time"

func A() time.Time {
	return time.Now() //apt:allow simclock audited wall-clock read
}
func B() time.Time { return time.Now() }
`
	_, _, ds := parseAllows(t, src)
	if len(ds) != 1 {
		t.Fatalf("directives = %d, want 1", len(ds))
	}
	if d := ds[0]; d.FromLine != 6 || d.ToLine != 7 {
		t.Errorf("scope = [%d,%d], want [6,7] (stays inside A)", d.FromLine, d.ToLine)
	}
	if m := matchAllow(ds, "simclock", 8); m != nil {
		t.Errorf("B's finding on line 8 must not match A's directive")
	}
}
