package analysis

import (
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadTestModule writes the given files (path → source) under a temp
// module root and loads them.
func loadTestModule(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkgs, err := LoadModule(dir)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return pkgs
}

func findFunc(t *testing.T, g *CallGraph, name string) *types.Func {
	t.Helper()
	for _, n := range g.Funcs() {
		if n.Fn.Name() == name {
			return n.Fn
		}
	}
	t.Fatalf("function %s not in call graph", name)
	return nil
}

func TestCallGraphCrossPackageReachers(t *testing.T) {
	pkgs := loadTestModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"comm/comm.go": `package comm

type Comm struct{}

func (c *Comm) AllReduce(xs []float32) {}
`,
		"engine/engine.go": `package engine

import "tmpmod/comm"

type Engine struct{ C *comm.Comm }

func (e *Engine) syncGradients() { e.C.AllReduce(nil) }

func (e *Engine) computeStep() { e.syncGradients() }

func (e *Engine) RunEpoch() {
	for i := 0; i < 3; i++ {
		e.computeStep()
	}
}

// viaClosure's collective call sits inside a literal: reachability
// attributes it to the enclosing declaration.
func (e *Engine) viaClosure() {
	f := func() { e.syncGradients() }
	f()
}

func (e *Engine) pure() int { return 1 }
`,
	})
	g := BuildCallGraph(pkgs)
	reach := g.Reachers(func(fn *types.Func) bool {
		return fn.Name() == "AllReduce" && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "comm")
	})

	for _, name := range []string{"syncGradients", "computeStep", "RunEpoch", "viaClosure"} {
		if !reach.Reaches(findFunc(t, g, name)) {
			t.Errorf("%s should reach AllReduce", name)
		}
	}
	for _, name := range []string{"pure", "AllReduce"} {
		if reach.Reaches(findFunc(t, g, name)) {
			t.Errorf("%s should not be a reacher", name)
		}
	}

	got := reach.Path(findFunc(t, g, "RunEpoch"))
	want := []string{"computeStep", "syncGradients", "AllReduce"}
	if strings.Join(got, "→") != strings.Join(want, "→") {
		t.Errorf("Path(RunEpoch) = %v, want %v", got, want)
	}
}

func TestCallGraphDeterministicOrder(t *testing.T) {
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"p/p.go": `package p

func a() { b(); c() }
func b() { c() }
func c() {}
`,
	}
	var first []string
	for trial := 0; trial < 3; trial++ {
		g := BuildCallGraph(loadTestModule(t, files))
		var names []string
		for _, n := range g.Funcs() {
			names = append(names, n.Fn.Name())
			for _, e := range n.Calls {
				names = append(names, "->"+e.Callee.Name())
			}
		}
		if first == nil {
			first = names
		} else if strings.Join(names, " ") != strings.Join(first, " ") {
			t.Fatalf("trial %d order %v != %v", trial, names, first)
		}
	}
	if len(first) == 0 {
		t.Fatal("empty graph")
	}
}

func TestRunAttachesGraph(t *testing.T) {
	pkgs := loadTestModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.21\n",
		"p/p.go": "package p\n\nfunc F() {}\n",
	})
	var sawGraph *CallGraph
	var sawDir string
	probe := &Analyzer{
		Name: "probe",
		Doc:  "records the pass wiring",
		Run: func(pass *Pass) error {
			sawGraph = pass.Graph
			sawDir = pass.Dir
			return nil
		},
	}
	if _, err := Run([]*Analyzer{probe}, pkgs, Options{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sawGraph == nil {
		t.Error("pass.Graph not set by the driver")
	}
	if sawDir == "" {
		t.Error("pass.Dir not set by the driver")
	}
	if sawGraph != nil && sawGraph.Node(findFunc(t, sawGraph, "F")) == nil {
		t.Error("graph missing node for F")
	}
}
