package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// Table1 prints the qualitative trade-off matrix.
func (e *Env) Table1() (string, error) {
	rows := [][]string{}
	for _, r := range strategy.Table1() {
		yn := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		rows = append(rows, []string{
			r.Kind.String(), r.ShuffleGraph.String(), r.ShuffleFeature.String(),
			r.ShuffleHidden.String(), r.CacheLocality.String(), yn(r.ExcessCache),
			yn(r.PartialAggr), yn(r.RequiresPartition),
		})
	}
	return header("Table 1", "strategy trade-off matrix") + trace.RenderTable("",
		[]string{"strategy", "shuffle-G", "shuffle-F", "shuffle-H", "locality", "excess-cache", "partial-aggr", "partition"},
		rows), nil
}

// Table2 reports the dataset statistics (the paper's Table 2, at the
// reproduction's scale): vertices, edges, feature dimension, topology
// and feature sizes.
func (e *Env) Table2() (string, error) {
	var b strings.Builder
	b.WriteString(header("Table 2", "graph dataset statistics (scaled)"))
	rows := [][]string{}
	paper := map[string][2]string{ // vertices, edges at paper scale
		"PS": {"111M", "3.2B"},
		"FS": {"66M", "3.6B"},
		"IM": {"269M", "3.9B"},
	}
	for _, abbr := range []string{"PS", "FS", "IM"} {
		d := e.Dataset(abbr)
		topoBytes := 8*int64(d.Graph.NumNodes()+1) + 4*d.Graph.NumEdges()
		rows = append(rows, []string{
			d.Name, abbr,
			fmt.Sprintf("%d", d.Graph.NumNodes()),
			fmt.Sprintf("%d", d.Graph.NumEdges()),
			fmt.Sprintf("%d", d.FeatDim),
			fmt.Sprintf("%.1fMB", float64(topoBytes)/1e6),
			fmt.Sprintf("%.1fMB", float64(d.FeatureBytes())/1e6),
			paper[abbr][0] + "/" + paper[abbr][1],
		})
	}
	b.WriteString(trace.RenderTable("",
		[]string{"dataset", "abbr", "vertices", "edges", "feat-dim", "topology", "features", "paper V/E"}, rows))
	return b.String(), nil
}

// Table3 reports node-access skewness per dataset: the share of all
// sampled-subgraph appearances attributable to each popularity band.
func (e *Env) Table3() (string, error) {
	var b strings.Builder
	b.WriteString(header("Table 3", "node access skewness (fanout [10,10,10])"))
	paper := map[string][]float64{
		"PS": {50.1, 34.8, 8.8, 4.7, 1.7, 0.0},
		"FS": {17.7, 29.4, 19.1, 18.8, 13.5, 1.6},
		"IM": {31.1, 39.0, 19.7, 9.3, 0.9, 0.0},
	}
	bandNames := []string{"<1%", "1~5%", "5~10%", "10~20%", "20~50%", "50~100%"}
	for _, abbr := range []string{"PS", "FS", "IM"} {
		d := e.Dataset(abbr)
		freq := make([]int64, d.Graph.NumNodes())
		s := sample.NewSampler(d.Graph, sample.Config{Fanouts: []int{10, 10, 10}}, graph.NewRNG(3))
		for lo := 0; lo < len(d.TrainSeeds); lo += e.opts.BatchSize {
			hi := lo + e.opts.BatchSize
			if hi > len(d.TrainSeeds) {
				hi = len(d.TrainSeeds)
			}
			mb := s.Sample(d.TrainSeeds[lo:hi])
			sample.CountLayer1SrcAccesses(freq, mb)
		}
		buckets := graph.AccessSkew(freq)
		rows := [][]string{}
		for i, bk := range buckets {
			rows = append(rows, []string{
				bandNames[i],
				fmt.Sprintf("%.1f%%", bk.AccessRatio*100),
				fmt.Sprintf("%.1f%%", paper[abbr][i]),
			})
		}
		b.WriteString(trace.RenderTable(fmt.Sprintf("%s (measured vs paper)", abbr),
			[]string{"node rank", "measured", "paper"}, rows))
	}
	return b.String(), nil
}

// Table4 computes the maximum speedup of APT's selection over always
// using one fixed strategy, maximized over the hidden-dimension and
// cache-size sweep configurations (the paper maximizes over its Fig. 8
// and Fig. 9 configurations).
func (e *Env) Table4() (string, error) {
	var b strings.Builder
	b.WriteString(header("Table 4", "max speedup of APT vs fixed strategies"))
	type cfg struct {
		tc   taskConfig
		name string
	}
	for _, abbr := range []string{"PS", "FS", "IM"} {
		cfgs := []cfg{}
		for _, h := range []int{8, 32, 128, 512} {
			cfgs = append(cfgs, cfg{taskConfig{abbr: abbr, hidden: h}, fmt.Sprintf("hidden %d", h)})
		}
		for _, frac := range []float64{-1, 0.02, 0.16} {
			cfgs = append(cfgs, cfg{taskConfig{abbr: abbr, hidden: 32, cacheFrac: frac}, fmt.Sprintf("cache %.2f", frac)})
		}
		cfgs = append(cfgs, cfg{taskConfig{abbr: abbr, hidden: 32, platform: hardware.FourMachines4GPU()}, "distributed"})
		maxSpeedup := map[strategy.Kind]float64{}
		for _, c := range cfgs {
			res, err := e.RunCase(e.task(c.tc))
			if err != nil {
				return "", err
			}
			chosen := res.Stats[res.Choice].EpochTime()
			for _, k := range strategy.Core {
				sp := res.Stats[k].EpochTime() / chosen
				if sp > maxSpeedup[k] {
					maxSpeedup[k] = sp
				}
			}
		}
		paper := map[string]map[strategy.Kind]float64{
			"PS": {strategy.GDP: 1.18, strategy.NFP: 7.57, strategy.SNP: 3.33, strategy.DNP: 1.59},
			"FS": {strategy.GDP: 2.13, strategy.NFP: 4.25, strategy.SNP: 2.35, strategy.DNP: 1.36},
			"IM": {strategy.GDP: 2.60, strategy.NFP: 5.88, strategy.SNP: 2.09, strategy.DNP: 1.55},
		}
		rows := [][]string{}
		for _, k := range strategy.Core {
			rows = append(rows, []string{k.String(),
				fmt.Sprintf("%.2f", maxSpeedup[k]),
				fmt.Sprintf("%.2f", paper[abbr][k])})
		}
		b.WriteString(trace.RenderTable(fmt.Sprintf("%s (measured vs paper)", abbr),
			[]string{"fixed strategy", "max speedup", "paper"}, rows))
	}
	return b.String(), nil
}

// Figure6 is the semantic-equivalence sanity check run end-to-end in
// real mode: test accuracy per epoch must coincide across strategies
// (they are trained on identical mini-batches here, so the curves are
// equal up to float reassociation).
func (e *Env) Figure6() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 6", "test accuracy vs epoch, all strategies (real training)"))
	spec, err := dataset.ByAbbr("FS", 0.08)
	if err != nil {
		return "", err
	}
	spec.FeatDim = 32
	spec.Classes = 8
	spec.HomophilyDegree = 8
	d := dataset.Build(spec, true)
	p := hardware.WithDevices(hardware.SingleMachine8GPU(), 1, 4)
	smp := sample.Config{Fanouts: []int{8, 8}}
	const epochs = 10

	curves := map[strategy.Kind][]float64{}
	for _, k := range strategy.Core {
		task := e.task(taskConfig{abbr: "FS", hidden: 16, fanouts: []int{8, 8}})
		task.Graph = d.Graph
		task.Feats = d.Feats
		task.Labels = d.Labels
		task.Seeds = d.TrainSeeds
		task.FeatDim = spec.FeatDim
		task.Platform = p
		task.CacheBytes = p.DefaultCacheBytes
		task.Partition = nil
		classes := spec.Classes
		task.NewModel = func() *nn.Model { return nn.NewGraphSAGE(spec.FeatDim, 16, classes, 2) }
		task.NewOptimizer = func() nn.Optimizer { return nn.NewAdam(0.02) }
		apt, err := core.New(task)
		if err != nil {
			return "", err
		}
		eng, err := apt.BuildEngine(k)
		if err != nil {
			return "", err
		}
		for ep := 0; ep < epochs; ep++ {
			eng.RunEpoch()
			acc := engine.Evaluate(d.Graph, eng.Model(0), d.Feats, d.Labels, d.TestSeeds, smp, 128, 1)
			curves[k] = append(curves[k], acc)
		}
	}
	rows := [][]string{}
	for ep := 0; ep < epochs; ep++ {
		row := []string{fmt.Sprintf("%d", ep+1)}
		for _, k := range strategy.Core {
			row = append(row, fmt.Sprintf("%.3f", curves[k][ep]))
		}
		rows = append(rows, row)
	}
	b.WriteString(trace.RenderTable("", []string{"epoch", "GDP", "NFP", "SNP", "DNP"}, rows))
	return b.String(), nil
}
