// Package experiments regenerates every table and figure of the
// paper's evaluation (§5) on the simulated platform. Each experiment
// returns a plain-text report; cmd/aptbench prints them and
// bench_test.go wraps them as Go benchmarks. Absolute times are
// simulated seconds on the modeled T4 platform; the reproduction
// target is the qualitative shape (which strategy wins where, and that
// APT picks at or near the optimum).
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/hardware"
	"repro/internal/nn"
	"repro/internal/partition"
	"repro/internal/sample"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// Options scales the experiments. The defaults reproduce the paper's
// configurations scaled ~1000x down (graphs, batch size, GPU memory
// all shrunk together so the working-set-to-cache ratios match).
type Options struct {
	// Scale multiplies the dataset preset sizes (1.0 = default).
	Scale float64
	// Devices is the single-machine GPU count (paper: 8).
	Devices int
	// Epochs measured per configuration (after the planner's dry-run).
	Epochs int
	// BatchSize per device (paper's 1024 scaled with the graphs).
	BatchSize int
	// CacheFraction is each GPU's feature-cache budget as a fraction
	// of total feature bytes (paper: 4 GB vs 52.9-128 GB ≈ 0.03-0.08).
	CacheFraction float64
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Devices == 0 {
		o.Devices = 8
	}
	if o.Epochs == 0 {
		o.Epochs = 2
	}
	if o.BatchSize == 0 {
		o.BatchSize = 64
	}
	if o.CacheFraction == 0 {
		o.CacheFraction = 0.08
	}
	return o
}

// env caches built datasets and partitions across experiment configs.
type env struct {
	opts Options
	data map[string]*dataset.Dataset
	part map[string]*partition.Partitioning // keyed by abbr/devices/kind
}

// NewEnv prepares a reusable experiment environment.
func NewEnv(opts Options) *Env {
	o := opts.Defaults()
	return &Env{env{opts: o, data: map[string]*dataset.Dataset{}, part: map[string]*partition.Partitioning{}}}
}

// Env is the public handle for running experiments.
type Env struct{ env }

// Dataset builds (and caches) a preset.
func (e *env) Dataset(abbr string) *dataset.Dataset {
	if d, ok := e.data[abbr]; ok {
		return d
	}
	spec, err := dataset.ByAbbr(abbr, e.opts.Scale)
	if err != nil {
		panic(err)
	}
	d := dataset.Build(spec, false)
	e.data[abbr] = d
	return d
}

// Partition builds (and caches) a partitioning of a dataset.
func (e *env) Partition(abbr string, devices int, kind core.PartitionerKind) *partition.Partitioning {
	key := fmt.Sprintf("%s/%d/%d", abbr, devices, kind)
	if p, ok := e.part[key]; ok {
		return p
	}
	d := e.Dataset(abbr)
	var p *partition.Partitioning
	if kind == core.PartitionRandom {
		p = partition.Random(d.Graph, devices, 7)
	} else {
		p = partition.Multilevel(d.Graph, devices, partition.MultilevelConfig{Seed: 7, EdgeBalanced: true})
	}
	e.part[key] = p
	return p
}

// platformFor scales the paper's T4 platform to a dataset. GPU memory
// and the cache budget are absolute per dataset (anchored to the
// preset's feature bytes), mirroring the paper's fixed 16 GB / 4 GB:
// sweeping the input dimension then changes how many nodes fit in the
// cache, exactly as in Figure 1a, and NFP's large intermediates can
// overflow memory as in Figure 10. The memory anchor is sized so the
// per-batch working set stands in the same relation to device memory
// as at paper scale (batch size shrinks less than the graph does).
func (e *env) platformFor(base *hardware.Platform, d *dataset.Dataset) *hardware.Platform {
	p := *base
	featBytes := d.FeatureBytes()
	p.GPUMemBytes = featBytes * 3 / 2
	p.DefaultCacheBytes = int64(float64(featBytes) * e.opts.CacheFraction)
	return &p
}

// taskConfig assembles one accounting-mode task.
type taskConfig struct {
	abbr      string
	featDim   int // 0 = preset default
	hidden    int
	fanouts   []int
	model     string // "sage" or "gat"
	heads     int
	platform  *hardware.Platform // nil = single machine with opts.Devices
	cacheFrac float64            // 0 = opts default
	int8Frac  float64            // warm-tier share of the cache budget
	partKind  core.PartitionerKind
}

func (e *env) task(tc taskConfig) core.Task {
	d := e.Dataset(tc.abbr)
	featDim := tc.featDim
	if featDim == 0 {
		featDim = d.FeatDim
	}
	base := tc.platform
	if base == nil {
		base = hardware.WithDevices(hardware.SingleMachine8GPU(), 1, e.opts.Devices)
	}
	p := e.platformFor(base, d)
	if tc.cacheFrac != 0 {
		if tc.cacheFrac < 0 { // sentinel: cache disabled
			p.DefaultCacheBytes = 0
		} else {
			p.DefaultCacheBytes = int64(tc.cacheFrac * float64(d.FeatureBytes()))
		}
	}
	fanouts := tc.fanouts
	if fanouts == nil {
		fanouts = []int{10, 10, 10}
	}
	layers := len(fanouts)
	classes := d.Classes
	var newModel func() *nn.Model
	if tc.model == "gat" {
		heads := tc.heads
		if heads == 0 {
			heads = 4
		}
		hidden, fd := tc.hidden, featDim
		newModel = func() *nn.Model { return nn.NewGAT(fd, hidden, heads, classes, layers) }
	} else {
		hidden, fd := tc.hidden, featDim
		if hidden == 0 {
			hidden = 32
		}
		newModel = func() *nn.Model { return nn.NewGraphSAGE(fd, hidden, classes, layers) }
	}
	return core.Task{
		Graph:         d.Graph,
		FeatDim:       featDim,
		Seeds:         d.TrainSeeds,
		NewModel:      newModel,
		Sampling:      sample.Config{Fanouts: fanouts},
		BatchSize:     e.opts.BatchSize,
		Platform:      p,
		CacheBytes:    p.DefaultCacheBytes,
		Int8CacheFrac: tc.int8Frac,
		Partition:     e.Partition(tc.abbr, p.NumDevices(), tc.partKind),
		Partitioner:   tc.partKind,
		Seed:          7,
	}
}

// CaseResult holds one configuration's per-strategy measurements.
type CaseResult struct {
	Stats  map[strategy.Kind]engine.EpochStats
	Choice strategy.Kind
	APT    *core.APT
}

// Best returns the fastest strategy and its epoch time.
func (c *CaseResult) Best() (strategy.Kind, float64) {
	best, bestT := strategy.GDP, c.Stats[strategy.GDP].EpochTime()
	for _, k := range strategy.Core {
		if t := c.Stats[k].EpochTime(); t < bestT {
			best, bestT = k, t
		}
	}
	return best, bestT
}

// RunCase plans with APT and measures every strategy for epochs epochs
// (averaged).
func (e *env) RunCase(task core.Task) (*CaseResult, error) {
	apt, err := core.New(task)
	if err != nil {
		return nil, err
	}
	choice, err := apt.Plan()
	if err != nil {
		return nil, err
	}
	res := &CaseResult{Stats: map[strategy.Kind]engine.EpochStats{}, Choice: choice, APT: apt}
	for _, k := range strategy.Core {
		eng, err := apt.BuildEngine(k)
		if err != nil {
			return nil, err
		}
		var runs []engine.EpochStats
		for i := 0; i < e.opts.Epochs; i++ {
			runs = append(runs, eng.RunEpoch())
		}
		res.Stats[k] = meanStats(runs)
	}
	return res, nil
}

// meanStats averages epoch stats over runs (volumes and times).
func meanStats(runs []engine.EpochStats) engine.EpochStats {
	if len(runs) == 1 {
		return runs[0]
	}
	out := runs[0]
	inv := 1.0 / float64(len(runs))
	out.SampleSec, out.BuildSec, out.LoadSec, out.TrainSec, out.ShuffleSec = 0, 0, 0, 0, 0
	for _, r := range runs {
		out.SampleSec += r.SampleSec * inv
		out.BuildSec += r.BuildSec * inv
		out.LoadSec += r.LoadSec * inv
		out.TrainSec += r.TrainSec * inv
		out.ShuffleSec += r.ShuffleSec * inv
		out.OOM = out.OOM || r.OOM
	}
	return out
}

// barsForCase renders a case as the paper's stacked bars: sampling
// (incl. subgraph shuffle), feature loading, training (incl. hidden
// shuffle) — with APT's pick starred.
func barsForCase(title string, c *CaseResult) string {
	rows := make([]trace.Row, 0, 4)
	for _, k := range strategy.Core {
		st := c.Stats[k]
		note := ""
		if st.OOM {
			note = "[OOM]"
		}
		rows = append(rows, trace.Row{
			Label:  k.String(),
			Marked: k == c.Choice,
			Note:   note,
			Segments: []trace.Seg{
				{Name: "sampling", Sec: st.SamplingBar()},
				{Name: "loading", Sec: st.LoadSec},
				{Name: "training", Sec: st.TrainBar()},
			},
		})
	}
	return trace.RenderBars(title, rows)
}

// sortedKinds lists core strategies in canonical order (report aid).
func sortedKinds(m map[strategy.Kind]float64) []strategy.Kind {
	ks := make([]strategy.Kind, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func header(id, desc string) string {
	return fmt.Sprintf("=== %s: %s ===\n", id, desc)
}

var _ = strings.TrimSpace // reserved for report helpers
