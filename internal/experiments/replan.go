package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/engine"
)

// AblationReplan evaluates the online re-planner against a static
// planner that was fed a mis-ranked operator profile. For each skew
// preset the ablation distorts the measured profile (claiming one
// operator class is far faster than it is), lets the dry-run planner
// pick under the lie, then trains the same task twice: once pinned to
// the mis-ranked pick, once with TrainAdaptive, whose per-epoch
// calibration compares measured stage times against the (distorted)
// predictions, corrects the model, and switches behind the hysteresis
// guard. Presets where the distortion does not flip the ranking are
// reported and skipped — the interesting rows are the ones where the
// static planner is stuck with a provably wrong strategy.
func (e *Env) AblationReplan() (string, error) {
	var b strings.Builder
	b.WriteString(header("Ablation: online re-planning",
		"mis-profiled planner: static pick vs calibrated re-planning"))
	epochs := e.opts.Epochs
	if epochs < 4 {
		epochs = 4
	}
	type distortion struct {
		name  string
		apply func(p comm.Profile) *comm.Profile
	}
	distortions := []distortion{
		{"collectives 50x fast", func(p comm.Profile) *comm.Profile {
			p.AllToAllBps *= 50
			p.AllGatherBps *= 50
			return &p
		}},
		{"host reads 50x fast", func(p comm.Profile) *comm.Profile {
			p.UVAReadBps *= 50
			p.RemoteReadBps *= 50
			return &p
		}},
	}
	for _, abbr := range []string{"PS", "FS", "IM"} {
		base := e.task(taskConfig{abbr: abbr, hidden: 32, int8Frac: 0.25})

		// The truthful planner's pick is the reference ranking.
		truth, err := core.New(base)
		if err != nil {
			return "", err
		}
		trueChoice, err := truth.Plan()
		if err != nil {
			return "", err
		}
		honest := truth.Profile()

		var misranked bool
		for _, d := range distortions {
			task := base
			task.ProfileOverride = d.apply(*honest)

			liar, err := core.New(task)
			if err != nil {
				return "", err
			}
			badChoice, err := liar.Plan()
			if err != nil {
				return "", err
			}
			if badChoice == trueChoice {
				continue
			}
			misranked = true

			staticRes, err := liar.TrainWith(badChoice, epochs)
			if err != nil {
				return "", err
			}
			adaptive, err := core.New(task)
			if err != nil {
				return "", err
			}
			adaptRes, err := adaptive.TrainAdaptiveContext(context.Background(), epochs, core.ReplanConfig{})
			if err != nil {
				return "", err
			}

			fmt.Fprintf(&b, "  %s under %q: dry-run misranks %v over %v\n",
				abbr, d.name, badChoice, trueChoice)
			fmt.Fprintf(&b, "    static %-6v mean epoch %.4fs (last %.4fs)\n",
				badChoice, staticRes.SimulatedEpochSeconds(), lastEpochSec(staticRes))
			fmt.Fprintf(&b, "    adaptive      mean epoch %.4fs (last %.4fs, final plan %v)\n",
				adaptRes.SimulatedEpochSeconds(), lastEpochSec(adaptRes), adaptRes.Choice)
			for _, ev := range adaptRes.Replans {
				fmt.Fprintf(&b, "    switch after epoch %d: %v -> %v (predicted gain %.0f%%, "+
					"cal build %.2f host-load %.2f shuffle %.2f)\n",
					ev.Epoch, ev.From, ev.To, ev.PredictedGain*100,
					ev.Cal.Build, ev.Cal.LoadHost, ev.Cal.Shuffle)
			}
			if n := len(adaptRes.Epochs); n > 0 {
				fmt.Fprintf(&b, "    per-tier reads (final epoch): %s\n",
					tierReadShares(adaptRes.Epochs[n-1]))
			}
			break
		}
		if !misranked {
			fmt.Fprintf(&b, "  %s: no distortion flipped the ranking (true pick %v is robust)\n",
				abbr, trueChoice)
		}
	}
	return b.String(), nil
}

// lastEpochSec is the simulated time of a result's final epoch.
func lastEpochSec(r *core.Result) float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	return r.Epochs[len(r.Epochs)-1].EpochTime()
}

// tierReadShares renders the fraction of feature-row reads served per
// location — the unified store's per-tier hit rates (fp32 hot band,
// int8 warm band, peer, host, remote).
func tierReadShares(st engine.EpochStats) string {
	var total int64
	for _, n := range st.Totals.Load.Nodes {
		total += n
	}
	if total == 0 {
		return "no feature reads"
	}
	parts := make([]string, 0, cache.NumLocations)
	for loc, n := range st.Totals.Load.Nodes {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%s %.1f%%",
				cache.Location(loc), float64(n)*100/float64(total)))
		}
	}
	return strings.Join(parts, ", ")
}
