package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fullgraph"
	"repro/internal/strategy"
	"repro/internal/trace"
)

// ExtensionFullGraph contrasts sampling-based training (the paper's
// setting) with NeuGraph/ROC-style full-graph training (its related
// work §6): one full-graph pass computes embeddings for every node and
// exchanges halo embeddings every layer, so its per-pass compute and
// communication dwarf a sampled epoch — and its per-layer activations
// exceed device memory at scale.
func (e *Env) ExtensionFullGraph() (string, error) {
	var b strings.Builder
	b.WriteString(header("Extension: full-graph baseline", "sampling-based vs NeuGraph/ROC-style full-graph training"))
	for _, abbr := range []string{"PS", "FS"} {
		task := e.task(taskConfig{abbr: abbr, hidden: 32})
		res, err := e.RunCase(task)
		if err != nil {
			return "", err
		}
		best, bestT := res.Best()

		fg, err := fullgraph.New(fullgraph.Config{
			Platform:   task.Platform,
			Graph:      task.Graph,
			TrainNodes: task.Seeds,
			NewModel:   task.NewModel,
			Assign:     e.Partition(abbr, task.Platform.NumDevices(), 0).Assign,
			Mode:       fullgraph.Accounting,
			Seed:       7,
		})
		if err != nil {
			return "", err
		}
		st := fg.RunEpoch()
		oom := ""
		if st.OOM {
			oom = " [activations exceed GPU memory]"
		}
		rows := []trace.Row{
			{Label: "sampled", Marked: true, Segments: []trace.Seg{
				{Name: "compute", Sec: res.Stats[best].TrainBar() + res.Stats[best].SamplingBar()},
				{Name: "halo/load", Sec: res.Stats[best].LoadSec},
			}, Note: fmt.Sprintf("(APT pick: %v)", best)},
			{Label: "full-graph", Segments: []trace.Seg{
				{Name: "compute", Sec: st.ComputeSec},
				{Name: "halo/load", Sec: st.HaloSec},
			}, Note: fmt.Sprintf("halo %.0fMB, peak activations %.0fMB%s",
				float64(st.HaloBytes)/1e6, float64(st.ActivationBytes)/1e6, oom)},
		}
		b.WriteString(trace.RenderBars(fmt.Sprintf("%s, per-epoch cost (hidden 32)", abbr), rows))
		// A sampled epoch performs one model update per synchronized
		// mini-batch step; a full-graph pass performs exactly one. The
		// per-update cost is what governs convergence speed.
		batches := res.Stats[best].NumBatches
		if batches == 0 {
			batches = 1
		}
		stepCost := bestT / float64(batches)
		fmt.Fprintf(&b, "  full-graph pass vs one sampled mini-batch update (%v): %.0fx more expensive;\n",
			best, st.EpochTime()/stepCost)
		fmt.Fprintf(&b, "  halo fraction %.0f%% of sources; mini-batch takes %d updates per epoch, full-graph takes 1\n",
			fg.HaloFraction()*100, batches)
	}
	return b.String(), nil
}

var _ = strategy.GDP // reserved
