package experiments

import (
	"strings"
	"testing"

	"repro/internal/strategy"
)

func tinyEnv() *Env {
	return NewEnv(Options{Scale: 0.04, Epochs: 1, Devices: 4, BatchSize: 32})
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Scale != 1.0 || o.Devices != 8 || o.Epochs != 2 || o.BatchSize != 64 || o.CacheFraction != 0.08 {
		t.Errorf("defaults wrong: %+v", o)
	}
	o2 := Options{Scale: 0.5}.Defaults()
	if o2.Scale != 0.5 {
		t.Error("explicit scale overridden")
	}
}

func TestEnvCachesDatasetsAndPartitions(t *testing.T) {
	e := tinyEnv()
	d1 := e.Dataset("PS")
	d2 := e.Dataset("PS")
	if d1 != d2 {
		t.Error("dataset not cached")
	}
	p1 := e.Partition("PS", 4, 0)
	p2 := e.Partition("PS", 4, 0)
	if p1 != p2 {
		t.Error("partition not cached")
	}
}

func TestRunCaseProducesAllStrategies(t *testing.T) {
	e := tinyEnv()
	res, err := e.RunCase(e.task(taskConfig{abbr: "FS", hidden: 16}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("got %d strategies", len(res.Stats))
	}
	for _, k := range strategy.Core {
		if res.Stats[k].EpochTime() <= 0 {
			t.Errorf("%v: zero epoch time", k)
		}
	}
	best, bestT := res.Best()
	for _, k := range strategy.Core {
		if res.Stats[k].EpochTime() < bestT {
			t.Errorf("Best() returned %v but %v is faster", best, k)
		}
	}
}

func TestTaskConfigKnobs(t *testing.T) {
	e := tinyEnv()
	// Cache sentinel disables the cache.
	task := e.task(taskConfig{abbr: "PS", hidden: 16, cacheFrac: -1})
	if task.CacheBytes != 0 {
		t.Error("cache sentinel ignored")
	}
	// Input-dim override keeps memory anchored to the preset.
	t64 := e.task(taskConfig{abbr: "PS", featDim: 64, hidden: 16})
	t512 := e.task(taskConfig{abbr: "PS", featDim: 512, hidden: 16})
	if t64.Platform.GPUMemBytes != t512.Platform.GPUMemBytes {
		t.Error("GPU memory should be anchored to the preset, not the config dim")
	}
	if t64.FeatDim != 64 || t512.FeatDim != 512 {
		t.Error("feat dim override lost")
	}
	// GAT configuration.
	g := e.task(taskConfig{abbr: "PS", model: "gat", hidden: 4, heads: 2, fanouts: []int{5, 5}})
	if !g.NewModel().NeedsDstInSrc() {
		t.Error("gat task did not build a GAT")
	}
}

func TestTable1Report(t *testing.T) {
	out, err := tinyEnv().Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GDP", "NFP", "SNP", "DNP", "partial-aggr"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
}

func TestTable3Report(t *testing.T) {
	out, err := tinyEnv().Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PS", "FS", "IM", "<1%", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q", want)
		}
	}
}

func TestFigure12Report(t *testing.T) {
	out, err := tinyEnv().Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "estimated") || !strings.Contains(out, "error") {
		t.Error("Figure12 report malformed")
	}
}

func TestFigure11ShowsPartitionSensitivity(t *testing.T) {
	out, err := tinyEnv().Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "random partitioning") || !strings.Contains(out, "slowdown") {
		t.Error("Figure11 report malformed")
	}
}

func TestExtensionHybridReport(t *testing.T) {
	out, err := tinyEnv().ExtensionHybrid()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Hybrid") {
		t.Error("hybrid report missing Hybrid row")
	}
}

func TestMeanStats(t *testing.T) {
	e := tinyEnv()
	res, err := e.RunCase(e.task(taskConfig{abbr: "FS", hidden: 16}))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[strategy.GDP]
	if st.EpochTime() != st.SampleSec+st.BuildSec+st.LoadSec+st.TrainSec+st.ShuffleSec {
		t.Error("meanStats broke the decomposition")
	}
}

// TestAllExperimentsSmoke runs every experiment end-to-end at a tiny
// scale (skipped with -short). It guards the whole harness against
// regressions; the benchmarks exercise realistic scales.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full experiment sweep")
	}
	e := NewEnv(Options{Scale: 0.03, Epochs: 1, Devices: 4, BatchSize: 32})
	for _, exp := range []struct {
		name string
		fn   func() (string, error)
	}{
		{"fig1", e.Figure1},
		{"fig6", e.Figure6},
		{"fig7", e.Figure7},
		{"fig8a", e.Figure8Hidden},
		{"fig8b", e.Figure8Fanout},
		{"fig8c", e.Figure8Cache},
		{"fig9", e.Figure9},
		{"fig10", e.Figure10},
		{"tab2", e.Table2},
		{"tab4", e.Table4},
		{"ablation-fullcost", e.AblationFullCost},
		{"ablation-dryrun", e.AblationDryRunEpochs},
		{"ablation-cache", e.AblationCachePolicy},
		{"ablation-pipeline", e.AblationPipelining},
		{"ext-nvlink", e.ExtensionNVLink},
		{"ext-cpucache", e.ExtensionCPUCache},
		{"ext-layerwise", e.ExtensionLayerWise},
		{"ext-fullgraph", e.ExtensionFullGraph},
		{"ext-phase", e.ExtensionPhaseDiagram},
	} {
		out, err := exp.fn()
		if err != nil {
			t.Fatalf("%s: %v", exp.name, err)
		}
		if len(out) < 50 {
			t.Errorf("%s: suspiciously short report", exp.name)
		}
	}
}
